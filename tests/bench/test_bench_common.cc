/**
 * @file
 * Tests for the bench scaffolding (option parsing, sweep selection,
 * protocol selection).
 */

#include <gtest/gtest.h>

#include <array>

#include "bench_common.hh"

namespace syncperf::bench
{
namespace
{

Options
parseArgs(std::initializer_list<const char *> args)
{
    std::vector<char *> argv;
    static char prog[] = "bench";
    argv.push_back(prog);
    for (const char *a : args)
        argv.push_back(const_cast<char *>(a));
    return Options::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchOptions, DefaultsAreOff)
{
    const Options opt = parseArgs({});
    EXPECT_FALSE(opt.full);
    EXPECT_FALSE(opt.quick);
    EXPECT_FALSE(opt.csv);
}

TEST(BenchOptions, FlagsParse)
{
    const Options opt = parseArgs({"--full", "--csv"});
    EXPECT_TRUE(opt.full);
    EXPECT_TRUE(opt.csv);
    EXPECT_FALSE(opt.quick);
}

TEST(BenchOptions, QuickParses)
{
    EXPECT_TRUE(parseArgs({"--quick"}).quick);
}

TEST(BenchOptions, UnknownFlagsIgnored)
{
    EXPECT_NO_THROW(parseArgs({"--frobnicate"}));
}

TEST(BenchProtocols, FullSelectsPaperDefaults)
{
    Options opt;
    opt.full = true;
    const auto cfg = ompProtocol(opt);
    EXPECT_EQ(cfg.runs, 9);
    EXPECT_EQ(cfg.attempts, 7);
    EXPECT_EQ(cfg.n_iter, 1000);
}

TEST(BenchProtocols, DefaultIsSingleDeterministicRun)
{
    const auto cfg = ompProtocol(Options{});
    EXPECT_EQ(cfg.runs, 1);
    EXPECT_EQ(cfg.attempts, 1);
    const auto gpu = gpuProtocol(Options{});
    EXPECT_EQ(gpu.runs, 1);
}

TEST(BenchSweeps, OmpSweepCoversWholeMachine)
{
    const auto cpu = cpusim::CpuConfig::system3();
    const auto threads = ompSweep(cpu, Options{});
    EXPECT_EQ(threads.front(), 2);
    EXPECT_EQ(threads.back(), cpu.totalHwThreads());
}

TEST(BenchSweeps, QuickOmpSweepIsCoarser)
{
    const auto cpu = cpusim::CpuConfig::system3();
    Options quick;
    quick.quick = true;
    EXPECT_LT(ompSweep(cpu, quick).size(),
              ompSweep(cpu, Options{}).size());
    EXPECT_EQ(ompSweep(cpu, quick).back(), cpu.totalHwThreads());
}

TEST(BenchSweeps, QuickCudaSweepKeepsEndpoints)
{
    Options quick;
    quick.quick = true;
    const auto full = cudaSweep(Options{});
    const auto coarse = cudaSweep(quick);
    EXPECT_LT(coarse.size(), full.size());
    EXPECT_EQ(coarse.front(), full.front());
    EXPECT_EQ(coarse.back(), full.back());
}

TEST(BenchHelpers, ToXsConverts)
{
    EXPECT_EQ(toXs({1, 2, 3}), (std::vector<double>{1.0, 2.0, 3.0}));
}

} // namespace
} // namespace syncperf::bench
