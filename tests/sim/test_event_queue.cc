/**
 * @file
 * Unit tests for the discrete-event queue.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "sim/event_queue.hh"

namespace syncperf::sim
{
namespace
{

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); }, 1);
    eq.schedule(5, [&] { order.push_back(0); }, 0);
    eq.schedule(5, [&] { order.push_back(2); }, 1);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(10, [&] {
        eq.scheduleIn(5, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 15u);
}

TEST(EventQueue, DescheduleCancels)
{
    EventQueue eq;
    bool ran = false;
    const EventId id = eq.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(eq.deschedule(id));
    eq.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, DoubleDescheduleIsNoop)
{
    EventQueue eq;
    const EventId id = eq.schedule(10, [] {});
    EXPECT_TRUE(eq.deschedule(id));
    EXPECT_FALSE(eq.deschedule(id));
}

TEST(EventQueue, DescheduleUnknownIdReturnsFalse)
{
    EventQueue eq;
    EXPECT_FALSE(eq.deschedule(12345));
}

TEST(EventQueue, DescheduleExecutedEventReturnsFalse)
{
    EventQueue eq;
    const EventId id = eq.schedule(1, [] {});
    eq.run();
    EXPECT_FALSE(eq.deschedule(id));
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    std::vector<Tick> seen;
    eq.schedule(10, [&] { seen.push_back(10); });
    eq.schedule(20, [&] { seen.push_back(20); });
    eq.runUntil(15);
    EXPECT_EQ(seen, (std::vector<Tick>{10}));
    EXPECT_EQ(eq.now(), 15u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(seen, (std::vector<Tick>{10, 20}));
}

TEST(EventQueue, EventsMaySpawnEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5)
            eq.scheduleIn(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 4u);
    EXPECT_EQ(eq.executed(), 5u);
}

TEST(EventQueue, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    ScopedLogCapture capture;
    EXPECT_THROW(eq.schedule(5, [] {}), LogDeathException);
}

TEST(EventQueue, PendingCountsLiveEvents)
{
    EventQueue eq;
    eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, MoveOnlyCallbacksAreSupported)
{
    EventQueue eq;
    int seen = 0;
    auto payload = std::make_unique<int>(41);
    eq.schedule(3, [&seen, p = std::move(payload)] { seen = *p + 1; });
    eq.run();
    EXPECT_EQ(seen, 42);
}

TEST(EventQueue, LargeCapturesFallBackToTheHeap)
{
    EventQueue eq;
    std::array<std::uint64_t, 16> big{};
    big.fill(7);
    std::uint64_t sum = 0;
    eq.schedule(1, [big, &sum] {
        for (auto v : big)
            sum += v;
    });
    eq.run();
    EXPECT_EQ(sum, 112u);
}

TEST(EventQueue, IdWindowIsTrimmedWhenDrained)
{
    // A reused machine runs many schedule/run cycles on one queue;
    // the cancellation bookkeeping must not accumulate across them.
    EventQueue eq;
    for (int cycle = 0; cycle < 100; ++cycle) {
        std::vector<EventId> ids;
        for (int i = 0; i < 10; ++i)
            ids.push_back(eq.scheduleIn(static_cast<Tick>(i), [] {}));
        eq.deschedule(ids[3]);
        eq.run();
        EXPECT_EQ(eq.idWindow(), 0u);
        EXPECT_EQ(eq.pending(), 0u);
        // Handles from a drained cycle are dead, even fresh ones.
        EXPECT_FALSE(eq.deschedule(ids.back()));
    }
    EXPECT_EQ(eq.executed(), 100u * 9u);
}

TEST(EventQueue, ResetRestoresInitialStateButKillsOldHandles)
{
    EventQueue eq;
    const EventId stale = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    eq.runUntil(12);
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.idWindow(), 0u);
    EXPECT_FALSE(eq.deschedule(stale));

    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(1, [&] { order.push_back(0); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueue, CancelledEntriesDoNotBlockDraining)
{
    EventQueue eq;
    bool ran = false;
    std::vector<EventId> ids;
    for (int i = 0; i < 8; ++i)
        ids.push_back(eq.schedule(static_cast<Tick>(100 + i), [] {}));
    eq.schedule(50, [&] { ran = true; });
    for (EventId id : ids)
        EXPECT_TRUE(eq.deschedule(id));
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_TRUE(ran);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.idWindow(), 0u);
    EXPECT_EQ(eq.executed(), 1u);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue eq;
    Tick last = 0;
    bool monotonic = true;
    for (int i = 1000; i >= 1; --i) {
        eq.schedule(static_cast<Tick>(i), [&, i] {
            if (static_cast<Tick>(i) < last)
                monotonic = false;
            last = static_cast<Tick>(i);
        });
    }
    eq.run();
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(eq.executed(), 1000u);
}

} // namespace
} // namespace syncperf::sim
