/**
 * @file
 * Unit tests for the discrete-event queue.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "sim/event_queue.hh"

namespace syncperf::sim
{
namespace
{

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); }, 1);
    eq.schedule(5, [&] { order.push_back(0); }, 0);
    eq.schedule(5, [&] { order.push_back(2); }, 1);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(10, [&] {
        eq.scheduleIn(5, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 15u);
}

TEST(EventQueue, DescheduleCancels)
{
    EventQueue eq;
    bool ran = false;
    const EventId id = eq.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(eq.deschedule(id));
    eq.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, DoubleDescheduleIsNoop)
{
    EventQueue eq;
    const EventId id = eq.schedule(10, [] {});
    EXPECT_TRUE(eq.deschedule(id));
    EXPECT_FALSE(eq.deschedule(id));
}

TEST(EventQueue, DescheduleUnknownIdReturnsFalse)
{
    EventQueue eq;
    EXPECT_FALSE(eq.deschedule(12345));
}

TEST(EventQueue, DescheduleExecutedEventReturnsFalse)
{
    EventQueue eq;
    const EventId id = eq.schedule(1, [] {});
    eq.run();
    EXPECT_FALSE(eq.deschedule(id));
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    std::vector<Tick> seen;
    eq.schedule(10, [&] { seen.push_back(10); });
    eq.schedule(20, [&] { seen.push_back(20); });
    eq.runUntil(15);
    EXPECT_EQ(seen, (std::vector<Tick>{10}));
    EXPECT_EQ(eq.now(), 15u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(seen, (std::vector<Tick>{10, 20}));
}

TEST(EventQueue, EventsMaySpawnEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5)
            eq.scheduleIn(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 4u);
    EXPECT_EQ(eq.executed(), 5u);
}

TEST(EventQueue, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    ScopedLogCapture capture;
    EXPECT_THROW(eq.schedule(5, [] {}), LogDeathException);
}

TEST(EventQueue, PendingCountsLiveEvents)
{
    EventQueue eq;
    eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, MoveOnlyCallbacksAreSupported)
{
    EventQueue eq;
    int seen = 0;
    auto payload = std::make_unique<int>(41);
    eq.schedule(3, [&seen, p = std::move(payload)] { seen = *p + 1; });
    eq.run();
    EXPECT_EQ(seen, 42);
}

TEST(EventQueue, LargeCapturesFallBackToTheHeap)
{
    EventQueue eq;
    std::array<std::uint64_t, 16> big{};
    big.fill(7);
    std::uint64_t sum = 0;
    eq.schedule(1, [big, &sum] {
        for (auto v : big)
            sum += v;
    });
    eq.run();
    EXPECT_EQ(sum, 112u);
}

TEST(EventQueue, IdWindowIsTrimmedWhenDrained)
{
    // A reused machine runs many schedule/run cycles on one queue;
    // the cancellation bookkeeping must not accumulate across them.
    EventQueue eq;
    for (int cycle = 0; cycle < 100; ++cycle) {
        std::vector<EventId> ids;
        for (int i = 0; i < 10; ++i)
            ids.push_back(eq.scheduleIn(static_cast<Tick>(i), [] {}));
        eq.deschedule(ids[3]);
        eq.run();
        EXPECT_EQ(eq.idWindow(), 0u);
        EXPECT_EQ(eq.pending(), 0u);
        // Handles from a drained cycle are dead, even fresh ones.
        EXPECT_FALSE(eq.deschedule(ids.back()));
    }
    EXPECT_EQ(eq.executed(), 100u * 9u);
}

TEST(EventQueue, ResetRestoresInitialStateButKillsOldHandles)
{
    EventQueue eq;
    const EventId stale = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    eq.runUntil(12);
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.idWindow(), 0u);
    EXPECT_FALSE(eq.deschedule(stale));

    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(1, [&] { order.push_back(0); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueue, CancelledEntriesDoNotBlockDraining)
{
    EventQueue eq;
    bool ran = false;
    std::vector<EventId> ids;
    for (int i = 0; i < 8; ++i)
        ids.push_back(eq.schedule(static_cast<Tick>(100 + i), [] {}));
    eq.schedule(50, [&] { ran = true; });
    for (EventId id : ids)
        EXPECT_TRUE(eq.deschedule(id));
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_TRUE(ran);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.idWindow(), 0u);
    EXPECT_EQ(eq.executed(), 1u);
}

// ------------------------------------------------------------------
// Batching-horizon queries (the loop batcher's safety boundary; see
// docs/performance.md, "Loop batching").
// ------------------------------------------------------------------

TEST(EventQueue, NextForeignTickSkipsOwnPriority)
{
    EventQueue eq;
    eq.schedule(10, [] {}, /*priority=*/3);
    eq.schedule(20, [] {}, /*priority=*/5);
    eq.schedule(30, [] {}, /*priority=*/3);
    EXPECT_EQ(eq.nextForeignTick(3), 20u);
    EXPECT_EQ(eq.nextForeignTick(5), 10u);
    // Every pending event belongs to the queried actor: no horizon.
    EXPECT_EQ(eq.nextForeignTick(3), 20u);
    eq.runUntil(21);
    EXPECT_EQ(eq.nextForeignTick(3), EventQueue::no_tick);
}

TEST(EventQueue, NextForeignTickSeesBoundaryExactEvent)
{
    // A foreign event at exactly the would-be window boundary must
    // be reported, not jumped over: the batcher compares against
    // the boundary tick with <=, so an off-by-one here would let a
    // batch swallow a same-tick wakeup.
    EventQueue eq;
    eq.schedule(100, [] {}, 1);
    EXPECT_EQ(eq.nextForeignTick(0), 100u);
}

TEST(EventQueue, NextForeignTickIgnoresTombstones)
{
    EventQueue eq;
    const EventId doomed = eq.schedule(10, [] {}, 1);
    eq.schedule(40, [] {}, 2);
    EXPECT_EQ(eq.nextForeignTick(0), 10u);
    EXPECT_TRUE(eq.deschedule(doomed));
    // The cancelled event lands nowhere, so it cannot bound a batch.
    EXPECT_EQ(eq.nextForeignTick(0), 40u);
    eq.schedule(5, [] {}, 0);
    EXPECT_EQ(eq.nextForeignTick(0), 40u); // own priority still skipped
}

TEST(EventQueue, HorizonPinCapsNextForeignTick)
{
    EventQueue eq;
    eq.schedule(100, [] {}, 1);
    EXPECT_EQ(eq.horizonPin(), EventQueue::no_tick);
    eq.pinHorizon(25);
    EXPECT_EQ(eq.horizonPin(), 25u);
    // The pin is earlier than any pending foreign event and wins.
    EXPECT_EQ(eq.nextForeignTick(0), 25u);
    // A pending event earlier than the pin still wins over it.
    eq.schedule(7, [] {}, 2);
    EXPECT_EQ(eq.nextForeignTick(0), 7u);
    eq.clearHorizonPin();
    EXPECT_EQ(eq.horizonPin(), EventQueue::no_tick);
    EXPECT_EQ(eq.nextForeignTick(0), 7u);
    // With nothing pending, the pin alone forms the horizon.
    eq.pinHorizon(9);
    eq.run();
    EXPECT_EQ(eq.nextForeignTick(0), 9u);
}

TEST(EventQueue, ResetClearsHorizonPin)
{
    EventQueue eq;
    eq.pinHorizon(123);
    eq.reset();
    EXPECT_EQ(eq.horizonPin(), EventQueue::no_tick);
    EXPECT_EQ(eq.nextForeignTick(0), EventQueue::no_tick);
}

TEST(EventQueue, EarliestPendingResolvesCancelledRoot)
{
    EventQueue eq;
    EXPECT_EQ(eq.earliestPending(), EventQueue::no_tick);
    const EventId root = eq.schedule(10, [] {});
    eq.schedule(30, [] {});
    eq.schedule(20, [] {});
    EXPECT_EQ(eq.earliestPending(), 10u);
    // Cancelling the heap root leaves a tombstone in place; the
    // query must scan past it to the earliest live event.
    EXPECT_TRUE(eq.deschedule(root));
    EXPECT_EQ(eq.earliestPending(), 20u);
}

TEST(EventQueue, EarliestPendingPerPriorityTracksEachActor)
{
    EventQueue eq;
    std::vector<Tick> floors(3);

    eq.earliestPendingPerPriority(floors);
    for (Tick t : floors)
        EXPECT_EQ(t, EventQueue::no_tick);

    eq.schedule(40, [] {}, 0);
    eq.schedule(10, [] {}, 0);
    const EventId doomed = eq.schedule(5, [] {}, 1);
    eq.schedule(20, [] {}, 1);
    // Priority 2 has nothing scheduled; priority 7 is outside the
    // caller's window and must be ignored, not written out of range.
    eq.schedule(1, [] {}, 7);
    EXPECT_TRUE(eq.deschedule(doomed));

    eq.earliestPendingPerPriority(floors);
    EXPECT_EQ(floors[0], 10u);
    // The cancelled tick-5 tombstone must not count as pending.
    EXPECT_EQ(floors[1], 20u);
    EXPECT_EQ(floors[2], EventQueue::no_tick);
}

TEST(EventQueue, ShiftPendingPreservesOrderAndRelativeGaps)
{
    EventQueue eq;
    std::vector<std::pair<int, Tick>> seen;
    eq.schedule(10, [&] { seen.emplace_back(1, eq.now()); });
    eq.schedule(25, [&] { seen.emplace_back(3, eq.now()); });
    // Same tick, distinct priorities: order within the tick must
    // survive the shift (the packed key makes it a monotone
    // transform).
    eq.schedule(10, [&] { seen.emplace_back(2, eq.now()); }, 7);
    const EventId doomed = eq.schedule(15, [&] { seen.emplace_back(9, 0); });
    EXPECT_TRUE(eq.deschedule(doomed));

    eq.shiftPending(1000);
    eq.run();
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], (std::pair<int, Tick>{1, 1010u}));
    EXPECT_EQ(seen[1], (std::pair<int, Tick>{2, 1010u}));
    EXPECT_EQ(seen[2], (std::pair<int, Tick>{3, 1025u}));
}

TEST(EventQueue, EncodePendingIsCanonicalAcrossInsertionHistory)
{
    // Two queues holding the same logical pending set -- built in
    // different insertion orders, one with a cancelled extra -- must
    // encode identically relative to their bases.
    EventQueue a;
    EventQueue b;
    a.schedule(10, [] {}, 1);
    a.schedule(20, [] {}, 2);
    a.schedule(30, [] {}, 1);

    b.schedule(30, [] {}, 1);
    const EventId extra = b.schedule(15, [] {}, 9);
    b.schedule(10, [] {}, 1);
    b.schedule(20, [] {}, 2);
    EXPECT_TRUE(b.deschedule(extra));

    std::vector<std::uint64_t> enc_a;
    std::vector<std::uint64_t> enc_b;
    a.encodePending(0, enc_a);
    b.encodePending(0, enc_b);
    EXPECT_EQ(enc_a, enc_b);

    // A uniformly shifted set encodes identically against the
    // shifted base: this is what makes equal fingerprints imply a
    // periodic window.
    b.shiftPending(500);
    enc_b.clear();
    b.encodePending(500, enc_b);
    EXPECT_EQ(enc_a, enc_b);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue eq;
    Tick last = 0;
    bool monotonic = true;
    for (int i = 1000; i >= 1; --i) {
        eq.schedule(static_cast<Tick>(i), [&, i] {
            if (static_cast<Tick>(i) < last)
                monotonic = false;
            last = static_cast<Tick>(i);
        });
    }
    eq.run();
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(eq.executed(), 1000u);
}

} // namespace
} // namespace syncperf::sim
