/**
 * @file
 * Identity tests for lane-batched execution: a multi-lane run must
 * hand every in-step lane outputs bit-identical to the solo run a
 * fresh machine would produce, and must peel -- never share -- any
 * lane whose decoded image, seed, or iteration schedule diverges
 * from the reference (docs/performance.md, "Lane-batched sweeps").
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/metrics.hh"
#include "cpusim/machine.hh"
#include "gpusim/machine.hh"

namespace syncperf
{
namespace
{

// ------------------------------------------------------------- CPU

cpusim::CpuOp
op(cpusim::CpuOpKind kind, std::uint64_t addr = 0,
   DataType dtype = DataType::Int32, int lock_id = 0)
{
    cpusim::CpuOp o;
    o.kind = kind;
    o.addr = addr;
    o.dtype = dtype;
    o.lock_id = lock_id;
    return o;
}

std::vector<cpusim::CpuProgram>
cpuPrograms(std::vector<cpusim::CpuOp> body, int n_threads,
            long iterations)
{
    cpusim::CpuProgram p;
    p.body = std::move(body);
    p.iterations = iterations;
    return std::vector<cpusim::CpuProgram>(
        static_cast<std::size_t>(n_threads), p);
}

cpusim::CpuLaneOutcome
cpuSolo(const std::vector<cpusim::CpuProgram> &programs,
        std::uint64_t seed)
{
    cpusim::CpuMachine m(cpusim::CpuConfig{}, Affinity::Close, seed);
    cpusim::CpuLaneOutcome out;
    out.result = m.run(programs, /*warmup_iterations=*/2);
    out.stats = m.stats();
    return out;
}

void
expectCpuMatchesSolo(const cpusim::CpuLaneOutcome &lane,
                     const std::vector<cpusim::CpuProgram> &programs,
                     std::uint64_t seed)
{
    const auto solo = cpuSolo(programs, seed);
    EXPECT_EQ(lane.result.total_cycles, solo.result.total_cycles);
    EXPECT_EQ(lane.result.thread_cycles, solo.result.thread_cycles);
    EXPECT_EQ(lane.stats.all(), solo.stats.all());
}

TEST(CpuLaneExec, InStepLanesShareTheReferenceWalkBitIdentically)
{
    const auto programs =
        cpuPrograms({op(cpusim::CpuOpKind::AtomicRmw, 0x1000)}, 4, 60);
    cpusim::CpuMachine m(cpusim::CpuConfig{}, Affinity::Close, 1);
    const std::vector<cpusim::CpuLaneSpec> lanes(
        3, cpusim::CpuLaneSpec{&programs, 7, 0});
    const auto out = m.runLanes(lanes);
    ASSERT_EQ(out.size(), 3u);
    for (const auto &lane : out) {
        EXPECT_TRUE(lane.in_step);
        expectCpuMatchesSolo(lane, programs, 7);
    }
    // Sharing is literal: identical stat sets, not just cycles.
    EXPECT_EQ(out[1].stats.all(), out[0].stats.all());
    EXPECT_EQ(out[2].result.thread_cycles,
              out[0].result.thread_cycles);
}

TEST(CpuLaneExec, DivergentSeedPeelsToSoloRun)
{
    const auto programs =
        cpuPrograms({op(cpusim::CpuOpKind::Alu)}, 4, 50);
    cpusim::CpuMachine m(cpusim::CpuConfig{}, Affinity::Close, 1);
    const long long peels_before =
        metrics::value(metrics::Counter::LanePeels);
    const auto out = m.runLanes({{&programs, 3, 0}, {&programs, 4, 0}});
    EXPECT_TRUE(out[0].in_step);
    EXPECT_FALSE(out[1].in_step);
    EXPECT_EQ(metrics::value(metrics::Counter::LanePeels),
              peels_before + 1);
    expectCpuMatchesSolo(out[0], programs, 3);
    expectCpuMatchesSolo(out[1], programs, 4);
}

TEST(CpuLaneExec, DivergentIterationSchedulePeels)
{
    const auto a = cpuPrograms({op(cpusim::CpuOpKind::Alu)}, 4, 50);
    const auto b = cpuPrograms({op(cpusim::CpuOpKind::Alu)}, 4, 70);
    cpusim::CpuMachine m(cpusim::CpuConfig{}, Affinity::Close, 1);
    const auto out = m.runLanes({{&a, 5, 0}, {&b, 5, 0}});
    EXPECT_TRUE(out[0].in_step);
    EXPECT_FALSE(out[1].in_step);
    expectCpuMatchesSolo(out[1], b, 5);
}

TEST(CpuLaneExec, DivergentProgramShapePeels)
{
    // Different handler sequences decode to different images, so the
    // fingerprints disagree even at equal length and iterations.
    const auto a =
        cpuPrograms({op(cpusim::CpuOpKind::AtomicRmw, 0x1000)}, 4, 50);
    const auto b =
        cpuPrograms({op(cpusim::CpuOpKind::Load, 0x1000)}, 4, 50);
    cpusim::CpuMachine m(cpusim::CpuConfig{}, Affinity::Close, 1);
    const auto out = m.runLanes({{&a, 5, 0}, {&b, 5, 0}});
    EXPECT_FALSE(out[1].in_step);
    expectCpuMatchesSolo(out[0], a, 5);
    expectCpuMatchesSolo(out[1], b, 5);
}

TEST(CpuLaneExec, DtypeMergedProgramsStayInStep)
{
    // The decode-collapse economics the planner exploits: int and
    // unsigned-long-long atomic updates decode to the same handler
    // stream, so their lanes agree and share one walk.
    const auto a = cpuPrograms(
        {op(cpusim::CpuOpKind::AtomicRmw, 0x1000, DataType::Int32)}, 4,
        50);
    const auto b = cpuPrograms(
        {op(cpusim::CpuOpKind::AtomicRmw, 0x1000, DataType::UInt64)},
        4, 50);
    cpusim::CpuMachine m(cpusim::CpuConfig{}, Affinity::Close, 1);
    const auto out = m.runLanes({{&a, 5, 0}, {&b, 5, 0}});
    EXPECT_TRUE(out[1].in_step);
    expectCpuMatchesSolo(out[1], b, 5);
}

// ------------------------------------------------------------- GPU

gpusim::GpuKernel
bodyKernel(std::vector<gpusim::GpuOp> body, long iters = 40)
{
    gpusim::GpuKernel k;
    k.body = std::move(body);
    k.body_iters = iters;
    return k;
}

gpusim::GpuConfig
testGpu()
{
    gpusim::GpuConfig c = gpusim::GpuConfig::rtx4090();
    c.name = "test gpu";
    return c;
}

constexpr gpusim::LaunchConfig launch{2, 64};

gpusim::GpuLaneOutcome
gpuSolo(const gpusim::GpuKernel &kernel, std::uint64_t seed)
{
    gpusim::GpuMachine m(testGpu(), seed);
    gpusim::GpuLaneOutcome out;
    out.result = m.run(kernel, launch, /*warmup_iterations=*/2);
    out.stats = m.stats();
    return out;
}

void
expectGpuMatchesSolo(const gpusim::GpuLaneOutcome &lane,
                     const gpusim::GpuKernel &kernel,
                     std::uint64_t seed)
{
    const auto solo = gpuSolo(kernel, seed);
    EXPECT_EQ(lane.result.total_cycles, solo.result.total_cycles);
    EXPECT_EQ(lane.result.thread_cycles, solo.result.thread_cycles);
    EXPECT_EQ(lane.stats.all(), solo.stats.all());
}

TEST(GpuLaneExec, InStepLanesShareTheReferenceWalkBitIdentically)
{
    const auto k = bodyKernel({gpusim::GpuOp::syncThreads()});
    gpusim::GpuMachine m(testGpu(), 1);
    const std::vector<gpusim::GpuLaneSpec> lanes(
        3, gpusim::GpuLaneSpec{&k, 9, 0});
    const auto out = m.runLanes(lanes, launch);
    ASSERT_EQ(out.size(), 3u);
    for (const auto &lane : out) {
        EXPECT_TRUE(lane.in_step);
        expectGpuMatchesSolo(lane, k, 9);
    }
    EXPECT_EQ(out[2].stats.all(), out[0].stats.all());
}

TEST(GpuLaneExec, DivergentSeedPeelsToSoloLaunch)
{
    const auto k = bodyKernel({gpusim::GpuOp::syncWarp()});
    gpusim::GpuMachine m(testGpu(), 1);
    const long long peels_before =
        metrics::value(metrics::Counter::LanePeels);
    const auto out = m.runLanes({{&k, 3, 0}, {&k, 4, 0}}, launch);
    EXPECT_TRUE(out[0].in_step);
    EXPECT_FALSE(out[1].in_step);
    EXPECT_EQ(metrics::value(metrics::Counter::LanePeels),
              peels_before + 1);
    expectGpuMatchesSolo(out[0], k, 3);
    expectGpuMatchesSolo(out[1], k, 4);
}

TEST(GpuLaneExec, DivergentBodyItersPeels)
{
    const auto a = bodyKernel({gpusim::GpuOp::syncWarp()}, 40);
    const auto b = bodyKernel({gpusim::GpuOp::syncWarp()}, 60);
    gpusim::GpuMachine m(testGpu(), 1);
    const auto out = m.runLanes({{&a, 5, 0}, {&b, 5, 0}}, launch);
    EXPECT_FALSE(out[1].in_step);
    expectGpuMatchesSolo(out[1], b, 5);
}

TEST(GpuLaneExec, DtypeMergedShflKernelsStayInStep)
{
    // shfl decodes identically for same-width element types, the GPU
    // half of the planner's decode-collapse economics.
    const auto a = bodyKernel({gpusim::GpuOp::shfl(DataType::Int32)});
    const auto b = bodyKernel({gpusim::GpuOp::shfl(DataType::Float32)});
    gpusim::GpuMachine m(testGpu(), 1);
    const auto out = m.runLanes({{&a, 5, 0}, {&b, 5, 0}}, launch);
    EXPECT_TRUE(out[1].in_step);
    expectGpuMatchesSolo(out[1], b, 5);
}

TEST(GpuLaneExec, DivergentKernelShapePeels)
{
    const auto a = bodyKernel({gpusim::GpuOp::syncThreads()});
    const auto b = bodyKernel({gpusim::GpuOp::vote()});
    gpusim::GpuMachine m(testGpu(), 1);
    const auto out = m.runLanes({{&a, 5, 0}, {&b, 5, 0}}, launch);
    EXPECT_FALSE(out[1].in_step);
    expectGpuMatchesSolo(out[0], a, 5);
    expectGpuMatchesSolo(out[1], b, 5);
}

} // namespace
} // namespace syncperf
