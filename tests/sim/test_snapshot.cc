/**
 * @file
 * Tests for the versioned, checksummed snapshot container.
 *
 * The corruption matrix is exhaustive on purpose: every single-byte
 * flip and every truncation length of a real image must produce a
 * clean ParseError, because campaign workers load these files from a
 * shared directory that a crashed or racing writer may have mangled.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "sim/snapshot.hh"

namespace syncperf::sim
{
namespace
{

namespace fs = std::filesystem;

class SnapshotTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("syncperf_snapshot_test_" + std::to_string(::getpid()));
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void
    TearDown() override
    {
        fs::remove_all(dir_);
    }

    static std::string
    slurp(const fs::path &p)
    {
        std::ifstream in(p, std::ios::binary);
        return std::string((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    }

    static void
    spew(const fs::path &p, const std::string &bytes)
    {
        std::ofstream out(p, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    fs::path dir_;
};

TEST_F(SnapshotTest, RoundTripPreservesWords)
{
    const std::vector<std::uint64_t> words = {
        0, 1, 0xffffffffffffffffULL, 0x0123456789abcdefULL, 42};
    const fs::path path = dir_ / "img.snap";
    ASSERT_TRUE(writeSnapshotFile(path, SnapshotKind::CpuImage,
                                  0xdeadbeefULL, words)
                    .isOk());
    auto r = readSnapshotFile(path, SnapshotKind::CpuImage,
                              0xdeadbeefULL);
    ASSERT_TRUE(r.status().isOk()) << r.status().message();
    EXPECT_EQ(r.value(), words);
}

TEST_F(SnapshotTest, RoundTripEmptyPayload)
{
    const fs::path path = dir_ / "empty.snap";
    ASSERT_TRUE(writeSnapshotFile(path, SnapshotKind::GpuImage, 7, {})
                    .isOk());
    auto r = readSnapshotFile(path, SnapshotKind::GpuImage, 7);
    ASSERT_TRUE(r.status().isOk()) << r.status().message();
    EXPECT_TRUE(r.value().empty());
}

TEST_F(SnapshotTest, MissingFileIsIoError)
{
    auto r = readSnapshotFile(dir_ / "nope.snap",
                              SnapshotKind::CpuImage, 1);
    ASSERT_FALSE(r.status().isOk());
    EXPECT_EQ(r.status().code(), ErrorCode::IoError);
}

TEST_F(SnapshotTest, WrongKindAndKeyAreRejected)
{
    const fs::path path = dir_ / "img.snap";
    ASSERT_TRUE(writeSnapshotFile(path, SnapshotKind::CpuImage, 5,
                                  {1, 2, 3})
                    .isOk());
    auto wrong_kind =
        readSnapshotFile(path, SnapshotKind::GpuImage, 5);
    ASSERT_FALSE(wrong_kind.status().isOk());
    EXPECT_EQ(wrong_kind.status().code(), ErrorCode::ParseError);

    auto wrong_key = readSnapshotFile(path, SnapshotKind::CpuImage, 6);
    ASSERT_FALSE(wrong_key.status().isOk());
    EXPECT_EQ(wrong_key.status().code(), ErrorCode::ParseError);
}

TEST_F(SnapshotTest, EveryByteFlipIsRejected)
{
    const fs::path path = dir_ / "img.snap";
    ASSERT_TRUE(writeSnapshotFile(path, SnapshotKind::CpuImage, 9,
                                  {0x1111, 0x2222, 0x3333})
                    .isOk());
    const std::string good = slurp(path);
    ASSERT_GT(good.size(), 0u);

    const fs::path mangled = dir_ / "mangled.snap";
    for (std::size_t off = 0; off < good.size(); ++off) {
        for (unsigned char bit : {0x01, 0x80}) {
            std::string bad = good;
            bad[off] = static_cast<char>(
                static_cast<unsigned char>(bad[off]) ^ bit);
            spew(mangled, bad);
            auto r = readSnapshotFile(mangled, SnapshotKind::CpuImage,
                                      9);
            ASSERT_FALSE(r.status().isOk())
                << "flip of bit " << static_cast<int>(bit)
                << " at byte " << off << " was accepted";
            EXPECT_EQ(r.status().code(), ErrorCode::ParseError)
                << "at byte " << off;
        }
    }
}

TEST_F(SnapshotTest, EveryTruncationLengthIsRejected)
{
    const fs::path path = dir_ / "img.snap";
    ASSERT_TRUE(writeSnapshotFile(path, SnapshotKind::GpuImage, 11,
                                  {4, 5, 6, 7})
                    .isOk());
    const std::string good = slurp(path);
    ASSERT_GT(good.size(), 0u);

    const fs::path torn = dir_ / "torn.snap";
    for (std::size_t len = 0; len < good.size(); ++len) {
        spew(torn, good.substr(0, len));
        auto r = readSnapshotFile(torn, SnapshotKind::GpuImage, 11);
        ASSERT_FALSE(r.status().isOk())
            << "truncation to " << len << " bytes was accepted";
        EXPECT_EQ(r.status().code(), ErrorCode::ParseError)
            << "at length " << len;
    }
}

TEST_F(SnapshotTest, TrailingGarbageIsRejected)
{
    const fs::path path = dir_ / "img.snap";
    ASSERT_TRUE(writeSnapshotFile(path, SnapshotKind::CpuImage, 3,
                                  {10, 20})
                    .isOk());
    std::string padded = slurp(path);
    padded.push_back('\0');
    spew(path, padded);
    auto r = readSnapshotFile(path, SnapshotKind::CpuImage, 3);
    ASSERT_FALSE(r.status().isOk());
    EXPECT_EQ(r.status().code(), ErrorCode::ParseError);
}

TEST_F(SnapshotTest, FutureVersionIsRejected)
{
    const fs::path path = dir_ / "img.snap";
    ASSERT_TRUE(writeSnapshotFile(path, SnapshotKind::CpuImage, 3,
                                  {10, 20})
                    .isOk());
    std::string bumped = slurp(path);
    // The version is the u32 at byte 24; bump its low byte from 1 to 2.
    ASSERT_EQ(bumped[24], 1);
    bumped[24] = 2;
    spew(path, bumped);
    auto r = readSnapshotFile(path, SnapshotKind::CpuImage, 3);
    ASSERT_FALSE(r.status().isOk());
    EXPECT_EQ(r.status().code(), ErrorCode::ParseError);
    EXPECT_NE(r.status().message().find("version"), std::string::npos);
}

TEST_F(SnapshotTest, ImplausiblePayloadSizeIsRejected)
{
    const fs::path path = dir_ / "img.snap";
    ASSERT_TRUE(writeSnapshotFile(path, SnapshotKind::CpuImage, 3, {1})
                    .isOk());
    std::string huge = slurp(path);
    // n_words is the u64 at byte 40; claim ~2^56 words without
    // shipping them.
    huge[47] = 0x7f;
    spew(path, huge);
    auto r = readSnapshotFile(path, SnapshotKind::CpuImage, 3);
    ASSERT_FALSE(r.status().isOk());
    EXPECT_EQ(r.status().code(), ErrorCode::ParseError);
}

TEST_F(SnapshotTest, FileNamesAreStableAndZeroPadded)
{
    EXPECT_EQ(snapshotFileName(SnapshotKind::CpuImage, 0x1a2bULL),
              "cpu-0000000000001a2b.snap");
    EXPECT_EQ(snapshotFileName(SnapshotKind::GpuImage,
                               0xffffffffffffffffULL),
              "gpu-ffffffffffffffff.snap");
}

TEST(SnapshotCursorTest, ReadsInOrderAndReportsDone)
{
    const std::vector<std::uint64_t> words = {1, 2, 3};
    SnapshotCursor cur(words);
    std::uint64_t a = 0, b = 0;
    std::int64_t c = 0;
    EXPECT_TRUE(cur.u64(a));
    EXPECT_TRUE(cur.u64(b));
    EXPECT_FALSE(cur.done());
    EXPECT_TRUE(cur.i64(c));
    EXPECT_EQ(a, 1u);
    EXPECT_EQ(b, 2u);
    EXPECT_EQ(c, 3);
    EXPECT_TRUE(cur.done());
    EXPECT_FALSE(cur.overran());
}

TEST(SnapshotCursorTest, OverrunIsSticky)
{
    const std::vector<std::uint64_t> words = {9};
    SnapshotCursor cur(words);
    std::uint64_t v = 0;
    EXPECT_TRUE(cur.u64(v));
    EXPECT_FALSE(cur.u64(v));
    EXPECT_TRUE(cur.overran());
    EXPECT_FALSE(cur.done());
    // Even a read that would now be in bounds stays failed.
    EXPECT_FALSE(cur.u64(v));
}

} // namespace
} // namespace syncperf::sim
