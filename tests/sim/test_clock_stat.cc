/**
 * @file
 * Unit tests for clock domains and stat counters.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "sim/clock.hh"
#include "sim/stat.hh"

namespace syncperf::sim
{
namespace
{

TEST(ClockDomain, CyclesToSeconds)
{
    const ClockDomain clk(2.0e9);  // 2 GHz
    EXPECT_DOUBLE_EQ(clk.toSeconds(2000000000ULL), 1.0);
    EXPECT_DOUBLE_EQ(clk.toSeconds(1), 0.5e-9);
}

TEST(ClockDomain, SecondsToCycles)
{
    const ClockDomain clk(3.5e9);
    EXPECT_EQ(clk.toCycles(1.0), 3500000000ULL);
    EXPECT_EQ(clk.toCycles(0.0), 0ULL);
}

TEST(ClockDomain, PeriodIsReciprocal)
{
    const ClockDomain clk(1.0e9);
    EXPECT_DOUBLE_EQ(clk.period(), 1.0e-9);
    EXPECT_DOUBLE_EQ(clk.frequencyHz(), 1.0e9);
}

TEST(ClockDomain, RoundTripIsConsistent)
{
    const ClockDomain clk(2.625e9);  // the RTX 4090 preset clock
    const Tick cycles = 123456789;
    EXPECT_NEAR(static_cast<double>(clk.toCycles(clk.toSeconds(cycles))),
                static_cast<double>(cycles), 1.0);
}

TEST(StatSet, DefaultsToZero)
{
    StatSet stats;
    EXPECT_EQ(stats.get("nothing"), 0u);
}

TEST(StatSet, IncrementAccumulates)
{
    StatSet stats;
    stats.inc("a");
    stats.inc("a", 4);
    EXPECT_EQ(stats.get("a"), 5u);
}

TEST(StatSet, AllIsSortedByName)
{
    StatSet stats;
    stats.inc("zeta");
    stats.inc("alpha");
    const auto &all = stats.all();
    EXPECT_EQ(all.begin()->first, "alpha");
}

TEST(StatSet, ClearResets)
{
    StatSet stats;
    stats.inc("x", 10);
    stats.clear();
    EXPECT_EQ(stats.get("x"), 0u);
    EXPECT_TRUE(stats.all().empty());
}

TEST(StatSet, InternedProbeRoundTrip)
{
    StatSet stats;
    stats.inc(Probe::CpuL1Hit);
    stats.inc(Probe::CpuL1Hit, 4);
    EXPECT_EQ(stats.get(Probe::CpuL1Hit), 5u);
    EXPECT_EQ(stats.get(Probe::GpuSyncthreads), 0u);
}

TEST(StatSet, StringApiResolvesInternedProbes)
{
    // The historical string names and the interned probes are the
    // same counters: tests that assert via strings keep working.
    StatSet stats;
    stats.inc(Probe::GpuAtomicAggregated, 7);
    EXPECT_EQ(stats.get("gpu.atomic_aggregated"), 7u);
    stats.inc("gpu.atomic_aggregated", 3);
    EXPECT_EQ(stats.get(Probe::GpuAtomicAggregated), 10u);
}

TEST(StatSet, AllMergesProbesAndAdHocNamesSorted)
{
    StatSet stats;
    stats.inc(Probe::CpuLinePingPong, 2);
    stats.inc("zz_custom", 1);
    stats.inc(Probe::GpuFence); // zero probes must stay absent
    const auto all = stats.all();
    ASSERT_EQ(all.size(), 3u);
    auto it = all.begin();
    EXPECT_EQ(it->first, "cpu.line_ping_pong");
    ++it;
    EXPECT_EQ(it->first, "gpu.fence");
    ++it;
    EXPECT_EQ(it->first, "zz_custom");
    EXPECT_EQ(all.count("cpu.l1_hit"), 0u);
}

TEST(StatSet, EveryProbeHasAUniqueName)
{
    std::map<std::string, int> seen;
    for (int i = 0; i < static_cast<int>(Probe::Count); ++i)
        ++seen[probeName(static_cast<Probe>(i))];
    EXPECT_EQ(seen.size(),
              static_cast<std::size_t>(static_cast<int>(Probe::Count)));
    for (int i = 0; i < static_cast<int>(HistProbe::Count); ++i)
        ++seen[histProbeName(static_cast<HistProbe>(i))];
    EXPECT_EQ(seen.size(),
              static_cast<std::size_t>(static_cast<int>(Probe::Count) +
                                       static_cast<int>(
                                           HistProbe::Count)));
}

TEST(StatSet, HistogramRecordAndClear)
{
    StatSet stats;
    stats.record(HistProbe::CpuAcqWaitTicks, 16);
    stats.record(HistProbe::CpuAcqWaitTicks, 48);
    EXPECT_EQ(stats.hist(HistProbe::CpuAcqWaitTicks).count(), 2u);
    EXPECT_EQ(stats.hist(HistProbe::CpuAcqWaitTicks).sum(), 64u);
    EXPECT_TRUE(stats.hist(HistProbe::GpuFenceStallTicks).empty());
    stats.clear();
    EXPECT_TRUE(stats.hist(HistProbe::CpuAcqWaitTicks).empty());
}

} // namespace
} // namespace syncperf::sim
