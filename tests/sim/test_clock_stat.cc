/**
 * @file
 * Unit tests for clock domains and stat counters.
 */

#include <gtest/gtest.h>

#include "sim/clock.hh"
#include "sim/stat.hh"

namespace syncperf::sim
{
namespace
{

TEST(ClockDomain, CyclesToSeconds)
{
    const ClockDomain clk(2.0e9);  // 2 GHz
    EXPECT_DOUBLE_EQ(clk.toSeconds(2000000000ULL), 1.0);
    EXPECT_DOUBLE_EQ(clk.toSeconds(1), 0.5e-9);
}

TEST(ClockDomain, SecondsToCycles)
{
    const ClockDomain clk(3.5e9);
    EXPECT_EQ(clk.toCycles(1.0), 3500000000ULL);
    EXPECT_EQ(clk.toCycles(0.0), 0ULL);
}

TEST(ClockDomain, PeriodIsReciprocal)
{
    const ClockDomain clk(1.0e9);
    EXPECT_DOUBLE_EQ(clk.period(), 1.0e-9);
    EXPECT_DOUBLE_EQ(clk.frequencyHz(), 1.0e9);
}

TEST(ClockDomain, RoundTripIsConsistent)
{
    const ClockDomain clk(2.625e9);  // the RTX 4090 preset clock
    const Tick cycles = 123456789;
    EXPECT_NEAR(static_cast<double>(clk.toCycles(clk.toSeconds(cycles))),
                static_cast<double>(cycles), 1.0);
}

TEST(StatSet, DefaultsToZero)
{
    StatSet stats;
    EXPECT_EQ(stats.get("nothing"), 0u);
}

TEST(StatSet, IncrementAccumulates)
{
    StatSet stats;
    stats.inc("a");
    stats.inc("a", 4);
    EXPECT_EQ(stats.get("a"), 5u);
}

TEST(StatSet, AllIsSortedByName)
{
    StatSet stats;
    stats.inc("zeta");
    stats.inc("alpha");
    const auto &all = stats.all();
    EXPECT_EQ(all.begin()->first, "alpha");
}

TEST(StatSet, ClearResets)
{
    StatSet stats;
    stats.inc("x", 10);
    stats.clear();
    EXPECT_EQ(stats.get("x"), 0u);
    EXPECT_TRUE(stats.all().empty());
}

} // namespace
} // namespace syncperf::sim
