/**
 * @file
 * Tests for the deterministic fault injector: every mode, plus its
 * integration with the sim targets and the atomic file layer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>

#include <unistd.h>

#include "common/atomic_file.hh"
#include "core/cpusim_target.hh"
#include "core/gpusim_target.hh"
#include "sim/fault_injector.hh"

namespace syncperf::sim
{
namespace
{

namespace fs = std::filesystem;

core::MeasurementConfig
tinyProtocol()
{
    auto cfg = core::MeasurementConfig::simDefaults();
    cfg.runs = 1;
    cfg.attempts = 1;
    cfg.n_iter = 5;
    cfg.n_unroll = 2;
    return cfg;
}

core::OmpExperiment
barrierExperiment()
{
    core::OmpExperiment exp;
    exp.primitive = core::OmpPrimitive::Barrier;
    return exp;
}

TEST(FaultInjector, InactiveByDefault)
{
    EXPECT_EQ(FaultInjector::active(), nullptr);
}

TEST(FaultInjector, ScopeInstallsAndRestores)
{
    FaultInjector outer;
    {
        FaultInjector::Scope a(outer);
        EXPECT_EQ(FaultInjector::active(), &outer);
        FaultInjector inner;
        {
            FaultInjector::Scope b(inner);
            EXPECT_EQ(FaultInjector::active(), &inner);
        }
        EXPECT_EQ(FaultInjector::active(), &outer);
    }
    EXPECT_EQ(FaultInjector::active(), nullptr);
}

TEST(FaultInjector, ClockSkewScalesRuntimes)
{
    FaultInjector faults;
    faults.setClockSkew(2.0);
    EXPECT_DOUBLE_EQ(faults.perturbSeconds(1.5e-3), 3.0e-3);
}

TEST(FaultInjector, JitterIsBoundedAndSeeded)
{
    FaultInjector a;
    a.setJitter(0.5, 99);
    FaultInjector b;
    b.setJitter(0.5, 99);
    for (int i = 0; i < 100; ++i) {
        const double pa = a.perturbSeconds(1.0);
        EXPECT_GE(pa, 1.0);
        EXPECT_LE(pa, 1.5);
        EXPECT_DOUBLE_EQ(pa, b.perturbSeconds(1.0));
    }

    FaultInjector c;
    c.setJitter(0.5, 100); // different seed, different stream
    bool any_different = false;
    FaultInjector d;
    d.setJitter(0.5, 99);
    for (int i = 0; i < 10; ++i)
        any_different |= c.perturbSeconds(1.0) != d.perturbSeconds(1.0);
    EXPECT_TRUE(any_different);
}

TEST(FaultInjector, PoisonsExactlyTheConfiguredWindow)
{
    FaultInjector faults;
    faults.poisonMeasurements(3, 2);
    EXPECT_FALSE(faults.shouldPoisonMeasurement()); // 1
    EXPECT_FALSE(faults.shouldPoisonMeasurement()); // 2
    EXPECT_TRUE(faults.shouldPoisonMeasurement());  // 3
    EXPECT_TRUE(faults.shouldPoisonMeasurement());  // 4
    EXPECT_FALSE(faults.shouldPoisonMeasurement()); // 5
    EXPECT_EQ(faults.measurementCount(), 5);
}

TEST(FaultInjector, FailsExactlyTheConfiguredWriteOps)
{
    FaultInjector faults;
    faults.failWrites(2, 1);
    EXPECT_TRUE(faults.onWriteOp("a.csv", "open").isOk());
    const Status s = faults.onWriteOp("a.csv", "commit");
    EXPECT_EQ(s.code(), ErrorCode::FaultInjected);
    EXPECT_TRUE(faults.onWriteOp("b.csv", "open").isOk());
    EXPECT_EQ(faults.writeOpCount(), 3);
}

TEST(FaultInjector, ScopeRoutesAtomicFileThroughInjector)
{
    const fs::path dir =
        fs::temp_directory_path() /
        ("syncperf_fault_injector_test_" + std::to_string(::getpid()));
    fs::remove_all(dir);

    FaultInjector faults;
    faults.failWrites(1, 1); // first op (the open) fails
    {
        FaultInjector::Scope scope(faults);
        AtomicFile out;
        EXPECT_EQ(out.open(dir / "x.csv").code(),
                  ErrorCode::FaultInjected);
        // Second op succeeds: transient fault.
        AtomicFile retry;
        ASSERT_TRUE(retry.open(dir / "x.csv").isOk());
        retry.stream() << "ok";
        EXPECT_TRUE(retry.commit().isOk());
    }
    EXPECT_TRUE(fs::exists(dir / "x.csv"));
    fs::remove_all(dir);
}

TEST(FaultInjector, SkewShiftsMeasuredCostDeterministically)
{
    const auto exp = barrierExperiment();
    const auto protocol = tinyProtocol();

    core::CpuSimTarget clean(cpusim::CpuConfig::system3(), protocol);
    const double baseline = clean.measure(exp, 2).per_op_seconds;

    FaultInjector faults;
    faults.setClockSkew(2.0);
    FaultInjector::Scope scope(faults);
    core::CpuSimTarget skewed(cpusim::CpuConfig::system3(), protocol);
    const auto m = skewed.measure(exp, 2);
    ASSERT_TRUE(m.valid);
    EXPECT_NEAR(m.per_op_seconds, 2.0 * baseline,
                1e-6 * std::fabs(baseline));
}

TEST(FaultInjector, TransientPoisonIsAbsorbedByProtocolRetry)
{
    FaultInjector faults;
    faults.poisonMeasurements(1, 1); // first timed launch only
    FaultInjector::Scope scope(faults);

    core::CpuSimTarget target(cpusim::CpuConfig::system3(),
                              tinyProtocol());
    const auto m = target.measure(barrierExperiment(), 2);
    EXPECT_TRUE(m.valid);
    EXPECT_GT(m.retries, 0);
    EXPECT_TRUE(std::isfinite(m.per_op_seconds));
}

TEST(FaultInjector, PersistentPoisonYieldsInvalidMeasurement)
{
    FaultInjector faults;
    faults.poisonMeasurements(1, 1 << 20); // every launch
    FaultInjector::Scope scope(faults);

    auto protocol = tinyProtocol();
    protocol.max_retries = 3;
    core::CpuSimTarget target(cpusim::CpuConfig::system3(), protocol);
    const auto m = target.measure(barrierExperiment(), 2);
    EXPECT_FALSE(m.valid);
    EXPECT_FALSE(m.error.empty());
    EXPECT_TRUE(std::isnan(m.per_op_seconds));
    EXPECT_TRUE(std::isnan(m.opsPerSecondPerThread()));
}

TEST(FaultInjector, GpuTargetHonorsPoisoning)
{
    FaultInjector faults;
    faults.poisonMeasurements(1, 1 << 20);
    FaultInjector::Scope scope(faults);

    auto protocol = core::MeasurementConfig::simGpuDefaults();
    protocol.runs = 1;
    protocol.attempts = 1;
    protocol.n_iter = 5;
    protocol.n_unroll = 2;
    protocol.max_retries = 2;

    core::CudaExperiment exp;
    exp.primitive = core::CudaPrimitive::SyncWarp;
    core::GpuSimTarget target(gpusim::GpuConfig::rtx4090(), protocol);
    const auto m = target.measure(exp, {1, 32});
    EXPECT_FALSE(m.valid);
}

} // namespace
} // namespace syncperf::sim
