/**
 * @file
 * Identity tests for steady-state loop batching: for every workload
 * class the simulators model, a batched run must produce cycle
 * counts bit-identical to single-stepping, the batcher must engage
 * on uncontended steady states, fall back around contention, and
 * respect a pinned horizon (docs/performance.md, "Loop batching").
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cpusim/machine.hh"
#include "gpusim/machine.hh"
#include "sim/loop_batch.hh"

namespace syncperf
{
namespace
{

// ------------------------------------------------------------- CPU

cpusim::CpuOp
op(cpusim::CpuOpKind kind, std::uint64_t addr = 0,
   DataType dtype = DataType::Int32, int lock_id = 0)
{
    cpusim::CpuOp o;
    o.kind = kind;
    o.addr = addr;
    o.dtype = dtype;
    o.lock_id = lock_id;
    return o;
}

cpusim::CpuProgram
program(std::vector<cpusim::CpuOp> body, long iterations)
{
    cpusim::CpuProgram p;
    p.body = std::move(body);
    p.iterations = iterations;
    return p;
}

cpusim::CpuRunResult
runCpu(const std::vector<cpusim::CpuProgram> &programs, bool batch,
       sim::LoopBatchCounters *lb = nullptr,
       sim::Tick pin = sim::EventQueue::no_tick)
{
    cpusim::CpuMachine m(cpusim::CpuConfig{}, Affinity::Close, 42);
    m.setLoopBatch(batch);
    m.setBatchHorizonPin(pin);
    const auto r = m.run(programs, /*warmup_iterations=*/2);
    if (lb != nullptr)
        *lb = m.loopBatch();
    return r;
}

void
expectCpuIdentity(const std::vector<cpusim::CpuProgram> &programs,
                  sim::LoopBatchCounters &lb)
{
    const auto batched = runCpu(programs, true, &lb);
    const auto stepped = runCpu(programs, false);
    EXPECT_EQ(batched.total_cycles, stepped.total_cycles);
    EXPECT_EQ(batched.thread_cycles, stepped.thread_cycles);
}

TEST(CpuLoopBatch, UncontendedAluBatchesAndMatchesSingleStep)
{
    const std::vector<cpusim::CpuProgram> programs(
        4, program({op(cpusim::CpuOpKind::Alu)}, 200));
    sim::LoopBatchCounters lb;
    expectCpuIdentity(programs, lb);
    EXPECT_GT(lb.windows, 0u);
    EXPECT_GT(lb.batched_iters, 0u);
    EXPECT_EQ(lb.total_iters, 4u * 200u);
}

TEST(CpuLoopBatch, PrivateLineRmwBatchesAndMatchesSingleStep)
{
    std::vector<cpusim::CpuProgram> programs;
    for (int tid = 0; tid < 4; ++tid) {
        const std::uint64_t slot =
            0x1000 + static_cast<std::uint64_t>(tid) * 64;
        programs.push_back(program({op(cpusim::CpuOpKind::Load, slot),
                                    op(cpusim::CpuOpKind::Alu),
                                    op(cpusim::CpuOpKind::Store, slot)},
                                   200));
    }
    sim::LoopBatchCounters lb;
    expectCpuIdentity(programs, lb);
    EXPECT_GT(lb.batched_iters, 0u);
}

TEST(CpuLoopBatch, ContendedAtomicsMatchSingleStepAndFallBack)
{
    // All four threads hammer one shared line: the coherence pattern
    // keeps shifting, so boundary checks must keep falling back --
    // and whatever does batch must still change nothing.
    const std::vector<cpusim::CpuProgram> programs(
        4, program({op(cpusim::CpuOpKind::AtomicRmw, 0x2000)}, 150));
    sim::LoopBatchCounters lb;
    expectCpuIdentity(programs, lb);
    EXPECT_GT(lb.fallbacks, 0u);
}

TEST(CpuLoopBatch, BarrierTeamMatchesSingleStep)
{
    const std::vector<cpusim::CpuProgram> programs(
        8, program({op(cpusim::CpuOpKind::Alu),
                    op(cpusim::CpuOpKind::Barrier)},
                   150));
    sim::LoopBatchCounters lb;
    expectCpuIdentity(programs, lb);
}

TEST(CpuLoopBatch, LockLoopMatchesSingleStep)
{
    const std::vector<cpusim::CpuProgram> programs(
        4, program({op(cpusim::CpuOpKind::LockAcquire, 0x3000,
                       DataType::Int32, 1),
                    op(cpusim::CpuOpKind::Alu),
                    op(cpusim::CpuOpKind::LockRelease, 0x3000,
                       DataType::Int32, 1)},
                   150));
    sim::LoopBatchCounters lb;
    expectCpuIdentity(programs, lb);
    EXPECT_GT(lb.fallbacks, 0u);
}

TEST(CpuLoopBatch, MultiIterationRunRecordsAFallback)
{
    // The boundaries nearest the loop end can never batch past it,
    // so any run with >= 2 timed iterations records a fallback.
    const std::vector<cpusim::CpuProgram> programs(
        2, program({op(cpusim::CpuOpKind::Alu)}, 50));
    sim::LoopBatchCounters lb;
    expectCpuIdentity(programs, lb);
    EXPECT_GT(lb.fallbacks, 0u);
}

TEST(CpuLoopBatch, HorizonPinShrinksBatchingButNotResults)
{
    const std::vector<cpusim::CpuProgram> programs(
        4, program({op(cpusim::CpuOpKind::Alu)}, 200));

    sim::LoopBatchCounters unpinned;
    const auto reference = runCpu(programs, true, &unpinned);
    ASSERT_GT(unpinned.batched_iters, 0u);

    // Pin mid-run: windows may not jump across it, so strictly less
    // gets batched -- with identical cycle counts.
    sim::LoopBatchCounters pinned;
    const auto capped = runCpu(programs, true, &pinned,
                               reference.total_cycles / 2);
    EXPECT_EQ(capped.total_cycles, reference.total_cycles);
    EXPECT_EQ(capped.thread_cycles, reference.thread_cycles);
    EXPECT_LT(pinned.batched_iters, unpinned.batched_iters);

    // Pin at tick 0: every boundary is at or past it, nothing may
    // batch at all.
    sim::LoopBatchCounters frozen;
    const auto stepped = runCpu(programs, true, &frozen, 0);
    EXPECT_EQ(stepped.total_cycles, reference.total_cycles);
    EXPECT_EQ(stepped.thread_cycles, reference.thread_cycles);
    EXPECT_EQ(frozen.batched_iters, 0u);
    EXPECT_EQ(frozen.windows, 0u);
}

// ------------------------------------------------------------- GPU

gpusim::GpuKernel
kernel(std::vector<gpusim::GpuOp> body, long iterations)
{
    gpusim::GpuKernel k;
    k.body = std::move(body);
    k.body_iters = iterations;
    return k;
}

gpusim::GpuRunResult
runGpu(const gpusim::GpuKernel &k, gpusim::LaunchConfig launch,
       bool batch, sim::LoopBatchCounters *lb = nullptr,
       sim::Tick pin = sim::EventQueue::no_tick)
{
    gpusim::GpuMachine m(gpusim::GpuConfig{}, 7);
    m.setLoopBatch(batch);
    m.setBatchHorizonPin(pin);
    const auto r = m.run(k, launch, /*warmup_iterations=*/2);
    if (lb != nullptr)
        *lb = m.loopBatch();
    return r;
}

void
expectGpuIdentity(const gpusim::GpuKernel &k,
                  gpusim::LaunchConfig launch,
                  sim::LoopBatchCounters &lb)
{
    const auto batched = runGpu(k, launch, true, &lb);
    const auto stepped = runGpu(k, launch, false);
    EXPECT_EQ(batched.total_cycles, stepped.total_cycles);
    EXPECT_EQ(batched.thread_cycles, stepped.thread_cycles);
}

TEST(GpuLoopBatch, UncontendedAluBatchesAndMatchesSingleStep)
{
    sim::LoopBatchCounters lb;
    expectGpuIdentity(kernel({gpusim::GpuOp::alu(4)}, 100), {8, 128},
                      lb);
    EXPECT_GT(lb.windows, 0u);
    EXPECT_GT(lb.batched_iters, 0u);
}

TEST(GpuLoopBatch, SyncThreadsMatchesSingleStep)
{
    sim::LoopBatchCounters lb;
    expectGpuIdentity(kernel({gpusim::GpuOp::alu(),
                              gpusim::GpuOp::syncThreads()},
                             100),
                      {4, 256}, lb);
}

TEST(GpuLoopBatch, ContendedAtomicMatchesSingleStepAndFallsBack)
{
    sim::LoopBatchCounters lb;
    expectGpuIdentity(kernel({gpusim::GpuOp::globalAtomic(
                                 gpusim::AtomicOp::Cas,
                                 gpusim::AddressMode::SingleShared,
                                 0x200)},
                             100),
                      {8, 64}, lb);
    EXPECT_GT(lb.fallbacks, 0u);
}

TEST(GpuLoopBatch, GridSyncMatchesSingleStep)
{
    sim::LoopBatchCounters lb;
    expectGpuIdentity(kernel({gpusim::GpuOp::alu(),
                              gpusim::GpuOp::gridSync()},
                             80),
                      {4, 128}, lb);
}

TEST(GpuLoopBatch, MultiWaveLaunchMatchesSingleStep)
{
    // More blocks than can be resident: block turnover hands the
    // trigger role across waves, and every wave must still match.
    sim::LoopBatchCounters lb;
    expectGpuIdentity(kernel({gpusim::GpuOp::alu(8)}, 60),
                      {512, 1024}, lb);
    EXPECT_GT(lb.batched_iters, 0u);
}

TEST(GpuLoopBatch, SystemFenceDrawsJitterAndNeverBatches)
{
    // __threadfence_system draws per-iteration rng: the batcher's
    // randomness guard must keep it single-stepped forever.
    sim::LoopBatchCounters lb;
    expectGpuIdentity(kernel({gpusim::GpuOp::globalStore(0x600),
                              gpusim::GpuOp::fence(
                                  gpusim::FenceScope::System)},
                             80),
                      {4, 64}, lb);
    EXPECT_EQ(lb.windows, 0u);
    EXPECT_GT(lb.fallbacks, 0u);
}

TEST(GpuLoopBatch, HorizonPinShrinksBatchingButNotResults)
{
    const auto k = kernel({gpusim::GpuOp::alu(4)}, 100);
    const gpusim::LaunchConfig launch{8, 128};

    sim::LoopBatchCounters unpinned;
    const auto reference = runGpu(k, launch, true, &unpinned);
    ASSERT_GT(unpinned.batched_iters, 0u);

    sim::LoopBatchCounters pinned;
    const auto capped = runGpu(k, launch, true, &pinned,
                               reference.total_cycles / 2);
    EXPECT_EQ(capped.total_cycles, reference.total_cycles);
    EXPECT_EQ(capped.thread_cycles, reference.thread_cycles);
    EXPECT_LT(pinned.batched_iters, unpinned.batched_iters);

    sim::LoopBatchCounters frozen;
    const auto stepped = runGpu(k, launch, true, &frozen, 0);
    EXPECT_EQ(stepped.total_cycles, reference.total_cycles);
    EXPECT_EQ(stepped.thread_cycles, reference.thread_cycles);
    EXPECT_EQ(frozen.batched_iters, 0u);
}

} // namespace
} // namespace syncperf
