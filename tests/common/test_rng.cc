/**
 * @file
 * Unit tests for the deterministic PCG32 generator.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace syncperf
{
namespace
{

TEST(Pcg32, SameSeedSameStream)
{
    Pcg32 a(42, 7), b(42, 7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Pcg32, DifferentSeedsDiffer)
{
    Pcg32 a(1), b(2);
    int differences = 0;
    for (int i = 0; i < 16; ++i)
        differences += (a() != b());
    EXPECT_GT(differences, 0);
}

TEST(Pcg32, DifferentStreamsDiffer)
{
    Pcg32 a(42, 1), b(42, 2);
    int differences = 0;
    for (int i = 0; i < 16; ++i)
        differences += (a() != b());
    EXPECT_GT(differences, 0);
}

TEST(Pcg32, BelowStaysInRange)
{
    Pcg32 rng(123);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.below(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Pcg32, BelowOneIsAlwaysZero)
{
    Pcg32 rng(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Pcg32, BelowCoversAllResidues)
{
    Pcg32 rng(99);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[rng.below(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Pcg32, UniformInUnitInterval)
{
    Pcg32 rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    // Mean of U(0,1) over 10k draws should be close to 0.5.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Pcg32, UniformRangeRespectsBounds)
{
    Pcg32 rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-2.0, 3.0);
        ASSERT_GE(u, -2.0);
        ASSERT_LT(u, 3.0);
    }
}

TEST(Pcg32, SatisfiesUniformRandomBitGenerator)
{
    static_assert(Pcg32::min() == 0);
    static_assert(Pcg32::max() == 0xffffffffu);
    SUCCEED();
}

} // namespace
} // namespace syncperf
