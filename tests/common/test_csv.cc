/**
 * @file
 * Unit tests for CSV emission.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.hh"

namespace syncperf
{
namespace
{

TEST(CsvEscape, PlainTextUnchanged)
{
    EXPECT_EQ(csvEscape("hello"), "hello");
}

TEST(CsvEscape, QuotesFieldsWithCommas)
{
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, DoublesEmbeddedQuotes)
{
    EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, QuotesNewlines)
{
    EXPECT_EQ(csvEscape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, HeaderAndRows)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.header({"name", "value"});
    csv.field("x").field(1.5);
    csv.endRow();
    csv.field("y").field(2LL);
    csv.endRow();
    EXPECT_EQ(out.str(), "name,value\nx,1.5\ny,2\n");
    EXPECT_EQ(csv.rowCount(), 2u);
}

TEST(CsvWriter, DoubleRoundTrips)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.field(0.1).endRow();
    EXPECT_EQ(out.str(), "0.1\n");
}

TEST(CsvWriter, EmptyRow)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.endRow();
    EXPECT_EQ(out.str(), "\n");
}

TEST(CsvWriter, QuotedFieldInRow)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.field("a,b").field("c").endRow();
    EXPECT_EQ(out.str(), "\"a,b\",c\n");
}

} // namespace
} // namespace syncperf
