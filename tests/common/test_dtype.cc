/**
 * @file
 * Unit tests for the data-type / affinity vocabulary.
 */

#include <gtest/gtest.h>

#include "common/dtype.hh"

namespace syncperf
{
namespace
{

TEST(DataTypes, SizesMatchCTypes)
{
    EXPECT_EQ(dataTypeSize(DataType::Int32), sizeof(int));
    EXPECT_EQ(dataTypeSize(DataType::UInt64), sizeof(unsigned long long));
    EXPECT_EQ(dataTypeSize(DataType::Float32), sizeof(float));
    EXPECT_EQ(dataTypeSize(DataType::Float64), sizeof(double));
}

TEST(DataTypes, IntegerClassification)
{
    EXPECT_TRUE(isIntegerType(DataType::Int32));
    EXPECT_TRUE(isIntegerType(DataType::UInt64));
    EXPECT_FALSE(isIntegerType(DataType::Float32));
    EXPECT_FALSE(isIntegerType(DataType::Float64));
}

TEST(DataTypes, NamesMatchPaperLegends)
{
    EXPECT_EQ(dataTypeName(DataType::Int32), "int");
    EXPECT_EQ(dataTypeName(DataType::UInt64), "ull");
    EXPECT_EQ(dataTypeName(DataType::Float32), "float");
    EXPECT_EQ(dataTypeName(DataType::Float64), "double");
}

TEST(DataTypes, AllDataTypesCoversEnum)
{
    EXPECT_EQ(all_data_types.size(), 4u);
    EXPECT_EQ(all_data_types.front(), DataType::Int32);
}

TEST(Affinity, Names)
{
    EXPECT_EQ(affinityName(Affinity::System), "system");
    EXPECT_EQ(affinityName(Affinity::Spread), "spread");
    EXPECT_EQ(affinityName(Affinity::Close), "close");
}

} // namespace
} // namespace syncperf
