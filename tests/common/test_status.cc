/**
 * @file
 * Tests for the recoverable error channel (Status / Result<T>).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/status.hh"

namespace syncperf
{
namespace
{

TEST(Status, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.isOk());
    EXPECT_EQ(s.code(), ErrorCode::Ok);
    EXPECT_EQ(s.message(), "");
    EXPECT_EQ(s.toString(), "ok");
}

TEST(Status, ErrorCarriesCodeAndFormattedMessage)
{
    const Status s = Status::error(ErrorCode::IoError,
                                   "cannot open {}: errno {}",
                                   "a/b.csv", 13);
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), ErrorCode::IoError);
    EXPECT_EQ(s.message(), "cannot open a/b.csv: errno 13");
    EXPECT_EQ(s.toString(), "io_error: cannot open a/b.csv: errno 13");
}

TEST(Status, EveryCodeHasAName)
{
    EXPECT_EQ(errorCodeName(ErrorCode::Ok), "ok");
    EXPECT_EQ(errorCodeName(ErrorCode::IoError), "io_error");
    EXPECT_EQ(errorCodeName(ErrorCode::ParseError), "parse_error");
    EXPECT_EQ(errorCodeName(ErrorCode::InvalidArgument),
              "invalid_argument");
    EXPECT_EQ(errorCodeName(ErrorCode::MeasurementError),
              "measurement_error");
    EXPECT_EQ(errorCodeName(ErrorCode::FaultInjected), "fault_injected");
}

TEST(Result, HoldsValue)
{
    Result<int> r(42);
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ(r.value(), 42);
    EXPECT_TRUE(r.status().isOk());
}

TEST(Result, HoldsError)
{
    Result<int> r(Status::error(ErrorCode::ParseError, "bad input"));
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), ErrorCode::ParseError);
    EXPECT_EQ(r.status().message(), "bad input");
}

TEST(Result, MovesOutMoveOnlyPayloads)
{
    Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
    ASSERT_TRUE(r.isOk());
    std::unique_ptr<int> owned = std::move(r).value();
    ASSERT_NE(owned, nullptr);
    EXPECT_EQ(*owned, 7);
}

TEST(Result, ValueOnErrorPanics)
{
    ScopedLogCapture capture;
    Result<int> r(Status::error(ErrorCode::IoError, "nope"));
    EXPECT_THROW((void)r.value(), LogDeathException);
}

TEST(Result, ConstructingFromOkStatusPanics)
{
    ScopedLogCapture capture;
    EXPECT_THROW(Result<int>{Status::ok()}, LogDeathException);
}

} // namespace
} // namespace syncperf
