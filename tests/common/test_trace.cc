/**
 * @file
 * Tests for the span-tracing subsystem: session lifecycle, Chrome
 * trace_event export, deterministic flush ordering, span nesting,
 * and per-thread buffer isolation under concurrent recording. The
 * concurrent cases also run under the `tsan` preset.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/json.hh"
#include "common/trace.hh"

namespace syncperf::trace
{
namespace
{

namespace fs = std::filesystem;

std::string
readFile(const fs::path &file)
{
    std::ifstream in(file, std::ios::binary);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    return bytes.str();
}

class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        out_ = fs::temp_directory_path() /
               ("syncperf_trace_" + std::to_string(::getpid()) +
                ".json");
        fs::remove(out_);
    }

    void
    TearDown() override
    {
        // Never leak an active session into the next test.
        if (active())
            (void)stop();
        fs::remove(out_);
    }

    /** Parse the exported file; fails the test on invalid JSON. */
    JsonValue
    exported()
    {
        const auto parsed = parseJson(readFile(out_));
        EXPECT_TRUE(parsed.isOk()) << parsed.status().toString();
        return parsed.isOk() ? parsed.value() : JsonValue();
    }

    /** The "X" (complete) events of @p root, in file order. */
    static std::vector<JsonValue>
    completeEvents(const JsonValue &root)
    {
        std::vector<JsonValue> out;
        const auto *events = root.find("traceEvents");
        if (events == nullptr || !events->isArray())
            return out;
        for (const auto &e : events->asArray()) {
            if (e.stringOr("ph", "") == "X")
                out.push_back(e);
        }
        return out;
    }

    fs::path out_;
};

TEST_F(TraceTest, InactiveByDefaultAndSpansAreNoOps)
{
    EXPECT_FALSE(active());
    EXPECT_FALSE(enabled());
    { Span span("ignored", "test"); }
    setThreadName("also-ignored");
    EXPECT_FALSE(fs::exists(out_));
}

TEST_F(TraceTest, StopWithoutStartFails)
{
    EXPECT_FALSE(stop().isOk());
}

TEST_F(TraceTest, DoubleStartFails)
{
    ASSERT_TRUE(start(out_).isOk());
    EXPECT_FALSE(start(out_).isOk());
    EXPECT_TRUE(stop().isOk());
}

TEST_F(TraceTest, ExportsValidChromeTraceJson)
{
    ASSERT_TRUE(start(out_).isOk());
    EXPECT_TRUE(active());
    setThreadName("main-thread");
    {
        Span outer("outer", "test");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        Span inner("inner", "test");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(stop().isOk());
    EXPECT_FALSE(active());

    const auto root = exported();
    ASSERT_TRUE(root.isObject());
    EXPECT_EQ(root.stringOr("displayTimeUnit", ""), "ms");

    const auto events = completeEvents(root);
    ASSERT_EQ(events.size(), 2u);
    for (const auto &e : events) {
        EXPECT_EQ(e.stringOr("cat", ""), "test");
        EXPECT_GE(e.numberOr("ts", -1.0), 0.0);
        EXPECT_GT(e.numberOr("dur", -1.0), 0.0);
    }

    // The main thread was named via a thread_name metadata event.
    bool named = false;
    for (const auto &e : root.find("traceEvents")->asArray()) {
        if (e.stringOr("ph", "") == "M" &&
            e.stringOr("name", "") == "thread_name") {
            const auto *args = e.find("args");
            ASSERT_NE(args, nullptr);
            if (args->stringOr("name", "") == "main-thread")
                named = true;
        }
    }
    EXPECT_TRUE(named);
}

TEST_F(TraceTest, NestedSpansAreContainedInTheirParent)
{
    ASSERT_TRUE(start(out_).isOk());
    {
        Span outer("outer", "test");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        {
            Span inner("inner", "test");
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(stop().isOk());

    const auto events = completeEvents(exported());
    ASSERT_EQ(events.size(), 2u);
    // Flush ordering is by start time: outer first, inner second.
    EXPECT_EQ(events[0].stringOr("name", ""), "outer");
    EXPECT_EQ(events[1].stringOr("name", ""), "inner");

    const double outer_start = events[0].numberOr("ts", 0.0);
    const double outer_end =
        outer_start + events[0].numberOr("dur", 0.0);
    const double inner_start = events[1].numberOr("ts", 0.0);
    const double inner_end =
        inner_start + events[1].numberOr("dur", 0.0);
    EXPECT_LE(outer_start, inner_start);
    EXPECT_GE(outer_end, inner_end);
}

TEST_F(TraceTest, FlushOrderIsSortedByStartTime)
{
    ASSERT_TRUE(start(out_).isOk());
    for (int i = 0; i < 16; ++i)
        Span span("span-" + std::to_string(i), "test");
    ASSERT_TRUE(stop().isOk());

    const auto events = completeEvents(exported());
    ASSERT_EQ(events.size(), 16u);
    double prev = -1.0;
    for (const auto &e : events) {
        const double ts = e.numberOr("ts", -1.0);
        EXPECT_GE(ts, prev) << "events not sorted by start time";
        prev = ts;
    }
}

TEST_F(TraceTest, ConcurrentThreadsRecordIntoSeparateBuffers)
{
    constexpr int threads = 4;
    constexpr int spans_per_thread = 50;

    ASSERT_TRUE(start(out_).isOk());
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([t] {
            setThreadName("worker-" + std::to_string(t));
            for (int i = 0; i < spans_per_thread; ++i)
                Span span("w" + std::to_string(t), "test");
        });
    }
    for (auto &w : workers)
        w.join();
    ASSERT_TRUE(stop().isOk());

    const auto root = exported();
    const auto events = completeEvents(root);
    EXPECT_EQ(events.size(),
              static_cast<std::size_t>(threads * spans_per_thread));

    // Every worker got its own tid, and each tid only carries that
    // worker's spans (buffers are never shared between threads).
    std::set<double> tids;
    for (const auto &e : events) {
        tids.insert(e.numberOr("tid", -1.0));
        const double tid = e.numberOr("tid", -1.0);
        for (const auto &other : events) {
            if (other.numberOr("tid", -2.0) == tid) {
                EXPECT_EQ(other.stringOr("name", ""),
                          e.stringOr("name", ""));
            }
        }
    }
    EXPECT_EQ(tids.size(), static_cast<std::size_t>(threads));

    int names = 0;
    for (const auto &e : root.find("traceEvents")->asArray()) {
        if (e.stringOr("ph", "") == "M")
            ++names;
    }
    EXPECT_EQ(names, threads);
}

TEST_F(TraceTest, SpanFinishingAfterStopIsDroppedSafely)
{
    ASSERT_TRUE(start(out_).isOk());
    auto straggler = std::make_unique<Span>("straggler", "test");
    { Span recorded("recorded", "test"); }
    ASSERT_TRUE(stop().isOk());
    straggler.reset(); // destructor runs after the flush: dropped

    const auto events = completeEvents(exported());
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].stringOr("name", ""), "recorded");
}

TEST_F(TraceTest, SecondSessionStartsClean)
{
    ASSERT_TRUE(start(out_).isOk());
    { Span span("first-session", "test"); }
    ASSERT_TRUE(stop().isOk());

    ASSERT_TRUE(start(out_).isOk());
    { Span span("second-session", "test"); }
    ASSERT_TRUE(stop().isOk());

    const auto events = completeEvents(exported());
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].stringOr("name", ""), "second-session");
}

TEST_F(TraceTest, SessionRootRecordsRealtimeAnchor)
{
    ASSERT_TRUE(start(out_).isOk());
    { Span span("anchored", "test"); }
    ASSERT_TRUE(stop().isOk());

    const auto root = exported();
    const auto *session = root.find("syncperfSession");
    ASSERT_NE(session, nullptr);
    EXPECT_GT(session->numberOr("realtime_anchor_us", 0.0), 0.0);
    EXPECT_EQ(session->numberOr("pid", -1.0),
              static_cast<double>(::getpid()));
    // No label was given: neither a session label nor a
    // process_name metadata event.
    EXPECT_EQ(session->find("label"), nullptr);
    for (const auto &e : root.find("traceEvents")->asArray())
        EXPECT_NE(e.stringOr("name", ""), "process_name");
}

TEST_F(TraceTest, ProcessLabelAddsProcessNameMetadata)
{
    ASSERT_TRUE(start(out_, "shard-7").isOk());
    { Span span("labelled", "test"); }
    ASSERT_TRUE(stop().isOk());

    const auto root = exported();
    EXPECT_EQ(root.find("syncperfSession")->stringOr("label", ""),
              "shard-7");
    bool named = false;
    for (const auto &e : root.find("traceEvents")->asArray()) {
        if (e.stringOr("ph", "") == "M" &&
            e.stringOr("name", "") == "process_name") {
            const auto *args = e.find("args");
            ASSERT_NE(args, nullptr);
            EXPECT_EQ(args->stringOr("name", ""), "shard-7");
            named = true;
        }
    }
    EXPECT_TRUE(named);
}

TEST_F(TraceTest, StitchAlignsLaterInputsOntoTheSharedAxis)
{
    const fs::path second = out_.string() + ".second";
    const fs::path stitched = out_.string() + ".stitched";

    ASSERT_TRUE(start(out_, "early").isOk());
    { Span span("early-span", "test"); }
    ASSERT_TRUE(stop().isOk());

    // A later session: its CLOCK_REALTIME anchor is strictly after
    // the first session's, which is exactly what stitch aligns on.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(start(second, "late").isOk());
    { Span span("late-span", "test"); }
    ASSERT_TRUE(stop().isOk());

    const auto early_root = exported();
    const double early_anchor =
        early_root.find("syncperfSession")
            ->numberOr("realtime_anchor_us", 0.0);

    ASSERT_TRUE(stitch({out_, second}, stitched).isOk());
    const auto parsed = parseJson(readFile(stitched));
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    const auto &root = parsed.value();

    const auto *info = root.find("syncperfStitch");
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->numberOr("inputs", 0.0), 2.0);
    // The earliest input's anchor becomes the shared time base.
    EXPECT_EQ(info->numberOr("base_realtime_us", 0.0), early_anchor);

    double early_ts = -1.0;
    double late_ts = -1.0;
    for (const auto &e : completeEvents(root)) {
        if (e.stringOr("name", "") == "early-span")
            early_ts = e.numberOr("ts", -1.0);
        if (e.stringOr("name", "") == "late-span")
            late_ts = e.numberOr("ts", -1.0);
        EXPECT_GE(e.numberOr("ts", -1.0), 0.0);
    }
    ASSERT_GE(early_ts, 0.0);
    ASSERT_GE(late_ts, 0.0);
    // The 5ms-later session's span lands at least 5ms down the
    // shared axis (ts are microseconds).
    EXPECT_GE(late_ts, early_ts + 5000.0);

    // Both process_name tracks survive the merge.
    std::set<std::string> labels;
    for (const auto &e : root.find("traceEvents")->asArray()) {
        if (e.stringOr("ph", "") == "M" &&
            e.stringOr("name", "") == "process_name")
            labels.insert(e.find("args")->stringOr("name", ""));
    }
    EXPECT_EQ(labels,
              (std::set<std::string>{"early", "late"}));

    fs::remove(second);
    fs::remove(stitched);
}

TEST_F(TraceTest, StitchSkipsMissingInputsButNotGarbage)
{
    const fs::path stitched = out_.string() + ".stitched";

    ASSERT_TRUE(start(out_, "survivor").isOk());
    { Span span("survivor-span", "test"); }
    ASSERT_TRUE(stop().isOk());

    // A shard that died before flushing simply has no file: skipped.
    const fs::path missing = out_.string() + ".never-written";
    ASSERT_TRUE(stitch({missing, out_}, stitched).isOk());
    const auto parsed = parseJson(readFile(stitched));
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    EXPECT_EQ(parsed.value().find("syncperfStitch")->numberOr(
                  "inputs", 0.0),
              1.0);

    // All inputs missing is an error, as is unparseable JSON.
    EXPECT_FALSE(stitch({missing}, stitched).isOk());
    const fs::path garbage = out_.string() + ".garbage";
    std::ofstream(garbage) << "not json{";
    EXPECT_FALSE(stitch({garbage}, stitched).isOk());

    fs::remove(garbage);
    fs::remove(stitched);
}

} // namespace
} // namespace syncperf::trace
