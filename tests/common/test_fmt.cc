/**
 * @file
 * Unit tests for the minimal formatter.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/fmt.hh"

namespace syncperf
{
namespace
{

TEST(Fmt, PlainText)
{
    EXPECT_EQ(format("hello"), "hello");
}

TEST(Fmt, IntegerPlaceholders)
{
    EXPECT_EQ(format("{} + {} = {}", 1, 2, 3), "1 + 2 = 3");
    EXPECT_EQ(format("{}", -42), "-42");
    EXPECT_EQ(format("{}", 18446744073709551615ULL),
              "18446744073709551615");
}

TEST(Fmt, DoubleShortestRoundTrip)
{
    EXPECT_EQ(format("{}", 0.5), "0.5");
    EXPECT_EQ(format("{}", 3.0), "3");
}

TEST(Fmt, DoublePrecisionSpecs)
{
    EXPECT_EQ(format("{:.2f}", 3.14159), "3.14");
    EXPECT_EQ(format("{:.0f}", 2.7), "3");
    EXPECT_EQ(format("{:.1e}", 12345.0), "1.2e+04");
    EXPECT_EQ(format("{:.3g}", 0.0001234), "0.000123");
}

TEST(Fmt, Strings)
{
    EXPECT_EQ(format("{} {}", std::string("a"), "b"), "a b");
    std::string_view sv = "c";
    EXPECT_EQ(format("{}", sv), "c");
}

TEST(Fmt, BoolAndChar)
{
    EXPECT_EQ(format("{} {}", true, false), "true false");
    EXPECT_EQ(format("{}", 'x'), "x");
}

TEST(Fmt, EscapedBraces)
{
    EXPECT_EQ(format("{{}}"), "{}");
    EXPECT_EQ(format("{{{}}}", 5), "{5}");
}

TEST(Fmt, TooFewArgumentsDegradesGracefully)
{
    EXPECT_EQ(format("{} {}", 1), "1 {?}");
}

TEST(Fmt, MalformedSpecDegradesGracefully)
{
    EXPECT_EQ(format("{:.zf}", 1.0), "{?}");
    EXPECT_EQ(format("{abc}", 1), "{?}");
}

TEST(Fmt, UnterminatedPlaceholder)
{
    EXPECT_EQ(format("x{", 1), "x{?}");
}

TEST(Fmt, PrecisionOnIntegerFallsBackToDouble)
{
    EXPECT_EQ(format("{:.1f}", 7), "7.0");
}

TEST(Fmt, ExtraArgumentsIgnored)
{
    EXPECT_EQ(format("{}", 1, 2, 3), "1");
}

} // namespace
} // namespace syncperf
