/**
 * @file
 * Unit tests for CSV parsing, including a round trip through
 * CsvWriter.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/csv.hh"
#include "common/csv_reader.hh"
#include "common/logging.hh"

namespace syncperf
{
namespace
{

CsvTable
parse(const std::string &text)
{
    std::istringstream in(text);
    return readCsv(in);
}

TEST(CsvReader, HeaderAndRows)
{
    const auto t = parse("a,b\n1,2\n3,4\n");
    EXPECT_EQ(t.header(), (std::vector<std::string>{"a", "b"}));
    ASSERT_EQ(t.rows().size(), 2u);
    EXPECT_EQ(t.textAt(0, 0), "1");
    EXPECT_EQ(t.textAt(1, 1), "4");
}

TEST(CsvReader, ColumnLookup)
{
    const auto t = parse("threads,throughput\n2,100\n");
    EXPECT_EQ(t.columnIndex("threads"), 0);
    EXPECT_EQ(t.columnIndex("throughput"), 1);
    EXPECT_EQ(t.columnIndex("missing"), -1);
}

TEST(CsvReader, NumericCells)
{
    const auto t = parse("x\n2.5\n-3\n1e9\ninf\n");
    EXPECT_DOUBLE_EQ(t.numberAt(0, 0), 2.5);
    EXPECT_DOUBLE_EQ(t.numberAt(1, 0), -3.0);
    EXPECT_DOUBLE_EQ(t.numberAt(2, 0), 1e9);
    EXPECT_TRUE(std::isinf(t.numberAt(3, 0)));
}

TEST(CsvReader, NonNumericCellIsFatal)
{
    const auto t = parse("x\nhello\n");
    ScopedLogCapture capture;
    EXPECT_THROW((void)t.numberAt(0, 0), LogDeathException);
}

TEST(CsvReader, QuotedFields)
{
    const auto t = parse("label\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
    EXPECT_EQ(t.textAt(0, 0), "a,b");
    EXPECT_EQ(t.textAt(1, 0), "say \"hi\"");
}

TEST(CsvReader, EmbeddedNewlineInQuotes)
{
    const auto t = parse("label\n\"two\nlines\"\n");
    ASSERT_EQ(t.rows().size(), 1u);
    EXPECT_EQ(t.textAt(0, 0), "two\nlines");
}

TEST(CsvReader, MissingFinalNewline)
{
    const auto t = parse("a,b\n1,2");
    ASSERT_EQ(t.rows().size(), 1u);
    EXPECT_EQ(t.textAt(0, 1), "2");
}

TEST(CsvReader, CrLfLineEndings)
{
    const auto t = parse("a,b\r\n1,2\r\n");
    ASSERT_EQ(t.rows().size(), 1u);
    EXPECT_EQ(t.textAt(0, 0), "1");
}

TEST(CsvReader, ShortRowReadsEmpty)
{
    const auto t = parse("a,b\n1\n");
    EXPECT_EQ(t.textAt(0, 1), "");
}

TEST(CsvReader, UnterminatedQuoteIsFatal)
{
    ScopedLogCapture capture;
    EXPECT_THROW(parse("a\n\"oops\n"), LogDeathException);
}

TEST(CsvReader, EmptyInputGivesEmptyTable)
{
    const auto t = parse("");
    EXPECT_TRUE(t.header().empty());
    EXPECT_TRUE(t.rows().empty());
}

TEST(CsvReader, RoundTripsThroughWriter)
{
    std::ostringstream out;
    CsvWriter writer(out);
    writer.header({"name", "value"});
    writer.field("with,comma").field(0.125);
    writer.endRow();
    writer.field("plain").field(42LL);
    writer.endRow();

    const auto t = parse(out.str());
    EXPECT_EQ(t.header(), (std::vector<std::string>{"name", "value"}));
    EXPECT_EQ(t.textAt(0, 0), "with,comma");
    EXPECT_DOUBLE_EQ(t.numberAt(0, 1), 0.125);
    EXPECT_DOUBLE_EQ(t.numberAt(1, 1), 42.0);
}

} // namespace
} // namespace syncperf
