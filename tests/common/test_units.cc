/**
 * @file
 * Unit tests for unit formatting.
 */

#include <gtest/gtest.h>

#include <limits>

#include "common/units.hh"

namespace syncperf
{
namespace
{

TEST(FormatThroughput, ScalesWithSiPrefixes)
{
    EXPECT_EQ(formatThroughput(5.0), "5.0 op/s");
    EXPECT_EQ(formatThroughput(5.0e3), "5.0 kop/s");
    EXPECT_EQ(formatThroughput(2.5e6), "2.5 Mop/s");
    EXPECT_EQ(formatThroughput(7.2e9), "7.2 Gop/s");
    EXPECT_EQ(formatThroughput(1.5e12), "1.5 Top/s");
}

TEST(FormatThroughput, InfinityIsExplicit)
{
    EXPECT_EQ(formatThroughput(std::numeric_limits<double>::infinity()),
              "inf op/s");
}

TEST(FormatSeconds, ScalesDownward)
{
    EXPECT_EQ(formatSeconds(2.0), "2.000 s");
    EXPECT_EQ(formatSeconds(0.0), "0.000 s");
    EXPECT_EQ(formatSeconds(1.5e-3), "1.5 ms");
    EXPECT_EQ(formatSeconds(12.3e-9), "12.3 ns");
    EXPECT_EQ(formatSeconds(3.0e-6), "3.0 us");
}

TEST(FormatCount, InsertsThousandsSeparators)
{
    EXPECT_EQ(formatCount(0), "0");
    EXPECT_EQ(formatCount(999), "999");
    EXPECT_EQ(formatCount(1000), "1,000");
    EXPECT_EQ(formatCount(1048576), "1,048,576");
    EXPECT_EQ(formatCount(1000000000ULL), "1,000,000,000");
}

} // namespace
} // namespace syncperf
