/**
 * @file
 * Tests for the counter registry: exact aggregation under concurrent
 * writers, max-gauge semantics, reset isolation, and the stable
 * name/classification tables the metrics.json schema depends on.
 * The concurrent cases also run under the `tsan` preset.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hh"

namespace syncperf::metrics
{
namespace
{

class MetricsRegistryTest : public ::testing::Test
{
  protected:
    void SetUp() override { Registry::global().reset(); }
    void TearDown() override { Registry::global().reset(); }
};

TEST_F(MetricsRegistryTest, CountersStartAtZero)
{
    for (std::size_t i = 0; i < counter_count; ++i)
        EXPECT_EQ(value(static_cast<Counter>(i)), 0);
}

TEST_F(MetricsRegistryTest, AddAccumulatesWithDeltas)
{
    add(Counter::ProtocolRetries);
    add(Counter::ProtocolRetries, 4);
    EXPECT_EQ(value(Counter::ProtocolRetries), 5);
    EXPECT_EQ(value(Counter::NoiseRetries), 0);
}

TEST_F(MetricsRegistryTest, ConcurrentAddsAreExact)
{
    constexpr int threads = 8;
    constexpr int adds_per_thread = 20000;

    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([] {
            for (int i = 0; i < adds_per_thread; ++i)
                add(Counter::PointsCommitted);
        });
    }
    for (auto &w : workers)
        w.join();

    EXPECT_EQ(value(Counter::PointsCommitted),
              static_cast<long long>(threads) * adds_per_thread);
}

TEST_F(MetricsRegistryTest, ConcurrentRecordMaxKeepsTheMaximum)
{
    constexpr int threads = 8;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([t] {
            // Interleaved ascending runs from every thread; the
            // global maximum is the largest value any thread offers.
            for (int i = 0; i <= 1000; ++i)
                recordMax(Counter::ExecutorMaxQueueDepth,
                          i * threads + t);
        });
    }
    for (auto &w : workers)
        w.join();

    EXPECT_EQ(value(Counter::ExecutorMaxQueueDepth),
              1000 * threads + (threads - 1));
}

TEST_F(MetricsRegistryTest, RecordMaxNeverLowers)
{
    recordMax(Counter::ExecutorMaxQueueDepth, 7);
    recordMax(Counter::ExecutorMaxQueueDepth, 3);
    EXPECT_EQ(value(Counter::ExecutorMaxQueueDepth), 7);
}

TEST_F(MetricsRegistryTest, ResetZeroesEveryCounter)
{
    for (std::size_t i = 0; i < counter_count; ++i)
        add(static_cast<Counter>(i), static_cast<long long>(i) + 1);
    Registry::global().reset();
    for (std::size_t i = 0; i < counter_count; ++i)
        EXPECT_EQ(value(static_cast<Counter>(i)), 0);
}

TEST_F(MetricsRegistryTest, NamesAreUniqueNonEmptySnakeCase)
{
    std::set<std::string> seen;
    for (std::size_t i = 0; i < counter_count; ++i) {
        const auto name =
            std::string(counterName(static_cast<Counter>(i)));
        ASSERT_FALSE(name.empty());
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate counter name " << name;
        for (const char c : name) {
            EXPECT_TRUE((c >= 'a' && c <= 'z') || c == '_')
                << "non-snake_case name " << name;
        }
    }
}

TEST_F(MetricsRegistryTest, ScopedCaptureCommitsOnlyOnRequest)
{
    {
        Registry::ScopedCapture cap(Registry::global());
        add(Counter::PointsCommitted, 3);
        add(Counter::ProtocolRetries, 2);
        // Captured, not yet folded into the registry.
        EXPECT_EQ(value(Counter::PointsCommitted), 0);
        cap.commit();
    }
    EXPECT_EQ(value(Counter::PointsCommitted), 3);
    EXPECT_EQ(value(Counter::ProtocolRetries), 2);
}

TEST_F(MetricsRegistryTest, ScopedCaptureDiscardsWithoutCommit)
{
    add(Counter::PointsCommitted, 1);
    {
        Registry::ScopedCapture cap(Registry::global());
        add(Counter::PointsCommitted, 100);
        add(Counter::NoiseRetries, 7);
    }
    EXPECT_EQ(value(Counter::PointsCommitted), 1);
    EXPECT_EQ(value(Counter::NoiseRetries), 0);
}

TEST_F(MetricsRegistryTest, ScopedCaptureIsPerThread)
{
    // A capture only redirects its own thread; another thread's adds
    // land in the registry immediately.
    Registry::ScopedCapture cap(Registry::global());
    add(Counter::PointsCommitted, 5);
    std::thread other([] { add(Counter::PointsCommitted, 11); });
    other.join();
    EXPECT_EQ(value(Counter::PointsCommitted), 11);
}

TEST_F(MetricsRegistryTest, ScopedCapturesNest)
{
    Registry::ScopedCapture outer(Registry::global());
    add(Counter::PointsCommitted, 1);
    {
        Registry::ScopedCapture inner(Registry::global());
        add(Counter::PointsCommitted, 10);
        // The inner capture dies uncommitted: its 10 is dropped and
        // the outer capture resumes intact.
    }
    add(Counter::PointsCommitted, 2);
    EXPECT_EQ(value(Counter::PointsCommitted), 0);
    outer.commit();
    EXPECT_EQ(value(Counter::PointsCommitted), 3);
}

TEST_F(MetricsRegistryTest, DeterminismClassificationIsStable)
{
    // The determinism contract metrics.json and the jobs-equality
    // test depend on (see docs/observability.md).
    EXPECT_TRUE(counterIsDeterministic(Counter::PointsCommitted));
    EXPECT_TRUE(counterIsDeterministic(Counter::PointsFailed));
    EXPECT_TRUE(counterIsDeterministic(Counter::PointsSkipped));
    EXPECT_TRUE(counterIsDeterministic(Counter::ProtocolRetries));
    EXPECT_TRUE(counterIsDeterministic(Counter::NoiseRetries));
    EXPECT_TRUE(counterIsDeterministic(Counter::FaultsInjected));
    EXPECT_TRUE(counterIsDeterministic(Counter::FaultsSurvived));

    // Checkpoint cadence is a per-process concern: shard workers
    // each flush their own manifests, so merged totals can never sum
    // to the serial value and the counter lives in the timing class.
    EXPECT_FALSE(counterIsDeterministic(Counter::CheckpointFlushes));
    EXPECT_FALSE(counterIsDeterministic(Counter::PoolTasksRun));
    EXPECT_FALSE(counterIsDeterministic(Counter::PoolTasksStolen));
    EXPECT_FALSE(counterIsDeterministic(Counter::PoolBusyNanos));
    EXPECT_FALSE(counterIsDeterministic(Counter::PoolIdleNanos));
    EXPECT_FALSE(
        counterIsDeterministic(Counter::ExecutorMaxQueueDepth));
}

} // namespace
} // namespace syncperf::metrics
