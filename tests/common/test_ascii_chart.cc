/**
 * @file
 * Unit tests for the ASCII chart renderer.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/ascii_chart.hh"
#include "common/logging.hh"

namespace syncperf
{
namespace
{

TEST(AsciiChart, RendersTitleAxesAndLegend)
{
    AsciiChart chart({1.0, 2.0, 3.0});
    chart.setTitle("Demo");
    chart.setXLabel("threads");
    chart.setYLabel("ops");
    chart.addSeries("int", {1.0, 2.0, 3.0});
    const std::string out = chart.render();
    EXPECT_NE(out.find("Demo"), std::string::npos);
    EXPECT_NE(out.find("threads"), std::string::npos);
    EXPECT_NE(out.find("ops"), std::string::npos);
    EXPECT_NE(out.find("legend: *=int"), std::string::npos);
}

TEST(AsciiChart, MultipleSeriesGetDistinctGlyphs)
{
    AsciiChart chart({1.0, 2.0});
    chart.addSeries("a", {1.0, 1.0});
    chart.addSeries("b", {2.0, 2.0});
    const std::string out = chart.render();
    EXPECT_NE(out.find("*=a"), std::string::npos);
    EXPECT_NE(out.find("o=b"), std::string::npos);
}

TEST(AsciiChart, HighValuesPlotAboveLowValues)
{
    AsciiChart chart({1.0, 2.0});
    chart.addSeries("s", {10.0, 1.0});
    const std::string out = chart.render();
    // The first column with a '*' must appear on an earlier line
    // (higher on the canvas) than the last column's '*'.
    const auto first_star = out.find('*');
    const auto last_star = out.rfind('*');
    const auto line_of = [&](std::size_t pos) {
        return std::count(out.begin(), out.begin() + pos, '\n');
    };
    EXPECT_LT(line_of(first_star), line_of(last_star));
}

TEST(AsciiChart, SkipsNonFiniteValues)
{
    AsciiChart chart({1.0, 2.0, 3.0});
    chart.addSeries("s", {1.0, std::nan(""), 2.0});
    EXPECT_NO_THROW((void)chart.render());
}

TEST(AsciiChart, LogXAccepted)
{
    AsciiChart chart({2.0, 4.0, 8.0, 1024.0});
    chart.setLogX(true);
    chart.addSeries("s", {1.0, 1.0, 1.0, 1.0});
    const std::string out = chart.render();
    EXPECT_NE(out.find("log2 scale"), std::string::npos);
}

TEST(AsciiChart, VerticalMarkerDrawn)
{
    AsciiChart chart({1.0, 16.0, 32.0});
    chart.setVerticalMarker(16.0);
    chart.addSeries("s", {1.0, 1.0, 1.0});
    EXPECT_NE(chart.render().find('|'), std::string::npos);
}

TEST(AsciiChart, MismatchedSeriesLengthPanics)
{
    AsciiChart chart({1.0, 2.0});
    ScopedLogCapture capture;
    EXPECT_THROW(chart.addSeries("bad", {1.0}), LogDeathException);
}

TEST(AsciiChart, NonIncreasingXPanics)
{
    ScopedLogCapture capture;
    EXPECT_THROW(AsciiChart({2.0, 2.0}), LogDeathException);
}

TEST(AsciiChart, RenderWithoutSeriesPanics)
{
    AsciiChart chart({1.0});
    ScopedLogCapture capture;
    EXPECT_THROW((void)chart.render(), LogDeathException);
}

TEST(AsciiChart, YRangeOverrideRespected)
{
    AsciiChart chart({1.0, 2.0});
    chart.setYRange(0.0, 100.0);
    chart.addSeries("s", {1.0, 2.0});
    EXPECT_NE(chart.render().find("100"), std::string::npos);
}

} // namespace
} // namespace syncperf
