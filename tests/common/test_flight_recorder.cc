/**
 * @file
 * Tests for the crash flight recorder: arming lifecycle, ring
 * capacity (the last events win), per-thread slot isolation under
 * concurrent recorders, postmortem schema, and the headline claim --
 * the mmap'd ring survives SIGKILL, and the crash-handler stamps the
 * fatal signal for catchable deaths.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "common/flight_recorder.hh"
#include "common/json.hh"

namespace syncperf::flight
{
namespace
{

namespace fs = std::filesystem;

class FlightRecorderTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        base_ = fs::temp_directory_path() /
                ("syncperf_flight_" + std::to_string(::getpid()));
        fs::remove_all(base_);
        fs::create_directories(base_);
        ring_ = base_ / "flight.ring";
        postmortem_ = base_ / "postmortem.json";
    }

    void
    TearDown() override
    {
        if (armed())
            close();
        fs::remove_all(base_);
    }

    Options
    options() const
    {
        Options o;
        o.file = ring_;
        o.label = "test-proc";
        return o;
    }

    /** Render the ring and parse the postmortem; fails on error. */
    JsonValue
    rendered(int max_events = 100)
    {
        const Status s =
            renderPostmortem(ring_, postmortem_, max_events);
        EXPECT_TRUE(s.isOk()) << s.toString();
        std::ifstream in(postmortem_, std::ios::binary);
        std::ostringstream bytes;
        bytes << in.rdbuf();
        const auto parsed = parseJson(bytes.str());
        EXPECT_TRUE(parsed.isOk()) << parsed.status().toString();
        return parsed.isOk() ? parsed.value() : JsonValue();
    }

    /** Names of the rendered events, in file order. */
    static std::vector<std::string>
    eventNames(const JsonValue &root)
    {
        std::vector<std::string> out;
        const auto *events = root.find("events");
        if (events == nullptr || !events->isArray())
            return out;
        for (const auto &e : events->asArray())
            out.push_back(e.stringOr("name", ""));
        return out;
    }

    fs::path base_;
    fs::path ring_;
    fs::path postmortem_;
};

TEST_F(FlightRecorderTest, UnarmedRecordIsANoOp)
{
    EXPECT_FALSE(armed());
    record("ignored", "test", 0, 1);
    EXPECT_FALSE(fs::exists(ring_));
}

TEST_F(FlightRecorderTest, RendersPostmortemSchemaAfterClose)
{
    ASSERT_TRUE(open(options()).isOk());
    EXPECT_TRUE(armed());
    // Record from a fresh thread: slot claims are per-thread and
    // sticky for the life of the process, so only a new thread is
    // guaranteed to bump the header's claimed-slot count.
    std::thread writer([] {
        record("alpha", "test", 1000, 10);
        record("beta", "test", 2000, 20);
    });
    writer.join();
    close();
    EXPECT_FALSE(armed());
    ASSERT_TRUE(fs::exists(ring_)) << "close() must keep the ring";

    const auto root = rendered();
    ASSERT_TRUE(root.isObject());
    EXPECT_EQ(root.stringOr("schema", ""), "syncperf-postmortem-v1");
    EXPECT_EQ(root.stringOr("label", ""), "test-proc");
    EXPECT_EQ(root.numberOr("pid", -1.0),
              static_cast<double>(::getpid()));
    EXPECT_EQ(root.numberOr("crash_signo", -1.0), 0.0);
    EXPECT_GE(root.numberOr("threads_recorded", 0.0), 1.0);

    const auto names = eventNames(root);
    ASSERT_EQ(names.size(), 2u);
    // Events come out in start-time order.
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "beta");
}

TEST_F(FlightRecorderTest, RingKeepsTheMostRecentEvents)
{
    Options o = options();
    o.events_per_slot = 8;
    ASSERT_TRUE(open(o).isOk());
    for (int i = 0; i < 50; ++i)
        record("ev-" + std::to_string(i), "test", 1000 * i, 10);
    close();

    const auto names = eventNames(rendered());
    ASSERT_EQ(names.size(), 8u) << "ring must cap at its capacity";
    // The survivors are exactly the newest eight.
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(names[static_cast<std::size_t>(i)],
                  "ev-" + std::to_string(42 + i));
}

TEST_F(FlightRecorderTest, RenderHonorsMaxEvents)
{
    ASSERT_TRUE(open(options()).isOk());
    for (int i = 0; i < 20; ++i)
        record("ev-" + std::to_string(i), "test", 1000 * i, 10);
    close();

    const auto names = eventNames(rendered(5));
    ASSERT_EQ(names.size(), 5u);
    EXPECT_EQ(names.front(), "ev-15");
    EXPECT_EQ(names.back(), "ev-19");
}

TEST_F(FlightRecorderTest, ConcurrentThreadsGetTheirOwnSlots)
{
    constexpr int threads = 4;
    constexpr int events_per_thread = 16;

    ASSERT_TRUE(open(options()).isOk());
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([t] {
            for (int i = 0; i < events_per_thread; ++i)
                record("w" + std::to_string(t), "test",
                       1000 * (t * events_per_thread + i), 10);
        });
    }
    for (auto &w : workers)
        w.join();
    close();

    const auto root = rendered(threads * events_per_thread);
    EXPECT_GE(root.numberOr("threads_recorded", 0.0),
              static_cast<double>(threads));
    EXPECT_EQ(eventNames(root).size(),
              static_cast<std::size_t>(threads * events_per_thread));
}

TEST_F(FlightRecorderTest, MissingRingFailsCleanly)
{
    EXPECT_FALSE(
        renderPostmortem(base_ / "absent.ring", postmortem_).isOk());
    EXPECT_FALSE(fs::exists(postmortem_));
}

TEST_F(FlightRecorderTest, TruncatedRingIsRejectedNotCrashed)
{
    ASSERT_TRUE(open(options()).isOk());
    record("doomed", "test", 0, 1);
    close();
    fs::resize_file(ring_, 16); // tear the header itself
    EXPECT_FALSE(renderPostmortem(ring_, postmortem_).isOk());
}

/** The headline claim: SIGKILL cannot flush userspace buffers, but
 * the ring's pages belong to the kernel, so a killed process still
 * leaves its tail of events for the supervisor to render. */
TEST_F(FlightRecorderTest, RingSurvivesSigkill)
{
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        Options o;
        o.file = ring_;
        o.label = "victim";
        if (!open(o).isOk())
            ::_exit(3);
        record("last-words", "test", 1000, 10);
        ::kill(::getpid(), SIGKILL);
        ::_exit(4); // unreachable
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
    ASSERT_TRUE(WIFSIGNALED(wstatus));
    ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

    const auto root = rendered();
    EXPECT_EQ(root.stringOr("label", ""), "victim");
    EXPECT_EQ(root.numberOr("pid", -1.0),
              static_cast<double>(child));
    // SIGKILL is never delivered to a handler: no signal stamp.
    EXPECT_EQ(root.numberOr("crash_signo", -1.0), 0.0);
    const auto names = eventNames(root);
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names[0], "last-words");
}

/** Catchable fatal signals get stamped into the header by the crash
 * handlers before the default disposition kills the process. */
TEST_F(FlightRecorderTest, CrashHandlerStampsTheSignal)
{
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        Options o;
        o.file = ring_;
        o.label = "aborter";
        if (!open(o).isOk())
            ::_exit(3);
        installCrashHandlers();
        record("before-abort", "test", 1000, 10);
        ::raise(SIGABRT);
        ::_exit(4); // unreachable
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
    ASSERT_TRUE(WIFSIGNALED(wstatus));
    ASSERT_EQ(WTERMSIG(wstatus), SIGABRT);

    const auto root = rendered();
    EXPECT_EQ(root.numberOr("crash_signo", -1.0),
              static_cast<double>(SIGABRT));
    const auto names = eventNames(root);
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names[0], "before-abort");
}

} // namespace
} // namespace syncperf::flight
