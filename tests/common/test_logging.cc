/**
 * @file
 * Unit tests for the logging sink and test capture hook.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "common/logging.hh"

namespace syncperf
{
namespace
{

TEST(Logging, CaptureCollectsWarnAndInform)
{
    ScopedLogCapture capture;
    warn("watch out: {}", 42);
    inform("status {}", "ok");
    ASSERT_EQ(capture.messages().size(), 2u);
    EXPECT_EQ(capture.messages()[0].first, LogLevel::Warn);
    EXPECT_EQ(capture.messages()[0].second, "watch out: 42");
    EXPECT_EQ(capture.messages()[1].first, LogLevel::Inform);
    EXPECT_EQ(capture.messages()[1].second, "status ok");
}

TEST(Logging, FatalThrowsUnderCapture)
{
    ScopedLogCapture capture;
    bool threw = false;
    try {
        fatal("bad config: {}", "xyz");
    } catch (const LogDeathException &e) {
        threw = true;
        EXPECT_EQ(e.level, LogLevel::Fatal);
        EXPECT_EQ(e.message, "bad config: xyz");
    }
    EXPECT_TRUE(threw);
}

TEST(Logging, PanicThrowsUnderCapture)
{
    ScopedLogCapture capture;
    EXPECT_THROW(panic("invariant broken"), LogDeathException);
}

TEST(Logging, AssertMacroPassesThrough)
{
    SYNCPERF_ASSERT(1 + 1 == 2);
    SUCCEED();
}

TEST(Logging, AssertMacroFailsWithMessage)
{
    ScopedLogCapture capture;
    bool threw = false;
    try {
        SYNCPERF_ASSERT(false, "extra {} context", 7);
    } catch (const LogDeathException &e) {
        threw = true;
        EXPECT_NE(e.message.find("assertion failed"), std::string::npos);
        EXPECT_NE(e.message.find("extra 7 context"), std::string::npos);
    }
    EXPECT_TRUE(threw);
}

TEST(Logging, ScopedPrefixTagsMessages)
{
    ScopedLogCapture capture;
    {
        ScopedLogPrefix prefix("omp_atomic.csv");
        warn("retrying");
    }
    warn("after scope");
    ASSERT_EQ(capture.messages().size(), 2u);
    EXPECT_EQ(capture.messages()[0].second, "[omp_atomic.csv] retrying");
    EXPECT_EQ(capture.messages()[1].second, "after scope");
}

TEST(Logging, ScopedPrefixNests)
{
    ScopedLogCapture capture;
    ScopedLogPrefix outer("outer");
    {
        ScopedLogPrefix inner("inner");
        EXPECT_EQ(ScopedLogPrefix::current(), "inner");
        inform("deep");
    }
    EXPECT_EQ(ScopedLogPrefix::current(), "outer");
    inform("shallow");
    ASSERT_EQ(capture.messages().size(), 2u);
    EXPECT_EQ(capture.messages()[0].second, "[inner] deep");
    EXPECT_EQ(capture.messages()[1].second, "[outer] shallow");
}

TEST(Logging, ScopedPrefixAppliesToDeathMessages)
{
    ScopedLogCapture capture;
    ScopedLogPrefix prefix("exp42");
    bool threw = false;
    try {
        fatal("boom");
    } catch (const LogDeathException &e) {
        threw = true;
        EXPECT_EQ(e.message, "[exp42] boom");
    }
    EXPECT_TRUE(threw);
}

TEST(Logging, PrefixIsPerThread)
{
    ScopedLogPrefix prefix("main-thread");
    std::string other;
    std::thread worker([&other] { other = ScopedLogPrefix::current(); });
    worker.join();
    EXPECT_EQ(other, "");
    EXPECT_EQ(ScopedLogPrefix::current(), "main-thread");
}

TEST(Logging, CaptureScopeEnds)
{
    {
        ScopedLogCapture capture;
        warn("inside");
        EXPECT_EQ(capture.messages().size(), 1u);
    }
    // Outside the scope, messages go to stderr; just ensure no crash.
    inform("outside capture");
    SUCCEED();
}

} // namespace
} // namespace syncperf
