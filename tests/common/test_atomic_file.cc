/**
 * @file
 * Tests for crash-safe (temp file + atomic rename) emission.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <unistd.h>

#include "common/atomic_file.hh"

namespace syncperf
{
namespace
{

namespace fs = std::filesystem;

class AtomicFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("syncperf_atomic_file_test_" +
                std::to_string(::getpid()));
        fs::remove_all(dir_);
    }

    void
    TearDown() override
    {
        AtomicFile::setFaultHook(nullptr);
        fs::remove_all(dir_);
    }

    static std::string
    contents(const fs::path &p)
    {
        std::ifstream in(p);
        std::ostringstream out;
        out << in.rdbuf();
        return out.str();
    }

    fs::path dir_;
};

TEST_F(AtomicFileTest, CommitCreatesDirectoriesAndFile)
{
    const fs::path target = dir_ / "a" / "b" / "out.csv";
    AtomicFile out;
    ASSERT_TRUE(out.open(target).isOk());
    EXPECT_TRUE(out.isOpen());
    out.stream() << "x,y\n1,2\n";
    ASSERT_TRUE(out.commit().isOk());
    EXPECT_FALSE(out.isOpen());
    EXPECT_EQ(contents(target), "x,y\n1,2\n");
    EXPECT_FALSE(fs::exists(AtomicFile::tempPathFor(target)));
}

TEST_F(AtomicFileTest, UncommittedWriterLeavesNoTrace)
{
    const fs::path target = dir_ / "out.csv";
    {
        AtomicFile out;
        ASSERT_TRUE(out.open(target).isOk());
        out.stream() << "partial";
        EXPECT_TRUE(fs::exists(AtomicFile::tempPathFor(target)));
    }
    EXPECT_FALSE(fs::exists(target));
    EXPECT_FALSE(fs::exists(AtomicFile::tempPathFor(target)));
}

TEST_F(AtomicFileTest, DiscardPreservesPreviousCommit)
{
    const fs::path target = dir_ / "out.csv";
    {
        AtomicFile out;
        ASSERT_TRUE(out.open(target).isOk());
        out.stream() << "good";
        ASSERT_TRUE(out.commit().isOk());
    }
    {
        AtomicFile out;
        ASSERT_TRUE(out.open(target).isOk());
        out.stream() << "bad half-written";
        out.discard();
    }
    EXPECT_EQ(contents(target), "good");
}

TEST_F(AtomicFileTest, CommitReplacesExistingFileAtomically)
{
    const fs::path target = dir_ / "out.csv";
    for (const char *text : {"first", "second"}) {
        AtomicFile out;
        ASSERT_TRUE(out.open(target).isOk());
        out.stream() << text;
        ASSERT_TRUE(out.commit().isOk());
    }
    EXPECT_EQ(contents(target), "second");
}

TEST_F(AtomicFileTest, OpenFailsOnUnwritableParent)
{
    // A file where a directory is needed makes create_directories
    // (or the open) fail without needing special permissions.
    const fs::path blocker = dir_ / "blocker";
    fs::create_directories(dir_);
    std::ofstream(blocker) << "file";
    AtomicFile out;
    const Status s = out.open(blocker / "nested" / "out.csv");
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), ErrorCode::IoError);
    EXPECT_FALSE(out.isOpen());
}

TEST_F(AtomicFileTest, FaultHookFailsOpenAndCommit)
{
    int calls = 0;
    AtomicFile::setFaultHook(
        [&calls](const fs::path &, std::string_view op) {
            ++calls;
            if (calls == 1) {
                EXPECT_EQ(op, "open");
                return Status::error(ErrorCode::FaultInjected,
                                     "injected open failure");
            }
            if (op == "commit") {
                return Status::error(ErrorCode::FaultInjected,
                                     "injected commit failure");
            }
            return Status::ok();
        });

    const fs::path target = dir_ / "out.csv";
    AtomicFile first;
    EXPECT_EQ(first.open(target).code(), ErrorCode::FaultInjected);

    AtomicFile second;
    ASSERT_TRUE(second.open(target).isOk());
    second.stream() << "data";
    EXPECT_EQ(second.commit().code(), ErrorCode::FaultInjected);
    // A failed commit must not leave either file behind.
    EXPECT_FALSE(fs::exists(target));
    EXPECT_FALSE(fs::exists(AtomicFile::tempPathFor(target)));

    AtomicFile::setFaultHook(nullptr);
    AtomicFile third;
    ASSERT_TRUE(third.open(target).isOk());
    third.stream() << "clean";
    ASSERT_TRUE(third.commit().isOk());
    EXPECT_EQ(contents(target), "clean");
}

TEST_F(AtomicFileTest, MoveTransfersOwnershipOfTheTemp)
{
    const fs::path target = dir_ / "out.csv";
    AtomicFile a;
    ASSERT_TRUE(a.open(target).isOk());
    a.stream() << "moved";
    AtomicFile b(std::move(a));
    EXPECT_FALSE(a.isOpen());
    ASSERT_TRUE(b.commit().isOk());
    EXPECT_EQ(contents(target), "moved");
}

} // namespace
} // namespace syncperf
