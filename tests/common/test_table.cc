/**
 * @file
 * Unit tests for the table printer.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/table.hh"

namespace syncperf
{
namespace
{

TEST(TablePrinter, RendersHeaderSeparatorAndRows)
{
    TablePrinter t({"a", "bb"});
    t.addRow({"1", "2"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| a "), std::string::npos);
    EXPECT_NE(out.find("| bb "), std::string::npos);
    EXPECT_NE(out.find("|---"), std::string::npos);
    EXPECT_NE(out.find("| 1 "), std::string::npos);
}

TEST(TablePrinter, PadsShortRows)
{
    TablePrinter t({"x", "y"});
    t.addRow({"only"});
    const std::string out = t.render();
    // Row renders with an empty second cell, same column count.
    EXPECT_EQ(t.rowCount(), 1u);
    EXPECT_NE(out.find("| only "), std::string::npos);
}

TEST(TablePrinter, ColumnsWidenToData)
{
    TablePrinter t({"c"});
    t.addRow({"wide-value"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| wide-value |"), std::string::npos);
}

TEST(TablePrinter, TitleAppearsFirst)
{
    TablePrinter t({"c"});
    t.setTitle("My Table");
    EXPECT_EQ(t.render().rfind("My Table\n", 0), 0u);
}

TEST(TablePrinter, TooWideRowPanics)
{
    TablePrinter t({"one"});
    ScopedLogCapture capture;
    EXPECT_THROW(t.addRow({"a", "b"}), LogDeathException);
}

TEST(TablePrinter, EmptyHeaderPanics)
{
    ScopedLogCapture capture;
    EXPECT_THROW(TablePrinter t({}), LogDeathException);
}

} // namespace
} // namespace syncperf
