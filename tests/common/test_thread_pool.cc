/**
 * @file
 * Tests for the work-stealing thread pool. The interesting properties
 * are completion (every task runs exactly once, from any submitting
 * thread), recursive submission (a worker fanning out more work), and
 * idle-waiting; they are exercised with enough tasks and workers that
 * TSan (the `tsan` preset) gets a fair chance at any race.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "common/thread_pool.hh"

namespace syncperf
{
namespace
{

TEST(ThreadPool, RunsEverySubmittedTaskExactlyOnce)
{
    ThreadPool pool(4);
    constexpr int n_tasks = 1000;
    std::vector<std::atomic<int>> runs(n_tasks);
    for (int i = 0; i < n_tasks; ++i)
        pool.submit([&runs, i] { runs[i].fetch_add(1); });
    pool.waitIdle();
    for (int i = 0; i < n_tasks; ++i)
        EXPECT_EQ(runs[i].load(), 1) << "task " << i;
}

TEST(ThreadPool, ClampsWorkerCountToAtLeastOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1);
    std::atomic<int> ran{0};
    pool.submit([&] { ran.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, WorkersCanSubmitMoreWork)
{
    ThreadPool pool(4);
    std::atomic<int> leaves{0};
    // Binary fan-out three levels deep, seeded from off-pool: only
    // stealing lets other workers help with the recursive half.
    std::function<void(int)> fan = [&](int depth) {
        if (depth == 0) {
            leaves.fetch_add(1);
            return;
        }
        pool.submit([&fan, depth] { fan(depth - 1); });
        pool.submit([&fan, depth] { fan(depth - 1); });
    };
    pool.submit([&fan] { fan(6); });
    pool.waitIdle();
    EXPECT_EQ(leaves.load(), 64);
}

TEST(ThreadPool, CurrentWorkerIdentifiesPoolThreads)
{
    EXPECT_EQ(ThreadPool::currentWorker(), -1);
    ThreadPool pool(3);
    std::mutex mutex;
    std::set<int> seen;
    for (int i = 0; i < 64; ++i) {
        pool.submit([&] {
            const int worker = ThreadPool::currentWorker();
            std::scoped_lock lock(mutex);
            seen.insert(worker);
        });
    }
    pool.waitIdle();
    EXPECT_EQ(ThreadPool::currentWorker(), -1);
    for (int worker : seen) {
        EXPECT_GE(worker, 0);
        EXPECT_LT(worker, pool.size());
    }
}

TEST(ThreadPool, WaitIdleReturnsImmediatelyWhenEmpty)
{
    ThreadPool pool(2);
    pool.waitIdle(); // must not hang
    SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueuedWork)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.submit([&] { ran.fetch_add(1); });
        // No waitIdle: the destructor must finish the backlog.
    }
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, HardwareConcurrencyIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareConcurrency(), 1);
}

} // namespace
} // namespace syncperf
