/**
 * @file
 * Unit tests for the log2-bucket histogram: bucket boundaries,
 * aggregate accessors, merge associativity, and equality semantics.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/histogram.hh"

namespace syncperf
{
namespace
{

TEST(Histogram, BucketIndexBoundaries)
{
    EXPECT_EQ(Histogram::bucketIndex(0), 0);
    EXPECT_EQ(Histogram::bucketIndex(1), 1);
    EXPECT_EQ(Histogram::bucketIndex(2), 2);
    EXPECT_EQ(Histogram::bucketIndex(3), 2);
    EXPECT_EQ(Histogram::bucketIndex(4), 3);
    EXPECT_EQ(Histogram::bucketIndex(7), 3);
    EXPECT_EQ(Histogram::bucketIndex(8), 4);
    EXPECT_EQ(Histogram::bucketIndex(1023), 10);
    EXPECT_EQ(Histogram::bucketIndex(1024), 11);
    EXPECT_EQ(Histogram::bucketIndex(~std::uint64_t{0}), 64);
}

TEST(Histogram, BucketBoundsPartitionTheDomain)
{
    // Every bucket's [low, high] range must be exactly the values
    // bucketIndex maps to it, with no gaps between buckets.
    for (int i = 0; i <= 64; ++i) {
        const std::uint64_t low = Histogram::bucketLow(i);
        const std::uint64_t high = Histogram::bucketHigh(i);
        EXPECT_LE(low, high) << "bucket " << i;
        EXPECT_EQ(Histogram::bucketIndex(low), i) << "bucket " << i;
        EXPECT_EQ(Histogram::bucketIndex(high), i) << "bucket " << i;
        if (i > 0)
            EXPECT_EQ(Histogram::bucketHigh(i - 1) + 1, low)
                << "gap below bucket " << i;
    }
    EXPECT_EQ(Histogram::bucketHigh(64), ~std::uint64_t{0});
}

TEST(Histogram, EmptyAggregates)
{
    const Histogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, RecordTracksAggregates)
{
    Histogram h;
    h.record(5);
    h.record(100);
    h.record(0);
    h.record(7);
    EXPECT_FALSE(h.empty());
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 112u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 28.0);
}

TEST(Histogram, PerBucketMinMaxAreWithinBounds)
{
    Histogram h;
    h.record(5);
    h.record(6);
    h.record(7);
    const auto &bs = h.buckets();
    ASSERT_GT(bs.size(), 3u);
    EXPECT_EQ(bs[3].count, 3u);
    EXPECT_EQ(bs[3].min, 5u);
    EXPECT_EQ(bs[3].max, 7u);
    EXPECT_EQ(bs[3].sum, 18u);
}

TEST(Histogram, MergeMatchesDirectRecording)
{
    const std::vector<std::uint64_t> xs = {0, 1, 1, 9, 300, 1 << 20};
    Histogram direct;
    Histogram a, b;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        direct.record(xs[i]);
        (i % 2 == 0 ? a : b).record(xs[i]);
    }
    a.merge(b);
    EXPECT_EQ(a, direct);
}

TEST(Histogram, MergeIsAssociativeAndCommutative)
{
    Histogram a, b, c;
    a.record(3);
    a.record(70);
    b.record(4);
    c.record(900);
    c.record(0);

    // (a + b) + c
    Histogram left = a;
    left.merge(b);
    left.merge(c);
    // a + (b + c)
    Histogram bc = b;
    bc.merge(c);
    Histogram right = a;
    right.merge(bc);
    EXPECT_EQ(left, right);

    // c + (b + a)
    Histogram ba = b;
    ba.merge(a);
    Histogram swapped = c;
    swapped.merge(ba);
    EXPECT_EQ(left, swapped);
}

TEST(Histogram, MergeIntoEmptyCopies)
{
    Histogram a;
    a.record(42);
    Histogram empty;
    empty.merge(a);
    EXPECT_EQ(empty, a);
    a.merge(Histogram{});
    EXPECT_EQ(empty, a);
}

TEST(Histogram, EqualityIgnoresTrailingEmptyBuckets)
{
    Histogram a;
    a.record(1 << 10); // grows storage to bucket 11
    a.clear();
    a.record(3);
    Histogram b;
    b.record(3);
    EXPECT_EQ(a, b);

    b.record(3);
    EXPECT_FALSE(a == b);
}

TEST(Histogram, SetBucketRoundTripsSerializedBuckets)
{
    Histogram original;
    original.record(17);
    original.record(1000);
    original.record(1001);

    // Rebuild from the nonzero buckets only, as a deserializer does.
    Histogram rebuilt;
    const auto &bs = original.buckets();
    for (std::size_t i = 0; i < bs.size(); ++i) {
        if (bs[i].count != 0)
            rebuilt.setBucket(static_cast<int>(i), bs[i]);
    }
    EXPECT_EQ(rebuilt, original);
    EXPECT_EQ(rebuilt.count(), 3u);
    EXPECT_EQ(rebuilt.sum(), original.sum());
}

} // namespace
} // namespace syncperf
