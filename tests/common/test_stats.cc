/**
 * @file
 * Unit tests for summary statistics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"

namespace syncperf
{
namespace
{

TEST(Median, OddCount)
{
    const std::vector<double> v{5.0, 1.0, 3.0};
    EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Median, EvenCountAveragesCenter)
{
    const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(Median, SingleElement)
{
    const std::vector<double> v{7.5};
    EXPECT_DOUBLE_EQ(median(v), 7.5);
}

TEST(Median, DoesNotMutateInput)
{
    std::vector<double> v{9.0, 1.0, 5.0};
    (void)median(v);
    EXPECT_EQ(v, (std::vector<double>{9.0, 1.0, 5.0}));
}

TEST(Median, DuplicateValues)
{
    const std::vector<double> v{2.0, 2.0, 2.0, 9.0};
    EXPECT_DOUBLE_EQ(median(v), 2.0);
}

TEST(Median, NegativeValues)
{
    const std::vector<double> v{-3.0, -1.0, -2.0};
    EXPECT_DOUBLE_EQ(median(v), -2.0);
}

TEST(Median, EmptyInputPanics)
{
    ScopedLogCapture capture;
    EXPECT_THROW((void)median(std::vector<double>{}), LogDeathException);
}

TEST(MedianInPlace, AgreesWithMedianOnOddAndEvenCounts)
{
    std::vector<double> odd{5.0, 1.0, 3.0};
    std::vector<double> even{4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(medianInPlace(odd), 3.0);
    EXPECT_DOUBLE_EQ(medianInPlace(even), 2.5);
}

TEST(MedianInPlace, MayPermuteButKeepsTheMultiset)
{
    std::vector<double> v{9.0, 1.0, 5.0, 3.0, 7.0};
    std::vector<double> sorted_before = v;
    std::sort(sorted_before.begin(), sorted_before.end());
    EXPECT_DOUBLE_EQ(medianInPlace(v), 5.0);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted_before);
}

TEST(MedianInPlace, EmptyInputPanics)
{
    ScopedLogCapture capture;
    std::vector<double> v;
    EXPECT_THROW((void)medianInPlace(v), LogDeathException);
}

TEST(MedianInPlace, AgreesWithMedianOnRandomizedSamples)
{
    // median() copies into scratch and defers to medianInPlace, so
    // the two must agree on every input shape.
    std::vector<double> v;
    for (int n = 1; n <= 33; ++n) {
        v.push_back(static_cast<double>((n * 7919) % 101));
        std::vector<double> copy = v;
        EXPECT_DOUBLE_EQ(medianInPlace(copy), median(v)) << "n=" << n;
    }
}

TEST(MeanStddev, ConstantSample)
{
    const std::vector<double> v{4.0, 4.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(v), 4.0);
    EXPECT_DOUBLE_EQ(stddev(v), 0.0);
}

TEST(MeanStddev, KnownSample)
{
    const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(v), 5.0);
    EXPECT_DOUBLE_EQ(stddev(v), 2.0);
}

TEST(MinMax, Basic)
{
    const std::vector<double> v{3.0, -2.0, 8.0};
    EXPECT_DOUBLE_EQ(minOf(v), -2.0);
    EXPECT_DOUBLE_EQ(maxOf(v), 8.0);
}

TEST(Percentile, Endpoints)
{
    const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
}

TEST(Percentile, Interpolates)
{
    const std::vector<double> v{0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(Percentile, MedianAgreesWithMedianFunction)
{
    const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0};
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), median(v));
}

TEST(Summarize, EmptyGivesZeros)
{
    const Summary s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summarize, PopulatesAllFields)
{
    const std::vector<double> v{1.0, 2.0, 3.0};
    const Summary s = summarize(v);
    EXPECT_EQ(s.count, 3u);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 3.0);
    EXPECT_DOUBLE_EQ(s.mean, 2.0);
    EXPECT_DOUBLE_EQ(s.median, 2.0);
}

TEST(RunningStat, MatchesBatchStats)
{
    const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    RunningStat rs;
    for (double x : v)
        rs.add(x);
    EXPECT_EQ(rs.count(), v.size());
    EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
    EXPECT_NEAR(rs.stddev(), stddev(v), 1e-12);
    EXPECT_DOUBLE_EQ(rs.min(), 2.0);
    EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
    EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

TEST(RunningStat, ResetClears)
{
    RunningStat rs;
    rs.add(5.0);
    rs.reset();
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.max(), 0.0);
}

} // namespace
} // namespace syncperf
