/**
 * @file
 * Tests for the minimal JSON library backing the campaign manifest.
 */

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "common/json.hh"

namespace syncperf
{
namespace
{

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(parseJson("null").value().isNull());
    EXPECT_TRUE(parseJson("true").value().asBool());
    EXPECT_FALSE(parseJson("false").value().asBool());
    EXPECT_DOUBLE_EQ(parseJson("-3.25e2").value().asNumber(), -325.0);
    EXPECT_EQ(parseJson("\"hi\"").value().asString(), "hi");
}

TEST(Json, ParsesNestedStructure)
{
    const auto doc = parseJson(
        R"({"a": [1, 2, {"b": "c"}], "d": {"e": true}, "f": null})");
    ASSERT_TRUE(doc.isOk());
    const JsonValue &root = doc.value();
    ASSERT_TRUE(root.isObject());
    const JsonValue *a = root.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->asArray().size(), 3u);
    EXPECT_DOUBLE_EQ(a->asArray()[0].asNumber(), 1.0);
    EXPECT_EQ(a->asArray()[2].find("b")->asString(), "c");
    EXPECT_TRUE(root.find("d")->find("e")->asBool());
    EXPECT_TRUE(root.find("f")->isNull());
    EXPECT_EQ(root.find("missing"), nullptr);
}

TEST(Json, StringEscapes)
{
    const auto doc = parseJson(R"("a\"b\\c\n\tA")");
    ASSERT_TRUE(doc.isOk());
    EXPECT_EQ(doc.value().asString(), "a\"b\\c\n\tA");
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_FALSE(parseJson("").isOk());
    EXPECT_FALSE(parseJson("{").isOk());
    EXPECT_FALSE(parseJson("[1,]").isOk());
    EXPECT_FALSE(parseJson("{\"a\" 1}").isOk());
    EXPECT_FALSE(parseJson("tru").isOk());
    EXPECT_FALSE(parseJson("1 2").isOk());
    EXPECT_FALSE(parseJson("\"unterminated").isOk());
    EXPECT_EQ(parseJson("[1,]").status().code(), ErrorCode::ParseError);
}

TEST(Json, RejectsRunawayNesting)
{
    std::string deep(100, '[');
    EXPECT_FALSE(parseJson(deep).isOk());
}

TEST(Json, DumpRoundTripsThroughParse)
{
    JsonValue root = JsonValue::object();
    root.set("version", JsonValue(1));
    root.set("name", JsonValue("system \"3\""));
    JsonValue arr = JsonValue::array();
    arr.push(JsonValue(0.125));
    arr.push(JsonValue(false));
    arr.push(JsonValue());
    root.set("values", std::move(arr));

    for (int indent : {0, 2}) {
        const std::string text = root.dump(indent);
        const auto parsed = parseJson(text);
        ASSERT_TRUE(parsed.isOk()) << text;
        const JsonValue &back = parsed.value();
        EXPECT_DOUBLE_EQ(back.numberOr("version", -1), 1.0);
        EXPECT_EQ(back.stringOr("name", ""), "system \"3\"");
        EXPECT_DOUBLE_EQ(back.find("values")->asArray()[0].asNumber(),
                         0.125);
    }
}

TEST(Json, SetOverwritesExistingKeyInPlace)
{
    JsonValue obj = JsonValue::object();
    obj.set("a", JsonValue(1));
    obj.set("b", JsonValue(2));
    obj.set("a", JsonValue(3));
    ASSERT_EQ(obj.asObject().size(), 2u);
    EXPECT_EQ(obj.asObject()[0].first, "a");
    EXPECT_DOUBLE_EQ(obj.find("a")->asNumber(), 3.0);
}

TEST(Json, NonFiniteNumbersSerializeAsNull)
{
    JsonValue v(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(v.dump(), "null");
}

} // namespace
} // namespace syncperf
