#!/usr/bin/env bash
# End-to-end checks for campaign-wide observability
# (docs/observability.md, "Sharded campaigns"):
#
#   1. metrics merging: the merged metrics.json of --shards {1,2,4}
#      carries deterministic counters identical to the serial run's,
#      and the supervisor + per-shard partition rows survive the
#      check_metrics.py shard-partition gate;
#   2. trace stitching: a sharded run's trace.json is loadable JSON
#      with one pid track per shard plus the supervisor, and the
#      clock-aligned timestamps are non-negative and per-pid
#      monotonic;
#   3. live status: status.json parses as syncperf-status-v1 at every
#      mid-run poll (atomic rewrites -- a reader can never observe a
#      torn file) and finishes with done == total;
#   4. crash observability: a kill-injected run still stitches a
#      loadable trace, renders a non-empty postmortem from the dead
#      shard's flight ring, and reports a degraded final status.
#
# Usage: test_observability_campaign.sh <path-to-campaign-binary>
set -u

CAMPAIGN=${1:?usage: $0 <campaign-binary>}
SCRIPTS_DIR=$(cd "$(dirname "$0")/../../scripts" && pwd)
WORK=$(mktemp -d "${TMPDIR:-/tmp}/syncperf_obs_XXXXXX")
trap 'rm -rf "$WORK"' EXIT

PY=python3

FAILURES=0
fail() {
    echo "FAIL: $*" >&2
    FAILURES=$((FAILURES + 1))
}

run() {
    # Run a campaign leg, keeping its log for the failure report.
    local log=$1
    shift
    "$CAMPAIGN" "$@" >"$WORK/$log" 2>&1
}

dump_log() {
    echo "---- $1 (last 30 lines) ----" >&2
    tail -n 30 "$WORK/$1" >&2 || true
}

same_tree() {
    diff -r --exclude=.shards "$1" "$2" >"$WORK/diff.txt" 2>&1
}

# Every counter in either snapshot's "counters" section (the
# deterministic class) must match exactly.
same_counters() {
    $PY -c '
import json, sys
a = json.load(open(sys.argv[1]))["counters"]
b = json.load(open(sys.argv[2]))["counters"]
diff = {k: (a.get(k), b.get(k))
        for k in set(a) | set(b) if a.get(k) != b.get(k)}
if diff:
    print("counter mismatch:", diff)
    sys.exit(1)
' "$1" "$2"
}

# A stitched trace must carry expected_inputs pid tracks (one per
# shard plus the supervisor) and clock-aligned, per-pid monotonic,
# non-negative timestamps.
check_stitched_trace() { # <file> <expected_inputs>
    $PY -c '
import json, sys
t = json.load(open(sys.argv[1]))
want = int(sys.argv[2])
assert t["syncperfStitch"]["inputs"] == want, t["syncperfStitch"]
names = {e["args"]["name"] for e in t["traceEvents"]
         if e.get("name") == "process_name"}
shards = {n for n in names if n.startswith("shard-")}
assert len(shards) == want - 1, names
assert "supervisor" in names, names
last = {}
for e in t["traceEvents"]:
    if e.get("ph") != "X":
        continue
    assert e["ts"] >= 0, ("negative aligned timestamp", e)
    pid = e["pid"]
    assert e["ts"] >= last.get(pid, -1.0), \
        ("per-pid timestamps regressed", e)
    last[pid] = e["ts"]
print("   %d tracks, %d pids monotonic" % (len(names), len(last)))
' "$1" "$2"
}

# ------------------------------------------- 1. metrics merge matrix

echo "== serial reference: --jobs 1 --metrics"
if ! run serial.log omp --only threadripper --out "$WORK/serial" \
        --jobs 1 --metrics "$WORK/metrics-serial.json"; then
    dump_log serial.log
    fail "serial campaign exited non-zero"
fi

for shards in 1 2 4; do
    leg="s$shards"
    echo "== merge: --shards $shards --jobs 2 --metrics"
    if ! run "$leg.log" omp --only threadripper --out "$WORK/$leg" \
            --shards "$shards" --jobs 2 \
            --metrics "$WORK/metrics-$leg.json" \
            --trace "$WORK/trace-$leg.json"; then
        dump_log "$leg.log"
        fail "--shards $shards exited non-zero"
        continue
    fi
    if ! same_tree "$WORK/serial" "$WORK/$leg"; then
        cat "$WORK/diff.txt" >&2
        fail "--shards $shards tree differs from serial"
    fi
    if ! same_counters "$WORK/metrics-serial.json" \
            "$WORK/metrics-$leg.json"; then
        fail "--shards $shards merged counters differ from serial"
    fi
    if [ "$shards" -gt 1 ]; then
        if ! $PY "$SCRIPTS_DIR/check_metrics.py" \
                "$WORK/metrics-$leg.json"; then
            fail "--shards $shards snapshot failed check_metrics.py"
        fi
        if ! check_stitched_trace "$WORK/trace-$leg.json" \
                "$((shards + 1))"; then
            fail "--shards $shards stitched trace invalid"
        fi
    fi
done

# --------------------------------------- 2. live status, polled hot

echo "== status: polled while a 2-shard campaign runs"
"$CAMPAIGN" omp --only threadripper --out "$WORK/live" \
    --shards 2 --jobs 2 --status "$WORK/status.json" \
    --status-interval 0.05 --progress \
    >"$WORK/live.log" 2>&1 &
pid=$!
good_polls=0
bad_polls=0
while kill -0 "$pid" 2>/dev/null; do
    if [ -s "$WORK/status.json" ]; then
        if $PY -c '
import json, sys
d = json.load(open(sys.argv[1]))
assert d["schema"] == "syncperf-status-v1"
assert d["points"]["done"] <= d["points"]["total"]
' "$WORK/status.json" 2>/dev/null; then
            good_polls=$((good_polls + 1))
        else
            bad_polls=$((bad_polls + 1))
        fi
    fi
    sleep 0.02
done
if ! wait "$pid"; then
    dump_log live.log
    fail "status-reporting campaign exited non-zero"
fi
echo "   $good_polls clean mid-run polls, $bad_polls torn"
[ "$bad_polls" -eq 0 ] ||
    fail "status.json failed validation mid-run ($bad_polls polls)"
if ! $PY -c '
import json, sys
d = json.load(open(sys.argv[1]))
assert d["schema"] == "syncperf-status-v1"
assert d["state"] == "finished", d["state"]
assert d["points"]["done"] == d["points"]["total"], d["points"]
for key, value in d["engagement"].items():
    assert 0.0 <= value <= 1.0, (key, value)
assert len(d["shards"]) == 2, d["shards"]
' "$WORK/status.json"; then
    fail "final status.json invalid"
fi
grep -q "^\[status\]" "$WORK/live.log" ||
    fail "--progress wrote no status lines"

# ----------------------------- 3. kill-injected crash observability

echo "== crash: shard 1 SIGKILLed every life, postmortem rendered"
if ! SYNCPERF_FAULT_KILL_SHARD="1:2" \
        run kill.log omp --only threadripper --out "$WORK/kill" \
        --shards 2 --jobs 2 --shard-max-retries 1 \
        --shard-backoff-ms 50 --trace "$WORK/trace-kill.json" \
        --status "$WORK/status-kill.json"; then
    dump_log kill.log
    fail "kill-injected campaign exited non-zero"
else
    if ! same_tree "$WORK/serial" "$WORK/kill"; then
        cat "$WORK/diff.txt" >&2
        fail "kill-injected tree differs from serial"
    fi
    # The dead shard never flushed a trace; the stitch must still
    # produce loadable JSON from what survived.
    if ! $PY -c 'import json, sys; json.load(open(sys.argv[1]))' \
            "$WORK/trace-kill.json"; then
        fail "kill-injected stitched trace unloadable"
    fi
    pm=$(ls "$WORK/kill/.shards"/postmortem.shard-*.json 2>/dev/null |
         head -n 1)
    if [ -z "$pm" ]; then
        fail "no postmortem rendered for the killed shard"
    elif ! $PY -c '
import json, sys
d = json.load(open(sys.argv[1]))
assert d["schema"] == "syncperf-postmortem-v1", d.get("schema")
assert d["events"], "postmortem has no events"
print("   postmortem: %s, %d events" % (d["label"], len(d["events"])))
' "$pm"; then
        fail "postmortem unreadable or empty"
    fi
    if ! $PY -c '
import json, sys
d = json.load(open(sys.argv[1]))
assert d["state"] == "degraded", d["state"]
assert any(s["dead"] for s in d["shards"]), d["shards"]
' "$WORK/status-kill.json"; then
        fail "final status does not record the degraded shard"
    fi
fi

# -------------------------------------------------------------------

if [ "$FAILURES" -ne 0 ]; then
    echo "$FAILURES observability check(s) failed" >&2
    exit 1
fi
echo "all observability checks passed"
