#!/usr/bin/env bash
# End-to-end checks for crash-tolerant campaign sharding
# (docs/robustness.md, "Sharded campaigns"):
#
#   1. byte-identity: every --shards x --jobs combination produces a
#      results tree identical to the serial run;
#   2. graceful degradation: a shard SIGKILLed mid-commit (via the
#      fault injector) is retried, then abandoned, and the campaign
#      still completes with the identical tree, retries and
#      reassignments visible in the shard report, and no experiment
#      executed twice;
#   3. checkpoint/resume: SIGTERM stops the campaign with exit
#      128+15, and a --resume run completes the identical tree.
#
# Usage: test_shard_campaign.sh <path-to-campaign-binary>
set -u

CAMPAIGN=${1:?usage: $0 <campaign-binary>}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/syncperf_shard_XXXXXX")
trap 'rm -rf "$WORK"' EXIT

FAILURES=0
fail() {
    echo "FAIL: $*" >&2
    FAILURES=$((FAILURES + 1))
}

run() {
    # Run a campaign leg, keeping its log for the failure report.
    local log=$1
    shift
    "$CAMPAIGN" "$@" >"$WORK/$log" 2>&1
}

dump_log() {
    echo "---- $1 (last 30 lines) ----" >&2
    tail -n 30 "$WORK/$1" >&2 || true
}

# Trees must match except for .shards/ (supervisor control files,
# kept on purpose after a degraded run) and any shard report.
same_tree() {
    diff -r --exclude=.shards "$1" "$2" >"$WORK/diff.txt" 2>&1
}

report_field() {
    python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    print(json.load(f)[sys.argv[2]])
' "$1" "$2"
}

# ---------------------------------------------------- 1. the matrix

echo "== baseline: --shards 1 --jobs 1"
if ! run base.log omp --only threadripper --out "$WORK/base" \
        --jobs 1; then
    dump_log base.log
    fail "baseline campaign exited non-zero"
fi
[ -f "$WORK/base"/*/manifest.json ] ||
    fail "baseline produced no manifest.json"

for shards in 2 4; do
    for jobs in 1 2; do
        leg="s${shards}j${jobs}"
        echo "== matrix: --shards $shards --jobs $jobs"
        if ! run "$leg.log" omp --only threadripper \
                --out "$WORK/$leg" --shards "$shards" \
                --jobs "$jobs"; then
            dump_log "$leg.log"
            fail "--shards $shards --jobs $jobs exited non-zero"
            continue
        fi
        if ! same_tree "$WORK/base" "$WORK/$leg"; then
            cat "$WORK/diff.txt" >&2
            fail "--shards $shards --jobs $jobs tree differs from serial"
        fi
    done
done

# ------------------------------------- 2. a shard SIGKILLed mid-run

echo "== fault: shard 1 SIGKILLed at its 3rd commit, every life"
if ! SYNCPERF_FAULT_KILL_SHARD="1:2" \
        run kill.log omp --only threadripper --out "$WORK/kill" \
        --shards 3 --jobs 1 --shard-max-retries 1 \
        --shard-backoff-ms 50 \
        --shard-report "$WORK/kill_report.json"; then
    dump_log kill.log
    fail "campaign with a killed shard exited non-zero"
elif [ ! -f "$WORK/kill_report.json" ]; then
    fail "no shard report written"
else
    if ! same_tree "$WORK/base" "$WORK/kill"; then
        cat "$WORK/diff.txt" >&2
        fail "killed-shard tree differs from serial"
    fi
    retries=$(report_field "$WORK/kill_report.json" retries)
    reassigned=$(report_field "$WORK/kill_report.json" points_reassigned)
    duplicates=$(report_field "$WORK/kill_report.json" duplicate_commits)
    degraded=$(report_field "$WORK/kill_report.json" degraded)
    echo "   retries=$retries reassigned=$reassigned" \
         "duplicates=$duplicates degraded=$degraded"
    [ "$retries" -ge 1 ] || fail "expected >= 1 shard retry"
    [ "$reassigned" -ge 1 ] || fail "expected reassigned points"
    # The journals must prevent any experiment from being committed
    # twice, even though the shard was killed and respawned.
    [ "$duplicates" -eq 0 ] ||
        fail "an experiment was executed twice ($duplicates duplicates)"
    [ "$degraded" = "True" ] || [ "$degraded" = "true" ] ||
        fail "report does not flag the degraded run"
fi

# ------------------------------------------ 3. SIGTERM then --resume

echo "== interrupt: SIGTERM mid-campaign, then --resume"
if ! run full.log omp --out "$WORK/full" --jobs 1; then
    dump_log full.log
    fail "full serial campaign exited non-zero"
fi

"$CAMPAIGN" omp --out "$WORK/int" --jobs 1 \
    >"$WORK/int.log" 2>&1 &
pid=$!
sleep 0.4
kill -TERM "$pid" 2>/dev/null
wait "$pid"
status=$?
if [ "$status" -eq 143 ]; then
    # Interrupted as intended: the resume must finish the job.
    if ! run resume.log omp --out "$WORK/int" --jobs 1 --resume; then
        dump_log resume.log
        fail "--resume after SIGTERM exited non-zero"
    fi
    grep -Eq "[1-9][0-9]* skipped" "$WORK/resume.log" ||
        fail "--resume did not skip any journaled experiments"
elif [ "$status" -ne 0 ]; then
    dump_log int.log
    fail "SIGTERMed campaign exited $status (want 143, or 0 if it won the race)"
fi
if ! same_tree "$WORK/full" "$WORK/int"; then
    cat "$WORK/diff.txt" >&2
    fail "resumed tree differs from the uninterrupted run"
fi

# -------------------------------------------------------------------

if [ "$FAILURES" -ne 0 ]; then
    echo "$FAILURES shard-campaign check(s) failed" >&2
    exit 1
fi
echo "all shard-campaign checks passed"
