#!/usr/bin/env bash
# End-to-end checks for the warm-start machine pool and on-disk
# decoded-image snapshots (docs/performance.md, "Warm-start machine
# pool"):
#
#   1. byte-identity: the results tree is identical with the pool on
#      (the default), with --no-machine-pool, and with --snapshot-dir
#      (both a cold first pass and a warm second pass), at every
#      --jobs x --shards combination tried;
#   2. counter determinism: the deterministic counter section of
#      metrics.json -- which includes pool_clones, pool_cold_builds,
#      snapshot_loads, and snapshot_rejects -- is identical between
#      serial and parallel runs;
#   3. robustness: corrupted or truncated snapshot files are rejected
#      (snapshot_rejects > 0), repaired in place, and never change
#      the results tree.
#
# Usage: test_snapshot_campaign.sh <path-to-campaign-binary>
set -u

CAMPAIGN=${1:?usage: $0 <campaign-binary>}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/syncperf_snap_XXXXXX")
trap 'rm -rf "$WORK"' EXIT

FAILURES=0
fail() {
    echo "FAIL: $*" >&2
    FAILURES=$((FAILURES + 1))
}

run() {
    local log=$1
    shift
    "$CAMPAIGN" "$@" >"$WORK/$log" 2>&1
}

dump_log() {
    echo "---- $1 (last 30 lines) ----" >&2
    tail -n 30 "$WORK/$1" >&2 || true
}

same_tree() {
    diff -r --exclude=.shards "$1" "$2" >"$WORK/diff.txt" 2>&1
}

counter() {
    python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    print(json.load(f)["counters"][sys.argv[2]])
' "$1" "$2"
}

same_pool_counters() {
    python3 -c '
import json, sys
keys = ["pool_clones", "pool_cold_builds",
        "snapshot_loads", "snapshot_rejects"]
a = json.load(open(sys.argv[1]))["counters"]
b = json.load(open(sys.argv[2]))["counters"]
bad = [k for k in keys if a.get(k) != b.get(k)]
for k in bad:
    print(f"  {k}: {a.get(k)} != {b.get(k)}", file=sys.stderr)
sys.exit(1 if bad else 0)
' "$1" "$2"
}

# ----------------------------------------------- 1. the flag matrix

echo "== baseline: pool on (default), --jobs 1"
if ! run base.log omp --only threadripper --out "$WORK/base" \
        --jobs 1 --metrics "$WORK/base_metrics.json"; then
    dump_log base.log
    fail "baseline campaign exited non-zero"
fi
[ -f "$WORK/base"/*/manifest.json ] ||
    fail "baseline produced no manifest.json"

echo "== matrix: --no-machine-pool, --jobs 1 and 2"
for jobs in 1 2; do
    leg="nopool_j${jobs}"
    if ! run "$leg.log" omp --only threadripper --out "$WORK/$leg" \
            --no-machine-pool --jobs "$jobs"; then
        dump_log "$leg.log"
        fail "--no-machine-pool --jobs $jobs exited non-zero"
    elif ! same_tree "$WORK/base" "$WORK/$leg"; then
        cat "$WORK/diff.txt" >&2
        fail "--no-machine-pool --jobs $jobs tree differs from baseline"
    fi
done

echo "== matrix: pool on, --jobs 2 and --shards 2 --jobs 2"
if ! run pool_j2.log omp --only threadripper --out "$WORK/pool_j2" \
        --jobs 2 --metrics "$WORK/pool_j2_metrics.json"; then
    dump_log pool_j2.log
    fail "pooled --jobs 2 exited non-zero"
else
    if ! same_tree "$WORK/base" "$WORK/pool_j2"; then
        cat "$WORK/diff.txt" >&2
        fail "pooled --jobs 2 tree differs from baseline"
    fi
    # The pool/snapshot counters must be jobs-invariant (the broader
    # deterministic-section contract lives in test_campaign_parallel;
    # checkpoint_flushes legitimately tracks the flush cadence).
    same_pool_counters "$WORK/base_metrics.json" \
        "$WORK/pool_j2_metrics.json" ||
        fail "pool counters differ between --jobs 1 and 2"
fi
if ! run pool_s2.log omp --only threadripper --out "$WORK/pool_s2" \
        --shards 2 --jobs 2; then
    dump_log pool_s2.log
    fail "pooled --shards 2 --jobs 2 exited non-zero"
elif ! same_tree "$WORK/base" "$WORK/pool_s2"; then
    cat "$WORK/diff.txt" >&2
    fail "pooled --shards 2 --jobs 2 tree differs from baseline"
fi

# ------------------------------------- 2. snapshot write, then load

SNAP="$WORK/snap"

echo "== snapshot: cold pass writes images"
if ! run snap_cold.log omp --only threadripper \
        --out "$WORK/snap_cold" --jobs 1 --snapshot-dir "$SNAP" \
        --metrics "$WORK/cold_metrics.json"; then
    dump_log snap_cold.log
    fail "cold --snapshot-dir pass exited non-zero"
else
    if ! same_tree "$WORK/base" "$WORK/snap_cold"; then
        cat "$WORK/diff.txt" >&2
        fail "cold --snapshot-dir tree differs from baseline"
    fi
    n_snaps=$(find "$SNAP" -name '*.snap' | wc -l)
    echo "   wrote $n_snaps snapshot files"
    [ "$n_snaps" -ge 1 ] || fail "cold pass wrote no snapshot files"
    [ "$(counter "$WORK/cold_metrics.json" snapshot_loads)" -eq 0 ] ||
        fail "cold pass loaded snapshots from an empty directory"
    [ "$(counter "$WORK/cold_metrics.json" snapshot_rejects)" -eq 0 ] ||
        fail "cold pass rejected snapshots in an empty directory"
fi

echo "== snapshot: warm pass loads them (--jobs 2)"
if ! run snap_warm.log omp --only threadripper \
        --out "$WORK/snap_warm" --jobs 2 --snapshot-dir "$SNAP" \
        --metrics "$WORK/warm_metrics.json"; then
    dump_log snap_warm.log
    fail "warm --snapshot-dir pass exited non-zero"
else
    if ! same_tree "$WORK/base" "$WORK/snap_warm"; then
        cat "$WORK/diff.txt" >&2
        fail "warm --snapshot-dir tree differs from baseline"
    fi
    loads=$(counter "$WORK/warm_metrics.json" snapshot_loads)
    rejects=$(counter "$WORK/warm_metrics.json" snapshot_rejects)
    echo "   snapshot_loads=$loads snapshot_rejects=$rejects"
    [ "$loads" -ge 1 ] || fail "warm pass loaded no snapshots"
    [ "$rejects" -eq 0 ] || fail "warm pass rejected valid snapshots"
fi

echo "== snapshot: warm pass under sharding (--shards 2 --jobs 2)"
if ! run snap_shard.log omp --only threadripper \
        --out "$WORK/snap_shard" --shards 2 --jobs 2 \
        --snapshot-dir "$SNAP"; then
    dump_log snap_shard.log
    fail "sharded --snapshot-dir pass exited non-zero"
elif ! same_tree "$WORK/base" "$WORK/snap_shard"; then
    cat "$WORK/diff.txt" >&2
    fail "sharded --snapshot-dir tree differs from baseline"
fi

# -------------------------------------- 3. corrupt snapshots reject

echo "== corruption: byte-flip one image, truncate another"
first=$(find "$SNAP" -name '*.snap' | sort | head -n 1)
second=$(find "$SNAP" -name '*.snap' | sort | head -n 2 | tail -n 1)
if [ -z "$first" ] || [ -z "$second" ] || [ "$first" = "$second" ]; then
    fail "need at least two snapshot files to corrupt"
else
    # Flip one byte in the middle of the first file ...
    size=$(wc -c <"$first")
    python3 - "$first" "$((size / 2))" <<'EOF'
import sys
path, off = sys.argv[1], int(sys.argv[2])
with open(path, "r+b") as f:
    f.seek(off)
    b = f.read(1)
    f.seek(off)
    f.write(bytes([b[0] ^ 0x40]))
EOF
    # ... and tear the tail off the second.
    truncate -s "$(($(wc -c <"$second") / 2))" "$second"

    if ! run snap_bad.log omp --only threadripper \
            --out "$WORK/snap_bad" --jobs 1 --snapshot-dir "$SNAP" \
            --metrics "$WORK/bad_metrics.json"; then
        dump_log snap_bad.log
        fail "campaign with corrupt snapshots exited non-zero"
    else
        if ! same_tree "$WORK/base" "$WORK/snap_bad"; then
            cat "$WORK/diff.txt" >&2
            fail "corrupt snapshots changed the results tree"
        fi
        rejects=$(counter "$WORK/bad_metrics.json" snapshot_rejects)
        echo "   snapshot_rejects=$rejects"
        [ "$rejects" -ge 1 ] ||
            fail "corrupt snapshots were not rejected"
    fi

    # The rejected images were rebuilt and rewritten; a final pass
    # must load cleanly again.
    if ! run snap_fixed.log omp --only threadripper \
            --out "$WORK/snap_fixed" --jobs 1 --snapshot-dir "$SNAP" \
            --metrics "$WORK/fixed_metrics.json"; then
        dump_log snap_fixed.log
        fail "post-repair pass exited non-zero"
    else
        [ "$(counter "$WORK/fixed_metrics.json" snapshot_rejects)" \
            -eq 0 ] || fail "repaired snapshots were rejected again"
        same_tree "$WORK/base" "$WORK/snap_fixed" ||
            fail "post-repair tree differs from baseline"
    fi
fi

# -------------------------------------------------------------------

if [ "$FAILURES" -ne 0 ]; then
    echo "$FAILURES snapshot-campaign check(s) failed" >&2
    exit 1
fi
echo "all snapshot-campaign checks passed"
