#!/usr/bin/env bash
# End-to-end byte-identity matrix for lane-batched sweeps
# (docs/performance.md, "Lane-batched sweeps"): lane grouping must be
# invisible in every artifact the campaign writes. Every combination
# of {--lanes 8, --lanes 2, --lanes 1, --no-lanes} x --jobs {1,4} x
# --shards {1,3} must produce a results tree -- CSVs, manifest.json,
# telemetry -- byte-identical to the ungrouped serial run, and the
# grouped leg must actually have grouped (lane_groups < lane_points).
#
# Usage: test_lane_campaign.sh <path-to-campaign-binary>
set -u

CAMPAIGN=${1:?usage: $0 <campaign-binary>}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/syncperf_lanes_XXXXXX")
trap 'rm -rf "$WORK"' EXIT

# One CPU and one GPU system keep the matrix cheap while covering
# both lane executors.
ONLY="threadripper,2070"

FAILURES=0
fail() {
    echo "FAIL: $*" >&2
    FAILURES=$((FAILURES + 1))
}

run() {
    local log=$1
    shift
    "$CAMPAIGN" "$@" >"$WORK/$log" 2>&1
}

dump_log() {
    echo "---- $1 (last 30 lines) ----" >&2
    tail -n 30 "$WORK/$1" >&2 || true
}

same_tree() {
    diff -r --exclude=.shards "$1" "$2" >"$WORK/diff.txt" 2>&1
}

echo "== ground truth: --no-lanes --jobs 1"
if ! run base.log --only "$ONLY" --out "$WORK/base" \
        --no-lanes --jobs 1 --telemetry; then
    dump_log base.log
    fail "ungrouped baseline exited non-zero"
fi

# leg name, then the flags that distinguish it from the baseline.
run_leg() {
    local leg=$1
    shift
    echo "== matrix: $leg"
    if ! run "$leg.log" --only "$ONLY" --out "$WORK/$leg" \
            --telemetry "$@"; then
        dump_log "$leg.log"
        fail "$leg exited non-zero"
        return
    fi
    if ! same_tree "$WORK/base" "$WORK/$leg"; then
        cat "$WORK/diff.txt" >&2
        fail "$leg tree differs from the ungrouped serial run"
    fi
}

run_leg lanes_j1 --jobs 1
run_leg lanes_j4 --jobs 4
run_leg lanes2_j4 --lanes 2 --jobs 4
run_leg lanes1_j1 --lanes 1 --jobs 1
run_leg nolanes_j4 --no-lanes --jobs 4
run_leg lanes_s3 --shards 3 --jobs 1
run_leg nolanes_s3 --no-lanes --shards 3 --jobs 1

# The grouped serial leg must actually have grouped: its metrics
# snapshot is the witness that the identity above was not vacuous.
echo "== engagement: lane_groups < lane_points in the grouped leg"
if ! run engaged.log --only "$ONLY" --out "$WORK/engaged" --jobs 1 \
        --metrics "$WORK/metrics.json"; then
    dump_log engaged.log
    fail "metrics leg exited non-zero"
elif ! python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    counters = json.load(f)["counters"]
groups = counters.get("lane_groups", 0)
points = counters.get("lane_points", 0)
sys.exit(0 if 0 < groups < points else 1)
' "$WORK/metrics.json"; then
    fail "grouped campaign reported no lane collapse" \
         "(want 0 < lane_groups < lane_points)"
fi

# Width 1 must plan but never share: every point its own group.
echo "== width 1: lane_groups == lane_points"
if ! run width1.log --only "$ONLY" --out "$WORK/width1" --jobs 1 \
        --lanes 1 --metrics "$WORK/metrics1.json"; then
    dump_log width1.log
    fail "width-1 leg exited non-zero"
elif ! python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    counters = json.load(f)["counters"]
groups = counters.get("lane_groups", 0)
points = counters.get("lane_points", 0)
singles = counters.get("lane_singleton_points", 0)
sys.exit(0 if points > 0 and groups == points == singles else 1)
' "$WORK/metrics1.json"; then
    fail "--lanes 1 did not plan width-1 groups for every point"
fi

if [ "$FAILURES" -ne 0 ]; then
    echo "$FAILURES lane campaign check(s) failed" >&2
    exit 1
fi
echo "all lane campaign checks passed"
