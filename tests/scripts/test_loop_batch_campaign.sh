#!/usr/bin/env bash
# End-to-end byte-identity matrix for steady-state loop batching
# (docs/performance.md, "Loop batching"): the batcher must be
# invisible in every artifact the campaign writes. Every combination
# of {default, --no-loop-batch} x --jobs {1,4} x --shards {1,3} must
# produce a results tree -- CSVs, manifest.json, telemetry --
# byte-identical to the single-stepped serial run.
#
# Usage: test_loop_batch_campaign.sh <path-to-campaign-binary>
set -u

CAMPAIGN=${1:?usage: $0 <campaign-binary>}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/syncperf_loopbatch_XXXXXX")
trap 'rm -rf "$WORK"' EXIT

# One CPU and one GPU system keep the matrix cheap while covering
# both batchers.
ONLY="threadripper,2070"

FAILURES=0
fail() {
    echo "FAIL: $*" >&2
    FAILURES=$((FAILURES + 1))
}

run() {
    local log=$1
    shift
    "$CAMPAIGN" "$@" >"$WORK/$log" 2>&1
}

dump_log() {
    echo "---- $1 (last 30 lines) ----" >&2
    tail -n 30 "$WORK/$1" >&2 || true
}

same_tree() {
    diff -r --exclude=.shards "$1" "$2" >"$WORK/diff.txt" 2>&1
}

echo "== ground truth: --no-loop-batch --jobs 1"
if ! run base.log --only "$ONLY" --out "$WORK/base" \
        --no-loop-batch --jobs 1 --telemetry; then
    dump_log base.log
    fail "single-stepped baseline exited non-zero"
fi

# leg name, then the flags that distinguish it from the baseline.
run_leg() {
    local leg=$1
    shift
    echo "== matrix: $leg"
    if ! run "$leg.log" --only "$ONLY" --out "$WORK/$leg" \
            --telemetry "$@"; then
        dump_log "$leg.log"
        fail "$leg exited non-zero"
        return
    fi
    if ! same_tree "$WORK/base" "$WORK/$leg"; then
        cat "$WORK/diff.txt" >&2
        fail "$leg tree differs from the single-stepped serial run"
    fi
}

run_leg batch_j1 --jobs 1
run_leg batch_j4 --jobs 4
run_leg nobatch_j4 --no-loop-batch --jobs 4
run_leg batch_s3 --shards 3 --jobs 1
run_leg nobatch_s3 --no-loop-batch --shards 3 --jobs 1

# The batched serial leg must actually have batched: its metrics
# snapshot is the witness that the identity above was not vacuous.
echo "== engagement: loop_batch_iters > 0 in the batched leg"
if ! run engaged.log --only "$ONLY" --out "$WORK/engaged" --jobs 1 \
        --metrics "$WORK/metrics.json"; then
    dump_log engaged.log
    fail "metrics leg exited non-zero"
elif ! python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    counters = json.load(f)["counters"]
sys.exit(0 if counters.get("loop_batch_iters", 0) > 0 and
         counters.get("loop_batch_fallbacks", 0) > 0 else 1)
' "$WORK/metrics.json"; then
    fail "batched campaign reported no loop_batch_iters/fallbacks"
fi

if [ "$FAILURES" -ne 0 ]; then
    echo "$FAILURES loop-batch campaign check(s) failed" >&2
    exit 1
fi
echo "all loop-batch campaign checks passed"
