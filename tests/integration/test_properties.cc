/**
 * @file
 * Property-style sweeps over the measurement stack: invariants that
 * must hold for every primitive, data type, and configuration.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <limits>
#include <tuple>
#include <string>
#include <vector>

#include "core/cpusim_target.hh"
#include "core/gpusim_target.hh"

namespace syncperf::core
{
namespace
{

MeasurementConfig
ompCfg()
{
    auto c = MeasurementConfig::simDefaults();
    c.runs = 1;
    c.attempts = 1;
    c.n_iter = 20;
    c.n_unroll = 3;
    return c;
}

MeasurementConfig
gpuCfg()
{
    auto c = MeasurementConfig::simGpuDefaults();
    c.runs = 1;
    c.attempts = 1;
    c.n_iter = 10;
    c.n_unroll = 2;
    return c;
}

std::string
dtypeSuffix(DataType t)
{
    return std::string(dataTypeName(t));
}

// ------------------------------------------------------------------
// Property 1: every (OpenMP primitive x data type) measurement is
// reproducible bit-for-bit and non-negative on jitter-free systems.
// ------------------------------------------------------------------

using OmpCase = std::tuple<OmpPrimitive, DataType>;

class OmpDeterminism : public ::testing::TestWithParam<OmpCase>
{
};

TEST_P(OmpDeterminism, RepeatedMeasurementIdenticalAndNonNegative)
{
    const auto [prim, dtype] = GetParam();
    OmpExperiment exp;
    exp.primitive = prim;
    exp.dtype = dtype;

    CpuSimTarget a(cpusim::CpuConfig::system2(), ompCfg(), 1);
    CpuSimTarget b(cpusim::CpuConfig::system2(), ompCfg(), 777);
    const auto ma = a.measure(exp, 8);
    const auto mb = b.measure(exp, 8);
    EXPECT_DOUBLE_EQ(ma.per_op_seconds, mb.per_op_seconds);
    EXPECT_GE(ma.per_op_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllPrimitivesAllTypes, OmpDeterminism,
    ::testing::Combine(
        ::testing::Values(OmpPrimitive::Barrier,
                          OmpPrimitive::AtomicUpdate,
                          OmpPrimitive::AtomicCapture,
                          OmpPrimitive::AtomicRead,
                          OmpPrimitive::AtomicWrite,
                          OmpPrimitive::Critical, OmpPrimitive::Flush),
        ::testing::ValuesIn(all_data_types)),
    [](const ::testing::TestParamInfo<OmpCase> &info) {
        std::string name(
            ompPrimitiveName(std::get<0>(info.param)).substr(4));
        for (char &c : name) {
            if (c == ' ')
                c = '_';
        }
        return name + "_" + dtypeSuffix(std::get<1>(info.param));
    });

// ------------------------------------------------------------------
// Property 2: contended per-thread throughput never increases with
// the team size, for every contended OpenMP primitive.
// ------------------------------------------------------------------

class OmpMonotonicity : public ::testing::TestWithParam<OmpPrimitive>
{
};

TEST_P(OmpMonotonicity, ThroughputNonIncreasingInThreads)
{
    CpuSimTarget target(cpusim::CpuConfig::system2(), ompCfg());
    OmpExperiment exp;
    exp.primitive = GetParam();

    double previous = std::numeric_limits<double>::infinity();
    for (int threads : {2, 4, 8, 16, 32, 48, 64}) {
        const double thr =
            target.measure(exp, threads).opsPerSecondPerThread();
        EXPECT_LE(thr, previous * 1.02)
            << "throughput rose at " << threads << " threads";
        previous = thr;
    }
}

INSTANTIATE_TEST_SUITE_P(
    ContendedPrimitives, OmpMonotonicity,
    ::testing::Values(OmpPrimitive::Barrier, OmpPrimitive::AtomicUpdate,
                      OmpPrimitive::AtomicWrite, OmpPrimitive::Critical),
    [](const ::testing::TestParamInfo<OmpPrimitive> &info) {
        std::string name(ompPrimitiveName(info.param).substr(4));
        for (char &c : name) {
            if (c == ' ')
                c = '_';
        }
        return name;
    });

// ------------------------------------------------------------------
// Property 3: once the stride clears a cache line, throughput is
// stride-invariant (no residual false-sharing artifacts) for every
// data type.
// ------------------------------------------------------------------

class StrideInvariance : public ::testing::TestWithParam<DataType>
{
};

TEST_P(StrideInvariance, BeyondOneLinePaddingChangesNothing)
{
    CpuSimTarget target(cpusim::CpuConfig::system3(), ompCfg());
    const int elems_per_line =
        64 / static_cast<int>(dataTypeSize(GetParam()));

    auto throughputAt = [&](int stride) {
        OmpExperiment exp;
        exp.primitive = OmpPrimitive::AtomicUpdate;
        exp.location = Location::PrivateArray;
        exp.dtype = GetParam();
        exp.stride = stride;
        return target.measure(exp, 16).opsPerSecondPerThread();
    };

    const double at_line = throughputAt(elems_per_line);
    const double at_double = throughputAt(2 * elems_per_line);
    const double at_quad = throughputAt(4 * elems_per_line);
    EXPECT_DOUBLE_EQ(at_line, at_double);
    EXPECT_DOUBLE_EQ(at_line, at_quad);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, StrideInvariance,
                         ::testing::ValuesIn(all_data_types),
                         [](const auto &info) {
                             return dtypeSuffix(info.param);
                         });

// ------------------------------------------------------------------
// Property 4: every CUDA primitive measurement is deterministic
// (jitter only exists for the system fence) and positive for
// non-free primitives.
// ------------------------------------------------------------------

using CudaCase = std::tuple<CudaPrimitive, DataType>;

class CudaDeterminism : public ::testing::TestWithParam<CudaCase>
{
};

TEST_P(CudaDeterminism, RepeatedMeasurementIdentical)
{
    const auto [prim, dtype] = GetParam();
    if (!cudaPrimitiveIsTypeless(prim) &&
        !cudaPrimitiveSupports(prim, dtype)) {
        GTEST_SKIP() << "unsupported type for primitive";
    }
    if (prim == CudaPrimitive::ThreadFenceSystem)
        GTEST_SKIP() << "system fences have modeled PCIe jitter";

    CudaExperiment exp;
    exp.primitive = prim;
    exp.dtype = dtype;
    if (prim == CudaPrimitive::ThreadFence ||
        prim == CudaPrimitive::ThreadFenceBlock) {
        exp.location = Location::PrivateArray;
    }

    GpuSimTarget a(gpusim::GpuConfig::rtx4090(), gpuCfg(), 5);
    GpuSimTarget b(gpusim::GpuConfig::rtx4090(), gpuCfg(), 999);
    EXPECT_DOUBLE_EQ(a.measure(exp, {2, 64}).per_op_seconds,
                     b.measure(exp, {2, 64}).per_op_seconds);
}

INSTANTIATE_TEST_SUITE_P(
    AllPrimitives, CudaDeterminism,
    ::testing::Combine(
        ::testing::Values(CudaPrimitive::SyncThreads,
                          CudaPrimitive::SyncWarp,
                          CudaPrimitive::AtomicAdd,
                          CudaPrimitive::AtomicCas,
                          CudaPrimitive::AtomicExch,
                          CudaPrimitive::ThreadFence,
                          CudaPrimitive::ThreadFenceBlock,
                          CudaPrimitive::ShflSync,
                          CudaPrimitive::VoteSync),
        ::testing::Values(DataType::Int32, DataType::Float64)),
    [](const ::testing::TestParamInfo<CudaCase> &info) {
        std::string name(cudaPrimitiveName(std::get<0>(info.param)));
        std::string clean;
        for (char c : name) {
            if (std::isalnum(static_cast<unsigned char>(c)))
                clean.push_back(c);
        }
        return clean + "_" + dtypeSuffix(std::get<1>(info.param));
    });

// ------------------------------------------------------------------
// Property 5: block-count invariance of block-local primitives --
// __syncthreads and __syncwarp per-thread cost must not depend on
// how many OTHER blocks run (given one block per SM).
// ------------------------------------------------------------------

class BlockInvariance : public ::testing::TestWithParam<CudaPrimitive>
{
};

TEST_P(BlockInvariance, OneBlockPerSmIsBlockCountInvariant)
{
    GpuSimTarget target(gpusim::GpuConfig::rtx4090(), gpuCfg());
    CudaExperiment exp;
    exp.primitive = GetParam();
    const auto reference = target.measure(exp, {1, 128}).per_op_seconds;
    for (int blocks : {2, 16, 64, 128}) {
        EXPECT_DOUBLE_EQ(
            target.measure(exp, {blocks, 128}).per_op_seconds,
            reference)
            << blocks << " blocks";
    }
}

INSTANTIATE_TEST_SUITE_P(
    BlockLocalPrimitives, BlockInvariance,
    ::testing::Values(CudaPrimitive::SyncThreads, CudaPrimitive::SyncWarp,
                      CudaPrimitive::ShflSync, CudaPrimitive::VoteSync),
    [](const ::testing::TestParamInfo<CudaPrimitive> &info) {
        std::string clean;
        for (char c : std::string(cudaPrimitiveName(info.param))) {
            if (std::isalnum(static_cast<unsigned char>(c)))
                clean.push_back(c);
        }
        return clean;
    });

// ------------------------------------------------------------------
// Property 6: protocol linearity -- doubling n_iter must not change
// the reported per-op cost (the division normalizes it away).
// ------------------------------------------------------------------

TEST(ProtocolLinearity, PerOpCostIndependentOfIterationCount)
{
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::AtomicUpdate;

    auto short_cfg = ompCfg();
    auto long_cfg = ompCfg();
    long_cfg.n_iter = 2 * short_cfg.n_iter;

    CpuSimTarget a(cpusim::CpuConfig::system2(), short_cfg);
    CpuSimTarget b(cpusim::CpuConfig::system2(), long_cfg);
    const double pa = a.measure(exp, 8).per_op_seconds;
    const double pb = b.measure(exp, 8).per_op_seconds;
    EXPECT_NEAR(pa, pb, 0.02 * pa);
}

// ------------------------------------------------------------------
// Property 7: warmup sufficiency -- more warmup must not change a
// steady-state measurement.
// ------------------------------------------------------------------

TEST(ProtocolWarmup, ExtraWarmupChangesNothing)
{
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::AtomicUpdate;
    exp.location = Location::PrivateArray;
    exp.stride = 16;

    auto cfg1 = ompCfg();
    auto cfg2 = ompCfg();
    cfg2.n_warmup = 5 * cfg1.n_warmup;

    CpuSimTarget a(cpusim::CpuConfig::system2(), cfg1);
    CpuSimTarget b(cpusim::CpuConfig::system2(), cfg2);
    EXPECT_DOUBLE_EQ(a.measure(exp, 8).per_op_seconds,
                     b.measure(exp, 8).per_op_seconds);
}

} // namespace
} // namespace syncperf::core
