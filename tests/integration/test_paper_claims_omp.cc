/**
 * @file
 * Integration tests: the paper's OpenMP claims (Section V-A),
 * asserted end-to-end through the measurement protocol on the CPU
 * timing model.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/cpusim_target.hh"
#include "core/recommend.hh"
#include "core/sweep.hh"

namespace syncperf::core
{
namespace
{

MeasurementConfig
cfg()
{
    auto c = MeasurementConfig::simDefaults();
    c.runs = 1;
    c.attempts = 1;
    return c;
}

/** Sweep thread counts and return per-thread throughput. */
std::vector<double>
sweep(CpuSimTarget &target, const OmpExperiment &exp,
      const std::vector<int> &threads)
{
    std::vector<double> out;
    for (int t : threads)
        out.push_back(target.measure(exp, t).opsPerSecondPerThread());
    return out;
}

const std::vector<int> sweep_threads{2, 4, 8, 12, 16, 24, 32};

TEST(PaperOmp, Fig1BarrierDecaysThenPlateaus)
{
    CpuSimTarget target(cpusim::CpuConfig::system3(), cfg());
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::Barrier;
    exp.affinity = Affinity::Spread;
    const auto thr = sweep(target, exp, sweep_threads);

    EXPECT_TRUE(barrierPlateaus(sweep_threads, thr).supported)
        << renderFindings({{barrierPlateaus(sweep_threads, thr)}});
    // Monotone non-increasing.
    for (std::size_t i = 1; i < thr.size(); ++i)
        EXPECT_LE(thr[i], thr[i - 1] * 1.02);
    // Hyperthreads (beyond 16 cores) barely hurt.
    EXPECT_TRUE(hyperthreadingIsFine(sweep_threads, thr, 16).supported);
}

TEST(PaperOmp, Fig2AtomicUpdateCollapsesAndIntBeatsFloat)
{
    CpuSimTarget target(cpusim::CpuConfig::system3(), cfg());
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::AtomicUpdate;

    std::map<DataType, std::vector<double>> thr;
    for (DataType t : all_data_types) {
        exp.dtype = t;
        thr[t] = sweep(target, exp, sweep_threads);
    }

    EXPECT_TRUE(
        contendedAtomicsCollapse(sweep_threads, thr[DataType::Int32])
            .supported);
    // Integer types beat floating-point types at every thread count.
    for (std::size_t i = 0; i < sweep_threads.size(); ++i) {
        EXPECT_GT(thr[DataType::Int32][i], thr[DataType::Float32][i]);
        EXPECT_GT(thr[DataType::UInt64][i], thr[DataType::Float64][i]);
    }
    // Word size does not matter within a class (64-bit CPUs).
    for (std::size_t i = 0; i < sweep_threads.size(); ++i) {
        EXPECT_NEAR(thr[DataType::Int32][i], thr[DataType::UInt64][i],
                    0.05 * thr[DataType::Int32][i]);
    }
}

TEST(PaperOmp, Fig3StrideKneesFollowElementSize)
{
    CpuSimTarget target(cpusim::CpuConfig::system3(), cfg());
    const std::vector<int> strides{1, 4, 8, 16};

    auto throughputAt = [&](DataType t, int stride) {
        OmpExperiment exp;
        exp.primitive = OmpPrimitive::AtomicUpdate;
        exp.location = Location::PrivateArray;
        exp.dtype = t;
        exp.stride = stride;
        return target.measure(exp, 16).opsPerSecondPerThread();
    };

    // 8-byte types escape false sharing at stride 8 (64-byte lines).
    const double ull_s4 = throughputAt(DataType::UInt64, 4);
    const double ull_s8 = throughputAt(DataType::UInt64, 8);
    EXPECT_GT(ull_s8, 3.0 * ull_s4);

    // 4-byte types need stride 16.
    const double int_s8 = throughputAt(DataType::Int32, 8);
    const double int_s16 = throughputAt(DataType::Int32, 16);
    EXPECT_GT(int_s16, 3.0 * int_s8);

    // At stride 1 the 4-byte types are at most as fast as the 8-byte
    // types (twice as many words share a line).
    EXPECT_LE(throughputAt(DataType::Int32, 1),
              throughputAt(DataType::UInt64, 1));

    // Once padding removes false sharing, integer beats floating
    // point (pure RMW cost), regardless of width.
    EXPECT_GT(throughputAt(DataType::Int32, 16),
              throughputAt(DataType::Float32, 16));

    // The recommendation rule fires on the measured series.
    std::vector<double> int_series;
    for (int s : strides)
        int_series.push_back(throughputAt(DataType::Int32, s));
    EXPECT_TRUE(
        paddingRemovesFalseSharing(strides, int_series, 16).supported);
}

TEST(PaperOmp, Fig4AtomicWriteTypeIndependentAndSystem3Jitters)
{
    CpuSimTarget target(cpusim::CpuConfig::system2(), cfg());
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::AtomicWrite;

    exp.dtype = DataType::Int32;
    const auto thr_int = sweep(target, exp, sweep_threads);
    exp.dtype = DataType::Float64;
    const auto thr_dbl = sweep(target, exp, sweep_threads);
    for (std::size_t i = 0; i < thr_int.size(); ++i)
        EXPECT_NEAR(thr_int[i], thr_dbl[i], 0.02 * thr_int[i]);

    // System 3 (Threadripper) results jitter run to run; System 2's
    // do not.
    auto c = cfg();
    c.runs = 2;
    c.attempts = 2;
    CpuSimTarget sys3(cpusim::CpuConfig::system3(), c);
    exp.dtype = DataType::Int32;
    const auto m3 = sys3.measure(exp, 16);
    EXPECT_GT(m3.stddev_seconds, 0.0);

    CpuSimTarget sys2(cpusim::CpuConfig::system2(), c);
    const auto m2 = sys2.measure(exp, 16);
    EXPECT_DOUBLE_EQ(m2.stddev_seconds, 0.0);
}

TEST(PaperOmp, AtomicReadHasNoOverhead)
{
    CpuSimTarget target(cpusim::CpuConfig::system3(), cfg());
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::AtomicRead;
    for (int threads : {2, 8, 32}) {
        const auto m = target.measure(exp, threads);
        EXPECT_DOUBLE_EQ(m.per_op_seconds, 0.0) << threads;
    }
}

TEST(PaperOmp, Fig5CriticalSlowerThanAtomicEverywhere)
{
    CpuSimTarget ta(cpusim::CpuConfig::system3(), cfg());
    CpuSimTarget tc(cpusim::CpuConfig::system3(), cfg());
    OmpExperiment atomic;
    atomic.primitive = OmpPrimitive::AtomicUpdate;
    OmpExperiment critical;
    critical.primitive = OmpPrimitive::Critical;
    critical.affinity = Affinity::Spread;

    const auto thr_atomic = sweep(ta, atomic, sweep_threads);
    const auto thr_critical = sweep(tc, critical, sweep_threads);
    EXPECT_TRUE(
        criticalSlowerThanAtomic(thr_atomic, thr_critical).supported);
}

TEST(PaperOmp, Fig6FlushCheapWithoutFalseSharingExpensiveWith)
{
    CpuSimTarget target(cpusim::CpuConfig::system2(), cfg());
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::Flush;
    exp.location = Location::PrivateArray;
    exp.affinity = Affinity::Close;
    exp.dtype = DataType::UInt64;

    exp.stride = 1;
    const double contended =
        target.measure(exp, 32).opsPerSecondPerThread();
    exp.stride = 8;  // 8 * 8 bytes = one full line
    const double padded =
        target.measure(exp, 32).opsPerSecondPerThread();
    EXPECT_GT(padded, 5.0 * contended);

    // Without false sharing, flush throughput is flat across thread
    // counts ("little per-thread performance impact").
    const auto flat = sweep(target, exp, sweep_threads);
    for (double v : flat)
        EXPECT_NEAR(v, flat.front(), 0.2 * flat.front());
}

} // namespace
} // namespace syncperf::core
