/**
 * @file
 * Coverage for the non-default system presets: the paper reports
 * Systems 1 and 2 and the A100 only where they differ from System 3;
 * these tests pin down both the differences and the similarities.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/cpusim_target.hh"
#include "core/gpusim_target.hh"

namespace syncperf::core
{
namespace
{

MeasurementConfig
ompCfg()
{
    auto c = MeasurementConfig::simDefaults();
    c.runs = 1;
    c.attempts = 1;
    return c;
}

MeasurementConfig
gpuCfg()
{
    auto c = MeasurementConfig::simGpuDefaults();
    c.runs = 1;
    c.attempts = 1;
    return c;
}

TEST(OtherSystems, System1BarrierHasTheSameShape)
{
    CpuSimTarget target(cpusim::CpuConfig::system1(), ompCfg());
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::Barrier;
    exp.affinity = Affinity::Spread;
    // System 1 has 40 hardware threads (2 x 10c x 2t).
    const double t2 = target.measure(exp, 2).opsPerSecondPerThread();
    const double t8 = target.measure(exp, 8).opsPerSecondPerThread();
    const double t20 = target.measure(exp, 20).opsPerSecondPerThread();
    const double t40 = target.measure(exp, 40).opsPerSecondPerThread();
    EXPECT_GT(t2, 1.5 * t8);          // early decay
    EXPECT_LT(t20 - t40, 0.5 * t20);  // late plateau
}

TEST(OtherSystems, DualSocketTransfersCostMoreSpreadThanClose)
{
    // On a 2-socket machine a small "close" team stays on one
    // socket; "spread" ping-pongs the line across the QPI link.
    CpuSimTarget spread(cpusim::CpuConfig::system2(), ompCfg());
    CpuSimTarget close_t(cpusim::CpuConfig::system2(), ompCfg());
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::AtomicUpdate;
    exp.affinity = Affinity::Spread;
    const double thr_spread =
        spread.measure(exp, 4).opsPerSecondPerThread();
    exp.affinity = Affinity::Close;
    const double thr_close =
        close_t.measure(exp, 4).opsPerSecondPerThread();
    EXPECT_GT(thr_close, thr_spread);
}

TEST(OtherSystems, A100SyncWarpKneeMatchesAda)
{
    // The paper: "The behavior of System 2 [A100] is the same as
    // System 3 [RTX 4090]": full rate up to 256 threads per SM.
    const auto a100 = gpusim::GpuConfig::a100();
    GpuSimTarget target(a100, gpuCfg());
    CudaExperiment exp;
    exp.primitive = CudaPrimitive::SyncWarp;
    const double t256 =
        target.measure(exp, {a100.sm_count, 256}).opsPerSecondPerThread();
    const double t2 =
        target.measure(exp, {a100.sm_count, 2}).opsPerSecondPerThread();
    const double t512 =
        target.measure(exp, {a100.sm_count, 512}).opsPerSecondPerThread();
    EXPECT_DOUBLE_EQ(t256, t2);
    EXPECT_LT(t512, t256);
}

TEST(OtherSystems, A100FitsTwoMaxBlocksPerSm)
{
    // 2048 threads/SM: two 1024-thread blocks are co-resident, so a
    // 2-blocks-per-SM launch needs no second wave.
    auto cfg = gpusim::GpuConfig::a100();
    cfg.sm_count = 1;
    gpusim::GpuKernel k;
    k.body = {gpusim::GpuOp::alu()};
    k.body_iters = 100;

    gpusim::GpuMachine two_blocks(cfg);
    const auto both = two_blocks.run(k, {2, 1024}, 1);
    gpusim::GpuMachine one_block(cfg);
    const auto one = one_block.run(k, {1, 1024}, 1);
    // Resident together: far less than 2x serial time.
    EXPECT_LT(both.total_cycles,
              static_cast<sim::Tick>(1.5 * one.total_cycles));
}

TEST(OtherSystems, Rtx2070LacksReduceButRunsEverythingElse)
{
    const auto turing = gpusim::GpuConfig::rtx2070Super();
    GpuSimTarget target(turing, gpuCfg());
    for (auto prim :
         {CudaPrimitive::SyncThreads, CudaPrimitive::AtomicAdd,
          CudaPrimitive::ShflSync, CudaPrimitive::ThreadFence}) {
        CudaExperiment exp;
        exp.primitive = prim;
        if (prim == CudaPrimitive::ThreadFence)
            exp.location = Location::PrivateArray;
        EXPECT_GE(target.measure(exp, {2, 64}).per_op_seconds, 0.0)
            << cudaPrimitiveName(prim);
    }
}

TEST(OtherSystems, ClockConversionDiffersPerDevice)
{
    // The same primitive in cycles converts to different wall times
    // on the 1.41 GHz A100 vs the 2.625 GHz RTX 4090.
    GpuSimTarget a100(gpusim::GpuConfig::a100(), gpuCfg());
    GpuSimTarget ada(gpusim::GpuConfig::rtx4090(), gpuCfg());
    CudaExperiment exp;
    exp.primitive = CudaPrimitive::SyncWarp;
    const auto ma = a100.measure(exp, {1, 32});
    const auto md = ada.measure(exp, {1, 32});
    // Same cycle count (identical latency params) but slower clock.
    EXPECT_GT(ma.per_op_seconds, md.per_op_seconds);
}

} // namespace
} // namespace syncperf::core
