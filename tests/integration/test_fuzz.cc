/**
 * @file
 * Randomized robustness tests: seeded random SPMD programs and
 * kernels must always complete (no deadlock, no assertion failures),
 * deterministically, with plausible timing.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "cpusim/machine.hh"
#include "gpusim/machine.hh"

namespace syncperf
{
namespace
{

// ---------------------------------------------------------------- CPU

/** Build one random SPMD body; all threads share the structure so
 * barriers and locks stay balanced. */
std::vector<cpusim::CpuOp>
randomCpuBody(Pcg32 &rng)
{
    using cpusim::CpuOp;
    using cpusim::CpuOpKind;
    const int len = 1 + static_cast<int>(rng.below(6));
    std::vector<CpuOp> body;
    for (int i = 0; i < len; ++i) {
        CpuOp op;
        switch (rng.below(8)) {
          case 0: op.kind = CpuOpKind::Load; break;
          case 1: op.kind = CpuOpKind::Store; break;
          case 2: op.kind = CpuOpKind::AtomicRmw; break;
          case 3: op.kind = CpuOpKind::AtomicLoad; break;
          case 4: op.kind = CpuOpKind::AtomicStore; break;
          case 5: op.kind = CpuOpKind::Fence; break;
          case 6: op.kind = CpuOpKind::Alu; break;
          case 7: op.kind = CpuOpKind::Barrier; break;
        }
        op.addr = 0x1000 + rng.below(4) * 0x40;
        op.dtype = all_data_types[rng.below(4)];
        body.push_back(op);
    }
    // Optionally wrap everything in a critical section -- but never
    // around a barrier: a thread waiting at a barrier while holding
    // the lock deadlocks the team (the machine correctly panics on
    // that, which is its own test below).
    bool has_barrier = false;
    for (const auto &op : body)
        has_barrier |= (op.kind == CpuOpKind::Barrier);
    if (!has_barrier && rng.below(3) == 0) {
        CpuOp acq;
        acq.kind = CpuOpKind::LockAcquire;
        acq.addr = 0x3000;
        CpuOp rel;
        rel.kind = CpuOpKind::LockRelease;
        rel.addr = 0x3000;
        body.insert(body.begin(), acq);
        body.push_back(rel);
    }
    return body;
}

class CpuFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(CpuFuzz, RandomProgramsCompleteDeterministically)
{
    Pcg32 rng(static_cast<std::uint64_t>(GetParam()), 17);
    const int threads = 1 + static_cast<int>(rng.below(16));
    const auto shared_body = randomCpuBody(rng);

    std::vector<cpusim::CpuProgram> programs;
    for (int t = 0; t < threads; ++t) {
        cpusim::CpuProgram p;
        p.body = shared_body;
        // Give array-ish ops per-thread addresses sometimes.
        for (auto &op : p.body) {
            if (rng.below(2) == 0 &&
                op.kind != cpusim::CpuOpKind::Barrier &&
                op.kind != cpusim::CpuOpKind::LockAcquire &&
                op.kind != cpusim::CpuOpKind::LockRelease) {
                op.addr = 0x100000 +
                          static_cast<std::uint64_t>(t) * 8 *
                              dataTypeSize(op.dtype);
            }
        }
        p.iterations = 1 + static_cast<long>(rng.below(20));
        // Iterations must match when the body holds a barrier.
        programs.push_back(std::move(p));
    }
    bool has_barrier = false;
    for (const auto &op : shared_body)
        has_barrier |= (op.kind == cpusim::CpuOpKind::Barrier);
    if (has_barrier) {
        for (auto &p : programs)
            p.iterations = programs.front().iterations;
    }

    cpusim::CpuMachine a(cpusim::CpuConfig::system3(), Affinity::System,
                         7);
    cpusim::CpuMachine b(cpusim::CpuConfig::system3(), Affinity::System,
                         7);
    const auto ra = a.run(programs, 2);
    const auto rb = b.run(programs, 2);
    ASSERT_EQ(ra.thread_cycles.size(),
              static_cast<std::size_t>(threads));
    EXPECT_EQ(ra.thread_cycles, rb.thread_cycles);
    EXPECT_EQ(ra.total_cycles, rb.total_cycles);
    for (auto c : ra.thread_cycles)
        EXPECT_GT(c, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuFuzz, ::testing::Range(1, 26));

TEST(CpuDeadlock, BarrierInsideCriticalSectionIsDetected)
{
    // Thread 0 reaches the barrier holding the lock; thread 1 cannot
    // pass LockAcquire: the machine must diagnose the deadlock
    // instead of hanging.
    using cpusim::CpuOp;
    using cpusim::CpuOpKind;
    CpuOp acq;
    acq.kind = CpuOpKind::LockAcquire;
    acq.addr = 0x3000;
    CpuOp barrier;
    barrier.kind = CpuOpKind::Barrier;
    CpuOp rel;
    rel.kind = CpuOpKind::LockRelease;
    rel.addr = 0x3000;

    cpusim::CpuProgram p;
    p.body = {acq, barrier, rel};
    p.iterations = 2;
    cpusim::CpuMachine machine(cpusim::CpuConfig::system3(),
                               Affinity::System);
    ScopedLogCapture capture;
    EXPECT_THROW(machine.run({p, p}, 1), LogDeathException);
}

// ---------------------------------------------------------------- GPU

gpusim::GpuKernel
randomGpuKernel(Pcg32 &rng)
{
    using gpusim::AddressMode;
    using gpusim::AtomicOp;
    using gpusim::GpuOp;
    gpusim::GpuKernel k;
    const int len = 1 + static_cast<int>(rng.below(5));
    for (int i = 0; i < len; ++i) {
        switch (rng.below(10)) {
          case 0: k.body.push_back(GpuOp::alu()); break;
          case 1: k.body.push_back(GpuOp::syncWarp()); break;
          case 2: k.body.push_back(GpuOp::syncThreads()); break;
          case 3:
            k.body.push_back(GpuOp::shfl(all_data_types[rng.below(4)]));
            break;
          case 4: k.body.push_back(GpuOp::vote()); break;
          case 5:
            k.body.push_back(GpuOp::globalAtomic(
                rng.below(2) ? AtomicOp::Add : AtomicOp::Max,
                rng.below(2) ? AddressMode::SingleShared
                             : AddressMode::PerThread,
                0x1000, all_data_types[rng.below(4)],
                1 + static_cast<int>(rng.below(32))));
            break;
          case 6:
            k.body.push_back(GpuOp::globalAtomic(
                rng.below(2) ? AtomicOp::Cas : AtomicOp::Exch,
                AddressMode::SingleShared, 0x2000,
                rng.below(2) ? DataType::Int32 : DataType::UInt64));
            break;
          case 7:
            k.body.push_back(
                GpuOp::sharedAtomic(AtomicOp::Add, 0x5000));
            break;
          case 8:
            k.body.push_back(GpuOp::globalLoad(0x100000));
            break;
          case 9:
            k.body.push_back(GpuOp::fence(
                rng.below(2) ? gpusim::FenceScope::Device
                             : gpusim::FenceScope::Block));
            break;
        }
    }
    k.body_iters = 1 + static_cast<long>(rng.below(15));
    return k;
}

class GpuFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(GpuFuzz, RandomKernelsCompleteDeterministically)
{
    Pcg32 rng(static_cast<std::uint64_t>(GetParam()), 23);
    const auto kernel = randomGpuKernel(rng);
    const gpusim::LaunchConfig launch{
        1 + static_cast<int>(rng.below(8)),
        static_cast<int>(1 + rng.below(256))};

    gpusim::GpuMachine a(gpusim::GpuConfig::rtx4090(), 9);
    gpusim::GpuMachine b(gpusim::GpuConfig::rtx4090(), 9);
    const auto ra = a.run(kernel, launch, 1);
    const auto rb = b.run(kernel, launch, 1);
    EXPECT_EQ(ra.thread_cycles, rb.thread_cycles);
    EXPECT_EQ(ra.total_cycles, rb.total_cycles);
    EXPECT_EQ(ra.thread_cycles.size(),
              static_cast<std::size_t>(launch.blocks) *
                  launch.threads_per_block);
    EXPECT_GT(ra.total_cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpuFuzz, ::testing::Range(1, 26));

// --------------------------------------------- GPU monotonicity

class GpuContentionMonotonicity
    : public ::testing::TestWithParam<gpusim::AtomicOp>
{
};

TEST_P(GpuContentionMonotonicity, PerThreadThroughputNonIncreasing)
{
    using gpusim::GpuOp;
    gpusim::GpuKernel k;
    k.body = {GpuOp::globalAtomic(GetParam(),
                                  gpusim::AddressMode::SingleShared,
                                  0x1000)};
    k.body_iters = 40;

    double previous_rate = -1.0;
    for (int threads : {2, 8, 32, 128, 512, 1024}) {
        gpusim::GpuMachine machine(gpusim::GpuConfig::rtx4090());
        const auto r = machine.run(k, {1, threads}, 2);
        sim::Tick max_cycles = 0;
        for (auto c : r.thread_cycles)
            max_cycles = std::max(max_cycles, c);
        const double rate = 1.0 / static_cast<double>(max_cycles);
        if (previous_rate >= 0.0)
            EXPECT_LE(rate, previous_rate * 1.03) << threads;
        previous_rate = rate;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AtomicOps, GpuContentionMonotonicity,
    ::testing::Values(gpusim::AtomicOp::Add, gpusim::AtomicOp::Max,
                      gpusim::AtomicOp::Cas, gpusim::AtomicOp::Exch),
    [](const ::testing::TestParamInfo<gpusim::AtomicOp> &info) {
        switch (info.param) {
          case gpusim::AtomicOp::Add: return "add";
          case gpusim::AtomicOp::Max: return "max";
          case gpusim::AtomicOp::Cas: return "cas";
          case gpusim::AtomicOp::Exch: return "exch";
        }
        return "unknown";
    });

} // namespace
} // namespace syncperf
