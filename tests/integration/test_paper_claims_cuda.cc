/**
 * @file
 * Integration tests: the paper's CUDA claims (Section V-B), asserted
 * end-to-end through the measurement protocol on the GPU timing
 * model.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/gpusim_target.hh"
#include "core/recommend.hh"
#include "core/sweep.hh"

namespace syncperf::core
{
namespace
{

MeasurementConfig
cfg()
{
    auto c = MeasurementConfig::simGpuDefaults();
    c.runs = 1;
    c.attempts = 1;
    return c;
}

std::vector<double>
sweepThreads(GpuSimTarget &target, const CudaExperiment &exp, int blocks,
             const std::vector<int> &threads)
{
    std::vector<double> out;
    for (int t : threads) {
        out.push_back(
            target.measure(exp, {blocks, t}).opsPerSecondPerThread());
    }
    return out;
}

const std::vector<int> thread_counts{2, 4, 8, 16, 32, 64, 128, 256, 512,
                                     1024};

TEST(PaperCuda, Fig7SyncThreadsConstantToWarpThenFallsAnyBlockCount)
{
    GpuSimTarget target(gpusim::GpuConfig::rtx4090(), cfg());
    CudaExperiment exp;
    exp.primitive = CudaPrimitive::SyncThreads;

    const auto thr1 = sweepThreads(target, exp, 1, thread_counts);
    // Constant through one warp (indices 0..4 are 2..32 threads).
    for (int i = 1; i <= 4; ++i)
        EXPECT_DOUBLE_EQ(thr1[i], thr1[0]);
    // Falls beyond the warp size, monotonically.
    for (int i = 5; i < 10; ++i)
        EXPECT_LT(thr1[i], thr1[i - 1]);

    // Identical for every block count.
    for (int blocks : {2, 64, 128}) {
        const auto thr = sweepThreads(target, exp, blocks, thread_counts);
        for (std::size_t i = 0; i < thr.size(); ++i)
            EXPECT_DOUBLE_EQ(thr[i], thr1[i]) << blocks;
    }
}

TEST(PaperCuda, Fig8SyncWarpKneeDependsOnThreadsPerSm)
{
    // RTX 4090: full rate to 256 threads/SM; RTX 2070S: to 512.
    CudaExperiment exp;
    exp.primitive = CudaPrimitive::SyncWarp;

    GpuSimTarget ada(gpusim::GpuConfig::rtx4090(), cfg());
    const auto full_ada =
        sweepThreads(ada, exp, 128, thread_counts);  // 1 block/SM
    EXPECT_DOUBLE_EQ(full_ada[7], full_ada[0]);      // 256 threads
    EXPECT_LT(full_ada[8], full_ada[7]);             // 512 threads

    GpuSimTarget turing(gpusim::GpuConfig::rtx2070Super(), cfg());
    const auto full_turing =
        sweepThreads(turing, exp, 40, thread_counts);
    EXPECT_DOUBLE_EQ(full_turing[8], full_turing[0]);  // 512 threads
    EXPECT_LT(full_turing[9], full_turing[8]);         // 1024 threads

    // Double-block configuration drops one step earlier (two blocks
    // resident per SM double the warps).
    const auto dbl_ada = sweepThreads(ada, exp, 256, thread_counts);
    EXPECT_DOUBLE_EQ(dbl_ada[6], dbl_ada[0]);  // 128 threads/block
    EXPECT_LT(dbl_ada[7], dbl_ada[6]);         // 256 threads/block
}

TEST(PaperCuda, Fig9AtomicAddAggregationAndTypeGap)
{
    GpuSimTarget target(gpusim::GpuConfig::rtx4090(), cfg());
    CudaExperiment exp;
    exp.primitive = CudaPrimitive::AtomicAdd;
    exp.dtype = DataType::Int32;

    // 2-block configuration: constant up to 64 threads (2 warps),
    // then drops.
    const auto thr2 = sweepThreads(target, exp, 2, thread_counts);
    for (int i = 1; i <= 5; ++i)
        EXPECT_DOUBLE_EQ(thr2[i], thr2[0]);
    EXPECT_LT(thr2[6], 0.75 * thr2[5]);  // 128 threads

    // 1-block behaves like 2-block.
    const auto thr1 = sweepThreads(target, exp, 1, thread_counts);
    for (int i = 0; i <= 5; ++i)
        EXPECT_DOUBLE_EQ(thr1[i], thr2[i]);

    // Half configuration (64 blocks): lower absolute throughput.
    const auto thr64 = sweepThreads(target, exp, 64, thread_counts);
    for (std::size_t i = 0; i < thr64.size(); ++i)
        EXPECT_LT(thr64[i], thr2[i]);

    // int beats every other type at every point (Fig 9's gap).
    for (DataType t :
         {DataType::UInt64, DataType::Float32, DataType::Float64}) {
        exp.dtype = t;
        const auto other = sweepThreads(target, exp, 2, thread_counts);
        EXPECT_TRUE(intAtomicsFastest(thr2, other,
                                      std::string(dataTypeName(t)))
                        .supported);
    }
}

TEST(PaperCuda, Fig10ArrayAtomicsStrideIrrelevantAtOneBlock)
{
    GpuSimTarget target(gpusim::GpuConfig::rtx4090(), cfg());
    CudaExperiment exp;
    exp.primitive = CudaPrimitive::AtomicAdd;
    exp.location = Location::PrivateArray;

    exp.stride = 1;
    const auto s1 = sweepThreads(target, exp, 1, thread_counts);
    exp.stride = 32;
    const auto s32 = sweepThreads(target, exp, 1, thread_counts);
    // "For the block count of 1, the throughput trend is the same
    // regardless of stride."
    for (std::size_t i = 0; i < s1.size(); ++i)
        EXPECT_NEAR(s1[i], s32[i], 0.15 * s1[i]);

    // At 128 blocks the throughput is lower than at 1 block (L2
    // atomic units shared by every SM).
    exp.stride = 1;
    const auto b128 = sweepThreads(target, exp, 128, thread_counts);
    EXPECT_LT(b128.back(), s1.back());
}

TEST(PaperCuda, Fig11CasConstantToFourThreadsAtOneBlock)
{
    GpuSimTarget target(gpusim::GpuConfig::rtx4090(), cfg());
    CudaExperiment exp;
    exp.primitive = CudaPrimitive::AtomicCas;

    const auto thr = sweepThreads(target, exp, 1, thread_counts);
    EXPECT_NEAR(thr[1], thr[0], 0.05 * thr[0]);  // 4 threads
    EXPECT_LT(thr[4], 0.6 * thr[1]);             // 32 threads
    // Drops earlier than atomicAdd but follows the same decay.
    for (std::size_t i = 4; i < thr.size(); ++i)
        EXPECT_LT(thr[i], thr[i - 1]);
}

TEST(PaperCuda, Fig13ExchBehavesLikeCas)
{
    GpuSimTarget tc(gpusim::GpuConfig::rtx4090(), cfg());
    GpuSimTarget te(gpusim::GpuConfig::rtx4090(), cfg());
    CudaExperiment cas;
    cas.primitive = CudaPrimitive::AtomicCas;
    CudaExperiment exch;
    exch.primitive = CudaPrimitive::AtomicExch;
    const auto thr_cas = sweepThreads(tc, cas, 1, thread_counts);
    const auto thr_exch = sweepThreads(te, exch, 1, thread_counts);
    for (std::size_t i = 0; i < thr_cas.size(); ++i)
        EXPECT_NEAR(thr_exch[i], thr_cas[i], 0.1 * thr_cas[i]);
}

TEST(PaperCuda, Fig14ThreadFenceIsFlatAcrossConfigurations)
{
    GpuSimTarget target(gpusim::GpuConfig::rtx4090(), cfg());
    CudaExperiment exp;
    exp.primitive = CudaPrimitive::ThreadFence;
    exp.location = Location::PrivateArray;

    std::vector<double> all;
    for (int blocks : {1, 128}) {
        for (int stride : {1, 32}) {
            exp.stride = stride;
            for (int threads : {2, 32, 256, 1024}) {
                all.push_back(target.measure(exp, {blocks, threads})
                                  .opsPerSecondPerThread());
            }
        }
    }
    // "Fairly constant regardless of thread count, block count, or
    // stride": within a small factor across every configuration.
    double lo = all[0], hi = all[0];
    for (double v : all) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    EXPECT_LT(hi, 5.0 * lo);
}

TEST(PaperCuda, Fig14bBlockFenceNearFreeSystemFenceErratic)
{
    GpuSimTarget target(gpusim::GpuConfig::rtx4090(), cfg());
    CudaExperiment block;
    block.primitive = CudaPrimitive::ThreadFenceBlock;
    block.location = Location::PrivateArray;
    CudaExperiment device;
    device.primitive = CudaPrimitive::ThreadFence;
    device.location = Location::PrivateArray;
    CudaExperiment system;
    system.primitive = CudaPrimitive::ThreadFenceSystem;
    system.location = Location::PrivateArray;

    const auto mb = target.measure(block, {1, 64});
    const auto md = target.measure(device, {1, 64});
    const auto ms = target.measure(system, {1, 64});
    EXPECT_LT(mb.per_op_seconds, 0.1 * md.per_op_seconds);
    EXPECT_GT(ms.per_op_seconds, md.per_op_seconds);

    // System fences involve the PCIe bus: more erratic run to run.
    auto noisy = cfg();
    noisy.runs = 3;
    noisy.attempts = 2;
    GpuSimTarget nt(gpusim::GpuConfig::rtx4090(), noisy);
    const auto ms2 = nt.measure(system, {1, 64});
    EXPECT_GT(ms2.stddev_seconds, 0.0);
}

TEST(PaperCuda, Fig15ShflMatchesSyncWarpAndWideTypesKneeEarlier)
{
    GpuSimTarget target(gpusim::GpuConfig::rtx4090(), cfg());
    CudaExperiment exp;
    exp.primitive = CudaPrimitive::ShflSync;

    exp.dtype = DataType::Int32;
    const auto thr32 = sweepThreads(target, exp, 128, thread_counts);
    exp.dtype = DataType::Float64;
    const auto thr64 = sweepThreads(target, exp, 128, thread_counts);

    EXPECT_TRUE(
        wideShflKneesEarlier(thread_counts, thr32, thr64).supported);
    // up/down/xor variants behave identically: implied by a single
    // implementation; here we check 32-bit stays flat to 512.
    EXPECT_DOUBLE_EQ(thr32[8], thr32[0]);
}

TEST(PaperCuda, Fig15bVotesBehaveLikeSyncWarpButSlower)
{
    GpuSimTarget tv(gpusim::GpuConfig::rtx4090(), cfg());
    GpuSimTarget ts(gpusim::GpuConfig::rtx4090(), cfg());
    CudaExperiment vote;
    vote.primitive = CudaPrimitive::VoteSync;
    CudaExperiment sync;
    sync.primitive = CudaPrimitive::SyncWarp;
    const auto thr_vote = sweepThreads(tv, vote, 128, thread_counts);
    const auto thr_sync = sweepThreads(ts, sync, 128, thread_counts);
    // Once the issue bandwidth saturates (>= 512 threads/SM) both
    // run at the issue rate, so compare the unsaturated region.
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_LT(thr_vote[i], thr_sync[i]) << thread_counts[i];
    // The vote's knee position mirrors __syncwarp's flat behavior:
    // throughput never rises with load.
    for (std::size_t i = 1; i < thr_vote.size(); ++i)
        EXPECT_LE(thr_vote[i], thr_vote[i - 1] * 1.001);
}

TEST(PaperCuda, SyncwarpVersusSyncthreadsRecommendation)
{
    GpuSimTarget ta(gpusim::GpuConfig::rtx4090(), cfg());
    GpuSimTarget tb(gpusim::GpuConfig::rtx4090(), cfg());
    CudaExperiment st;
    st.primitive = CudaPrimitive::SyncThreads;
    CudaExperiment sw;
    sw.primitive = CudaPrimitive::SyncWarp;
    const auto thr_st = sweepThreads(ta, st, 1, thread_counts);
    const auto thr_sw = sweepThreads(tb, sw, 1, thread_counts);
    EXPECT_TRUE(
        syncwarpFlatterThanSyncthreads(thr_st, thr_sw).supported);
}

} // namespace
} // namespace syncperf::core
