/**
 * @file
 * Multithreaded correctness tests for the spin-lock algorithms.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "threadlib/locks.hh"
#include "threadlib/parallel_region.hh"

namespace syncperf::threadlib
{
namespace
{

template <typename T>
std::unique_ptr<Lock>
make()
{
    return std::make_unique<T>();
}

using Factory = std::unique_ptr<Lock> (*)();

struct LockCase
{
    const char *name;
    Factory factory;
};

class LockTest : public ::testing::TestWithParam<LockCase>
{
};

TEST_P(LockTest, UncontendedAcquireRelease)
{
    auto lock = GetParam().factory();
    lock->acquire();
    lock->release();
    lock->acquire();
    lock->release();
    SUCCEED();
}

TEST_P(LockTest, TryAcquireSucceedsWhenFree)
{
    auto lock = GetParam().factory();
    EXPECT_TRUE(lock->tryAcquire());
    lock->release();
    EXPECT_TRUE(lock->tryAcquire());
    lock->release();
}

TEST_P(LockTest, TryAcquireFailsWhenHeld)
{
    auto lock = GetParam().factory();
    lock->acquire();
    // MCS tryAcquire from the same thread would reuse the node, so
    // probe from another thread.
    std::atomic<int> result{-1};
    parallelRegion(2, [&](int tid) {
        if (tid == 1)
            result.store(lock->tryAcquire() ? 1 : 0);
    });
    EXPECT_EQ(result.load(), 0);
    lock->release();
}

TEST_P(LockTest, MutualExclusionUnderContention)
{
    auto lock = GetParam().factory();
    constexpr int threads = 4;
    constexpr int iters = 2000;
    long counter = 0;  // plain long: races would corrupt it
    std::atomic<int> inside{0};
    std::atomic<bool> violated{false};

    parallelRegion(threads, [&](int) {
        for (int i = 0; i < iters; ++i) {
            lock->acquire();
            if (inside.fetch_add(1) != 0)
                violated.store(true);
            ++counter;
            inside.fetch_sub(1);
            lock->release();
        }
    });
    EXPECT_FALSE(violated.load());
    EXPECT_EQ(counter, static_cast<long>(threads) * iters);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, LockTest,
    ::testing::Values(LockCase{"tas", &make<TasLock>},
                      LockCase{"ttas", &make<TtasLock>},
                      LockCase{"ticket", &make<TicketLock>},
                      LockCase{"mcs", &make<McsLock>}),
    [](const ::testing::TestParamInfo<LockCase> &info) {
        return info.param.name;
    });

TEST(TicketLock, IsFifoFair)
{
    // With a ticket lock, a thread that takes a ticket first is
    // served first. Checked indirectly: two threads strictly
    // alternate when each re-queues immediately.
    TicketLock lock;
    std::vector<int> order;
    lock.acquire();
    parallelRegion(3, [&](int tid) {
        if (tid == 0) {
            // Give the other two a moment to queue up behind us.
            for (volatile int i = 0; i < 100000; ++i) {
            }
            lock.release();
        } else {
            lock.acquire();
            order.push_back(tid);
            lock.release();
        }
    });
    EXPECT_EQ(order.size(), 2u);
}

TEST(McsLock, HandoffChain)
{
    McsLock lock;
    long counter = 0;
    parallelRegion(8, [&](int) {
        for (int i = 0; i < 500; ++i) {
            lock.acquire();
            ++counter;
            lock.release();
        }
    });
    EXPECT_EQ(counter, 4000);
}

} // namespace
} // namespace syncperf::threadlib
