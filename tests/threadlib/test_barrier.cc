/**
 * @file
 * Multithreaded correctness tests for the barrier algorithms.
 *
 * These run on real host threads. The invariant checked for every
 * algorithm: between consecutive barrier episodes, no thread may
 * observe another thread more than one phase ahead or behind.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "threadlib/barrier.hh"
#include "threadlib/parallel_region.hh"

namespace syncperf::threadlib
{
namespace
{

/** Run @p rounds barrier episodes and verify phase lockstep. */
void
checkBarrierLockstep(Barrier &barrier, int threads, int rounds)
{
    std::vector<std::atomic<int>> phase(threads);
    for (auto &p : phase)
        p.store(0);
    std::atomic<bool> failed{false};

    parallelRegion(threads, [&](int tid) {
        for (int r = 0; r < rounds; ++r) {
            phase[tid].store(r, std::memory_order_release);
            barrier.arriveAndWait(tid);
            // After the barrier, everyone must have published >= r.
            for (int t = 0; t < threads; ++t) {
                if (phase[t].load(std::memory_order_acquire) < r)
                    failed.store(true);
            }
            barrier.arriveAndWait(tid);
        }
    });
    EXPECT_FALSE(failed.load());
}

template <typename T>
std::unique_ptr<Barrier>
make(int n)
{
    return std::make_unique<T>(n);
}

using Factory = std::unique_ptr<Barrier> (*)(int);

struct BarrierCase
{
    const char *name;
    Factory factory;
};

class BarrierTest : public ::testing::TestWithParam<BarrierCase>
{
};

TEST_P(BarrierTest, SingleThreadNeverBlocks)
{
    auto barrier = GetParam().factory(1);
    for (int i = 0; i < 100; ++i)
        barrier->arriveAndWait(0);
    SUCCEED();
}

TEST_P(BarrierTest, TwoThreadsLockstep)
{
    auto barrier = GetParam().factory(2);
    checkBarrierLockstep(*barrier, 2, 200);
}

TEST_P(BarrierTest, ManyThreadsLockstep)
{
    auto barrier = GetParam().factory(7);
    checkBarrierLockstep(*barrier, 7, 50);
}

TEST_P(BarrierTest, NonPowerOfTwoTeam)
{
    auto barrier = GetParam().factory(5);
    checkBarrierLockstep(*barrier, 5, 50);
}

TEST_P(BarrierTest, ReportsTeamSize)
{
    auto barrier = GetParam().factory(3);
    EXPECT_EQ(barrier->teamSize(), 3);
}

TEST_P(BarrierTest, SumAcrossPhasesIsExact)
{
    // Each thread adds its contribution before the barrier; after
    // the barrier every thread must see the full round total.
    constexpr int threads = 4;
    constexpr int rounds = 100;
    auto barrier = GetParam().factory(threads);
    std::atomic<long> total{0};
    std::atomic<bool> failed{false};

    parallelRegion(threads, [&](int tid) {
        (void)tid;
        for (int r = 1; r <= rounds; ++r) {
            total.fetch_add(1);
            barrier->arriveAndWait(tid);
            if (total.load() != static_cast<long>(r) * threads)
                failed.store(true);
            barrier->arriveAndWait(tid);
        }
    });
    EXPECT_FALSE(failed.load());
    EXPECT_EQ(total.load(), static_cast<long>(rounds) * threads);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, BarrierTest,
    ::testing::Values(BarrierCase{"central", &make<CentralBarrier>},
                      BarrierCase{"tree", &make<TreeBarrier>},
                      BarrierCase{"dissemination",
                                  &make<DisseminationBarrier>}),
    [](const ::testing::TestParamInfo<BarrierCase> &info) {
        return info.param.name;
    });

TEST(TreeBarrier, LargeTeamBuildsMultipleLevels)
{
    TreeBarrier barrier(33);  // forces 3 levels at fan-in 4
    checkBarrierLockstep(barrier, 33, 10);
}

TEST(DisseminationBarrier, RoundCountIsLogarithmic)
{
    // Indirect check: a 9-thread barrier needs 4 rounds and still
    // synchronizes correctly.
    DisseminationBarrier barrier(9);
    checkBarrierLockstep(barrier, 9, 20);
}

} // namespace
} // namespace syncperf::threadlib
