/**
 * @file
 * Tests for the fork/join substrate.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>

#include "common/logging.hh"
#include "threadlib/parallel_region.hh"

namespace syncperf::threadlib
{
namespace
{

TEST(ParallelRegion, RunsEveryRankExactlyOnce)
{
    std::atomic<unsigned> mask{0};
    parallelRegion(5, [&](int tid) {
        mask.fetch_or(1u << tid);
    });
    EXPECT_EQ(mask.load(), 0b11111u);
}

TEST(ParallelRegion, SingleThreadRunsInline)
{
    const auto caller = std::this_thread::get_id();
    std::thread::id seen;
    parallelRegion(1, [&](int tid) {
        EXPECT_EQ(tid, 0);
        seen = std::this_thread::get_id();
    });
    EXPECT_EQ(seen, caller);
}

TEST(ParallelRegion, RankZeroIsCaller)
{
    const auto caller = std::this_thread::get_id();
    std::thread::id rank0;
    parallelRegion(3, [&](int tid) {
        if (tid == 0)
            rank0 = std::this_thread::get_id();
    });
    EXPECT_EQ(rank0, caller);
}

TEST(ParallelRegion, WorkersAreDistinctThreads)
{
    std::set<std::thread::id> ids;
    std::mutex m;
    parallelRegion(4, [&](int) {
        std::scoped_lock lock(m);
        ids.insert(std::this_thread::get_id());
    });
    EXPECT_EQ(ids.size(), 4u);
}

TEST(ParallelRegion, JoinsBeforeReturning)
{
    std::atomic<int> done{0};
    parallelRegion(6, [&](int) { done.fetch_add(1); });
    EXPECT_EQ(done.load(), 6);
}

TEST(ParallelRegion, AffinityPoliciesDoNotBreakExecution)
{
    for (Affinity a :
         {Affinity::System, Affinity::Spread, Affinity::Close}) {
        std::atomic<int> count{0};
        parallelRegion(3, [&](int) { count.fetch_add(1); }, a);
        EXPECT_EQ(count.load(), 3);
    }
}

TEST(ParallelRegion, ZeroThreadsPanics)
{
    ScopedLogCapture capture;
    EXPECT_THROW(parallelRegion(0, [](int) {}), LogDeathException);
}

TEST(HardwareThreads, ReportsAtLeastOne)
{
    EXPECT_GE(hardwareThreads(), 1);
}

TEST(BindThisThread, SystemPolicyIsNoop)
{
    bindThisThread(0, 4, Affinity::System);
    SUCCEED();
}

TEST(BindThisThread, BestEffortBindingDoesNotFail)
{
    bindThisThread(0, 2, Affinity::Spread);
    bindThisThread(1, 2, Affinity::Close);
    SUCCEED();
}

} // namespace
} // namespace syncperf::threadlib
