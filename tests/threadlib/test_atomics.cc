/**
 * @file
 * Correctness tests for the OpenMP-flavor atomic wrappers, including
 * multithreaded races on every data type.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <type_traits>
#include <vector>

#include "threadlib/atomics.hh"
#include "threadlib/parallel_region.hh"

namespace syncperf::threadlib
{
namespace
{

template <typename T>
class AtomicsTypedTest : public ::testing::Test
{
};

using TestedTypes =
    ::testing::Types<int, unsigned long long, float, double>;
TYPED_TEST_SUITE(AtomicsTypedTest, TestedTypes);

TYPED_TEST(AtomicsTypedTest, UpdateAddsSequentially)
{
    std::atomic<TypeParam> x{TypeParam{0}};
    for (int i = 0; i < 10; ++i)
        atomicUpdate(x, TypeParam{2});
    EXPECT_EQ(x.load(), TypeParam{20});
}

TYPED_TEST(AtomicsTypedTest, CaptureReturnsOldValue)
{
    std::atomic<TypeParam> x{TypeParam{5}};
    const TypeParam old = atomicCapture(x, TypeParam{3});
    EXPECT_EQ(old, TypeParam{5});
    EXPECT_EQ(x.load(), TypeParam{8});
}

TYPED_TEST(AtomicsTypedTest, ReadAndWrite)
{
    std::atomic<TypeParam> x{TypeParam{0}};
    atomicWrite(x, TypeParam{7});
    EXPECT_EQ(atomicRead(x), TypeParam{7});
}

TYPED_TEST(AtomicsTypedTest, ConcurrentUpdatesLoseNothing)
{
    constexpr int threads = 4;
    constexpr int iters = 5000;
    std::atomic<TypeParam> x{TypeParam{0}};
    parallelRegion(threads, [&](int) {
        for (int i = 0; i < iters; ++i)
            atomicUpdate(x, TypeParam{1});
    });
    EXPECT_EQ(static_cast<long>(x.load()),
              static_cast<long>(threads) * iters);
}

TYPED_TEST(AtomicsTypedTest, ConcurrentCapturesAreUnique)
{
    // Integer captures must each observe a distinct old value.
    if constexpr (std::is_integral_v<TypeParam>) {
        constexpr int threads = 4;
        constexpr int iters = 2000;
        std::atomic<TypeParam> x{TypeParam{0}};
        std::vector<std::vector<TypeParam>> seen(threads);
        parallelRegion(threads, [&](int tid) {
            seen[tid].reserve(iters);
            for (int i = 0; i < iters; ++i)
                seen[tid].push_back(atomicCapture(x, TypeParam{1}));
        });
        std::vector<TypeParam> all;
        for (const auto &v : seen)
            all.insert(all.end(), v.begin(), v.end());
        std::sort(all.begin(), all.end());
        EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) ==
                    all.end());
        EXPECT_EQ(all.size(),
                  static_cast<std::size_t>(threads) * iters);
    } else {
        GTEST_SKIP() << "uniqueness only meaningful for integer types";
    }
}

TYPED_TEST(AtomicsTypedTest, AtomicMaxConverges)
{
    std::atomic<TypeParam> x{TypeParam{0}};
    parallelRegion(4, [&](int tid) {
        for (int i = 0; i < 1000; ++i)
            atomicMax(x, static_cast<TypeParam>(tid * 1000 + i));
    });
    EXPECT_EQ(x.load(), TypeParam{3999});
}

TEST(Flush, OrdersFlaggedHandoff)
{
    // Producer writes data then flag (flush between); the consumer
    // polls the flag and must observe the data.
    for (int round = 0; round < 50; ++round) {
        long data = 0;
        std::atomic<int> flag{0};
        bool ok = true;
        parallelRegion(2, [&](int tid) {
            if (tid == 0) {
                data = 42;
                flush();
                flag.store(1, std::memory_order_relaxed);
            } else {
                unsigned spins = 0;
                while (flag.load(std::memory_order_relaxed) == 0) {
                    if (++spins % 64 == 0)
                        std::this_thread::yield();
                }
                flush();
                if (data != 42)
                    ok = false;
            }
        });
        ASSERT_TRUE(ok) << "round " << round;
    }
}

} // namespace
} // namespace syncperf::threadlib
