/**
 * @file
 * Tests for the campaign journal (manifest.json).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <unistd.h>

#include "common/metrics.hh"
#include "core/manifest.hh"

namespace syncperf::core
{
namespace
{

namespace fs = std::filesystem;

class ManifestTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("syncperf_manifest_test_" + std::to_string(::getpid()));
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        file_ = dir_ / "manifest.json";
    }

    void
    TearDown() override
    {
        fs::remove_all(dir_);
    }

    fs::path dir_;
    fs::path file_;
};

TEST(ConfigHasher, DistinguishesFieldsAndBoundaries)
{
    const auto digest = [](auto &&fill) {
        ConfigHasher h;
        fill(h);
        return h.digest();
    };
    EXPECT_NE(digest([](ConfigHasher &h) { h.add(1).add(2); }),
              digest([](ConfigHasher &h) { h.add(2).add(1); }));
    EXPECT_NE(digest([](ConfigHasher &h) { h.add("ab").add("c"); }),
              digest([](ConfigHasher &h) { h.add("a").add("bc"); }));
    EXPECT_NE(digest([](ConfigHasher &h) { h.add(0.25); }),
              digest([](ConfigHasher &h) { h.add(0.5); }));
    EXPECT_EQ(digest([](ConfigHasher &h) { h.add("x").add(3); }),
              digest([](ConfigHasher &h) { h.add("x").add(3); }));
}

TEST_F(ManifestTest, MissingFileLoadsEmpty)
{
    const auto loaded = Manifest::load(file_);
    ASSERT_TRUE(loaded.isOk());
    EXPECT_TRUE(loaded.value().entries().empty());
    EXPECT_EQ(loaded.value().completeCount(), 0);
}

TEST_F(ManifestTest, RoundTripsCompletionsAndFailures)
{
    Manifest m(file_);
    m.setSystem("system_under_test");

    ManifestEntry done;
    done.key = "omp_barrier.csv";
    done.config_hash = 0xdeadbeefcafef00dULL;
    done.protocol_retries = 3;
    done.noise_retries = 1;
    done.max_cov = 0.125;
    m.recordComplete(done);
    m.recordFailure("omp_critical.csv", 42,
                    "io_error: disk on fire");
    ASSERT_TRUE(m.save().isOk());

    const auto loaded = Manifest::load(file_);
    ASSERT_TRUE(loaded.isOk());
    const Manifest &back = loaded.value();
    EXPECT_EQ(back.system(), "system_under_test");
    ASSERT_EQ(back.entries().size(), 2u);
    EXPECT_EQ(back.completeCount(), 1);
    EXPECT_EQ(back.failedCount(), 1);

    EXPECT_TRUE(
        back.isComplete("omp_barrier.csv", 0xdeadbeefcafef00dULL));
    const ManifestEntry &e = back.entries()[0];
    EXPECT_EQ(e.protocol_retries, 3);
    EXPECT_EQ(e.noise_retries, 1);
    EXPECT_DOUBLE_EQ(e.max_cov, 0.125);

    EXPECT_FALSE(back.isComplete("omp_critical.csv", 42));
    EXPECT_EQ(back.entries()[1].error, "io_error: disk on fire");
}

TEST_F(ManifestTest, HashMismatchIsNotComplete)
{
    Manifest m(file_);
    ManifestEntry done;
    done.key = "omp_barrier.csv";
    done.config_hash = 1;
    m.recordComplete(done);
    EXPECT_TRUE(m.isComplete("omp_barrier.csv", 1));
    EXPECT_FALSE(m.isComplete("omp_barrier.csv", 2));
    EXPECT_FALSE(m.isComplete("other.csv", 1));
}

TEST_F(ManifestTest, FailureThenCompletionReplacesEntry)
{
    Manifest m(file_);
    m.recordFailure("x.csv", 7, "transient");
    ManifestEntry done;
    done.key = "x.csv";
    done.config_hash = 7;
    m.recordComplete(done);
    ASSERT_EQ(m.entries().size(), 1u);
    EXPECT_TRUE(m.isComplete("x.csv", 7));
    EXPECT_TRUE(m.entries()[0].error.empty());
}

TEST_F(ManifestTest, CorruptFileIsAParseError)
{
    std::ofstream(file_) << "{\"experiments\": [";
    const auto loaded = Manifest::load(file_);
    ASSERT_FALSE(loaded.isOk());
    EXPECT_EQ(loaded.status().code(), ErrorCode::ParseError);
}

TEST_F(ManifestTest, SaveIsAtomic)
{
    Manifest m(file_);
    ManifestEntry done;
    done.key = "a.csv";
    done.config_hash = 1;
    m.recordComplete(done);
    ASSERT_TRUE(m.save().isOk());
    ASSERT_TRUE(m.save().isOk()); // overwrite in place
    EXPECT_FALSE(fs::exists(file_.string() + ".tmp"));

    // The journal on disk is well-formed JSON at all times.
    const auto loaded = Manifest::load(file_);
    ASSERT_TRUE(loaded.isOk());
    EXPECT_EQ(loaded.value().completeCount(), 1);
}

// ------------------------------------------------- shard journals

ManifestEntry
completeEntry(const std::string &key, std::uint64_t hash)
{
    ManifestEntry e;
    e.key = key;
    e.config_hash = hash;
    e.complete = true;
    e.protocol_retries = 2;
    e.max_cov = 0.5;
    return e;
}

ManifestEntry
failedEntry(const std::string &key, std::uint64_t hash,
            const std::string &error)
{
    ManifestEntry e;
    e.key = key;
    e.config_hash = hash;
    e.complete = false;
    e.error = error;
    return e;
}

TEST_F(ManifestTest, JournalRoundTripsEntries)
{
    const fs::path journal = dir_ / "manifest.shard-0.jsonl";
    ASSERT_TRUE(Manifest::appendJournalRecord(
                    journal, completeEntry("a.csv", 0x1111))
                    .isOk());
    ASSERT_TRUE(Manifest::appendJournalRecord(
                    journal, failedEntry("b.csv", 0x2222, "boom"))
                    .isOk());

    const auto loaded = Manifest::loadJournal(journal);
    ASSERT_TRUE(loaded.isOk());
    const auto &entries = loaded.value();
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].key, "a.csv");
    EXPECT_TRUE(entries[0].complete);
    EXPECT_EQ(entries[0].config_hash, 0x1111u);
    EXPECT_EQ(entries[0].protocol_retries, 2);
    EXPECT_DOUBLE_EQ(entries[0].max_cov, 0.5);
    EXPECT_EQ(entries[1].key, "b.csv");
    EXPECT_FALSE(entries[1].complete);
    EXPECT_EQ(entries[1].error, "boom");
}

TEST_F(ManifestTest, MissingJournalIsEmpty)
{
    const auto loaded =
        Manifest::loadJournal(dir_ / "manifest.shard-9.jsonl");
    ASSERT_TRUE(loaded.isOk());
    EXPECT_TRUE(loaded.value().empty());
}

/**
 * The crash model for an append-only journal: the final line may be
 * torn at ANY byte offset (a kill mid-append). Whatever the cut,
 * loading must keep every fully written record, skip the torn tail,
 * and count it -- never error out and never invent an entry.
 */
TEST_F(ManifestTest, JournalTornTailAtEveryByteOffset)
{
    const fs::path journal = dir_ / "manifest.shard-0.jsonl";
    ASSERT_TRUE(Manifest::appendJournalRecord(
                    journal, completeEntry("a.csv", 1))
                    .isOk());
    ASSERT_TRUE(Manifest::appendJournalRecord(
                    journal, failedEntry("b.csv", 2, "err"))
                    .isOk());
    const std::string prefix = [&] {
        std::ifstream in(journal, std::ios::binary);
        std::ostringstream text;
        text << in.rdbuf();
        return text.str();
    }();
    const std::string last_line =
        Manifest::journalLine(completeEntry("c.csv", 3)) + "\n";

    for (std::size_t cut = 0; cut <= last_line.size(); ++cut) {
        std::ofstream out(journal,
                          std::ios::binary | std::ios::trunc);
        out << prefix << last_line.substr(0, cut);
        out.close();

        const long long torn_before =
            metrics::value(metrics::Counter::JournalTornTails);
        const auto loaded = Manifest::loadJournal(journal);
        ASSERT_TRUE(loaded.isOk()) << "cut at byte " << cut;
        const auto &entries = loaded.value();
        // The record itself ends one byte before the newline: a cut
        // at exactly last_line.size() - 1 keeps the full JSON (the
        // missing trailing newline is harmless), so the third entry
        // survives from there on.
        if (cut >= last_line.size() - 1) {
            ASSERT_EQ(entries.size(), 3u) << "cut at byte " << cut;
            EXPECT_EQ(entries[2].key, "c.csv");
            EXPECT_TRUE(entries[2].complete);
        } else {
            ASSERT_EQ(entries.size(), 2u) << "cut at byte " << cut;
            if (cut > 0) {
                // A non-empty torn tail is noticed and counted.
                EXPECT_GT(
                    metrics::value(
                        metrics::Counter::JournalTornTails),
                    torn_before)
                    << "cut at byte " << cut;
            }
        }
        EXPECT_EQ(entries[0].key, "a.csv");
        EXPECT_EQ(entries[1].key, "b.csv");
        EXPECT_EQ(entries[1].error, "err");
    }
}

TEST_F(ManifestTest, JournalSkipsCorruptMiddleLines)
{
    const fs::path journal = dir_ / "manifest.shard-0.jsonl";
    std::ofstream out(journal);
    out << Manifest::journalLine(completeEntry("a.csv", 1)) << "\n";
    out << "{\"not\": \"a record\"}\n";
    out << "garbage that is not json\n";
    out << Manifest::journalLine(completeEntry("b.csv", 2)) << "\n";
    out.close();

    const auto loaded = Manifest::loadJournal(journal);
    ASSERT_TRUE(loaded.isOk());
    ASSERT_EQ(loaded.value().size(), 2u);
    EXPECT_EQ(loaded.value()[0].key, "a.csv");
    EXPECT_EQ(loaded.value()[1].key, "b.csv");
}

TEST_F(ManifestTest, AbsorbPrefersCompletedWork)
{
    Manifest m(file_);
    m.absorb(completeEntry("x.csv", 7));
    // A stale failure must not displace completed work...
    m.absorb(failedEntry("x.csv", 7, "late failure"));
    ASSERT_EQ(m.entries().size(), 1u);
    EXPECT_TRUE(m.isComplete("x.csv", 7));

    // ...but a completion replaces a failure,
    Manifest m2(file_);
    m2.absorb(failedEntry("y.csv", 8, "first try"));
    m2.absorb(completeEntry("y.csv", 8));
    ASSERT_EQ(m2.entries().size(), 1u);
    EXPECT_TRUE(m2.isComplete("y.csv", 8));

    // ...and a newer completion replaces an older one.
    ManifestEntry rerun = completeEntry("y.csv", 9);
    m2.absorb(rerun);
    ASSERT_EQ(m2.entries().size(), 1u);
    EXPECT_FALSE(m2.isComplete("y.csv", 8));
    EXPECT_TRUE(m2.isComplete("y.csv", 9));
}

} // namespace
} // namespace syncperf::core
