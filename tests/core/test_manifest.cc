/**
 * @file
 * Tests for the campaign journal (manifest.json).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

#include "core/manifest.hh"

namespace syncperf::core
{
namespace
{

namespace fs = std::filesystem;

class ManifestTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("syncperf_manifest_test_" + std::to_string(::getpid()));
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        file_ = dir_ / "manifest.json";
    }

    void
    TearDown() override
    {
        fs::remove_all(dir_);
    }

    fs::path dir_;
    fs::path file_;
};

TEST(ConfigHasher, DistinguishesFieldsAndBoundaries)
{
    const auto digest = [](auto &&fill) {
        ConfigHasher h;
        fill(h);
        return h.digest();
    };
    EXPECT_NE(digest([](ConfigHasher &h) { h.add(1).add(2); }),
              digest([](ConfigHasher &h) { h.add(2).add(1); }));
    EXPECT_NE(digest([](ConfigHasher &h) { h.add("ab").add("c"); }),
              digest([](ConfigHasher &h) { h.add("a").add("bc"); }));
    EXPECT_NE(digest([](ConfigHasher &h) { h.add(0.25); }),
              digest([](ConfigHasher &h) { h.add(0.5); }));
    EXPECT_EQ(digest([](ConfigHasher &h) { h.add("x").add(3); }),
              digest([](ConfigHasher &h) { h.add("x").add(3); }));
}

TEST_F(ManifestTest, MissingFileLoadsEmpty)
{
    const auto loaded = Manifest::load(file_);
    ASSERT_TRUE(loaded.isOk());
    EXPECT_TRUE(loaded.value().entries().empty());
    EXPECT_EQ(loaded.value().completeCount(), 0);
}

TEST_F(ManifestTest, RoundTripsCompletionsAndFailures)
{
    Manifest m(file_);
    m.setSystem("system_under_test");

    ManifestEntry done;
    done.key = "omp_barrier.csv";
    done.config_hash = 0xdeadbeefcafef00dULL;
    done.protocol_retries = 3;
    done.noise_retries = 1;
    done.max_cov = 0.125;
    m.recordComplete(done);
    m.recordFailure("omp_critical.csv", 42,
                    "io_error: disk on fire");
    ASSERT_TRUE(m.save().isOk());

    const auto loaded = Manifest::load(file_);
    ASSERT_TRUE(loaded.isOk());
    const Manifest &back = loaded.value();
    EXPECT_EQ(back.system(), "system_under_test");
    ASSERT_EQ(back.entries().size(), 2u);
    EXPECT_EQ(back.completeCount(), 1);
    EXPECT_EQ(back.failedCount(), 1);

    EXPECT_TRUE(
        back.isComplete("omp_barrier.csv", 0xdeadbeefcafef00dULL));
    const ManifestEntry &e = back.entries()[0];
    EXPECT_EQ(e.protocol_retries, 3);
    EXPECT_EQ(e.noise_retries, 1);
    EXPECT_DOUBLE_EQ(e.max_cov, 0.125);

    EXPECT_FALSE(back.isComplete("omp_critical.csv", 42));
    EXPECT_EQ(back.entries()[1].error, "io_error: disk on fire");
}

TEST_F(ManifestTest, HashMismatchIsNotComplete)
{
    Manifest m(file_);
    ManifestEntry done;
    done.key = "omp_barrier.csv";
    done.config_hash = 1;
    m.recordComplete(done);
    EXPECT_TRUE(m.isComplete("omp_barrier.csv", 1));
    EXPECT_FALSE(m.isComplete("omp_barrier.csv", 2));
    EXPECT_FALSE(m.isComplete("other.csv", 1));
}

TEST_F(ManifestTest, FailureThenCompletionReplacesEntry)
{
    Manifest m(file_);
    m.recordFailure("x.csv", 7, "transient");
    ManifestEntry done;
    done.key = "x.csv";
    done.config_hash = 7;
    m.recordComplete(done);
    ASSERT_EQ(m.entries().size(), 1u);
    EXPECT_TRUE(m.isComplete("x.csv", 7));
    EXPECT_TRUE(m.entries()[0].error.empty());
}

TEST_F(ManifestTest, CorruptFileIsAParseError)
{
    std::ofstream(file_) << "{\"experiments\": [";
    const auto loaded = Manifest::load(file_);
    ASSERT_FALSE(loaded.isOk());
    EXPECT_EQ(loaded.status().code(), ErrorCode::ParseError);
}

TEST_F(ManifestTest, SaveIsAtomic)
{
    Manifest m(file_);
    ManifestEntry done;
    done.key = "a.csv";
    done.config_hash = 1;
    m.recordComplete(done);
    ASSERT_TRUE(m.save().isOk());
    ASSERT_TRUE(m.save().isOk()); // overwrite in place
    EXPECT_FALSE(fs::exists(file_.string() + ".tmp"));

    // The journal on disk is well-formed JSON at all times.
    const auto loaded = Manifest::load(file_);
    ASSERT_TRUE(loaded.isOk());
    EXPECT_EQ(loaded.value().completeCount(), 1);
}

} // namespace
} // namespace syncperf::core
