/**
 * @file
 * Tests for the simulator result cache in CpuSimTarget and
 * GpuSimTarget: hits are bit-identical to re-simulating, jittered
 * configurations bypass the cache entirely, disabling the cache
 * never changes results, and the hit/miss counters land in the
 * deterministic metrics class (identical across --jobs counts).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <unistd.h>

#include "common/metrics.hh"
#include "core/campaign.hh"
#include "core/cpusim_target.hh"
#include "core/gpusim_target.hh"

namespace syncperf::core
{
namespace
{

namespace fs = std::filesystem;

long long
hits()
{
    return metrics::value(metrics::Counter::SimCacheHits);
}

long long
misses()
{
    return metrics::value(metrics::Counter::SimCacheMisses);
}

class SimCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override { metrics::Registry::global().reset(); }
    void TearDown() override { metrics::Registry::global().reset(); }

    static MeasurementConfig
    cpuProtocol()
    {
        auto cfg = MeasurementConfig::simDefaults();
        cfg.runs = 2;
        cfg.attempts = 2;
        cfg.n_iter = 10;
        cfg.n_unroll = 2;
        return cfg;
    }

    static MeasurementConfig
    gpuProtocol()
    {
        auto cfg = MeasurementConfig::simGpuDefaults();
        cfg.runs = 2;
        cfg.attempts = 2;
        cfg.n_iter = 5;
        cfg.n_unroll = 2;
        return cfg;
    }
};

TEST_F(SimCacheTest, CpuRepeatLaunchesHitAndMatchFirstMeasurement)
{
    // system2 is jitter-free, so every launch after the first pair
    // (baseline, test) is a cache hit.
    CpuSimTarget target(cpusim::CpuConfig::system2(), cpuProtocol());
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::Barrier;

    const auto first = target.measure(exp, 4);
    EXPECT_EQ(misses(), 2); // one baseline + one test program
    EXPECT_GT(hits(), 0);   // runs*attempts = 4 pairs, 3 repeats each

    const auto hits_before = hits();
    const auto second = target.measure(exp, 4);
    EXPECT_EQ(misses(), 2) << "repeat measurement re-simulated";
    EXPECT_GT(hits(), hits_before);
    EXPECT_DOUBLE_EQ(first.per_op_seconds, second.per_op_seconds);
    EXPECT_DOUBLE_EQ(first.stddev_seconds, second.stddev_seconds);
}

TEST_F(SimCacheTest, CpuCacheDoesNotChangeResults)
{
    auto cached_cfg = cpuProtocol();
    auto uncached_cfg = cpuProtocol();
    uncached_cfg.sim_cache = false;

    CpuSimTarget cached(cpusim::CpuConfig::system2(), cached_cfg);
    CpuSimTarget uncached(cpusim::CpuConfig::system2(), uncached_cfg);
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::AtomicUpdate;

    const auto a = cached.measure(exp, 4);
    const auto hits_cached = hits();
    const auto b = uncached.measure(exp, 4);

    EXPECT_GT(hits_cached, 0);
    EXPECT_EQ(hits(), hits_cached) << "disabled cache counted a hit";
    EXPECT_DOUBLE_EQ(a.per_op_seconds, b.per_op_seconds);
    EXPECT_DOUBLE_EQ(a.stddev_seconds, b.stddev_seconds);
    ASSERT_EQ(a.run_values.size(), b.run_values.size());
    for (std::size_t i = 0; i < a.run_values.size(); ++i)
        EXPECT_DOUBLE_EQ(a.run_values[i], b.run_values[i]);
}

TEST_F(SimCacheTest, CpuJitteredModelBypassesCache)
{
    // system3 has jitter_frac > 0: launches are never pure functions
    // of their inputs, so neither counter may move.
    CpuSimTarget target(cpusim::CpuConfig::system3(), cpuProtocol());
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::Barrier;

    target.measure(exp, 4);
    target.measure(exp, 4);
    EXPECT_EQ(hits(), 0);
    EXPECT_EQ(misses(), 0);
}

TEST_F(SimCacheTest, GpuRepeatLaunchesHitAndMatchFirstMeasurement)
{
    GpuSimTarget target(gpusim::GpuConfig::rtx4090(), gpuProtocol());
    CudaExperiment exp;
    exp.primitive = CudaPrimitive::SyncThreads;
    const gpusim::LaunchConfig launch{2, 64};

    const auto first = target.measure(exp, launch);
    EXPECT_EQ(misses(), 2);
    EXPECT_GT(hits(), 0);

    const auto second = target.measure(exp, launch);
    EXPECT_EQ(misses(), 2);
    EXPECT_DOUBLE_EQ(first.per_op_seconds, second.per_op_seconds);
    EXPECT_DOUBLE_EQ(first.stddev_seconds, second.stddev_seconds);
}

TEST_F(SimCacheTest, GpuDifferentLaunchGeometryMisses)
{
    GpuSimTarget target(gpusim::GpuConfig::rtx4090(), gpuProtocol());
    CudaExperiment exp;
    exp.primitive = CudaPrimitive::SyncThreads;

    target.measure(exp, {2, 64});
    EXPECT_EQ(misses(), 2);
    target.measure(exp, {2, 128});
    EXPECT_EQ(misses(), 4) << "geometry change must re-simulate";
}

TEST_F(SimCacheTest, GpuSystemFenceBypassesCache)
{
    // __threadfence_system draws per-launch PCIe jitter; its kernels
    // must never be served from (or stored into) the cache.
    GpuSimTarget target(gpusim::GpuConfig::rtx4090(), gpuProtocol());
    CudaExperiment exp;
    exp.primitive = CudaPrimitive::ThreadFenceSystem;
    exp.location = Location::PrivateArray;

    target.measure(exp, {2, 64});
    target.measure(exp, {2, 64});
    // The baseline kernel (two stores, no fence) is cacheable; only
    // the test kernel carries the system fence.
    EXPECT_EQ(misses(), 1);
    target.measure(exp, {2, 64});
    EXPECT_EQ(misses(), 1);
}

/** Every regular file under @p dir, as relative path -> bytes. */
std::map<std::string, std::string>
snapshotTree(const fs::path &dir)
{
    std::map<std::string, std::string> out;
    if (!fs::exists(dir))
        return out;
    for (const auto &e : fs::recursive_directory_iterator(dir)) {
        if (!e.is_regular_file())
            continue;
        std::ifstream in(e.path(), std::ios::binary);
        std::ostringstream bytes;
        bytes << in.rdbuf();
        out[fs::relative(e.path(), dir).string()] = bytes.str();
    }
    return out;
}

TEST_F(SimCacheTest, CampaignOutputIsByteIdenticalWithCacheOff)
{
    const auto base =
        fs::temp_directory_path() /
        ("syncperf_sim_cache_" + std::to_string(::getpid()));
    fs::remove_all(base);

    auto cpu = cpusim::CpuConfig::system2(); // jitter-free: cache engages
    cpu.cores_per_socket = 2;                // keep the sweep cheap

    auto cached_cfg = cpuProtocol();
    auto uncached_cfg = cpuProtocol();
    uncached_cfg.sim_cache = false;

    CampaignOptions cached_opts;
    cached_opts.output_dir = (base / "cached").string();
    cached_opts.quick = true;
    auto uncached_opts = cached_opts;
    uncached_opts.output_dir = (base / "uncached").string();

    const auto cached = runOmpCampaign(cpu, cached_cfg, cached_opts);
    const auto cache_hits = hits();
    const auto uncached =
        runOmpCampaign(cpu, uncached_cfg, uncached_opts);

    ASSERT_TRUE(cached.ok());
    ASSERT_TRUE(uncached.ok());
    EXPECT_GT(cache_hits, 0);
    EXPECT_EQ(hits(), cache_hits);

    const auto cached_tree = snapshotTree(base / "cached");
    const auto uncached_tree = snapshotTree(base / "uncached");
    ASSERT_FALSE(cached_tree.empty());
    ASSERT_EQ(cached_tree.size(), uncached_tree.size());
    for (const auto &[file, bytes] : cached_tree) {
        const auto it = uncached_tree.find(file);
        ASSERT_NE(it, uncached_tree.end()) << file << " missing";
        EXPECT_EQ(bytes, it->second) << file << " differs";
    }
    fs::remove_all(base);
}

TEST_F(SimCacheTest, CpuCacheHitsReplayIdenticalTelemetry)
{
    // A cache hit must contribute the stored telemetry of the
    // original simulation: the accumulated sample is identical with
    // the cache on (mostly hits) and off (all re-simulated).
    auto cached_cfg = cpuProtocol();
    cached_cfg.telemetry = true;
    auto uncached_cfg = cached_cfg;
    uncached_cfg.sim_cache = false;

    CpuSimTarget cached(cpusim::CpuConfig::system2(), cached_cfg);
    CpuSimTarget uncached(cpusim::CpuConfig::system2(), uncached_cfg);
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::AtomicUpdate;

    cached.measure(exp, 4);
    uncached.measure(exp, 4);
    EXPECT_GT(hits(), 0);

    const auto a = cached.takeTelemetry();
    const auto b = uncached.takeTelemetry();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "cache hits dropped or altered telemetry";
    ASSERT_EQ(a.histograms.count("cpu.acq_wait_ticks"), 1u);

    // takeTelemetry drains the accumulator.
    EXPECT_TRUE(cached.takeTelemetry().empty());
}

TEST_F(SimCacheTest, GpuCacheHitsReplayIdenticalTelemetry)
{
    auto cached_cfg = gpuProtocol();
    cached_cfg.telemetry = true;
    auto uncached_cfg = cached_cfg;
    uncached_cfg.sim_cache = false;

    GpuSimTarget cached(gpusim::GpuConfig::rtx4090(), cached_cfg);
    GpuSimTarget uncached(gpusim::GpuConfig::rtx4090(), uncached_cfg);
    CudaExperiment exp;
    exp.primitive = CudaPrimitive::AtomicAdd;

    cached.measure(exp, {2, 64});
    uncached.measure(exp, {2, 64});
    EXPECT_GT(hits(), 0);

    const auto a = cached.takeTelemetry();
    const auto b = uncached.takeTelemetry();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "cache hits dropped or altered telemetry";
    ASSERT_EQ(a.histograms.count("gpu.atomic_wait_ticks"), 1u);
}

TEST_F(SimCacheTest, TelemetryOffKeepsAccumulatorEmpty)
{
    CpuSimTarget target(cpusim::CpuConfig::system2(), cpuProtocol());
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::Barrier;
    target.measure(exp, 4);
    EXPECT_TRUE(target.takeTelemetry().empty());
}

TEST_F(SimCacheTest, CacheCountersAreDeterministicClass)
{
    // The jobs-1 vs jobs-N equality itself is covered by the campaign
    // metrics tests; this pins the classification that puts the cache
    // counters inside that comparison.
    EXPECT_TRUE(metrics::counterIsDeterministic(
        metrics::Counter::SimCacheHits));
    EXPECT_TRUE(metrics::counterIsDeterministic(
        metrics::Counter::SimCacheMisses));
}

} // namespace
} // namespace syncperf::core
