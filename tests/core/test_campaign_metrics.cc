/**
 * @file
 * Tests for campaign-level metrics: the deterministic counter class
 * must be identical between --jobs 1 and --jobs 4, the metrics.json
 * snapshot must parse and carry the documented schema, and injected
 * faults must show up in the fault counters. Runs in the `tsan`
 * preset too, where the jobs-4 campaign race-checks the counter
 * paths.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <unistd.h>

#include "common/json.hh"
#include "common/metrics.hh"
#include "core/campaign.hh"
#include "core/metrics.hh"
#include "sim/fault_injector.hh"

namespace syncperf::core
{
namespace
{

namespace fs = std::filesystem;

/** Deterministic counters only, keyed by stable name. */
std::map<std::string, long long>
deterministicCounters()
{
    std::map<std::string, long long> out;
    for (std::size_t i = 0; i < metrics::counter_count; ++i) {
        const auto c = static_cast<metrics::Counter>(i);
        if (metrics::counterIsDeterministic(c))
            out[std::string(metrics::counterName(c))] =
                metrics::value(c);
    }
    return out;
}

class CampaignMetricsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        base_ = fs::temp_directory_path() /
                ("syncperf_campaign_metrics_" +
                 std::to_string(::getpid()));
        fs::remove_all(base_);
        cpu_ = cpusim::CpuConfig::system3();
        cpu_.cores_per_socket = 2; // keep the sweep cheap
        CampaignMetrics::global().reset();
    }

    void
    TearDown() override
    {
        fs::remove_all(base_);
        CampaignMetrics::global().reset();
    }

    CampaignOptions
    options(const char *tag, int jobs) const
    {
        CampaignOptions o;
        o.output_dir = (base_ / tag).string();
        o.quick = true;
        o.jobs = jobs;
        // Pinned: "auto" picks a jobs-dependent cadence, which would
        // legitimately change checkpoint_flushes across job counts.
        o.checkpoint_every = 4;
        return o;
    }

    static MeasurementConfig
    tinyProtocol()
    {
        auto cfg = MeasurementConfig::simDefaults();
        cfg.runs = 1;
        cfg.attempts = 1;
        cfg.n_iter = 5;
        cfg.n_unroll = 2;
        return cfg;
    }

    fs::path base_;
    cpusim::CpuConfig cpu_;
};

TEST_F(CampaignMetricsTest,
       DeterministicCountersMatchAcrossJobCounts)
{
    const auto serial =
        runOmpCampaign(cpu_, tinyProtocol(), options("serial", 1));
    ASSERT_TRUE(serial.ok());
    const auto serial_counters = deterministicCounters();

    CampaignMetrics::global().reset();
    const auto parallel =
        runOmpCampaign(cpu_, tinyProtocol(), options("parallel", 4));
    ASSERT_TRUE(parallel.ok());
    const auto parallel_counters = deterministicCounters();

    EXPECT_GT(serial_counters.at("points_committed"), 0);
    // checkpoint_flushes moved to the timing class (cadence is
    // per-process under sharding), so assert it directly instead of
    // through the deterministic map.
    EXPECT_GT(metrics::value(metrics::Counter::CheckpointFlushes), 0);
    EXPECT_EQ(serial_counters, parallel_counters);
}

TEST_F(CampaignMetricsTest, ResumeCountsSkippedPoints)
{
    auto first_options = options("resume", 1);
    const auto first =
        runOmpCampaign(cpu_, tinyProtocol(), first_options);
    ASSERT_TRUE(first.ok());

    CampaignMetrics::global().reset();
    auto second_options = options("resume", 4);
    second_options.resume = true;
    const auto second =
        runOmpCampaign(cpu_, tinyProtocol(), second_options);
    ASSERT_TRUE(second.ok());

    EXPECT_EQ(metrics::value(metrics::Counter::PointsSkipped),
              first.experiments_run);
    EXPECT_EQ(metrics::value(metrics::Counter::PointsCommitted), 0);
}

TEST_F(CampaignMetricsTest, SnapshotJsonParsesWithDocumentedSchema)
{
    const auto result =
        runOmpCampaign(cpu_, tinyProtocol(), options("snap", 2));
    ASSERT_TRUE(result.ok());

    const auto parsed =
        parseJson(CampaignMetrics::global().snapshotJson());
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    const auto &root = parsed.value();
    ASSERT_TRUE(root.isObject());
    EXPECT_EQ(root.numberOr("version", 0.0), 1.0);

    const auto *counters = root.find("counters");
    ASSERT_NE(counters, nullptr);
    ASSERT_TRUE(counters->isObject());
    for (std::size_t i = 0; i < metrics::counter_count; ++i) {
        const auto c = static_cast<metrics::Counter>(i);
        if (!metrics::counterIsDeterministic(c))
            continue;
        const auto *member =
            counters->find(metrics::counterName(c));
        ASSERT_NE(member, nullptr)
            << metrics::counterName(c) << " missing from counters";
        EXPECT_TRUE(member->isNumber());
    }
    EXPECT_EQ(static_cast<double>(
                  metrics::value(metrics::Counter::PointsCommitted)),
              counters->numberOr("points_committed", -1.0));

    const auto *timing = root.find("timing");
    ASSERT_NE(timing, nullptr);
    ASSERT_TRUE(timing->isObject());
    EXPECT_NE(timing->find("retry_rate"), nullptr);
    EXPECT_NE(timing->find("idle_fraction"), nullptr);
    EXPECT_NE(timing->find("pool_tasks_run"), nullptr);

    // A jobs-2 campaign folded one pool: two worker rows.
    const auto *workers = root.find("workers");
    ASSERT_NE(workers, nullptr);
    ASSERT_TRUE(workers->isArray());
    ASSERT_EQ(workers->asArray().size(), 2u);
    const auto &w0 = workers->asArray()[0];
    EXPECT_EQ(w0.numberOr("worker", -1.0), 0.0);
    EXPECT_NE(w0.find("tasks_run"), nullptr);
    EXPECT_NE(w0.find("busy_s"), nullptr);
}

TEST_F(CampaignMetricsTest, WriteSnapshotLandsOnDiskAtomically)
{
    const auto file = base_ / "metrics.json";
    fs::create_directories(base_);
    ASSERT_TRUE(
        CampaignMetrics::global().writeSnapshot(file).isOk());

    std::ifstream in(file, std::ios::binary);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    const auto parsed = parseJson(bytes.str());
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    EXPECT_TRUE(parsed.value().isObject());
}

TEST_F(CampaignMetricsTest, FoldShardSnapshotMergesAndPartitions)
{
    namespace m = metrics;
    fs::create_directories(base_);
    const auto shard_file = base_ / "metrics.shard-0.json";

    // Fake one shard worker's flushed snapshot: deterministic work,
    // summable pool time, and a max-gauge.
    m::add(m::Counter::PointsCommitted, 5);
    m::add(m::Counter::ProtocolRetries, 2);
    m::add(m::Counter::PoolBusyNanos, 2'000'000'000);
    m::recordMax(m::Counter::ExecutorMaxQueueDepth, 7);
    ASSERT_TRUE(
        CampaignMetrics::global().writeSnapshot(shard_file).isOk());

    // The supervisor's own pre-fold work (e.g. salvaged points).
    CampaignMetrics::global().reset();
    m::add(m::Counter::PointsCommitted, 3);
    m::recordMax(m::Counter::ExecutorMaxQueueDepth, 9);

    EXPECT_FALSE(CampaignMetrics::global().merged());
    ASSERT_TRUE(CampaignMetrics::global()
                    .foldShardSnapshot(0, shard_file)
                    .isOk());
    EXPECT_TRUE(CampaignMetrics::global().merged());

    // Adds add, the max-gauge merges as max, pool seconds round-trip
    // through the snapshot back into nanoseconds exactly.
    EXPECT_EQ(m::value(m::Counter::PointsCommitted), 8);
    EXPECT_EQ(m::value(m::Counter::ProtocolRetries), 2);
    EXPECT_EQ(m::value(m::Counter::PoolBusyNanos), 2'000'000'000);
    EXPECT_EQ(m::value(m::Counter::ExecutorMaxQueueDepth), 9);

    const auto parsed =
        parseJson(CampaignMetrics::global().snapshotJson());
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    const auto &root = parsed.value();

    const auto *sup = root.find("supervisor");
    ASSERT_NE(sup, nullptr);
    const auto *sup_counters = sup->find("counters");
    ASSERT_NE(sup_counters, nullptr);
    EXPECT_EQ(sup_counters->numberOr("points_committed", -1.0), 3.0);

    const auto *shards = root.find("shards");
    ASSERT_NE(shards, nullptr);
    ASSERT_TRUE(shards->isArray());
    ASSERT_EQ(shards->asArray().size(), 1u);
    const auto &row = shards->asArray()[0];
    EXPECT_EQ(row.numberOr("shard", -1.0), 0.0);
    const auto *row_counters = row.find("counters");
    ASSERT_NE(row_counters, nullptr);
    EXPECT_EQ(row_counters->numberOr("points_committed", -1.0), 5.0);

    // The partition invariant check_metrics.py gates: supervisor row
    // plus shard rows sum to the merged total for every
    // deterministic counter.
    const auto *merged_counters = root.find("counters");
    ASSERT_NE(merged_counters, nullptr);
    for (std::size_t i = 0; i < metrics::counter_count; ++i) {
        const auto c = static_cast<metrics::Counter>(i);
        if (!metrics::counterIsDeterministic(c))
            continue;
        const auto name = std::string(metrics::counterName(c));
        EXPECT_EQ(merged_counters->numberOr(name, -1.0),
                  sup_counters->numberOr(name, -1.0) +
                      row_counters->numberOr(name, -1.0))
            << name << " violates the shard partition";
    }
}

TEST_F(CampaignMetricsTest, FoldShardSnapshotMissingFileFails)
{
    EXPECT_FALSE(CampaignMetrics::global()
                     .foldShardSnapshot(1, base_ / "absent.json")
                     .isOk());
    EXPECT_FALSE(CampaignMetrics::global().merged());
}

TEST_F(CampaignMetricsTest, InjectedFaultsAreCounted)
{
    sim::FaultInjector injector;
    // Poison a couple of early timed launches; the protocol's retry
    // budget absorbs them, so the campaign still completes.
    injector.poisonMeasurements(1, 2);
    sim::FaultInjector::Scope scope(injector);

    const auto result =
        runOmpCampaign(cpu_, tinyProtocol(), options("faults", 1));
    ASSERT_TRUE(result.ok());

    EXPECT_EQ(metrics::value(metrics::Counter::FaultsInjected),
              injector.injectedCount());
    EXPECT_GE(metrics::value(metrics::Counter::FaultsInjected), 1);
    EXPECT_GE(metrics::value(metrics::Counter::FaultsSurvived), 1);
    EXPECT_GE(metrics::value(metrics::Counter::ProtocolRetries),
              metrics::value(metrics::Counter::FaultsSurvived));
}

TEST_F(CampaignMetricsTest, SummaryTableListsEveryCounter)
{
    const auto table = CampaignMetrics::global().summaryTable();
    EXPECT_NE(table.find("campaign metrics"), std::string::npos);
    EXPECT_NE(table.find("points_committed"), std::string::npos);
    EXPECT_NE(table.find("retry_rate"), std::string::npos);
    EXPECT_NE(table.find("idle_fraction"), std::string::npos);
}

} // namespace
} // namespace syncperf::core
