/**
 * @file
 * Tests for the warm-start machine pool: lease reuse, per-lease
 * image hygiene, snapshot materialization, and the determinism
 * counters behind them.
 *
 * The pool under test is the process-wide singleton (exactly what
 * the targets use), so every test resets it -- and restores the
 * default configuration -- to leave no state behind for the other
 * suites in this binary.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/metrics.hh"
#include "core/machine_pool.hh"
#include "sim/snapshot.hh"

namespace syncperf::core
{
namespace
{

namespace fs = std::filesystem;

cpusim::CpuConfig
testCpu()
{
    cpusim::CpuConfig c;
    c.name = "pool test cpu";
    c.sockets = 1;
    c.cores_per_socket = 4;
    c.threads_per_core = 2;
    c.cores_per_complex = 4;
    return c;
}

gpusim::GpuConfig
testGpu()
{
    gpusim::GpuConfig c = gpusim::GpuConfig::rtx4090();
    c.name = "pool test gpu";
    return c;
}

std::vector<cpusim::CpuProgram>
testPrograms()
{
    std::vector<cpusim::CpuProgram> programs;
    for (int tid = 0; tid < 2; ++tid) {
        cpusim::CpuProgram p;
        cpusim::CpuOp rmw;
        rmw.kind = cpusim::CpuOpKind::AtomicRmw;
        rmw.addr = 0x1000;
        rmw.dtype = DataType::Int32;
        p.body = {rmw};
        p.iterations = 20;
        programs.push_back(std::move(p));
    }
    return programs;
}

gpusim::GpuKernel
testKernel()
{
    gpusim::GpuKernel k;
    k.body = {gpusim::GpuOp::syncThreads()};
    k.body_iters = 20;
    return k;
}

class MachinePoolTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("syncperf_pool_test_" + std::to_string(::getpid()));
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        MachinePool::global().configure({true, ""});
        MachinePool::global().reset();
        metrics::Registry::global().reset();
    }

    void
    TearDown() override
    {
        MachinePool::global().configure({true, ""});
        MachinePool::global().reset();
        metrics::Registry::global().reset();
        fs::remove_all(dir_);
    }

    /** Configure the pool to snapshot under the test directory. */
    void
    useSnapshots()
    {
        MachinePool::global().configure({true, dir_.string()});
        MachinePool::global().reset();
    }

    static long long
    counter(metrics::Counter c)
    {
        return metrics::value(c);
    }

    fs::path dir_;
};

TEST_F(MachinePoolTest, ReleasedMachineIsLeasedAgain)
{
    auto &pool = MachinePool::global();
    // The first release seeds the template slot (kept, never leased
    // again); the second release lands on the idle stack and must be
    // handed back verbatim by the next acquire.
    {
        auto first = pool.acquireCpu(testCpu(), Affinity::System);
        ASSERT_TRUE(static_cast<bool>(first));
    }
    cpusim::CpuMachine *second_ptr = nullptr;
    {
        auto second = pool.acquireCpu(testCpu(), Affinity::System);
        second_ptr = &*second;
    }
    auto third = pool.acquireCpu(testCpu(), Affinity::System);
    EXPECT_EQ(&*third, second_ptr);
}

TEST_F(MachinePoolTest, DifferentPlacementsDoNotShareMachines)
{
    auto &pool = MachinePool::global();
    cpusim::CpuMachine *spread_ptr = nullptr;
    {
        auto a = pool.acquireCpu(testCpu(), Affinity::Spread);
        auto b = pool.acquireCpu(testCpu(), Affinity::Spread);
        spread_ptr = &*b;
    }
    // An idle Spread machine must not satisfy a Close lease.
    auto close = pool.acquireCpu(testCpu(), Affinity::Close);
    EXPECT_NE(&*close, spread_ptr);
}

TEST_F(MachinePoolTest, LeasesStartWithoutImages)
{
    auto &pool = MachinePool::global();
    { auto tmpl = pool.acquireCpu(testCpu(), Affinity::System); }
    {
        auto lease = pool.acquireCpu(testCpu(), Affinity::System);
        lease->buildImage(5, testPrograms());
        ASSERT_TRUE(lease->hasImage(5));
    }
    auto again = pool.acquireCpu(testCpu(), Affinity::System);
    EXPECT_FALSE(again->hasImage(5));
}

TEST_F(MachinePoolTest, BypassedLeaseIsNotPooled)
{
    auto &pool = MachinePool::global();
    cpusim::CpuMachine *cold_ptr = nullptr;
    {
        auto cold =
            pool.acquireCpu(testCpu(), Affinity::System, false);
        ASSERT_TRUE(static_cast<bool>(cold));
        cold_ptr = &*cold;
    }
    { auto tmpl = pool.acquireCpu(testCpu(), Affinity::System); }
    auto pooled = pool.acquireCpu(testCpu(), Affinity::System);
    EXPECT_NE(&*pooled, cold_ptr);
}

TEST_F(MachinePoolTest, MaterializeWithoutSnapshotDirIsAColdBuild)
{
    auto &pool = MachinePool::global();
    auto lease = pool.acquireCpu(testCpu(), Affinity::System);
    pool.materializeCpu(*lease, 11, testPrograms());
    EXPECT_TRUE(lease->hasImage(11));
    EXPECT_EQ(counter(metrics::Counter::PoolColdBuilds), 1);
    EXPECT_EQ(counter(metrics::Counter::SnapshotLoads), 0);
    EXPECT_EQ(counter(metrics::Counter::SnapshotRejects), 0);
    EXPECT_TRUE(fs::is_empty(dir_));
}

TEST_F(MachinePoolTest, MaterializeWritesThenLoadsSnapshots)
{
    useSnapshots();
    auto &pool = MachinePool::global();
    const std::uint64_t key = 21;
    const fs::path file =
        dir_ / sim::snapshotFileName(sim::SnapshotKind::CpuImage, key);
    std::vector<std::uint64_t> baseline;
    {
        auto lease = pool.acquireCpu(testCpu(), Affinity::System);
        pool.materializeCpu(*lease, key, testPrograms());
        baseline = lease->run(testPrograms(), 2, key).thread_cycles;
    }
    EXPECT_EQ(counter(metrics::Counter::PoolColdBuilds), 1);
    EXPECT_EQ(counter(metrics::Counter::SnapshotLoads), 0);
    ASSERT_TRUE(fs::exists(file));

    // A "new process": pool claims dropped, counters cleared, the
    // snapshot directory retained.
    MachinePool::global().reset();
    metrics::Registry::global().reset();
    auto lease = pool.acquireCpu(testCpu(), Affinity::System);
    pool.materializeCpu(*lease, key, testPrograms());
    EXPECT_TRUE(lease->hasImage(key));
    EXPECT_EQ(counter(metrics::Counter::SnapshotLoads), 1);
    EXPECT_EQ(counter(metrics::Counter::PoolColdBuilds), 0);
    EXPECT_EQ(counter(metrics::Counter::SnapshotRejects), 0);
    EXPECT_EQ(lease->run(testPrograms(), 2, key).thread_cycles,
              baseline);
}

TEST_F(MachinePoolTest, CorruptSnapshotIsRejectedAndRepaired)
{
    useSnapshots();
    auto &pool = MachinePool::global();
    const std::uint64_t key = 31;
    const fs::path file =
        dir_ / sim::snapshotFileName(sim::SnapshotKind::CpuImage, key);
    {
        auto lease = pool.acquireCpu(testCpu(), Affinity::System);
        pool.materializeCpu(*lease, key, testPrograms());
    }
    ASSERT_TRUE(fs::exists(file));
    // Flip one payload byte.
    std::string bytes;
    {
        std::ifstream in(file, std::ios::binary);
        bytes.assign((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    }
    bytes.back() = static_cast<char>(
        static_cast<unsigned char>(bytes.back()) ^ 0x01);
    {
        std::ofstream out(file, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    MachinePool::global().reset();
    metrics::Registry::global().reset();
    {
        auto lease = pool.acquireCpu(testCpu(), Affinity::System);
        pool.materializeCpu(*lease, key, testPrograms());
        EXPECT_TRUE(lease->hasImage(key));
    }
    EXPECT_EQ(counter(metrics::Counter::SnapshotRejects), 1);
    EXPECT_EQ(counter(metrics::Counter::PoolColdBuilds), 1);
    EXPECT_EQ(counter(metrics::Counter::SnapshotLoads), 0);

    // The claimant rewrote the file after the cold build, so the
    // next process loads it cleanly.
    MachinePool::global().reset();
    metrics::Registry::global().reset();
    {
        auto lease = pool.acquireCpu(testCpu(), Affinity::System);
        pool.materializeCpu(*lease, key, testPrograms());
    }
    EXPECT_EQ(counter(metrics::Counter::SnapshotLoads), 1);
    EXPECT_EQ(counter(metrics::Counter::SnapshotRejects), 0);
}

TEST_F(MachinePoolTest, GpuMaterializeWritesThenLoadsSnapshots)
{
    useSnapshots();
    auto &pool = MachinePool::global();
    const std::uint64_t key = 41;
    const fs::path file =
        dir_ / sim::snapshotFileName(sim::SnapshotKind::GpuImage, key);
    std::vector<std::uint64_t> baseline;
    {
        auto lease = pool.acquireGpu(testGpu());
        pool.materializeGpu(*lease, key, testKernel());
        baseline =
            lease->run(testKernel(), {2, 64}, 2, key).thread_cycles;
    }
    EXPECT_EQ(counter(metrics::Counter::PoolColdBuilds), 1);
    ASSERT_TRUE(fs::exists(file));

    MachinePool::global().reset();
    metrics::Registry::global().reset();
    auto lease = pool.acquireGpu(testGpu());
    pool.materializeGpu(*lease, key, testKernel());
    EXPECT_EQ(counter(metrics::Counter::SnapshotLoads), 1);
    EXPECT_EQ(counter(metrics::Counter::PoolColdBuilds), 0);
    EXPECT_EQ(lease->run(testKernel(), {2, 64}, 2, key).thread_cycles,
              baseline);
}

TEST_F(MachinePoolTest, ConfigHashesAreFieldSensitive)
{
    cpusim::CpuConfig cpu_a = testCpu();
    cpusim::CpuConfig cpu_b = cpu_a;
    cpu_b.cores_per_socket = 8;
    EXPECT_NE(MachinePool::hashCpuConfig(cpu_a),
              MachinePool::hashCpuConfig(cpu_b));
    cpusim::CpuConfig cpu_c = cpu_a;
    cpu_c.l1_hit_latency += 1;
    EXPECT_NE(MachinePool::hashCpuConfig(cpu_a),
              MachinePool::hashCpuConfig(cpu_c));

    gpusim::GpuConfig gpu_a = testGpu();
    gpusim::GpuConfig gpu_b = gpu_a;
    gpu_b.sm_count /= 2;
    EXPECT_NE(MachinePool::hashGpuConfig(gpu_a),
              MachinePool::hashGpuConfig(gpu_b));
}

TEST_F(MachinePoolTest, DisabledPoolStillLeasesWorkingMachines)
{
    MachinePool::global().configure({false, ""});
    MachinePool::global().reset();
    auto &pool = MachinePool::global();
    EXPECT_FALSE(pool.enabled());
    auto lease = pool.acquireCpu(testCpu(), Affinity::System);
    ASSERT_TRUE(static_cast<bool>(lease));
    EXPECT_FALSE(lease->run(testPrograms(), 2).thread_cycles.empty());
}

TEST_F(MachinePoolTest, ConcurrentLeaseAndMaterializeIsSafe)
{
    useSnapshots();
    auto &pool = MachinePool::global();
    const auto programs = testPrograms();
    constexpr int n_threads = 4;
    constexpr int n_iters = 8;
    std::vector<std::vector<std::uint64_t>> results(n_threads);
    std::vector<std::thread> workers;
    workers.reserve(n_threads);
    for (int t = 0; t < n_threads; ++t) {
        workers.emplace_back([&, t] {
            for (int i = 0; i < n_iters; ++i) {
                // Same shared key (51) every iteration, plus a
                // per-thread key, so the claim set sees both
                // contended and uncontended paths.
                auto lease =
                    pool.acquireCpu(testCpu(), Affinity::System);
                pool.materializeCpu(*lease, 51, programs);
                pool.materializeCpu(*lease, 100 + t, programs);
                auto run =
                    lease->run(programs, 2, 51).thread_cycles;
                if (results[t].empty())
                    results[t] = run;
                else
                    ASSERT_EQ(results[t], run);
            }
        });
    }
    for (auto &w : workers)
        w.join();
    // Every thread simulated the same programs on the same config.
    for (int t = 1; t < n_threads; ++t)
        EXPECT_EQ(results[t], results[0]);
}

} // namespace
} // namespace syncperf::core
