/**
 * @file
 * Determinism tests for parallel campaign execution: a campaign at
 * --jobs N must produce byte-identical CSVs and manifest.json to the
 * serial run, and resume must interoperate across job counts. Also
 * part of the `tsan` preset, where running the full pipeline at
 * jobs 4 doubles as a race detector for the executor, manifest, and
 * logging layers.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <unistd.h>

#include "core/campaign.hh"

namespace syncperf::core
{
namespace
{

namespace fs = std::filesystem;

/** Every regular file under @p dir, as relative path -> bytes. */
std::map<std::string, std::string>
snapshotTree(const fs::path &dir)
{
    std::map<std::string, std::string> out;
    if (!fs::exists(dir))
        return out;
    for (const auto &e : fs::recursive_directory_iterator(dir)) {
        if (!e.is_regular_file())
            continue;
        std::ifstream in(e.path(), std::ios::binary);
        std::ostringstream bytes;
        bytes << in.rdbuf();
        out[fs::relative(e.path(), dir).string()] = bytes.str();
    }
    return out;
}

void
expectIdenticalTrees(const std::map<std::string, std::string> &serial,
                     const std::map<std::string, std::string> &parallel)
{
    ASSERT_FALSE(serial.empty());
    ASSERT_EQ(serial.size(), parallel.size());
    for (const auto &[file, bytes] : serial) {
        const auto it = parallel.find(file);
        ASSERT_NE(it, parallel.end()) << file << " missing";
        EXPECT_EQ(bytes, it->second) << file << " differs";
    }
}

class CampaignParallelTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        base_ = fs::temp_directory_path() /
                ("syncperf_campaign_parallel_" +
                 std::to_string(::getpid()));
        fs::remove_all(base_);
        cpu_ = cpusim::CpuConfig::system3();
        cpu_.cores_per_socket = 2; // keep the sweep cheap
        gpu_ = gpusim::GpuConfig::rtx4090();
        gpu_.sm_count = 4;
    }

    void
    TearDown() override
    {
        fs::remove_all(base_);
    }

    CampaignOptions
    options(const char *tag, int jobs, bool resume = false) const
    {
        CampaignOptions o;
        o.output_dir = (base_ / tag).string();
        o.quick = true;
        o.jobs = jobs;
        o.resume = resume;
        return o;
    }

    static MeasurementConfig
    tinyProtocol()
    {
        auto cfg = MeasurementConfig::simDefaults();
        cfg.runs = 1;
        cfg.attempts = 1;
        cfg.n_iter = 5;
        cfg.n_unroll = 2;
        return cfg;
    }

    fs::path base_;
    cpusim::CpuConfig cpu_;
    gpusim::GpuConfig gpu_;
};

TEST_F(CampaignParallelTest, OmpOutputIsByteIdenticalAcrossJobCounts)
{
    const auto serial =
        runOmpCampaign(cpu_, tinyProtocol(), options("serial", 1));
    const auto parallel =
        runOmpCampaign(cpu_, tinyProtocol(), options("parallel", 4));

    EXPECT_TRUE(serial.ok());
    EXPECT_TRUE(parallel.ok());
    EXPECT_EQ(serial.experiments_run, parallel.experiments_run);
    EXPECT_EQ(serial.files_written.size(),
              parallel.files_written.size());

    expectIdenticalTrees(snapshotTree(base_ / "serial"),
                         snapshotTree(base_ / "parallel"));
}

TEST_F(CampaignParallelTest, CudaOutputIsByteIdenticalAcrossJobCounts)
{
    auto protocol = MeasurementConfig::simGpuDefaults();
    protocol.runs = 1;
    protocol.attempts = 1;
    protocol.n_iter = 5;
    protocol.n_unroll = 2;

    const auto serial =
        runCudaCampaign(gpu_, protocol, options("serial", 1));
    const auto parallel =
        runCudaCampaign(gpu_, protocol, options("parallel", 4));

    EXPECT_TRUE(serial.ok());
    EXPECT_TRUE(parallel.ok());
    EXPECT_EQ(serial.experiments_run, parallel.experiments_run);

    expectIdenticalTrees(snapshotTree(base_ / "serial"),
                         snapshotTree(base_ / "parallel"));
}

TEST_F(CampaignParallelTest, FilesWrittenKeepPointOrderAtAnyJobCount)
{
    const auto serial =
        runOmpCampaign(cpu_, tinyProtocol(), options("serial", 1));
    const auto parallel =
        runOmpCampaign(cpu_, tinyProtocol(), options("parallel", 4));
    ASSERT_EQ(serial.files_written.size(),
              parallel.files_written.size());
    for (std::size_t i = 0; i < serial.files_written.size(); ++i) {
        EXPECT_EQ(fs::path(serial.files_written[i]).filename(),
                  fs::path(parallel.files_written[i]).filename())
            << "commit order diverged at index " << i;
    }
}

TEST_F(CampaignParallelTest, SerialRunResumesUnderParallelExecution)
{
    // A jobs=1 campaign's journal must be fully honored by a jobs=4
    // resume (the config hash does not depend on the job count).
    const auto first =
        runOmpCampaign(cpu_, tinyProtocol(), options("resume", 1));
    ASSERT_TRUE(first.ok());

    const auto second = runOmpCampaign(
        cpu_, tinyProtocol(), options("resume", 4, /*resume=*/true));
    EXPECT_TRUE(second.ok());
    EXPECT_EQ(second.experiments_run, 0);
    EXPECT_EQ(second.experiments_skipped, first.experiments_run);
}

TEST_F(CampaignParallelTest, LoopBatchingIsByteIdenticalAcrossJobCounts)
{
    // The steady-state loop batcher must be invisible in every
    // artifact: default vs --no-loop-batch trees are byte-identical,
    // serial and parallel alike, telemetry included (the full matrix
    // with sharding lives in scripts/test_loop_batch_campaign.sh).
    auto batched = tinyProtocol();
    batched.telemetry = true;
    auto stepped = batched;
    stepped.loop_batch = false;

    const auto on_serial =
        runOmpCampaign(cpu_, batched, options("lb_on_serial", 1));
    const auto off_serial =
        runOmpCampaign(cpu_, stepped, options("lb_off_serial", 1));
    const auto on_parallel =
        runOmpCampaign(cpu_, batched, options("lb_on_parallel", 4));
    EXPECT_TRUE(on_serial.ok());
    EXPECT_TRUE(off_serial.ok());
    EXPECT_TRUE(on_parallel.ok());

    const auto reference = snapshotTree(base_ / "lb_on_serial");
    expectIdenticalTrees(reference,
                         snapshotTree(base_ / "lb_off_serial"));
    expectIdenticalTrees(reference,
                         snapshotTree(base_ / "lb_on_parallel"));

    // The side channel reports engagement even though no artifact
    // may show it.
    std::uint64_t batched_iters = 0;
    for (const auto &lb : on_serial.loop_batch)
        batched_iters += lb.counters.batched_iters;
    EXPECT_GT(batched_iters, 0u);
    for (const auto &lb : off_serial.loop_batch)
        EXPECT_EQ(lb.counters.batched_iters, 0u);
}

TEST_F(CampaignParallelTest, OversubscribedJobCountStaysDeterministic)
{
    // More workers than points: the executor must not deadlock or
    // reorder anything.
    const auto serial =
        runOmpCampaign(cpu_, tinyProtocol(), options("serial", 1));
    const auto flooded =
        runOmpCampaign(cpu_, tinyProtocol(), options("flooded", 64));
    EXPECT_TRUE(flooded.ok());
    EXPECT_EQ(serial.experiments_run, flooded.experiments_run);
    expectIdenticalTrees(snapshotTree(base_ / "serial"),
                         snapshotTree(base_ / "flooded"));
}

} // namespace
} // namespace syncperf::core
