/**
 * @file
 * Tests for the cpusim measurement target (program construction and
 * end-to-end measurements).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "core/cpusim_target.hh"

namespace syncperf::core
{
namespace
{

MeasurementConfig
fastConfig()
{
    auto cfg = MeasurementConfig::simDefaults();
    cfg.runs = 1;
    cfg.attempts = 1;
    cfg.n_iter = 20;
    cfg.n_unroll = 2;
    return cfg;
}

TEST(CpuSimTargetPrograms, TestHasOneMorePrimitiveThanBaseline)
{
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::Barrier;
    const auto pair = CpuSimTarget::buildPrograms(exp, 3, 10);
    ASSERT_EQ(pair.baseline.size(), 3u);
    ASSERT_EQ(pair.test.size(), 3u);
    EXPECT_EQ(pair.baseline[0].body.size(), 1u);
    EXPECT_EQ(pair.test[0].body.size(), 2u);
    EXPECT_EQ(pair.baseline[0].iterations, 10);
}

TEST(CpuSimTargetPrograms, ArrayExperimentsUsePerThreadSlots)
{
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::AtomicUpdate;
    exp.location = Location::PrivateArray;
    exp.stride = 4;
    exp.dtype = DataType::UInt64;
    const auto pair = CpuSimTarget::buildPrograms(exp, 2, 1);
    const auto a0 = pair.baseline[0].body[0].addr;
    const auto a1 = pair.baseline[1].body[0].addr;
    EXPECT_EQ(a1 - a0, 4u * sizeof(unsigned long long));
}

TEST(CpuSimTargetPrograms, AtomicWriteTestTargetsSecondLine)
{
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::AtomicWrite;
    const auto pair = CpuSimTarget::buildPrograms(exp, 1, 1);
    ASSERT_EQ(pair.test[0].body.size(), 2u);
    const auto a = pair.test[0].body[0].addr;
    const auto b = pair.test[0].body[1].addr;
    EXPECT_GE(b > a ? b - a : a - b, 64u) << "separate cache lines";
}

TEST(CpuSimTargetPrograms, AtomicReadBaselineIsPlainLoad)
{
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::AtomicRead;
    const auto pair = CpuSimTarget::buildPrograms(exp, 1, 1);
    EXPECT_EQ(pair.baseline[0].body[0].kind, cpusim::CpuOpKind::Load);
    EXPECT_EQ(pair.test[0].body[0].kind, cpusim::CpuOpKind::AtomicLoad);
}

TEST(CpuSimTargetPrograms, CriticalWrapsBodyInLock)
{
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::Critical;
    const auto pair = CpuSimTarget::buildPrograms(exp, 1, 1);
    const auto &body = pair.baseline[0].body;
    ASSERT_EQ(body.size(), 5u);
    EXPECT_EQ(body.front().kind, cpusim::CpuOpKind::LockAcquire);
    EXPECT_EQ(body.back().kind, cpusim::CpuOpKind::LockRelease);
}

TEST(CpuSimTargetPrograms, FlushTestFencesBetweenIncrements)
{
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::Flush;
    exp.location = Location::PrivateArray;
    const auto pair = CpuSimTarget::buildPrograms(exp, 1, 1);
    EXPECT_EQ(pair.baseline[0].body.size(), 6u);
    ASSERT_EQ(pair.test[0].body.size(), 7u);
    EXPECT_EQ(pair.test[0].body[3].kind, cpusim::CpuOpKind::Fence);
}

TEST(CpuSimTarget, BarrierMeasurementIsPositive)
{
    CpuSimTarget target(cpusim::CpuConfig::system3(), fastConfig());
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::Barrier;
    const auto m = target.measure(exp, 4);
    EXPECT_GT(m.per_op_seconds, 0.0);
}

TEST(CpuSimTarget, AtomicReadMeasuresAsFree)
{
    CpuSimTarget target(cpusim::CpuConfig::system2(), fastConfig());
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::AtomicRead;
    const auto m = target.measure(exp, 4);
    EXPECT_DOUBLE_EQ(m.per_op_seconds, 0.0);
    EXPECT_TRUE(std::isinf(m.opsPerSecondPerThread()));
}

TEST(CpuSimTarget, CaptureCostsSameAsUpdate)
{
    CpuSimTarget tu(cpusim::CpuConfig::system3(), fastConfig());
    CpuSimTarget tc(cpusim::CpuConfig::system3(), fastConfig());
    OmpExperiment u;
    u.primitive = OmpPrimitive::AtomicUpdate;
    OmpExperiment c;
    c.primitive = OmpPrimitive::AtomicCapture;
    EXPECT_DOUBLE_EQ(tu.measure(u, 4).per_op_seconds,
                     tc.measure(c, 4).per_op_seconds);
}

TEST(CpuSimTarget, DeterministicForJitterFreeSystems)
{
    CpuSimTarget a(cpusim::CpuConfig::system2(), fastConfig(), 1);
    CpuSimTarget b(cpusim::CpuConfig::system2(), fastConfig(), 99);
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::AtomicUpdate;
    EXPECT_DOUBLE_EQ(a.measure(exp, 8).per_op_seconds,
                     b.measure(exp, 8).per_op_seconds);
}

TEST(CpuSimTarget, System3JitterVariesAcrossSeeds)
{
    CpuSimTarget a(cpusim::CpuConfig::system3(), fastConfig(), 1);
    CpuSimTarget b(cpusim::CpuConfig::system3(), fastConfig(), 99);
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::AtomicWrite;
    EXPECT_NE(a.measure(exp, 8).per_op_seconds,
              b.measure(exp, 8).per_op_seconds);
}

TEST(CpuSimTarget, OversubscriptionIsFatal)
{
    CpuSimTarget target(cpusim::CpuConfig::system3(), fastConfig());
    OmpExperiment exp;
    ScopedLogCapture capture;
    EXPECT_THROW(target.measure(exp, 33), LogDeathException);
}

} // namespace
} // namespace syncperf::core
