/**
 * @file
 * End-to-end resilience tests for the campaign driver: graceful
 * degradation under injected write failures, checkpoint/resume after
 * a mid-campaign SIGKILL, and journal integrity throughout.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <filesystem>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "common/atomic_file.hh"
#include "core/campaign.hh"
#include "core/manifest.hh"
#include "sim/fault_injector.hh"

namespace syncperf::core
{
namespace
{

namespace fs = std::filesystem;

class CampaignResilienceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("syncperf_campaign_resilience_" +
                std::to_string(::getpid()));
        fs::remove_all(dir_);
        cpu_ = cpusim::CpuConfig::system3();
        cpu_.cores_per_socket = 2; // keep the sweep cheap
        system_dir_ = dir_ / sanitizeName(cpu_.name);
    }

    void
    TearDown() override
    {
        AtomicFile::setFaultHook(nullptr);
        fs::remove_all(dir_);
    }

    CampaignOptions
    options(bool resume = false) const
    {
        CampaignOptions o;
        o.output_dir = dir_.string();
        o.quick = true;
        o.resume = resume;
        return o;
    }

    static MeasurementConfig
    tinyProtocol()
    {
        auto cfg = MeasurementConfig::simDefaults();
        cfg.runs = 1;
        cfg.attempts = 1;
        cfg.n_iter = 5;
        cfg.n_unroll = 2;
        return cfg;
    }

    int
    countTempFiles() const
    {
        int n = 0;
        if (!fs::exists(system_dir_))
            return 0;
        for (const auto &e : fs::directory_iterator(system_dir_))
            n += e.path().extension() == ".tmp" ? 1 : 0;
        return n;
    }

    fs::path dir_;
    fs::path system_dir_;
    cpusim::CpuConfig cpu_;
};

TEST_F(CampaignResilienceTest, CleanRunJournalsEveryExperiment)
{
    const auto result = runOmpCampaign(cpu_, tinyProtocol(), options());
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.experiments_skipped, 0);
    EXPECT_GT(result.experiments_run, 20);

    const auto loaded = Manifest::load(system_dir_ / "manifest.json");
    ASSERT_TRUE(loaded.isOk());
    EXPECT_EQ(loaded.value().completeCount(), result.experiments_run);
    EXPECT_EQ(loaded.value().failedCount(), 0);
    EXPECT_EQ(countTempFiles(), 0);
}

TEST_F(CampaignResilienceTest, ResumeSkipsEverythingAfterCleanRun)
{
    const auto first = runOmpCampaign(cpu_, tinyProtocol(), options());
    ASSERT_TRUE(first.ok());

    const auto second =
        runOmpCampaign(cpu_, tinyProtocol(), options(/*resume=*/true));
    EXPECT_TRUE(second.ok());
    EXPECT_EQ(second.experiments_run, 0);
    EXPECT_EQ(second.experiments_skipped, first.experiments_run);
    EXPECT_TRUE(second.files_written.empty());
}

TEST_F(CampaignResilienceTest, ChangedProtocolInvalidatesTheJournal)
{
    const auto first = runOmpCampaign(cpu_, tinyProtocol(), options());
    ASSERT_TRUE(first.ok());

    auto protocol = tinyProtocol();
    protocol.n_iter *= 2; // different config hash for every point
    const auto second =
        runOmpCampaign(cpu_, protocol, options(/*resume=*/true));
    EXPECT_TRUE(second.ok());
    EXPECT_EQ(second.experiments_skipped, 0);
    EXPECT_EQ(second.experiments_run, first.experiments_run);
}

TEST_F(CampaignResilienceTest,
       InjectedWriteFailureDegradesGracefully)
{
    // Ops per successful experiment: CSV open, CSV commit, manifest
    // open, manifest commit. Failing op 5 (count 1) hits the second
    // experiment's CSV open and nothing else.
    sim::FaultInjector faults;
    faults.failWrites(5, 1);
    sim::FaultInjector::Scope scope(faults);

    const auto result = runOmpCampaign(cpu_, tinyProtocol(), options());
    EXPECT_FALSE(result.ok());
    ASSERT_EQ(result.failures.size(), 1u);
    EXPECT_EQ(result.failures[0].file, "omp_critical.csv");
    EXPECT_NE(result.failures[0].error.find("fault_injected"),
              std::string::npos);
    EXPECT_GT(result.experiments_run, 20);
    EXPECT_EQ(result.files_written.size(),
              static_cast<std::size_t>(result.experiments_run));

    // The failed experiment produced no file, truncated or otherwise.
    EXPECT_FALSE(fs::exists(system_dir_ / "omp_critical.csv"));
    EXPECT_EQ(countTempFiles(), 0);

    // ... and its failure is journaled with the cause.
    const auto loaded = Manifest::load(system_dir_ / "manifest.json");
    ASSERT_TRUE(loaded.isOk());
    EXPECT_EQ(loaded.value().failedCount(), 1);
    bool found = false;
    for (const auto &entry : loaded.value().entries()) {
        if (entry.key == "omp_critical.csv") {
            found = true;
            EXPECT_FALSE(entry.complete);
            EXPECT_NE(entry.error.find("fault_injected"),
                      std::string::npos);
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(CampaignResilienceTest, ResumeRetriesOnlyTheFailedExperiment)
{
    {
        sim::FaultInjector faults;
        faults.failWrites(5, 1);
        sim::FaultInjector::Scope scope(faults);
        const auto degraded =
            runOmpCampaign(cpu_, tinyProtocol(), options());
        ASSERT_EQ(degraded.failures.size(), 1u);
    }

    const auto resumed =
        runOmpCampaign(cpu_, tinyProtocol(), options(/*resume=*/true));
    EXPECT_TRUE(resumed.ok());
    EXPECT_EQ(resumed.experiments_run, 1);
    ASSERT_EQ(resumed.files_written.size(), 1u);
    EXPECT_TRUE(fs::exists(system_dir_ / "omp_critical.csv"));

    const auto loaded = Manifest::load(system_dir_ / "manifest.json");
    ASSERT_TRUE(loaded.isOk());
    EXPECT_EQ(loaded.value().failedCount(), 0);
}

TEST_F(CampaignResilienceTest,
       InvalidMeasurementIsJournaledNotFatal)
{
    // Poison every timed launch from the start of the third
    // experiment on, but only transiently (enough to exhaust a tiny
    // retry budget on one experiment, not the rest).
    auto protocol = tinyProtocol();
    protocol.max_retries = 2;

    sim::FaultInjector faults;
    // Each experiment measures several thread counts; each point
    // issues warm + timed launches. Poison a window big enough to
    // sink one experiment's retry budget.
    faults.poisonMeasurements(5, 8);
    sim::FaultInjector::Scope scope(faults);

    const auto result = runOmpCampaign(cpu_, protocol, options());
    EXPECT_FALSE(result.ok());
    ASSERT_GE(result.failures.size(), 1u);
    EXPECT_NE(result.failures[0].error.find("non-finite"),
              std::string::npos);
    // Everything else still ran.
    EXPECT_GT(result.experiments_run, 20);
    EXPECT_EQ(countTempFiles(), 0);
}

/**
 * The acceptance-criterion round trip: SIGKILL a campaign mid-run,
 * rerun with --resume, and verify it completes without redoing
 * journaled work and without leaving truncated or temporary files.
 */
TEST_F(CampaignResilienceTest, KillResumeRoundTrip)
{
    const int kill_after_commits = 5;

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Child: die abruptly while committing CSV number 6. At that
        // instant its .tmp holds complete content but the rename has
        // not happened and the manifest knows only 5 completions.
        int csv_commits = 0;
        AtomicFile::setFaultHook(
            [&](const fs::path &path, std::string_view op) {
                if (op == "commit" && path.extension() == ".csv" &&
                    ++csv_commits > kill_after_commits) {
                    ::kill(::getpid(), SIGKILL);
                }
                return Status::ok();
            });
        (void)runOmpCampaign(cpu_, tinyProtocol(), options());
        ::_exit(42); // not reached: the campaign dies first
    }

    int wstatus = 0;
    ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
    ASSERT_TRUE(WIFSIGNALED(wstatus));
    ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

    // The interrupted run left a consistent journal and a stray temp.
    const auto partial = Manifest::load(system_dir_ / "manifest.json");
    ASSERT_TRUE(partial.isOk());
    EXPECT_EQ(partial.value().completeCount(), kill_after_commits);
    EXPECT_EQ(countTempFiles(), 1);

    // Resume: journaled-complete experiments are skipped, the rest
    // (including the one killed mid-commit) run to completion.
    const auto resumed =
        runOmpCampaign(cpu_, tinyProtocol(), options(/*resume=*/true));
    EXPECT_TRUE(resumed.ok());
    EXPECT_EQ(resumed.experiments_skipped, kill_after_commits);
    EXPECT_GT(resumed.experiments_run, 0);

    // Zero truncated or temporary CSVs anywhere in the results tree.
    EXPECT_EQ(countTempFiles(), 0);
    const auto final_manifest =
        Manifest::load(system_dir_ / "manifest.json");
    ASSERT_TRUE(final_manifest.isOk());
    EXPECT_EQ(final_manifest.value().failedCount(), 0);
    EXPECT_EQ(final_manifest.value().completeCount(),
              kill_after_commits + resumed.experiments_run);
    for (const auto &entry : final_manifest.value().entries()) {
        const fs::path csv = system_dir_ / entry.key;
        EXPECT_TRUE(fs::exists(csv)) << entry.key;
        EXPECT_GT(fs::file_size(csv), 0u) << entry.key;
    }
}

/**
 * The same round trip with four concurrent experiments and batched
 * manifest checkpointing. Under --jobs N the journal may lag CSV
 * commits (it is flushed every checkpoint_every commits), so a crash
 * can leave committed-but-unjournaled CSVs and several in-flight
 * temp files at once; resume must redo that work, never trust it.
 */
TEST_F(CampaignResilienceTest, KillResumeRoundTripUnderParallelExecution)
{
    CampaignOptions parallel = options();
    parallel.jobs = 4;
    parallel.checkpoint_every = 3;

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Child: several workers commit CSVs concurrently; die during
        // the seventh commit, whichever worker gets there.
        std::atomic<int> csv_commits{0};
        AtomicFile::setFaultHook(
            [&](const fs::path &path, std::string_view op) {
                if (op == "commit" && path.extension() == ".csv" &&
                    csv_commits.fetch_add(1) + 1 > 6) {
                    ::kill(::getpid(), SIGKILL);
                }
                return Status::ok();
            });
        (void)runOmpCampaign(cpu_, tinyProtocol(), parallel);
        ::_exit(42); // not reached: the campaign dies first
    }

    int wstatus = 0;
    ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
    ASSERT_TRUE(WIFSIGNALED(wstatus));
    ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

    // Crash-safety invariant under concurrency: the journal may lag
    // the CSVs but never lead them -- every journaled completion has
    // its file on disk. (The manifest may not exist at all if the
    // crash beat the first checkpoint; that is equally safe.)
    const auto partial = Manifest::load(system_dir_ / "manifest.json");
    if (partial.isOk()) {
        for (const auto &entry : partial.value().entries()) {
            if (entry.complete) {
                EXPECT_TRUE(fs::exists(system_dir_ / entry.key))
                    << entry.key;
            }
        }
    }

    CampaignOptions resume_opts = options(/*resume=*/true);
    resume_opts.jobs = 4;
    resume_opts.checkpoint_every = 3;
    const auto resumed =
        runOmpCampaign(cpu_, tinyProtocol(), resume_opts);
    EXPECT_TRUE(resumed.ok());
    EXPECT_GT(resumed.experiments_run, 0);

    // Zero truncated or temporary CSVs anywhere in the results tree.
    EXPECT_EQ(countTempFiles(), 0);
    const auto final_manifest =
        Manifest::load(system_dir_ / "manifest.json");
    ASSERT_TRUE(final_manifest.isOk());
    EXPECT_EQ(final_manifest.value().failedCount(), 0);
    EXPECT_EQ(final_manifest.value().completeCount(),
              resumed.experiments_run + resumed.experiments_skipped);
    for (const auto &entry : final_manifest.value().entries()) {
        const fs::path csv = system_dir_ / entry.key;
        EXPECT_TRUE(fs::exists(csv)) << entry.key;
        EXPECT_GT(fs::file_size(csv), 0u) << entry.key;
    }
}

TEST_F(CampaignResilienceTest, CudaCampaignSharesTheResilienceLayer)
{
    gpusim::GpuConfig gpu = gpusim::GpuConfig::rtx4090();
    gpu.sm_count = 4;
    auto protocol = MeasurementConfig::simGpuDefaults();
    protocol.runs = 1;
    protocol.attempts = 1;
    protocol.n_iter = 5;
    protocol.n_unroll = 2;

    sim::FaultInjector faults;
    faults.failWrites(5, 1); // second experiment's CSV open
    sim::FaultInjector::Scope scope(faults);

    const auto result = runCudaCampaign(gpu, protocol, options());
    EXPECT_FALSE(result.ok());
    ASSERT_EQ(result.failures.size(), 1u);
    EXPECT_EQ(result.failures[0].file, "cuda_syncwarp.csv");
    EXPECT_GT(result.experiments_run, 10);

    const auto resumed =
        runCudaCampaign(gpu, protocol, options(/*resume=*/true));
    EXPECT_TRUE(resumed.ok());
    EXPECT_EQ(resumed.experiments_run, 1);
    EXPECT_EQ(resumed.experiments_skipped, result.experiments_run);
}

} // namespace
} // namespace syncperf::core
