/**
 * @file
 * Tests for the baseline/test differencing protocol.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "core/protocol.hh"

namespace syncperf::core
{
namespace
{

MeasurementConfig
tinyConfig()
{
    MeasurementConfig cfg;
    cfg.runs = 3;
    cfg.attempts = 3;
    cfg.n_iter = 10;
    cfg.n_unroll = 10;
    cfg.max_retries = 5;
    return cfg;
}

TEST(Protocol, SubtractsBaselineAndDividesByOps)
{
    const auto cfg = tinyConfig();
    // baseline = 1 ms, test = 2 ms: one primitive costs
    // 1 ms / 100 ops = 10 us.
    const auto m = measurePrimitive(
        [] { return std::vector<double>{1e-3}; },
        [] { return std::vector<double>{2e-3}; }, cfg);
    EXPECT_NEAR(m.per_op_seconds, 1e-5, 1e-12);
    EXPECT_DOUBLE_EQ(m.stddev_seconds, 0.0);
    EXPECT_EQ(m.run_values.size(), 3u);
    EXPECT_EQ(m.retries, 0);
}

TEST(Protocol, UsesMaxAcrossThreads)
{
    const auto cfg = tinyConfig();
    const auto m = measurePrimitive(
        [] { return std::vector<double>{1e-3, 2e-3, 1.5e-3}; },
        [] { return std::vector<double>{1e-3, 3e-3, 2e-3}; }, cfg);
    // (3 ms - 2 ms) / 100.
    EXPECT_NEAR(m.per_op_seconds, 1e-5, 1e-12);
}

TEST(Protocol, RetriesWhenTestBeatsBaseline)
{
    const auto cfg = tinyConfig();
    int test_calls = 0;
    const auto m = measurePrimitive(
        [] { return std::vector<double>{2e-3}; },
        [&] {
            // First call of each run looks faulty (test < baseline).
            ++test_calls;
            return std::vector<double>{test_calls % 3 == 1 ? 1e-3
                                                           : 3e-3};
        },
        cfg);
    EXPECT_GT(m.retries, 0);
    EXPECT_NEAR(m.per_op_seconds, 1e-5, 1e-12);
}

TEST(Protocol, RetryBudgetExhaustionWarnsAndAccepts)
{
    auto cfg = tinyConfig();
    cfg.runs = 1;
    cfg.attempts = 1;
    cfg.max_retries = 2;
    ScopedLogCapture capture;
    const auto m = measurePrimitive(
        [] { return std::vector<double>{2e-3}; },
        [] { return std::vector<double>{1e-3}; }, cfg);
    // Negative difference accepted after exhausting retries.
    EXPECT_LT(m.per_op_seconds, 0.0);
    EXPECT_EQ(m.retries, 2);
    bool warned = false;
    for (const auto &[level, msg] : capture.messages())
        warned |= (level == LogLevel::Warn);
    EXPECT_TRUE(warned);
}

TEST(Protocol, MedianOverRunsRejectsOutlierRun)
{
    auto cfg = tinyConfig();
    cfg.runs = 3;
    cfg.attempts = 1;
    int run = 0;
    const auto m = measurePrimitive(
        [] { return std::vector<double>{1e-3}; },
        [&] {
            ++run;
            // One run is wildly slow; the median ignores it.
            return std::vector<double>{run == 2 ? 100e-3 : 2e-3};
        },
        cfg);
    EXPECT_NEAR(m.per_op_seconds, 1e-5, 1e-12);
    EXPECT_GT(m.stddev_seconds, 0.0);
}

TEST(Protocol, MedianWithinRunRejectsOutlierAttempt)
{
    auto cfg = tinyConfig();
    cfg.runs = 1;
    cfg.attempts = 5;
    int call = 0;
    const auto m = measurePrimitive(
        [] { return std::vector<double>{1e-3}; },
        [&] {
            ++call;
            return std::vector<double>{call == 3 ? 50e-3 : 2e-3};
        },
        cfg);
    EXPECT_NEAR(m.per_op_seconds, 1e-5, 1e-12);
}

TEST(Protocol, ZeroDifferenceGivesInfiniteThroughput)
{
    const auto cfg = tinyConfig();
    const auto m = measurePrimitive(
        [] { return std::vector<double>{1e-3}; },
        [] { return std::vector<double>{1e-3}; }, cfg);
    EXPECT_DOUBLE_EQ(m.per_op_seconds, 0.0);
    EXPECT_TRUE(std::isinf(m.opsPerSecondPerThread()));
}

TEST(Protocol, ThroughputIsReciprocal)
{
    Measurement m;
    m.per_op_seconds = 2e-9;
    EXPECT_DOUBLE_EQ(m.opsPerSecondPerThread(), 5e8);
}

TEST(Protocol, OpsPerMeasurementMultiplies)
{
    MeasurementConfig cfg;
    cfg.n_iter = 1000;
    cfg.n_unroll = 100;
    EXPECT_EQ(cfg.opsPerMeasurement(), 100000L);
}

TEST(Protocol, PaperDefaultsMatchSectionFour)
{
    const auto cfg = MeasurementConfig::paperDefaults();
    EXPECT_EQ(cfg.runs, 9);
    EXPECT_EQ(cfg.attempts, 7);
    EXPECT_EQ(cfg.n_iter, 1000);
    EXPECT_EQ(cfg.n_unroll, 100);
}

TEST(Protocol, EmptyThreadTimesPanics)
{
    const auto cfg = tinyConfig();
    ScopedLogCapture capture;
    EXPECT_THROW(measurePrimitive([] { return std::vector<double>{}; },
                                  [] { return std::vector<double>{}; },
                                  cfg),
                 LogDeathException);
}

} // namespace
} // namespace syncperf::core
