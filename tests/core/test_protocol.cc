/**
 * @file
 * Tests for the baseline/test differencing protocol.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/protocol.hh"

namespace syncperf::core
{
namespace
{

MeasurementConfig
tinyConfig()
{
    MeasurementConfig cfg;
    cfg.runs = 3;
    cfg.attempts = 3;
    cfg.n_iter = 10;
    cfg.n_unroll = 10;
    cfg.max_retries = 5;
    return cfg;
}

TEST(Protocol, SubtractsBaselineAndDividesByOps)
{
    const auto cfg = tinyConfig();
    // baseline = 1 ms, test = 2 ms: one primitive costs
    // 1 ms / 100 ops = 10 us.
    const auto m = measurePrimitive(
        [](std::vector<double> &out) { out = {1e-3}; },
        [](std::vector<double> &out) { out = {2e-3}; }, cfg);
    EXPECT_NEAR(m.per_op_seconds, 1e-5, 1e-12);
    EXPECT_DOUBLE_EQ(m.stddev_seconds, 0.0);
    EXPECT_EQ(m.run_values.size(), 3u);
    EXPECT_EQ(m.retries, 0);
}

TEST(Protocol, UsesMaxAcrossThreads)
{
    const auto cfg = tinyConfig();
    const auto m = measurePrimitive(
        [](std::vector<double> &out) { out = {1e-3, 2e-3, 1.5e-3}; },
        [](std::vector<double> &out) { out = {1e-3, 3e-3, 2e-3}; },
        cfg);
    // (3 ms - 2 ms) / 100.
    EXPECT_NEAR(m.per_op_seconds, 1e-5, 1e-12);
}

TEST(Protocol, RetriesWhenTestBeatsBaseline)
{
    const auto cfg = tinyConfig();
    int test_calls = 0;
    const auto m = measurePrimitive(
        [](std::vector<double> &out) { out = {2e-3}; },
        [&](std::vector<double> &out) {
            // First call of each run looks faulty (test < baseline).
            ++test_calls;
            out = {test_calls % 3 == 1 ? 1e-3 : 3e-3};
        },
        cfg);
    EXPECT_GT(m.retries, 0);
    EXPECT_NEAR(m.per_op_seconds, 1e-5, 1e-12);
}

TEST(Protocol, RetryBudgetExhaustionWarnsAndAccepts)
{
    auto cfg = tinyConfig();
    cfg.runs = 1;
    cfg.attempts = 1;
    cfg.max_retries = 2;
    ScopedLogCapture capture;
    const auto m = measurePrimitive(
        [](std::vector<double> &out) { out = {2e-3}; },
        [](std::vector<double> &out) { out = {1e-3}; }, cfg);
    // Negative difference accepted after exhausting retries.
    EXPECT_LT(m.per_op_seconds, 0.0);
    EXPECT_EQ(m.retries, 2);
    bool warned = false;
    for (const auto &[level, msg] : capture.messages())
        warned |= (level == LogLevel::Warn);
    EXPECT_TRUE(warned);
}

TEST(Protocol, MedianOverRunsRejectsOutlierRun)
{
    auto cfg = tinyConfig();
    cfg.runs = 3;
    cfg.attempts = 1;
    int run = 0;
    const auto m = measurePrimitive(
        [](std::vector<double> &out) { out = {1e-3}; },
        [&](std::vector<double> &out) {
            ++run;
            // One run is wildly slow; the median ignores it.
            out = {run == 2 ? 100e-3 : 2e-3};
        },
        cfg);
    EXPECT_NEAR(m.per_op_seconds, 1e-5, 1e-12);
    EXPECT_GT(m.stddev_seconds, 0.0);
}

TEST(Protocol, MedianWithinRunRejectsOutlierAttempt)
{
    auto cfg = tinyConfig();
    cfg.runs = 1;
    cfg.attempts = 5;
    int call = 0;
    const auto m = measurePrimitive(
        [](std::vector<double> &out) { out = {1e-3}; },
        [&](std::vector<double> &out) {
            ++call;
            out = {call == 3 ? 50e-3 : 2e-3};
        },
        cfg);
    EXPECT_NEAR(m.per_op_seconds, 1e-5, 1e-12);
}

TEST(Protocol, ZeroDifferenceGivesInfiniteThroughput)
{
    const auto cfg = tinyConfig();
    const auto m = measurePrimitive(
        [](std::vector<double> &out) { out = {1e-3}; },
        [](std::vector<double> &out) { out = {1e-3}; }, cfg);
    EXPECT_DOUBLE_EQ(m.per_op_seconds, 0.0);
    EXPECT_TRUE(std::isinf(m.opsPerSecondPerThread()));
}

TEST(Protocol, ThroughputIsReciprocal)
{
    Measurement m;
    m.per_op_seconds = 2e-9;
    EXPECT_DOUBLE_EQ(m.opsPerSecondPerThread(), 5e8);
}

TEST(Protocol, OpsPerMeasurementMultiplies)
{
    MeasurementConfig cfg;
    cfg.n_iter = 1000;
    cfg.n_unroll = 100;
    EXPECT_EQ(cfg.opsPerMeasurement(), 100000L);
}

TEST(Protocol, PaperDefaultsMatchSectionFour)
{
    const auto cfg = MeasurementConfig::paperDefaults();
    EXPECT_EQ(cfg.runs, 9);
    EXPECT_EQ(cfg.attempts, 7);
    EXPECT_EQ(cfg.n_iter, 1000);
    EXPECT_EQ(cfg.n_unroll, 100);
}

TEST(Protocol, FreePrimitiveMayCostSlightlyNegative)
{
    // A free primitive's test loop can come out marginally faster
    // than baseline within noise; once the retry budget is spent the
    // (negative) value is accepted and reported as infinite
    // throughput, not an error.
    auto cfg = tinyConfig();
    cfg.runs = 1;
    cfg.attempts = 1;
    cfg.max_retries = 1;
    ScopedLogCapture capture;
    const auto m = measurePrimitive(
        [](std::vector<double> &out) { out = {1.000e-3}; },
        [](std::vector<double> &out) { out = {0.999e-3}; }, cfg);
    EXPECT_TRUE(m.valid);
    EXPECT_LT(m.per_op_seconds, 0.0);
    EXPECT_TRUE(std::isinf(m.opsPerSecondPerThread()));
    EXPECT_EQ(m.noise_retries, 0); // |median| > 0 but gate disabled
}

TEST(Protocol, RetryCountAccumulatesAcrossRuns)
{
    auto cfg = tinyConfig();
    cfg.runs = 3;
    cfg.attempts = 2;
    int test_calls = 0;
    const auto m = measurePrimitive(
        [](std::vector<double> &out) { out = {2e-3}; },
        [&](std::vector<double> &out) {
            // Every third test call looks faulty.
            ++test_calls;
            out = {test_calls % 3 == 0 ? 1e-3 : 3e-3};
        },
        cfg);
    // 3 runs x 2 attempts = 6 valid pairs; calls 3 and 6 were
    // retried, so 8 total test calls and exactly 2 retries.
    EXPECT_EQ(m.retries, 2);
    EXPECT_EQ(test_calls, 8);
    EXPECT_TRUE(m.valid);
}

TEST(Protocol, NonFiniteTimingRetriesThenFailsRecoverably)
{
    auto cfg = tinyConfig();
    cfg.runs = 1;
    cfg.attempts = 1;
    cfg.max_retries = 3;
    int calls = 0;
    const auto m = measurePrimitive(
        [&](std::vector<double> &out) {
            ++calls;
            out = {std::numeric_limits<double>::quiet_NaN()};
        },
        [](std::vector<double> &out) { out = {2e-3}; }, cfg);
    EXPECT_FALSE(m.valid);
    EXPECT_NE(m.error.find("non-finite"), std::string::npos);
    EXPECT_TRUE(std::isnan(m.per_op_seconds));
    EXPECT_TRUE(std::isnan(m.opsPerSecondPerThread()));
    EXPECT_EQ(m.retries, 3);
    EXPECT_EQ(calls, 4); // initial attempt + 3 retries
}

TEST(Protocol, TransientNonFiniteTimingIsRetriedAway)
{
    auto cfg = tinyConfig();
    cfg.runs = 1;
    cfg.attempts = 1;
    int calls = 0;
    const auto m = measurePrimitive(
        [&](std::vector<double> &out) {
            out = {++calls == 1
                       ? std::numeric_limits<double>::infinity()
                       : 1e-3};
        },
        [](std::vector<double> &out) { out = {2e-3}; }, cfg);
    EXPECT_TRUE(m.valid);
    EXPECT_EQ(m.retries, 1);
    EXPECT_NEAR(m.per_op_seconds, 1e-5, 1e-12);
}

TEST(Protocol, CovGateRemeasuresNoisySamplesWithBackoff)
{
    auto cfg = tinyConfig();
    cfg.runs = 5;
    cfg.attempts = 1;
    cfg.cov_gate = 0.05;
    cfg.max_noise_retries = 3;

    // Seeded high-noise test function: per-run spread far beyond the
    // 5% gate, so every pass re-triggers the backoff until the cap.
    Pcg32 rng(1234);
    int test_calls = 0;
    ScopedLogCapture capture; // swallow the "still exceeded" warning
    const auto m = measurePrimitive(
        [](std::vector<double> &out) { out = {1e-3}; },
        [&](std::vector<double> &out) {
            ++test_calls;
            out = {2e-3 + 8e-3 * rng.uniform()};
        },
        cfg);
    EXPECT_TRUE(m.valid);
    EXPECT_EQ(m.noise_retries, cfg.max_noise_retries);
    EXPECT_GT(m.cov, cfg.cov_gate);
    // Attempts double every pass: 5 runs x (1 + 2 + 4 + 8) attempts.
    EXPECT_EQ(test_calls, 5 * (1 + 2 + 4 + 8) + m.retries);
}

TEST(Protocol, CovGateLeavesQuietMeasurementsAlone)
{
    auto cfg = tinyConfig();
    cfg.cov_gate = 0.25;
    int test_calls = 0;
    const auto m = measurePrimitive(
        [](std::vector<double> &out) { out = {1e-3}; },
        [&](std::vector<double> &out) {
            ++test_calls;
            out = {2e-3};
        },
        cfg);
    EXPECT_TRUE(m.valid);
    EXPECT_EQ(m.noise_retries, 0);
    EXPECT_DOUBLE_EQ(m.cov, 0.0);
    EXPECT_EQ(test_calls, cfg.runs * cfg.attempts);
}

TEST(Protocol, CovGateSkipsFreePrimitives)
{
    // A free primitive has |median| ~ 0, where relative noise is
    // meaningless; the gate must not loop on it.
    auto cfg = tinyConfig();
    cfg.cov_gate = 0.1;
    int test_calls = 0;
    const auto m = measurePrimitive(
        [](std::vector<double> &out) { out = {1e-3}; },
        [&](std::vector<double> &out) {
            ++test_calls;
            out = {1e-3};
        },
        cfg);
    EXPECT_TRUE(m.valid);
    EXPECT_EQ(m.noise_retries, 0);
    EXPECT_DOUBLE_EQ(m.cov, 0.0);
    EXPECT_EQ(test_calls, cfg.runs * cfg.attempts);
}

TEST(Protocol, EmptyThreadTimesPanics)
{
    const auto cfg = tinyConfig();
    ScopedLogCapture capture;
    EXPECT_THROW(
        measurePrimitive([](std::vector<double> &out) { out.clear(); },
                         [](std::vector<double> &out) { out.clear(); },
                         cfg),
        LogDeathException);
}

} // namespace
} // namespace syncperf::core
