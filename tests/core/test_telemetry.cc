/**
 * @file
 * Tests for the telemetry layer: sample folding and merging, the
 * telemetry.json artifact round trip, campaign emission (including
 * --jobs invariance and the off-by-default contract), and the
 * --explain renderer.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <unistd.h>

#include "core/campaign.hh"
#include "core/telemetry.hh"

namespace syncperf::core
{
namespace
{

namespace fs = std::filesystem;

TEST(TelemetrySample, AddStatsFoldsNonzeroActivityOnly)
{
    sim::StatSet stats;
    stats.inc(sim::Probe::CpuLinePingPong, 3);
    stats.inc("ad_hoc", 2);
    stats.record(sim::HistProbe::CpuAcqWaitTicks, 10);
    stats.record(sim::HistProbe::CpuAcqWaitTicks, 20);

    TelemetrySample s;
    s.addStats(stats);
    EXPECT_EQ(s.counter("cpu.line_ping_pong"), 3u);
    EXPECT_EQ(s.counter("ad_hoc"), 2u);
    EXPECT_EQ(s.counter("cpu.l1_hit"), 0u);
    EXPECT_EQ(s.counters.count("cpu.l1_hit"), 0u)
        << "zero probes must not appear";
    ASSERT_EQ(s.histograms.count("cpu.acq_wait_ticks"), 1u);
    EXPECT_EQ(s.histograms.at("cpu.acq_wait_ticks").count(), 2u);
    EXPECT_EQ(s.histograms.count("cpu.lock_wait_ticks"), 0u)
        << "empty histograms must not appear";
}

TEST(TelemetrySample, MergeAccumulatesCountersAndHistograms)
{
    TelemetrySample a, b;
    a.counters["x"] = 1;
    a.histograms["h"].record(4);
    b.counters["x"] = 2;
    b.counters["y"] = 7;
    b.histograms["h"].record(5);

    a.merge(b);
    EXPECT_EQ(a.counter("x"), 3u);
    EXPECT_EQ(a.counter("y"), 7u);
    EXPECT_EQ(a.histograms.at("h").count(), 2u);
    EXPECT_EQ(a.histograms.at("h").sum(), 9u);
}

TEST(TelemetrySample, MergeOrderingIsImmaterial)
{
    sim::StatSet s1, s2;
    s1.inc(sim::Probe::GpuSyncthreads, 5);
    s1.record(sim::HistProbe::GpuBarrierSpreadTicks, 100);
    s2.inc(sim::Probe::GpuSyncthreads, 9);
    s2.record(sim::HistProbe::GpuBarrierSpreadTicks, 50);

    TelemetrySample ab, ba;
    ab.addStats(s1);
    ab.addStats(s2);
    ba.addStats(s2);
    ba.addStats(s1);
    EXPECT_EQ(ab, ba);
}

TEST(TelemetryReport, JsonFileRoundTrip)
{
    TelemetryReport report;
    report.experiment = "omp_barrier.csv";
    report.system = "system_x";
    TelemetryPoint pt;
    pt.axes.emplace_back("threads", 8);
    pt.sample.counters["cpu.l1_hit"] = 41;
    pt.sample.histograms["cpu.acq_wait_ticks"].record(0);
    pt.sample.histograms["cpu.acq_wait_ticks"].record(123456);
    report.points.push_back(pt);

    const fs::path path =
        fs::temp_directory_path() /
        ("syncperf_telemetry_rt_" + std::to_string(::getpid()) +
         ".json");
    ASSERT_TRUE(report.writeFile(path).isOk());

    const auto loaded = readTelemetryFile(path);
    ASSERT_TRUE(loaded.isOk()) << loaded.status().toString();
    const TelemetryReport &back = loaded.value();
    EXPECT_EQ(back.experiment, report.experiment);
    EXPECT_EQ(back.system, report.system);
    ASSERT_EQ(back.points.size(), 1u);
    EXPECT_EQ(back.points[0].axes, report.points[0].axes);
    EXPECT_EQ(back.points[0].sample, report.points[0].sample)
        << "histogram buckets must survive serialization exactly";
    fs::remove(path);
}

TEST(TelemetryReport, WriteIsDeterministic)
{
    TelemetrySample s;
    s.counters["b"] = 2;
    s.counters["a"] = 1;
    s.histograms["h"].record(9);
    TelemetryReport report;
    report.experiment = "x.csv";
    report.system = "sys";
    report.points.push_back(TelemetryPoint{{{"threads", 2}}, s});

    const std::string once = report.toJson().dump(2);
    const std::string twice = report.toJson().dump(2);
    EXPECT_EQ(once, twice);
    // Keys are emitted in sorted order, so "a" precedes "b".
    EXPECT_LT(once.find("\"a\""), once.find("\"b\""));
}

TEST(TelemetryPath, ReplacesCsvSuffix)
{
    EXPECT_EQ(telemetryPathFor("out", "omp_barrier.csv"),
              fs::path("out") / "omp_barrier.telemetry.json");
    EXPECT_EQ(telemetryPathFor("out", "weird_name"),
              fs::path("out") / "weird_name.telemetry.json");
}

/** Every regular file under @p dir, as relative path -> bytes. */
std::map<std::string, std::string>
snapshotTree(const fs::path &dir)
{
    std::map<std::string, std::string> out;
    if (!fs::exists(dir))
        return out;
    for (const auto &e : fs::recursive_directory_iterator(dir)) {
        if (!e.is_regular_file())
            continue;
        std::ifstream in(e.path(), std::ios::binary);
        std::ostringstream bytes;
        bytes << in.rdbuf();
        out[fs::relative(e.path(), dir).string()] = bytes.str();
    }
    return out;
}

MeasurementConfig
tinyProtocol()
{
    auto cfg = MeasurementConfig::simDefaults();
    cfg.runs = 2;
    cfg.attempts = 2;
    cfg.n_iter = 10;
    cfg.n_unroll = 2;
    return cfg;
}

TEST(TelemetryCampaign, ArtifactsAreJobsInvariantAndOffByDefault)
{
    const auto base =
        fs::temp_directory_path() /
        ("syncperf_telemetry_campaign_" + std::to_string(::getpid()));
    fs::remove_all(base);

    auto cpu = cpusim::CpuConfig::system2(); // jitter-free
    cpu.cores_per_socket = 2;                // keep the sweep cheap

    auto telem_cfg = tinyProtocol();
    telem_cfg.telemetry = true;

    CampaignOptions serial;
    serial.output_dir = (base / "serial").string();
    serial.quick = true;
    serial.jobs = 1;
    auto parallel = serial;
    parallel.output_dir = (base / "parallel").string();
    parallel.jobs = 4;
    auto off = serial;
    off.output_dir = (base / "off").string();

    ASSERT_TRUE(runOmpCampaign(cpu, telem_cfg, serial).ok());
    ASSERT_TRUE(runOmpCampaign(cpu, telem_cfg, parallel).ok());
    ASSERT_TRUE(runOmpCampaign(cpu, tinyProtocol(), off).ok());

    const auto serial_tree = snapshotTree(base / "serial");
    const auto parallel_tree = snapshotTree(base / "parallel");
    const auto off_tree = snapshotTree(base / "off");

    int telemetry_files = 0;
    for (const auto &[file, bytes] : serial_tree) {
        if (file.find(".telemetry.json") != std::string::npos)
            ++telemetry_files;
        const auto it = parallel_tree.find(file);
        ASSERT_NE(it, parallel_tree.end()) << file << " missing";
        EXPECT_EQ(bytes, it->second) << file << " differs across jobs";
    }
    EXPECT_EQ(serial_tree.size(), parallel_tree.size());
    EXPECT_GT(telemetry_files, 0);

    // Telemetry off: no artifact files, and the rest of the tree is
    // byte-identical to the instrumented run (collection never
    // perturbs measured values).
    for (const auto &[file, bytes] : off_tree) {
        EXPECT_EQ(file.find(".telemetry.json"), std::string::npos)
            << "telemetry off wrote " << file;
        const auto it = serial_tree.find(file);
        ASSERT_NE(it, serial_tree.end());
        EXPECT_EQ(bytes, it->second) << file << " differs";
    }
    EXPECT_EQ(off_tree.size(),
              serial_tree.size() -
                  static_cast<std::size_t>(telemetry_files));

    // The explain renderer finds the knee in what the campaign wrote.
    std::ostringstream explained;
    ASSERT_TRUE(explainCampaign(base / "serial", explained).isOk());
    EXPECT_NE(explained.str().find("false sharing"), std::string::npos);
    EXPECT_NE(explained.str().find("cpu.line_ping_pong"),
              std::string::npos);

    EXPECT_FALSE(explainCampaign(base / "off", std::cout).isOk())
        << "explain must report when no telemetry exists";
    fs::remove_all(base);
}

} // namespace
} // namespace syncperf::core
