/**
 * @file
 * Tests for the gpusim measurement target (kernel construction and
 * end-to-end measurements).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "core/gpusim_target.hh"

namespace syncperf::core
{
namespace
{

MeasurementConfig
fastConfig()
{
    auto cfg = MeasurementConfig::simGpuDefaults();
    cfg.runs = 1;
    cfg.attempts = 1;
    cfg.n_iter = 10;
    cfg.n_unroll = 2;
    return cfg;
}

TEST(GpuSimTargetKernels, TestHasOneMorePrimitive)
{
    CudaExperiment exp;
    exp.primitive = CudaPrimitive::SyncThreads;
    const auto pair = GpuSimTarget::buildKernels(exp, 20);
    EXPECT_EQ(pair.baseline.body.size(), 1u);
    EXPECT_EQ(pair.test.body.size(), 2u);
    EXPECT_EQ(pair.baseline.body_iters, 20);
    EXPECT_EQ(pair.test.body_iters, 20);
}

TEST(GpuSimTargetKernels, FenceKernelsShareStoresAndDifferByFence)
{
    CudaExperiment exp;
    exp.primitive = CudaPrimitive::ThreadFence;
    exp.location = Location::PrivateArray;
    const auto pair = GpuSimTarget::buildKernels(exp, 10);
    EXPECT_EQ(pair.baseline.body.size(), 2u);
    ASSERT_EQ(pair.test.body.size(), 3u);
    EXPECT_EQ(pair.test.body[1].kind, gpusim::GpuOpKind::Fence);
    EXPECT_EQ(pair.test.body[1].scope, gpusim::FenceScope::Device);
}

TEST(GpuSimTargetKernels, FenceScopesMapped)
{
    CudaExperiment exp;
    exp.primitive = CudaPrimitive::ThreadFenceBlock;
    auto pair = GpuSimTarget::buildKernels(exp, 1);
    EXPECT_EQ(pair.test.body[1].scope, gpusim::FenceScope::Block);
    exp.primitive = CudaPrimitive::ThreadFenceSystem;
    pair = GpuSimTarget::buildKernels(exp, 1);
    EXPECT_EQ(pair.test.body[1].scope, gpusim::FenceScope::System);
}

TEST(GpuSimTargetKernels, AtomicAddUsesAddressModeFromLocation)
{
    CudaExperiment exp;
    exp.primitive = CudaPrimitive::AtomicAdd;
    exp.location = Location::PrivateArray;
    exp.stride = 32;
    const auto pair = GpuSimTarget::buildKernels(exp, 1);
    EXPECT_EQ(pair.baseline.body[0].amode,
              gpusim::AddressMode::PerThread);
    EXPECT_EQ(pair.baseline.body[0].stride, 32);
}

TEST(GpuSimTargetKernels, CasOnFloatPanics)
{
    CudaExperiment exp;
    exp.primitive = CudaPrimitive::AtomicCas;
    exp.dtype = DataType::Float32;
    ScopedLogCapture capture;
    EXPECT_THROW(GpuSimTarget::buildKernels(exp, 1), LogDeathException);
}

TEST(GpuSimTarget, PaperBlockCountsForEachDevice)
{
    GpuSimTarget t4090(gpusim::GpuConfig::rtx4090(), fastConfig());
    EXPECT_EQ(t4090.paperBlockCounts(),
              (std::vector<int>{1, 2, 64, 128, 256}));
    GpuSimTarget ta100(gpusim::GpuConfig::a100(), fastConfig());
    EXPECT_EQ(ta100.paperBlockCounts(),
              (std::vector<int>{1, 2, 54, 108, 216}));
}

TEST(GpuSimTarget, SyncWarpMeasurementIsPositive)
{
    GpuSimTarget target(gpusim::GpuConfig::rtx4090(), fastConfig());
    CudaExperiment exp;
    exp.primitive = CudaPrimitive::SyncWarp;
    const auto m = target.measure(exp, {2, 64});
    EXPECT_GT(m.per_op_seconds, 0.0);
}

TEST(GpuSimTarget, ThroughputUsesDeviceClock)
{
    // A syncwarp costs syncwarp_latency cycles; throughput should be
    // close to clock / latency.
    auto cfg = gpusim::GpuConfig::rtx4090();
    GpuSimTarget target(cfg, fastConfig());
    CudaExperiment exp;
    exp.primitive = CudaPrimitive::SyncWarp;
    const auto m = target.measure(exp, {1, 32});
    const double expected =
        cfg.clock_ghz * 1e9 /
        static_cast<double>(cfg.syncwarp_latency + cfg.issue_ii);
    EXPECT_NEAR(m.opsPerSecondPerThread(), expected, 0.2 * expected);
}

TEST(GpuSimTarget, DeterministicAcrossSeedsWithoutJitter)
{
    GpuSimTarget a(gpusim::GpuConfig::rtx4090(), fastConfig(), 1);
    GpuSimTarget b(gpusim::GpuConfig::rtx4090(), fastConfig(), 42);
    CudaExperiment exp;
    exp.primitive = CudaPrimitive::AtomicAdd;
    EXPECT_DOUBLE_EQ(a.measure(exp, {2, 64}).per_op_seconds,
                     b.measure(exp, {2, 64}).per_op_seconds);
}

TEST(GpuSimTarget, BlockFenceMeasuresAsNearlyFree)
{
    GpuSimTarget target(gpusim::GpuConfig::rtx4090(), fastConfig());
    CudaExperiment fence_block;
    fence_block.primitive = CudaPrimitive::ThreadFenceBlock;
    fence_block.location = Location::PrivateArray;
    CudaExperiment fence_dev;
    fence_dev.primitive = CudaPrimitive::ThreadFence;
    fence_dev.location = Location::PrivateArray;
    const auto mb = target.measure(fence_block, {1, 64});
    const auto md = target.measure(fence_dev, {1, 64});
    EXPECT_LT(mb.per_op_seconds, 0.1 * md.per_op_seconds);
}

} // namespace
} // namespace syncperf::core
