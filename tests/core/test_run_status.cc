/**
 * @file
 * Tests for the live run-status surface: engagement-ratio math, the
 * syncperf-status-v1 JSON schema, registry-backed counter filling,
 * the --progress one-liner, and the reporter's debounce + atomic
 * rewrite behavior.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <unistd.h>

#include "common/json.hh"
#include "common/metrics.hh"
#include "core/run_status.hh"

namespace syncperf::core
{
namespace
{

namespace fs = std::filesystem;

class RunStatusTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        file_ = fs::temp_directory_path() /
                ("syncperf_status_" + std::to_string(::getpid()) +
                 ".json");
        fs::remove(file_);
        metrics::Registry::global().reset();
    }

    void
    TearDown() override
    {
        fs::remove(file_);
        metrics::Registry::global().reset();
    }

    /** Parse the written status file; fails the test on bad JSON. */
    JsonValue
    written()
    {
        std::ifstream in(file_, std::ios::binary);
        std::ostringstream bytes;
        bytes << in.rdbuf();
        const auto parsed = parseJson(bytes.str());
        EXPECT_TRUE(parsed.isOk()) << parsed.status().toString();
        return parsed.isOk() ? parsed.value() : JsonValue();
    }

    fs::path file_;
};

TEST_F(RunStatusTest, RatiosAreZeroWhenNothingRan)
{
    const RunStatus st;
    EXPECT_EQ(st.simCacheHitRatio(), 0.0);
    EXPECT_EQ(st.poolWarmRatio(), 0.0);
    EXPECT_EQ(st.laneGroupedRatio(), 0.0);
    EXPECT_EQ(st.loopBatchWindowRatio(), 0.0);
    EXPECT_EQ(st.poolIdleFraction(), 0.0);
}

TEST_F(RunStatusTest, RatiosComputeFromRawInputs)
{
    RunStatus st;
    st.sim_cache_hits = 3;
    st.sim_cache_misses = 1;
    st.pool_clones = 9;
    st.pool_cold_builds = 1;
    st.lane_points = 10;
    st.lane_singleton_points = 4;
    st.loop_batch_windows = 1;
    st.loop_batch_fallbacks = 3;
    st.pool_busy_s = 3.0;
    st.pool_idle_s = 1.0;

    EXPECT_DOUBLE_EQ(st.simCacheHitRatio(), 0.75);
    EXPECT_DOUBLE_EQ(st.poolWarmRatio(), 0.9);
    EXPECT_DOUBLE_EQ(st.laneGroupedRatio(), 0.6);
    EXPECT_DOUBLE_EQ(st.loopBatchWindowRatio(), 0.25);
    EXPECT_DOUBLE_EQ(st.poolIdleFraction(), 0.25);
}

TEST_F(RunStatusTest, FillCountersReadsTheRegistry)
{
    metrics::add(metrics::Counter::SimCacheHits, 7);
    metrics::add(metrics::Counter::SimCacheMisses, 3);
    metrics::add(metrics::Counter::LanePoints, 12);
    metrics::add(metrics::Counter::LaneSingletonPoints, 2);
    metrics::add(metrics::Counter::PoolBusyNanos, 1'500'000'000);

    RunStatus st;
    st.fillCountersFromRegistry();
    EXPECT_EQ(st.sim_cache_hits, 7);
    EXPECT_EQ(st.sim_cache_misses, 3);
    EXPECT_EQ(st.lane_points, 12);
    EXPECT_EQ(st.lane_singleton_points, 2);
    EXPECT_DOUBLE_EQ(st.pool_busy_s, 1.5);
}

TEST_F(RunStatusTest, ToJsonCarriesTheVersionedSchema)
{
    RunStatus st;
    st.state = "running";
    st.points_done = 10;
    st.points_total = 40;
    st.elapsed_s = 2.0;
    st.experiments_per_s = 5.0;
    st.eta_s = 6.0;
    RunStatusShard shard;
    shard.shard = 1;
    shard.heartbeat_age_s = 0.25;
    shard.respawns = 2;
    shard.running = true;
    st.shards.push_back(shard);

    const auto parsed = parseJson(st.toJson());
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    const auto &root = parsed.value();
    EXPECT_EQ(root.stringOr("schema", ""), "syncperf-status-v1");
    EXPECT_EQ(root.stringOr("state", ""), "running");

    const auto *points = root.find("points");
    ASSERT_NE(points, nullptr);
    EXPECT_EQ(points->numberOr("done", -1.0), 10.0);
    EXPECT_EQ(points->numberOr("total", -1.0), 40.0);

    const auto *rate = root.find("rate");
    ASSERT_NE(rate, nullptr);
    EXPECT_EQ(rate->numberOr("experiments_per_s", -1.0), 5.0);
    EXPECT_EQ(rate->numberOr("eta_s", -1.0), 6.0);

    ASSERT_NE(root.find("engagement"), nullptr);
    ASSERT_NE(root.find("pool"), nullptr);

    const auto *shards = root.find("shards");
    ASSERT_NE(shards, nullptr);
    ASSERT_TRUE(shards->isArray());
    ASSERT_EQ(shards->asArray().size(), 1u);
    const auto &row = shards->asArray()[0];
    EXPECT_EQ(row.numberOr("shard", -1.0), 1.0);
    EXPECT_EQ(row.numberOr("respawns", -1.0), 2.0);
    const auto *running = row.find("running");
    ASSERT_NE(running, nullptr);
    EXPECT_TRUE(running->isBool() && running->asBool());
    const auto *is_dead = row.find("dead");
    ASSERT_NE(is_dead, nullptr);
    EXPECT_TRUE(is_dead->isBool() && !is_dead->asBool());
}

TEST_F(RunStatusTest, ProgressLineSummarizesTheRun)
{
    RunStatus st;
    st.points_done = 3;
    st.points_total = 12;
    st.experiments_per_s = 1.5;
    st.eta_s = 6.0;
    RunStatusShard dead;
    dead.shard = 0;
    dead.dead = true;
    st.shards.push_back(dead);
    RunStatusShard alive;
    alive.shard = 1;
    alive.running = true;
    st.shards.push_back(alive);

    const auto line = st.progressLine();
    EXPECT_NE(line.find("3/12 points"), std::string::npos) << line;
    EXPECT_NE(line.find("1.5 exp/s"), std::string::npos) << line;
    EXPECT_NE(line.find("eta 6s"), std::string::npos) << line;
    EXPECT_NE(line.find("shards 1/2 alive"), std::string::npos)
        << line;

    st.state = "degraded";
    EXPECT_NE(st.progressLine().find("(degraded)"),
              std::string::npos);
}

TEST_F(RunStatusTest, ReporterWritesValidJsonAndFillsRates)
{
    RunStatusReporter reporter(file_, 60.0, false);
    EXPECT_TRUE(reporter.due()) << "first tick is always due";

    RunStatus st;
    st.points_done = 5;
    st.points_total = 10;
    reporter.tick(st);

    EXPECT_GT(st.elapsed_s, 0.0);
    EXPECT_GT(st.experiments_per_s, 0.0);
    EXPECT_GE(st.eta_s, 0.0);

    const auto root = written();
    EXPECT_EQ(root.stringOr("schema", ""), "syncperf-status-v1");
    const auto *points = root.find("points");
    ASSERT_NE(points, nullptr);
    EXPECT_EQ(points->numberOr("done", -1.0), 5.0);
}

TEST_F(RunStatusTest, ReporterDebouncesTicksButNotForce)
{
    RunStatusReporter reporter(file_, 3600.0, false);
    RunStatus st;
    st.points_total = 10;
    reporter.tick(st);
    EXPECT_FALSE(reporter.due())
        << "an hour-long debounce cannot elapse during the test";

    // A debounced tick must not rewrite the file.
    st.points_done = 7;
    reporter.tick(st);
    EXPECT_EQ(written().find("points")->numberOr("done", -1.0), 0.0);

    // force() ignores the debounce (the final write).
    st.state = "finished";
    reporter.force(st);
    const auto root = written();
    EXPECT_EQ(root.stringOr("state", ""), "finished");
    EXPECT_EQ(root.find("points")->numberOr("done", -1.0), 7.0);
}

} // namespace
} // namespace syncperf::core
