/**
 * @file
 * Tests for figure assembly (CSV + chart emission).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/logging.hh"
#include "core/figure.hh"

namespace syncperf::core
{
namespace
{

Figure
sample()
{
    Figure f("Fig. 1", "Barrier", "threads", {2.0, 4.0, 8.0});
    f.addSeries("int", {10.0, 5.0, 2.0});
    return f;
}

TEST(Figure, CsvHasHeaderAndOneRowPerPoint)
{
    std::ostringstream out;
    sample().writeCsv(out);
    const std::string csv = out.str();
    EXPECT_EQ(csv.rfind("figure,series,x,throughput_per_thread\n", 0), 0u);
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
    EXPECT_NE(csv.find("Fig. 1,int,2,10"), std::string::npos);
}

TEST(Figure, CsvQuotesCommasInLabels)
{
    Figure f("F", "t", "x", {1.0});
    f.addSeries("a,b", {1.0});
    std::ostringstream out;
    f.writeCsv(out);
    EXPECT_NE(out.str().find("\"a,b\""), std::string::npos);
}

TEST(Figure, RenderIncludesIdTitleAndNote)
{
    Figure f = sample();
    f.setNote("expected shape: decays");
    const std::string out = f.render();
    EXPECT_NE(out.find("Fig. 1: Barrier"), std::string::npos);
    EXPECT_NE(out.find("expected shape: decays"), std::string::npos);
}

TEST(Figure, RenderSurvivesInfiniteValues)
{
    Figure f("F", "free primitive", "threads", {2.0, 4.0});
    f.addSeries("int",
                {std::numeric_limits<double>::infinity(), 5.0});
    EXPECT_NO_THROW((void)f.render());
}

TEST(Figure, MultipleSeriesTracked)
{
    Figure f = sample();
    f.addSeries("double", {8.0, 4.0, 1.0});
    EXPECT_EQ(f.series().size(), 2u);
    EXPECT_EQ(f.series()[1].label, "double");
}

TEST(Figure, MismatchedSeriesPanics)
{
    Figure f = sample();
    ScopedLogCapture capture;
    EXPECT_THROW(f.addSeries("bad", {1.0}), LogDeathException);
}

TEST(Figure, LogXAndCoreBoundaryRender)
{
    Figure f("F", "t", "threads", {2.0, 4.0, 8.0, 16.0});
    f.addSeries("s", {1.0, 1.0, 1.0, 1.0});
    f.setLogX(true);
    f.setCoreBoundary(8.0);
    const std::string out = f.render();
    EXPECT_NE(out.find("log2 scale"), std::string::npos);
}

} // namespace
} // namespace syncperf::core
