/**
 * @file
 * Smoke tests for the native (host-thread) measurement target.
 *
 * Timing on a small CI host is meaningless; these verify that the
 * full protocol executes, returns sane values, and covers every
 * primitive and data type without deadlocking.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/native_target.hh"

namespace syncperf::core
{
namespace
{

MeasurementConfig
tinyConfig()
{
    MeasurementConfig cfg;
    cfg.runs = 1;
    cfg.attempts = 1;
    cfg.n_iter = 50;
    cfg.n_unroll = 4;
    cfg.n_warmup = 1;
    cfg.max_retries = 3;
    return cfg;
}

class NativePrimitiveTest
    : public ::testing::TestWithParam<OmpPrimitive>
{
};

TEST_P(NativePrimitiveTest, TwoThreadMeasurementCompletes)
{
    NativeTarget target(tinyConfig());
    OmpExperiment exp;
    exp.primitive = GetParam();
    const auto m = target.measure(exp, 2);
    // Values can be noisy or ~zero, but the protocol must finish and
    // produce a finite per-op figure.
    EXPECT_TRUE(std::isfinite(m.per_op_seconds));
    EXPECT_EQ(m.run_values.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPrimitives, NativePrimitiveTest,
    ::testing::Values(OmpPrimitive::Barrier, OmpPrimitive::AtomicUpdate,
                      OmpPrimitive::AtomicCapture,
                      OmpPrimitive::AtomicRead, OmpPrimitive::AtomicWrite,
                      OmpPrimitive::Critical, OmpPrimitive::Flush),
    [](const ::testing::TestParamInfo<OmpPrimitive> &info) {
        std::string name(ompPrimitiveName(info.param).substr(4));
        for (char &c : name) {
            if (c == ' ')
                c = '_';
        }
        return name;
    });

class NativeDtypeTest : public ::testing::TestWithParam<DataType>
{
};

TEST_P(NativeDtypeTest, AtomicUpdateEveryType)
{
    NativeTarget target(tinyConfig());
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::AtomicUpdate;
    exp.dtype = GetParam();
    const auto m = target.measure(exp, 2);
    EXPECT_TRUE(std::isfinite(m.per_op_seconds));
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, NativeDtypeTest,
    ::testing::ValuesIn(all_data_types),
    [](const ::testing::TestParamInfo<DataType> &info) {
        return std::string(dataTypeName(info.param));
    });

TEST(NativeTarget, PrivateArrayWithStride)
{
    NativeTarget target(tinyConfig());
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::AtomicUpdate;
    exp.location = Location::PrivateArray;
    exp.stride = 16;
    const auto m = target.measure(exp, 2);
    EXPECT_TRUE(std::isfinite(m.per_op_seconds));
}

TEST(NativeTarget, AffinityPoliciesRun)
{
    NativeTarget target(tinyConfig());
    for (Affinity a :
         {Affinity::System, Affinity::Spread, Affinity::Close}) {
        OmpExperiment exp;
        exp.primitive = OmpPrimitive::Barrier;
        exp.affinity = a;
        EXPECT_NO_THROW((void)target.measure(exp, 2));
    }
}

TEST(NativeTarget, SingleThreadSupported)
{
    NativeTarget target(tinyConfig());
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::AtomicUpdate;
    EXPECT_NO_THROW((void)target.measure(exp, 1));
}

} // namespace
} // namespace syncperf::core
