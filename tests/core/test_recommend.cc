/**
 * @file
 * Tests for the recommendation rules, using synthetic series with
 * known shapes.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/recommend.hh"

namespace syncperf::core
{
namespace
{

const std::vector<int> threads{2, 4, 8, 16, 32};

TEST(Recommend, BarrierPlateauDetected)
{
    // Falls until 8 threads, then flat: the paper's Fig 1.
    const std::vector<double> thr{10.0, 6.0, 4.0, 3.9, 3.8};
    const auto f = barrierPlateaus(threads, thr);
    EXPECT_TRUE(f.supported);
    EXPECT_EQ(f.id, "omp-1");
}

TEST(Recommend, BarrierPlateauRejectsPureDecay)
{
    const std::vector<double> thr{16.0, 8.0, 4.0, 2.0, 1.0};
    EXPECT_FALSE(barrierPlateaus(threads, thr).supported);
}

TEST(Recommend, ContentionCollapseDetected)
{
    const std::vector<double> thr{16.0, 8.0, 4.0, 2.0, 1.0};
    EXPECT_TRUE(contendedAtomicsCollapse(threads, thr).supported);
}

TEST(Recommend, ContentionCollapseRejectsFlatSeries)
{
    const std::vector<double> thr{4.0, 4.0, 4.1, 3.9, 4.0};
    EXPECT_FALSE(contendedAtomicsCollapse(threads, thr).supported);
}

TEST(Recommend, PaddingRuleFiresOnFalseSharingKnee)
{
    const std::vector<int> strides{1, 4, 8, 16};
    // int: 16 elements per 64-byte line; stride 16 escapes.
    const std::vector<double> thr{1.0, 2.0, 4.0, 50.0};
    EXPECT_TRUE(paddingRemovesFalseSharing(strides, thr, 16).supported);
}

TEST(Recommend, PaddingRuleRejectsFlatStrides)
{
    const std::vector<int> strides{1, 4, 8, 16};
    const std::vector<double> thr{10.0, 10.0, 10.0, 11.0};
    EXPECT_FALSE(paddingRemovesFalseSharing(strides, thr, 16).supported);
}

TEST(Recommend, AtomicReadFreeWhenTiny)
{
    EXPECT_TRUE(atomicReadIsFree(0.0, 1e-9).supported);
    EXPECT_TRUE(atomicReadIsFree(1e-12, 1e-9).supported);
    EXPECT_FALSE(atomicReadIsFree(1e-9, 1e-9).supported);
}

TEST(Recommend, CriticalSlowerRequiresUniformGap)
{
    const std::vector<double> atomic_thr{10.0, 5.0, 2.5};
    const std::vector<double> critical{3.0, 1.5, 0.7};
    EXPECT_TRUE(
        criticalSlowerThanAtomic(atomic_thr, critical).supported);
    const std::vector<double> mixed{30.0, 1.5, 0.7};
    EXPECT_FALSE(criticalSlowerThanAtomic(atomic_thr, mixed).supported);
}

TEST(Recommend, HyperthreadingFineWhenTailHolds)
{
    const std::vector<double> thr{10.0, 6.0, 4.0, 3.5, 3.2};
    EXPECT_TRUE(hyperthreadingIsFine(threads, thr, 16).supported);
    const std::vector<double> bad{10.0, 6.0, 4.0, 3.5, 1.0};
    EXPECT_FALSE(hyperthreadingIsFine(threads, bad, 16).supported);
}

TEST(Recommend, SyncwarpFlatterRule)
{
    const std::vector<double> syncthreads{10.0, 5.0, 2.0, 1.0, 0.5};
    const std::vector<double> syncwarp{10.0, 10.0, 10.0, 9.5, 9.0};
    EXPECT_TRUE(syncwarpFlatterThanSyncthreads(syncthreads, syncwarp)
                    .supported);
    EXPECT_FALSE(syncwarpFlatterThanSyncthreads(syncwarp, syncwarp)
                     .supported);
}

TEST(Recommend, IntAtomicsFastestNeedsDominance)
{
    const std::vector<double> int_thr{10.0, 8.0, 6.0};
    const std::vector<double> fp{5.0, 4.0, 3.0};
    EXPECT_TRUE(intAtomicsFastest(int_thr, fp, "double").supported);
    const std::vector<double> crossing{12.0, 8.0, 5.0};
    EXPECT_FALSE(
        intAtomicsFastest(int_thr, crossing, "double").supported);
}

TEST(Recommend, FenceFlatnessWithinFactor)
{
    const std::vector<double> flat{5.0, 5.5, 4.8, 5.2};
    EXPECT_TRUE(fenceCostIsFlat(flat).supported);
    const std::vector<double> wobbling{5.0, 9.0, 4.0, 7.0};
    EXPECT_TRUE(fenceCostIsFlat(wobbling).supported) << "within 3x";
    const std::vector<double> varying{5.0, 1.0, 5.0, 20.0};
    EXPECT_FALSE(fenceCostIsFlat(varying).supported);
}

TEST(Recommend, WideShflKneeComparison)
{
    const std::vector<int> ts{64, 128, 256, 512, 1024};
    const std::vector<double> thr32{10, 10, 10, 10, 5};
    const std::vector<double> thr64{8, 8, 8, 4, 2};
    EXPECT_TRUE(wideShflKneesEarlier(ts, thr32, thr64).supported);
    EXPECT_FALSE(wideShflKneesEarlier(ts, thr32, thr32).supported);
}

TEST(Recommend, RenderIncludesVerdictAndEvidence)
{
    const std::vector<double> thr{16.0, 8.0, 4.0, 2.0, 1.0};
    const Finding f = contendedAtomicsCollapse(threads, thr);
    const std::string out = renderFindings(std::vector<Finding>{f});
    EXPECT_NE(out.find("omp-2"), std::string::npos);
    EXPECT_NE(out.find("SUPPORTED"), std::string::npos);
    EXPECT_NE(out.find("evidence:"), std::string::npos);
}

} // namespace
} // namespace syncperf::core
