/**
 * @file
 * Tests for the campaign driver (results-tree emission).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "core/campaign.hh"

namespace syncperf::core
{
namespace
{

namespace fs = std::filesystem;

class CampaignTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("syncperf_campaign_test_" +
                std::to_string(::getpid()));
        fs::remove_all(dir_);
    }

    void
    TearDown() override
    {
        fs::remove_all(dir_);
    }

    CampaignOptions
    options() const
    {
        CampaignOptions o;
        o.output_dir = dir_.string();
        o.quick = true;
        return o;
    }

    static MeasurementConfig
    tinyProtocol()
    {
        auto cfg = MeasurementConfig::simDefaults();
        cfg.runs = 1;
        cfg.attempts = 1;
        cfg.n_iter = 10;
        cfg.n_unroll = 2;
        return cfg;
    }

    fs::path dir_;
};

TEST(SanitizeName, ProducesFilesystemSafeSlugs)
{
    EXPECT_EQ(sanitizeName("System 3: AMD Ryzen Threadripper 2950X"),
              "system_3_amd_ryzen_threadripper_2950x");
    EXPECT_EQ(sanitizeName("NVIDIA A100 40GB"), "nvidia_a100_40gb");
    EXPECT_EQ(sanitizeName("trailing!!"), "trailing");
}

TEST_F(CampaignTest, OmpCampaignWritesExpectedFiles)
{
    // A small machine keeps the sweep cheap.
    cpusim::CpuConfig cpu = cpusim::CpuConfig::system3();
    cpu.cores_per_socket = 4;

    const auto result = runOmpCampaign(cpu, tinyProtocol(), options());
    EXPECT_GT(result.experiments_run, 20);
    EXPECT_EQ(result.files_written.size(),
              static_cast<std::size_t>(result.experiments_run));
    for (const auto &file : result.files_written) {
        EXPECT_TRUE(fs::exists(file)) << file;
        EXPECT_GT(fs::file_size(file), 0u) << file;
    }

    // Spot-check a file's structure: header + one row per thread
    // count, 4 comma-separated fields.
    const fs::path barrier =
        dir_ / sanitizeName(cpu.name) / "omp_barrier.csv";
    ASSERT_TRUE(fs::exists(barrier));
    std::ifstream in(barrier);
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header,
              "threads,per_op_seconds,throughput_per_thread,"
              "stddev_seconds");
    int rows = 0;
    for (std::string line; std::getline(in, line);) {
        EXPECT_EQ(std::count(line.begin(), line.end(), ','), 3) << line;
        ++rows;
    }
    EXPECT_GT(rows, 1);
}

TEST_F(CampaignTest, CudaCampaignWritesExpectedFiles)
{
    gpusim::GpuConfig gpu = gpusim::GpuConfig::rtx4090();
    gpu.sm_count = 8;  // keep the half-SM block count small

    auto protocol = MeasurementConfig::simGpuDefaults();
    protocol.runs = 1;
    protocol.attempts = 1;
    protocol.n_iter = 5;
    protocol.n_unroll = 2;

    const auto result = runCudaCampaign(gpu, protocol, options());
    EXPECT_GT(result.experiments_run, 10);
    for (const auto &file : result.files_written)
        EXPECT_TRUE(fs::exists(file)) << file;

    const fs::path syncwarp =
        dir_ / sanitizeName(gpu.name) / "cuda_syncwarp.csv";
    ASSERT_TRUE(fs::exists(syncwarp));
    std::ifstream in(syncwarp);
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header,
              "blocks,threads_per_block,per_op_seconds,"
              "throughput_per_thread");
}

TEST_F(CampaignTest, CasFilesOnlyForIntegerTypes)
{
    gpusim::GpuConfig gpu = gpusim::GpuConfig::rtx4090();
    gpu.sm_count = 4;
    auto protocol = MeasurementConfig::simGpuDefaults();
    protocol.runs = 1;
    protocol.attempts = 1;
    protocol.n_iter = 5;
    protocol.n_unroll = 2;

    const auto result = runCudaCampaign(gpu, protocol, options());
    const fs::path base = dir_ / sanitizeName(gpu.name);
    EXPECT_TRUE(fs::exists(base / "cuda_atomiccas_int.csv"));
    EXPECT_TRUE(fs::exists(base / "cuda_atomiccas_ull.csv"));
    EXPECT_FALSE(fs::exists(base / "cuda_atomiccas_float.csv"));
    EXPECT_FALSE(fs::exists(base / "cuda_atomiccas_double.csv"));
    (void)result;
}

} // namespace
} // namespace syncperf::core
