/**
 * @file
 * Smoke tests for the OpenMP-pragma measurement target (the paper's
 * literal implementation path). As with the native target, timing on
 * a small CI host is meaningless; these verify protocol completion
 * and coverage.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/omp_pragma_target.hh"

namespace syncperf::core
{
namespace
{

MeasurementConfig
tinyConfig()
{
    MeasurementConfig cfg;
    cfg.runs = 1;
    cfg.attempts = 1;
    cfg.n_iter = 50;
    cfg.n_unroll = 4;
    cfg.n_warmup = 1;
    cfg.max_retries = 3;
    return cfg;
}

TEST(OmpPragmaTarget, ReportsAvailability)
{
#ifdef _OPENMP
    EXPECT_TRUE(OmpPragmaTarget::available());
    EXPECT_GE(OmpPragmaTarget::maxThreads(), 1);
#else
    EXPECT_FALSE(OmpPragmaTarget::available());
#endif
}

class OmpPragmaPrimitiveTest
    : public ::testing::TestWithParam<OmpPrimitive>
{
  protected:
    void
    SetUp() override
    {
        if (!OmpPragmaTarget::available())
            GTEST_SKIP() << "built without OpenMP";
    }
};

TEST_P(OmpPragmaPrimitiveTest, TwoThreadMeasurementCompletes)
{
    OmpPragmaTarget target(tinyConfig());
    OmpExperiment exp;
    exp.primitive = GetParam();
    const auto m = target.measure(exp, 2);
    EXPECT_TRUE(std::isfinite(m.per_op_seconds));
    EXPECT_EQ(m.run_values.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPrimitives, OmpPragmaPrimitiveTest,
    ::testing::Values(OmpPrimitive::Barrier, OmpPrimitive::AtomicUpdate,
                      OmpPrimitive::AtomicCapture,
                      OmpPrimitive::AtomicRead, OmpPrimitive::AtomicWrite,
                      OmpPrimitive::Critical, OmpPrimitive::Flush),
    [](const ::testing::TestParamInfo<OmpPrimitive> &info) {
        std::string name(ompPrimitiveName(info.param).substr(4));
        for (char &c : name) {
            if (c == ' ')
                c = '_';
        }
        return name;
    });

TEST(OmpPragmaTarget, AllDataTypesMeasure)
{
    if (!OmpPragmaTarget::available())
        GTEST_SKIP() << "built without OpenMP";
    OmpPragmaTarget target(tinyConfig());
    for (DataType t : all_data_types) {
        OmpExperiment exp;
        exp.primitive = OmpPrimitive::AtomicUpdate;
        exp.dtype = t;
        EXPECT_TRUE(
            std::isfinite(target.measure(exp, 2).per_op_seconds))
            << dataTypeName(t);
    }
}

TEST(OmpPragmaTarget, ArrayStrideMeasures)
{
    if (!OmpPragmaTarget::available())
        GTEST_SKIP() << "built without OpenMP";
    OmpPragmaTarget target(tinyConfig());
    OmpExperiment exp;
    exp.primitive = OmpPrimitive::AtomicUpdate;
    exp.location = Location::PrivateArray;
    exp.stride = 16;
    EXPECT_TRUE(std::isfinite(target.measure(exp, 2).per_op_seconds));
}

TEST(OmpPragmaTarget, AffinityPoliciesRun)
{
    if (!OmpPragmaTarget::available())
        GTEST_SKIP() << "built without OpenMP";
    OmpPragmaTarget target(tinyConfig());
    for (Affinity a :
         {Affinity::System, Affinity::Spread, Affinity::Close}) {
        OmpExperiment exp;
        exp.primitive = OmpPrimitive::Flush;
        exp.location = Location::PrivateArray;
        exp.affinity = a;
        EXPECT_NO_THROW((void)target.measure(exp, 2));
    }
}

} // namespace
} // namespace syncperf::core
