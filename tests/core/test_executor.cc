/**
 * @file
 * Tests for OrderedExecutor: commits must land in submission order on
 * the calling thread regardless of completion order, and the serial
 * path (null pool) must behave identically.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/executor.hh"

namespace syncperf::core
{
namespace
{

std::vector<OrderedExecutor::Job>
orderRecordingJobs(int n, std::vector<int> &commit_order,
                   std::thread::id &commit_thread, int sleep_step_ms)
{
    std::vector<OrderedExecutor::Job> jobs;
    for (int i = 0; i < n; ++i) {
        jobs.push_back([&, i]() -> OrderedExecutor::CommitFn {
            // Later jobs finish first when sleep_step_ms > 0.
            const int ms = sleep_step_ms * (n - 1 - i);
            if (ms > 0) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(ms));
            }
            return [&, i] {
                commit_order.push_back(i);
                commit_thread = std::this_thread::get_id();
            };
        });
    }
    return jobs;
}

TEST(OrderedExecutor, CommitsInIndexOrderDespiteReversedCompletion)
{
    ThreadPool pool(4);
    std::vector<int> commit_order;
    std::thread::id commit_thread;
    OrderedExecutor::run(
        &pool, orderRecordingJobs(8, commit_order, commit_thread, 5));
    ASSERT_EQ(commit_order.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(commit_order[i], i);
    EXPECT_EQ(commit_thread, std::this_thread::get_id());
}

TEST(OrderedExecutor, NullPoolRunsInline)
{
    std::vector<int> commit_order;
    std::thread::id commit_thread;
    OrderedExecutor::run(
        nullptr, orderRecordingJobs(5, commit_order, commit_thread, 0));
    ASSERT_EQ(commit_order.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(commit_order[i], i);
    EXPECT_EQ(commit_thread, std::this_thread::get_id());
}

TEST(OrderedExecutor, SingleWorkerPoolFallsBackToInline)
{
    ThreadPool pool(1);
    std::vector<int> commit_order;
    std::thread::id commit_thread;
    OrderedExecutor::run(
        &pool, orderRecordingJobs(4, commit_order, commit_thread, 0));
    ASSERT_EQ(commit_order.size(), 4u);
    EXPECT_EQ(commit_thread, std::this_thread::get_id());
}

TEST(OrderedExecutor, NullCommitIsSkipped)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    std::vector<OrderedExecutor::Job> jobs;
    for (int i = 0; i < 6; ++i) {
        jobs.push_back([&ran]() -> OrderedExecutor::CommitFn {
            ran.fetch_add(1);
            return nullptr;
        });
    }
    OrderedExecutor::run(&pool, std::move(jobs));
    EXPECT_EQ(ran.load(), 6);
}

TEST(OrderedExecutor, EmptyJobListIsANoOp)
{
    ThreadPool pool(2);
    OrderedExecutor::run(&pool, {});
    OrderedExecutor::run(nullptr, {});
    SUCCEED();
}

TEST(OrderedExecutor, SharedStateInCommitsNeedsNoLocking)
{
    ThreadPool pool(4);
    // The deterministic-commit contract: commits are serialized on
    // the caller, so plain (unsynchronized) shared state is safe --
    // exactly how the campaign treats its manifest and result. TSan
    // validates the claim in the `tsan` preset.
    int unguarded_counter = 0;
    std::vector<OrderedExecutor::Job> jobs;
    for (int i = 0; i < 100; ++i) {
        jobs.push_back([&unguarded_counter]() -> OrderedExecutor::CommitFn {
            return [&unguarded_counter] { ++unguarded_counter; };
        });
    }
    OrderedExecutor::run(&pool, std::move(jobs));
    EXPECT_EQ(unguarded_counter, 100);
}

} // namespace
} // namespace syncperf::core
