/**
 * @file
 * Tests for primitive descriptors and sweep helpers.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/primitives.hh"
#include "core/sweep.hh"

namespace syncperf::core
{
namespace
{

TEST(Primitives, NamesAreStable)
{
    EXPECT_EQ(ompPrimitiveName(OmpPrimitive::Barrier), "omp barrier");
    EXPECT_EQ(ompPrimitiveName(OmpPrimitive::Flush), "omp flush");
    EXPECT_EQ(cudaPrimitiveName(CudaPrimitive::SyncThreads),
              "__syncthreads()");
    EXPECT_EQ(cudaPrimitiveName(CudaPrimitive::AtomicCas),
              "atomicCAS()");
}

TEST(Primitives, TypelessClassification)
{
    EXPECT_TRUE(cudaPrimitiveIsTypeless(CudaPrimitive::SyncWarp));
    EXPECT_TRUE(cudaPrimitiveIsTypeless(CudaPrimitive::ThreadFence));
    EXPECT_FALSE(cudaPrimitiveIsTypeless(CudaPrimitive::AtomicAdd));
    EXPECT_FALSE(cudaPrimitiveIsTypeless(CudaPrimitive::ShflSync));
}

TEST(Primitives, CasHasNoFloatFlavor)
{
    EXPECT_TRUE(
        cudaPrimitiveSupports(CudaPrimitive::AtomicCas, DataType::Int32));
    EXPECT_TRUE(cudaPrimitiveSupports(CudaPrimitive::AtomicCas,
                                      DataType::UInt64));
    EXPECT_FALSE(cudaPrimitiveSupports(CudaPrimitive::AtomicCas,
                                       DataType::Float32));
    EXPECT_FALSE(cudaPrimitiveSupports(CudaPrimitive::AtomicExch,
                                       DataType::Float64));
    EXPECT_TRUE(
        cudaPrimitiveSupports(CudaPrimitive::AtomicAdd, DataType::Float64));
}

TEST(Sweep, OmpThreadCountsCoverTwoToMax)
{
    const auto ts = ompThreadCounts(8);
    EXPECT_EQ(ts.front(), 2);
    EXPECT_EQ(ts.back(), 8);
    EXPECT_EQ(ts.size(), 7u);
}

TEST(Sweep, OmpThreadCountsWithStepAlwaysIncludeMax)
{
    const auto ts = ompThreadCounts(32, 5);
    EXPECT_EQ(ts.front(), 2);
    EXPECT_EQ(ts.back(), 32);
    for (std::size_t i = 1; i < ts.size(); ++i)
        EXPECT_GT(ts[i], ts[i - 1]);
}

TEST(Sweep, CudaThreadCountsArePowersOfTwo)
{
    const auto ts = cudaThreadCounts(1024);
    EXPECT_EQ(ts.front(), 2);
    EXPECT_EQ(ts.back(), 1024);
    EXPECT_EQ(ts.size(), 10u);
    for (std::size_t i = 1; i < ts.size(); ++i)
        EXPECT_EQ(ts[i], 2 * ts[i - 1]);
}

TEST(Sweep, CudaBlockCountsMatchPaper)
{
    // 1, 2, half, full, double for the RTX 4090's 128 SMs.
    EXPECT_EQ(cudaBlockCounts(128),
              (std::vector<int>{1, 2, 64, 128, 256}));
}

TEST(Sweep, CudaBlockCountsDeduplicateSmallDevices)
{
    // sm_count = 2: {1, 2, 1, 2, 4} -> {1, 2, 4}.
    EXPECT_EQ(cudaBlockCounts(2), (std::vector<int>{1, 2, 4}));
}

TEST(Sweep, CudaBlockCountsDropZeroHalf)
{
    // sm_count = 1: half rounds to 0 and must be dropped.
    EXPECT_EQ(cudaBlockCounts(1), (std::vector<int>{1, 2}));
}

TEST(Sweep, InvalidArgumentsPanic)
{
    ScopedLogCapture capture;
    EXPECT_THROW(ompThreadCounts(1), LogDeathException);
    EXPECT_THROW(ompThreadCounts(8, 0), LogDeathException);
    EXPECT_THROW(cudaThreadCounts(1), LogDeathException);
    EXPECT_THROW(cudaBlockCounts(0), LogDeathException);
}

} // namespace
} // namespace syncperf::core
