/**
 * @file
 * Tests for the shard supervisor: deterministic partitioning,
 * backoff, heartbeats, and the crash/retry/reassign state machine
 * (driven with /bin/sh fake workers that crash, hang, or beat on
 * cue). fork/exec-based, so this file stays out of the TSan binary.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/metrics.hh"
#include "core/shard.hh"

namespace syncperf::core
{
namespace
{

namespace fs = std::filesystem;

TEST(ShardSpec, ParsesWellFormedSpecs)
{
    const auto spec = parseShardSpec("2/4");
    ASSERT_TRUE(spec.isOk());
    EXPECT_EQ(spec.value().index, 2);
    EXPECT_EQ(spec.value().count, 4);
    EXPECT_EQ(spec.value().toString(), "2/4");

    EXPECT_TRUE(parseShardSpec("0/1").isOk());
}

TEST(ShardSpec, RejectsMalformedSpecs)
{
    for (const char *bad : {"", "3", "3/", "/4", "a/b", "1/2x",
                            "-1/4", "4/4", "5/4", "0/0", "1/0"}) {
        EXPECT_FALSE(parseShardSpec(bad).isOk()) << bad;
    }
}

TEST(ShardSpec, OwnershipPartitionsEveryOrdinalExactlyOnce)
{
    for (int count : {1, 2, 3, 4, 7}) {
        for (std::size_t ordinal = 0; ordinal < 100; ++ordinal) {
            int owners = 0;
            for (int k = 0; k < count; ++k)
                owners += shardOwnsOrdinal({k, count}, ordinal);
            EXPECT_EQ(owners, 1)
                << count << " shards, ordinal " << ordinal;
        }
    }
    // Unsharded processes own everything.
    EXPECT_TRUE(shardOwnsOrdinal({0, 1}, 17));
}

TEST(ShardBackoff, DoublesPerAttemptUpToTheCap)
{
    EXPECT_EQ(shardBackoffMs(1, 250, 4000), 250);
    EXPECT_EQ(shardBackoffMs(2, 250, 4000), 500);
    EXPECT_EQ(shardBackoffMs(3, 250, 4000), 1000);
    EXPECT_EQ(shardBackoffMs(5, 250, 4000), 4000);
    EXPECT_EQ(shardBackoffMs(50, 250, 4000), 4000); // no overflow
    EXPECT_EQ(shardBackoffMs(1, 0, 4000), 0);
}

TEST(ShardPaths, NamesAreStable)
{
    EXPECT_EQ(shardJournalName(3), "manifest.shard-3.jsonl");
    EXPECT_EQ(shardHeartbeatPath("/x/.shards", 2).string(),
              "/x/.shards/shard-2.hb");
}

TEST(ShardHeartbeat, FreshBeatHasSmallAge)
{
    const fs::path file =
        fs::temp_directory_path() /
        ("syncperf_hb_" + std::to_string(::getpid()));
    shardHeartbeat(file, "testing");
    EXPECT_LT(shardHeartbeatAge(file), 30.0);
    fs::remove(file);
    EXPECT_GT(shardHeartbeatAge(file), 1e6); // missing = very stale
}

// ----------------------------------------------------- supervisor

class ShardSupervisorTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("syncperf_shard_test_" + std::to_string(::getpid()));
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void
    TearDown() override
    {
        fs::remove_all(dir_);
    }

    /**
     * A fake worker: /bin/sh running @p script. The supervisor
     * appends "--shard-worker k/N" (and possibly "--shard-extra
     * FILE"), which sh maps to $0, $1, ... -- so inside the script,
     * $1 is "k/N" and $3 is the extras file when present.
     */
    ShardSupervisor::Config
    config(const std::string &script,
           std::vector<std::vector<std::string>> assignment)
    {
        ShardSupervisor::Config c;
        c.worker_argv = {"/bin/sh", "-c", script};
        c.control_dir = dir_ / ".shards";
        c.assignment = std::move(assignment);
        c.options.max_retries = 1;
        c.options.backoff_base_ms = 10;
        c.options.backoff_cap_ms = 50;
        c.options.heartbeat_timeout_s = 0.0; // watchdog off
        c.recordedKeys = [] { return std::vector<std::string>{}; };
        return c;
    }

    std::string
    readFile(const fs::path &file)
    {
        std::ifstream in(file);
        std::ostringstream text;
        text << in.rdbuf();
        return text.str();
    }

    fs::path dir_;
};

TEST_F(ShardSupervisorTest, RunsEveryShardOnce)
{
    // Each worker records which shard spec it was handed.
    const std::string script = "echo \"$1\" > " + dir_.string() +
                               "/ran-${1%%/*}; exit 0";
    auto result = ShardSupervisor(
                      config(script, {{"s/a.csv"}, {"s/b.csv"}}))
                      .run();

    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.spawned, 2);
    EXPECT_EQ(result.retries, 0);
    EXPECT_EQ(result.dead, 0);
    EXPECT_EQ(result.points_reassigned, 0);
    EXPECT_FALSE(result.journaled_failures);
    EXPECT_EQ(readFile(dir_ / "ran-0"), "0/2\n");
    EXPECT_EQ(readFile(dir_ / "ran-1"), "1/2\n");
}

TEST_F(ShardSupervisorTest, WorkerExitOneMeansJournaledFailures)
{
    auto result =
        ShardSupervisor(config("exit 1", {{"s/a.csv"}})).run();
    EXPECT_EQ(result.retries, 0); // not a crash: no respawn
    EXPECT_EQ(result.dead, 0);
    EXPECT_TRUE(result.journaled_failures);
    EXPECT_TRUE(result.leftover.empty());
}

TEST_F(ShardSupervisorTest, CrashingShardRetriesThenReassigns)
{
    const long long retries_before =
        metrics::value(metrics::Counter::ShardRetries);
    const long long dead_before =
        metrics::value(metrics::Counter::ShardsDead);
    const long long reassigned_before =
        metrics::value(metrics::Counter::ShardReassigned);

    // Shard 1 always crashes; shard 0 succeeds and records any
    // extras file it is handed.
    const std::string script =
        "k=${1%%/*}; if [ \"$k\" = 1 ]; then exit 9; fi; "
        "if [ \"$2\" = --shard-extra ]; then cp \"$3\" " +
        dir_.string() + "/extras-seen; fi; exit 0";
    auto result =
        ShardSupervisor(config(script, {{"s/a.csv"},
                                        {"s/b.csv", "s/c.csv"}}))
            .run();

    EXPECT_EQ(result.retries, 1); // max_retries = 1
    EXPECT_EQ(result.dead, 1);
    EXPECT_EQ(result.points_reassigned, 2);
    EXPECT_TRUE(result.leftover.empty());
    ASSERT_EQ(result.shards.size(), 2u);
    EXPECT_FALSE(result.shards[0].dead);
    EXPECT_TRUE(result.shards[1].dead);
    EXPECT_EQ(result.shards[1].last_exit, 9);
    ASSERT_EQ(result.shards[0].extra_points.size(), 2u);
    EXPECT_EQ(result.shards[0].extra_points[0], "s/b.csv");
    EXPECT_EQ(result.shards[0].extra_points[1], "s/c.csv");
    // The survivor was respawned with the reassigned points.
    EXPECT_EQ(readFile(dir_ / "extras-seen"), "s/b.csv\ns/c.csv\n");

    EXPECT_GT(metrics::value(metrics::Counter::ShardRetries),
              retries_before);
    EXPECT_GT(metrics::value(metrics::Counter::ShardsDead),
              dead_before);
    EXPECT_EQ(metrics::value(metrics::Counter::ShardReassigned),
              reassigned_before + 2);
}

TEST_F(ShardSupervisorTest, RecordedPointsAreNotReassigned)
{
    auto c = config("k=${1%%/*}; if [ \"$k\" = 1 ]; then exit 9; "
                    "fi; exit 0",
                    {{"s/a.csv"}, {"s/b.csv", "s/c.csv"}});
    // s/b.csv is already journaled (the dead shard committed it
    // before crashing): only s/c.csv needs a new home.
    c.recordedKeys = [] {
        return std::vector<std::string>{"s/b.csv"};
    };
    auto result = ShardSupervisor(std::move(c)).run();
    EXPECT_EQ(result.points_reassigned, 1);
    ASSERT_EQ(result.shards[0].extra_points.size(), 1u);
    EXPECT_EQ(result.shards[0].extra_points[0], "s/c.csv");
}

TEST_F(ShardSupervisorTest, AllShardsDeadLeavesLeftovers)
{
    auto result = ShardSupervisor(
                      config("exit 9", {{"s/a.csv"}, {"s/b.csv"}}))
                      .run();
    EXPECT_EQ(result.dead, 2);
    EXPECT_FALSE(result.ok());
    // Whichever shard died second had nobody to take its points; at
    // least those are leftover for the caller's inline salvage, and
    // nothing is silently dropped.
    EXPECT_FALSE(result.leftover.empty());
    std::vector<std::string> all = result.leftover;
    for (const ShardState &s : result.shards)
        all.insert(all.end(), s.extra_points.begin(),
                   s.extra_points.end());
    EXPECT_GE(all.size(), 2u);
}

TEST_F(ShardSupervisorTest, WatchdogKillsHungWorker)
{
    const long long timeouts_before =
        metrics::value(metrics::Counter::ShardTimeouts);

    auto c = config("sleep 30", {{"s/a.csv"}});
    c.options.max_retries = 0;
    c.options.heartbeat_timeout_s = 0.3;
    auto result = ShardSupervisor(std::move(c)).run();

    EXPECT_GE(result.timeouts, 1);
    EXPECT_EQ(result.dead, 1);
    ASSERT_EQ(result.shards.size(), 1u);
    EXPECT_EQ(result.shards[0].last_exit, -9); // SIGKILLed
    EXPECT_GT(metrics::value(metrics::Counter::ShardTimeouts),
              timeouts_before);
}

TEST_F(ShardSupervisorTest, HeartbeatKeepsSlowWorkerAlive)
{
    // The worker takes ~1s -- well past the 0.4s timeout -- but
    // beats its heartbeat file continuously, so the watchdog must
    // leave it alone.
    const std::string hb =
        shardHeartbeatPath(dir_ / ".shards", 0).string();
    const std::string script = "i=0; while [ $i -lt 10 ]; do "
                               "echo beat > " +
                               hb +
                               "; sleep 0.1; i=$((i+1)); done; "
                               "exit 0";
    auto c = config(script, {{"s/a.csv"}});
    c.options.heartbeat_timeout_s = 0.4;
    auto result = ShardSupervisor(std::move(c)).run();

    EXPECT_EQ(result.timeouts, 0);
    EXPECT_EQ(result.dead, 0);
    EXPECT_TRUE(result.ok());
}

TEST_F(ShardSupervisorTest, CancellationTerminatesWorkers)
{
    auto c = config("trap 'exit 143' TERM; sleep 30 & wait",
                    {{"s/a.csv"}});
    int polls = 0;
    c.cancelled = [&polls] { return ++polls > 3; };
    auto result = ShardSupervisor(std::move(c)).run();

    EXPECT_TRUE(result.interrupted);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.dead, 0); // cancelled, not crashed
}

} // namespace
} // namespace syncperf::core
