/**
 * @file
 * Tests for the Listing 1 reduction kernels (construction and the
 * paper's performance ordering).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/reductions.hh"

namespace syncperf::core
{
namespace
{

constexpr long test_elems = 1L << 21;

TEST(Reductions, PlansMatchListingStructure)
{
    const auto cfg = gpusim::GpuConfig::rtx4090();

    const auto r1 =
        buildReduction(ReductionVariant::GlobalAtomic, cfg, test_elems);
    EXPECT_EQ(r1.launch.blocks, test_elems / 1024);
    EXPECT_EQ(r1.kernel.body.size(), 2u);
    EXPECT_TRUE(r1.kernel.epilogue.empty());

    const auto r3 =
        buildReduction(ReductionVariant::BlockAtomic, cfg, test_elems);
    EXPECT_EQ(r3.kernel.body[1].kind, gpusim::GpuOpKind::SharedAtomic);
    ASSERT_EQ(r3.kernel.epilogue.size(), 2u);
    EXPECT_EQ(r3.kernel.epilogue[1].pred, gpusim::Predicate::Thread0);

    const auto r5 = buildReduction(ReductionVariant::PersistentBlock, cfg,
                                   test_elems);
    EXPECT_EQ(r5.launch.blocks, 2 * cfg.sm_count);
    EXPECT_GT(r5.kernel.body_iters, 1) << "grid-stride loop present";
    EXPECT_EQ(r5.kernel.body_iters * r5.launch.blocks * 1024L,
              test_elems);
}

TEST(Reductions, ShuffleVariantUsesButterfly)
{
    const auto cfg = gpusim::GpuConfig::rtx4090();
    const auto r2 =
        buildReduction(ReductionVariant::WarpShuffle, cfg, test_elems);
    bool has_shfl = false;
    for (const auto &op : r2.kernel.body) {
        if (op.kind == gpusim::GpuOpKind::Shfl) {
            has_shfl = true;
            EXPECT_EQ(op.repeat, 5) << "log2(32) butterfly rounds";
        }
    }
    EXPECT_TRUE(has_shfl);
}

TEST(Reductions, WarpReduceRequiresCc80)
{
    const auto turing = gpusim::GpuConfig::rtx2070Super();
    ScopedLogCapture capture;
    EXPECT_THROW(
        buildReduction(ReductionVariant::WarpReduce, turing, test_elems),
        LogDeathException);
}

TEST(Reductions, NonBlockMultipleInputIsFatal)
{
    const auto cfg = gpusim::GpuConfig::rtx4090();
    ScopedLogCapture capture;
    EXPECT_THROW(
        buildReduction(ReductionVariant::GlobalAtomic, cfg, 1000),
        LogDeathException);
}

TEST(Reductions, NamesAreNumbered)
{
    EXPECT_NE(reductionName(ReductionVariant::BlockAtomic)
                  .find("Reduction 3"),
              std::string_view::npos);
}

TEST(Reductions, PaperOrderingHoldsOnRtx4090)
{
    // The paper: R3 fastest of 1-4, then R4, then R1, R2 slowest;
    // the persistent-thread R5 beats everything.
    const auto cfg = gpusim::GpuConfig::rtx4090();
    const auto timings = runAllReductions(cfg, test_elems);
    ASSERT_EQ(timings.size(), 5u);

    const auto cycles = [&](ReductionVariant v) {
        for (const auto &t : timings) {
            if (t.variant == v)
                return t.cycles;
        }
        ADD_FAILURE() << "missing variant";
        return sim::Tick{0};
    };

    const auto r1 = cycles(ReductionVariant::GlobalAtomic);
    const auto r2 = cycles(ReductionVariant::WarpShuffle);
    const auto r3 = cycles(ReductionVariant::BlockAtomic);
    const auto r4 = cycles(ReductionVariant::WarpReduce);
    const auto r5 = cycles(ReductionVariant::PersistentBlock);

    EXPECT_LT(r3, r4) << "block atomics beat __reduce_max_sync";
    EXPECT_LT(r4, r1) << "warp reduce beats plain global atomics";
    EXPECT_LE(r1, r2) << "global atomics beat manual shuffles";
    EXPECT_LT(r5, r3) << "persistent threads fastest overall";
    // The paper reports R5 about 2.5x faster than R2.
    EXPECT_GT(static_cast<double>(r2) / static_cast<double>(r5), 1.5);
}

TEST(Reductions, TuringSkipsWarpReduce)
{
    const auto turing = gpusim::GpuConfig::rtx2070Super();
    const auto timings = runAllReductions(turing, test_elems);
    EXPECT_EQ(timings.size(), 4u);
    for (const auto &t : timings)
        EXPECT_NE(t.variant, ReductionVariant::WarpReduce);
}

TEST(Reductions, TimingFieldsConsistent)
{
    const auto cfg = gpusim::GpuConfig::rtx4090();
    const auto t = runReduction(ReductionVariant::PersistentBlock, cfg,
                                test_elems);
    EXPECT_GT(t.cycles, 0u);
    EXPECT_NEAR(t.seconds,
                static_cast<double>(t.cycles) / (cfg.clock_ghz * 1e9),
                1e-12);
    EXPECT_NEAR(t.elements_per_second,
                static_cast<double>(test_elems) / t.seconds,
                1.0);
}

} // namespace
} // namespace syncperf::core
