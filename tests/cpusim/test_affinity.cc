/**
 * @file
 * Unit tests for software-to-hardware thread placement.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"
#include "cpusim/affinity.hh"

namespace syncperf::cpusim
{
namespace
{

CpuConfig
smallConfig()
{
    CpuConfig c;
    c.sockets = 2;
    c.cores_per_socket = 4;
    c.threads_per_core = 2;
    c.cores_per_complex = 4;
    return c;
}

TEST(Affinity, ClosePacksSmtSiblingsFirst)
{
    const auto places = mapThreads(smallConfig(), Affinity::Close, 4);
    EXPECT_EQ(places[0].core, 0);
    EXPECT_EQ(places[0].smt_slot, 0);
    EXPECT_EQ(places[1].core, 0);
    EXPECT_EQ(places[1].smt_slot, 1);
    EXPECT_EQ(places[2].core, 1);
    EXPECT_EQ(places[3].core, 1);
}

TEST(Affinity, SpreadUsesDistinctCoresFirst)
{
    const auto places = mapThreads(smallConfig(), Affinity::Spread, 8);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(places[i].smt_slot, 0) << "thread " << i;
    // All 8 cores distinct.
    std::set<int> cores;
    for (const auto &p : places)
        cores.insert(p.core);
    EXPECT_EQ(cores.size(), 8u);
}

TEST(Affinity, SpreadAlternatesSockets)
{
    const auto places = mapThreads(smallConfig(), Affinity::Spread, 4);
    EXPECT_EQ(places[0].socket, 0);
    EXPECT_EQ(places[1].socket, 1);
    EXPECT_EQ(places[2].socket, 0);
    EXPECT_EQ(places[3].socket, 1);
}

TEST(Affinity, SpreadWrapsToSmtAfterAllCores)
{
    const auto places = mapThreads(smallConfig(), Affinity::Spread, 16);
    EXPECT_EQ(places[8].smt_slot, 1);
    EXPECT_EQ(places[15].smt_slot, 1);
}

TEST(Affinity, SystemUsesNaturalCoreOrder)
{
    const auto places = mapThreads(smallConfig(), Affinity::System, 10);
    EXPECT_EQ(places[0].core, 0);
    EXPECT_EQ(places[7].core, 7);
    EXPECT_EQ(places[8].core, 0);
    EXPECT_EQ(places[8].smt_slot, 1);
}

TEST(Affinity, ComplexIdFollowsCoresPerComplex)
{
    CpuConfig c = smallConfig();
    c.cores_per_complex = 2;
    const auto places = mapThreads(c, Affinity::System, 6);
    EXPECT_EQ(places[0].complex_id, 0);
    EXPECT_EQ(places[1].complex_id, 0);
    EXPECT_EQ(places[2].complex_id, 1);
    EXPECT_EQ(places[5].complex_id, 2);
}

TEST(Affinity, SocketDerivedFromCore)
{
    const auto places = mapThreads(smallConfig(), Affinity::System, 8);
    EXPECT_EQ(places[3].socket, 0);
    EXPECT_EQ(places[4].socket, 1);
}

TEST(Affinity, OversubscriptionIsFatal)
{
    ScopedLogCapture capture;
    EXPECT_THROW(mapThreads(smallConfig(), Affinity::Close, 17),
                 LogDeathException);
}

TEST(Affinity, PaperSystemsHaveExpectedHwThreadCounts)
{
    EXPECT_EQ(CpuConfig::system1().totalHwThreads(), 40);
    EXPECT_EQ(CpuConfig::system2().totalHwThreads(), 64);
    EXPECT_EQ(CpuConfig::system3().totalHwThreads(), 32);
}

TEST(Affinity, PaperSystemsCoreCounts)
{
    EXPECT_EQ(CpuConfig::system1().totalCores(), 20);
    EXPECT_EQ(CpuConfig::system2().totalCores(), 32);
    EXPECT_EQ(CpuConfig::system3().totalCores(), 16);
}

TEST(Affinity, System3HasJitterModel)
{
    EXPECT_GT(CpuConfig::system3().jitter_frac, 0.0);
    EXPECT_DOUBLE_EQ(CpuConfig::system1().jitter_frac, 0.0);
    EXPECT_DOUBLE_EQ(CpuConfig::system2().jitter_frac, 0.0);
}

} // namespace
} // namespace syncperf::cpusim
