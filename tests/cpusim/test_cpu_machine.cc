/**
 * @file
 * Unit and behavioral tests for the multicore CPU timing machine.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "cpusim/machine.hh"

namespace syncperf::cpusim
{
namespace
{

CpuConfig
testConfig()
{
    CpuConfig c;
    c.name = "test cpu";
    c.sockets = 1;
    c.cores_per_socket = 8;
    c.threads_per_core = 2;
    c.cores_per_complex = 8;
    return c;
}

CpuProgram
singleOpProgram(CpuOpKind kind, std::uint64_t addr, DataType t,
                long iters = 50)
{
    CpuProgram p;
    CpuOp op;
    op.kind = kind;
    op.addr = addr;
    op.dtype = t;
    p.body = {op};
    p.iterations = iters;
    return p;
}

/** Average timed cycles per body iteration across threads. */
double
cyclesPerIteration(CpuMachine &machine,
                   const std::vector<CpuProgram> &programs)
{
    const auto result = machine.run(programs, 2);
    double sum = 0.0;
    for (auto c : result.thread_cycles)
        sum += static_cast<double>(c);
    return sum / static_cast<double>(result.thread_cycles.size()) /
           static_cast<double>(programs.front().iterations);
}

TEST(CpuMachine, RunsToCompletion)
{
    CpuMachine machine(testConfig(), Affinity::System);
    const auto result = machine.run(
        {singleOpProgram(CpuOpKind::Alu, 0, DataType::Int32)}, 1);
    EXPECT_EQ(result.thread_cycles.size(), 1u);
    EXPECT_GT(result.thread_cycles[0], 0u);
    EXPECT_GT(result.total_cycles, 0u);
}

TEST(CpuMachine, DeterministicAcrossRuns)
{
    std::vector<CpuProgram> programs;
    for (int t = 0; t < 4; ++t) {
        programs.push_back(
            singleOpProgram(CpuOpKind::AtomicRmw, 0x1000,
                            DataType::Int32));
    }
    CpuMachine a(testConfig(), Affinity::System, 7);
    CpuMachine b(testConfig(), Affinity::System, 7);
    EXPECT_EQ(a.run(programs, 2).thread_cycles,
              b.run(programs, 2).thread_cycles);
}

TEST(CpuMachine, L1HitsAfterWarmup)
{
    // A thread writing its own private line should hit in L1.
    CpuMachine machine(testConfig(), Affinity::System);
    const auto result = machine.run(
        {singleOpProgram(CpuOpKind::Store, 0x9000, DataType::Int32)}, 2);
    (void)result;
    EXPECT_GT(machine.stats().get("cpu.l1_hit"), 0u);
}

TEST(CpuMachine, ContendedAtomicsSerialize)
{
    // Per-thread cost of a contended atomic grows roughly linearly
    // with the thread count (the paper's Fig 2 collapse).
    auto programsFor = [&](int n) {
        std::vector<CpuProgram> p(
            n, singleOpProgram(CpuOpKind::AtomicRmw, 0x1000,
                               DataType::Int32));
        return p;
    };
    CpuMachine m2(testConfig(), Affinity::System);
    CpuMachine m8(testConfig(), Affinity::System);
    const double c2 = cyclesPerIteration(m2, programsFor(2));
    const double c8 = cyclesPerIteration(m8, programsFor(8));
    EXPECT_GT(c8, 3.0 * c2);
}

TEST(CpuMachine, IntegerRmwCheaperThanFloatUnderContention)
{
    auto programsFor = [&](DataType t) {
        return std::vector<CpuProgram>(
            4, singleOpProgram(CpuOpKind::AtomicRmw, 0x1000, t));
    };
    CpuMachine mi(testConfig(), Affinity::System);
    CpuMachine mf(testConfig(), Affinity::System);
    const double ci = cyclesPerIteration(mi, programsFor(DataType::Int32));
    const double cf =
        cyclesPerIteration(mf, programsFor(DataType::Float64));
    EXPECT_LT(ci, cf);
}

TEST(CpuMachine, FalseSharingCostsMoreThanPrivateLines)
{
    // Threads hitting the same line (different words) vs separate
    // lines -- the Fig 3 mechanism.
    auto programsAtStride = [&](int stride_bytes) {
        std::vector<CpuProgram> p;
        for (int t = 0; t < 4; ++t) {
            p.push_back(singleOpProgram(
                CpuOpKind::AtomicRmw,
                0x10000 + static_cast<std::uint64_t>(t) * stride_bytes,
                DataType::Int32));
        }
        return p;
    };
    CpuMachine shared(testConfig(), Affinity::System);
    CpuMachine padded(testConfig(), Affinity::System);
    const double c_shared =
        cyclesPerIteration(shared, programsAtStride(4));
    const double c_padded =
        cyclesPerIteration(padded, programsAtStride(64));
    EXPECT_GT(c_shared, 3.0 * c_padded);
}

TEST(CpuMachine, SmtSiblingsDoNotFalseShare)
{
    // With Close affinity, threads 0 and 1 share a core and an L1:
    // their "false sharing" on one line costs nothing extra.
    auto programs = [&] {
        std::vector<CpuProgram> p;
        for (int t = 0; t < 2; ++t) {
            p.push_back(singleOpProgram(
                CpuOpKind::AtomicRmw,
                0x10000 + static_cast<std::uint64_t>(t) * 4,
                DataType::Int32));
        }
        return p;
    }();
    CpuMachine close_m(testConfig(), Affinity::Close);
    CpuMachine spread_m(testConfig(), Affinity::Spread);
    const double c_close = cyclesPerIteration(close_m, programs);
    const double c_spread = cyclesPerIteration(spread_m, programs);
    EXPECT_LT(3.0 * c_close, c_spread);
}

TEST(CpuMachine, AtomicLoadCostsSameAsPlainLoad)
{
    // The paper's atomic-read result: no difference.
    CpuMachine ml(testConfig(), Affinity::System);
    CpuMachine ma(testConfig(), Affinity::System);
    const double cl = cyclesPerIteration(
        ml, {singleOpProgram(CpuOpKind::Load, 0x1000, DataType::Int32)});
    const double ca = cyclesPerIteration(
        ma,
        {singleOpProgram(CpuOpKind::AtomicLoad, 0x1000, DataType::Int32)});
    EXPECT_DOUBLE_EQ(cl, ca);
}

TEST(CpuMachine, AtomicWriteCostTypeIndependent)
{
    auto programsFor = [&](DataType t) {
        return std::vector<CpuProgram>(
            4, singleOpProgram(CpuOpKind::AtomicStore, 0x1000, t));
    };
    CpuMachine mi(testConfig(), Affinity::System);
    CpuMachine md(testConfig(), Affinity::System);
    const double ci =
        cyclesPerIteration(mi, programsFor(DataType::Int32));
    const double cd =
        cyclesPerIteration(md, programsFor(DataType::Float64));
    EXPECT_DOUBLE_EQ(ci, cd);
}

TEST(CpuMachine, BarrierReleasesAllThreads)
{
    std::vector<CpuProgram> programs(
        6, singleOpProgram(CpuOpKind::Barrier, 0, DataType::Int32, 10));
    CpuMachine machine(testConfig(), Affinity::System);
    const auto result = machine.run(programs, 2);
    for (auto c : result.thread_cycles)
        EXPECT_GT(c, 0u);
    EXPECT_GT(machine.stats().get("cpu.barrier_spin") +
                  machine.stats().get("cpu.barrier_futex"),
              0u);
}

TEST(CpuMachine, BarrierSwitchesToFutexAtLargeTeams)
{
    CpuConfig cfg = testConfig();
    auto barrierProgs = [&](int n) {
        return std::vector<CpuProgram>(
            n, singleOpProgram(CpuOpKind::Barrier, 0, DataType::Int32, 5));
    };
    CpuMachine small(cfg, Affinity::System);
    small.run(barrierProgs(2), 1);
    EXPECT_GT(small.stats().get("cpu.barrier_spin"), 0u);
    EXPECT_EQ(small.stats().get("cpu.barrier_futex"), 0u);

    CpuMachine large(cfg, Affinity::System);
    large.run(barrierProgs(16), 1);
    EXPECT_GT(large.stats().get("cpu.barrier_futex"), 0u);
}

TEST(CpuMachine, LockSerializesCriticalSections)
{
    auto criticalProgram = [&] {
        CpuProgram p;
        CpuOp acq;
        acq.kind = CpuOpKind::LockAcquire;
        acq.addr = 0x3000;
        CpuOp body;
        body.kind = CpuOpKind::Store;
        body.addr = 0x4000;
        CpuOp rel;
        rel.kind = CpuOpKind::LockRelease;
        rel.addr = 0x3000;
        p.body = {acq, body, rel};
        p.iterations = 30;
        return p;
    }();
    std::vector<CpuProgram> programs(4, criticalProgram);
    CpuMachine machine(testConfig(), Affinity::System);
    const auto result = machine.run(programs, 2);
    for (auto c : result.thread_cycles)
        EXPECT_GT(c, 0u);
    EXPECT_GT(machine.stats().get("cpu.lock_handoff"), 0u);
}

TEST(CpuMachine, CriticalSlowerThanAtomic)
{
    auto criticalProgram = [&] {
        CpuProgram p;
        CpuOp acq;
        acq.kind = CpuOpKind::LockAcquire;
        acq.addr = 0x3000;
        CpuOp load;
        load.kind = CpuOpKind::Load;
        load.addr = 0x4000;
        CpuOp alu;
        alu.kind = CpuOpKind::Alu;
        CpuOp store;
        store.kind = CpuOpKind::Store;
        store.addr = 0x4000;
        CpuOp rel;
        rel.kind = CpuOpKind::LockRelease;
        rel.addr = 0x3000;
        p.body = {acq, load, alu, store, rel};
        p.iterations = 50;
        return p;
    }();
    CpuMachine mc(testConfig(), Affinity::System);
    CpuMachine ma(testConfig(), Affinity::System);
    const double c_critical =
        cyclesPerIteration(mc, std::vector<CpuProgram>(4, criticalProgram));
    const double c_atomic = cyclesPerIteration(
        ma, std::vector<CpuProgram>(
                4, singleOpProgram(CpuOpKind::AtomicRmw, 0x4000,
                                   DataType::Int32)));
    EXPECT_GT(c_critical, c_atomic);
}

TEST(CpuMachine, FenceCheapWithoutFalseSharing)
{
    auto fenceProgram = [&](int tid) {
        CpuProgram p;
        CpuOp store;
        store.kind = CpuOpKind::Store;
        store.addr = 0x10000 + static_cast<std::uint64_t>(tid) * 64;
        CpuOp fence;
        fence.kind = CpuOpKind::Fence;
        p.body = {store, fence};
        p.iterations = 50;
        return p;
    };
    std::vector<CpuProgram> programs;
    for (int t = 0; t < 4; ++t)
        programs.push_back(fenceProgram(t));
    CpuMachine machine(testConfig(), Affinity::System);
    machine.run(programs, 2);
    EXPECT_GT(machine.stats().get("cpu.fence_clean"), 0u);
    EXPECT_EQ(machine.stats().get("cpu.fence_contended"), 0u);
}

TEST(CpuMachine, FenceExpensiveUnderFalseSharing)
{
    auto fenceProgram = [&](int tid) {
        CpuProgram p;
        CpuOp store;
        store.kind = CpuOpKind::Store;
        store.addr = 0x10000 + static_cast<std::uint64_t>(tid) * 4;
        CpuOp fence;
        fence.kind = CpuOpKind::Fence;
        p.body = {store, fence};
        p.iterations = 50;
        return p;
    };
    std::vector<CpuProgram> programs;
    for (int t = 0; t < 4; ++t)
        programs.push_back(fenceProgram(t));
    CpuMachine machine(testConfig(), Affinity::Spread);
    machine.run(programs, 2);
    EXPECT_GT(machine.stats().get("cpu.fence_contended"), 0u);
}

TEST(CpuMachine, JitterProducesRunToRunVariation)
{
    CpuConfig cfg = testConfig();
    cfg.jitter_frac = 0.4;
    std::vector<CpuProgram> programs(
        4, singleOpProgram(CpuOpKind::AtomicRmw, 0x1000, DataType::Int32));
    CpuMachine a(cfg, Affinity::System, 1);
    CpuMachine b(cfg, Affinity::System, 2);
    EXPECT_NE(a.run(programs, 2).thread_cycles,
              b.run(programs, 2).thread_cycles);
}

TEST(CpuMachine, RemoteTransfersCrossComplexes)
{
    CpuConfig cfg = testConfig();
    cfg.cores_per_complex = 1;  // every core its own complex
    std::vector<CpuProgram> programs(
        4, singleOpProgram(CpuOpKind::AtomicRmw, 0x1000, DataType::Int32));
    CpuMachine machine(cfg, Affinity::System);
    machine.run(programs, 2);
    EXPECT_GT(machine.stats().get("cpu.transfer_remote"), 0u);
}

TEST(CpuMachine, EmptyProgramListPanics)
{
    CpuMachine machine(testConfig(), Affinity::System);
    ScopedLogCapture capture;
    EXPECT_THROW(machine.run({}, 1), LogDeathException);
}

TEST(CpuMachine, EmptyBodyPanics)
{
    CpuMachine machine(testConfig(), Affinity::System);
    CpuProgram empty;
    empty.iterations = 1;
    ScopedLogCapture capture;
    EXPECT_THROW(machine.run({empty}, 1), LogDeathException);
}

TEST(CpuMachine, ReleaseWithoutAcquirePanics)
{
    CpuMachine machine(testConfig(), Affinity::System);
    CpuProgram p;
    CpuOp rel;
    rel.kind = CpuOpKind::LockRelease;
    p.body = {rel};
    p.iterations = 1;
    ScopedLogCapture capture;
    EXPECT_THROW(machine.run({p}, 1), LogDeathException);
}

/** A contended program mix exercising every interned structure:
 * atomics on a shared line, a critical section, and a fence. */
std::vector<CpuProgram>
imageTestPrograms()
{
    std::vector<CpuProgram> programs;
    for (int tid = 0; tid < 4; ++tid) {
        CpuProgram p;
        CpuOp rmw;
        rmw.kind = CpuOpKind::AtomicRmw;
        rmw.addr = 0x1000;
        rmw.dtype = DataType::Int32;
        CpuOp acq;
        acq.kind = CpuOpKind::LockAcquire;
        acq.addr = 0x3000;
        acq.lock_id = 0;
        CpuOp alu;
        alu.kind = CpuOpKind::Alu;
        CpuOp rel;
        rel.kind = CpuOpKind::LockRelease;
        rel.addr = 0x3000;
        rel.lock_id = 0;
        CpuOp fence;
        fence.kind = CpuOpKind::Fence;
        CpuOp bar;
        bar.kind = CpuOpKind::Barrier;
        p.body = {rmw, acq, alu, rel, fence, bar};
        p.iterations = 30;
        programs.push_back(std::move(p));
    }
    return programs;
}

TEST(CpuMachineImage, BuiltImageRunMatchesColdRun)
{
    const auto programs = imageTestPrograms();
    CpuMachine cold(testConfig(), Affinity::System, 5);
    const auto want = cold.run(programs, 2).thread_cycles;

    CpuMachine warm(testConfig(), Affinity::System, 5);
    warm.buildImage(42, programs);
    ASSERT_TRUE(warm.hasImage(42));
    EXPECT_EQ(warm.run(programs, 2, 42).thread_cycles, want);
    // Replaying the image again stays identical.
    warm.reseed(5);
    EXPECT_EQ(warm.run(programs, 2, 42).thread_cycles, want);
}

TEST(CpuMachineImage, EncodeInstallRoundTripMatchesColdRun)
{
    const auto programs = imageTestPrograms();
    CpuMachine writer(testConfig(), Affinity::System, 9);
    writer.buildImage(7, programs);
    std::vector<std::uint64_t> words;
    writer.encodeImage(7, words);
    ASSERT_FALSE(words.empty());

    CpuMachine reader(testConfig(), Affinity::System, 9);
    ASSERT_TRUE(reader.installImage(7, words).isOk());
    ASSERT_TRUE(reader.hasImage(7));

    CpuMachine cold(testConfig(), Affinity::System, 9);
    EXPECT_EQ(reader.run(programs, 2, 7).thread_cycles,
              cold.run(programs, 2).thread_cycles);
}

TEST(CpuMachineImage, InstallRejectsMalformedPayloads)
{
    const auto programs = imageTestPrograms();
    CpuMachine writer(testConfig(), Affinity::System);
    writer.buildImage(7, programs);
    std::vector<std::uint64_t> good;
    writer.encodeImage(7, good);

    CpuMachine reader(testConfig(), Affinity::System);
    // Truncations at every word boundary.
    for (std::size_t len = 0; len < good.size(); ++len) {
        std::vector<std::uint64_t> bad(good.begin(),
                                       good.begin() +
                                           static_cast<long>(len));
        EXPECT_FALSE(reader.installImage(8, bad).isOk())
            << "truncation to " << len << " words was accepted";
        EXPECT_FALSE(reader.hasImage(8));
    }
    // A wild handler id (payload layout: n_threads, n_lines,
    // n_locks, n_ops, then the first op's handler id at word 4).
    std::vector<std::uint64_t> bad = good;
    bad[4] = 0xffff;
    EXPECT_FALSE(reader.installImage(8, bad).isOk());
    // An absurd count.
    bad = good;
    bad[0] = std::uint64_t{1} << 40; // n_threads
    EXPECT_FALSE(reader.installImage(8, bad).isOk());
    EXPECT_FALSE(reader.hasImage(8));
    // The pristine payload still installs after all the rejects.
    EXPECT_TRUE(reader.installImage(8, good).isOk());
    EXPECT_TRUE(reader.hasImage(8));
}

TEST(CpuMachineImage, ClearImagesDropsEverything)
{
    const auto programs = imageTestPrograms();
    CpuMachine machine(testConfig(), Affinity::System);
    machine.buildImage(1, programs);
    machine.buildImage(2, programs);
    machine.clearImages();
    EXPECT_FALSE(machine.hasImage(1));
    EXPECT_FALSE(machine.hasImage(2));
}

TEST(CpuMachineImage, CloneFromDoesNotChangeResults)
{
    const auto programs = imageTestPrograms();
    CpuMachine tmpl(testConfig(), Affinity::System, 3);
    tmpl.run(programs, 2);

    CpuMachine cloned(testConfig(), Affinity::System, 3);
    cloned.cloneFrom(tmpl);
    CpuMachine fresh(testConfig(), Affinity::System, 3);
    EXPECT_EQ(cloned.run(programs, 2).thread_cycles,
              fresh.run(programs, 2).thread_cycles);
}

} // namespace
} // namespace syncperf::cpusim
