/**
 * @file
 * Tests for the barrier- and lock-algorithm ablation models in the
 * CPU machine.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cpusim/machine.hh"

namespace syncperf::cpusim
{
namespace
{

CpuConfig
baseConfig()
{
    CpuConfig c;
    c.sockets = 2;
    c.cores_per_socket = 16;
    c.threads_per_core = 2;
    c.cores_per_complex = 16;
    return c;
}

std::vector<CpuProgram>
barrierPrograms(int n, long iters = 20)
{
    CpuProgram p;
    CpuOp op;
    op.kind = CpuOpKind::Barrier;
    p.body = {op};
    p.iterations = iters;
    return std::vector<CpuProgram>(n, p);
}

std::vector<CpuProgram>
criticalPrograms(int n, long iters = 30)
{
    CpuProgram p;
    CpuOp acq;
    acq.kind = CpuOpKind::LockAcquire;
    acq.addr = 0x3000;
    CpuOp body;
    body.kind = CpuOpKind::Store;
    body.addr = 0x4000;
    CpuOp rel;
    rel.kind = CpuOpKind::LockRelease;
    rel.addr = 0x3000;
    p.body = {acq, body, rel};
    p.iterations = iters;
    return std::vector<CpuProgram>(n, p);
}

sim::Tick
barrierCycles(BarrierAlgorithm algo, int threads)
{
    CpuConfig cfg = baseConfig();
    cfg.barrier_algorithm = algo;
    CpuMachine machine(cfg, Affinity::System);
    const auto result = machine.run(barrierPrograms(threads), 2);
    sim::Tick max = 0;
    for (auto c : result.thread_cycles)
        max = std::max(max, c);
    return max;
}

sim::Tick
criticalCycles(LockAlgorithm algo, int threads)
{
    CpuConfig cfg = baseConfig();
    cfg.lock_algorithm = algo;
    CpuMachine machine(cfg, Affinity::System);
    const auto result = machine.run(criticalPrograms(threads), 2);
    sim::Tick max = 0;
    for (auto c : result.thread_cycles)
        max = std::max(max, c);
    return max;
}

class BarrierAlgorithmTest
    : public ::testing::TestWithParam<BarrierAlgorithm>
{
};

TEST_P(BarrierAlgorithmTest, CompletesAndCostsMoreWithMoreThreads)
{
    const auto small = barrierCycles(GetParam(), 2);
    const auto large = barrierCycles(GetParam(), 32);
    EXPECT_GT(small, 0u);
    EXPECT_GT(large, small);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, BarrierAlgorithmTest,
    ::testing::Values(BarrierAlgorithm::SpinFutex,
                      BarrierAlgorithm::Central, BarrierAlgorithm::Tree,
                      BarrierAlgorithm::Dissemination),
    [](const ::testing::TestParamInfo<BarrierAlgorithm> &info) {
        switch (info.param) {
          case BarrierAlgorithm::SpinFutex: return "spin_futex";
          case BarrierAlgorithm::Central: return "central";
          case BarrierAlgorithm::Tree: return "tree";
          case BarrierAlgorithm::Dissemination: return "dissemination";
        }
        return "unknown";
    });

TEST(BarrierAlgorithms, CentralScalesWorstAtLargeTeams)
{
    const auto central = barrierCycles(BarrierAlgorithm::Central, 64);
    const auto spin_futex =
        barrierCycles(BarrierAlgorithm::SpinFutex, 64);
    const auto tree = barrierCycles(BarrierAlgorithm::Tree, 64);
    const auto dissem =
        barrierCycles(BarrierAlgorithm::Dissemination, 64);
    EXPECT_GT(central, spin_futex);
    EXPECT_GT(central, tree);
    EXPECT_GT(central, dissem);
}

TEST(BarrierAlgorithms, LogarithmicAlgorithmsNearlyFlat)
{
    // Doubling the team from 16 to 32 adds exactly one level/round.
    const auto tree16 = barrierCycles(BarrierAlgorithm::Tree, 16);
    const auto tree64 = barrierCycles(BarrierAlgorithm::Tree, 64);
    EXPECT_LT(static_cast<double>(tree64),
              1.5 * static_cast<double>(tree16));

    const auto d16 = barrierCycles(BarrierAlgorithm::Dissemination, 16);
    const auto d64 = barrierCycles(BarrierAlgorithm::Dissemination, 64);
    EXPECT_LT(static_cast<double>(d64), 1.8 * static_cast<double>(d16));
}

TEST(BarrierAlgorithms, StatsIdentifyAlgorithm)
{
    CpuConfig cfg = baseConfig();
    cfg.barrier_algorithm = BarrierAlgorithm::Tree;
    CpuMachine machine(cfg, Affinity::System);
    machine.run(barrierPrograms(8), 1);
    EXPECT_GT(machine.stats().get("cpu.barrier_tree"), 0u);
    EXPECT_EQ(machine.stats().get("cpu.barrier_futex"), 0u);
}

class LockAlgorithmTest
    : public ::testing::TestWithParam<LockAlgorithm>
{
};

TEST_P(LockAlgorithmTest, MutualExclusionCompletes)
{
    EXPECT_GT(criticalCycles(GetParam(), 8), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, LockAlgorithmTest,
    ::testing::Values(LockAlgorithm::QueueHandoff, LockAlgorithm::TasSpin,
                      LockAlgorithm::TtasSpin, LockAlgorithm::Ticket),
    [](const ::testing::TestParamInfo<LockAlgorithm> &info) {
        switch (info.param) {
          case LockAlgorithm::QueueHandoff: return "queue";
          case LockAlgorithm::TasSpin: return "tas";
          case LockAlgorithm::TtasSpin: return "ttas";
          case LockAlgorithm::Ticket: return "ticket";
        }
        return "unknown";
    });

TEST(LockAlgorithms, ContentionOrderingMatchesTheory)
{
    // Under heavy contention: TAS (line hammering) > TTAS/ticket
    // (broadcast) > MCS-style queue handoff.
    const auto queue = criticalCycles(LockAlgorithm::QueueHandoff, 24);
    const auto tas = criticalCycles(LockAlgorithm::TasSpin, 24);
    const auto ttas = criticalCycles(LockAlgorithm::TtasSpin, 24);
    EXPECT_GT(tas, ttas);
    EXPECT_GT(ttas, queue);
}

TEST(LockAlgorithms, UncontendedCostsAgree)
{
    // With 1 thread no handoffs occur, so the algorithms tie.
    const auto queue = criticalCycles(LockAlgorithm::QueueHandoff, 1);
    const auto tas = criticalCycles(LockAlgorithm::TasSpin, 1);
    EXPECT_EQ(queue, tas);
}

} // namespace
} // namespace syncperf::cpusim
