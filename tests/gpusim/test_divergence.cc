/**
 * @file
 * Tests for the SIMT-divergence extension op.
 */

#include <gtest/gtest.h>

#include "gpusim/machine.hh"

namespace syncperf::gpusim
{
namespace
{

sim::Tick
runPaths(int paths, LaunchConfig launch, long iters = 50)
{
    GpuKernel k;
    k.body = {paths <= 1 ? GpuOp::alu() : GpuOp::divergentAlu(paths)};
    k.body_iters = iters;
    GpuMachine machine(GpuConfig::rtx4090());
    const auto r = machine.run(k, launch, 1);
    sim::Tick max = 0;
    for (auto c : r.thread_cycles)
        max = std::max(max, c);
    return max;
}

TEST(Divergence, CostGrowsLinearlyWithPaths)
{
    const auto p1 = runPaths(1, {1, 32});
    const auto p2 = runPaths(2, {1, 32});
    const auto p4 = runPaths(4, {1, 32});
    const auto p8 = runPaths(8, {1, 32});
    // Per-path increments are equal (constant divergence cost).
    EXPECT_EQ(p2 - p1, (p4 - p2) / 2);
    EXPECT_EQ(p4 - p2, (p8 - p4) / 2);
    EXPECT_GT(p2, p1);
}

TEST(Divergence, SinglePathEqualsPlainAlu)
{
    EXPECT_EQ(runPaths(1, {1, 32}),
              [] {
                  GpuKernel k;
                  k.body = {GpuOp::divergentAlu(1)};
                  k.body_iters = 50;
                  GpuMachine machine(GpuConfig::rtx4090());
                  const auto r = machine.run(k, {1, 32}, 1);
                  sim::Tick max = 0;
                  for (auto c : r.thread_cycles)
                      max = std::max(max, c);
                  return max;
              }());
}

TEST(Divergence, CostIndependentOfBlockCount)
{
    EXPECT_EQ(runPaths(8, {1, 64}), runPaths(8, {64, 64}));
}

TEST(Divergence, StatsCountPaths)
{
    GpuKernel k;
    k.body = {GpuOp::divergentAlu(4)};
    k.body_iters = 10;
    GpuMachine machine(GpuConfig::rtx4090());
    machine.run(k, {1, 32}, 1);
    // (1 warmup + 10 timed) iterations x 4 paths.
    EXPECT_EQ(machine.stats().get("gpu.divergent_paths"), 44u);
}

} // namespace
} // namespace syncperf::gpusim
