/**
 * @file
 * Tests for the GPU-model extension features: the warp-aggregation
 * ablation switch and the cooperative grid-wide barrier.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "gpusim/machine.hh"

namespace syncperf::gpusim
{
namespace
{

GpuKernel
kernelOf(std::vector<GpuOp> body, long iters = 30)
{
    GpuKernel k;
    k.body = std::move(body);
    k.body_iters = iters;
    return k;
}

TEST(WarpAggregationAblation, DisablingUsesPerLaneRequests)
{
    GpuConfig cfg = GpuConfig::rtx4090();
    cfg.enable_warp_aggregation = false;
    GpuMachine machine(cfg);
    machine.run(kernelOf({GpuOp::globalAtomic(
                    AtomicOp::Add, AddressMode::SingleShared, 0x1000)}),
                {1, 32}, 1);
    EXPECT_GT(machine.stats().get("gpu.atomic_unaggregated"), 0u);
    EXPECT_EQ(machine.stats().get("gpu.atomic_aggregated"), 0u);
}

TEST(WarpAggregationAblation, AggregationSpeedsUpFullWarps)
{
    const GpuKernel k = kernelOf({GpuOp::globalAtomic(
        AtomicOp::Add, AddressMode::SingleShared, 0x1000)});

    GpuConfig on = GpuConfig::rtx4090();
    GpuConfig off = on;
    off.enable_warp_aggregation = false;

    GpuMachine m_on(on);
    GpuMachine m_off(off);
    const auto with = m_on.run(k, {4, 256}, 1).total_cycles;
    const auto without = m_off.run(k, {4, 256}, 1).total_cycles;
    EXPECT_GT(without, 2 * with)
        << "32 per-lane requests must cost far more than 1 aggregated";
}

TEST(WarpAggregationAblation, SingleLaneUnaffected)
{
    // With one active lane there is nothing to aggregate; the two
    // settings must agree.
    const GpuKernel k = kernelOf({GpuOp::globalAtomic(
        AtomicOp::Add, AddressMode::SingleShared, 0x1000,
        DataType::Int32, 1, Predicate::Lane0)});
    GpuConfig on = GpuConfig::rtx4090();
    GpuConfig off = on;
    off.enable_warp_aggregation = false;
    GpuMachine m_on(on);
    GpuMachine m_off(off);
    EXPECT_EQ(m_on.run(k, {1, 32}, 1).total_cycles,
              m_off.run(k, {1, 32}, 1).total_cycles);
}

TEST(GridSync, SynchronizesResidentGrid)
{
    GpuConfig cfg = GpuConfig::rtx4090();
    GpuMachine machine(cfg);
    const auto result =
        machine.run(kernelOf({GpuOp::gridSync()}, 10), {8, 128}, 1);
    EXPECT_EQ(machine.stats().get("gpu.grid_sync"), 11u * 1u)
        << "one release per (warmup + timed) iteration";
    // Every warp of the grid runs the same number of barriers, so
    // all timed regions have identical length.
    for (auto c : result.thread_cycles)
        EXPECT_EQ(c, result.thread_cycles.front());
}

TEST(GridSync, CostGrowsWithBlockCount)
{
    GpuConfig cfg = GpuConfig::rtx4090();
    GpuMachine a(cfg);
    GpuMachine b(cfg);
    const auto few =
        a.run(kernelOf({GpuOp::gridSync()}, 20), {2, 64}, 1).total_cycles;
    const auto many =
        b.run(kernelOf({GpuOp::gridSync()}, 20), {64, 64}, 1)
            .total_cycles;
    EXPECT_GT(many, few);
}

TEST(GridSync, NonResidentGridIsFatal)
{
    GpuConfig cfg = GpuConfig::rtx4090();
    cfg.sm_count = 2;  // 8 blocks of 1024 threads cannot be resident
    GpuMachine machine(cfg);
    ScopedLogCapture capture;
    EXPECT_THROW(
        machine.run(kernelOf({GpuOp::gridSync()}), {8, 1024}, 1),
        LogDeathException);
}

TEST(GridSync, MoreExpensiveThanBlockSync)
{
    GpuConfig cfg = GpuConfig::rtx4090();
    GpuMachine a(cfg);
    GpuMachine b(cfg);
    const auto grid =
        a.run(kernelOf({GpuOp::gridSync()}, 20), {16, 256}, 1)
            .total_cycles;
    const auto block =
        b.run(kernelOf({GpuOp::syncThreads()}, 20), {16, 256}, 1)
            .total_cycles;
    EXPECT_GT(grid, block);
}

} // namespace
} // namespace syncperf::gpusim
