/**
 * @file
 * Unit and behavioral tests for the SIMT GPU timing machine.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "gpusim/machine.hh"

namespace syncperf::gpusim
{
namespace
{

GpuConfig
testGpu()
{
    GpuConfig c = GpuConfig::rtx4090();
    c.name = "test gpu";
    return c;
}

GpuKernel
bodyKernel(std::vector<GpuOp> body, long iters = 40)
{
    GpuKernel k;
    k.body = std::move(body);
    k.body_iters = iters;
    return k;
}

/** Mean timed cycles per body iteration across all threads. */
double
cyclesPerIteration(GpuMachine &machine, const GpuKernel &kernel,
                   LaunchConfig launch, int warmup = 2)
{
    const auto result = machine.run(kernel, launch, warmup);
    double sum = 0.0;
    for (auto c : result.thread_cycles)
        sum += static_cast<double>(c);
    return sum / static_cast<double>(result.thread_cycles.size()) /
           static_cast<double>(kernel.body_iters);
}

TEST(GpuMachine, RunsToCompletion)
{
    GpuMachine machine(testGpu());
    const auto result =
        machine.run(bodyKernel({GpuOp::alu()}), {2, 64}, 1);
    EXPECT_EQ(result.thread_cycles.size(), 128u);
    EXPECT_GT(result.total_cycles, 0u);
}

TEST(GpuMachine, Deterministic)
{
    const GpuKernel k = bodyKernel(
        {GpuOp::globalAtomic(AtomicOp::Add, AddressMode::SingleShared,
                             0x1000)});
    GpuMachine a(testGpu(), 3);
    GpuMachine b(testGpu(), 3);
    EXPECT_EQ(a.run(k, {4, 128}, 2).thread_cycles,
              b.run(k, {4, 128}, 2).thread_cycles);
}

TEST(GpuMachine, PartialWarpsGetLanesClamped)
{
    GpuMachine machine(testGpu());
    const auto result = machine.run(bodyKernel({GpuOp::alu()}), {1, 40}, 1);
    // 40 threads = one full warp + one 8-lane warp.
    EXPECT_EQ(result.thread_cycles.size(), 40u);
}

TEST(GpuMachine, SyncThreadsConstantUpToOneWarp)
{
    const GpuKernel k = bodyKernel({GpuOp::syncThreads()});
    GpuMachine m2(testGpu());
    GpuMachine m32(testGpu());
    const double c2 = cyclesPerIteration(m2, k, {1, 2});
    const double c32 = cyclesPerIteration(m32, k, {1, 32});
    EXPECT_DOUBLE_EQ(c2, c32);
}

TEST(GpuMachine, SyncThreadsSlowsWithWarps)
{
    const GpuKernel k = bodyKernel({GpuOp::syncThreads()});
    GpuMachine m1(testGpu());
    GpuMachine m8(testGpu());
    const double c32 = cyclesPerIteration(m1, k, {1, 32});
    const double c256 = cyclesPerIteration(m8, k, {1, 256});
    EXPECT_GT(c256, 2.0 * c32);
}

TEST(GpuMachine, SyncThreadsIndependentOfBlockCount)
{
    const GpuKernel k = bodyKernel({GpuOp::syncThreads()});
    GpuMachine m1(testGpu());
    GpuMachine m64(testGpu());
    const double one = cyclesPerIteration(m1, k, {1, 256});
    const double many = cyclesPerIteration(m64, k, {64, 256});
    EXPECT_DOUBLE_EQ(one, many);
}

TEST(GpuMachine, SyncWarpFullSpeedUntilIssueSaturates)
{
    const GpuKernel k = bodyKernel({GpuOp::syncWarp()});
    // RTX 4090 preset: full rate up to 256 threads per SM.
    GpuMachine a(testGpu());
    GpuMachine b(testGpu());
    GpuMachine c(testGpu());
    const double c64 = cyclesPerIteration(a, k, {1, 64});
    const double c256 = cyclesPerIteration(b, k, {1, 256});
    const double c1024 = cyclesPerIteration(c, k, {1, 1024});
    // A startup transient of a cycle or two is tolerated; the knee
    // itself must be unambiguous.
    EXPECT_NEAR(c64, c256, 0.02 * c64);
    EXPECT_GT(c1024, 1.5 * c256);
}

TEST(GpuMachine, WarpAggregationCollapsesSameAddressAdds)
{
    const GpuKernel k = bodyKernel({GpuOp::globalAtomic(
        AtomicOp::Add, AddressMode::SingleShared, 0x1000)});
    GpuMachine machine(testGpu());
    machine.run(k, {1, 32}, 1);
    EXPECT_GT(machine.stats().get("gpu.atomic_aggregated"), 0u);
    EXPECT_EQ(machine.stats().get("gpu.atomic_per_thread"), 0u);
}

TEST(GpuMachine, AggregatedAddConstantWithinTwoWarpsPerSm)
{
    const GpuKernel k = bodyKernel({GpuOp::globalAtomic(
        AtomicOp::Add, AddressMode::SingleShared, 0x1000)});
    GpuMachine a(testGpu());
    GpuMachine b(testGpu());
    GpuMachine c(testGpu());
    const double one_warp = cyclesPerIteration(a, k, {1, 32});
    const double two_warps = cyclesPerIteration(b, k, {1, 64});
    const double four_warps = cyclesPerIteration(c, k, {1, 128});
    EXPECT_NEAR(one_warp, two_warps, 0.02 * one_warp);
    EXPECT_GT(four_warps, 1.5 * two_warps);
}

TEST(GpuMachine, CasNeverAggregates)
{
    const GpuKernel k = bodyKernel({GpuOp::globalAtomic(
        AtomicOp::Cas, AddressMode::SingleShared, 0x1000)});
    GpuMachine machine(testGpu());
    machine.run(k, {1, 32}, 1);
    EXPECT_EQ(machine.stats().get("gpu.atomic_aggregated"), 0u);
    EXPECT_GT(machine.stats().get("gpu.atomic_cas_like"), 0u);
}

TEST(GpuMachine, CasConstantUpToPipelineLanes)
{
    const GpuKernel k = bodyKernel({GpuOp::globalAtomic(
        AtomicOp::Cas, AddressMode::SingleShared, 0x1000)});
    GpuMachine a(testGpu());
    GpuMachine b(testGpu());
    GpuMachine c(testGpu());
    const double c1 = cyclesPerIteration(a, k, {1, 2});
    const double c4 = cyclesPerIteration(b, k, {1, 4});
    const double c32 = cyclesPerIteration(c, k, {1, 32});
    EXPECT_NEAR(c1, c4, 0.05 * c1);
    EXPECT_GT(c32, 2.0 * c4);
}

TEST(GpuMachine, PerThreadAtomicsUseUnits)
{
    const GpuKernel k = bodyKernel({GpuOp::globalAtomic(
        AtomicOp::Add, AddressMode::PerThread, 0x100000,
        DataType::Int32, 32)});
    GpuMachine machine(testGpu());
    machine.run(k, {1, 64}, 1);
    EXPECT_GT(machine.stats().get("gpu.atomic_per_thread"), 0u);
    EXPECT_EQ(machine.stats().get("gpu.atomic_aggregated"), 0u);
}

TEST(GpuMachine, IntAtomicsFasterThanDoubleAtScale)
{
    auto kernelFor = [](DataType t) {
        return bodyKernel({GpuOp::globalAtomic(
            AtomicOp::Add, AddressMode::SingleShared, 0x1000, t)});
    };
    GpuMachine mi(testGpu());
    GpuMachine md(testGpu());
    const double ci =
        cyclesPerIteration(mi, kernelFor(DataType::Int32), {64, 256});
    const double cd =
        cyclesPerIteration(md, kernelFor(DataType::Float64), {64, 256});
    EXPECT_LT(ci, cd);
}

TEST(GpuMachine, ShflSixtyFourBitCostsTwoMicroOps)
{
    GpuMachine machine(testGpu());
    machine.run(bodyKernel({GpuOp::shfl(DataType::Float64)}), {1, 32}, 1);
    const auto uops64 = machine.stats().get("gpu.shfl_uops");
    GpuMachine machine32(testGpu());
    machine32.run(bodyKernel({GpuOp::shfl(DataType::Int32)}), {1, 32}, 1);
    const auto uops32 = machine32.stats().get("gpu.shfl_uops");
    EXPECT_EQ(uops64, 2 * uops32);
}

TEST(GpuMachine, WideShflKneesAtHalfTheWarpCount)
{
    // 32-bit shuffles run at full speed at 512 threads/SM on the
    // 4090 preset; 64-bit ones have already slowed down.
    auto kernelFor = [](DataType t) {
        return bodyKernel({GpuOp::shfl(t)});
    };
    GpuMachine a(testGpu());
    GpuMachine b(testGpu());
    GpuMachine c(testGpu());
    GpuMachine d(testGpu());
    const double w32_256 =
        cyclesPerIteration(a, kernelFor(DataType::Int32), {1, 256});
    const double w32_512 =
        cyclesPerIteration(b, kernelFor(DataType::Int32), {1, 512});
    const double w64_256 =
        cyclesPerIteration(c, kernelFor(DataType::Float64), {1, 256});
    const double w64_512 =
        cyclesPerIteration(d, kernelFor(DataType::Float64), {1, 512});
    EXPECT_NEAR(w32_256, w32_512, 0.02 * w32_256);
    EXPECT_GT(w64_512, 1.2 * w64_256);
}

TEST(GpuMachine, VoteSlowerThanSyncWarpButFlat)
{
    GpuMachine a(testGpu());
    GpuMachine b(testGpu());
    const double sync =
        cyclesPerIteration(a, bodyKernel({GpuOp::syncWarp()}), {1, 64});
    const double vote =
        cyclesPerIteration(b, bodyKernel({GpuOp::vote()}), {1, 64});
    EXPECT_GT(vote, sync);
}

TEST(GpuMachine, FenceScopesOrderedByCost)
{
    auto kernelFor = [](FenceScope s) {
        return bodyKernel({GpuOp::globalStore(0x100000),
                           GpuOp::fence(s),
                           GpuOp::globalStore(0x200000)});
    };
    GpuMachine mb(testGpu());
    GpuMachine md(testGpu());
    GpuMachine ms(testGpu());
    const double block =
        cyclesPerIteration(mb, kernelFor(FenceScope::Block), {1, 32});
    const double device =
        cyclesPerIteration(md, kernelFor(FenceScope::Device), {1, 32});
    const double system =
        cyclesPerIteration(ms, kernelFor(FenceScope::System), {1, 32});
    EXPECT_LT(block, device);
    EXPECT_LT(device, system);
}

TEST(GpuMachine, SystemFenceJitterIsSeedDependent)
{
    const GpuKernel k = bodyKernel(
        {GpuOp::globalStore(0x100000), GpuOp::fence(FenceScope::System),
         GpuOp::globalStore(0x200000)});
    GpuMachine a(testGpu(), 1);
    GpuMachine b(testGpu(), 2);
    EXPECT_NE(a.run(k, {1, 32}, 1).total_cycles,
              b.run(k, {1, 32}, 1).total_cycles);
}

TEST(GpuMachine, SharedAtomicsStayOnTheSm)
{
    const GpuKernel k = bodyKernel(
        {GpuOp::sharedAtomic(AtomicOp::Max, 0x5000)});
    GpuMachine machine(testGpu());
    machine.run(k, {2, 64}, 1);
    EXPECT_GT(machine.stats().get("gpu.smem_atomic"), 0u);
    EXPECT_EQ(machine.stats().get("gpu.atomic_aggregated"), 0u);
}

TEST(GpuMachine, BlocksScheduleInWaves)
{
    // More blocks than can be resident: every block still runs.
    GpuConfig cfg = testGpu();
    cfg.sm_count = 2;
    GpuMachine machine(cfg);
    const auto result =
        machine.run(bodyKernel({GpuOp::alu()}), {8, 1024}, 1);
    EXPECT_EQ(machine.stats().get("gpu.blocks_launched"), 8u);
    EXPECT_EQ(machine.stats().get("gpu.blocks_retired"), 8u);
    EXPECT_EQ(result.thread_cycles.size(), 8u * 1024u);
}

TEST(GpuMachine, ResidencyRespectsThreadLimit)
{
    // 1536 threads/SM on the 4090: two 1024-thread blocks cannot
    // share an SM, so with 1 SM the second block waits.
    GpuConfig cfg = testGpu();
    cfg.sm_count = 1;
    GpuMachine serial(cfg);
    const auto two_blocks =
        serial.run(bodyKernel({GpuOp::alu()}, 100), {2, 1024}, 1);

    GpuMachine parallel_m(cfg);
    const auto one_block =
        parallel_m.run(bodyKernel({GpuOp::alu()}, 100), {1, 1024}, 1);
    EXPECT_GT(two_blocks.total_cycles,
              static_cast<sim::Tick>(1.8 * one_block.total_cycles));
}

TEST(GpuMachine, ReduceSyncRequiresCc80)
{
    GpuConfig turing = GpuConfig::rtx2070Super();
    GpuMachine machine(turing);
    ScopedLogCapture capture;
    EXPECT_THROW(machine.run(bodyKernel({GpuOp::reduceSync()}), {1, 32}, 1),
                 LogDeathException);
}

TEST(GpuMachine, Thread0PredicateRunsOncePerBlock)
{
    const GpuKernel k = bodyKernel({GpuOp::globalAtomic(
        AtomicOp::Max, AddressMode::SingleShared, 0x1000,
        DataType::Int32, 1, Predicate::Thread0)});
    GpuMachine machine(testGpu());
    machine.run(k, {2, 128}, 1);
    // 2 blocks x (1 warmup + 40 timed) iterations, warp 0 only.
    EXPECT_EQ(machine.stats().get("gpu.atomic_aggregated"), 2u * 41u);
}

TEST(GpuMachine, InvalidLaunchPanics)
{
    GpuMachine machine(testGpu());
    ScopedLogCapture capture;
    EXPECT_THROW(machine.run(bodyKernel({GpuOp::alu()}), {0, 32}, 1),
                 LogDeathException);
    EXPECT_THROW(machine.run(bodyKernel({GpuOp::alu()}), {1, 2048}, 1),
                 LogDeathException);
}

/** A kernel touching several decode paths: a same-address atomic, a
 * barrier, a shuffle, and a device fence. */
GpuKernel
imageTestKernel()
{
    return bodyKernel(
        {GpuOp::globalAtomic(AtomicOp::Add, AddressMode::SingleShared,
                             0x1000),
         GpuOp::syncThreads(), GpuOp::shfl(DataType::Int32),
         GpuOp::fence(FenceScope::Device)},
        25);
}

TEST(GpuMachineImage, BuiltImageRunMatchesColdRun)
{
    const GpuKernel k = imageTestKernel();
    GpuMachine cold(testGpu(), 5);
    const auto want = cold.run(k, {4, 128}, 2).thread_cycles;

    GpuMachine warm(testGpu(), 5);
    warm.buildImage(42, k);
    ASSERT_TRUE(warm.hasImage(42));
    EXPECT_EQ(warm.run(k, {4, 128}, 2, 42).thread_cycles, want);
    // Replaying the image again stays identical, including at a
    // different launch geometry (decoding is geometry-independent).
    warm.reseed(5);
    EXPECT_EQ(warm.run(k, {4, 128}, 2, 42).thread_cycles, want);
    GpuMachine cold2(testGpu(), 5);
    EXPECT_EQ(warm.run(k, {2, 64}, 2, 42).thread_cycles.size(),
              cold2.run(k, {2, 64}, 2).thread_cycles.size());
}

TEST(GpuMachineImage, EncodeInstallRoundTripMatchesColdRun)
{
    const GpuKernel k = imageTestKernel();
    GpuMachine writer(testGpu(), 9);
    writer.buildImage(7, k);
    std::vector<std::uint64_t> words;
    writer.encodeImage(7, words);
    ASSERT_FALSE(words.empty());

    GpuMachine reader(testGpu(), 9);
    ASSERT_TRUE(reader.installImage(7, words).isOk());
    ASSERT_TRUE(reader.hasImage(7));

    GpuMachine cold(testGpu(), 9);
    EXPECT_EQ(reader.run(k, {4, 128}, 2, 7).thread_cycles,
              cold.run(k, {4, 128}, 2).thread_cycles);
}

TEST(GpuMachineImage, InstallRejectsMalformedPayloads)
{
    GpuMachine writer(testGpu());
    writer.buildImage(7, imageTestKernel());
    std::vector<std::uint64_t> good;
    writer.encodeImage(7, good);

    GpuMachine reader(testGpu());
    // Truncations at every word boundary.
    for (std::size_t len = 0; len < good.size(); ++len) {
        std::vector<std::uint64_t> bad(good.begin(),
                                       good.begin() +
                                           static_cast<long>(len));
        EXPECT_FALSE(reader.installImage(8, bad).isOk())
            << "truncation to " << len << " words was accepted";
        EXPECT_FALSE(reader.hasImage(8));
    }
    // A wild handler id (the empty prologue contributes one count
    // word, so the first body op's handler id is word 2).
    std::vector<std::uint64_t> bad = good;
    bad[2] = 0xffff;
    EXPECT_FALSE(reader.installImage(8, bad).isOk());
    // A zero repeat count.
    bad = good;
    bad[3] = 0;
    EXPECT_FALSE(reader.installImage(8, bad).isOk());
    // Key 0 is the "decode normally" sentinel and never installable.
    EXPECT_FALSE(reader.installImage(0, good).isOk());
    EXPECT_FALSE(reader.hasImage(8));
    // The pristine payload still installs after all the rejects.
    EXPECT_TRUE(reader.installImage(8, good).isOk());
    EXPECT_TRUE(reader.hasImage(8));
}

TEST(GpuMachineImage, CloneFromDoesNotChangeResults)
{
    const GpuKernel k = imageTestKernel();
    GpuMachine tmpl(testGpu(), 3);
    tmpl.run(k, {4, 128}, 2);

    GpuMachine cloned(testGpu(), 3);
    cloned.cloneFrom(tmpl);
    GpuMachine fresh(testGpu(), 3);
    EXPECT_EQ(cloned.run(k, {4, 128}, 2).thread_cycles,
              fresh.run(k, {4, 128}, 2).thread_cycles);
}

} // namespace
} // namespace syncperf::gpusim
