/**
 * @file
 * Tests for occupancy arithmetic and its consistency with the block
 * scheduler's observable behavior.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "gpusim/machine.hh"
#include "gpusim/occupancy.hh"

namespace syncperf::gpusim
{
namespace
{

TEST(Occupancy, Rtx4090FullBlocks)
{
    // 1536 threads/SM: exactly one 1024-thread block fits.
    const auto o =
        computeOccupancy(GpuConfig::rtx4090(), {128, 1024});
    EXPECT_EQ(o.blocks_per_sm, 1);
    EXPECT_EQ(o.threads_per_sm, 1024);
    EXPECT_EQ(o.warps_per_sm, 32);
    EXPECT_EQ(o.resident_blocks, 128);
    EXPECT_EQ(o.waves, 1);
    EXPECT_TRUE(o.coResident());
    EXPECT_NEAR(o.fraction, 1024.0 / 1536.0, 1e-12);
}

TEST(Occupancy, A100FitsTwoFullBlocks)
{
    const auto o = computeOccupancy(GpuConfig::a100(), {216, 1024});
    EXPECT_EQ(o.blocks_per_sm, 2);
    EXPECT_EQ(o.threads_per_sm, 2048);
    EXPECT_EQ(o.waves, 1);
}

TEST(Occupancy, HardwareBlockSlotsCapSmallBlocks)
{
    // 48 tiny blocks per SM would fit by threads, but the hardware
    // caps at max_blocks_per_sm (16).
    const auto cfg = GpuConfig::rtx4090();
    const auto o = computeOccupancy(cfg, {1000, 32});
    EXPECT_EQ(o.blocks_per_sm, cfg.max_blocks_per_sm);
    EXPECT_EQ(o.threads_per_sm, 16 * 32);
}

TEST(Occupancy, WavesRoundUp)
{
    GpuConfig cfg = GpuConfig::rtx4090();
    cfg.sm_count = 4;
    // 1 block/SM at 1024 threads: 9 blocks on 4 SMs = 3 waves.
    const auto o = computeOccupancy(cfg, {9, 1024});
    EXPECT_EQ(o.waves, 3);
    EXPECT_EQ(o.resident_blocks, 4);
    EXPECT_FALSE(o.coResident());
}

TEST(Occupancy, PartialWarpsCountWholeWarps)
{
    const auto o = computeOccupancy(GpuConfig::rtx4090(), {1, 48});
    // 48 threads = 2 warps (one partial).
    EXPECT_EQ(o.warps_per_sm, o.blocks_per_sm * 2);
}

TEST(Occupancy, InvalidLaunchPanics)
{
    ScopedLogCapture capture;
    EXPECT_THROW(computeOccupancy(GpuConfig::rtx4090(), {0, 32}),
                 LogDeathException);
    EXPECT_THROW(computeOccupancy(GpuConfig::rtx4090(), {1, 4096}),
                 LogDeathException);
}

TEST(Occupancy, MatchesSchedulerWaveBehavior)
{
    // The machine must run exactly ceil(waves) sequential passes:
    // total runtime scales with the wave count for a fixed kernel.
    GpuConfig cfg = GpuConfig::rtx4090();
    cfg.sm_count = 2;
    GpuKernel k;
    k.body = {GpuOp::alu()};
    k.body_iters = 200;

    const auto one_wave = computeOccupancy(cfg, {2, 1024});
    const auto three_waves = computeOccupancy(cfg, {6, 1024});
    ASSERT_EQ(one_wave.waves, 1);
    ASSERT_EQ(three_waves.waves, 3);

    GpuMachine m1(cfg);
    GpuMachine m3(cfg);
    const auto t1 = m1.run(k, {2, 1024}, 1).total_cycles;
    const auto t3 = m3.run(k, {6, 1024}, 1).total_cycles;
    EXPECT_GT(t3, 2 * t1);
    EXPECT_LT(t3, 4 * t1);
}

TEST(Occupancy, GridSyncSafetyAgreesWithMachine)
{
    GpuConfig cfg = GpuConfig::rtx4090();
    cfg.sm_count = 2;
    GpuKernel k;
    k.body = {GpuOp::gridSync()};
    k.body_iters = 3;

    const auto safe = computeOccupancy(cfg, {2, 1024});
    ASSERT_TRUE(safe.coResident());
    GpuMachine ok(cfg);
    EXPECT_NO_THROW(ok.run(k, {2, 1024}, 1));

    const auto unsafe = computeOccupancy(cfg, {4, 1024});
    ASSERT_FALSE(unsafe.coResident());
    GpuMachine bad(cfg);
    ScopedLogCapture capture;
    EXPECT_THROW(bad.run(k, {4, 1024}, 1), LogDeathException);
}

} // namespace
} // namespace syncperf::gpusim
