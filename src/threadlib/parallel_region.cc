/**
 * @file
 * Implementation of the fork/join substrate.
 */

#include "parallel_region.hh"

#include <thread>
#include <vector>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "common/logging.hh"

namespace syncperf::threadlib
{

int
hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

void
bindThisThread(int tid, int n_threads, Affinity affinity)
{
    if (affinity == Affinity::System)
        return;
#ifdef __linux__
    const int hw = hardwareThreads();
    int cpu;
    if (affinity == Affinity::Close) {
        cpu = tid % hw;
    } else {
        // Spread: space threads out over the hardware threads.
        const int step = std::max(1, hw / std::max(1, n_threads));
        cpu = (tid * step) % hw;
    }
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    // Best effort: failures (e.g. restricted cpusets) are ignored.
    pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
    (void)tid;
    (void)n_threads;
#endif
}

void
parallelRegion(int n_threads, const std::function<void(int)> &body,
               Affinity affinity)
{
    SYNCPERF_ASSERT(n_threads >= 1);
    if (n_threads == 1) {
        body(0);
        return;
    }

    std::vector<std::thread> team;
    team.reserve(n_threads - 1);
    for (int t = 1; t < n_threads; ++t) {
        team.emplace_back([&body, t, n_threads, affinity] {
            bindThisThread(t, n_threads, affinity);
            body(t);
        });
    }
    bindThisThread(0, n_threads, affinity);
    body(0);
    for (auto &thread : team)
        thread.join();
}

} // namespace syncperf::threadlib
