/**
 * @file
 * Implementation of the spin-lock algorithms.
 */

#include "locks.hh"

#include <thread>

namespace syncperf::threadlib
{
namespace
{

inline void
politePause(unsigned &spins)
{
    if (++spins % 64 == 0)
        std::this_thread::yield();
}

} // namespace

// -------------------------------------------------------------------- TAS

void
TasLock::acquire()
{
    unsigned spins = 0;
    while (flag_.exchange(1, std::memory_order_acquire) != 0)
        politePause(spins);
}

void
TasLock::release()
{
    flag_.store(0, std::memory_order_release);
}

bool
TasLock::tryAcquire()
{
    return flag_.exchange(1, std::memory_order_acquire) == 0;
}

// ------------------------------------------------------------------- TTAS

void
TtasLock::acquire()
{
    unsigned spins = 0;
    for (;;) {
        while (flag_.load(std::memory_order_relaxed) != 0)
            politePause(spins);
        if (flag_.exchange(1, std::memory_order_acquire) == 0)
            return;
    }
}

void
TtasLock::release()
{
    flag_.store(0, std::memory_order_release);
}

bool
TtasLock::tryAcquire()
{
    if (flag_.load(std::memory_order_relaxed) != 0)
        return false;
    return flag_.exchange(1, std::memory_order_acquire) == 0;
}

// ----------------------------------------------------------------- Ticket

void
TicketLock::acquire()
{
    const std::uint32_t ticket =
        next_.fetch_add(1, std::memory_order_relaxed);
    unsigned spins = 0;
    while (serving_.load(std::memory_order_acquire) != ticket)
        politePause(spins);
}

void
TicketLock::release()
{
    serving_.store(serving_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
}

bool
TicketLock::tryAcquire()
{
    std::uint32_t ticket = serving_.load(std::memory_order_acquire);
    std::uint32_t expected = ticket;
    // Take a ticket only if it would be served immediately.
    return next_.compare_exchange_strong(expected, ticket + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
}

// -------------------------------------------------------------------- MCS

McsLock::Node &
McsLock::myNode()
{
    thread_local Node node;
    return node;
}

void
McsLock::acquire()
{
    Node &me = myNode();
    me.next.store(nullptr, std::memory_order_relaxed);
    me.locked.store(1, std::memory_order_relaxed);

    Node *prev = tail_.exchange(&me, std::memory_order_acq_rel);
    if (prev == nullptr)
        return;
    prev->next.store(&me, std::memory_order_release);
    unsigned spins = 0;
    while (me.locked.load(std::memory_order_acquire) != 0)
        politePause(spins);
}

void
McsLock::release()
{
    Node &me = myNode();
    Node *successor = me.next.load(std::memory_order_acquire);
    if (successor == nullptr) {
        Node *expected = &me;
        if (tail_.compare_exchange_strong(expected, nullptr,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
            return;  // no waiter
        }
        // A waiter is linking itself in; wait for the pointer.
        unsigned spins = 0;
        while ((successor = me.next.load(std::memory_order_acquire)) ==
               nullptr) {
            politePause(spins);
        }
    }
    successor->locked.store(0, std::memory_order_release);
}

bool
McsLock::tryAcquire()
{
    Node &me = myNode();
    me.next.store(nullptr, std::memory_order_relaxed);
    me.locked.store(1, std::memory_order_relaxed);
    Node *expected = nullptr;
    return tail_.compare_exchange_strong(expected, &me,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed);
}

} // namespace syncperf::threadlib
