/**
 * @file
 * Atomic-operation wrappers matching the OpenMP atomic flavors.
 *
 * OpenMP distinguishes atomic update, capture, read, and write. For
 * integer types these map to single hardware RMW instructions; for
 * floating-point types an update compiles to a compare-and-swap
 * loop, which is the per-type cost difference the paper measures.
 */

#ifndef SYNCPERF_THREADLIB_ATOMICS_HH
#define SYNCPERF_THREADLIB_ATOMICS_HH

#include <atomic>
#include <type_traits>

namespace syncperf::threadlib
{

/**
 * #pragma omp atomic update -- x += v.
 *
 * Integer types use the native fetch_add; floating-point types use
 * a CAS loop (GCC 12's libstdc++ has no native atomic<float>
 * fetch_add on x86, mirroring what the OpenMP runtime emits).
 */
template <typename T>
void
atomicUpdate(std::atomic<T> &x, T v)
{
    if constexpr (std::is_integral_v<T>) {
        x.fetch_add(v, std::memory_order_relaxed);
    } else {
        T cur = x.load(std::memory_order_relaxed);
        while (!x.compare_exchange_weak(cur, cur + v,
                                        std::memory_order_relaxed)) {
        }
    }
}

/** #pragma omp atomic capture -- returns the pre-update value. */
template <typename T>
T
atomicCapture(std::atomic<T> &x, T v)
{
    if constexpr (std::is_integral_v<T>) {
        return x.fetch_add(v, std::memory_order_relaxed);
    } else {
        T cur = x.load(std::memory_order_relaxed);
        while (!x.compare_exchange_weak(cur, cur + v,
                                        std::memory_order_relaxed)) {
        }
        return cur;
    }
}

/** #pragma omp atomic read. */
template <typename T>
T
atomicRead(const std::atomic<T> &x)
{
    return x.load(std::memory_order_relaxed);
}

/** #pragma omp atomic write. */
template <typename T>
void
atomicWrite(std::atomic<T> &x, T v)
{
    x.store(v, std::memory_order_relaxed);
}

/** Atomic maximum via CAS loop (used by the reduction examples). */
template <typename T>
void
atomicMax(std::atomic<T> &x, T v)
{
    T cur = x.load(std::memory_order_relaxed);
    while (cur < v &&
           !x.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

/** #pragma omp flush -- a full memory fence. */
inline void
flush()
{
    std::atomic_thread_fence(std::memory_order_seq_cst);
}

} // namespace syncperf::threadlib

#endif // SYNCPERF_THREADLIB_ATOMICS_HH
