/**
 * @file
 * From-scratch spin-lock algorithms used for critical sections.
 *
 * The paper's critical-section results are explained by the locking
 * overhead of the OpenMP runtime; these are the standard algorithms
 * such runtimes choose between. All satisfy a common interface so
 * the experiments and tests can sweep them.
 */

#ifndef SYNCPERF_THREADLIB_LOCKS_HH
#define SYNCPERF_THREADLIB_LOCKS_HH

#include <atomic>
#include <cstdint>

namespace syncperf::threadlib
{

/** Common lock interface. */
class Lock
{
  public:
    virtual ~Lock() = default;
    virtual void acquire() = 0;
    virtual void release() = 0;

    /** Try once without spinning; true on success. */
    virtual bool tryAcquire() = 0;
};

/** Test-and-set: one atomic exchange per attempt. */
class TasLock : public Lock
{
  public:
    void acquire() override;
    void release() override;
    bool tryAcquire() override;

  private:
    alignas(64) std::atomic<std::uint32_t> flag_{0};
};

/**
 * Test-and-test-and-set: spin on a plain load, attempt the exchange
 * only when the lock looks free — far less coherence traffic under
 * contention than TasLock.
 */
class TtasLock : public Lock
{
  public:
    void acquire() override;
    void release() override;
    bool tryAcquire() override;

  private:
    alignas(64) std::atomic<std::uint32_t> flag_{0};
};

/** FIFO ticket lock: fair, one RMW to enter, contended spin on a
 * shared now-serving counter. */
class TicketLock : public Lock
{
  public:
    void acquire() override;
    void release() override;
    bool tryAcquire() override;

  private:
    alignas(64) std::atomic<std::uint32_t> next_{0};
    alignas(64) std::atomic<std::uint32_t> serving_{0};
};

/**
 * MCS queue lock: each waiter spins on its own node, so handoff
 * touches exactly one remote line. Uses a thread_local queue node,
 * so a thread may hold at most one McsLock at a time.
 */
class McsLock : public Lock
{
  public:
    void acquire() override;
    void release() override;
    bool tryAcquire() override;

  private:
    struct alignas(64) Node
    {
        std::atomic<Node *> next{nullptr};
        std::atomic<std::uint32_t> locked{0};
    };

    static Node &myNode();

    alignas(64) std::atomic<Node *> tail_{nullptr};
};

} // namespace syncperf::threadlib

#endif // SYNCPERF_THREADLIB_LOCKS_HH
