/**
 * @file
 * From-scratch barrier algorithms.
 *
 * The paper measures the OpenMP barrier as a black box; this module
 * implements the classic algorithms such a runtime is built from so
 * they can be run natively (correctness on any host) and mirrored in
 * the CPU timing model.
 */

#ifndef SYNCPERF_THREADLIB_BARRIER_HH
#define SYNCPERF_THREADLIB_BARRIER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace syncperf::threadlib
{

/** A cache-line-padded word, preventing false sharing of per-thread
 * spin state. */
struct alignas(64) PaddedU32
{
    std::uint32_t v = 0;
};

/** Common interface so experiments can swap algorithms. */
class Barrier
{
  public:
    virtual ~Barrier() = default;

    /**
     * Block until every member of the team has arrived.
     *
     * @param tid Caller's team rank in [0, team size).
     */
    virtual void arriveAndWait(int tid) = 0;

    /** Team size the barrier was built for. */
    virtual int teamSize() const = 0;
};

/**
 * Centralized sense-reversing barrier: one atomic arrival counter
 * plus a global sense flag each thread compares with its local
 * sense. This is the shape libgomp's barrier takes when spinning.
 */
class CentralBarrier : public Barrier
{
  public:
    explicit CentralBarrier(int team_size);

    void arriveAndWait(int tid) override;
    int teamSize() const override { return team_size_; }

  private:
    const int team_size_;
    alignas(64) std::atomic<int> arrived_{0};
    alignas(64) std::atomic<std::uint32_t> sense_{0};
    std::vector<PaddedU32> local_sense_;
};

/**
 * Static combining-tree barrier with fan-in 4: threads arrive at
 * leaves; interior nodes propagate to the root, which flips a
 * release flag observed by everyone.
 */
class TreeBarrier : public Barrier
{
  public:
    explicit TreeBarrier(int team_size);

    void arriveAndWait(int tid) override;
    int teamSize() const override { return team_size_; }

  private:
    static constexpr int fan_in = 4;

    struct alignas(64) Node
    {
        std::atomic<int> count{0};
        int expected = 0;
        int parent = -1;
    };

    const int team_size_;
    std::vector<Node> nodes_;
    std::vector<int> leaf_of_thread_;
    alignas(64) std::atomic<std::uint32_t> release_{0};
    std::vector<PaddedU32> local_sense_;
};

/**
 * Dissemination barrier: log2(N) rounds of pairwise flag exchanges;
 * no single hot location, at the cost of more total traffic.
 */
class DisseminationBarrier : public Barrier
{
  public:
    explicit DisseminationBarrier(int team_size);

    void arriveAndWait(int tid) override;
    int teamSize() const override { return team_size_; }

  private:
    struct alignas(64) Flag
    {
        std::atomic<std::uint32_t> value{0};
    };

    const int team_size_;
    int rounds_;
    // flags_[round][thread]
    std::vector<std::vector<Flag>> flags_;
    std::vector<PaddedU32> epoch_;  // per-thread barrier count
};

} // namespace syncperf::threadlib

#endif // SYNCPERF_THREADLIB_BARRIER_HH
