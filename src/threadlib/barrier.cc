/**
 * @file
 * Implementation of the barrier algorithms.
 */

#include "barrier.hh"

#include <thread>

#include "common/logging.hh"

namespace syncperf::threadlib
{
namespace
{

/** Polite spin: yield occasionally so oversubscribed hosts progress. */
class Spinner
{
  public:
    void
    pause()
    {
        if (++spins_ % 64 == 0)
            std::this_thread::yield();
    }

  private:
    unsigned spins_ = 0;
};

} // namespace

// ---------------------------------------------------------------- Central

CentralBarrier::CentralBarrier(int team_size)
    : team_size_(team_size), local_sense_(team_size)
{
    SYNCPERF_ASSERT(team_size >= 1);
}

void
CentralBarrier::arriveAndWait(int tid)
{
    SYNCPERF_ASSERT(tid >= 0 && tid < team_size_);
    const std::uint32_t my_sense = local_sense_[tid].v ^ 1u;
    local_sense_[tid].v = my_sense;

    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        team_size_) {
        arrived_.store(0, std::memory_order_relaxed);
        sense_.store(my_sense, std::memory_order_release);
        return;
    }
    Spinner spin;
    while (sense_.load(std::memory_order_acquire) != my_sense)
        spin.pause();
}

// ------------------------------------------------------------------- Tree

TreeBarrier::TreeBarrier(int team_size)
    : team_size_(team_size), local_sense_(team_size)
{
    SYNCPERF_ASSERT(team_size >= 1);

    // Build levels bottom-up; nodes_ stores them flattened with
    // parent links pointing at the next level.
    const int leaves = (team_size + fan_in - 1) / fan_in;
    std::vector<int> level_sizes{leaves};
    while (level_sizes.back() > 1) {
        level_sizes.push_back((level_sizes.back() + fan_in - 1) / fan_in);
    }

    int total = 0;
    for (int s : level_sizes)
        total += s;
    nodes_ = std::vector<Node>(total);

    int level_base = 0;
    for (std::size_t lvl = 0; lvl + 1 < level_sizes.size(); ++lvl) {
        const int next_base = level_base + level_sizes[lvl];
        for (int i = 0; i < level_sizes[lvl]; ++i) {
            nodes_[level_base + i].parent = next_base + i / fan_in;
            nodes_[next_base + i / fan_in].expected++;
        }
        level_base = next_base;
    }

    leaf_of_thread_.resize(team_size);
    for (int t = 0; t < team_size; ++t) {
        leaf_of_thread_[t] = t / fan_in;
        nodes_[t / fan_in].expected++;
    }
}

void
TreeBarrier::arriveAndWait(int tid)
{
    SYNCPERF_ASSERT(tid >= 0 && tid < team_size_);
    const std::uint32_t my_sense = local_sense_[tid].v ^ 1u;
    local_sense_[tid].v = my_sense;

    int node = leaf_of_thread_[tid];
    while (node >= 0) {
        Node &n = nodes_[node];
        if (n.count.fetch_add(1, std::memory_order_acq_rel) + 1 !=
            n.expected) {
            break;  // not the last arriver at this node
        }
        n.count.store(0, std::memory_order_relaxed);
        if (n.parent < 0) {
            release_.store(my_sense, std::memory_order_release);
            return;
        }
        node = n.parent;
    }
    Spinner spin;
    while (release_.load(std::memory_order_acquire) != my_sense)
        spin.pause();
}

// ---------------------------------------------------------- Dissemination

DisseminationBarrier::DisseminationBarrier(int team_size)
    : team_size_(team_size), epoch_(team_size)
{
    SYNCPERF_ASSERT(team_size >= 1);
    rounds_ = 0;
    for (int span = 1; span < team_size; span *= 2)
        ++rounds_;
    flags_.resize(rounds_);
    for (auto &round : flags_)
        round = std::vector<Flag>(team_size);
}

void
DisseminationBarrier::arriveAndWait(int tid)
{
    SYNCPERF_ASSERT(tid >= 0 && tid < team_size_);
    const std::uint32_t epoch = ++epoch_[tid].v;

    int span = 1;
    for (int r = 0; r < rounds_; ++r, span *= 2) {
        const int partner = (tid + span) % team_size_;
        flags_[r][partner].value.store(epoch, std::memory_order_release);
        Spinner spin;
        while (flags_[r][tid].value.load(std::memory_order_acquire) <
               epoch) {
            spin.pause();
        }
    }
}

} // namespace syncperf::threadlib
