/**
 * @file
 * Fork/join parallel regions over std::thread, with optional CPU
 * affinity binding -- the OpenMP-like execution substrate for the
 * native measurement path.
 */

#ifndef SYNCPERF_THREADLIB_PARALLEL_REGION_HH
#define SYNCPERF_THREADLIB_PARALLEL_REGION_HH

#include <functional>

#include "common/dtype.hh"

namespace syncperf::threadlib
{

/**
 * Run @p body on @p n_threads concurrent threads and join them all
 * (the equivalent of "#pragma omp parallel num_threads(n)").
 *
 * @param n_threads Team size; must be >= 1. The calling thread acts
 *        as team member 0 so a 1-thread region has no fork cost.
 * @param body Receives the team rank in [0, n_threads).
 * @param affinity Placement policy; binding is best-effort (silently
 *        skipped where unsupported) and never binds for
 *        Affinity::System.
 */
void parallelRegion(int n_threads, const std::function<void(int)> &body,
                    Affinity affinity = Affinity::System);

/**
 * Number of hardware threads the host offers (never less than 1).
 */
int hardwareThreads();

/**
 * Bind the calling thread to a CPU chosen for (tid, n_threads,
 * policy) over the host's hardware threads. Best effort.
 */
void bindThisThread(int tid, int n_threads, Affinity affinity);

} // namespace syncperf::threadlib

#endif // SYNCPERF_THREADLIB_PARALLEL_REGION_HH
