/**
 * @file
 * Deterministic fan-out for the campaign driver.
 *
 * OrderedExecutor::run() executes independent jobs concurrently on a
 * ThreadPool but applies their side effects in submission order: each
 * job does its expensive, self-contained work on a worker thread and
 * returns a commit closure; the closures are invoked strictly in
 * index order on the calling thread. Shared state touched only by
 * commit closures therefore needs no locking, and every run produces
 * byte-identical output regardless of worker count or completion
 * order -- the deterministic-commit rule documented in
 * docs/performance.md.
 */

#ifndef SYNCPERF_CORE_EXECUTOR_HH
#define SYNCPERF_CORE_EXECUTOR_HH

#include <functional>
#include <vector>

#include "common/thread_pool.hh"

namespace syncperf::core
{

/** Runs jobs concurrently, commits their results in order. */
class OrderedExecutor
{
  public:
    /** Applies one finished job's side effects; run on the caller. */
    using CommitFn = std::function<void()>;

    /**
     * One unit of concurrent work. Runs on a pool worker; everything
     * it touches must be private to the job (or internally
     * synchronized, like logging). Returns the job's commit closure;
     * returning nullptr commits nothing.
     */
    using Job = std::function<CommitFn()>;

    /**
     * Run every job and invoke the commit closures in index order on
     * the calling thread.
     *
     * With a null @p pool (or a single-worker pool) the jobs run
     * inline on the calling thread in index order -- byte-for-byte
     * the serial behavior, with zero threading overhead. Otherwise
     * jobs are submitted to the pool up front and commits are
     * pipelined: index i commits as soon as jobs 0..i have finished,
     * while later jobs are still running.
     */
    static void run(ThreadPool *pool, std::vector<Job> jobs);
};

} // namespace syncperf::core

#endif // SYNCPERF_CORE_EXECUTOR_HH
