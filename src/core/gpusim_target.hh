/**
 * @file
 * Adapter that runs CUDA-primitive experiments on the GPU timing
 * model, translating each CudaExperiment into baseline/test kernels
 * per the paper's Listing 3 template.
 */

#ifndef SYNCPERF_CORE_GPUSIM_TARGET_HH
#define SYNCPERF_CORE_GPUSIM_TARGET_HH

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/machine_pool.hh"
#include "core/measure_config.hh"
#include "core/primitives.hh"
#include "core/protocol.hh"
#include "core/telemetry.hh"
#include "gpusim/machine.hh"

namespace syncperf::core
{

/** Baseline and test kernels for one experiment point. */
struct CudaKernelPair
{
    gpusim::GpuKernel baseline;
    gpusim::GpuKernel test;
};

/**
 * Measurement target backed by gpusim.
 *
 * Reuses one machine instance across launches (warm event-queue and
 * decode buffers) and memoizes results keyed by the simulated input.
 * Only kernels without a system-scope fence are cached: every other
 * op sequence is deterministic per (kernel, launch, warmup), so a
 * hit is bit-identical to re-simulating, while __threadfence_system
 * draws per-launch PCIe jitter and always re-simulates. Seeds are
 * consumed on hits too, so cache state never shifts the jitter
 * stream.
 */
class GpuSimTarget
{
  public:
    GpuSimTarget(gpusim::GpuConfig cfg, MeasurementConfig mcfg,
                 std::uint64_t seed = 1);

    /**
     * Run the full measurement protocol for one experiment point.
     *
     * @param exp The primitive and its parameters.
     * @param launch Grid geometry (the paper sweeps blocks in
     *        {1, 2, SMs/2, SMs, 2*SMs} and threads in powers of two
     *        up to 1024).
     */
    Measurement measure(const CudaExperiment &exp,
                        gpusim::LaunchConfig launch);

    /** Build the baseline/test kernel pair (exposed for tests). */
    static CudaKernelPair buildKernels(const CudaExperiment &exp,
                                       long body_iters);

    const gpusim::GpuConfig &config() const { return cfg_; }

    /**
     * Lane-grouping key for @p exp: a digest of the decoded-image
     * fingerprints of the baseline/test kernel pair. Decoding is
     * launch-geometry independent, so equal keys mean bit-identical
     * measurement walks at every swept geometry (the campaign's
     * lane-lockstep agreement test). As a side effect the pair's
     * images are materialized on the leased machine, so the decode
     * doubles as the warm-start path measure() replays. Requires the
     * machine-pool path (mcfg.machine_pool).
     */
    std::uint64_t laneKey(const CudaExperiment &exp);

    /**
     * The seed the next simulated launch will consume. Lane peeling
     * hands this to the solo target that takes over a diverged lane,
     * keeping its jitter stream exactly where a never-grouped run of
     * that point would be.
     */
    std::uint64_t seedCursor() const { return next_seed_; }

    /** Block counts the paper sweeps for this device. */
    std::vector<int> paperBlockCounts() const;

    /**
     * Telemetry accumulated by every launch since the last take
     * (all runs/attempts/retries of the measure() calls in between),
     * and reset the accumulator. Empty unless mcfg.telemetry is set.
     * Cache hits contribute the stored telemetry of the original
     * simulation, so the sample is independent of cache state.
     */
    TelemetrySample takeTelemetry();

    /**
     * Loop-batching activity accumulated over every launch this
     * target actually simulated (cache hits replay stored results
     * and add nothing). Feeds the loop_batch_* metrics counters and
     * the --explain batch-ratio annotation.
     */
    const sim::LoopBatchCounters &loopBatch() const { return lb_; }

  private:
    /** Simulate one launch, filling @p out with per-thread seconds. */
    void runOnce(const gpusim::GpuKernel &kernel,
                 gpusim::LaunchConfig launch, std::vector<double> &out);

    /** Digest of everything a jitter-free launch's outcome depends on. */
    std::uint64_t cacheKey(const gpusim::GpuKernel &kernel,
                           gpusim::LaunchConfig launch) const;

    /**
     * Digest of everything the decoded form of @p kernel depends on
     * (the device config and the op sequences; never warmup, launch
     * geometry, or body_iters). Non-zero by construction -- key 0 is
     * the machine's "decode normally" sentinel.
     */
    std::uint64_t imageKey(const gpusim::GpuKernel &kernel) const;

    /** Pure simulator output (pre fault injection) of one launch. */
    struct CacheEntry
    {
        std::vector<double> seconds;
        TelemetrySample telemetry;
    };

    gpusim::GpuConfig cfg_;
    MeasurementConfig mcfg_;
    std::uint64_t next_seed_;

    MachinePool::GpuLease lease_;

    std::unordered_map<std::uint64_t, CacheEntry> cache_;

    /** Accumulates across launches until takeTelemetry(). */
    TelemetrySample telemetry_;

    /** Accumulates across every simulated (non-cache-hit) launch. */
    sim::LoopBatchCounters lb_;
};

} // namespace syncperf::core

#endif // SYNCPERF_CORE_GPUSIM_TARGET_HH
