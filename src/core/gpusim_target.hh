/**
 * @file
 * Adapter that runs CUDA-primitive experiments on the GPU timing
 * model, translating each CudaExperiment into baseline/test kernels
 * per the paper's Listing 3 template.
 */

#ifndef SYNCPERF_CORE_GPUSIM_TARGET_HH
#define SYNCPERF_CORE_GPUSIM_TARGET_HH

#include <cstdint>
#include <utility>

#include "core/measure_config.hh"
#include "core/primitives.hh"
#include "core/protocol.hh"
#include "gpusim/machine.hh"

namespace syncperf::core
{

/** Baseline and test kernels for one experiment point. */
struct CudaKernelPair
{
    gpusim::GpuKernel baseline;
    gpusim::GpuKernel test;
};

/** Measurement target backed by gpusim. */
class GpuSimTarget
{
  public:
    GpuSimTarget(gpusim::GpuConfig cfg, MeasurementConfig mcfg,
                 std::uint64_t seed = 1);

    /**
     * Run the full measurement protocol for one experiment point.
     *
     * @param exp The primitive and its parameters.
     * @param launch Grid geometry (the paper sweeps blocks in
     *        {1, 2, SMs/2, SMs, 2*SMs} and threads in powers of two
     *        up to 1024).
     */
    Measurement measure(const CudaExperiment &exp,
                        gpusim::LaunchConfig launch);

    /** Build the baseline/test kernel pair (exposed for tests). */
    static CudaKernelPair buildKernels(const CudaExperiment &exp,
                                       long body_iters);

    const gpusim::GpuConfig &config() const { return cfg_; }

    /** Block counts the paper sweeps for this device. */
    std::vector<int> paperBlockCounts() const;

  private:
    std::vector<double> runOnce(const gpusim::GpuKernel &kernel,
                                gpusim::LaunchConfig launch);

    gpusim::GpuConfig cfg_;
    MeasurementConfig mcfg_;
    std::uint64_t next_seed_;
};

} // namespace syncperf::core

#endif // SYNCPERF_CORE_GPUSIM_TARGET_HH
