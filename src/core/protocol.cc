/**
 * @file
 * Implementation of the measurement protocol.
 */

#include "protocol.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/stats.hh"
#include "common/status.hh"
#include "common/trace.hh"

namespace syncperf::core
{
namespace
{

/** CoV from an already-computed median and stddev; 0 for free
 * primitives whose median is indistinguishable from zero. */
double
coefficientOfVariation(double med, double sd)
{
    med = std::fabs(med);
    if (med < 1e-18)
        return 0.0;
    return sd / med;
}

/**
 * One full pass of the paper's procedure: cfg.runs runs of
 * @p attempts valid pairs each. Fills @p out.run_values and
 * accumulates out.retries; non-ok when pathological (non-finite)
 * timing exhausts the retry budget.
 */
Status
measureOnce(const TimedFunction &baseline, const TimedFunction &test,
            const MeasurementConfig &cfg, int attempts, Measurement &out)
{
    out.run_values.clear();
    out.run_values.reserve(cfg.runs);

    // Per-attempt thread-time buffers, hoisted and refilled in place:
    // a sweep performs thousands of attempts, and the timed functions
    // write into warm storage instead of allocating a vector each.
    std::vector<double> b;
    std::vector<double> t;

    for (int run = 0; run < cfg.runs; ++run) {
        std::vector<double> base_maxes;
        std::vector<double> test_maxes;
        base_maxes.reserve(attempts);
        test_maxes.reserve(attempts);

        int retries_left = cfg.max_retries;
        while (static_cast<int>(test_maxes.size()) < attempts) {
            baseline(b);
            test(t);
            SYNCPERF_ASSERT(!b.empty() && !t.empty(),
                            "timed function returned no thread times");
            const double b_max = maxOf(b);
            const double t_max = maxOf(t);
            if (!std::isfinite(b_max) || !std::isfinite(t_max)) {
                // Pathological sample (hardware hiccup, injected
                // fault): retry like any other invalid attempt, but
                // never accept it -- a non-finite value would poison
                // every statistic downstream.
                if (retries_left-- > 0) {
                    ++out.retries;
                    metrics::add(metrics::Counter::FaultsSurvived);
                    continue;
                }
                return Status::error(
                    ErrorCode::MeasurementError,
                    "non-finite runtime persisted through {} retries "
                    "(run {}, attempt {})", cfg.max_retries, run,
                    static_cast<int>(test_maxes.size()));
            }
            if (t_max < b_max && retries_left-- > 0) {
                // Faulty measurement (system jitter); re-attempt.
                ++out.retries;
                continue;
            }
            if (t_max < b_max) {
                warn("retry budget exhausted; accepting test < baseline "
                     "({} < {})", t_max, b_max);
            }
            base_maxes.push_back(b_max);
            test_maxes.push_back(t_max);
        }

        // Both vectors are dead after this, so the in-place median
        // (no copy, no allocation) is safe on this hot path.
        const double diff =
            medianInPlace(test_maxes) - medianInPlace(base_maxes);
        out.run_values.push_back(
            diff / static_cast<double>(cfg.opsPerMeasurement()));
    }
    return Status::ok();
}

/** Publish a finished measurement's retry totals to the registry. */
void
recordRetryCounters(const Measurement &m)
{
    if (m.retries > 0)
        metrics::add(metrics::Counter::ProtocolRetries, m.retries);
    if (m.noise_retries > 0)
        metrics::add(metrics::Counter::NoiseRetries, m.noise_retries);
}

} // namespace

double
Measurement::opsPerSecondPerThread() const
{
    if (!valid || !std::isfinite(per_op_seconds))
        return std::numeric_limits<double>::quiet_NaN();
    if (per_op_seconds <= 0.0)
        return std::numeric_limits<double>::infinity();
    return 1.0 / per_op_seconds;
}

Measurement
measurePrimitive(const TimedFunction &baseline, const TimedFunction &test,
                 const MeasurementConfig &cfg)
{
    SYNCPERF_ASSERT(cfg.runs >= 1 && cfg.attempts >= 1);
    SYNCPERF_ASSERT(cfg.opsPerMeasurement() >= 1);

    Measurement out;
    int attempts = cfg.attempts;
    while (true) {
        Status status;
        {
            // The "attempt" trace level: one span per full pass of
            // the protocol (a CoV-gate retry shows as another pass).
            trace::Span pass_span("measure_pass", "attempt");
            status = measureOnce(baseline, test, cfg, attempts, out);
        }
        if (!status.isOk()) {
            out.valid = false;
            out.error = status.message();
            out.per_op_seconds =
                std::numeric_limits<double>::quiet_NaN();
            out.stddev_seconds =
                std::numeric_limits<double>::quiet_NaN();
            recordRetryCounters(out);
            return out;
        }
        out.per_op_seconds = median(out.run_values);
        out.stddev_seconds = stddev(out.run_values);
        out.cov = coefficientOfVariation(out.per_op_seconds,
                                         out.stddev_seconds);
        if (cfg.cov_gate <= 0.0 || out.cov <= cfg.cov_gate ||
            out.noise_retries >= cfg.max_noise_retries) {
            if (cfg.cov_gate > 0.0 && out.cov > cfg.cov_gate) {
                warn("noise gate still exceeded after {} re-measures "
                     "(CoV {:.3f} > {:.3f}); accepting",
                     out.noise_retries, out.cov, cfg.cov_gate);
            }
            recordRetryCounters(out);
            return out;
        }
        // Too noisy: back off by doubling the sample size.
        ++out.noise_retries;
        attempts *= 2;
    }
}

} // namespace syncperf::core
