/**
 * @file
 * Implementation of the measurement protocol.
 */

#include "protocol.hh"

#include <limits>

#include "common/logging.hh"
#include "common/stats.hh"

namespace syncperf::core
{

double
Measurement::opsPerSecondPerThread() const
{
    if (per_op_seconds <= 0.0)
        return std::numeric_limits<double>::infinity();
    return 1.0 / per_op_seconds;
}

Measurement
measurePrimitive(const TimedFunction &baseline, const TimedFunction &test,
                 const MeasurementConfig &cfg)
{
    SYNCPERF_ASSERT(cfg.runs >= 1 && cfg.attempts >= 1);
    SYNCPERF_ASSERT(cfg.opsPerMeasurement() >= 1);

    Measurement out;
    out.run_values.reserve(cfg.runs);

    for (int run = 0; run < cfg.runs; ++run) {
        std::vector<double> base_maxes;
        std::vector<double> test_maxes;
        base_maxes.reserve(cfg.attempts);
        test_maxes.reserve(cfg.attempts);

        int retries_left = cfg.max_retries;
        while (static_cast<int>(test_maxes.size()) < cfg.attempts) {
            const std::vector<double> b = baseline();
            const std::vector<double> t = test();
            SYNCPERF_ASSERT(!b.empty() && !t.empty(),
                            "timed function returned no thread times");
            const double b_max = maxOf(b);
            const double t_max = maxOf(t);
            if (t_max < b_max && retries_left-- > 0) {
                // Faulty measurement (system jitter); re-attempt.
                ++out.retries;
                continue;
            }
            if (t_max < b_max) {
                warn("retry budget exhausted; accepting test < baseline "
                     "({} < {})", t_max, b_max);
            }
            base_maxes.push_back(b_max);
            test_maxes.push_back(t_max);
        }

        const double diff = median(test_maxes) - median(base_maxes);
        out.run_values.push_back(
            diff / static_cast<double>(cfg.opsPerMeasurement()));
    }

    out.per_op_seconds = median(out.run_values);
    out.stddev_seconds = stddev(out.run_values);
    return out;
}

} // namespace syncperf::core
