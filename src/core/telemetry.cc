/**
 * @file
 * Telemetry sample aggregation, the telemetry.json artifact format,
 * and the --explain chart renderer.
 */

#include "core/telemetry.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/ascii_chart.hh"
#include "common/atomic_file.hh"
#include "common/fmt.hh"

namespace syncperf::core
{

namespace fs = std::filesystem;

namespace
{

/**
 * Counters and histogram bounds are integral and stay far below
 * 2^53, where double is exact; the serializer prints integral
 * doubles without a fraction, so round-trips are byte-stable.
 */
JsonValue
num(std::uint64_t v)
{
    return JsonValue(static_cast<double>(v));
}

std::uint64_t
u64(double v)
{
    return static_cast<std::uint64_t>(v);
}

/** Nearest integer, for the prose under a chart. */
std::uint64_t
rounded(double v)
{
    return static_cast<std::uint64_t>(v + 0.5);
}

JsonValue
histogramToJson(const Histogram &h)
{
    JsonValue buckets = JsonValue::array();
    const std::vector<Histogram::Bucket> &bs = h.buckets();
    for (std::size_t i = 0; i < bs.size(); ++i) {
        const Histogram::Bucket &b = bs[i];
        if (b.count == 0)
            continue;
        JsonValue jb = JsonValue::object();
        jb.set("count", num(b.count));
        jb.set("index", num(static_cast<std::uint64_t>(i)));
        jb.set("max", num(b.max));
        jb.set("min", num(b.min));
        jb.set("sum", num(b.sum));
        buckets.push(std::move(jb));
    }
    JsonValue out = JsonValue::object();
    out.set("buckets", std::move(buckets));
    out.set("count", num(h.count()));
    out.set("max", num(h.max()));
    out.set("mean", JsonValue(h.mean()));
    out.set("min", num(h.min()));
    out.set("sum", num(h.sum()));
    return out;
}

} // namespace

void
TelemetrySample::addStats(const sim::StatSet &stats)
{
    for (const auto &[name, value] : stats.all())
        counters[name] += value;
    for (int i = 0; i < static_cast<int>(sim::HistProbe::Count); ++i) {
        const auto p = static_cast<sim::HistProbe>(i);
        const Histogram &h = stats.hist(p);
        if (!h.empty())
            histograms[sim::histProbeName(p)].merge(h);
    }
}

void
TelemetrySample::merge(const TelemetrySample &other)
{
    for (const auto &[name, value] : other.counters)
        counters[name] += value;
    for (const auto &[name, h] : other.histograms)
        histograms[name].merge(h);
}

std::uint64_t
TelemetrySample::counter(const std::string &name) const
{
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

JsonValue
TelemetrySample::toJson() const
{
    JsonValue cs = JsonValue::object();
    for (const auto &[name, value] : counters)
        cs.set(name, num(value));
    JsonValue hs = JsonValue::object();
    for (const auto &[name, h] : histograms)
        hs.set(name, histogramToJson(h));
    JsonValue out = JsonValue::object();
    out.set("counters", std::move(cs));
    out.set("histograms", std::move(hs));
    return out;
}

JsonValue
TelemetryPoint::toJson() const
{
    JsonValue ja = JsonValue::object();
    for (const auto &[name, value] : axes)
        ja.set(name, num(value));
    // Flatten the sample so a point reads as one object with keys
    // in alphabetical order: axes, counters, histograms.
    JsonValue s = sample.toJson();
    JsonValue out = JsonValue::object();
    out.set("axes", std::move(ja));
    for (auto &[key, value] : s.asObject())
        out.set(key, value);
    return out;
}

JsonValue
TelemetryReport::toJson() const
{
    JsonValue pts = JsonValue::array();
    for (const TelemetryPoint &p : points)
        pts.push(p.toJson());
    JsonValue out = JsonValue::object();
    out.set("experiment", JsonValue(experiment));
    out.set("points", std::move(pts));
    out.set("schema", JsonValue("syncperf-telemetry-v1"));
    out.set("system", JsonValue(system));
    return out;
}

Status
TelemetryReport::writeFile(const fs::path &path) const
{
    AtomicFile file;
    if (Status s = file.open(path); !s.isOk())
        return s;
    file.stream() << toJson().dump(2) << '\n';
    return file.commit();
}

Result<TelemetryReport>
readTelemetryFile(const fs::path &path)
{
    std::ifstream in(path);
    if (!in)
        return Status::error(ErrorCode::IoError, "cannot open {}",
                             path.string());
    std::ostringstream text;
    text << in.rdbuf();
    Result<JsonValue> parsed = parseJson(text.str());
    if (!parsed.isOk())
        return parsed.status();
    const JsonValue &root = parsed.value();
    if (!root.isObject())
        return Status::error(ErrorCode::ParseError,
                             "{}: telemetry root is not an object",
                             path.string());

    TelemetryReport report;
    report.experiment = root.stringOr("experiment", "");
    report.system = root.stringOr("system", "");
    const JsonValue *points = root.find("points");
    if (points == nullptr || !points->isArray())
        return report;
    for (const JsonValue &pv : points->asArray()) {
        if (!pv.isObject())
            continue;
        TelemetryPoint pt;
        if (const JsonValue *axes = pv.find("axes");
            axes != nullptr && axes->isObject()) {
            for (const auto &[name, value] : axes->asObject())
                pt.axes.emplace_back(name, u64(value.asNumber()));
        }
        if (const JsonValue *cs = pv.find("counters");
            cs != nullptr && cs->isObject()) {
            for (const auto &[name, value] : cs->asObject())
                pt.sample.counters[name] = u64(value.asNumber());
        }
        if (const JsonValue *hs = pv.find("histograms");
            hs != nullptr && hs->isObject()) {
            for (const auto &[name, hv] : hs->asObject()) {
                Histogram h;
                if (const JsonValue *bs = hv.find("buckets");
                    bs != nullptr && bs->isArray()) {
                    for (const JsonValue &bv : bs->asArray()) {
                        Histogram::Bucket b;
                        b.count = u64(bv.numberOr("count", 0));
                        b.min = u64(bv.numberOr("min", 0));
                        b.max = u64(bv.numberOr("max", 0));
                        b.sum = u64(bv.numberOr("sum", 0));
                        h.setBucket(
                            static_cast<int>(bv.numberOr("index", 0)),
                            b);
                    }
                }
                pt.sample.histograms[name] = std::move(h);
            }
        }
        report.points.push_back(std::move(pt));
    }
    return report;
}

fs::path
telemetryPathFor(const fs::path &dir, const std::string &csv_file)
{
    std::string stem = csv_file;
    if (const std::size_t dot = stem.rfind(".csv");
        dot != std::string::npos && dot == stem.size() - 4)
        stem.resize(dot);
    return dir / (stem + ".telemetry.json");
}

namespace
{

std::uint64_t
axisOr(const TelemetryPoint &pt, const std::string &name,
       std::uint64_t fallback)
{
    for (const auto &[axis, value] : pt.axes)
        if (axis == name)
            return value;
    return fallback;
}

double
histMeanOr(const TelemetrySample &s, const std::string &name,
           double fallback)
{
    const auto it = s.histograms.find(name);
    return it == s.histograms.end() ? fallback : it->second.mean();
}

/** Telemetry reports of one system directory, keyed by CSV name. */
std::map<std::string, TelemetryReport>
loadSystemReports(const fs::path &system_dir)
{
    std::map<std::string, TelemetryReport> reports;
    std::vector<fs::path> files;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(system_dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.size() > 15 &&
            name.rfind(".telemetry.json") == name.size() - 15)
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    for (const fs::path &f : files) {
        Result<TelemetryReport> r = readTelemetryFile(f);
        if (r.isOk() && !r.value().experiment.empty())
            reports.emplace(r.value().experiment,
                            std::move(r).value());
    }
    return reports;
}

/**
 * The false-sharing knee (paper Fig. "atomic array" family): total
 * line ping-pongs at the largest thread count, one x per stride.
 * Below one cache line per thread, every update steals the line
 * back; at stride >= 16 ints (64 B) the count collapses to zero.
 */
void
explainFalseSharing(const std::map<std::string, TelemetryReport> &reports,
                    std::ostream &out)
{
    const std::string prefix = "omp_atomic_array_s";
    const std::string suffix = "_int.csv";
    std::vector<std::pair<std::uint64_t, double>> by_stride;
    std::uint64_t threads = 0;
    for (const auto &[file, report] : reports) {
        if (file.rfind(prefix, 0) != 0 ||
            file.size() <= prefix.size() + suffix.size() ||
            file.compare(file.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        const std::string mid = file.substr(
            prefix.size(), file.size() - prefix.size() - suffix.size());
        if (mid.empty() ||
            mid.find_first_not_of("0123456789") != std::string::npos)
            continue;
        const std::uint64_t stride = std::stoull(mid);
        const TelemetryPoint *best = nullptr;
        for (const TelemetryPoint &pt : report.points) {
            if (best == nullptr ||
                axisOr(pt, "threads", 0) > axisOr(*best, "threads", 0))
                best = &pt;
        }
        if (best == nullptr)
            continue;
        threads = axisOr(*best, "threads", 0);
        by_stride.emplace_back(
            stride, static_cast<double>(
                        best->sample.counter("cpu.line_ping_pong")));
    }
    if (by_stride.size() < 2)
        return;
    std::sort(by_stride.begin(), by_stride.end());

    std::vector<double> xs;
    std::vector<double> ys;
    for (const auto &[stride, pingpongs] : by_stride) {
        xs.push_back(static_cast<double>(stride));
        ys.push_back(pingpongs);
    }
    AsciiChart chart(xs);
    chart.setTitle(format("false sharing: omp atomic array (int, {} "
                          "threads)",
                          threads));
    chart.setXLabel("stride (ints)");
    chart.setYLabel("line ping-pongs");
    chart.addSeries("cpu.line_ping_pong", ys);
    out << chart.render(76, 12) << '\n';
    out << format("  stride {} x 4 B spans a full 64 B line, so each "
                  "thread owns its line:\n  ping-pongs fall from {} "
                  "(stride {}) to {} -- the figure's knee.\n\n",
                  by_stride.back().first, rounded(ys.front()),
                  by_stride.front().first, rounded(ys.back()));
}

/**
 * The contended-atomic 1/T collapse: the per-line exclusive service
 * slot serializes updates, so the mean acquisition wait grows with
 * the thread count while per-thread throughput falls as 1/T.
 */
void
explainCpuContention(const std::map<std::string, TelemetryReport> &reports,
                     std::ostream &out)
{
    const auto it = reports.find("omp_atomic_update_int.csv");
    if (it == reports.end() || it->second.points.size() < 2)
        return;
    std::vector<double> xs;
    std::vector<double> ys;
    for (const TelemetryPoint &pt : it->second.points) {
        xs.push_back(static_cast<double>(axisOr(pt, "threads", 0)));
        ys.push_back(
            histMeanOr(pt.sample, "cpu.acq_wait_ticks", 0.0));
    }
    AsciiChart chart(xs);
    chart.setTitle("atomic contention: omp atomic update (int)");
    chart.setXLabel("threads");
    chart.setYLabel("mean acq wait (ticks)");
    chart.addSeries("cpu.acq_wait_ticks mean", ys);
    out << chart.render(76, 12) << '\n';
    out << format("  every update queues on one line's exclusive "
                  "slot: mean wait grows from\n  {} to {} ticks "
                  "across the sweep -- per-thread throughput "
                  "collapses as 1/T.\n\n",
                  rounded(ys.front()), rounded(ys.back()));
}

/**
 * The GPU atomic serialization collapse: all lanes target one
 * address, so the L2 atomic unit's service interval queues warps and
 * the mean wait grows with threads per block.
 */
void
explainGpuAtomics(const std::map<std::string, TelemetryReport> &reports,
                  std::ostream &out)
{
    const auto it = reports.find("cuda_atomicadd_int.csv");
    if (it == reports.end())
        return;
    std::uint64_t blocks = 0;
    for (const TelemetryPoint &pt : it->second.points)
        blocks = std::max(blocks, axisOr(pt, "blocks", 0));
    std::vector<double> xs;
    std::vector<double> ys;
    for (const TelemetryPoint &pt : it->second.points) {
        if (axisOr(pt, "blocks", 0) != blocks)
            continue;
        xs.push_back(
            static_cast<double>(axisOr(pt, "threads_per_block", 0)));
        ys.push_back(
            histMeanOr(pt.sample, "gpu.atomic_wait_ticks", 0.0));
    }
    if (xs.size() < 2)
        return;
    AsciiChart chart(xs);
    chart.setTitle(
        format("GPU atomic serialization: atomicAdd (int, {} blocks)",
               blocks));
    chart.setXLabel("threads per block");
    chart.setYLabel("mean L2 wait (ticks)");
    chart.setLogX(true);
    chart.addSeries("gpu.atomic_wait_ticks mean", ys);
    out << chart.render(76, 12) << '\n';
    out << format("  one address, one L2 atomic unit: mean queue "
                  "wait grows from {} to {}\n  ticks as the block "
                  "fills -- the paper's 1/T atomic collapse.\n\n",
                  rounded(ys.front()), rounded(ys.back()));
}

/**
 * The loop-batching annotation: how much of each experiment's timed
 * simulation the steady-state batcher covered algebraically
 * (docs/performance.md, "Loop batching"). Wall-clock bookkeeping
 * only -- batching never changes a measured value.
 */
void
explainLoopBatch(
    const std::string &system,
    const std::map<std::string, sim::LoopBatchCounters> &ratios,
    std::ostream &out)
{
    const std::string prefix = system + "/";
    std::vector<std::pair<std::string, const sim::LoopBatchCounters *>>
        rows;
    for (const auto &[key, c] : ratios) {
        if (key.rfind(prefix, 0) == 0)
            rows.emplace_back(key.substr(prefix.size()), &c);
    }
    if (rows.empty())
        return;
    out << "loop batching (batched / total timed iterations):\n";
    for (const auto &[file, c] : rows) {
        const double ratio =
            c->total_iters == 0
                ? 0.0
                : 100.0 * static_cast<double>(c->batched_iters) /
                      static_cast<double>(c->total_iters);
        out << format("  {}: {}% batched ({} of {} iters, "
                      "{} windows, {} fallbacks)\n",
                      file, rounded(ratio), c->batched_iters,
                      c->total_iters, c->windows, c->fallbacks);
    }
    out << '\n';
}

/**
 * The lane-grouping annotation: how tightly this system's sweep
 * points collapsed into shared lane groups (docs/performance.md,
 * "Lane-batched sweeps"). Like batching, pure wall-clock
 * bookkeeping -- grouping never changes a measured value.
 */
void
explainLanes(const std::string &system,
             const std::map<std::string, LaneSummary> &lanes,
             std::ostream &out)
{
    const auto it = lanes.find(system);
    if (it == lanes.end() || !it->second.planned())
        return;
    const LaneSummary &s = it->second;
    const double ratio =
        s.groups == 0 ? 0.0
                      : static_cast<double>(s.points) /
                            static_cast<double>(s.groups);
    const double peel_pct =
        s.points == 0 ? 0.0
                      : 100.0 * static_cast<double>(s.peels) /
                            static_cast<double>(s.points);
    const std::uint64_t tenths = rounded(ratio * 10.0);
    out << format("lane grouping: {} points -> {} groups ({}.{} "
                  "points per group; {} singleton{}, {} peel{} = "
                  "{}%)\n\n",
                  s.points, s.groups, tenths / 10, tenths % 10,
                  s.singletons, s.singletons == 1 ? "" : "s", s.peels,
                  s.peels == 1 ? "" : "s", rounded(peel_pct));
}

} // namespace

Status
explainCampaign(const fs::path &dir, std::ostream &out,
                const std::map<std::string, sim::LoopBatchCounters>
                    *loop_batch,
                const std::map<std::string, LaneSummary> *lanes)
{
    std::vector<fs::path> system_dirs;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_directory())
            system_dirs.push_back(entry.path());
    }
    std::sort(system_dirs.begin(), system_dirs.end());

    int rendered = 0;
    for (const fs::path &system_dir : system_dirs) {
        const std::map<std::string, TelemetryReport> reports =
            loadSystemReports(system_dir);
        if (reports.empty())
            continue;
        out << "== " << system_dir.filename().string() << " ("
            << reports.size() << " telemetry files) ==\n\n";
        explainFalseSharing(reports, out);
        explainCpuContention(reports, out);
        explainGpuAtomics(reports, out);
        if (loop_batch != nullptr) {
            explainLoopBatch(system_dir.filename().string(),
                             *loop_batch, out);
        } else {
            out << "loop batching: n/a (no measurements ran in this "
                   "process; batch ratios\n  are an in-memory side "
                   "channel of the measuring run, never an "
                   "artifact)\n\n";
        }
        if (lanes != nullptr)
            explainLanes(system_dir.filename().string(), *lanes, out);
        ++rendered;
    }
    if (rendered == 0)
        return Status::error(
            ErrorCode::InvalidArgument,
            "no telemetry found under {} (run the campaign with "
            "--telemetry first)",
            dir.string());
    return Status::ok();
}

} // namespace syncperf::core
