/**
 * @file
 * Adapter that runs OpenMP-primitive experiments natively on host
 * threads via threadlib -- the paper's original measurement path.
 *
 * On a large multicore this produces real hardware numbers; on small
 * hosts it still exercises the full protocol and primitive
 * implementations (the repository's figures use the CPU model, which
 * scales to the paper's 32-64 hardware threads regardless of host).
 */

#ifndef SYNCPERF_CORE_NATIVE_TARGET_HH
#define SYNCPERF_CORE_NATIVE_TARGET_HH

#include "core/measure_config.hh"
#include "core/primitives.hh"
#include "core/protocol.hh"

namespace syncperf::core
{

/** Measurement target backed by real host threads. */
class NativeTarget
{
  public:
    explicit NativeTarget(MeasurementConfig mcfg);

    /**
     * Run the full measurement protocol for one experiment point on
     * @p n_threads host threads (oversubscription is allowed but
     * noisy).
     */
    Measurement measure(const OmpExperiment &exp, int n_threads);

  private:
    MeasurementConfig mcfg_;
};

} // namespace syncperf::core

#endif // SYNCPERF_CORE_NATIVE_TARGET_HH
