/**
 * @file
 * Implementation of the campaign driver.
 *
 * Execution model: each sweep enumerates every experiment point up
 * front, then hands the points to CampaignRunner::runAll(), which
 * measures them concurrently (CampaignOptions::jobs workers) and
 * commits outcomes -- journal entries, result accounting, the
 * checkpoint cadence -- strictly in point order on the calling
 * thread. The measurement side of a point touches only its own
 * state (its own simulator target, its own CSV temp file), which is
 * what makes the fan-out safe; the ordered commit is what makes the
 * output byte-identical at every job count.
 */

#include "campaign.hh"

#include <atomic>
#include <cctype>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <utility>

#include "common/atomic_file.hh"
#include "common/csv.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/thread_pool.hh"
#include "common/trace.hh"
#include "core/executor.hh"
#include "core/machine_pool.hh"
#include "core/manifest.hh"
#include "core/metrics.hh"
#include "core/shard.hh"
#include "core/sweep.hh"
#include "core/telemetry.hh"
#include "sim/fault_injector.hh"

namespace syncperf::core
{
namespace
{

namespace fs = std::filesystem;

/** Checkpoint batch used when running parallel and no explicit
 * cadence was requested (serial auto-cadence is 1, the historical
 * save-per-experiment behavior). */
constexpr int parallel_checkpoint_batch = 8;

/** Strides the paper sweeps; quick mode keeps the knee-revealing ones. */
std::vector<int>
ompStrides(bool quick)
{
    return quick ? std::vector<int>{1, 8, 16}
                 : std::vector<int>{1, 4, 8, 16};
}

/** Fold the protocol knobs into @p h: any change reruns the point. */
void
hashProtocol(ConfigHasher &h, const MeasurementConfig &p)
{
    h.add(p.runs)
        .add(p.attempts)
        .add(p.n_iter)
        .add(p.n_unroll)
        .add(p.n_warmup)
        .add(p.max_retries)
        .add(p.cov_gate)
        .add(p.max_noise_retries);
}

/** Worker count options.jobs resolves to. */
int
resolveJobs(const CampaignOptions &options)
{
    if (options.jobs > 1)
        return options.jobs;
    if (options.jobs == 0)
        return ThreadPool::hardwareConcurrency();
    return 1;
}

/**
 * Shared per-system campaign mechanics: stray-temp cleanup, journal
 * lifecycle, skip-on-resume, atomic CSV emission, parallel
 * execution with ordered commits, and failure accounting. The
 * OpenMP and CUDA sweeps differ only in how they enumerate points
 * and emit rows.
 */
class CampaignRunner
{
  public:
    /** One enumerated experiment point, ready to run. */
    struct Experiment
    {
        std::string file;        ///< CSV name (the journal key)
        std::uint64_t hash = 0;  ///< ConfigHasher digest

        /** Writes all data rows and fills the journal entry's
         * retry/noise statistics; returns non-ok to fail the
         * experiment. Runs on a worker thread: it must touch only
         * its own state (build its own target). */
        std::function<Status(CsvWriter &, ManifestEntry &)> emit;

        /** Filled by emit with the point's loop-batching counters;
         * a successful commit folds it into
         * CampaignResult::loop_batch (see campaign.hh -- in-memory
         * only, never an artifact). */
        std::shared_ptr<sim::LoopBatchCounters> loop_batch;
    };

    CampaignRunner(const fs::path &dir, const std::string &system,
                   const CampaignOptions &options,
                   CampaignResult &result)
        : dir_(dir), system_(system), options_(options),
          result_(result),
          shard_worker_(options.shard_count > 1),
          manifest_(dir / "manifest.json")
    {
        // A shard worker must not clean up: another worker's
        // in-flight .tmp looks exactly like a stray. The supervisor
        // sweeps once before spawning anyone.
        if (!shard_worker_)
            removeStrayTemps();
        if (options.resume) {
            auto loaded = Manifest::load(dir / "manifest.json");
            if (loaded.isOk()) {
                manifest_ = std::move(loaded).value();
            } else {
                warn("{}; restarting the journal",
                     loaded.status().message());
            }
            // A worker's resume view is the merged commit log:
            // manifest.json plus every shard's journal, its own
            // included (its previous incarnation's commits).
            if (shard_worker_)
                absorbShardJournals();
        }
        manifest_.setSystem(system);
    }

    /**
     * Run every experiment: resume-skip against the journal, then
     * measure the rest -- concurrently when options.jobs allows --
     * and commit each outcome in point order (journal entry, result
     * accounting, debounced checkpoint). Returns with the journal
     * flushed to disk.
     */
    void
    runAll(const std::vector<std::string> &header,
           std::vector<Experiment> experiments)
    {
        // A shard worker keeps only the ordinals it owns plus the
        // extras reassigned onto it; ordinals index the *full*
        // enumeration, so every process agrees on who owns what.
        const ShardSpec shard{options_.shard_index,
                              options_.shard_count};
        std::unordered_set<std::string> extras;
        if (shard_worker_) {
            const std::string prefix = system_ + "/";
            for (const std::string &key : options_.shard_extra) {
                if (key.rfind(prefix, 0) == 0)
                    extras.insert(key.substr(prefix.size()));
            }
            if (options_.heartbeat)
                options_.heartbeat("enter " + system_);
        }

        std::vector<Experiment> pending;
        pending.reserve(experiments.size());
        for (std::size_t ordinal = 0; ordinal < experiments.size();
             ++ordinal) {
            Experiment &exp = experiments[ordinal];
            if (shard_worker_ && !shardOwnsOrdinal(shard, ordinal) &&
                extras.count(exp.file) == 0)
                continue; // another shard's point
            if (options_.resume &&
                manifest_.isComplete(exp.file, exp.hash)) {
                ++result_.experiments_skipped;
                metrics::add(metrics::Counter::PointsSkipped);
                continue;
            }
            pending.push_back(std::move(exp));
        }

        const int jobs = std::min(
            resolveJobs(options_),
            pending.empty() ? 1 : static_cast<int>(pending.size()));
        checkpoint_every_ =
            options_.checkpoint_every > 0
                ? options_.checkpoint_every
                : (jobs > 1 ? parallel_checkpoint_batch : 1);

        std::vector<OrderedExecutor::Job> fanout;
        fanout.reserve(pending.size());
        for (const Experiment &exp : pending)
            fanout.push_back([this, &header, &exp] {
                return runExperiment(header, exp);
            });

        if (jobs <= 1) {
            OrderedExecutor::run(nullptr, std::move(fanout));
        } else {
            ThreadPool pool(jobs);
            OrderedExecutor::run(&pool, std::move(fanout));
            CampaignMetrics::global().foldPool(pool.workerStats());
        }
        flushCheckpoint();
    }

  private:
    /**
     * Measure one experiment and write its CSV (worker side), then
     * hand back the closure that journals the outcome (commit side,
     * invoked in point order by OrderedExecutor).
     */
    OrderedExecutor::CommitFn
    runExperiment(const std::vector<std::string> &header,
                  const Experiment &exp)
    {
        // Cooperative stop: once cancellation fires, the remaining
        // points are accounted as interrupted, never measured. The
        // journal keeps no record of them, so a resume reruns them.
        if (options_.cancelled && options_.cancelled()) {
            return [this] {
                ++result_.experiments_interrupted;
                result_.interrupted = true;
            };
        }

        ScopedLogPrefix log_prefix(exp.file);
        trace::Span span(exp.file, "experiment");

        ManifestEntry entry;
        entry.key = exp.file;
        entry.config_hash = exp.hash;

        const fs::path path = dir_ / exp.file;
        Status status = writeCsv(path, header, exp.emit, entry);

        return [this, &exp, path, entry = std::move(entry),
                status = std::move(status)]() mutable {
            trace::Span commit_span(exp.file, "commit");
            if (status.isOk()) {
                entry.complete = true;
                entry.error.clear();
                journalAppend(entry);
                manifest_.recordComplete(std::move(entry));
                result_.files_written.push_back(path.string());
                ++result_.experiments_run;
                if (exp.loop_batch)
                    result_.loop_batch.push_back(
                        {exp.file, *exp.loop_batch});
                metrics::add(metrics::Counter::PointsCommitted);
                checkpoint(/*force=*/false);
            } else {
                warn("experiment {} failed: {}", exp.file,
                     status.toString());
                ManifestEntry failed;
                failed.key = exp.file;
                failed.config_hash = exp.hash;
                failed.complete = false;
                failed.error = status.toString();
                journalAppend(failed);
                manifest_.recordFailure(exp.file, exp.hash,
                                        status.toString());
                result_.failures.push_back(
                    {exp.file, status.toString()});
                metrics::add(metrics::Counter::PointsFailed);
                // A failure is worth a write of its own: the journal
                // must know about it even if we die right after.
                checkpoint(/*force=*/true);
            }
            if (options_.heartbeat)
                options_.heartbeat(exp.file);
        };
    }

    Status
    writeCsv(const fs::path &path,
             const std::vector<std::string> &header,
             const std::function<Status(CsvWriter &,
                                        ManifestEntry &)> &emit,
             ManifestEntry &entry)
    {
        AtomicFile out;
        if (Status s = out.open(path); !s.isOk())
            return s;
        CsvWriter csv(out.stream());
        csv.header(header);
        if (Status s = emit(csv, entry); !s.isOk())
            return s; // destructor discards the temp file
        return out.commit();
    }

    /**
     * A shard worker's durable record is its own append-only
     * journal, written at every commit: no batching, no rewriting,
     * no contention with sibling workers (each appends to its own
     * file). manifest.json stays untouched until the supervisor
     * merges the journals after all workers finish.
     */
    void
    journalAppend(const ManifestEntry &entry)
    {
        if (!shard_worker_)
            return;
        std::error_code ec;
        fs::create_directories(dir_, ec);
        const fs::path file =
            dir_ / shardJournalName(options_.shard_index);
        if (Status s = Manifest::appendJournalRecord(file, entry);
            !s.isOk())
            warn("cannot journal {}: {}", entry.key, s.toString());
    }

    /** Fold every shard's commit log into the resume view. */
    void
    absorbShardJournals()
    {
        std::error_code ec;
        if (!fs::is_directory(dir_, ec))
            return;
        for (const auto &e : fs::directory_iterator(dir_, ec)) {
            const std::string name = e.path().filename().string();
            if (name.rfind("manifest.shard-", 0) != 0 ||
                e.path().extension() != ".jsonl")
                continue;
            auto entries = Manifest::loadJournal(e.path());
            if (!entries.isOk())
                continue;
            for (ManifestEntry &entry : entries.value())
                manifest_.absorb(std::move(entry));
        }
    }

    /**
     * Debounced journal persistence: a full manifest rewrite per
     * experiment is O(points^2) over a campaign, so commits are
     * batched (checkpoint_every_) and losing a batch only costs
     * re-measuring it on resume. Failures force a write.
     */
    void
    checkpoint(bool force)
    {
        if (shard_worker_)
            return; // every journal append is already durable
        ++unsaved_commits_;
        if (force || unsaved_commits_ >= checkpoint_every_)
            flushCheckpoint();
    }

    /** Persist the journal; losing it only costs re-measurement. */
    void
    flushCheckpoint()
    {
        if (shard_worker_ || unsaved_commits_ == 0)
            return;
        if (Status s = manifest_.save(); !s.isOk())
            warn("cannot checkpoint manifest: {}", s.toString());
        metrics::add(metrics::Counter::CheckpointFlushes);
        unsaved_commits_ = 0;
    }

    /** Drop .tmp leftovers of a previously killed campaign. */
    void
    removeStrayTemps()
    {
        std::error_code ec;
        if (!fs::is_directory(dir_, ec))
            return;
        for (const auto &e : fs::directory_iterator(dir_, ec)) {
            if (e.is_regular_file() && e.path().extension() == ".tmp")
                fs::remove(e.path(), ec);
        }
    }

    const fs::path dir_;
    const std::string system_;
    const CampaignOptions &options_;
    CampaignResult &result_;
    const bool shard_worker_;
    Manifest manifest_;
    int checkpoint_every_ = 1;
    int unsaved_commits_ = 0;
};

/** Fold a finished point's Measurement into its journal entry. */
void
accumulate(ManifestEntry &entry, const Measurement &m)
{
    entry.protocol_retries += m.retries;
    entry.noise_retries += m.noise_retries;
    if (m.cov > entry.max_cov)
        entry.max_cov = m.cov;
}

/**
 * Per-point digest: @p base already folds in everything shared by
 * the whole sweep (system, thread/block counts, protocol), computed
 * once instead of per point.
 */
template <typename ExperimentT>
std::uint64_t
pointDigest(const ConfigHasher &base, const std::string &file,
            const ExperimentT &exp)
{
    ConfigHasher h = base; // cheap: the hasher is one uint64
    h.add(file)
        .add(static_cast<int>(exp.primitive))
        .add(static_cast<int>(exp.dtype))
        .add(static_cast<int>(exp.location))
        .add(exp.stride);
    return h.digest();
}

/** OpenMP points additionally pin their affinity policy. */
std::uint64_t
pointDigest(const ConfigHasher &base, const std::string &file,
            const OmpExperiment &exp)
{
    ConfigHasher h = base;
    h.add(file)
        .add(static_cast<int>(exp.primitive))
        .add(static_cast<int>(exp.dtype))
        .add(static_cast<int>(exp.location))
        .add(exp.stride)
        .add(static_cast<int>(exp.affinity));
    return h.digest();
}

// ------------------------------------------------------ lane groups
//
// A lane group (docs/performance.md, "Lane-batched sweeps") spans
// sweep points whose baseline/test pairs decode to identical images:
// their measurement walks are provably bit-identical, so the group
// simulates its reference lane once per sweep step and every in-step
// lane copies that walk's outputs. The group runs lazily inside the
// first member emit the executor schedules (later members block on
// the mutex and read their slot), which keeps the per-point
// fan-out/commit structure -- and therefore byte-identity at every
// jobs x shards combination -- exactly as it is without lanes.

/** True when lane grouping may run at all under this configuration:
 * the agreement test needs the machine-pool decode path, and
 * ordinal-order fault injection is the one per-launch rng the
 * grouped walk cannot replicate per lane. */
bool
laneGroupingAllowed(const CampaignOptions &options,
                    const MeasurementConfig &protocol)
{
    return options.lanes > 0 && protocol.machine_pool &&
           MachinePool::global().enabled() &&
           sim::FaultInjector::active() == nullptr;
}

/**
 * Which enumerated points this process will actually emit: its
 * shard's ordinals plus any points reassigned onto it
 * (--shard-extra). Lane groups and the planner use this to attribute
 * counters for work that every process repeats identically (lane
 * keys, shared reference walks) to exactly one process, which is
 * what keeps merged per-shard deterministic counters equal to a
 * serial run's (docs/observability.md, "Sharded counter
 * attribution").
 */
struct LaneOwnership
{
    ShardSpec shard;
    std::unordered_set<std::string> extras;

    bool
    owns(std::size_t ordinal, const std::string &file) const
    {
        return shardOwnsOrdinal(shard, ordinal) ||
               extras.count(file) > 0;
    }
};

LaneOwnership
makeLaneOwnership(const CampaignOptions &options,
                  const std::string &system)
{
    LaneOwnership own;
    own.shard = {options.shard_index, options.shard_count};
    const std::string prefix = system + "/";
    for (const std::string &key : options.shard_extra) {
        if (key.rfind(prefix, 0) == 0)
            own.extras.insert(key.substr(prefix.size()));
    }
    return own;
}

/** One lane's share of a group run. */
struct LaneProduct
{
    Status status = Status::ok();

    /** One entry per completed sweep step, in sweep order. */
    std::vector<Measurement> measurements;

    /** Parallel to measurements (empty without --telemetry). */
    std::vector<TelemetrySample> telemetry;

    /** Launches this lane itself simulated (reference and peeled
     * lanes; in-step lanes share the reference walk and contribute
     * nothing, the sim-cache-hit precedent). */
    sim::LoopBatchCounters lb;
};

/** Shared state of one OpenMP lane group. */
class OmpLaneGroup
{
  public:
    OmpLaneGroup(const cpusim::CpuConfig &cfg,
                 const MeasurementConfig &protocol,
                 const std::vector<int> &threads,
                 std::vector<OmpExperiment> exps,
                 std::shared_ptr<std::atomic<long long>> peels,
                 std::vector<bool> owned, bool commit_ref)
        : cfg_(cfg), protocol_(protocol), threads_(threads),
          exps_(std::move(exps)), peels_(std::move(peels)),
          owned_(std::move(owned)), commit_ref_(commit_ref)
    {
    }

    /** Lane @p lane's product, running the group on first demand. */
    const LaneProduct &
    product(std::size_t lane)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!ran_) {
            runGroup();
            ran_ = true;
        }
        return products_[lane];
    }

  private:
    void
    runGroup()
    {
        const std::size_t k = exps_.size();
        products_.assign(k, LaneProduct{});
        CpuSimTarget ref(cfg_, protocol_);
        std::vector<std::unique_ptr<CpuSimTarget>> solo(k);
        std::vector<bool> peeled(k, false);
        bool ref_failed = false;
        for (int n : threads_) {
            // Re-check agreement at this team size before the
            // reference measures it: a lane that stops matching is
            // peeled to its own solo target, seeded exactly where a
            // never-grouped run of its point would be. The shared
            // reference walk repeats in every shard that holds a
            // member of this group, so its registry counters are
            // captured and committed only by the process that owns
            // the group's head lane.
            if (!ref_failed) {
                std::vector<std::size_t> fresh_peels;
                std::vector<std::uint64_t> fresh_seeds;
                Measurement m;
                TelemetrySample sample;
                {
                    metrics::Registry::ScopedCapture cap(
                        metrics::Registry::global());
                    const std::uint64_t want =
                        ref.laneKey(exps_[0], n);
                    for (std::size_t i = 1; i < k; ++i) {
                        if (!peeled[i] &&
                            ref.laneKey(exps_[i], n) != want) {
                            peeled[i] = true;
                            fresh_peels.push_back(i);
                            fresh_seeds.push_back(ref.seedCursor());
                        }
                    }
                    m = ref.measure(exps_[0], n);
                    if (protocol_.telemetry)
                        sample = ref.takeTelemetry();
                    if (commit_ref_)
                        cap.commit();
                }
                for (std::size_t p = 0; p < fresh_peels.size();
                     ++p) {
                    const std::size_t i = fresh_peels[p];
                    peels_->fetch_add(1, std::memory_order_relaxed);
                    if (!owned_[i])
                        continue;
                    // An unowned peeled lane gets no solo target:
                    // its owning process builds the identical one
                    // and emits the point.
                    metrics::add(metrics::Counter::LanePeels);
                    solo[i] = std::make_unique<CpuSimTarget>(
                        cfg_, protocol_, fresh_seeds[p]);
                }
                if (!m.valid) {
                    // Every in-step lane's solo run would fail the
                    // same way at the same step.
                    ref_failed = true;
                    for (std::size_t i = 0; i < k; ++i) {
                        if (peeled[i])
                            continue;
                        products_[i].status = Status::error(
                            ErrorCode::MeasurementError,
                            "{} threads: {}", n, m.error);
                    }
                } else {
                    for (std::size_t i = 0; i < k; ++i) {
                        if (peeled[i])
                            continue;
                        products_[i].measurements.push_back(m);
                        if (protocol_.telemetry)
                            products_[i].telemetry.push_back(sample);
                    }
                }
            }
            for (std::size_t i = 1; i < k; ++i) {
                if (!solo[i] || !products_[i].status.isOk())
                    continue;
                const Measurement m = solo[i]->measure(exps_[i], n);
                if (!m.valid) {
                    products_[i].status = Status::error(
                        ErrorCode::MeasurementError, "{} threads: {}",
                        n, m.error);
                    continue;
                }
                products_[i].measurements.push_back(m);
                if (protocol_.telemetry) {
                    products_[i].telemetry.push_back(
                        solo[i]->takeTelemetry());
                }
            }
        }
        products_[0].lb = ref.loopBatch();
        for (std::size_t i = 1; i < k; ++i) {
            if (solo[i])
                products_[i].lb = solo[i]->loopBatch();
        }
    }

    const cpusim::CpuConfig &cfg_;
    const MeasurementConfig &protocol_;
    const std::vector<int> &threads_;
    const std::vector<OmpExperiment> exps_;
    const std::shared_ptr<std::atomic<long long>> peels_;
    const std::vector<bool> owned_;
    const bool commit_ref_;

    std::mutex mu_;
    bool ran_ = false;
    std::vector<LaneProduct> products_;
};

/** Shared state of one CUDA lane group. */
class CudaLaneGroup
{
  public:
    CudaLaneGroup(const gpusim::GpuConfig &cfg,
                  const MeasurementConfig &protocol,
                  const std::vector<int> &block_counts,
                  const std::vector<int> &thread_counts,
                  std::vector<CudaExperiment> exps,
                  std::shared_ptr<std::atomic<long long>> peels,
                  std::vector<bool> owned, bool commit_ref)
        : cfg_(cfg), protocol_(protocol), block_counts_(block_counts),
          thread_counts_(thread_counts), exps_(std::move(exps)),
          peels_(std::move(peels)), owned_(std::move(owned)),
          commit_ref_(commit_ref)
    {
    }

    const LaneProduct &
    product(std::size_t lane)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!ran_) {
            runGroup();
            ran_ = true;
        }
        return products_[lane];
    }

  private:
    void
    runGroup()
    {
        const std::size_t k = exps_.size();
        products_.assign(k, LaneProduct{});
        GpuSimTarget ref(cfg_, protocol_);
        std::vector<std::unique_ptr<GpuSimTarget>> solo(k);
        std::vector<bool> peeled(k, false);
        // Kernel decoding is launch-geometry independent, so one
        // agreement check covers the whole sweep; a lane that fails
        // it peels before any seed is consumed. Like the OpenMP
        // group, the shared walk's counters are committed only by
        // the process owning the head lane, and solo targets are
        // built only for owned peeled lanes.
        {
            metrics::Registry::ScopedCapture cap(
                metrics::Registry::global());
            const std::uint64_t want = ref.laneKey(exps_[0]);
            for (std::size_t i = 1; i < k; ++i) {
                if (ref.laneKey(exps_[i]) != want)
                    peeled[i] = true;
            }
            if (commit_ref_)
                cap.commit();
        }
        for (std::size_t i = 1; i < k; ++i) {
            if (!peeled[i])
                continue;
            peels_->fetch_add(1, std::memory_order_relaxed);
            if (!owned_[i])
                continue;
            metrics::add(metrics::Counter::LanePeels);
            solo[i] = std::make_unique<GpuSimTarget>(cfg_, protocol_);
        }
        bool ref_failed = false;
        for (int blocks : block_counts_) {
            for (int n : thread_counts_) {
                if (!ref_failed) {
                    Measurement m;
                    TelemetrySample sample;
                    {
                        metrics::Registry::ScopedCapture cap(
                            metrics::Registry::global());
                        m = ref.measure(exps_[0], {blocks, n});
                        if (protocol_.telemetry)
                            sample = ref.takeTelemetry();
                        if (commit_ref_)
                            cap.commit();
                    }
                    if (!m.valid) {
                        ref_failed = true;
                        for (std::size_t i = 0; i < k; ++i) {
                            if (peeled[i])
                                continue;
                            products_[i].status = Status::error(
                                ErrorCode::MeasurementError,
                                "{} blocks x {} threads: {}", blocks,
                                n, m.error);
                        }
                    } else {
                        for (std::size_t i = 0; i < k; ++i) {
                            if (peeled[i])
                                continue;
                            products_[i].measurements.push_back(m);
                            if (protocol_.telemetry)
                                products_[i].telemetry.push_back(
                                    sample);
                        }
                    }
                }
                for (std::size_t i = 1; i < k; ++i) {
                    if (!solo[i] || !products_[i].status.isOk())
                        continue;
                    const Measurement m =
                        solo[i]->measure(exps_[i], {blocks, n});
                    if (!m.valid) {
                        products_[i].status = Status::error(
                            ErrorCode::MeasurementError,
                            "{} blocks x {} threads: {}", blocks, n,
                            m.error);
                        continue;
                    }
                    products_[i].measurements.push_back(m);
                    if (protocol_.telemetry) {
                        products_[i].telemetry.push_back(
                            solo[i]->takeTelemetry());
                    }
                }
            }
        }
        products_[0].lb = ref.loopBatch();
        for (std::size_t i = 1; i < k; ++i) {
            if (solo[i])
                products_[i].lb = solo[i]->loopBatch();
        }
    }

    const gpusim::GpuConfig &cfg_;
    const MeasurementConfig &protocol_;
    const std::vector<int> &block_counts_;
    const std::vector<int> &thread_counts_;
    const std::vector<CudaExperiment> exps_;
    const std::shared_ptr<std::atomic<long long>> peels_;
    const std::vector<bool> owned_;
    const bool commit_ref_;

    std::mutex mu_;
    bool ran_ = false;
    std::vector<LaneProduct> products_;
};

/**
 * Fold a planned grouping into the counters and the result. The
 * in-memory result keeps the full-plan numbers; the registry
 * counters only take the points and groups this process owns, so
 * per-shard counter rows partition the campaign totals exactly.
 */
void
recordLanePlan(const std::vector<LaneGroup> &groups,
               const std::vector<CampaignRunner::Experiment>
                   &experiments,
               const LaneOwnership &own, CampaignResult &result)
{
    const std::size_t n_points = experiments.size();
    result.lanes.points = static_cast<long long>(n_points);
    result.lanes.groups = static_cast<long long>(groups.size());

    long long owned_points = 0;
    for (std::size_t ordinal = 0; ordinal < n_points; ++ordinal) {
        if (own.owns(ordinal, experiments[ordinal].file))
            ++owned_points;
    }
    metrics::add(metrics::Counter::LanePoints, owned_points);

    long long owned_groups = 0;
    for (const LaneGroup &g : groups) {
        const std::size_t head = g.ordinals.front();
        const bool head_owned =
            own.owns(head, experiments[head].file);
        if (head_owned)
            ++owned_groups;
        if (g.ordinals.size() == 1) {
            ++result.lanes.singletons;
            if (head_owned)
                metrics::add(metrics::Counter::LaneSingletonPoints);
        }
    }
    metrics::add(metrics::Counter::LaneGroups, owned_groups);
}

} // namespace

std::string
sanitizeName(const std::string &name)
{
    std::string out;
    for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c))) {
            out.push_back(static_cast<char>(
                std::tolower(static_cast<unsigned char>(c))));
        } else if (!out.empty() && out.back() != '_') {
            out.push_back('_');
        }
    }
    while (!out.empty() && out.back() == '_')
        out.pop_back();
    return out;
}

CampaignResult
runOmpCampaign(const cpusim::CpuConfig &cfg,
               const MeasurementConfig &protocol,
               const CampaignOptions &options)
{
    CampaignResult result;
    // Start from a cold pool so back-to-back campaigns in one
    // process see the same machine/claim state a fresh process would
    // (the warm-start counters stay run-invariant).
    MachinePool::global().reset();
    const std::string system = sanitizeName(cfg.name);
    trace::Span system_span("omp:" + system, "system");
    const fs::path dir = fs::path(options.output_dir) / system;
    const auto threads =
        ompThreadCounts(cfg.totalHwThreads(), options.quick ? 4 : 1);

    // Everything the whole sweep shares is hashed exactly once.
    ConfigHasher base_hash;
    base_hash.add(system);
    for (int n : threads)
        base_hash.add(n);
    hashProtocol(base_hash, protocol);

    std::vector<CampaignRunner::Experiment> experiments;
    std::vector<OmpExperiment> exp_cfgs; // parallel to experiments

    auto add = [&](OmpPrimitive prim, DataType dtype, Location loc,
                   int stride, Affinity affinity, std::string file) {
        OmpExperiment e;
        e.primitive = prim;
        e.dtype = dtype;
        e.location = loc;
        e.stride = stride;
        e.affinity = affinity;
        exp_cfgs.push_back(e);

        CampaignRunner::Experiment exp;
        exp.hash = pointDigest(base_hash, file, e);
        exp.loop_batch = std::make_shared<sim::LoopBatchCounters>();
        // The emit closure runs on a worker thread: one simulator
        // target per experiment file, built fresh from a fixed seed,
        // reused across the whole thread sweep -- results depend
        // only on the point, never on scheduling.
        exp.emit = [e, file, lb = exp.loop_batch, &cfg, &protocol,
                    &threads, &dir,
                    &system](CsvWriter &csv,
                             ManifestEntry &entry) -> Status {
            CpuSimTarget target(cfg, protocol);
            TelemetryReport report;
            for (int n : threads) {
                const auto m = target.measure(e, n);
                if (!m.valid) {
                    return Status::error(ErrorCode::MeasurementError,
                                         "{} threads: {}", n, m.error);
                }
                accumulate(entry, m);
                csv.field(static_cast<long long>(n))
                    .field(m.per_op_seconds)
                    .field(m.opsPerSecondPerThread())
                    .field(m.stddev_seconds);
                csv.endRow();
                if (protocol.telemetry) {
                    TelemetryPoint pt;
                    pt.axes.emplace_back(
                        "threads", static_cast<std::uint64_t>(n));
                    pt.sample = target.takeTelemetry();
                    report.points.push_back(std::move(pt));
                }
            }
            *lb = target.loopBatch();
            if (protocol.telemetry) {
                report.experiment = file;
                report.system = system;
                if (Status s = report.writeFile(
                        telemetryPathFor(dir, file));
                    !s.isOk())
                    return s;
            }
            return Status::ok();
        };
        exp.file = std::move(file);
        experiments.push_back(std::move(exp));
    };

    add(OmpPrimitive::Barrier, DataType::Int32, Location::SharedVariable,
        1, Affinity::Spread, "omp_barrier.csv");
    add(OmpPrimitive::Critical, DataType::Int32, Location::SharedVariable,
        1, Affinity::Spread, "omp_critical.csv");
    add(OmpPrimitive::AtomicRead, DataType::Int32,
        Location::SharedVariable, 1, Affinity::System,
        "omp_atomic_read.csv");

    // File-name fragments are built once per dtype/stride, not once
    // per point.
    const auto strides = ompStrides(options.quick);
    std::vector<std::string> stride_tags;
    stride_tags.reserve(strides.size());
    for (int stride : strides)
        stride_tags.push_back("_s" + std::to_string(stride) + "_");

    for (DataType t : all_data_types) {
        const std::string suffix = std::string(dataTypeName(t)) + ".csv";
        add(OmpPrimitive::AtomicUpdate, t, Location::SharedVariable, 1,
            Affinity::System, "omp_atomic_update_" + suffix);
        add(OmpPrimitive::AtomicCapture, t, Location::SharedVariable, 1,
            Affinity::System, "omp_atomic_capture_" + suffix);
        add(OmpPrimitive::AtomicWrite, t, Location::SharedVariable, 1,
            Affinity::System, "omp_atomic_write_" + suffix);
        for (std::size_t i = 0; i < strides.size(); ++i) {
            add(OmpPrimitive::AtomicUpdate, t, Location::PrivateArray,
                strides[i], Affinity::System,
                "omp_atomic_array" + stride_tags[i] + suffix);
            add(OmpPrimitive::Flush, t, Location::PrivateArray,
                strides[i], Affinity::Close,
                "omp_flush" + stride_tags[i] + suffix);
        }
    }

    result.points.reserve(experiments.size());
    for (const auto &exp : experiments)
        result.points.push_back({exp.file, exp.hash});
    if (options.enumerate_only)
        return result;

    // Lane planning: key every point by its decoded pair at the
    // largest team size (cheap -- decoding only; the per-n re-check
    // inside the group run keeps any over-grouping safe), then
    // rebind multi-lane group members to the shared group run.
    // Width-1 groups keep the untouched solo emit path.
    auto peels = std::make_shared<std::atomic<long long>>(0);
    if (laneGroupingAllowed(options, protocol)) {
        const LaneOwnership own = makeLaneOwnership(options, system);
        std::vector<LaneGroup> groups;
        {
            // Every shard re-plans the identical grouping; only
            // shard 0 commits the planner's decode counters.
            metrics::Registry::ScopedCapture cap(
                metrics::Registry::global());
            CpuSimTarget planner_target(cfg, protocol);
            std::vector<std::uint64_t> keys;
            keys.reserve(exp_cfgs.size());
            for (const OmpExperiment &e : exp_cfgs)
                keys.push_back(
                    planner_target.laneKey(e, threads.back()));
            groups = planLaneGroups(keys, options.lanes);
            if (options.shard_count <= 1 || options.shard_index == 0)
                cap.commit();
        }
        recordLanePlan(groups, experiments, own, result);
        for (const LaneGroup &g : groups) {
            if (g.ordinals.size() < 2)
                continue;
            std::vector<OmpExperiment> members;
            members.reserve(g.ordinals.size());
            std::vector<bool> owned;
            owned.reserve(g.ordinals.size());
            for (std::size_t ordinal : g.ordinals) {
                members.push_back(exp_cfgs[ordinal]);
                owned.push_back(own.owns(
                    ordinal, experiments[ordinal].file));
            }
            const bool commit_ref = owned.front();
            auto group = std::make_shared<OmpLaneGroup>(
                cfg, protocol, threads, std::move(members), peels,
                std::move(owned), commit_ref);
            for (std::size_t lane = 0; lane < g.ordinals.size();
                 ++lane) {
                CampaignRunner::Experiment &exp =
                    experiments[g.ordinals[lane]];
                exp.emit = [group, lane, file = exp.file,
                            lb = exp.loop_batch, &protocol, &threads,
                            &dir, &system](
                               CsvWriter &csv,
                               ManifestEntry &entry) -> Status {
                    const LaneProduct &prod = group->product(lane);
                    TelemetryReport report;
                    for (std::size_t s = 0;
                         s < prod.measurements.size(); ++s) {
                        const Measurement &m = prod.measurements[s];
                        accumulate(entry, m);
                        csv.field(static_cast<long long>(threads[s]))
                            .field(m.per_op_seconds)
                            .field(m.opsPerSecondPerThread())
                            .field(m.stddev_seconds);
                        csv.endRow();
                        if (protocol.telemetry) {
                            TelemetryPoint pt;
                            pt.axes.emplace_back(
                                "threads", static_cast<std::uint64_t>(
                                               threads[s]));
                            pt.sample = prod.telemetry[s];
                            report.points.push_back(std::move(pt));
                        }
                    }
                    if (!prod.status.isOk())
                        return prod.status;
                    *lb = prod.lb;
                    if (protocol.telemetry) {
                        report.experiment = file;
                        report.system = system;
                        if (Status s = report.writeFile(
                                telemetryPathFor(dir, file));
                            !s.isOk())
                            return s;
                    }
                    return Status::ok();
                };
            }
        }
    }

    CampaignRunner runner(dir, system, options, result);
    runner.runAll({"threads", "per_op_seconds", "throughput_per_thread",
                   "stddev_seconds"},
                  std::move(experiments));
    result.lanes.peels = peels->load(std::memory_order_relaxed);
    return result;
}

CampaignResult
runCudaCampaign(const gpusim::GpuConfig &cfg,
                const MeasurementConfig &protocol,
                const CampaignOptions &options)
{
    CampaignResult result;
    MachinePool::global().reset();
    const std::string system = sanitizeName(cfg.name);
    trace::Span system_span("cuda:" + system, "system");
    const fs::path dir = fs::path(options.output_dir) / system;

    auto thread_counts = cudaThreadCounts();
    if (options.quick) {
        std::vector<int> coarse;
        for (std::size_t i = 0; i < thread_counts.size(); i += 2)
            coarse.push_back(thread_counts[i]);
        if (coarse.back() != thread_counts.back())
            coarse.push_back(thread_counts.back());
        thread_counts = coarse;
    }
    const std::vector<int> block_counts =
        options.quick ? std::vector<int>{1, 2, cfg.sm_count / 2}
                      : cudaBlockCounts(cfg.sm_count);

    ConfigHasher base_hash;
    base_hash.add(system);
    for (int blocks : block_counts)
        base_hash.add(blocks);
    for (int n : thread_counts)
        base_hash.add(n);
    hashProtocol(base_hash, protocol);

    std::vector<CampaignRunner::Experiment> experiments;
    std::vector<CudaExperiment> exp_cfgs; // parallel to experiments

    auto add = [&](CudaPrimitive prim, DataType dtype, Location loc,
                   int stride, std::string file) {
        CudaExperiment e;
        e.primitive = prim;
        e.dtype = dtype;
        e.location = loc;
        e.stride = stride;
        exp_cfgs.push_back(e);

        CampaignRunner::Experiment exp;
        exp.hash = pointDigest(base_hash, file, e);
        exp.loop_batch = std::make_shared<sim::LoopBatchCounters>();
        exp.emit = [e, file, lb = exp.loop_batch, &cfg, &protocol,
                    &block_counts, &thread_counts, &dir,
                    &system](CsvWriter &csv,
                             ManifestEntry &entry) -> Status {
            GpuSimTarget target(cfg, protocol);
            TelemetryReport report;
            for (int blocks : block_counts) {
                for (int n : thread_counts) {
                    const auto m = target.measure(e, {blocks, n});
                    if (!m.valid) {
                        return Status::error(
                            ErrorCode::MeasurementError,
                            "{} blocks x {} threads: {}", blocks, n,
                            m.error);
                    }
                    accumulate(entry, m);
                    csv.field(static_cast<long long>(blocks))
                        .field(static_cast<long long>(n))
                        .field(m.per_op_seconds)
                        .field(m.opsPerSecondPerThread());
                    csv.endRow();
                    if (protocol.telemetry) {
                        TelemetryPoint pt;
                        pt.axes.emplace_back(
                            "blocks",
                            static_cast<std::uint64_t>(blocks));
                        pt.axes.emplace_back(
                            "threads_per_block",
                            static_cast<std::uint64_t>(n));
                        pt.sample = target.takeTelemetry();
                        report.points.push_back(std::move(pt));
                    }
                }
            }
            *lb = target.loopBatch();
            if (protocol.telemetry) {
                report.experiment = file;
                report.system = system;
                if (Status s = report.writeFile(
                        telemetryPathFor(dir, file));
                    !s.isOk())
                    return s;
            }
            return Status::ok();
        };
        exp.file = std::move(file);
        experiments.push_back(std::move(exp));
    };

    add(CudaPrimitive::SyncThreads, DataType::Int32,
        Location::SharedVariable, 1, "cuda_syncthreads.csv");
    add(CudaPrimitive::SyncWarp, DataType::Int32,
        Location::SharedVariable, 1, "cuda_syncwarp.csv");
    add(CudaPrimitive::VoteSync, DataType::Int32,
        Location::SharedVariable, 1, "cuda_vote.csv");
    add(CudaPrimitive::ThreadFence, DataType::Int32,
        Location::PrivateArray, 1, "cuda_threadfence.csv");
    add(CudaPrimitive::ThreadFenceBlock, DataType::Int32,
        Location::PrivateArray, 1, "cuda_threadfence_block.csv");
    add(CudaPrimitive::ThreadFenceSystem, DataType::Int32,
        Location::PrivateArray, 1, "cuda_threadfence_system.csv");

    for (DataType t : all_data_types) {
        const std::string suffix = std::string(dataTypeName(t)) + ".csv";
        add(CudaPrimitive::AtomicAdd, t, Location::SharedVariable, 1,
            "cuda_atomicadd_" + suffix);
        add(CudaPrimitive::ShflSync, t, Location::SharedVariable, 1,
            "cuda_shfl_" + suffix);
        if (!options.quick) {
            for (int stride : {1, 32}) {
                add(CudaPrimitive::AtomicAdd, t, Location::PrivateArray,
                    stride,
                    "cuda_atomicadd_array_s" + std::to_string(stride) +
                        "_" + suffix);
            }
        }
        if (isIntegerType(t)) {
            add(CudaPrimitive::AtomicCas, t, Location::SharedVariable, 1,
                "cuda_atomiccas_" + suffix);
            add(CudaPrimitive::AtomicExch, t, Location::SharedVariable, 1,
                "cuda_atomicexch_" + suffix);
        }
    }

    result.points.reserve(experiments.size());
    for (const auto &exp : experiments)
        result.points.push_back({exp.file, exp.hash});
    if (options.enumerate_only)
        return result;

    // Lane planning mirrors the OpenMP sweep; kernel decoding is
    // launch-geometry independent, so one key covers every
    // blocks x threads point of an experiment.
    auto peels = std::make_shared<std::atomic<long long>>(0);
    if (laneGroupingAllowed(options, protocol)) {
        const LaneOwnership own = makeLaneOwnership(options, system);
        std::vector<LaneGroup> groups;
        {
            // Identical re-plan in every shard; only shard 0
            // commits the planner's decode counters.
            metrics::Registry::ScopedCapture cap(
                metrics::Registry::global());
            GpuSimTarget planner_target(cfg, protocol);
            std::vector<std::uint64_t> keys;
            keys.reserve(exp_cfgs.size());
            for (const CudaExperiment &e : exp_cfgs)
                keys.push_back(planner_target.laneKey(e));
            groups = planLaneGroups(keys, options.lanes);
            if (options.shard_count <= 1 || options.shard_index == 0)
                cap.commit();
        }
        recordLanePlan(groups, experiments, own, result);
        for (const LaneGroup &g : groups) {
            if (g.ordinals.size() < 2)
                continue;
            std::vector<CudaExperiment> members;
            members.reserve(g.ordinals.size());
            std::vector<bool> owned;
            owned.reserve(g.ordinals.size());
            for (std::size_t ordinal : g.ordinals) {
                members.push_back(exp_cfgs[ordinal]);
                owned.push_back(own.owns(
                    ordinal, experiments[ordinal].file));
            }
            const bool commit_ref = owned.front();
            auto group = std::make_shared<CudaLaneGroup>(
                cfg, protocol, block_counts, thread_counts,
                std::move(members), peels, std::move(owned),
                commit_ref);
            for (std::size_t lane = 0; lane < g.ordinals.size();
                 ++lane) {
                CampaignRunner::Experiment &exp =
                    experiments[g.ordinals[lane]];
                exp.emit = [group, lane, file = exp.file,
                            lb = exp.loop_batch, &protocol,
                            &block_counts, &thread_counts, &dir,
                            &system](
                               CsvWriter &csv,
                               ManifestEntry &entry) -> Status {
                    const LaneProduct &prod = group->product(lane);
                    TelemetryReport report;
                    std::size_t s = 0;
                    for (int blocks : block_counts) {
                        for (int n : thread_counts) {
                            if (s >= prod.measurements.size())
                                break;
                            const Measurement &m =
                                prod.measurements[s];
                            accumulate(entry, m);
                            csv.field(static_cast<long long>(blocks))
                                .field(static_cast<long long>(n))
                                .field(m.per_op_seconds)
                                .field(m.opsPerSecondPerThread());
                            csv.endRow();
                            if (protocol.telemetry) {
                                TelemetryPoint pt;
                                pt.axes.emplace_back(
                                    "blocks",
                                    static_cast<std::uint64_t>(
                                        blocks));
                                pt.axes.emplace_back(
                                    "threads_per_block",
                                    static_cast<std::uint64_t>(n));
                                pt.sample = prod.telemetry[s];
                                report.points.push_back(
                                    std::move(pt));
                            }
                            ++s;
                        }
                    }
                    if (!prod.status.isOk())
                        return prod.status;
                    *lb = prod.lb;
                    if (protocol.telemetry) {
                        report.experiment = file;
                        report.system = system;
                        if (Status s2 = report.writeFile(
                                telemetryPathFor(dir, file));
                            !s2.isOk())
                            return s2;
                    }
                    return Status::ok();
                };
            }
        }
    }

    CampaignRunner runner(dir, system, options, result);
    runner.runAll({"blocks", "threads_per_block", "per_op_seconds",
                   "throughput_per_thread"},
                  std::move(experiments));
    result.lanes.peels = peels->load(std::memory_order_relaxed);
    return result;
}

} // namespace syncperf::core
