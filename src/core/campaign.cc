/**
 * @file
 * Implementation of the campaign driver.
 */

#include "campaign.hh"

#include <cctype>
#include <filesystem>
#include <functional>

#include "common/atomic_file.hh"
#include "common/csv.hh"
#include "common/logging.hh"
#include "core/manifest.hh"
#include "core/sweep.hh"

namespace syncperf::core
{
namespace
{

namespace fs = std::filesystem;

/** Strides the paper sweeps; quick mode keeps the knee-revealing ones. */
std::vector<int>
ompStrides(bool quick)
{
    return quick ? std::vector<int>{1, 8, 16}
                 : std::vector<int>{1, 4, 8, 16};
}

/** Fold the protocol knobs into @p h: any change reruns the point. */
void
hashProtocol(ConfigHasher &h, const MeasurementConfig &p)
{
    h.add(p.runs)
        .add(p.attempts)
        .add(p.n_iter)
        .add(p.n_unroll)
        .add(p.n_warmup)
        .add(p.max_retries)
        .add(p.cov_gate)
        .add(p.max_noise_retries);
}

/**
 * Shared per-system campaign mechanics: stray-temp cleanup, journal
 * lifecycle, skip-on-resume, atomic CSV emission, and failure
 * accounting. The OpenMP and CUDA sweeps differ only in how they
 * enumerate points and emit rows.
 */
class CampaignRunner
{
  public:
    CampaignRunner(const fs::path &dir, const std::string &system,
                   const CampaignOptions &options,
                   CampaignResult &result)
        : dir_(dir), options_(options), result_(result),
          manifest_(dir / "manifest.json")
    {
        removeStrayTemps();
        if (options.resume) {
            auto loaded = Manifest::load(dir / "manifest.json");
            if (loaded.isOk()) {
                manifest_ = std::move(loaded).value();
            } else {
                warn("{}; restarting the journal",
                     loaded.status().message());
            }
        }
        manifest_.setSystem(system);
    }

    /**
     * Run one experiment: skip it when the journal already has it,
     * otherwise measure and write through an atomic temp file,
     * journaling the outcome either way.
     *
     * @param file CSV name (the journal key).
     * @param hash ConfigHasher digest of the point's configuration.
     * @param header CSV header row.
     * @param emit Writes all data rows and fills the journal entry's
     *        retry/noise statistics; returns non-ok to fail the
     *        experiment (e.g. an invalid measurement).
     */
    void
    runExperiment(const std::string &file, std::uint64_t hash,
                  const std::vector<std::string> &header,
                  const std::function<Status(CsvWriter &,
                                             ManifestEntry &)> &emit)
    {
        if (options_.resume && manifest_.isComplete(file, hash)) {
            ++result_.experiments_skipped;
            return;
        }

        ManifestEntry entry;
        entry.key = file;
        entry.config_hash = hash;

        const fs::path path = dir_ / file;
        Status status = writeCsv(path, header, emit, entry);
        if (status.isOk()) {
            manifest_.recordComplete(std::move(entry));
            result_.files_written.push_back(path.string());
            ++result_.experiments_run;
        } else {
            warn("experiment {} failed: {}", file, status.toString());
            manifest_.recordFailure(file, hash, status.toString());
            result_.failures.push_back({file, status.toString()});
        }
        checkpoint();
    }

  private:
    Status
    writeCsv(const fs::path &path,
             const std::vector<std::string> &header,
             const std::function<Status(CsvWriter &,
                                        ManifestEntry &)> &emit,
             ManifestEntry &entry)
    {
        AtomicFile out;
        if (Status s = out.open(path); !s.isOk())
            return s;
        CsvWriter csv(out.stream());
        csv.header(header);
        if (Status s = emit(csv, entry); !s.isOk())
            return s; // destructor discards the temp file
        return out.commit();
    }

    /** Persist the journal; losing it only costs re-measurement. */
    void
    checkpoint()
    {
        if (Status s = manifest_.save(); !s.isOk())
            warn("cannot checkpoint manifest: {}", s.toString());
    }

    /** Drop .tmp leftovers of a previously killed campaign. */
    void
    removeStrayTemps()
    {
        std::error_code ec;
        if (!fs::is_directory(dir_, ec))
            return;
        for (const auto &e : fs::directory_iterator(dir_, ec)) {
            if (e.is_regular_file() && e.path().extension() == ".tmp")
                fs::remove(e.path(), ec);
        }
    }

    const fs::path dir_;
    const CampaignOptions &options_;
    CampaignResult &result_;
    Manifest manifest_;
};

/** Fold a finished point's Measurement into its journal entry. */
void
accumulate(ManifestEntry &entry, const Measurement &m)
{
    entry.protocol_retries += m.retries;
    entry.noise_retries += m.noise_retries;
    if (m.cov > entry.max_cov)
        entry.max_cov = m.cov;
}

} // namespace

std::string
sanitizeName(const std::string &name)
{
    std::string out;
    for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c))) {
            out.push_back(static_cast<char>(
                std::tolower(static_cast<unsigned char>(c))));
        } else if (!out.empty() && out.back() != '_') {
            out.push_back('_');
        }
    }
    while (!out.empty() && out.back() == '_')
        out.pop_back();
    return out;
}

CampaignResult
runOmpCampaign(const cpusim::CpuConfig &cfg,
               const MeasurementConfig &protocol,
               const CampaignOptions &options)
{
    CampaignResult result;
    const std::string system = sanitizeName(cfg.name);
    const fs::path dir = fs::path(options.output_dir) / system;
    const auto threads =
        ompThreadCounts(cfg.totalHwThreads(), options.quick ? 4 : 1);

    struct Point
    {
        OmpExperiment exp;
        std::string file;
    };
    std::vector<Point> points;

    auto add = [&](OmpPrimitive prim, DataType dtype, Location loc,
                   int stride, Affinity affinity, std::string file) {
        OmpExperiment e;
        e.primitive = prim;
        e.dtype = dtype;
        e.location = loc;
        e.stride = stride;
        e.affinity = affinity;
        points.push_back({e, std::move(file)});
    };

    add(OmpPrimitive::Barrier, DataType::Int32, Location::SharedVariable,
        1, Affinity::Spread, "omp_barrier.csv");
    add(OmpPrimitive::Critical, DataType::Int32, Location::SharedVariable,
        1, Affinity::Spread, "omp_critical.csv");
    add(OmpPrimitive::AtomicRead, DataType::Int32,
        Location::SharedVariable, 1, Affinity::System,
        "omp_atomic_read.csv");

    for (DataType t : all_data_types) {
        const std::string suffix = std::string(dataTypeName(t)) + ".csv";
        add(OmpPrimitive::AtomicUpdate, t, Location::SharedVariable, 1,
            Affinity::System, "omp_atomic_update_" + suffix);
        add(OmpPrimitive::AtomicCapture, t, Location::SharedVariable, 1,
            Affinity::System, "omp_atomic_capture_" + suffix);
        add(OmpPrimitive::AtomicWrite, t, Location::SharedVariable, 1,
            Affinity::System, "omp_atomic_write_" + suffix);
        for (int stride : ompStrides(options.quick)) {
            add(OmpPrimitive::AtomicUpdate, t, Location::PrivateArray,
                stride, Affinity::System,
                "omp_atomic_array_s" + std::to_string(stride) + "_" +
                    suffix);
            add(OmpPrimitive::Flush, t, Location::PrivateArray, stride,
                Affinity::Close,
                "omp_flush_s" + std::to_string(stride) + "_" + suffix);
        }
    }

    CampaignRunner runner(dir, system, options, result);
    for (const auto &point : points) {
        ConfigHasher hasher;
        hasher.add(system).add(point.file);
        hasher.add(static_cast<int>(point.exp.primitive))
            .add(static_cast<int>(point.exp.dtype))
            .add(static_cast<int>(point.exp.location))
            .add(point.exp.stride)
            .add(static_cast<int>(point.exp.affinity));
        for (int n : threads)
            hasher.add(n);
        hashProtocol(hasher, protocol);

        runner.runExperiment(
            point.file, hasher.digest(),
            {"threads", "per_op_seconds", "throughput_per_thread",
             "stddev_seconds"},
            [&](CsvWriter &csv, ManifestEntry &entry) -> Status {
                CpuSimTarget target(cfg, protocol);
                for (int n : threads) {
                    const auto m = target.measure(point.exp, n);
                    if (!m.valid) {
                        return Status::error(
                            ErrorCode::MeasurementError,
                            "{} threads: {}", n, m.error);
                    }
                    accumulate(entry, m);
                    csv.field(static_cast<long long>(n))
                        .field(m.per_op_seconds)
                        .field(m.opsPerSecondPerThread())
                        .field(m.stddev_seconds);
                    csv.endRow();
                }
                return Status::ok();
            });
    }
    return result;
}

CampaignResult
runCudaCampaign(const gpusim::GpuConfig &cfg,
                const MeasurementConfig &protocol,
                const CampaignOptions &options)
{
    CampaignResult result;
    const std::string system = sanitizeName(cfg.name);
    const fs::path dir = fs::path(options.output_dir) / system;

    auto thread_counts = cudaThreadCounts();
    if (options.quick) {
        std::vector<int> coarse;
        for (std::size_t i = 0; i < thread_counts.size(); i += 2)
            coarse.push_back(thread_counts[i]);
        if (coarse.back() != thread_counts.back())
            coarse.push_back(thread_counts.back());
        thread_counts = coarse;
    }
    const std::vector<int> block_counts =
        options.quick ? std::vector<int>{1, 2, cfg.sm_count / 2}
                      : cudaBlockCounts(cfg.sm_count);

    struct Point
    {
        CudaExperiment exp;
        std::string file;
    };
    std::vector<Point> points;

    auto add = [&](CudaPrimitive prim, DataType dtype, Location loc,
                   int stride, std::string file) {
        CudaExperiment e;
        e.primitive = prim;
        e.dtype = dtype;
        e.location = loc;
        e.stride = stride;
        points.push_back({e, std::move(file)});
    };

    add(CudaPrimitive::SyncThreads, DataType::Int32,
        Location::SharedVariable, 1, "cuda_syncthreads.csv");
    add(CudaPrimitive::SyncWarp, DataType::Int32,
        Location::SharedVariable, 1, "cuda_syncwarp.csv");
    add(CudaPrimitive::VoteSync, DataType::Int32,
        Location::SharedVariable, 1, "cuda_vote.csv");
    add(CudaPrimitive::ThreadFence, DataType::Int32,
        Location::PrivateArray, 1, "cuda_threadfence.csv");
    add(CudaPrimitive::ThreadFenceBlock, DataType::Int32,
        Location::PrivateArray, 1, "cuda_threadfence_block.csv");
    add(CudaPrimitive::ThreadFenceSystem, DataType::Int32,
        Location::PrivateArray, 1, "cuda_threadfence_system.csv");

    for (DataType t : all_data_types) {
        const std::string suffix = std::string(dataTypeName(t)) + ".csv";
        add(CudaPrimitive::AtomicAdd, t, Location::SharedVariable, 1,
            "cuda_atomicadd_" + suffix);
        add(CudaPrimitive::ShflSync, t, Location::SharedVariable, 1,
            "cuda_shfl_" + suffix);
        if (!options.quick) {
            for (int stride : {1, 32}) {
                add(CudaPrimitive::AtomicAdd, t, Location::PrivateArray,
                    stride,
                    "cuda_atomicadd_array_s" + std::to_string(stride) +
                        "_" + suffix);
            }
        }
        if (isIntegerType(t)) {
            add(CudaPrimitive::AtomicCas, t, Location::SharedVariable, 1,
                "cuda_atomiccas_" + suffix);
            add(CudaPrimitive::AtomicExch, t, Location::SharedVariable, 1,
                "cuda_atomicexch_" + suffix);
        }
    }

    CampaignRunner runner(dir, system, options, result);
    for (const auto &point : points) {
        ConfigHasher hasher;
        hasher.add(system).add(point.file);
        hasher.add(static_cast<int>(point.exp.primitive))
            .add(static_cast<int>(point.exp.dtype))
            .add(static_cast<int>(point.exp.location))
            .add(point.exp.stride);
        for (int blocks : block_counts)
            hasher.add(blocks);
        for (int n : thread_counts)
            hasher.add(n);
        hashProtocol(hasher, protocol);

        runner.runExperiment(
            point.file, hasher.digest(),
            {"blocks", "threads_per_block", "per_op_seconds",
             "throughput_per_thread"},
            [&](CsvWriter &csv, ManifestEntry &entry) -> Status {
                GpuSimTarget target(cfg, protocol);
                for (int blocks : block_counts) {
                    for (int n : thread_counts) {
                        const auto m =
                            target.measure(point.exp, {blocks, n});
                        if (!m.valid) {
                            return Status::error(
                                ErrorCode::MeasurementError,
                                "{} blocks x {} threads: {}", blocks,
                                n, m.error);
                        }
                        accumulate(entry, m);
                        csv.field(static_cast<long long>(blocks))
                            .field(static_cast<long long>(n))
                            .field(m.per_op_seconds)
                            .field(m.opsPerSecondPerThread());
                        csv.endRow();
                    }
                }
                return Status::ok();
            });
    }
    return result;
}

} // namespace syncperf::core
