/**
 * @file
 * Implementation of the campaign driver.
 */

#include "campaign.hh"

#include <cctype>
#include <filesystem>
#include <fstream>

#include "common/csv.hh"
#include "common/logging.hh"
#include "core/sweep.hh"

namespace syncperf::core
{
namespace
{

namespace fs = std::filesystem;

/** Open an output CSV, creating directories as needed. */
std::ofstream
openCsv(const fs::path &path)
{
    std::error_code ec;
    fs::create_directories(path.parent_path(), ec);
    if (ec) {
        fatal("cannot create {}: {}", path.parent_path().string(),
              ec.message());
    }
    std::ofstream out(path);
    if (!out)
        fatal("cannot open {} for writing", path.string());
    return out;
}

/** Strides the paper sweeps; quick mode keeps the knee-revealing ones. */
std::vector<int>
ompStrides(bool quick)
{
    return quick ? std::vector<int>{1, 8, 16}
                 : std::vector<int>{1, 4, 8, 16};
}

} // namespace

std::string
sanitizeName(const std::string &name)
{
    std::string out;
    for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c))) {
            out.push_back(static_cast<char>(
                std::tolower(static_cast<unsigned char>(c))));
        } else if (!out.empty() && out.back() != '_') {
            out.push_back('_');
        }
    }
    while (!out.empty() && out.back() == '_')
        out.pop_back();
    return out;
}

CampaignResult
runOmpCampaign(const cpusim::CpuConfig &cfg,
               const MeasurementConfig &protocol,
               const CampaignOptions &options)
{
    CampaignResult result;
    const fs::path dir =
        fs::path(options.output_dir) / sanitizeName(cfg.name);
    const auto threads =
        ompThreadCounts(cfg.totalHwThreads(), options.quick ? 4 : 1);

    struct Point
    {
        OmpExperiment exp;
        std::string file;
    };
    std::vector<Point> points;

    auto add = [&](OmpPrimitive prim, DataType dtype, Location loc,
                   int stride, Affinity affinity, std::string file) {
        OmpExperiment e;
        e.primitive = prim;
        e.dtype = dtype;
        e.location = loc;
        e.stride = stride;
        e.affinity = affinity;
        points.push_back({e, std::move(file)});
    };

    add(OmpPrimitive::Barrier, DataType::Int32, Location::SharedVariable,
        1, Affinity::Spread, "omp_barrier.csv");
    add(OmpPrimitive::Critical, DataType::Int32, Location::SharedVariable,
        1, Affinity::Spread, "omp_critical.csv");
    add(OmpPrimitive::AtomicRead, DataType::Int32,
        Location::SharedVariable, 1, Affinity::System,
        "omp_atomic_read.csv");

    for (DataType t : all_data_types) {
        const std::string suffix = std::string(dataTypeName(t)) + ".csv";
        add(OmpPrimitive::AtomicUpdate, t, Location::SharedVariable, 1,
            Affinity::System, "omp_atomic_update_" + suffix);
        add(OmpPrimitive::AtomicCapture, t, Location::SharedVariable, 1,
            Affinity::System, "omp_atomic_capture_" + suffix);
        add(OmpPrimitive::AtomicWrite, t, Location::SharedVariable, 1,
            Affinity::System, "omp_atomic_write_" + suffix);
        for (int stride : ompStrides(options.quick)) {
            add(OmpPrimitive::AtomicUpdate, t, Location::PrivateArray,
                stride, Affinity::System,
                "omp_atomic_array_s" + std::to_string(stride) + "_" +
                    suffix);
            add(OmpPrimitive::Flush, t, Location::PrivateArray, stride,
                Affinity::Close,
                "omp_flush_s" + std::to_string(stride) + "_" + suffix);
        }
    }

    for (const auto &point : points) {
        CpuSimTarget target(cfg, protocol);
        const fs::path path = dir / point.file;
        auto out = openCsv(path);
        CsvWriter csv(out);
        csv.header({"threads", "per_op_seconds",
                    "throughput_per_thread", "stddev_seconds"});
        for (int n : threads) {
            const auto m = target.measure(point.exp, n);
            csv.field(static_cast<long long>(n))
                .field(m.per_op_seconds)
                .field(m.opsPerSecondPerThread())
                .field(m.stddev_seconds);
            csv.endRow();
        }
        result.files_written.push_back(path.string());
        ++result.experiments_run;
    }
    return result;
}

CampaignResult
runCudaCampaign(const gpusim::GpuConfig &cfg,
                const MeasurementConfig &protocol,
                const CampaignOptions &options)
{
    CampaignResult result;
    const fs::path dir =
        fs::path(options.output_dir) / sanitizeName(cfg.name);

    auto thread_counts = cudaThreadCounts();
    if (options.quick) {
        std::vector<int> coarse;
        for (std::size_t i = 0; i < thread_counts.size(); i += 2)
            coarse.push_back(thread_counts[i]);
        if (coarse.back() != thread_counts.back())
            coarse.push_back(thread_counts.back());
        thread_counts = coarse;
    }
    const std::vector<int> block_counts =
        options.quick ? std::vector<int>{1, 2, cfg.sm_count / 2}
                      : cudaBlockCounts(cfg.sm_count);

    struct Point
    {
        CudaExperiment exp;
        std::string file;
    };
    std::vector<Point> points;

    auto add = [&](CudaPrimitive prim, DataType dtype, Location loc,
                   int stride, std::string file) {
        CudaExperiment e;
        e.primitive = prim;
        e.dtype = dtype;
        e.location = loc;
        e.stride = stride;
        points.push_back({e, std::move(file)});
    };

    add(CudaPrimitive::SyncThreads, DataType::Int32,
        Location::SharedVariable, 1, "cuda_syncthreads.csv");
    add(CudaPrimitive::SyncWarp, DataType::Int32,
        Location::SharedVariable, 1, "cuda_syncwarp.csv");
    add(CudaPrimitive::VoteSync, DataType::Int32,
        Location::SharedVariable, 1, "cuda_vote.csv");
    add(CudaPrimitive::ThreadFence, DataType::Int32,
        Location::PrivateArray, 1, "cuda_threadfence.csv");
    add(CudaPrimitive::ThreadFenceBlock, DataType::Int32,
        Location::PrivateArray, 1, "cuda_threadfence_block.csv");
    add(CudaPrimitive::ThreadFenceSystem, DataType::Int32,
        Location::PrivateArray, 1, "cuda_threadfence_system.csv");

    for (DataType t : all_data_types) {
        const std::string suffix = std::string(dataTypeName(t)) + ".csv";
        add(CudaPrimitive::AtomicAdd, t, Location::SharedVariable, 1,
            "cuda_atomicadd_" + suffix);
        add(CudaPrimitive::ShflSync, t, Location::SharedVariable, 1,
            "cuda_shfl_" + suffix);
        if (!options.quick) {
            for (int stride : {1, 32}) {
                add(CudaPrimitive::AtomicAdd, t, Location::PrivateArray,
                    stride,
                    "cuda_atomicadd_array_s" + std::to_string(stride) +
                        "_" + suffix);
            }
        }
        if (isIntegerType(t)) {
            add(CudaPrimitive::AtomicCas, t, Location::SharedVariable, 1,
                "cuda_atomiccas_" + suffix);
            add(CudaPrimitive::AtomicExch, t, Location::SharedVariable, 1,
                "cuda_atomicexch_" + suffix);
        }
    }

    for (const auto &point : points) {
        GpuSimTarget target(cfg, protocol);
        const fs::path path = dir / point.file;
        auto out = openCsv(path);
        CsvWriter csv(out);
        csv.header({"blocks", "threads_per_block", "per_op_seconds",
                    "throughput_per_thread"});
        for (int blocks : block_counts) {
            for (int n : thread_counts) {
                const auto m = target.measure(point.exp, {blocks, n});
                csv.field(static_cast<long long>(blocks))
                    .field(static_cast<long long>(n))
                    .field(m.per_op_seconds)
                    .field(m.opsPerSecondPerThread());
                csv.endRow();
            }
        }
        result.files_written.push_back(path.string());
        ++result.experiments_run;
    }
    return result;
}

} // namespace syncperf::core
