/**
 * @file
 * Implementation of figure assembly.
 */

#include "figure.hh"

#include <cmath>

#include "common/csv.hh"
#include "common/logging.hh"

namespace syncperf::core
{

Figure::Figure(std::string id, std::string title, std::string x_label,
               std::vector<double> xs)
    : id_(std::move(id)), title_(std::move(title)),
      x_label_(std::move(x_label)), xs_(std::move(xs))
{
    SYNCPERF_ASSERT(!xs_.empty());
}

void
Figure::addSeries(std::string label, std::vector<double> ys)
{
    SYNCPERF_ASSERT(ys.size() == xs_.size());
    series_.push_back({std::move(label), std::move(ys)});
}

void
Figure::writeCsv(std::ostream &out) const
{
    CsvWriter csv(out);
    csv.header({"figure", "series", "x", "throughput_per_thread"});
    for (const auto &s : series_) {
        for (std::size_t i = 0; i < xs_.size(); ++i) {
            csv.field(id_).field(s.label).field(xs_[i]).field(s.ys[i]);
            csv.endRow();
        }
    }
}

std::string
Figure::render() const
{
    AsciiChart chart(xs_);
    chart.setTitle(id_ + ": " + title_);
    chart.setXLabel(x_label_);
    chart.setYLabel("throughput (op/s per thread)");
    chart.setLogX(log_x_);
    if (core_boundary_ > 0.0)
        chart.setVerticalMarker(core_boundary_);
    for (const auto &s : series_) {
        // Replace infinities (free primitives) with NaN so the chart
        // skips them instead of distorting the scale.
        std::vector<double> ys = s.ys;
        for (double &y : ys) {
            if (!std::isfinite(y))
                y = std::nan("");
        }
        chart.addSeries(s.label, std::move(ys));
    }
    std::string out = chart.render();
    if (!note_.empty())
        out += "  note: " + note_ + "\n";
    return out;
}

} // namespace syncperf::core
