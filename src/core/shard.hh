/**
 * @file
 * Crash-tolerant multi-process campaign sharding.
 *
 * A sharded campaign (`campaign --shards N`) partitions the
 * enumerated sweep points deterministically across N worker
 * processes (`campaign --shard-worker k/N`) and supervises them:
 * per-shard heartbeat files plus a watchdog timeout detect hung
 * workers, crashed or timed-out shards are killed and respawned with
 * capped exponential backoff (the manifest journals guarantee
 * completed work is never redone), and after `max_retries` the
 * supervisor degrades gracefully -- the dead shard's leftover points
 * are reassigned across surviving shards and the campaign finishes,
 * with the degradation recorded in the metrics registry and the
 * optional shard report. docs/robustness.md has the failure model.
 *
 * The supervisor itself is campaign-agnostic: it runs an arbitrary
 * worker command per shard, which is what lets the unit tests drive
 * it with fake /bin/sh workers that crash, hang, or heartbeat on
 * cue.
 */

#ifndef SYNCPERF_CORE_SHARD_HH
#define SYNCPERF_CORE_SHARD_HH

#include <cstddef>
#include <filesystem>
#include <functional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hh"

namespace syncperf::core
{

/** Which shard a process is, out of how many ("k/N" on the CLI). */
struct ShardSpec
{
    int index = 0;
    int count = 1;

    std::string toString() const;
};

/** Parse "k/N" with 0 <= k < N; anything else is InvalidArgument. */
Result<ShardSpec> parseShardSpec(std::string_view text);

/**
 * Deterministic ownership rule shared by supervisor and workers:
 * enumeration-order point @p ordinal belongs to shard ordinal % N.
 * Round-robin keeps every shard's work interleaved across the sweep,
 * so a dead shard's leftovers spread evenly over the campaign.
 */
constexpr bool
shardOwnsOrdinal(const ShardSpec &spec, std::size_t ordinal)
{
    return spec.count <= 1 ||
           static_cast<int>(ordinal %
                            static_cast<std::size_t>(spec.count)) ==
               spec.index;
}

/** Backoff before respawn attempt @p attempt (1-based):
 * min(cap, base * 2^(attempt-1)). */
int shardBackoffMs(int attempt, int base_ms, int cap_ms);

// ----------------------------------------------------- heartbeats
//
// A worker rewrites its heartbeat file after every experiment
// commit; the file's mtime is the beat, its content a human-readable
// progress note. The supervisor touches the file at spawn so the
// watchdog baseline is "just started", then kills any shard whose
// beat goes stale.

/** results/.shards/shard-<k>.hb */
std::filesystem::path
shardHeartbeatPath(const std::filesystem::path &control_dir, int shard);

/** results/.shards/flight-<k>.ring — the worker's crash flight
 * recorder (common/flight_recorder.hh). */
std::filesystem::path
shardFlightRecorderPath(const std::filesystem::path &control_dir,
                        int shard);

/** results/.shards/postmortem.shard-<k>.json — rendered by the
 * supervisor from the flight ring when a shard dies. */
std::filesystem::path
shardPostmortemPath(const std::filesystem::path &control_dir,
                    int shard);

/** results/.shards/trace.shard-<k>.json — the worker's trace
 * export, stitched into the campaign trace by trace::stitch(). */
std::filesystem::path
shardTracePath(const std::filesystem::path &control_dir, int shard);

/** results/.shards/metrics.shard-<k>.json — the worker's metrics
 * snapshot, merged by CampaignMetrics::foldShardSnapshot(). */
std::filesystem::path
shardMetricsPath(const std::filesystem::path &control_dir, int shard);

/** The per-shard append-only commit log's file name,
 * "manifest.shard-<k>.jsonl" (lives in each system directory). */
std::string shardJournalName(int shard);

/** Rewrite @p file with @p note; the fresh mtime is the beat. */
void shardHeartbeat(const std::filesystem::path &file,
                    std::string_view note);

/** Seconds since the last beat; a large value when missing. */
double shardHeartbeatAge(const std::filesystem::path &file);

// ----------------------------------------------------- supervisor

struct ShardSupervisorOptions
{
    /** Watchdog: a running shard whose heartbeat is older than this
     * is presumed hung, SIGKILLed, and handled as a crash. */
    double heartbeat_timeout_s = 120.0;

    /** Respawns allowed per shard after abnormal death; beyond this
     * the shard is abandoned and its leftovers reassigned. */
    int max_retries = 2;

    /** Exponential backoff base/cap between respawns of a shard. */
    int backoff_base_ms = 250;
    int backoff_cap_ms = 4000;

    /** Supervisor poll cadence (reap, watchdog, spawn). */
    double poll_interval_s = 0.02;
};

/** One shard's liveness, published to the status-tick hook every
 * supervisor poll. */
struct ShardLiveStatus
{
    int index = 0;
    bool running = false;
    bool dead = false;
    int spawns = 0;
    int retries = 0;
    double heartbeat_age_s = 0.0;
};

/** Final per-shard account, for the report and the logs. */
struct ShardState
{
    int index = 0;
    int spawns = 0;       ///< processes forked for this shard
    int timeouts = 0;     ///< watchdog kills it absorbed
    bool dead = false;    ///< abandoned after max_retries
    int last_exit = -1;   ///< last wait status: exit code, or -signo
    std::vector<std::string> extra_points; ///< reassigned onto it
};

/** What supervising a campaign's shards produced. */
struct ShardSupervisorResult
{
    std::vector<ShardState> shards;
    int spawned = 0;            ///< total forks, respawns included
    int retries = 0;            ///< respawns after crash/timeout
    int timeouts = 0;           ///< watchdog kills
    int dead = 0;               ///< shards abandoned
    int points_reassigned = 0;  ///< points moved off dead shards
    bool journaled_failures = false; ///< some worker exited 1
    bool interrupted = false;   ///< stopped by the cancel hook
    /** Points no shard could finish (only non-empty when every shard
     * that could run them died); the caller salvages them inline. */
    std::vector<std::string> leftover;

    bool ok() const { return leftover.empty() && !interrupted; }
};

/**
 * Forks, watches, retries, and reassigns shard workers. One-shot:
 * construct, run(), read the result.
 */
class ShardSupervisor
{
  public:
    struct Config
    {
        ShardSupervisorOptions options;

        /**
         * Command prefix of one worker; the supervisor appends
         * "--shard-worker k/N" and, when the shard carries
         * reassigned points, "--shard-extra FILE". Must name an
         * executable reachable by execv (absolute path).
         */
        std::vector<std::string> worker_argv;

        /** Heartbeats, extra-point files, and worker logs live
         * here; created if missing. */
        std::filesystem::path control_dir;

        /** Per shard: the point keys it owns, in enumeration order.
         * assignment.size() is the shard count. */
        std::vector<std::vector<std::string>> assignment;

        /**
         * Snapshot of every point key with any journal record
         * (complete or failed), across all shards -- the merged
         * commit-log view. Consulted when computing a dead shard's
         * leftovers, so journaled work (even journaled failures) is
         * never handed to another shard.
         */
        std::function<std::vector<std::string>()> recordedKeys;

        /** Cooperative stop (SIGINT/SIGTERM forwarding); polled
         * every loop. May be null. */
        std::function<bool()> cancelled;

        /** Called once per poll loop with every shard's liveness;
         * the campaign's RunStatusReporter hangs off this. May be
         * null. */
        std::function<void(const std::vector<ShardLiveStatus> &)>
            status_tick;
    };

    explicit ShardSupervisor(Config config);
    ~ShardSupervisor();

    ShardSupervisor(const ShardSupervisor &) = delete;
    ShardSupervisor &operator=(const ShardSupervisor &) = delete;

    /** Supervise until every point is accounted for (or nothing can
     * make progress). Blocks; spawns and reaps child processes. */
    ShardSupervisorResult run();

  private:
    struct Worker;

    void spawn(Worker &w);
    bool reapOne();
    void watchdog();
    void handleExit(Worker &w, int wstatus);
    void handleCrash(Worker &w, bool timed_out);
    void renderPostmortem(const Worker &w);
    void markDead(Worker &w);
    void reassignFromDead(Worker &dead);
    void terminateAll();
    std::vector<std::string> unrecordedPointsOf(const Worker &w) const;

    Config config_;
    std::vector<Worker> workers_;
    std::set<std::string> reassigned_once_; ///< one reassignment per key
    std::vector<std::string> leftover_;     ///< points nobody could run
    int reassign_cursor_ = 0;               ///< round-robin target index
    int points_reassigned_ = 0;
};

} // namespace syncperf::core

#endif // SYNCPERF_CORE_SHARD_HH
