/**
 * @file
 * Implementation of the run-status reporter.
 */

#include "run_status.hh"

#include <cstdio>

#include "common/atomic_file.hh"
#include "common/fmt.hh"
#include "common/json.hh"
#include "common/metrics.hh"

namespace syncperf::core
{
namespace
{

double
ratio(long long num, long long den)
{
    return den > 0 ? static_cast<double>(num) /
                         static_cast<double>(den)
                   : 0.0;
}

} // namespace

double
RunStatus::simCacheHitRatio() const
{
    return ratio(sim_cache_hits, sim_cache_hits + sim_cache_misses);
}

double
RunStatus::poolWarmRatio() const
{
    return ratio(pool_clones, pool_clones + pool_cold_builds);
}

double
RunStatus::laneGroupedRatio() const
{
    return ratio(lane_points - lane_singleton_points, lane_points);
}

double
RunStatus::loopBatchWindowRatio() const
{
    return ratio(loop_batch_windows,
                 loop_batch_windows + loop_batch_fallbacks);
}

double
RunStatus::poolIdleFraction() const
{
    const double total = pool_busy_s + pool_idle_s;
    return total > 0 ? pool_idle_s / total : 0.0;
}

void
RunStatus::fillCountersFromRegistry()
{
    using metrics::Counter;
    sim_cache_hits = metrics::value(Counter::SimCacheHits);
    sim_cache_misses = metrics::value(Counter::SimCacheMisses);
    pool_clones = metrics::value(Counter::PoolClones);
    pool_cold_builds = metrics::value(Counter::PoolColdBuilds);
    lane_points = metrics::value(Counter::LanePoints);
    lane_singleton_points =
        metrics::value(Counter::LaneSingletonPoints);
    loop_batch_windows = metrics::value(Counter::LoopBatchWindows);
    loop_batch_fallbacks =
        metrics::value(Counter::LoopBatchFallbacks);
    pool_tasks_run = metrics::value(Counter::PoolTasksRun);
    pool_tasks_stolen = metrics::value(Counter::PoolTasksStolen);
    pool_busy_s =
        static_cast<double>(metrics::value(Counter::PoolBusyNanos)) /
        1e9;
    pool_idle_s =
        static_cast<double>(metrics::value(Counter::PoolIdleNanos)) /
        1e9;
}

std::string
RunStatus::toJson() const
{
    JsonValue root = JsonValue::object();
    root.set("schema", JsonValue("syncperf-status-v1"));
    root.set("state", JsonValue(state));

    JsonValue points = JsonValue::object();
    points.set("done",
               JsonValue(static_cast<double>(points_done)));
    points.set("total",
               JsonValue(static_cast<double>(points_total)));
    root.set("points", std::move(points));

    JsonValue rate = JsonValue::object();
    rate.set("elapsed_s", JsonValue(elapsed_s));
    rate.set("experiments_per_s", JsonValue(experiments_per_s));
    rate.set("eta_s", JsonValue(eta_s));
    root.set("rate", std::move(rate));

    JsonValue engagement = JsonValue::object();
    engagement.set("sim_cache_hit_ratio",
                   JsonValue(simCacheHitRatio()));
    engagement.set("pool_warm_ratio", JsonValue(poolWarmRatio()));
    engagement.set("lane_grouped_ratio",
                   JsonValue(laneGroupedRatio()));
    engagement.set("loop_batch_window_ratio",
                   JsonValue(loopBatchWindowRatio()));
    root.set("engagement", std::move(engagement));

    JsonValue pool = JsonValue::object();
    pool.set("tasks_run",
             JsonValue(static_cast<double>(pool_tasks_run)));
    pool.set("tasks_stolen",
             JsonValue(static_cast<double>(pool_tasks_stolen)));
    pool.set("busy_s", JsonValue(pool_busy_s));
    pool.set("idle_s", JsonValue(pool_idle_s));
    pool.set("idle_fraction", JsonValue(poolIdleFraction()));
    root.set("pool", std::move(pool));

    JsonValue shard_entries = JsonValue::array();
    for (const RunStatusShard &s : shards) {
        JsonValue entry = JsonValue::object();
        entry.set("shard", JsonValue(s.shard));
        entry.set("heartbeat_age_s", JsonValue(s.heartbeat_age_s));
        entry.set("respawns", JsonValue(s.respawns));
        entry.set("running", JsonValue(s.running));
        entry.set("dead", JsonValue(s.dead));
        shard_entries.push(std::move(entry));
    }
    root.set("shards", std::move(shard_entries));
    return root.dump(2) + "\n";
}

std::string
RunStatus::progressLine() const
{
    std::string line = format("[status] {}/{} points", points_done,
                              points_total);
    line += format(", {:.1f} exp/s", experiments_per_s);
    if (eta_s >= 0)
        line += format(", eta {:.0f}s", eta_s);
    if (!shards.empty()) {
        int alive = 0;
        for (const RunStatusShard &s : shards)
            alive += s.dead ? 0 : 1;
        line += format(", shards {}/{} alive", alive,
                       static_cast<int>(shards.size()));
    }
    if (state != "running")
        line += format(" ({})", state);
    return line;
}

RunStatusReporter::RunStatusReporter(std::filesystem::path file,
                                     double interval_s,
                                     bool progress)
    : file_(std::move(file)),
      interval_s_(interval_s > 0 ? interval_s : 1.0),
      progress_(progress),
      start_(std::chrono::steady_clock::now())
{
}

bool
RunStatusReporter::due() const
{
    if (!wrote_)
        return true;
    const auto elapsed =
        std::chrono::steady_clock::now() - last_write_;
    return std::chrono::duration<double>(elapsed).count() >=
           interval_s_;
}

double
RunStatusReporter::elapsedSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

void
RunStatusReporter::write(RunStatus &status)
{
    status.elapsed_s = elapsedSeconds();
    status.experiments_per_s =
        status.elapsed_s > 0
            ? static_cast<double>(status.points_done) /
                  status.elapsed_s
            : 0.0;
    status.eta_s =
        status.experiments_per_s > 0 &&
                status.points_total >= status.points_done
            ? static_cast<double>(status.points_total -
                                  status.points_done) /
                  status.experiments_per_s
            : -1.0;

    AtomicFile out;
    if (Status s = out.open(file_); s.isOk()) {
        out.stream() << status.toJson();
        (void)out.commit();
    }
    if (progress_)
        std::fprintf(stderr, "%s\n",
                     status.progressLine().c_str());
    last_write_ = std::chrono::steady_clock::now();
    wrote_ = true;
}

void
RunStatusReporter::tick(RunStatus &status)
{
    if (due())
        write(status);
}

void
RunStatusReporter::force(RunStatus &status)
{
    write(status);
}

} // namespace syncperf::core
