/**
 * @file
 * Implementation of the OpenMP-pragma measurement target.
 *
 * Each primitive's timed loop is instantiated as its own template so
 * the measured pragma sits alone in the loop body with no runtime
 * dispatch around it, mirroring the paper's per-test source files.
 */

#include "omp_pragma_target.hh"

#include <vector>

#include "common/logging.hh"
#include "threadlib/parallel_region.hh"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace syncperf::core
{

#ifndef _OPENMP

OmpPragmaTarget::OmpPragmaTarget(MeasurementConfig mcfg) : mcfg_(mcfg) {}

bool
OmpPragmaTarget::available()
{
    return false;
}

int
OmpPragmaTarget::maxThreads()
{
    return 1;
}

Measurement
OmpPragmaTarget::measure(const OmpExperiment &, int)
{
    fatal("this build has no OpenMP support; use NativeTarget or the "
          "CPU model instead");
}

#else  // _OPENMP

namespace
{

/** Shared state of one experiment, cache-line separated. */
template <typename T>
struct OmpState
{
    explicit OmpState(const OmpExperiment &exp, int n_threads)
        : stride(std::max(1, exp.stride)),
          array_a(static_cast<std::size_t>(n_threads) * stride + 1),
          array_b(array_a.size())
    {
    }

    alignas(64) T shared_var{};
    alignas(64) T shared_var2{};
    alignas(64) T critical_var{};
    int stride;
    std::vector<T> array_a;
    std::vector<T> array_b;
};

/** Defeats dead-code elimination. */
volatile double dce_sink = 0.0;

/**
 * One full timed execution (Listing 2): warmup, team barrier, timed
 * loop of the primitive, per-thread wall time.
 */
template <typename T, OmpPrimitive P>
std::vector<double>
timedRun(OmpState<T> &s, int n_threads, const MeasurementConfig &cfg,
         Affinity affinity, int copies)
{
    std::vector<double> seconds(n_threads, 0.0);
    const long iters = cfg.opsPerMeasurement();

#pragma omp parallel num_threads(n_threads)
    {
        const int tid = omp_get_thread_num();
        threadlib::bindThisThread(tid, n_threads, affinity);
        const std::size_t slot =
            static_cast<std::size_t>(tid) * s.stride;
        double sink = 0.0;

        auto body = [&](int c) {
            if constexpr (P == OmpPrimitive::Barrier) {
                (void)c;
#pragma omp barrier
                if (c > 1) {
#pragma omp barrier
                }
            } else if constexpr (P == OmpPrimitive::AtomicUpdate) {
                for (int i = 0; i < c; ++i) {
#pragma omp atomic update
                    s.shared_var += T{1};
                }
            } else if constexpr (P == OmpPrimitive::AtomicCapture) {
                for (int i = 0; i < c; ++i) {
                    T captured;
#pragma omp atomic capture
                    {
                        captured = s.shared_var;
                        s.shared_var += T{1};
                    }
                    sink += static_cast<double>(captured);
                }
            } else if constexpr (P == OmpPrimitive::AtomicRead) {
                if (c == 1) {
                    sink += static_cast<double>(
                        *const_cast<const volatile T *>(&s.shared_var));
                } else {
                    T value;
#pragma omp atomic read
                    value = s.shared_var;
                    sink += static_cast<double>(value);
                }
            } else if constexpr (P == OmpPrimitive::AtomicWrite) {
#pragma omp atomic write
                s.shared_var = T{2};
                if (c > 1) {
#pragma omp atomic write
                    s.shared_var2 = T{2};
                }
            } else if constexpr (P == OmpPrimitive::Critical) {
                for (int i = 0; i < c; ++i) {
#pragma omp critical(syncperf_cs)
                    {
                        s.critical_var += T{1};
                    }
                }
            } else if constexpr (P == OmpPrimitive::Flush) {
                s.array_a[slot] += T{1};
                if (c > 1) {
#pragma omp flush
                }
                s.array_b[slot] += T{1};
            }
        };

        for (int w = 0; w < cfg.n_warmup; ++w)
            body(copies);

#pragma omp barrier
        const double start = omp_get_wtime();
        for (long i = 0; i < iters; ++i)
            body(copies);
        const double stop = omp_get_wtime();

        seconds[tid] = stop - start;
        dce_sink = dce_sink + sink;
    }
    return seconds;
}

/** Array-targeted atomic update needs its own loop body. */
template <typename T>
std::vector<double>
timedRunArrayUpdate(OmpState<T> &s, int n_threads,
                    const MeasurementConfig &cfg, Affinity affinity,
                    int copies)
{
    std::vector<double> seconds(n_threads, 0.0);
    const long iters = cfg.opsPerMeasurement();

#pragma omp parallel num_threads(n_threads)
    {
        const int tid = omp_get_thread_num();
        threadlib::bindThisThread(tid, n_threads, affinity);
        T *element =
            &s.array_a[static_cast<std::size_t>(tid) * s.stride];

        auto body = [&](int c) {
            for (int i = 0; i < c; ++i) {
#pragma omp atomic update
                *element += T{1};
            }
        };

        for (int w = 0; w < cfg.n_warmup; ++w)
            body(copies);

#pragma omp barrier
        const double start = omp_get_wtime();
        for (long i = 0; i < iters; ++i)
            body(copies);
        const double stop = omp_get_wtime();
        seconds[tid] = stop - start;
    }
    return seconds;
}

template <typename T, OmpPrimitive P>
Measurement
measurePrim(const OmpExperiment &exp, int n_threads,
            const MeasurementConfig &cfg)
{
    OmpState<T> state(exp, n_threads);
    const bool array_update =
        P == OmpPrimitive::AtomicUpdate &&
        exp.location == Location::PrivateArray;
    auto run = [&](int copies) {
        if (array_update) {
            return timedRunArrayUpdate<T>(state, n_threads, cfg,
                                          exp.affinity, copies);
        }
        return timedRun<T, P>(state, n_threads, cfg, exp.affinity,
                              copies);
    };
    return measurePrimitive(
        [&](std::vector<double> &out) { out = run(1); },
        [&](std::vector<double> &out) { out = run(2); }, cfg);
}

template <typename T>
Measurement
measureTyped(const OmpExperiment &exp, int n_threads,
             const MeasurementConfig &cfg)
{
    switch (exp.primitive) {
      case OmpPrimitive::Barrier:
        return measurePrim<T, OmpPrimitive::Barrier>(exp, n_threads,
                                                     cfg);
      case OmpPrimitive::AtomicUpdate:
        return measurePrim<T, OmpPrimitive::AtomicUpdate>(exp, n_threads,
                                                          cfg);
      case OmpPrimitive::AtomicCapture:
        return measurePrim<T, OmpPrimitive::AtomicCapture>(
            exp, n_threads, cfg);
      case OmpPrimitive::AtomicRead:
        return measurePrim<T, OmpPrimitive::AtomicRead>(exp, n_threads,
                                                        cfg);
      case OmpPrimitive::AtomicWrite:
        return measurePrim<T, OmpPrimitive::AtomicWrite>(exp, n_threads,
                                                         cfg);
      case OmpPrimitive::Critical:
        return measurePrim<T, OmpPrimitive::Critical>(exp, n_threads,
                                                      cfg);
      case OmpPrimitive::Flush:
        return measurePrim<T, OmpPrimitive::Flush>(exp, n_threads, cfg);
    }
    panic("unhandled OpenMP primitive");
}

} // namespace

OmpPragmaTarget::OmpPragmaTarget(MeasurementConfig mcfg) : mcfg_(mcfg) {}

bool
OmpPragmaTarget::available()
{
    return true;
}

int
OmpPragmaTarget::maxThreads()
{
    return omp_get_max_threads();
}

Measurement
OmpPragmaTarget::measure(const OmpExperiment &exp, int n_threads)
{
    SYNCPERF_ASSERT(n_threads >= 1);
    switch (exp.dtype) {
      case DataType::Int32:
        return measureTyped<int>(exp, n_threads, mcfg_);
      case DataType::UInt64:
        return measureTyped<unsigned long long>(exp, n_threads, mcfg_);
      case DataType::Float32:
        return measureTyped<float>(exp, n_threads, mcfg_);
      case DataType::Float64:
        return measureTyped<double>(exp, n_threads, mcfg_);
    }
    panic("unhandled data type");
}

#endif // _OPENMP

} // namespace syncperf::core
