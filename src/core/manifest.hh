/**
 * @file
 * Per-system campaign journal backing checkpoint/resume.
 *
 * Each system's results directory carries a manifest.json that
 * records, for every experiment, whether it completed (with the hash
 * of the configuration that produced it) or failed (with the cause).
 * The manifest is rewritten atomically after every experiment, so a
 * campaign killed at any instant -- including kill -9 -- leaves a
 * consistent journal that a --resume run can trust. See
 * docs/robustness.md for the on-disk format.
 */

#ifndef SYNCPERF_CORE_MANIFEST_HH
#define SYNCPERF_CORE_MANIFEST_HH

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hh"

namespace syncperf::core
{

/**
 * FNV-1a accumulator over the fields that define an experiment; a
 * completed journal entry is only honored by --resume when its hash
 * matches, so changing any sweep or protocol knob reruns the point.
 */
class ConfigHasher
{
  public:
    ConfigHasher &add(std::uint64_t v);
    ConfigHasher &add(int v) { return add(static_cast<std::uint64_t>(
                                   static_cast<std::int64_t>(v))); }
    ConfigHasher &add(double v);
    ConfigHasher &add(std::string_view v);

    std::uint64_t digest() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/** One journaled experiment. */
struct ManifestEntry
{
    std::string key;                ///< CSV file name (unique per system)
    std::uint64_t config_hash = 0;  ///< ConfigHasher digest
    bool complete = false;          ///< completed vs failed
    std::string error;              ///< failure cause (failed only)
    int protocol_retries = 0;       ///< invalid-attempt retries, summed
    int noise_retries = 0;          ///< CoV-gate re-measures, summed
    double max_cov = 0.0;           ///< worst per-point CoV observed
};

/**
 * The journal for one system's campaign.
 *
 * Record/query/save are individually thread-safe (internally
 * locked), so a parallel campaign may consult the journal from any
 * thread. The campaign driver nevertheless funnels all mutation
 * through its ordered commit step, which is what keeps the entry
 * order -- and therefore the saved file -- byte-identical across
 * worker counts; the lock is the safety net, not the design.
 *
 * Two on-disk shapes share the ManifestEntry record:
 *  - manifest.json: the whole journal, rewritten atomically
 *    (save()/load()). Never torn, by construction.
 *  - manifest.shard-<k>.jsonl: an append-only commit log, one JSON
 *    record per line, written by shard worker processes
 *    (appendJournalRecord()/loadJournal()). A crash mid-append can
 *    leave a torn final line; loadJournal() tolerates it, skipping
 *    the tail with a warning and a journal_torn_tails count instead
 *    of failing the resume.
 */
class Manifest
{
  public:
    /** An empty journal that will save to @p file. */
    explicit Manifest(std::filesystem::path file);

    Manifest(Manifest &&other) noexcept;
    Manifest &operator=(Manifest &&other) noexcept;

    /**
     * Load an existing journal; a missing file yields an empty
     * journal (first run), a corrupt one a ParseError.
     */
    static Result<Manifest> load(const std::filesystem::path &file);

    /** True when @p key completed under the same configuration. */
    bool isComplete(std::string_view key, std::uint64_t hash) const;

    /** Journal a completed experiment (replacing any prior entry). */
    void recordComplete(ManifestEntry entry);

    /** Journal a failed experiment (replacing any prior entry). */
    void recordFailure(std::string_view key, std::uint64_t hash,
                       std::string_view error);

    /**
     * Merge one entry from another journal: a completed entry
     * replaces anything, a failed entry never displaces a completed
     * one (the work is done; a stale failure must not force a redo).
     */
    void absorb(ManifestEntry entry);

    /** Atomically rewrite the journal file. */
    Status save() const;

    /** One entry as a single-line JSON journal record (no newline). */
    static std::string journalLine(const ManifestEntry &entry);

    /**
     * Append @p entry to the JSONL commit log @p file (created on
     * first use) and flush. Appends from different shard processes
     * go to different files, so there is no cross-process contention.
     */
    static Status appendJournalRecord(const std::filesystem::path &file,
                                      const ManifestEntry &entry);

    /**
     * Read a JSONL commit log. A missing file is an empty log. An
     * unparsable final line is a torn tail from a crash mid-append:
     * it is skipped with a warning and a
     * metrics::Counter::JournalTornTails increment. Unparsable
     * earlier lines are skipped the same way (corruption never takes
     * down a resume), each with its own warning.
     */
    static Result<std::vector<ManifestEntry>>
    loadJournal(const std::filesystem::path &file);

    /** System name recorded in the journal header. */
    void setSystem(std::string_view name) { system_ = name; }
    const std::string &system() const { return system_; }

    /** Direct entry access; only safe while no other thread is
     * recording (e.g. after a campaign has finished). */
    const std::vector<ManifestEntry> &entries() const
    {
        return entries_;
    }

    int completeCount() const;
    int failedCount() const;

    const std::filesystem::path &file() const { return file_; }

  private:
    ManifestEntry *findEntry(std::string_view key);

    std::filesystem::path file_;
    std::string system_;
    std::vector<ManifestEntry> entries_;
    mutable std::mutex mutex_; ///< guards entries_ (see class comment)
};

} // namespace syncperf::core

#endif // SYNCPERF_CORE_MANIFEST_HH
