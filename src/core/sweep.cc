/**
 * @file
 * Implementation of sweep helpers.
 */

#include "sweep.hh"

#include <algorithm>
#include <unordered_map>

#include "common/logging.hh"

namespace syncperf::core
{

std::vector<LaneGroup>
planLaneGroups(const std::vector<std::uint64_t> &keys, int max_width)
{
    SYNCPERF_ASSERT(max_width >= 1);
    std::vector<LaneGroup> groups;
    // Open group per key; a full group is retired so later points
    // with the same key start a new one.
    std::unordered_map<std::uint64_t, std::size_t> open;
    for (std::size_t ordinal = 0; ordinal < keys.size(); ++ordinal) {
        const std::uint64_t key = keys[ordinal];
        const auto it = open.find(key);
        if (it != open.end() &&
            static_cast<int>(groups[it->second].ordinals.size()) <
                max_width) {
            groups[it->second].ordinals.push_back(ordinal);
            continue;
        }
        open[key] = groups.size();
        groups.push_back(LaneGroup{{ordinal}});
    }
    return groups;
}

std::vector<int>
ompThreadCounts(int max_hw_threads, int step)
{
    SYNCPERF_ASSERT(max_hw_threads >= 2 && step >= 1);
    std::vector<int> out;
    for (int t = 2; t <= max_hw_threads; t += step)
        out.push_back(t);
    if (out.back() != max_hw_threads)
        out.push_back(max_hw_threads);
    return out;
}

std::vector<int>
cudaThreadCounts(int max_threads_per_block)
{
    SYNCPERF_ASSERT(max_threads_per_block >= 2);
    std::vector<int> out;
    for (int t = 2; t <= max_threads_per_block; t *= 2)
        out.push_back(t);
    return out;
}

std::vector<int>
cudaBlockCounts(int sm_count)
{
    SYNCPERF_ASSERT(sm_count >= 1);
    std::vector<int> out{1, 2, sm_count / 2, sm_count, sm_count * 2};
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    out.erase(std::remove_if(out.begin(), out.end(),
                             [](int b) { return b < 1; }),
              out.end());
    return out;
}

} // namespace syncperf::core
