/**
 * @file
 * Implementation of the warm-start machine pool.
 */

#include "machine_pool.hh"

#include <filesystem>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "core/manifest.hh"
#include "sim/snapshot.hh"

namespace syncperf::core
{

MachinePool &
MachinePool::global()
{
    static MachinePool instance;
    return instance;
}

void
MachinePool::configure(Config cfg)
{
    std::lock_guard lock(mutex_);
    cfg_ = std::move(cfg);
}

MachinePool::Config
MachinePool::config() const
{
    std::lock_guard lock(mutex_);
    return cfg_;
}

bool
MachinePool::enabled() const
{
    std::lock_guard lock(mutex_);
    return cfg_.enabled;
}

void
MachinePool::reset()
{
    std::lock_guard lock(mutex_);
    cpu_slots_.clear();
    gpu_slots_.clear();
    cpu_claims_.clear();
    gpu_claims_.clear();
}

void
MachinePool::CpuLease::release()
{
    if (!machine_)
        return;
    if (pooled_)
        MachinePool::global().releaseCpu(key_, std::move(machine_));
    machine_.reset();
    pooled_ = false;
}

void
MachinePool::GpuLease::release()
{
    if (!machine_)
        return;
    if (pooled_)
        MachinePool::global().releaseGpu(key_, std::move(machine_));
    machine_.reset();
    pooled_ = false;
}

MachinePool::CpuLease
MachinePool::acquireCpu(const cpusim::CpuConfig &cfg, Affinity affinity,
                        bool use_pool)
{
    const std::uint64_t key = ConfigHasher{}
                                  .add(hashCpuConfig(cfg))
                                  .add(static_cast<int>(affinity))
                                  .digest();
    CpuLease lease;
    lease.key_ = key;
    std::lock_guard lock(mutex_);
    lease.pooled_ = use_pool && cfg_.enabled;
    if (lease.pooled_) {
        auto &slot = cpu_slots_[key];
        if (!slot.idle.empty()) {
            lease.machine_ = std::move(slot.idle.back());
            slot.idle.pop_back();
            // A lease always starts with no decoded images: what a
            // machine carries depends only on the experiment run on
            // it, never on which machine the pool happened to hand
            // out (the counters' --jobs invariance).
            lease.machine_->clearImages();
            return lease;
        }
    }
    lease.machine_ = std::make_unique<cpusim::CpuMachine>(cfg, affinity);
    if (lease.pooled_) {
        const auto it = cpu_slots_.find(key);
        if (it != cpu_slots_.end() && it->second.tmpl)
            lease.machine_->cloneFrom(*it->second.tmpl);
    }
    return lease;
}

MachinePool::GpuLease
MachinePool::acquireGpu(const gpusim::GpuConfig &cfg, bool use_pool)
{
    const std::uint64_t key = hashGpuConfig(cfg);
    GpuLease lease;
    lease.key_ = key;
    std::lock_guard lock(mutex_);
    lease.pooled_ = use_pool && cfg_.enabled;
    if (lease.pooled_) {
        auto &slot = gpu_slots_[key];
        if (!slot.idle.empty()) {
            lease.machine_ = std::move(slot.idle.back());
            slot.idle.pop_back();
            lease.machine_->clearImages();
            return lease;
        }
    }
    lease.machine_ = std::make_unique<gpusim::GpuMachine>(cfg);
    if (lease.pooled_) {
        const auto it = gpu_slots_.find(key);
        if (it != gpu_slots_.end() && it->second.tmpl)
            lease.machine_->cloneFrom(*it->second.tmpl);
    }
    return lease;
}

void
MachinePool::releaseCpu(std::uint64_t key,
                        std::unique_ptr<cpusim::CpuMachine> machine)
{
    machine->clearImages();
    std::lock_guard lock(mutex_);
    if (!cfg_.enabled)
        return; // pool disabled since the lease: just destroy
    auto &slot = cpu_slots_[key];
    if (!slot.tmpl)
        slot.tmpl = std::move(machine);
    else
        slot.idle.push_back(std::move(machine));
}

void
MachinePool::releaseGpu(std::uint64_t key,
                        std::unique_ptr<gpusim::GpuMachine> machine)
{
    machine->clearImages();
    std::lock_guard lock(mutex_);
    if (!cfg_.enabled)
        return;
    auto &slot = gpu_slots_[key];
    if (!slot.tmpl)
        slot.tmpl = std::move(machine);
    else
        slot.idle.push_back(std::move(machine));
}

namespace
{

/**
 * Try the on-disk snapshot for @p key, install into the machine via
 * @p install, and account loads/rejects. Returns true on success.
 */
template <typename InstallFn>
bool
loadSnapshot(const std::filesystem::path &path, sim::SnapshotKind kind,
             std::uint64_t key, InstallFn &&install)
{
    auto words = sim::readSnapshotFile(path, kind, key);
    if (words.isOk()) {
        if (install(words.value()).isOk()) {
            metrics::add(metrics::Counter::SnapshotLoads);
            return true;
        }
        metrics::add(metrics::Counter::SnapshotRejects);
        return false;
    }
    // A missing file is the normal first-writer case; anything else
    // (bad magic, version skew, checksum mismatch, truncation) is a
    // rejected image.
    if (words.status().code() != ErrorCode::IoError)
        metrics::add(metrics::Counter::SnapshotRejects);
    return false;
}

} // namespace

void
MachinePool::materializeCpu(
    cpusim::CpuMachine &machine, std::uint64_t key,
    const std::vector<cpusim::CpuProgram> &programs)
{
    std::string dir;
    bool claimant = false;
    {
        std::lock_guard lock(mutex_);
        dir = cfg_.snapshot_dir;
        // Only the first in-process toucher of a key does disk I/O,
        // so snapshot_loads counts unique keys with a valid
        // preexisting file -- a config-determined total.
        if (!dir.empty())
            claimant = cpu_claims_.insert(key).second;
    }
    std::filesystem::path path;
    if (claimant) {
        path = std::filesystem::path(dir) /
               sim::snapshotFileName(sim::SnapshotKind::CpuImage, key);
        if (loadSnapshot(path, sim::SnapshotKind::CpuImage, key,
                         [&](const std::vector<std::uint64_t> &words) {
                             return machine.installImage(key, words);
                         })) {
            return;
        }
    }
    machine.buildImage(key, programs);
    metrics::add(metrics::Counter::PoolColdBuilds);
    if (claimant) {
        std::vector<std::uint64_t> words;
        machine.encodeImage(key, words);
        const Status st = sim::writeSnapshotFile(
            path, sim::SnapshotKind::CpuImage, key, words);
        if (!st.isOk())
            warn("snapshot write failed: {}", st.message());
    }
}

void
MachinePool::materializeGpu(gpusim::GpuMachine &machine,
                            std::uint64_t key,
                            const gpusim::GpuKernel &kernel)
{
    std::string dir;
    bool claimant = false;
    {
        std::lock_guard lock(mutex_);
        dir = cfg_.snapshot_dir;
        if (!dir.empty())
            claimant = gpu_claims_.insert(key).second;
    }
    std::filesystem::path path;
    if (claimant) {
        path = std::filesystem::path(dir) /
               sim::snapshotFileName(sim::SnapshotKind::GpuImage, key);
        if (loadSnapshot(path, sim::SnapshotKind::GpuImage, key,
                         [&](const std::vector<std::uint64_t> &words) {
                             return machine.installImage(key, words);
                         })) {
            return;
        }
    }
    machine.buildImage(key, kernel);
    metrics::add(metrics::Counter::PoolColdBuilds);
    if (claimant) {
        std::vector<std::uint64_t> words;
        machine.encodeImage(key, words);
        const Status st = sim::writeSnapshotFile(
            path, sim::SnapshotKind::GpuImage, key, words);
        if (!st.isOk())
            warn("snapshot write failed: {}", st.message());
    }
}

std::uint64_t
MachinePool::hashCpuConfig(const cpusim::CpuConfig &cfg)
{
    // Every field: two configs that decode differently -- or time
    // differently at all -- must never share an image key.
    ConfigHasher h;
    h.add(cfg.name)
        .add(cfg.sockets)
        .add(cfg.cores_per_socket)
        .add(cfg.threads_per_core)
        .add(cfg.numa_nodes)
        .add(cfg.base_clock_ghz)
        .add(cfg.cores_per_complex)
        .add(cfg.cache_line_bytes)
        .add(cfg.l1_hit_latency)
        .add(cfg.local_transfer)
        .add(cfg.remote_transfer)
        .add(cfg.line_occupancy)
        .add(cfg.coherence_point_ii)
        .add(cfg.issue_cycles)
        .add(cfg.alu_int_rmw)
        .add(cfg.alu_fp_rmw)
        .add(cfg.plain_alu)
        .add(cfg.fence_drain)
        .add(cfg.barrier_base)
        .add(cfg.barrier_arrival)
        .add(cfg.barrier_spin_budget)
        .add(cfg.barrier_futex_wake)
        .add(cfg.barrier_wake_stagger)
        .add(static_cast<int>(cfg.barrier_algorithm))
        .add(cfg.barrier_tree_fanin)
        .add(cfg.barrier_tree_level)
        .add(cfg.barrier_dissem_round)
        .add(static_cast<int>(cfg.lock_algorithm))
        .add(cfg.lock_handoff)
        .add(cfg.lock_tas_retry)
        .add(cfg.lock_broadcast)
        .add(cfg.jitter_frac);
    return h.digest();
}

std::uint64_t
MachinePool::hashGpuConfig(const gpusim::GpuConfig &cfg)
{
    ConfigHasher h;
    h.add(cfg.name)
        .add(cfg.clock_ghz)
        .add(cfg.sm_count)
        .add(cfg.max_threads_per_sm)
        .add(cfg.cuda_cores_per_sm)
        .add(cfg.compute_capability)
        .add(cfg.max_threads_per_block)
        .add(cfg.max_blocks_per_sm)
        .add(cfg.warp_size)
        .add(cfg.schedulers_per_sm)
        .add(cfg.issue_ii)
        .add(cfg.alu_latency)
        .add(cfg.syncwarp_latency)
        .add(cfg.shfl_latency)
        .add(cfg.vote_latency)
        .add(cfg.reduce_latency)
        .add(cfg.reduce_occupancy)
        .add(cfg.syncthreads_base)
        .add(cfg.syncthreads_per_warp)
        .add(cfg.lsu_ii)
        .add(cfg.mem_rt)
        .add(cfg.mem_bytes_per_cycle)
        .add(cfg.atomic_rt)
        .add(cfg.ff_window)
        .add(static_cast<int>(cfg.enable_warp_aggregation))
        .add(cfg.addr_ii_int)
        .add(cfg.addr_ii_ull)
        .add(cfg.addr_ii_fp)
        .add(cfg.sm_atomic_depth)
        .add(cfg.l2_atomic_units)
        .add(cfg.unit_ii_int)
        .add(cfg.unit_ii_ull)
        .add(cfg.unit_ii_fp)
        .add(cfg.sm_gate_int)
        .add(cfg.sm_gate_ull)
        .add(cfg.sm_gate_fp)
        .add(cfg.cas_pipeline_lanes)
        .add(cfg.cas_group_ii)
        .add(cfg.fence_device)
        .add(cfg.fence_lsu_drain)
        .add(cfg.fence_block)
        .add(cfg.fence_system)
        .add(cfg.fence_system_jitter)
        .add(cfg.smem_addr_ii)
        .add(cfg.smem_ii)
        .add(cfg.smem_rt)
        .add(cfg.smem_ff_window)
        .add(cfg.grid_sync_base)
        .add(cfg.grid_sync_per_block)
        .add(cfg.block_launch_overhead);
    return h.digest();
}

} // namespace syncperf::core
