/**
 * @file
 * Descriptors for every synchronization primitive the paper
 * measures, with the parameters each experiment sweeps.
 */

#ifndef SYNCPERF_CORE_PRIMITIVES_HH
#define SYNCPERF_CORE_PRIMITIVES_HH

#include <string>
#include <string_view>

#include "common/dtype.hh"

namespace syncperf::core
{

/** OpenMP primitives (paper Section V-A). */
enum class OmpPrimitive
{
    Barrier,        ///< #pragma omp barrier
    AtomicUpdate,   ///< #pragma omp atomic update
    AtomicCapture,  ///< #pragma omp atomic capture
    AtomicRead,     ///< #pragma omp atomic read
    AtomicWrite,    ///< #pragma omp atomic write
    Critical,       ///< #pragma omp critical
    Flush,          ///< #pragma omp flush
};

/** CUDA primitives (paper Section V-B). */
enum class CudaPrimitive
{
    SyncThreads,        ///< __syncthreads()
    SyncWarp,           ///< __syncwarp()
    AtomicAdd,          ///< atomicAdd()
    AtomicCas,          ///< atomicCAS()
    AtomicExch,         ///< atomicExch()
    ThreadFence,        ///< __threadfence()
    ThreadFenceBlock,   ///< __threadfence_block()
    ThreadFenceSystem,  ///< __threadfence_system()
    ShflSync,           ///< __shfl_sync() and variants
    VoteSync,           ///< __any/__all/__ballot_sync()
};

/** Whether threads target one shared location or private elements. */
enum class Location
{
    SharedVariable,  ///< all threads hit one variable
    PrivateArray,    ///< thread i hits element i * stride
};

/** Full specification of one OpenMP experiment point. */
struct OmpExperiment
{
    OmpPrimitive primitive = OmpPrimitive::Barrier;
    DataType dtype = DataType::Int32;
    Location location = Location::SharedVariable;
    int stride = 1;  ///< elements between threads' private slots
    Affinity affinity = Affinity::System;
};

/** Full specification of one CUDA experiment point. */
struct CudaExperiment
{
    CudaPrimitive primitive = CudaPrimitive::SyncThreads;
    DataType dtype = DataType::Int32;
    Location location = Location::SharedVariable;
    int stride = 1;
};

/** Display name of an OpenMP primitive. */
constexpr std::string_view
ompPrimitiveName(OmpPrimitive p)
{
    switch (p) {
      case OmpPrimitive::Barrier: return "omp barrier";
      case OmpPrimitive::AtomicUpdate: return "omp atomic update";
      case OmpPrimitive::AtomicCapture: return "omp atomic capture";
      case OmpPrimitive::AtomicRead: return "omp atomic read";
      case OmpPrimitive::AtomicWrite: return "omp atomic write";
      case OmpPrimitive::Critical: return "omp critical";
      case OmpPrimitive::Flush: return "omp flush";
    }
    return "?";
}

/** Display name of a CUDA primitive. */
constexpr std::string_view
cudaPrimitiveName(CudaPrimitive p)
{
    switch (p) {
      case CudaPrimitive::SyncThreads: return "__syncthreads()";
      case CudaPrimitive::SyncWarp: return "__syncwarp()";
      case CudaPrimitive::AtomicAdd: return "atomicAdd()";
      case CudaPrimitive::AtomicCas: return "atomicCAS()";
      case CudaPrimitive::AtomicExch: return "atomicExch()";
      case CudaPrimitive::ThreadFence: return "__threadfence()";
      case CudaPrimitive::ThreadFenceBlock:
        return "__threadfence_block()";
      case CudaPrimitive::ThreadFenceSystem:
        return "__threadfence_system()";
      case CudaPrimitive::ShflSync: return "__shfl_sync()";
      case CudaPrimitive::VoteSync: return "__any_sync()";
    }
    return "?";
}

/** True for primitives that take no data type (pure syncs/fences). */
constexpr bool
cudaPrimitiveIsTypeless(CudaPrimitive p)
{
    switch (p) {
      case CudaPrimitive::SyncThreads:
      case CudaPrimitive::SyncWarp:
      case CudaPrimitive::ThreadFence:
      case CudaPrimitive::ThreadFenceBlock:
      case CudaPrimitive::ThreadFenceSystem:
      case CudaPrimitive::VoteSync:
        return true;
      default:
        return false;
    }
}

/** atomicCAS/atomicExch do not natively support floating point. */
constexpr bool
cudaPrimitiveSupports(CudaPrimitive p, DataType t)
{
    if (p == CudaPrimitive::AtomicCas || p == CudaPrimitive::AtomicExch)
        return isIntegerType(t);
    return true;
}

} // namespace syncperf::core

#endif // SYNCPERF_CORE_PRIMITIVES_HH
