/**
 * @file
 * Measurement-protocol parameters (Section IV of the paper).
 */

#ifndef SYNCPERF_CORE_MEASURE_CONFIG_HH
#define SYNCPERF_CORE_MEASURE_CONFIG_HH

namespace syncperf::core
{

/**
 * Knobs of the paper's measurement procedure. The paper's values
 * (paperDefaults) suit noisy physical hardware; the simulators are
 * deterministic (up to modeled jitter), so simDefaults uses fewer
 * repetitions and shorter loops to keep sweeps fast without changing
 * any shape.
 */
struct MeasurementConfig
{
    int runs = 9;          ///< independent runs; final value is their median
    int attempts = 7;      ///< valid (baseline, test) pairs per run
    int n_iter = 1000;     ///< timed outer-loop iterations
    int n_unroll = 100;    ///< unrolled inner-loop factor
    int n_warmup = 3;      ///< untimed warmup iterations
    int max_retries = 50;  ///< cap on invalid-measurement retries per run

    /**
     * Noise gate: when the coefficient of variation of the per-run
     * values (stddev / |median|) exceeds this, the whole measurement
     * is redone with doubled attempts (bounded exponential backoff),
     * up to max_noise_retries times. <= 0 disables the gate; it also
     * never applies to free primitives (|median| ~ 0), whose relative
     * noise is unbounded by construction.
     */
    double cov_gate = 0.0;

    /** Re-measurement cap for the noise gate. */
    int max_noise_retries = 3;

    /**
     * Memoize simulator results keyed by the exact simulated input
     * (program/kernel, placement, warmup). Only jitter-free
     * configurations are ever cached, so cached and re-simulated
     * results are bit-identical and this knob cannot change any
     * output -- it is deliberately left out of the campaign's
     * config hash. Disable to force every run through the machine
     * (--no-sim-cache; used by the determinism tests).
     */
    bool sim_cache = true;

    /**
     * Collect microarchitectural telemetry (core/telemetry.hh):
     * targets fold every launch's sim::StatSet into a per-point
     * TelemetrySample retrievable via takeTelemetry(). Recording in
     * the machines is always on (interned probes, O(1)); this knob
     * only controls the aggregation and artifact emission, never the
     * simulated timing, so it cannot change any measured value and
     * is -- like sim_cache -- left out of the campaign config hash.
     */
    bool telemetry = false;

    /**
     * Lease warmed machine instances from core::MachinePool and skip
     * re-decoding programs/kernels through its per-experiment decoded
     * images (docs/performance.md, "Warm-start machine pool"). The
     * fast path replays byte-for-byte what a cold decode would build,
     * so this knob cannot change any output and is -- like sim_cache
     * -- left out of the campaign's config hash. Disable to force
     * cold construction and decoding every time (--no-machine-pool;
     * used by the identity tests).
     */
    bool machine_pool = true;

    /**
     * Let the simulators advance proven-periodic steady-state loop
     * windows algebraically (docs/performance.md, "Loop batching").
     * Results are bit-identical either way -- the detector only
     * batches what it has proven periodic -- so this knob cannot
     * change any output and is, like sim_cache, left out of the
     * campaign's config hash. Disable to force single-stepping
     * (--no-loop-batch; used by the identity tests).
     */
    bool loop_batch = true;

    /** Total primitive executions the measured difference covers. */
    long opsPerMeasurement() const
    {
        return static_cast<long>(n_iter) * n_unroll;
    }

    /** The paper's configuration for physical hardware, plus the
     * noise gate at its hardware default (25% CoV). */
    static MeasurementConfig
    paperDefaults()
    {
        MeasurementConfig c;
        c.cov_gate = 0.25;
        return c;
    }

    /** Reduced repetition for the deterministic simulators. */
    static MeasurementConfig
    simDefaults()
    {
        MeasurementConfig c;
        c.runs = 3;
        c.attempts = 2;
        c.n_iter = 30;
        c.n_unroll = 5;
        c.n_warmup = 2;
        return c;
    }

    /** Even shorter loops for wide GPU sweeps (many resident warps). */
    static MeasurementConfig
    simGpuDefaults()
    {
        MeasurementConfig c;
        c.runs = 3;
        c.attempts = 2;
        c.n_iter = 20;
        c.n_unroll = 4;
        c.n_warmup = 2;
        return c;
    }
};

} // namespace syncperf::core

#endif // SYNCPERF_CORE_MEASURE_CONFIG_HH
