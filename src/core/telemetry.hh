/**
 * @file
 * Microarchitectural telemetry: per-experiment probe dumps that
 * explain the figure shapes.
 *
 * Every simulated launch leaves counters and tick histograms in its
 * machine's sim::StatSet (ping-pongs, acquisition waits, barrier
 * arrival spreads, ...). With MeasurementConfig::telemetry enabled,
 * the targets fold each launch's stats into a TelemetrySample; the
 * campaign collects one sample per sweep point and writes a
 * deterministic <experiment>.telemetry.json next to the CSV. The
 * --explain mode then renders the mechanism behind a figure (e.g.
 * the false-sharing knee is visible as cpu.line_ping_pong dropping
 * to zero at stride >= one cache line) as terminal charts.
 *
 * Determinism contract: samples accumulate in simulation order,
 * JSON objects are keyed through std::map (sorted), and files go
 * through AtomicFile -- the artifact tree is byte-identical at any
 * --jobs count. Samples ride inside the sim-result cache entries,
 * so a cache hit replays the exact telemetry of the original
 * simulation instead of silently dropping it.
 */

#ifndef SYNCPERF_CORE_TELEMETRY_HH
#define SYNCPERF_CORE_TELEMETRY_HH

#include <cstdint>
#include <filesystem>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.hh"
#include "common/json.hh"
#include "common/status.hh"
#include "core/sweep.hh"
#include "sim/loop_batch.hh"
#include "sim/stat.hh"

namespace syncperf::core
{

/**
 * Aggregated probe activity over any number of simulated launches
 * (all runs, attempts, and retries of one sweep point, both sides
 * of the measured (baseline, test) pair).
 */
struct TelemetrySample
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, Histogram> histograms;

    /** Fold one launch's stats in (nonzero counters, nonempty
     * histograms; zero activity leaves no key behind). */
    void addStats(const sim::StatSet &stats);

    /** Accumulate @p other into this sample. */
    void merge(const TelemetrySample &other);

    bool empty() const { return counters.empty() && histograms.empty(); }

    std::uint64_t counter(const std::string &name) const;

    /** {"counters": {...}, "histograms": {...}}, keys sorted. */
    JsonValue toJson() const;

    bool operator==(const TelemetrySample &other) const = default;
};

/** Telemetry of one sweep point of an experiment. */
struct TelemetryPoint
{
    /** Sweep coordinates in CSV column order, e.g. {"threads", 8} or
     * {"blocks", 2}, {"threads_per_block", 128}. */
    std::vector<std::pair<std::string, std::uint64_t>> axes;
    TelemetrySample sample;

    JsonValue toJson() const;
};

/** Everything recorded for one experiment (one CSV file). */
struct TelemetryReport
{
    std::string experiment; ///< CSV file name, e.g. "omp_barrier.csv"
    std::string system;     ///< sanitized system/device name
    std::vector<TelemetryPoint> points;

    JsonValue toJson() const;

    /** Pretty-print to @p path via AtomicFile (temp + rename). */
    Status writeFile(const std::filesystem::path &path) const;
};

/** Parse a telemetry artifact written by TelemetryReport::writeFile. */
Result<TelemetryReport> readTelemetryFile(
    const std::filesystem::path &path);

/** "<dir>/<stem>.telemetry.json" for experiment CSV @p csv_file. */
std::filesystem::path telemetryPathFor(
    const std::filesystem::path &dir, const std::string &csv_file);

/**
 * Render the --explain summaries for a campaign output directory:
 * scans every telemetry.json under each system subdirectory and
 * draws the probe charts
 * that explain the paper's figure shapes (false-sharing ping-pong
 * knee vs stride, exclusive-acquisition wait growth vs threads, GPU
 * atomic wait vs block size). Returns an error only when @p dir has
 * no telemetry at all.
 *
 * @param loop_batch Optional per-experiment loop-batching counters
 *        keyed by "<system-slug>/<csv-file>" (the measuring run's
 *        in-memory side channel, see CampaignResult::loop_batch).
 *        When present, each system section is followed by a batch
 *        ratio (batched_iters / total_iters) per experiment; pass
 *        nullptr when no measurements ran in this process
 *        (--explain-only) and the section says so instead.
 * @param lanes Optional per-system lane-grouping summaries keyed by
 *        system slug (CampaignResult::lanes, the measuring run's
 *        in-memory side channel). When present, each system section
 *        reports its grouping ratio (points per group) and peel
 *        rate; pass nullptr in --explain-only mode.
 */
Status explainCampaign(
    const std::filesystem::path &dir, std::ostream &out,
    const std::map<std::string, sim::LoopBatchCounters> *loop_batch =
        nullptr,
    const std::map<std::string, LaneSummary> *lanes = nullptr);

} // namespace syncperf::core

#endif // SYNCPERF_CORE_TELEMETRY_HH
