/**
 * @file
 * Live run-status surface: a machine-readable status.json rewritten
 * atomically on a debounce timer, plus a --progress stderr
 * one-liner rendered from the same struct.
 *
 * The schema is versioned ("syncperf-status-v1") because this file
 * is the future syncperfd daemon's /status endpoint body
 * (ROADMAP.md): points done/total, experiments/s, ETA, per-shard
 * heartbeat age and respawn counts, and the engagement ratios of
 * every fast path (sim cache, machine pool, lane grouping, loop
 * batching). See docs/observability.md, "Live run status".
 */

#ifndef SYNCPERF_CORE_RUN_STATUS_HH
#define SYNCPERF_CORE_RUN_STATUS_HH

#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "common/status.hh"

namespace syncperf::core
{

/** One shard worker's liveness as seen by the supervisor. */
struct RunStatusShard
{
    int shard = 0;
    double heartbeat_age_s = 0.0;
    /** Spawns beyond the first (the respawn count). */
    int respawns = 0;
    bool running = false;
    bool dead = false;
};

/** Everything status.json carries; fill and hand to a reporter. */
struct RunStatus
{
    /** "running", "finished", "degraded", or "interrupted". */
    std::string state = "running";

    long long points_done = 0;
    long long points_total = 0;

    /** Filled by the reporter at write time. */
    double elapsed_s = 0.0;
    double experiments_per_s = 0.0;
    double eta_s = -1.0; ///< -1 when no rate yet

    std::vector<RunStatusShard> shards;

    // Raw engagement inputs, summed over every participating
    // process (from the registry in-process; from the per-shard
    // metrics snapshots in a supervisor).
    long long sim_cache_hits = 0;
    long long sim_cache_misses = 0;
    long long pool_clones = 0;
    long long pool_cold_builds = 0;
    long long lane_points = 0;
    long long lane_singleton_points = 0;
    long long loop_batch_windows = 0;
    long long loop_batch_fallbacks = 0;

    long long pool_tasks_run = 0;
    long long pool_tasks_stolen = 0;
    double pool_busy_s = 0.0;
    double pool_idle_s = 0.0;

    /** Engagement ratios; 0 when the path never ran. */
    double simCacheHitRatio() const;
    double poolWarmRatio() const;
    double laneGroupedRatio() const;
    double loopBatchWindowRatio() const;
    double poolIdleFraction() const;

    /** Load the engagement inputs from this process's registry. */
    void fillCountersFromRegistry();

    /** The versioned JSON document (schema syncperf-status-v1). */
    std::string toJson() const;

    /** The --progress one-liner (no trailing newline). */
    std::string progressLine() const;
};

/**
 * Debounced, atomic status.json writer. Construct once at campaign
 * start; call tick() from any commit/poll hook (it rewrites the
 * file only when the debounce interval elapsed) and force() once at
 * the end with the final state.
 *
 * Not thread-safe: call from one thread (the ordered-commit thread
 * or the supervisor poll loop).
 */
class RunStatusReporter
{
  public:
    RunStatusReporter(std::filesystem::path file, double interval_s,
                      bool progress);

    /** True when the debounce interval has elapsed since the last
     * write (always true before the first). */
    bool due() const;

    /** Write if due; fills the rate fields of @p status. */
    void tick(RunStatus &status);

    /** Unconditional write (final state). */
    void force(RunStatus &status);

    double elapsedSeconds() const;

    const std::filesystem::path &file() const { return file_; }

  private:
    void write(RunStatus &status);

    std::filesystem::path file_;
    double interval_s_;
    bool progress_;
    std::chrono::steady_clock::time_point start_;
    std::chrono::steady_clock::time_point last_write_{};
    bool wrote_ = false;
};

} // namespace syncperf::core

#endif // SYNCPERF_CORE_RUN_STATUS_HH
