/**
 * @file
 * Implementation of the campaign journal.
 */

#include "manifest.hh"

#include <bit>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/metrics.hh"

namespace syncperf::core
{
namespace
{

namespace fs = std::filesystem;

constexpr int manifest_version = 1;

/** uint64 as a hex string: JSON numbers are doubles and cannot carry
 * 64 hash bits losslessly. */
std::string
hashToHex(std::uint64_t hash)
{
    char buf[19];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

std::uint64_t
hashFromHex(const std::string &text)
{
    return std::strtoull(text.c_str(), nullptr, 16);
}

/** Shared record shape of manifest.json entries and journal lines. */
JsonValue
entryToJson(const ManifestEntry &entry)
{
    JsonValue e = JsonValue::object();
    e.set("key", JsonValue(entry.key));
    e.set("hash", JsonValue(hashToHex(entry.config_hash)));
    e.set("status", JsonValue(entry.complete ? "complete" : "failed"));
    if (!entry.complete)
        e.set("error", JsonValue(entry.error));
    if (entry.protocol_retries > 0)
        e.set("protocol_retries", JsonValue(entry.protocol_retries));
    if (entry.noise_retries > 0)
        e.set("noise_retries", JsonValue(entry.noise_retries));
    if (entry.max_cov > 0.0)
        e.set("max_cov", JsonValue(entry.max_cov));
    return e;
}

/** Inverse of entryToJson; false when the record carries no key. */
bool
entryFromJson(const JsonValue &e, ManifestEntry &entry)
{
    if (!e.isObject())
        return false;
    entry.key = e.stringOr("key", "");
    if (entry.key.empty())
        return false;
    entry.config_hash = hashFromHex(e.stringOr("hash", "0x0"));
    entry.complete = e.stringOr("status", "") == "complete";
    entry.error = e.stringOr("error", "");
    entry.protocol_retries =
        static_cast<int>(e.numberOr("protocol_retries", 0));
    entry.noise_retries =
        static_cast<int>(e.numberOr("noise_retries", 0));
    entry.max_cov = e.numberOr("max_cov", 0.0);
    return true;
}

} // namespace

ConfigHasher &
ConfigHasher::add(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        hash_ ^= (v >> (i * 8)) & 0xFF;
        hash_ *= 0x100000001b3ULL;
    }
    return *this;
}

ConfigHasher &
ConfigHasher::add(double v)
{
    return add(std::bit_cast<std::uint64_t>(v));
}

ConfigHasher &
ConfigHasher::add(std::string_view v)
{
    for (char c : v) {
        hash_ ^= static_cast<unsigned char>(c);
        hash_ *= 0x100000001b3ULL;
    }
    // Separator so {"ab","c"} and {"a","bc"} hash differently.
    hash_ ^= 0xFF;
    hash_ *= 0x100000001b3ULL;
    return *this;
}

Manifest::Manifest(fs::path file) : file_(std::move(file)) {}

// Moves transfer the journal, not the lock: the source must be
// quiescent (they exist so Result<Manifest> and load() can hand a
// journal over, never to move one mid-campaign).
Manifest::Manifest(Manifest &&other) noexcept
    : file_(std::move(other.file_)), system_(std::move(other.system_)),
      entries_(std::move(other.entries_))
{
}

Manifest &
Manifest::operator=(Manifest &&other) noexcept
{
    if (this != &other) {
        file_ = std::move(other.file_);
        system_ = std::move(other.system_);
        entries_ = std::move(other.entries_);
    }
    return *this;
}

Result<Manifest>
Manifest::load(const fs::path &file)
{
    Manifest manifest(file);
    std::ifstream in(file);
    if (!in)
        return manifest; // first run: empty journal

    std::ostringstream text;
    text << in.rdbuf();
    auto doc = parseJson(text.str());
    if (!doc.isOk()) {
        return Status::error(ErrorCode::ParseError,
                             "corrupt manifest {}: {}", file.string(),
                             doc.status().message());
    }
    const JsonValue &root = doc.value();
    if (!root.isObject()) {
        return Status::error(ErrorCode::ParseError,
                             "corrupt manifest {}: not an object",
                             file.string());
    }
    manifest.system_ = root.stringOr("system", "");

    const JsonValue *experiments = root.find("experiments");
    if (experiments && experiments->isArray()) {
        for (const JsonValue &e : experiments->asArray()) {
            ManifestEntry entry;
            if (entryFromJson(e, entry))
                manifest.entries_.push_back(std::move(entry));
        }
    }
    return manifest;
}

ManifestEntry *
Manifest::findEntry(std::string_view key)
{
    for (auto &entry : entries_) {
        if (entry.key == key)
            return &entry;
    }
    return nullptr;
}

bool
Manifest::isComplete(std::string_view key, std::uint64_t hash) const
{
    std::scoped_lock lock(mutex_);
    for (const auto &entry : entries_) {
        if (entry.key == key)
            return entry.complete && entry.config_hash == hash;
    }
    return false;
}

void
Manifest::recordComplete(ManifestEntry entry)
{
    entry.complete = true;
    entry.error.clear();
    std::scoped_lock lock(mutex_);
    if (ManifestEntry *existing = findEntry(entry.key)) {
        *existing = std::move(entry);
    } else {
        entries_.push_back(std::move(entry));
    }
}

void
Manifest::recordFailure(std::string_view key, std::uint64_t hash,
                        std::string_view error)
{
    ManifestEntry entry;
    entry.key = key;
    entry.config_hash = hash;
    entry.complete = false;
    entry.error = error;
    std::scoped_lock lock(mutex_);
    if (ManifestEntry *existing = findEntry(entry.key)) {
        *existing = std::move(entry);
    } else {
        entries_.push_back(std::move(entry));
    }
}

void
Manifest::absorb(ManifestEntry entry)
{
    std::scoped_lock lock(mutex_);
    if (ManifestEntry *existing = findEntry(entry.key)) {
        if (existing->complete && !entry.complete)
            return; // completed work outranks a stale failure
        *existing = std::move(entry);
    } else {
        entries_.push_back(std::move(entry));
    }
}

std::string
Manifest::journalLine(const ManifestEntry &entry)
{
    return entryToJson(entry).dump(0);
}

Status
Manifest::appendJournalRecord(const fs::path &file,
                              const ManifestEntry &entry)
{
    std::ofstream out(file, std::ios::app);
    if (!out) {
        return Status::error(ErrorCode::IoError,
                             "cannot append to journal {}",
                             file.string());
    }
    out << journalLine(entry) << "\n";
    out.flush();
    if (!out) {
        return Status::error(ErrorCode::IoError,
                             "short write appending to journal {}",
                             file.string());
    }
    return Status::ok();
}

Result<std::vector<ManifestEntry>>
Manifest::loadJournal(const fs::path &file)
{
    std::vector<ManifestEntry> entries;
    std::ifstream in(file);
    if (!in)
        return entries; // no journal: empty commit log

    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        auto doc = parseJson(line);
        ManifestEntry entry;
        if (!doc.isOk() || !entryFromJson(doc.value(), entry)) {
            // A crash mid-append tears exactly the final line; skip
            // it (and any other unreadable record) rather than
            // discarding the good prefix of the commit log.
            warn("journal {}: skipping torn/unreadable record at "
                 "line {}",
                 file.string(), line_no);
            metrics::add(metrics::Counter::JournalTornTails);
            continue;
        }
        entries.push_back(std::move(entry));
    }
    return entries;
}

Status
Manifest::save() const
{
    std::scoped_lock lock(mutex_);
    JsonValue root = JsonValue::object();
    root.set("version", JsonValue(manifest_version));
    root.set("system", JsonValue(system_));
    JsonValue experiments = JsonValue::array();
    for (const auto &entry : entries_)
        experiments.push(entryToJson(entry));
    root.set("experiments", std::move(experiments));

    AtomicFile out;
    if (Status s = out.open(file_); !s.isOk())
        return s;
    out.stream() << root.dump(2) << "\n";
    return out.commit();
}

int
Manifest::completeCount() const
{
    std::scoped_lock lock(mutex_);
    int n = 0;
    for (const auto &entry : entries_)
        n += entry.complete ? 1 : 0;
    return n;
}

int
Manifest::failedCount() const
{
    std::scoped_lock lock(mutex_);
    int n = 0;
    for (const auto &entry : entries_)
        n += entry.complete ? 0 : 1;
    return n;
}

} // namespace syncperf::core
