/**
 * @file
 * Executable form of the paper's developer recommendations
 * (Sections V-A5 and V-B5): each rule inspects measured series and
 * reports whether the data supports the paper's advice.
 */

#ifndef SYNCPERF_CORE_RECOMMEND_HH
#define SYNCPERF_CORE_RECOMMEND_HH

#include <span>
#include <string>
#include <vector>

namespace syncperf::core
{

/** One evaluated recommendation. */
struct Finding
{
    std::string id;              ///< e.g. "omp-2"
    std::string recommendation;  ///< the paper's advice
    bool supported = false;      ///< measured data backs the advice
    std::string evidence;        ///< short numeric justification
};

/**
 * OpenMP rule 1: barriers stop getting more expensive per thread
 * beyond a modest team size (throughput plateaus), so they are not a
 * growing concern at large thread counts.
 *
 * @param threads Thread counts (ascending).
 * @param throughput Per-thread barrier throughput.
 */
Finding barrierPlateaus(std::span<const int> threads,
                        std::span<const double> throughput);

/**
 * OpenMP rule 2: atomics on one shared location collapse with the
 * thread count and should be avoided.
 */
Finding contendedAtomicsCollapse(std::span<const int> threads,
                                 std::span<const double> throughput);

/**
 * OpenMP rule 3: padding private slots past one cache line removes
 * false sharing.
 *
 * @param strides Element strides (ascending).
 * @param throughput Per-thread throughput at the machine's full
 *        physical core count for each stride.
 * @param elems_per_line Elements of this type per cache line.
 */
Finding paddingRemovesFalseSharing(std::span<const int> strides,
                                   std::span<const double> throughput,
                                   int elems_per_line);

/**
 * OpenMP rule 4: atomic reads are free.
 *
 * @param per_op_seconds Measured extra cost of an atomic read.
 * @param plain_op_seconds Cost scale of the surrounding code (used
 *        as the "negligible" yardstick).
 */
Finding atomicReadIsFree(double per_op_seconds, double plain_op_seconds);

/**
 * OpenMP rule 5: critical sections are strictly slower than the
 * equivalent atomic and should be a last resort.
 */
Finding criticalSlowerThanAtomic(std::span<const double> atomic_thr,
                                 std::span<const double> critical_thr);

/**
 * OpenMP rule 7: hyperthreading does not significantly slow down
 * synchronization (compare throughput just below and at/above the
 * physical-core boundary).
 */
Finding hyperthreadingIsFine(std::span<const int> threads,
                             std::span<const double> throughput,
                             int physical_cores);

/**
 * CUDA rule 1/2: __syncthreads throughput falls with the warp count
 * while __syncwarp stays constant until the SM is heavily loaded.
 */
Finding syncwarpFlatterThanSyncthreads(
    std::span<const double> syncthreads_thr,
    std::span<const double> syncwarp_thr);

/** CUDA rule 3: int atomics beat the other data types. */
Finding intAtomicsFastest(std::span<const double> int_thr,
                          std::span<const double> other_thr,
                          std::string other_label);

/** CUDA rule 6: thread fences cost the same regardless of scale. */
Finding fenceCostIsFlat(std::span<const double> throughput);

/**
 * CUDA rule 7: 64-bit shuffles hit the issue-bandwidth knee at half
 * the thread count of 32-bit shuffles.
 */
Finding wideShflKneesEarlier(std::span<const int> threads,
                             std::span<const double> thr32,
                             std::span<const double> thr64);

/** Render findings as a short report. */
std::string renderFindings(std::span<const Finding> findings);

} // namespace syncperf::core

#endif // SYNCPERF_CORE_RECOMMEND_HH
