/**
 * @file
 * Implementation of the cpusim measurement target.
 */

#include "cpusim_target.hh"

#include <limits>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "core/manifest.hh"
#include "sim/fault_injector.hh"

namespace syncperf::core
{
namespace
{

using cpusim::CpuOp;
using cpusim::CpuOpKind;
using cpusim::CpuProgram;

// Simulated address layout: well-separated variables and arrays.
constexpr std::uint64_t shared_var_addr = 0x1000;
constexpr std::uint64_t shared_var2_addr = 0x2000;  // second write target
constexpr std::uint64_t lock_addr = 0x3000;
constexpr std::uint64_t critical_data_addr = 0x4000;
constexpr std::uint64_t array_a_addr = 0x100000;
constexpr std::uint64_t array_b_addr = 0x200000;

CpuOp
op(CpuOpKind kind, std::uint64_t addr, DataType dtype)
{
    CpuOp o;
    o.kind = kind;
    o.addr = addr;
    o.dtype = dtype;
    return o;
}

/** Target address for a thread's private slot. */
std::uint64_t
slotAddr(std::uint64_t base, int tid, int stride, DataType dtype)
{
    return base + static_cast<std::uint64_t>(tid) * stride *
                      dataTypeSize(dtype);
}

/** One inner-loop iteration's ops for @p exp, with @p copies of the
 * measured primitive (1 = baseline, 2 = test). */
std::vector<CpuOp>
buildBody(const OmpExperiment &exp, int tid, int copies)
{
    const DataType t = exp.dtype;
    std::vector<CpuOp> body;

    const std::uint64_t target =
        exp.location == Location::SharedVariable
            ? shared_var_addr
            : slotAddr(array_a_addr, tid, exp.stride, t);

    switch (exp.primitive) {
      case OmpPrimitive::Barrier:
        for (int c = 0; c < copies; ++c)
            body.push_back(op(CpuOpKind::Barrier, 0, t));
        break;

      case OmpPrimitive::AtomicUpdate:
      case OmpPrimitive::AtomicCapture:
        // Capture additionally reads the old value into a register,
        // which costs nothing extra on the modeled CPUs (the paper
        // found capture and update indistinguishable).
        for (int c = 0; c < copies; ++c)
            body.push_back(op(CpuOpKind::AtomicRmw, target, t));
        break;

      case OmpPrimitive::AtomicRead:
        // Baseline: plain read. Test: the same read, atomically.
        body.push_back(op(copies == 1 ? CpuOpKind::Load
                                      : CpuOpKind::AtomicLoad,
                          target, t));
        break;

      case OmpPrimitive::AtomicWrite:
        // Baseline writes one shared location; the test writes a
        // second shared location on a separate cache line (Fig 4).
        body.push_back(op(CpuOpKind::AtomicStore, shared_var_addr, t));
        if (copies > 1)
            body.push_back(op(CpuOpKind::AtomicStore, shared_var2_addr, t));
        break;

      case OmpPrimitive::Critical:
        for (int c = 0; c < copies; ++c) {
            CpuOp acq = op(CpuOpKind::LockAcquire, lock_addr, t);
            acq.lock_id = 0;
            body.push_back(acq);
            body.push_back(op(CpuOpKind::Load, critical_data_addr, t));
            body.push_back(op(CpuOpKind::Alu, 0, t));
            body.push_back(op(CpuOpKind::Store, critical_data_addr, t));
            CpuOp rel = op(CpuOpKind::LockRelease, lock_addr, t);
            rel.lock_id = 0;
            body.push_back(rel);
        }
        break;

      case OmpPrimitive::Flush: {
        // Increment a private element of each of two arrays; the
        // test inserts the flush between the increments (Fig 6).
        const std::uint64_t a = slotAddr(array_a_addr, tid, exp.stride, t);
        const std::uint64_t b = slotAddr(array_b_addr, tid, exp.stride, t);
        body.push_back(op(CpuOpKind::Load, a, t));
        body.push_back(op(CpuOpKind::Alu, 0, t));
        body.push_back(op(CpuOpKind::Store, a, t));
        if (copies > 1)
            body.push_back(op(CpuOpKind::Fence, 0, t));
        body.push_back(op(CpuOpKind::Load, b, t));
        body.push_back(op(CpuOpKind::Alu, 0, t));
        body.push_back(op(CpuOpKind::Store, b, t));
        break;
      }
    }
    return body;
}

} // namespace

CpuSimTarget::CpuSimTarget(cpusim::CpuConfig cfg, MeasurementConfig mcfg,
                           std::uint64_t seed)
    : cfg_(std::move(cfg)), mcfg_(mcfg), next_seed_(seed)
{
}

OmpProgramPair
CpuSimTarget::buildPrograms(const OmpExperiment &exp, int n_threads,
                            long iterations)
{
    SYNCPERF_ASSERT(n_threads >= 1);
    OmpProgramPair pair;
    for (int tid = 0; tid < n_threads; ++tid) {
        CpuProgram base;
        base.body = buildBody(exp, tid, 1);
        base.iterations = iterations;
        pair.baseline.push_back(std::move(base));

        CpuProgram test;
        test.body = buildBody(exp, tid, 2);
        test.iterations = iterations;
        pair.test.push_back(std::move(test));
    }
    return pair;
}

cpusim::CpuMachine &
CpuSimTarget::machineFor(Affinity affinity)
{
    if (!lease_ || machine_affinity_ != affinity) {
        lease_ = MachinePool::global().acquireCpu(cfg_, affinity,
                                                  mcfg_.machine_pool);
        machine_affinity_ = affinity;
    }
    return *lease_;
}

std::uint64_t
CpuSimTarget::cacheKey(const std::vector<cpusim::CpuProgram> &programs,
                       Affinity affinity) const
{
    ConfigHasher h;
    h.add(static_cast<int>(affinity)).add(mcfg_.n_warmup);
    h.add(static_cast<std::uint64_t>(programs.size()));
    for (const auto &prog : programs) {
        h.add(static_cast<std::uint64_t>(prog.iterations));
        h.add(static_cast<std::uint64_t>(prog.body.size()));
        for (const auto &o : prog.body) {
            h.add(static_cast<int>(o.kind))
                .add(o.addr)
                .add(static_cast<int>(o.dtype))
                .add(o.lock_id);
        }
    }
    return h.digest();
}

std::uint64_t
CpuSimTarget::imageKey(
    const std::vector<cpusim::CpuProgram> &programs) const
{
    ConfigHasher h;
    h.add(MachinePool::hashCpuConfig(cfg_));
    h.add(static_cast<std::uint64_t>(programs.size()));
    for (const auto &prog : programs) {
        h.add(static_cast<std::uint64_t>(prog.body.size()));
        for (const auto &o : prog.body) {
            h.add(static_cast<int>(o.kind))
                .add(o.addr)
                .add(static_cast<int>(o.dtype))
                .add(o.lock_id);
        }
    }
    const std::uint64_t digest = h.digest();
    return digest == 0 ? 1 : digest;
}

std::uint64_t
CpuSimTarget::laneKey(const OmpExperiment &exp, int n_threads)
{
    SYNCPERF_ASSERT(mcfg_.machine_pool,
                    "lane keys require the machine-pool decode path");
    const auto pair =
        buildPrograms(exp, n_threads, mcfg_.opsPerMeasurement());
    cpusim::CpuMachine &machine = machineFor(exp.affinity);
    const auto fingerprint =
        [&](const std::vector<cpusim::CpuProgram> &programs) {
            const std::uint64_t dkey = imageKey(programs);
            if (!machine.hasImage(dkey)) {
                MachinePool::global().materializeCpu(machine, dkey,
                                                     programs);
            }
            return machine.imageFingerprint(dkey);
        };
    ConfigHasher h;
    h.add(static_cast<int>(exp.affinity))
        .add(fingerprint(pair.baseline))
        .add(fingerprint(pair.test));
    return h.digest();
}

void
CpuSimTarget::runOnce(const std::vector<cpusim::CpuProgram> &programs,
                      Affinity affinity, std::vector<double> &out)
{
    // The seed is consumed unconditionally so the stream of seeds --
    // and therefore any jittered launch that follows -- is identical
    // whether or not earlier launches hit the cache.
    const std::uint64_t seed = next_seed_++;

    // Only a jitter-free model is a pure function of its inputs;
    // with jitter_frac > 0 every launch draws from its own rng
    // stream and must be simulated.
    const bool cacheable = mcfg_.sim_cache && cfg_.jitter_frac == 0.0;

    std::uint64_t key = 0;
    bool hit = false;
    if (cacheable) {
        key = cacheKey(programs, affinity);
        if (auto it = cache_.find(key); it != cache_.end()) {
            out = it->second.seconds;
            // A hit replays the stored telemetry of the original
            // simulation, so the accumulated sample is identical
            // with and without the cache.
            if (mcfg_.telemetry)
                telemetry_.merge(it->second.telemetry);
            hit = true;
            metrics::add(metrics::Counter::SimCacheHits);
        }
    }
    if (!hit) {
        cpusim::CpuMachine &machine = machineFor(affinity);
        // Warm-start fast path: decode each distinct program pair
        // once per experiment into an image, then replay it (a pool
        // clone) for every later launch. The image restores exactly
        // what the decode would rebuild, so results are identical.
        std::uint64_t dkey = 0;
        if (mcfg_.machine_pool && MachinePool::global().enabled()) {
            dkey = imageKey(programs);
            if (machine.hasImage(dkey)) {
                metrics::add(metrics::Counter::PoolClones);
            } else {
                MachinePool::global().materializeCpu(machine, dkey,
                                                     programs);
            }
        }
        machine.reseed(seed);
        machine.setLoopBatch(mcfg_.loop_batch);
        const auto result = machine.run(programs, mcfg_.n_warmup, dkey);
        lb_.merge(machine.loopBatch());
        metrics::add(metrics::Counter::LoopBatchIters,
                     static_cast<long long>(
                         machine.loopBatch().batched_iters));
        metrics::add(metrics::Counter::LoopBatchWindows,
                     static_cast<long long>(machine.loopBatch().windows));
        metrics::add(metrics::Counter::LoopBatchFallbacks,
                     static_cast<long long>(
                         machine.loopBatch().fallbacks));
        const double hz = cfg_.base_clock_ghz * 1e9;
        out.clear();
        out.reserve(result.thread_cycles.size());
        for (auto cycles : result.thread_cycles)
            out.push_back(static_cast<double>(cycles) / hz);
        TelemetrySample launch;
        if (mcfg_.telemetry) {
            launch.addStats(machine.stats());
            telemetry_.merge(launch);
        }
        if (cacheable) {
            cache_.emplace(key,
                           CacheEntry{out, std::move(launch)});
            metrics::add(metrics::Counter::SimCacheMisses);
        }
    }
    // Faults perturb after the cache stage: cached entries hold pure
    // simulator output, and the injector's own rng advances once per
    // launch either way.
    if (auto *faults = sim::FaultInjector::active()) {
        if (faults->shouldPoisonMeasurement()) {
            out.assign(out.size(),
                       std::numeric_limits<double>::quiet_NaN());
        } else {
            for (double &s : out)
                s = faults->perturbSeconds(s);
        }
    }
}

TelemetrySample
CpuSimTarget::takeTelemetry()
{
    TelemetrySample taken = std::move(telemetry_);
    telemetry_ = TelemetrySample{};
    return taken;
}

Measurement
CpuSimTarget::measure(const OmpExperiment &exp, int n_threads)
{
    if (n_threads > cfg_.totalHwThreads()) {
        fatal("{} threads exceed {} hardware threads of {}", n_threads,
              cfg_.totalHwThreads(), cfg_.name);
    }
    const auto pair =
        buildPrograms(exp, n_threads, mcfg_.opsPerMeasurement());
    return measurePrimitive(
        [&](std::vector<double> &out) {
            runOnce(pair.baseline, exp.affinity, out);
        },
        [&](std::vector<double> &out) {
            runOnce(pair.test, exp.affinity, out);
        },
        mcfg_);
}

} // namespace syncperf::core
