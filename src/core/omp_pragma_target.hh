/**
 * @file
 * Measurement target using real OpenMP pragmas -- the paper's
 * original implementation path (Listing 2), verbatim: parallel
 * regions, "#pragma omp barrier/atomic/critical/flush".
 *
 * Built only when the toolchain provides OpenMP (_OPENMP); the
 * header is always available and reports availability at runtime so
 * callers can fall back to NativeTarget or the CPU model.
 */

#ifndef SYNCPERF_CORE_OMP_PRAGMA_TARGET_HH
#define SYNCPERF_CORE_OMP_PRAGMA_TARGET_HH

#include "core/measure_config.hh"
#include "core/primitives.hh"
#include "core/protocol.hh"

namespace syncperf::core
{

/** Measurement target backed by the system's OpenMP runtime. */
class OmpPragmaTarget
{
  public:
    explicit OmpPragmaTarget(MeasurementConfig mcfg);

    /** True when the library was built with OpenMP support. */
    static bool available();

    /**
     * Run the paper's protocol for one experiment point on
     * @p n_threads OpenMP threads. Fatal when !available().
     */
    Measurement measure(const OmpExperiment &exp, int n_threads);

    /** The OpenMP runtime's max thread count (1 when unavailable). */
    static int maxThreads();

  private:
    MeasurementConfig mcfg_;
};

} // namespace syncperf::core

#endif // SYNCPERF_CORE_OMP_PRAGMA_TARGET_HH
