/**
 * @file
 * Implementation of the native measurement target.
 *
 * Structure mirrors the paper's Listing 2: warmup iterations, a team
 * barrier, a timed loop of the primitive, per-thread timing.
 */

#include "native_target.hh"

#include <atomic>
#include <chrono>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "threadlib/atomics.hh"
#include "threadlib/barrier.hh"
#include "threadlib/locks.hh"
#include "threadlib/parallel_region.hh"

namespace syncperf::core
{
namespace
{

using Clock = std::chrono::steady_clock;

double
elapsedSeconds(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** Cache-line padded atomic slot for the private-array experiments. */
template <typename T>
struct alignas(64) PaddedAtomic
{
    std::atomic<T> value{};
};

/**
 * Run one timed execution. @p iteration is invoked
 * cfg.opsPerMeasurement() times per thread inside the timed region
 * and receives (tid, copies) with copies = 1 for the baseline call
 * and 2 for the test call.
 */
template <typename Body>
std::vector<double>
timedRegion(int n_threads, const MeasurementConfig &cfg, Affinity affinity,
            threadlib::Barrier &align, const Body &iteration, int copies)
{
    std::vector<double> seconds(n_threads, 0.0);
    const long iters = cfg.opsPerMeasurement();

    threadlib::parallelRegion(n_threads, [&](int tid) {
        for (int w = 0; w < cfg.n_warmup; ++w)
            iteration(tid, copies);

        align.arriveAndWait(tid);
        const auto start = Clock::now();
        for (long i = 0; i < iters; ++i)
            iteration(tid, copies);
        const auto stop = Clock::now();
        seconds[tid] = elapsedSeconds(start, stop);
    }, affinity);
    return seconds;
}

/** Typed state + iteration body for one experiment. */
template <typename T>
class TypedExperiment
{
  public:
    TypedExperiment(const OmpExperiment &exp, int n_threads)
        : exp_(exp), barrier_(n_threads),
          array_a_(static_cast<std::size_t>(n_threads) *
                   std::max(1, exp.stride)),
          array_b_(array_a_.size())
    {
    }

    void
    operator()(int tid, int copies) const
    {
        auto *self = const_cast<TypedExperiment *>(this);
        switch (exp_.primitive) {
          case OmpPrimitive::Barrier:
            for (int c = 0; c < copies; ++c)
                self->barrier_.arriveAndWait(tid);
            return;

          case OmpPrimitive::AtomicUpdate:
            for (int c = 0; c < copies; ++c)
                threadlib::atomicUpdate(self->target(tid), T{1});
            return;

          case OmpPrimitive::AtomicCapture:
            for (int c = 0; c < copies; ++c)
                sink_ += static_cast<double>(
                    threadlib::atomicCapture(self->target(tid), T{1}));
            return;

          case OmpPrimitive::AtomicRead:
            // Baseline: plain read; test: atomic read.
            if (copies == 1) {
                sink_ += static_cast<double>(
                    reinterpret_cast<const volatile T &>(
                        self->target(tid)));
            } else {
                sink_ += static_cast<double>(
                    threadlib::atomicRead(self->target(tid)));
            }
            return;

          case OmpPrimitive::AtomicWrite:
            threadlib::atomicWrite(self->shared_, T{2});
            if (copies > 1)
                threadlib::atomicWrite(self->shared2_, T{2});
            return;

          case OmpPrimitive::Critical:
            for (int c = 0; c < copies; ++c) {
                self->lock_.acquire();
                self->plain_ += T{1};
                self->lock_.release();
            }
            return;

          case OmpPrimitive::Flush: {
            auto &a = self->array_a_[slot(tid)].value;
            auto &b = self->array_b_[slot(tid)].value;
            a.store(a.load(std::memory_order_relaxed) + T{1},
                    std::memory_order_relaxed);
            if (copies > 1)
                threadlib::flush();
            b.store(b.load(std::memory_order_relaxed) + T{1},
                    std::memory_order_relaxed);
            return;
          }
        }
    }

  private:
    std::size_t
    slot(int tid) const
    {
        return static_cast<std::size_t>(tid) * std::max(1, exp_.stride);
    }

    std::atomic<T> &
    target(int tid)
    {
        return exp_.location == Location::SharedVariable
            ? shared_
            : array_a_[slot(tid)].value;
    }

    OmpExperiment exp_;
    threadlib::CentralBarrier barrier_;
    alignas(64) std::atomic<T> shared_{};
    alignas(64) std::atomic<T> shared2_{};
    alignas(64) T plain_{};
    threadlib::TtasLock lock_;
    std::vector<PaddedAtomic<T>> array_a_;
    std::vector<PaddedAtomic<T>> array_b_;

    /** Defeats dead-code elimination of reads. */
    static thread_local double sink_;
};

template <typename T>
thread_local double TypedExperiment<T>::sink_ = 0.0;

template <typename T>
Measurement
measureTyped(const OmpExperiment &exp, int n_threads,
             const MeasurementConfig &cfg)
{
    TypedExperiment<T> state(exp, n_threads);
    threadlib::CentralBarrier align(n_threads);
    return measurePrimitive(
        [&](std::vector<double> &out) {
            out = timedRegion(n_threads, cfg, exp.affinity, align, state,
                              1);
        },
        [&](std::vector<double> &out) {
            out = timedRegion(n_threads, cfg, exp.affinity, align, state,
                              2);
        },
        cfg);
}

} // namespace

NativeTarget::NativeTarget(MeasurementConfig mcfg) : mcfg_(mcfg) {}

Measurement
NativeTarget::measure(const OmpExperiment &exp, int n_threads)
{
    SYNCPERF_ASSERT(n_threads >= 1);
    switch (exp.dtype) {
      case DataType::Int32:
        return measureTyped<int>(exp, n_threads, mcfg_);
      case DataType::UInt64:
        return measureTyped<unsigned long long>(exp, n_threads, mcfg_);
      case DataType::Float32:
        return measureTyped<float>(exp, n_threads, mcfg_);
      case DataType::Float64:
        return measureTyped<double>(exp, n_threads, mcfg_);
    }
    panic("unhandled data type");
}

} // namespace syncperf::core
