/**
 * @file
 * Implementation of the gpusim measurement target.
 */

#include "gpusim_target.hh"

#include <limits>

#include "common/logging.hh"
#include "sim/fault_injector.hh"

namespace syncperf::core
{
namespace
{

using gpusim::AddressMode;
using gpusim::AtomicOp;
using gpusim::FenceScope;
using gpusim::GpuKernel;
using gpusim::GpuOp;

// Simulated address layout.
constexpr std::uint64_t shared_var_addr = 0x1000;
constexpr std::uint64_t array_a_addr = 0x1000000;
constexpr std::uint64_t array_b_addr = 0x2000000;

/** Body ops for @p exp with @p copies of the measured primitive. */
std::vector<GpuOp>
buildBody(const CudaExperiment &exp, int copies)
{
    const DataType t = exp.dtype;
    const AddressMode amode = exp.location == Location::SharedVariable
        ? AddressMode::SingleShared
        : AddressMode::PerThread;
    std::vector<GpuOp> body;

    switch (exp.primitive) {
      case CudaPrimitive::SyncThreads:
        for (int c = 0; c < copies; ++c)
            body.push_back(GpuOp::syncThreads());
        break;

      case CudaPrimitive::SyncWarp:
        for (int c = 0; c < copies; ++c)
            body.push_back(GpuOp::syncWarp());
        break;

      case CudaPrimitive::AtomicAdd:
        for (int c = 0; c < copies; ++c) {
            body.push_back(GpuOp::globalAtomic(
                AtomicOp::Add, amode,
                amode == AddressMode::SingleShared ? shared_var_addr
                                                   : array_a_addr,
                t, exp.stride));
        }
        break;

      case CudaPrimitive::AtomicCas:
        SYNCPERF_ASSERT(isIntegerType(t),
                        "atomicCAS has no floating-point flavor");
        for (int c = 0; c < copies; ++c) {
            body.push_back(GpuOp::globalAtomic(
                AtomicOp::Cas, amode,
                amode == AddressMode::SingleShared ? shared_var_addr
                                                   : array_a_addr,
                t, exp.stride));
        }
        break;

      case CudaPrimitive::AtomicExch:
        SYNCPERF_ASSERT(isIntegerType(t),
                        "atomicExch on int/ull only in these tests");
        for (int c = 0; c < copies; ++c) {
            body.push_back(GpuOp::globalAtomic(
                AtomicOp::Exch, amode,
                amode == AddressMode::SingleShared ? shared_var_addr
                                                   : array_a_addr,
                t, exp.stride));
        }
        break;

      case CudaPrimitive::ThreadFence:
      case CudaPrimitive::ThreadFenceBlock:
      case CudaPrimitive::ThreadFenceSystem: {
        // Update a private element in each of two arrays; the test
        // fences between the updates (same setup as the OpenMP
        // flush, Fig 14).
        const FenceScope scope =
            exp.primitive == CudaPrimitive::ThreadFence
                ? FenceScope::Device
                : exp.primitive == CudaPrimitive::ThreadFenceBlock
                      ? FenceScope::Block
                      : FenceScope::System;
        body.push_back(GpuOp::globalStore(array_a_addr, t, exp.stride));
        if (copies > 1)
            body.push_back(GpuOp::fence(scope));
        body.push_back(GpuOp::globalStore(array_b_addr, t, exp.stride));
        break;
      }

      case CudaPrimitive::ShflSync:
        for (int c = 0; c < copies; ++c)
            body.push_back(GpuOp::shfl(t));
        break;

      case CudaPrimitive::VoteSync:
        for (int c = 0; c < copies; ++c)
            body.push_back(GpuOp::vote());
        break;
    }
    return body;
}

} // namespace

GpuSimTarget::GpuSimTarget(gpusim::GpuConfig cfg, MeasurementConfig mcfg,
                           std::uint64_t seed)
    : cfg_(std::move(cfg)), mcfg_(mcfg), next_seed_(seed)
{
}

CudaKernelPair
GpuSimTarget::buildKernels(const CudaExperiment &exp, long body_iters)
{
    CudaKernelPair pair;
    pair.baseline.body = buildBody(exp, 1);
    pair.baseline.body_iters = body_iters;
    pair.test.body = buildBody(exp, 2);
    pair.test.body_iters = body_iters;
    return pair;
}

std::vector<int>
GpuSimTarget::paperBlockCounts() const
{
    return {1, 2, cfg_.sm_count / 2, cfg_.sm_count, cfg_.sm_count * 2};
}

std::vector<double>
GpuSimTarget::runOnce(const gpusim::GpuKernel &kernel,
                      gpusim::LaunchConfig launch)
{
    gpusim::GpuMachine machine(cfg_, next_seed_++);
    const auto result = machine.run(kernel, launch, mcfg_.n_warmup);
    const double hz = cfg_.clock_ghz * 1e9;
    std::vector<double> seconds;
    seconds.reserve(result.thread_cycles.size());
    for (auto cycles : result.thread_cycles)
        seconds.push_back(static_cast<double>(cycles) / hz);
    if (auto *faults = sim::FaultInjector::active()) {
        if (faults->shouldPoisonMeasurement()) {
            seconds.assign(seconds.size(),
                           std::numeric_limits<double>::quiet_NaN());
        } else {
            for (double &s : seconds)
                s = faults->perturbSeconds(s);
        }
    }
    return seconds;
}

Measurement
GpuSimTarget::measure(const CudaExperiment &exp,
                      gpusim::LaunchConfig launch)
{
    SYNCPERF_ASSERT(cudaPrimitiveIsTypeless(exp.primitive) ||
                    cudaPrimitiveSupports(exp.primitive, exp.dtype));
    const auto pair = buildKernels(exp, mcfg_.opsPerMeasurement());
    return measurePrimitive(
        [&] { return runOnce(pair.baseline, launch); },
        [&] { return runOnce(pair.test, launch); }, mcfg_);
}

} // namespace syncperf::core
