/**
 * @file
 * Implementation of the gpusim measurement target.
 */

#include "gpusim_target.hh"

#include <limits>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "core/manifest.hh"
#include "sim/fault_injector.hh"

namespace syncperf::core
{
namespace
{

using gpusim::AddressMode;
using gpusim::AtomicOp;
using gpusim::FenceScope;
using gpusim::GpuKernel;
using gpusim::GpuOp;

// Simulated address layout.
constexpr std::uint64_t shared_var_addr = 0x1000;
constexpr std::uint64_t array_a_addr = 0x1000000;
constexpr std::uint64_t array_b_addr = 0x2000000;

/** Body ops for @p exp with @p copies of the measured primitive. */
std::vector<GpuOp>
buildBody(const CudaExperiment &exp, int copies)
{
    const DataType t = exp.dtype;
    const AddressMode amode = exp.location == Location::SharedVariable
        ? AddressMode::SingleShared
        : AddressMode::PerThread;
    std::vector<GpuOp> body;

    switch (exp.primitive) {
      case CudaPrimitive::SyncThreads:
        for (int c = 0; c < copies; ++c)
            body.push_back(GpuOp::syncThreads());
        break;

      case CudaPrimitive::SyncWarp:
        for (int c = 0; c < copies; ++c)
            body.push_back(GpuOp::syncWarp());
        break;

      case CudaPrimitive::AtomicAdd:
        for (int c = 0; c < copies; ++c) {
            body.push_back(GpuOp::globalAtomic(
                AtomicOp::Add, amode,
                amode == AddressMode::SingleShared ? shared_var_addr
                                                   : array_a_addr,
                t, exp.stride));
        }
        break;

      case CudaPrimitive::AtomicCas:
        SYNCPERF_ASSERT(isIntegerType(t),
                        "atomicCAS has no floating-point flavor");
        for (int c = 0; c < copies; ++c) {
            body.push_back(GpuOp::globalAtomic(
                AtomicOp::Cas, amode,
                amode == AddressMode::SingleShared ? shared_var_addr
                                                   : array_a_addr,
                t, exp.stride));
        }
        break;

      case CudaPrimitive::AtomicExch:
        SYNCPERF_ASSERT(isIntegerType(t),
                        "atomicExch on int/ull only in these tests");
        for (int c = 0; c < copies; ++c) {
            body.push_back(GpuOp::globalAtomic(
                AtomicOp::Exch, amode,
                amode == AddressMode::SingleShared ? shared_var_addr
                                                   : array_a_addr,
                t, exp.stride));
        }
        break;

      case CudaPrimitive::ThreadFence:
      case CudaPrimitive::ThreadFenceBlock:
      case CudaPrimitive::ThreadFenceSystem: {
        // Update a private element in each of two arrays; the test
        // fences between the updates (same setup as the OpenMP
        // flush, Fig 14).
        const FenceScope scope =
            exp.primitive == CudaPrimitive::ThreadFence
                ? FenceScope::Device
                : exp.primitive == CudaPrimitive::ThreadFenceBlock
                      ? FenceScope::Block
                      : FenceScope::System;
        body.push_back(GpuOp::globalStore(array_a_addr, t, exp.stride));
        if (copies > 1)
            body.push_back(GpuOp::fence(scope));
        body.push_back(GpuOp::globalStore(array_b_addr, t, exp.stride));
        break;
      }

      case CudaPrimitive::ShflSync:
        for (int c = 0; c < copies; ++c)
            body.push_back(GpuOp::shfl(t));
        break;

      case CudaPrimitive::VoteSync:
        for (int c = 0; c < copies; ++c)
            body.push_back(GpuOp::vote());
        break;
    }
    return body;
}

/** True when any op of @p ops is a system-scope fence (the one GPU
 * op that draws per-launch jitter). */
bool
hasSystemFence(const std::vector<GpuOp> &ops)
{
    for (const auto &o : ops) {
        if (o.kind == gpusim::GpuOpKind::Fence &&
            o.scope == FenceScope::System) {
            return true;
        }
    }
    return false;
}

/** Fold one op sequence into @p h, delimited by its length. */
void
hashOps(ConfigHasher &h, const std::vector<GpuOp> &ops)
{
    h.add(static_cast<std::uint64_t>(ops.size()));
    for (const auto &o : ops) {
        h.add(static_cast<int>(o.kind))
            .add(static_cast<int>(o.aop))
            .add(static_cast<int>(o.dtype))
            .add(static_cast<int>(o.amode))
            .add(static_cast<int>(o.scope))
            .add(static_cast<int>(o.pred))
            .add(o.stride)
            .add(o.base_addr)
            .add(o.repeat)
            .add(o.diverge_paths);
    }
}

} // namespace

GpuSimTarget::GpuSimTarget(gpusim::GpuConfig cfg, MeasurementConfig mcfg,
                           std::uint64_t seed)
    : cfg_(std::move(cfg)), mcfg_(mcfg), next_seed_(seed),
      lease_(MachinePool::global().acquireGpu(cfg_, mcfg.machine_pool))
{
}

CudaKernelPair
GpuSimTarget::buildKernels(const CudaExperiment &exp, long body_iters)
{
    CudaKernelPair pair;
    pair.baseline.body = buildBody(exp, 1);
    pair.baseline.body_iters = body_iters;
    pair.test.body = buildBody(exp, 2);
    pair.test.body_iters = body_iters;
    return pair;
}

std::vector<int>
GpuSimTarget::paperBlockCounts() const
{
    return {1, 2, cfg_.sm_count / 2, cfg_.sm_count, cfg_.sm_count * 2};
}

std::uint64_t
GpuSimTarget::cacheKey(const gpusim::GpuKernel &kernel,
                       gpusim::LaunchConfig launch) const
{
    ConfigHasher h;
    h.add(launch.blocks)
        .add(launch.threads_per_block)
        .add(mcfg_.n_warmup)
        .add(static_cast<std::uint64_t>(kernel.body_iters));
    hashOps(h, kernel.prologue);
    hashOps(h, kernel.body);
    hashOps(h, kernel.epilogue);
    return h.digest();
}

std::uint64_t
GpuSimTarget::imageKey(const gpusim::GpuKernel &kernel) const
{
    ConfigHasher h;
    h.add(MachinePool::hashGpuConfig(cfg_));
    hashOps(h, kernel.prologue);
    hashOps(h, kernel.body);
    hashOps(h, kernel.epilogue);
    const std::uint64_t digest = h.digest();
    return digest == 0 ? 1 : digest;
}

std::uint64_t
GpuSimTarget::laneKey(const CudaExperiment &exp)
{
    SYNCPERF_ASSERT(mcfg_.machine_pool,
                    "lane keys require the machine-pool decode path");
    const auto pair = buildKernels(exp, mcfg_.opsPerMeasurement());
    const auto fingerprint = [&](const gpusim::GpuKernel &kernel) {
        const std::uint64_t dkey = imageKey(kernel);
        if (!lease_->hasImage(dkey)) {
            MachinePool::global().materializeGpu(*lease_, dkey,
                                                 kernel);
        }
        return lease_->imageFingerprint(dkey);
    };
    ConfigHasher h;
    h.add(fingerprint(pair.baseline)).add(fingerprint(pair.test));
    return h.digest();
}

void
GpuSimTarget::runOnce(const gpusim::GpuKernel &kernel,
                      gpusim::LaunchConfig launch,
                      std::vector<double> &out)
{
    // The seed is consumed unconditionally so the stream of seeds --
    // and therefore any jittered launch that follows -- is identical
    // whether or not earlier launches hit the cache.
    const std::uint64_t seed = next_seed_++;

    // A system-scope fence draws per-launch PCIe jitter from the rng
    // stream; every other kernel is a pure function of its inputs.
    const bool cacheable = mcfg_.sim_cache &&
                           !hasSystemFence(kernel.prologue) &&
                           !hasSystemFence(kernel.body) &&
                           !hasSystemFence(kernel.epilogue);

    std::uint64_t key = 0;
    bool hit = false;
    if (cacheable) {
        key = cacheKey(kernel, launch);
        if (auto it = cache_.find(key); it != cache_.end()) {
            out = it->second.seconds;
            // A hit replays the stored telemetry of the original
            // simulation, so the accumulated sample is identical
            // with and without the cache.
            if (mcfg_.telemetry)
                telemetry_.merge(it->second.telemetry);
            hit = true;
            metrics::add(metrics::Counter::SimCacheHits);
        }
    }
    if (!hit) {
        gpusim::GpuMachine &machine = *lease_;
        // Warm-start fast path: decode each distinct kernel once per
        // experiment into an image, then replay it (a pool clone)
        // for every later launch -- including every launch-geometry
        // point, since decoding is geometry-independent.
        std::uint64_t dkey = 0;
        if (mcfg_.machine_pool && MachinePool::global().enabled()) {
            dkey = imageKey(kernel);
            if (machine.hasImage(dkey)) {
                metrics::add(metrics::Counter::PoolClones);
            } else {
                MachinePool::global().materializeGpu(machine, dkey,
                                                     kernel);
            }
        }
        machine.reseed(seed);
        machine.setLoopBatch(mcfg_.loop_batch);
        const auto result =
            machine.run(kernel, launch, mcfg_.n_warmup, dkey);
        lb_.merge(machine.loopBatch());
        metrics::add(metrics::Counter::LoopBatchIters,
                     static_cast<long long>(
                         machine.loopBatch().batched_iters));
        metrics::add(metrics::Counter::LoopBatchWindows,
                     static_cast<long long>(machine.loopBatch().windows));
        metrics::add(metrics::Counter::LoopBatchFallbacks,
                     static_cast<long long>(
                         machine.loopBatch().fallbacks));
        const double hz = cfg_.clock_ghz * 1e9;
        out.clear();
        out.reserve(result.thread_cycles.size());
        for (auto cycles : result.thread_cycles)
            out.push_back(static_cast<double>(cycles) / hz);
        TelemetrySample launch_sample;
        if (mcfg_.telemetry) {
            launch_sample.addStats(machine.stats());
            telemetry_.merge(launch_sample);
        }
        if (cacheable) {
            cache_.emplace(key,
                           CacheEntry{out, std::move(launch_sample)});
            metrics::add(metrics::Counter::SimCacheMisses);
        }
    }
    // Faults perturb after the cache stage: cached entries hold pure
    // simulator output, and the injector's own rng advances once per
    // launch either way.
    if (auto *faults = sim::FaultInjector::active()) {
        if (faults->shouldPoisonMeasurement()) {
            out.assign(out.size(),
                       std::numeric_limits<double>::quiet_NaN());
        } else {
            for (double &s : out)
                s = faults->perturbSeconds(s);
        }
    }
}

TelemetrySample
GpuSimTarget::takeTelemetry()
{
    TelemetrySample taken = std::move(telemetry_);
    telemetry_ = TelemetrySample{};
    return taken;
}

Measurement
GpuSimTarget::measure(const CudaExperiment &exp,
                      gpusim::LaunchConfig launch)
{
    SYNCPERF_ASSERT(cudaPrimitiveIsTypeless(exp.primitive) ||
                    cudaPrimitiveSupports(exp.primitive, exp.dtype));
    const auto pair = buildKernels(exp, mcfg_.opsPerMeasurement());
    return measurePrimitive(
        [&](std::vector<double> &out) {
            runOnce(pair.baseline, launch, out);
        },
        [&](std::vector<double> &out) { runOnce(pair.test, launch, out); },
        mcfg_);
}

} // namespace syncperf::core
