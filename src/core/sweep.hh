/**
 * @file
 * Parameter-sweep helpers matching the paper's experimental
 * methodology (Section IV).
 */

#ifndef SYNCPERF_CORE_SWEEP_HH
#define SYNCPERF_CORE_SWEEP_HH

#include <vector>

namespace syncperf::core
{

/**
 * OpenMP thread counts: 2 up to the machine's hardware-thread
 * maximum (the paper omits 1 since synchronization is pointless
 * serially).
 *
 * @param max_hw_threads Total hardware threads of the machine.
 * @param step Stride through the range (1 reproduces the paper;
 *        larger steps speed up smoke runs).
 */
std::vector<int> ompThreadCounts(int max_hw_threads, int step = 1);

/** CUDA thread-per-block counts: powers of two, 2..1024. */
std::vector<int> cudaThreadCounts(int max_threads_per_block = 1024);

/** CUDA block counts: 1, 2, SMs/2, SMs, 2*SMs (deduplicated). */
std::vector<int> cudaBlockCounts(int sm_count);

} // namespace syncperf::core

#endif // SYNCPERF_CORE_SWEEP_HH
