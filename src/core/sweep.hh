/**
 * @file
 * Parameter-sweep helpers matching the paper's experimental
 * methodology (Section IV).
 */

#ifndef SYNCPERF_CORE_SWEEP_HH
#define SYNCPERF_CORE_SWEEP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace syncperf::core
{

/**
 * One lane group of a lane-batched sweep: the enumeration ordinals
 * of the points it spans (ascending; the first is the reference
 * lane). See docs/performance.md, "Lane-batched sweeps".
 */
struct LaneGroup
{
    std::vector<std::size_t> ordinals;
};

/** Lane-grouping activity of one campaign (one system). */
struct LaneSummary
{
    long long points = 0;     ///< points routed through the planner
    long long groups = 0;     ///< groups formed (incl. singletons)
    long long singletons = 0; ///< points left in width-1 groups
    long long peels = 0;      ///< lanes peeled at runtime

    bool planned() const { return points > 0; }

    void
    merge(const LaneSummary &other)
    {
        points += other.points;
        groups += other.groups;
        singletons += other.singletons;
        peels += other.peels;
    }
};

/**
 * Bucket sweep points by lane key. @p keys holds one grouping key
 * per enumerated point (in enumeration order); points with equal
 * keys land in the same group until it reaches @p max_width lanes,
 * then a fresh group opens. Groups are ordered by their first
 * ordinal and members keep enumeration order, so the plan -- like
 * everything downstream of it -- is a pure function of the
 * enumerated sweep.
 */
std::vector<LaneGroup>
planLaneGroups(const std::vector<std::uint64_t> &keys, int max_width);

/**
 * OpenMP thread counts: 2 up to the machine's hardware-thread
 * maximum (the paper omits 1 since synchronization is pointless
 * serially).
 *
 * @param max_hw_threads Total hardware threads of the machine.
 * @param step Stride through the range (1 reproduces the paper;
 *        larger steps speed up smoke runs).
 */
std::vector<int> ompThreadCounts(int max_hw_threads, int step = 1);

/** CUDA thread-per-block counts: powers of two, 2..1024. */
std::vector<int> cudaThreadCounts(int max_threads_per_block = 1024);

/** CUDA block counts: 1, 2, SMs/2, SMs, 2*SMs (deduplicated). */
std::vector<int> cudaBlockCounts(int sm_count);

} // namespace syncperf::core

#endif // SYNCPERF_CORE_SWEEP_HH
