/**
 * @file
 * Figure assembly: collects the series of one paper figure and emits
 * them as CSV rows plus a terminal chart.
 */

#ifndef SYNCPERF_CORE_FIGURE_HH
#define SYNCPERF_CORE_FIGURE_HH

#include <ostream>
#include <string>
#include <vector>

#include "common/ascii_chart.hh"

namespace syncperf::core
{

/**
 * One paper figure: shared x values (thread counts) and one
 * throughput series per data type / configuration.
 */
class Figure
{
  public:
    /**
     * @param id Paper identifier, e.g. "Fig. 3a".
     * @param title Human-readable caption.
     * @param x_label Axis caption, e.g. "threads".
     * @param xs Shared x values, strictly increasing.
     */
    Figure(std::string id, std::string title, std::string x_label,
           std::vector<double> xs);

    /** Add a series; ys must have one value per x. */
    void addSeries(std::string label, std::vector<double> ys);

    /** Note rendered under the chart (expected shape, caveats). */
    void setNote(std::string note) { note_ = std::move(note); }

    /** Plot x on a log2 axis (the paper's CUDA figures). */
    void setLogX(bool log_x) { log_x_ = log_x; }

    /** Dashed marker at the physical-core boundary (OpenMP figures). */
    void setCoreBoundary(double x) { core_boundary_ = x; }

    /** Emit "figure,series,x,y" CSV rows. */
    void writeCsv(std::ostream &out) const;

    /** Render the chart plus header/notes for the terminal. */
    std::string render() const;

    const std::string &id() const { return id_; }
    const std::vector<double> &xs() const { return xs_; }

    /** Series accessors for tests. */
    const std::vector<ChartSeries> &series() const { return series_; }

  private:
    std::string id_;
    std::string title_;
    std::string x_label_;
    std::vector<double> xs_;
    std::vector<ChartSeries> series_;
    std::string note_;
    bool log_x_ = false;
    double core_boundary_ = 0.0;
};

} // namespace syncperf::core

#endif // SYNCPERF_CORE_FIGURE_HH
