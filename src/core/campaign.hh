/**
 * @file
 * Campaign driver: the equivalent of the paper artifact's launch.py.
 *
 * Runs the full measurement campaign for a machine and writes one
 * CSV per experiment into results/<system>/..., mirroring the
 * artifact's results layout (Section F of the paper's appendix).
 */

#ifndef SYNCPERF_CORE_CAMPAIGN_HH
#define SYNCPERF_CORE_CAMPAIGN_HH

#include <string>
#include <vector>

#include "core/cpusim_target.hh"
#include "core/gpusim_target.hh"

namespace syncperf::core
{

/** Campaign-wide options. */
struct CampaignOptions
{
    std::string output_dir = "results";

    /** Coarsen sweeps (every 4th thread count, key strides only). */
    bool quick = true;
};

/** What a campaign produced. */
struct CampaignResult
{
    std::vector<std::string> files_written;
    int experiments_run = 0;
};

/**
 * Run every OpenMP experiment of the paper on @p cfg and write one
 * CSV per (primitive, data type, stride) combination under
 * output_dir/<system>/.
 */
CampaignResult runOmpCampaign(const cpusim::CpuConfig &cfg,
                              const MeasurementConfig &protocol,
                              const CampaignOptions &options);

/**
 * Run every CUDA experiment of the paper on @p cfg and write one CSV
 * per (primitive, data type, block count, stride) combination under
 * output_dir/<device>/.
 */
CampaignResult runCudaCampaign(const gpusim::GpuConfig &cfg,
                               const MeasurementConfig &protocol,
                               const CampaignOptions &options);

/** Filesystem-safe slug for a system/device name. */
std::string sanitizeName(const std::string &name);

} // namespace syncperf::core

#endif // SYNCPERF_CORE_CAMPAIGN_HH
