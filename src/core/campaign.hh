/**
 * @file
 * Campaign driver: the equivalent of the paper artifact's launch.py.
 *
 * Runs the full measurement campaign for a machine and writes one
 * CSV per experiment into results/<system>/..., mirroring the
 * artifact's results layout (Section F of the paper's appendix).
 *
 * Resilience: every CSV is written through an atomic temp-file
 * rename, every experiment is journaled in a per-system
 * manifest.json (see core/manifest.hh), failed experiments are
 * recorded and skipped instead of aborting the campaign, and a
 * resumed campaign skips experiments whose journal entry matches
 * the requested configuration. docs/robustness.md has the details.
 *
 * Throughput: experiment points are independent, so the campaign
 * enumerates them up front and fans them out over a work-stealing
 * thread pool (CampaignOptions::jobs), committing results in
 * deterministic point order via core::OrderedExecutor -- output is
 * byte-identical at every job count. docs/performance.md has the
 * executor design and the determinism argument.
 */

#ifndef SYNCPERF_CORE_CAMPAIGN_HH
#define SYNCPERF_CORE_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/cpusim_target.hh"
#include "core/gpusim_target.hh"
#include "core/sweep.hh"
#include "sim/loop_batch.hh"

namespace syncperf::core
{

/** Campaign-wide options. */
struct CampaignOptions
{
    std::string output_dir = "results";

    /** Coarsen sweeps (every 4th thread count, key strides only). */
    bool quick = true;

    /**
     * Skip experiments the manifest journals as complete under an
     * identical configuration (checkpoint/resume after an
     * interruption). When false the journal is started afresh and
     * everything reruns.
     */
    bool resume = false;

    /**
     * Concurrent experiments. 1 runs everything serially on the
     * calling thread (the historical behavior); 0 means "one per
     * hardware thread". Results are committed in deterministic point
     * order, so CSVs, manifest.json, and the degradation summary are
     * byte-identical at every job count (see docs/performance.md).
     * Ordinal-based fault injection is the one order-sensitive
     * feature; it is only deterministic at jobs == 1.
     */
    int jobs = 1;

    /**
     * Manifest checkpoint cadence: the journal is saved to disk
     * after this many experiment commits. Failures checkpoint
     * immediately and the final state is always saved, so a larger
     * batch only widens the window of *successful* work a kill can
     * force a resume to redo. 0 means auto: 1 (checkpoint every
     * experiment) when serial, 8 when parallel.
     */
    int checkpoint_every = 0;

    // ------------------------------------------------ sharding
    //
    // A sharded campaign (docs/robustness.md, "Sharded campaigns")
    // splits the enumerated points over worker processes. A worker
    // (shard_count > 1) runs only the points whose enumeration
    // ordinal it owns (ordinal % shard_count == shard_index) plus
    // any reassigned extras, journals each commit to its own
    // append-only manifest.shard-<k>.jsonl instead of rewriting
    // manifest.json, resumes against manifest.json plus *all* shard
    // journals, and leaves stray-temp cleanup to the supervisor
    // (another worker's in-flight temp must not be "cleaned up").

    /** This process's shard; shard_count <= 1 means unsharded. */
    int shard_index = 0;
    int shard_count = 1;

    /**
     * Point keys ("<system-slug>/<file.csv>") reassigned onto this
     * shard from a dead one, run in addition to the owned ordinals.
     */
    std::vector<std::string> shard_extra;

    /** Called after every ordered commit with a progress note; the
     * shard worker wires this to its heartbeat file. May be null. */
    std::function<void(const std::string &)> heartbeat;

    /**
     * Cooperative cancellation (SIGINT/SIGTERM): polled as each
     * experiment starts. Once true, remaining experiments are
     * counted as interrupted instead of measured, and the journal
     * is checkpointed on the way out. May be null.
     */
    std::function<bool()> cancelled;

    /** Enumerate the sweep into CampaignResult::points and return
     * without measuring anything or touching the filesystem (the
     * shard supervisor computes assignments this way). */
    bool enumerate_only = false;

    /**
     * Maximum lanes per lane group (docs/performance.md,
     * "Lane-batched sweeps"): points whose baseline/test pairs
     * decode to identical images are measured through one shared
     * reference walk, at most this many per group. 1 plans
     * width-1 groups only (grouping observable, nothing shared);
     * <= 0 bypasses the planner entirely (--no-lanes, the
     * reference leg). Output is byte-identical at every setting,
     * so the knob is not part of the config hash.
     */
    int lanes = 8;
};

/** One experiment the campaign could not complete. */
struct ExperimentFailure
{
    std::string file;  ///< destination CSV (relative key)
    std::string error; ///< cause, as journaled
};

/** One enumerated sweep point (its journal key and config hash). */
struct CampaignPoint
{
    std::string file;          ///< CSV name (the journal key)
    std::uint64_t hash = 0;    ///< ConfigHasher digest
};

/** Loop-batching activity of one completed experiment. */
struct ExperimentLoopBatch
{
    std::string file;                ///< CSV name (the point key)
    sim::LoopBatchCounters counters; ///< summed over the point's launches
};

/** What a campaign produced. */
struct CampaignResult
{
    std::vector<std::string> files_written;
    int experiments_run = 0;

    /** Journaled-complete experiments skipped by --resume. */
    int experiments_skipped = 0;

    /** Experiments not run because cancellation fired first. */
    int experiments_interrupted = 0;

    /** True when cancellation cut the campaign short. */
    bool interrupted = false;

    /** Experiments recorded as failed and passed over. */
    std::vector<ExperimentFailure> failures;

    /** The full enumeration in deterministic point order -- always
     * the whole sweep, even when this process ran only a shard
     * slice of it. */
    std::vector<CampaignPoint> points;

    /**
     * Loop-batching activity per experiment this process measured
     * (commit order; resume-skips and failures contribute nothing).
     * Purely an in-memory side channel for the --explain batch-ratio
     * annotation: it is never written to any artifact (CSV,
     * telemetry, manifest), so batching cannot leak into outputs.
     */
    std::vector<ExperimentLoopBatch> loop_batch;

    /**
     * Lane-grouping activity of this campaign (zero when the planner
     * was bypassed or gated off). Like loop_batch, purely an
     * in-memory side channel for --explain: never written to any
     * artifact, so grouping cannot leak into outputs.
     */
    LaneSummary lanes;

    /** True when nothing failed (skips are fine). */
    bool ok() const { return failures.empty() && !interrupted; }
};

/**
 * Run every OpenMP experiment of the paper on @p cfg and write one
 * CSV per (primitive, data type, stride) combination under
 * output_dir/<system>/.
 */
CampaignResult runOmpCampaign(const cpusim::CpuConfig &cfg,
                              const MeasurementConfig &protocol,
                              const CampaignOptions &options);

/**
 * Run every CUDA experiment of the paper on @p cfg and write one CSV
 * per (primitive, data type, block count, stride) combination under
 * output_dir/<device>/.
 */
CampaignResult runCudaCampaign(const gpusim::GpuConfig &cfg,
                               const MeasurementConfig &protocol,
                               const CampaignOptions &options);

/** Filesystem-safe slug for a system/device name. */
std::string sanitizeName(const std::string &name);

} // namespace syncperf::core

#endif // SYNCPERF_CORE_CAMPAIGN_HH
