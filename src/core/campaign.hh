/**
 * @file
 * Campaign driver: the equivalent of the paper artifact's launch.py.
 *
 * Runs the full measurement campaign for a machine and writes one
 * CSV per experiment into results/<system>/..., mirroring the
 * artifact's results layout (Section F of the paper's appendix).
 *
 * Resilience: every CSV is written through an atomic temp-file
 * rename, every experiment is journaled in a per-system
 * manifest.json (see core/manifest.hh), failed experiments are
 * recorded and skipped instead of aborting the campaign, and a
 * resumed campaign skips experiments whose journal entry matches
 * the requested configuration. docs/robustness.md has the details.
 *
 * Throughput: experiment points are independent, so the campaign
 * enumerates them up front and fans them out over a work-stealing
 * thread pool (CampaignOptions::jobs), committing results in
 * deterministic point order via core::OrderedExecutor -- output is
 * byte-identical at every job count. docs/performance.md has the
 * executor design and the determinism argument.
 */

#ifndef SYNCPERF_CORE_CAMPAIGN_HH
#define SYNCPERF_CORE_CAMPAIGN_HH

#include <string>
#include <vector>

#include "core/cpusim_target.hh"
#include "core/gpusim_target.hh"

namespace syncperf::core
{

/** Campaign-wide options. */
struct CampaignOptions
{
    std::string output_dir = "results";

    /** Coarsen sweeps (every 4th thread count, key strides only). */
    bool quick = true;

    /**
     * Skip experiments the manifest journals as complete under an
     * identical configuration (checkpoint/resume after an
     * interruption). When false the journal is started afresh and
     * everything reruns.
     */
    bool resume = false;

    /**
     * Concurrent experiments. 1 runs everything serially on the
     * calling thread (the historical behavior); 0 means "one per
     * hardware thread". Results are committed in deterministic point
     * order, so CSVs, manifest.json, and the degradation summary are
     * byte-identical at every job count (see docs/performance.md).
     * Ordinal-based fault injection is the one order-sensitive
     * feature; it is only deterministic at jobs == 1.
     */
    int jobs = 1;

    /**
     * Manifest checkpoint cadence: the journal is saved to disk
     * after this many experiment commits. Failures checkpoint
     * immediately and the final state is always saved, so a larger
     * batch only widens the window of *successful* work a kill can
     * force a resume to redo. 0 means auto: 1 (checkpoint every
     * experiment) when serial, 8 when parallel.
     */
    int checkpoint_every = 0;
};

/** One experiment the campaign could not complete. */
struct ExperimentFailure
{
    std::string file;  ///< destination CSV (relative key)
    std::string error; ///< cause, as journaled
};

/** What a campaign produced. */
struct CampaignResult
{
    std::vector<std::string> files_written;
    int experiments_run = 0;

    /** Journaled-complete experiments skipped by --resume. */
    int experiments_skipped = 0;

    /** Experiments recorded as failed and passed over. */
    std::vector<ExperimentFailure> failures;

    /** True when nothing failed (skips are fine). */
    bool ok() const { return failures.empty(); }
};

/**
 * Run every OpenMP experiment of the paper on @p cfg and write one
 * CSV per (primitive, data type, stride) combination under
 * output_dir/<system>/.
 */
CampaignResult runOmpCampaign(const cpusim::CpuConfig &cfg,
                              const MeasurementConfig &protocol,
                              const CampaignOptions &options);

/**
 * Run every CUDA experiment of the paper on @p cfg and write one CSV
 * per (primitive, data type, block count, stride) combination under
 * output_dir/<device>/.
 */
CampaignResult runCudaCampaign(const gpusim::GpuConfig &cfg,
                               const MeasurementConfig &protocol,
                               const CampaignOptions &options);

/** Filesystem-safe slug for a system/device name. */
std::string sanitizeName(const std::string &name);

} // namespace syncperf::core

#endif // SYNCPERF_CORE_CAMPAIGN_HH
