/**
 * @file
 * Campaign metrics aggregation: the metrics.json snapshot and the
 * --metrics-summary table.
 *
 * The raw counters live in the process-wide metrics::Registry
 * (src/common/metrics.hh); this layer adds what only the campaign
 * knows -- per-worker busy/steal/idle breakdowns folded from every
 * ThreadPool a campaign ran -- and renders both into a deterministic
 * JSON snapshot (written atomically, diffable across runs for the
 * deterministic counter section) and a human-readable table. Schema
 * documented in docs/observability.md; gated in CI by
 * scripts/check_metrics.py.
 */

#ifndef SYNCPERF_CORE_METRICS_HH
#define SYNCPERF_CORE_METRICS_HH

#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.hh"
#include "common/status.hh"
#include "common/thread_pool.hh"

namespace syncperf::core
{

/**
 * Process-wide aggregation of campaign observability data. The
 * campaign driver folds each pool's worker stats in as it finishes a
 * system; snapshot()/summaryTable() render the union of those and
 * the counter registry.
 *
 * Thread-safe: folds lock internally, and the render paths only run
 * after the campaign's pools have been drained.
 */
class CampaignMetrics
{
  public:
    static CampaignMetrics &global();

    /**
     * Fold one finished pool's per-worker stats into the aggregate
     * (element-wise by worker index) and into the PoolTasksRun /
     * PoolTasksStolen / PoolBusyNanos / PoolIdleNanos counters.
     */
    void foldPool(const std::vector<ThreadPool::WorkerStats> &stats);

    /**
     * Fold one shard worker's metrics snapshot file (the
     * metrics.shard-k.json it flushed before exiting) into this
     * process's registry and aggregates, and remember the per-shard
     * values for the snapshot's "shards" section.
     *
     * Merge rules follow the counter classes: deterministic counters
     * and summable timing counters add; the max-gauges
     * (executor_max_queue_depth, shard_max_heartbeat_age_ms) merge
     * as max; derived rates are recomputed from the merged totals.
     * The first fold records the supervisor's own deterministic
     * counter values as a separate partition row, so per-shard rows
     * plus the supervisor row always sum to the merged totals
     * exactly (gated by check_metrics.py).
     */
    Status foldShardSnapshot(int shard,
                             const std::filesystem::path &file);

    /** True once at least one shard snapshot has been folded. */
    bool merged() const;

    /** Zero the counter registry and the per-worker aggregates. */
    void reset();

    /**
     * The snapshot as JSON text: a "counters" object (deterministic
     * counters only, fixed key order), a "timing" object (the rest,
     * plus derived retry_rate / idle_fraction), and a "workers"
     * array (per-worker busy/steal/idle; empty for serial runs).
     */
    std::string snapshotJson() const;

    /** Atomically write snapshotJson() to @p file. */
    Status writeSnapshot(const std::filesystem::path &file) const;

    /** Aligned two-column table of every counter, for terminals. */
    std::string summaryTable() const;

    /**
     * Derived gates consumed by scripts/check_metrics.py:
     * retries per measured point, and the fraction of pooled worker
     * time spent idle. Both 0 when nothing ran.
     */
    double retryRate() const;
    double idleFraction() const;

  private:
    CampaignMetrics() = default;

    /** One merged shard snapshot, kept for the "shards" section. */
    struct ShardRow
    {
        int shard = 0;
        /** Raw counter values, indexed by metrics::Counter. */
        std::vector<long long> counters;
        std::vector<ThreadPool::WorkerStats> workers;
    };

    /** Element-wise worker fold; caller holds mutex_. */
    void foldWorkersLocked(
        const std::vector<ThreadPool::WorkerStats> &stats);

    mutable std::mutex mutex_; ///< guards the aggregates below
    std::vector<ThreadPool::WorkerStats> workers_;
    std::vector<ShardRow> shard_rows_;
    /** Deterministic counters this process accrued before the first
     * shard fold (its own partition row; e.g. salvage work). */
    std::vector<long long> supervisor_counters_;
};

} // namespace syncperf::core

#endif // SYNCPERF_CORE_METRICS_HH
