/**
 * @file
 * Implementation of the campaign metrics snapshot.
 */

#include "metrics.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hh"
#include "common/fmt.hh"
#include "common/json.hh"
#include "common/table.hh"

namespace syncperf::core
{
namespace
{

constexpr int metrics_version = 1;

double
seconds(long long nanos)
{
    return static_cast<double>(nanos) / 1e9;
}

} // namespace

CampaignMetrics &
CampaignMetrics::global()
{
    static CampaignMetrics instance;
    return instance;
}

void
CampaignMetrics::foldWorkersLocked(
    const std::vector<ThreadPool::WorkerStats> &stats)
{
    if (workers_.size() < stats.size())
        workers_.resize(stats.size());
    for (std::size_t i = 0; i < stats.size(); ++i) {
        workers_[i].tasks_run += stats[i].tasks_run;
        workers_[i].tasks_stolen += stats[i].tasks_stolen;
        workers_[i].busy_nanos += stats[i].busy_nanos;
        workers_[i].idle_nanos += stats[i].idle_nanos;
    }
}

void
CampaignMetrics::foldPool(
    const std::vector<ThreadPool::WorkerStats> &stats)
{
    long long run = 0, stolen = 0, busy = 0, idle = 0;
    {
        std::scoped_lock lock(mutex_);
        foldWorkersLocked(stats);
        for (const auto &w : stats) {
            run += w.tasks_run;
            stolen += w.tasks_stolen;
            busy += w.busy_nanos;
            idle += w.idle_nanos;
        }
    }
    metrics::add(metrics::Counter::PoolTasksRun, run);
    metrics::add(metrics::Counter::PoolTasksStolen, stolen);
    metrics::add(metrics::Counter::PoolBusyNanos, busy);
    metrics::add(metrics::Counter::PoolIdleNanos, idle);
}

Status
CampaignMetrics::foldShardSnapshot(int shard,
                                   const std::filesystem::path &file)
{
    using metrics::Counter;

    std::ifstream in(file);
    if (!in)
        return Status::error(ErrorCode::IoError,
                             "metrics merge: cannot read {}",
                             file.string());
    std::ostringstream text;
    text << in.rdbuf();
    Result<JsonValue> doc = parseJson(text.str());
    if (!doc.isOk())
        return Status::error(ErrorCode::ParseError,
                             "metrics merge: {}: {}", file.string(),
                             doc.status().message());
    const JsonValue *counters = doc.value().find("counters");
    const JsonValue *timing = doc.value().find("timing");
    if (counters == nullptr || timing == nullptr)
        return Status::error(ErrorCode::ParseError,
                             "metrics merge: {} has no counters/"
                             "timing sections",
                             file.string());

    {
        // The supervisor's own deterministic counters (salvaged
        // points, mainly) become their own partition row the first
        // time a shard is folded in.
        std::scoped_lock lock(mutex_);
        if (supervisor_counters_.empty()) {
            supervisor_counters_.resize(metrics::counter_count, 0);
            for (std::size_t i = 0; i < metrics::counter_count; ++i)
                supervisor_counters_[i] =
                    metrics::value(static_cast<Counter>(i));
        }
    }

    ShardRow row;
    row.shard = shard;
    row.counters.resize(metrics::counter_count, 0);
    for (std::size_t i = 0; i < metrics::counter_count; ++i) {
        const auto c = static_cast<Counter>(i);
        const std::string name(metrics::counterName(c));
        long long v = 0;
        if (metrics::counterIsDeterministic(c)) {
            v = std::llround(counters->numberOr(name, 0));
            metrics::add(c, v);
        } else if (c == Counter::PoolBusyNanos) {
            v = std::llround(timing->numberOr("pool_busy_s", 0) *
                             1e9);
            metrics::add(c, v);
        } else if (c == Counter::PoolIdleNanos) {
            v = std::llround(timing->numberOr("pool_idle_s", 0) *
                             1e9);
            metrics::add(c, v);
        } else if (c == Counter::ExecutorMaxQueueDepth ||
                   c == Counter::ShardMaxHeartbeatAgeMs) {
            v = std::llround(timing->numberOr(name, 0));
            metrics::recordMax(c, v);
        } else {
            v = std::llround(timing->numberOr(name, 0));
            metrics::add(c, v);
        }
        row.counters[i] = v;
    }

    if (const JsonValue *workers = doc.value().find("workers");
        workers != nullptr && workers->isArray()) {
        for (const JsonValue &w : workers->asArray()) {
            ThreadPool::WorkerStats stats;
            stats.tasks_run =
                std::llround(w.numberOr("tasks_run", 0));
            stats.tasks_stolen =
                std::llround(w.numberOr("tasks_stolen", 0));
            stats.busy_nanos =
                std::llround(w.numberOr("busy_s", 0) * 1e9);
            stats.idle_nanos =
                std::llround(w.numberOr("idle_s", 0) * 1e9);
            row.workers.push_back(stats);
        }
    }

    std::scoped_lock lock(mutex_);
    // The shard's pool totals were already added through the timing
    // counters above; the per-worker rows fold without re-counting.
    foldWorkersLocked(row.workers);
    shard_rows_.push_back(std::move(row));
    return Status::ok();
}

bool
CampaignMetrics::merged() const
{
    std::scoped_lock lock(mutex_);
    return !shard_rows_.empty();
}

void
CampaignMetrics::reset()
{
    metrics::Registry::global().reset();
    std::scoped_lock lock(mutex_);
    workers_.clear();
    shard_rows_.clear();
    supervisor_counters_.clear();
}

double
CampaignMetrics::retryRate() const
{
    using metrics::Counter;
    const long long points =
        metrics::value(Counter::PointsCommitted) +
        metrics::value(Counter::PointsFailed);
    if (points == 0)
        return 0.0;
    return static_cast<double>(
               metrics::value(Counter::ProtocolRetries)) /
           static_cast<double>(points);
}

double
CampaignMetrics::idleFraction() const
{
    using metrics::Counter;
    const long long busy = metrics::value(Counter::PoolBusyNanos);
    const long long idle = metrics::value(Counter::PoolIdleNanos);
    if (busy + idle == 0)
        return 0.0;
    return static_cast<double>(idle) /
           static_cast<double>(busy + idle);
}

std::string
CampaignMetrics::snapshotJson() const
{
    using metrics::Counter;

    JsonValue counters = JsonValue::object();
    JsonValue timing = JsonValue::object();
    for (int i = 0; i < static_cast<int>(Counter::kCount); ++i) {
        const auto c = static_cast<Counter>(i);
        const long long v = metrics::value(c);
        if (metrics::counterIsDeterministic(c)) {
            counters.set(metrics::counterName(c),
                         JsonValue(static_cast<double>(v)));
        } else if (c == Counter::PoolBusyNanos) {
            timing.set("pool_busy_s", JsonValue(seconds(v)));
        } else if (c == Counter::PoolIdleNanos) {
            timing.set("pool_idle_s", JsonValue(seconds(v)));
        } else {
            timing.set(metrics::counterName(c),
                       JsonValue(static_cast<double>(v)));
        }
    }
    timing.set("retry_rate", JsonValue(retryRate()));
    timing.set("idle_fraction", JsonValue(idleFraction()));

    JsonValue workers = JsonValue::array();
    {
        std::scoped_lock lock(mutex_);
        for (std::size_t i = 0; i < workers_.size(); ++i) {
            const auto &w = workers_[i];
            JsonValue entry = JsonValue::object();
            entry.set("worker", JsonValue(static_cast<int>(i)));
            entry.set("tasks_run",
                      JsonValue(static_cast<double>(w.tasks_run)));
            entry.set("tasks_stolen",
                      JsonValue(static_cast<double>(w.tasks_stolen)));
            entry.set("busy_s", JsonValue(seconds(w.busy_nanos)));
            entry.set("idle_s", JsonValue(seconds(w.idle_nanos)));
            workers.push(std::move(entry));
        }
    }

    JsonValue root = JsonValue::object();
    root.set("version", JsonValue(metrics_version));
    root.set("counters", std::move(counters));
    root.set("timing", std::move(timing));
    root.set("workers", std::move(workers));

    {
        std::scoped_lock lock(mutex_);
        if (!shard_rows_.empty()) {
            // Partition rows: supervisor + shards sum to the merged
            // deterministic totals exactly (check_metrics.py gates
            // this).
            JsonValue sup_counters = JsonValue::object();
            for (int i = 0; i < static_cast<int>(Counter::kCount);
                 ++i) {
                const auto c = static_cast<Counter>(i);
                if (!metrics::counterIsDeterministic(c))
                    continue;
                const long long v =
                    static_cast<std::size_t>(i) <
                            supervisor_counters_.size()
                        ? supervisor_counters_[i]
                        : 0;
                sup_counters.set(metrics::counterName(c),
                                 JsonValue(static_cast<double>(v)));
            }
            JsonValue supervisor = JsonValue::object();
            supervisor.set("counters", std::move(sup_counters));
            root.set("supervisor", std::move(supervisor));

            JsonValue shards = JsonValue::array();
            for (const ShardRow &row : shard_rows_) {
                JsonValue entry = JsonValue::object();
                entry.set("shard", JsonValue(row.shard));
                JsonValue det = JsonValue::object();
                for (int i = 0;
                     i < static_cast<int>(Counter::kCount); ++i) {
                    const auto c = static_cast<Counter>(i);
                    if (!metrics::counterIsDeterministic(c))
                        continue;
                    det.set(metrics::counterName(c),
                            JsonValue(static_cast<double>(
                                row.counters[i])));
                }
                entry.set("counters", std::move(det));
                entry.set(
                    "pool_busy_s",
                    JsonValue(seconds(row.counters[static_cast<int>(
                        Counter::PoolBusyNanos)])));
                entry.set(
                    "pool_idle_s",
                    JsonValue(seconds(row.counters[static_cast<int>(
                        Counter::PoolIdleNanos)])));
                JsonValue shard_workers = JsonValue::array();
                for (std::size_t i = 0; i < row.workers.size();
                     ++i) {
                    const auto &w = row.workers[i];
                    JsonValue we = JsonValue::object();
                    we.set("worker",
                           JsonValue(static_cast<int>(i)));
                    we.set("tasks_run",
                           JsonValue(
                               static_cast<double>(w.tasks_run)));
                    we.set("tasks_stolen",
                           JsonValue(static_cast<double>(
                               w.tasks_stolen)));
                    we.set("busy_s",
                           JsonValue(seconds(w.busy_nanos)));
                    we.set("idle_s",
                           JsonValue(seconds(w.idle_nanos)));
                    shard_workers.push(std::move(we));
                }
                entry.set("workers", std::move(shard_workers));
                shards.push(std::move(entry));
            }
            root.set("shards", std::move(shards));
        }
    }
    return root.dump(2) + "\n";
}

Status
CampaignMetrics::writeSnapshot(
    const std::filesystem::path &file) const
{
    AtomicFile out;
    if (Status s = out.open(file); !s.isOk())
        return s;
    out.stream() << snapshotJson();
    return out.commit();
}

std::string
CampaignMetrics::summaryTable() const
{
    using metrics::Counter;

    TablePrinter table({"counter", "value"});
    table.setTitle("campaign metrics");
    for (int i = 0; i < static_cast<int>(Counter::kCount); ++i) {
        const auto c = static_cast<Counter>(i);
        const long long v = metrics::value(c);
        if (c == Counter::PoolBusyNanos ||
            c == Counter::PoolIdleNanos) {
            table.addRow({std::string(metrics::counterName(c))
                              .substr(0, 9) + "_s",
                          format("{:.3f}", seconds(v))});
        } else {
            table.addRow({std::string(metrics::counterName(c)),
                          std::to_string(v)});
        }
    }
    table.addRow({"retry_rate", format("{:.4f}", retryRate())});
    table.addRow({"idle_fraction", format("{:.4f}", idleFraction())});
    return table.render();
}

} // namespace syncperf::core
