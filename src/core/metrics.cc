/**
 * @file
 * Implementation of the campaign metrics snapshot.
 */

#include "metrics.hh"

#include "common/atomic_file.hh"
#include "common/fmt.hh"
#include "common/json.hh"
#include "common/table.hh"

namespace syncperf::core
{
namespace
{

constexpr int metrics_version = 1;

double
seconds(long long nanos)
{
    return static_cast<double>(nanos) / 1e9;
}

} // namespace

CampaignMetrics &
CampaignMetrics::global()
{
    static CampaignMetrics instance;
    return instance;
}

void
CampaignMetrics::foldPool(
    const std::vector<ThreadPool::WorkerStats> &stats)
{
    long long run = 0, stolen = 0, busy = 0, idle = 0;
    {
        std::scoped_lock lock(mutex_);
        if (workers_.size() < stats.size())
            workers_.resize(stats.size());
        for (std::size_t i = 0; i < stats.size(); ++i) {
            workers_[i].tasks_run += stats[i].tasks_run;
            workers_[i].tasks_stolen += stats[i].tasks_stolen;
            workers_[i].busy_nanos += stats[i].busy_nanos;
            workers_[i].idle_nanos += stats[i].idle_nanos;
            run += stats[i].tasks_run;
            stolen += stats[i].tasks_stolen;
            busy += stats[i].busy_nanos;
            idle += stats[i].idle_nanos;
        }
    }
    metrics::add(metrics::Counter::PoolTasksRun, run);
    metrics::add(metrics::Counter::PoolTasksStolen, stolen);
    metrics::add(metrics::Counter::PoolBusyNanos, busy);
    metrics::add(metrics::Counter::PoolIdleNanos, idle);
}

void
CampaignMetrics::reset()
{
    metrics::Registry::global().reset();
    std::scoped_lock lock(mutex_);
    workers_.clear();
}

double
CampaignMetrics::retryRate() const
{
    using metrics::Counter;
    const long long points =
        metrics::value(Counter::PointsCommitted) +
        metrics::value(Counter::PointsFailed);
    if (points == 0)
        return 0.0;
    return static_cast<double>(
               metrics::value(Counter::ProtocolRetries)) /
           static_cast<double>(points);
}

double
CampaignMetrics::idleFraction() const
{
    using metrics::Counter;
    const long long busy = metrics::value(Counter::PoolBusyNanos);
    const long long idle = metrics::value(Counter::PoolIdleNanos);
    if (busy + idle == 0)
        return 0.0;
    return static_cast<double>(idle) /
           static_cast<double>(busy + idle);
}

std::string
CampaignMetrics::snapshotJson() const
{
    using metrics::Counter;

    JsonValue counters = JsonValue::object();
    JsonValue timing = JsonValue::object();
    for (int i = 0; i < static_cast<int>(Counter::kCount); ++i) {
        const auto c = static_cast<Counter>(i);
        const long long v = metrics::value(c);
        if (metrics::counterIsDeterministic(c)) {
            counters.set(metrics::counterName(c),
                         JsonValue(static_cast<double>(v)));
        } else if (c == Counter::PoolBusyNanos) {
            timing.set("pool_busy_s", JsonValue(seconds(v)));
        } else if (c == Counter::PoolIdleNanos) {
            timing.set("pool_idle_s", JsonValue(seconds(v)));
        } else {
            timing.set(metrics::counterName(c),
                       JsonValue(static_cast<double>(v)));
        }
    }
    timing.set("retry_rate", JsonValue(retryRate()));
    timing.set("idle_fraction", JsonValue(idleFraction()));

    JsonValue workers = JsonValue::array();
    {
        std::scoped_lock lock(mutex_);
        for (std::size_t i = 0; i < workers_.size(); ++i) {
            const auto &w = workers_[i];
            JsonValue entry = JsonValue::object();
            entry.set("worker", JsonValue(static_cast<int>(i)));
            entry.set("tasks_run",
                      JsonValue(static_cast<double>(w.tasks_run)));
            entry.set("tasks_stolen",
                      JsonValue(static_cast<double>(w.tasks_stolen)));
            entry.set("busy_s", JsonValue(seconds(w.busy_nanos)));
            entry.set("idle_s", JsonValue(seconds(w.idle_nanos)));
            workers.push(std::move(entry));
        }
    }

    JsonValue root = JsonValue::object();
    root.set("version", JsonValue(metrics_version));
    root.set("counters", std::move(counters));
    root.set("timing", std::move(timing));
    root.set("workers", std::move(workers));
    return root.dump(2) + "\n";
}

Status
CampaignMetrics::writeSnapshot(
    const std::filesystem::path &file) const
{
    AtomicFile out;
    if (Status s = out.open(file); !s.isOk())
        return s;
    out.stream() << snapshotJson();
    return out.commit();
}

std::string
CampaignMetrics::summaryTable() const
{
    using metrics::Counter;

    TablePrinter table({"counter", "value"});
    table.setTitle("campaign metrics");
    for (int i = 0; i < static_cast<int>(Counter::kCount); ++i) {
        const auto c = static_cast<Counter>(i);
        const long long v = metrics::value(c);
        if (c == Counter::PoolBusyNanos ||
            c == Counter::PoolIdleNanos) {
            table.addRow({std::string(metrics::counterName(c))
                              .substr(0, 9) + "_s",
                          format("{:.3f}", seconds(v))});
        } else {
            table.addRow({std::string(metrics::counterName(c)),
                          std::to_string(v)});
        }
    }
    table.addRow({"retry_rate", format("{:.4f}", retryRate())});
    table.addRow({"idle_fraction", format("{:.4f}", idleFraction())});
    return table.render();
}

} // namespace syncperf::core
