/**
 * @file
 * Adapter that runs OpenMP-primitive experiments on the CPU timing
 * model, translating each OmpExperiment into baseline/test thread
 * programs per the paper's Listing 2 template.
 */

#ifndef SYNCPERF_CORE_CPUSIM_TARGET_HH
#define SYNCPERF_CORE_CPUSIM_TARGET_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "core/measure_config.hh"
#include "core/primitives.hh"
#include "core/protocol.hh"
#include "cpusim/machine.hh"

namespace syncperf::core
{

/** Baseline and test programs for one experiment point. */
struct OmpProgramPair
{
    std::vector<cpusim::CpuProgram> baseline;
    std::vector<cpusim::CpuProgram> test;
};

/**
 * Measurement target backed by cpusim.
 *
 * Stateless apart from the machine configuration and a seed counter
 * that gives every simulated launch an independent deterministic
 * jitter stream (so the protocol's runs/attempts see run-to-run
 * variation exactly where the model has jitter).
 */
class CpuSimTarget
{
  public:
    CpuSimTarget(cpusim::CpuConfig cfg, MeasurementConfig mcfg,
                 std::uint64_t seed = 1);

    /**
     * Run the full measurement protocol for one experiment point.
     *
     * @param exp The primitive and its parameters.
     * @param n_threads Team size (the paper sweeps 2..max HW threads).
     */
    Measurement measure(const OmpExperiment &exp, int n_threads);

    /**
     * Build the baseline/test program pair (exposed for tests).
     *
     * @param iterations Timed body repetitions per thread.
     */
    static OmpProgramPair buildPrograms(const OmpExperiment &exp,
                                        int n_threads, long iterations);

    const cpusim::CpuConfig &config() const { return cfg_; }

  private:
    std::vector<double> runOnce(const std::vector<cpusim::CpuProgram> &p,
                                Affinity affinity);

    cpusim::CpuConfig cfg_;
    MeasurementConfig mcfg_;
    std::uint64_t next_seed_;
};

} // namespace syncperf::core

#endif // SYNCPERF_CORE_CPUSIM_TARGET_HH
