/**
 * @file
 * Adapter that runs OpenMP-primitive experiments on the CPU timing
 * model, translating each OmpExperiment into baseline/test thread
 * programs per the paper's Listing 2 template.
 */

#ifndef SYNCPERF_CORE_CPUSIM_TARGET_HH
#define SYNCPERF_CORE_CPUSIM_TARGET_HH

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/machine_pool.hh"
#include "core/measure_config.hh"
#include "core/primitives.hh"
#include "core/protocol.hh"
#include "core/telemetry.hh"
#include "cpusim/machine.hh"

namespace syncperf::core
{

/** Baseline and test programs for one experiment point. */
struct OmpProgramPair
{
    std::vector<cpusim::CpuProgram> baseline;
    std::vector<cpusim::CpuProgram> test;
};

/**
 * Measurement target backed by cpusim.
 *
 * Holds the machine configuration, a seed counter that gives every
 * simulated launch an independent deterministic jitter stream (so
 * the protocol's runs/attempts see run-to-run variation exactly
 * where the model has jitter), a reused machine instance (warm event
 * queue and decode buffers across the thousands of launches a sweep
 * performs), and a result cache keyed by the simulated input.
 *
 * The cache only ever serves jitter-free configurations
 * (cfg.jitter_frac == 0), where a launch's outcome is a pure
 * function of (programs, affinity, warmup) -- a hit is bit-identical
 * to re-simulating. Jittered models (the paper's Threadripper) take
 * a fresh seed per launch and always re-simulate. Seeds are consumed
 * on hits too, so cache state never shifts the jitter stream.
 */
class CpuSimTarget
{
  public:
    CpuSimTarget(cpusim::CpuConfig cfg, MeasurementConfig mcfg,
                 std::uint64_t seed = 1);

    /**
     * Run the full measurement protocol for one experiment point.
     *
     * @param exp The primitive and its parameters.
     * @param n_threads Team size (the paper sweeps 2..max HW threads).
     */
    Measurement measure(const OmpExperiment &exp, int n_threads);

    /**
     * Build the baseline/test program pair (exposed for tests).
     *
     * @param iterations Timed body repetitions per thread.
     */
    static OmpProgramPair buildPrograms(const OmpExperiment &exp,
                                        int n_threads, long iterations);

    const cpusim::CpuConfig &config() const { return cfg_; }

    /**
     * Lane-grouping key for @p exp at @p n_threads: a digest of the
     * placement policy plus the decoded-image fingerprints of the
     * baseline/test program pair. Points with equal keys at every
     * swept team size perform bit-identical measurement walks (the
     * campaign's lane-lockstep agreement test). As a side effect the
     * pair's images are materialized on the leased machine, so the
     * decode doubles as the warm-start path measure() replays.
     * Requires the machine-pool path (mcfg.machine_pool).
     */
    std::uint64_t laneKey(const OmpExperiment &exp, int n_threads);

    /**
     * The seed the next simulated launch will consume. Lane peeling
     * hands this to the solo target that takes over a diverged lane,
     * keeping its jitter stream exactly where a never-grouped run of
     * that point would be.
     */
    std::uint64_t seedCursor() const { return next_seed_; }

    /**
     * Telemetry accumulated by every launch since the last take
     * (all runs/attempts/retries of the measure() calls in between),
     * and reset the accumulator. Empty unless mcfg.telemetry is set.
     * Cache hits contribute the stored telemetry of the original
     * simulation, so the sample is independent of cache state.
     */
    TelemetrySample takeTelemetry();

    /**
     * Loop-batching activity accumulated over every launch this
     * target actually simulated (cache hits replay stored results
     * and add nothing). Feeds the loop_batch_* metrics counters and
     * the --explain batch-ratio annotation.
     */
    const sim::LoopBatchCounters &loopBatch() const { return lb_; }

  private:
    /** Simulate one launch, filling @p out with per-thread seconds. */
    void runOnce(const std::vector<cpusim::CpuProgram> &p,
                 Affinity affinity, std::vector<double> &out);

    /** The leased machine, re-leased when the affinity changes. */
    cpusim::CpuMachine &machineFor(Affinity affinity);

    /** Digest of everything a jitter-free launch's outcome depends on. */
    std::uint64_t cacheKey(const std::vector<cpusim::CpuProgram> &p,
                           Affinity affinity) const;

    /**
     * Digest of everything the decoded form of @p p depends on (the
     * machine config and the program bodies; never warmup, placement,
     * or iteration counts). Non-zero by construction -- key 0 is the
     * machines' "decode normally" sentinel.
     */
    std::uint64_t imageKey(const std::vector<cpusim::CpuProgram> &p) const;

    /** Pure simulator output (pre fault injection) of one launch. */
    struct CacheEntry
    {
        std::vector<double> seconds;
        TelemetrySample telemetry;
    };

    cpusim::CpuConfig cfg_;
    MeasurementConfig mcfg_;
    std::uint64_t next_seed_;

    MachinePool::CpuLease lease_;
    Affinity machine_affinity_ = Affinity::Spread;

    std::unordered_map<std::uint64_t, CacheEntry> cache_;

    /** Accumulates across launches until takeTelemetry(). */
    TelemetrySample telemetry_;

    /** Accumulates across every simulated (non-cache-hit) launch. */
    sim::LoopBatchCounters lb_;
};

} // namespace syncperf::core

#endif // SYNCPERF_CORE_CPUSIM_TARGET_HH
