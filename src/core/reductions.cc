/**
 * @file
 * Implementation of the Listing 1 reduction kernels.
 */

#include "reductions.hh"

#include "common/logging.hh"

namespace syncperf::core
{
namespace
{

using gpusim::AddressMode;
using gpusim::AtomicOp;
using gpusim::GpuKernel;
using gpusim::GpuOp;
using gpusim::LaunchConfig;
using gpusim::Predicate;

constexpr std::uint64_t data_addr = 0x10000000;
constexpr std::uint64_t result_addr = 0x1000;
constexpr std::uint64_t block_result_addr = 0x100000;

GpuOp
loadElement()
{
    return GpuOp::globalLoad(data_addr, DataType::Int32, 1);
}

GpuOp
globalMax(Predicate pred)
{
    return GpuOp::globalAtomic(AtomicOp::Max, AddressMode::SingleShared,
                               result_addr, DataType::Int32, 1, pred);
}

GpuOp
blockMax(Predicate pred)
{
    return GpuOp::sharedAtomic(AtomicOp::Max, block_result_addr,
                               DataType::Int32, pred);
}

} // namespace

std::string_view
reductionName(ReductionVariant v)
{
    switch (v) {
      case ReductionVariant::GlobalAtomic:
        return "Reduction 1 (global atomicMax per element)";
      case ReductionVariant::WarpShuffle:
        return "Reduction 2 (shuffle tree + atomic per warp)";
      case ReductionVariant::BlockAtomic:
        return "Reduction 3 (block atomics + one global)";
      case ReductionVariant::WarpReduce:
        return "Reduction 4 (__reduce_max_sync + block atomic)";
      case ReductionVariant::PersistentBlock:
        return "Reduction 5 (persistent threads)";
    }
    return "?";
}

ReductionPlan
buildReduction(ReductionVariant variant, const gpusim::GpuConfig &cfg,
               long n_elements, int threads_per_block)
{
    SYNCPERF_ASSERT(threads_per_block >= cfg.warp_size &&
                    threads_per_block <= cfg.max_threads_per_block);
    SYNCPERF_ASSERT(n_elements % threads_per_block == 0,
                    "element count must be a block multiple");

    ReductionPlan plan;
    plan.elements = n_elements;
    GpuKernel &k = plan.kernel;

    const int data_blocks =
        static_cast<int>(n_elements / threads_per_block);

    switch (variant) {
      case ReductionVariant::GlobalAtomic:
        // if (i < size) atomicMax(&result, data[i]);
        plan.launch = {data_blocks, threads_per_block};
        k.body = {loadElement(), globalMax(Predicate::All)};
        k.body_iters = 1;
        break;

      case ReductionVariant::WarpShuffle: {
        // Butterfly: 5 rounds of __shfl_xor_sync + max, then one
        // atomic per warp.
        plan.launch = {data_blocks, threads_per_block};
        GpuOp shfl_chain = GpuOp::shfl(DataType::Int32, 5);
        GpuOp maxes = GpuOp::alu(5);
        k.body = {loadElement(), shfl_chain, maxes,
                  globalMax(Predicate::Lane0)};
        k.body_iters = 1;
        break;
      }

      case ReductionVariant::BlockAtomic:
        // init block_result; __syncthreads(); atomicMax_block(...);
        // __syncthreads(); thread 0 pushes the block result globally.
        plan.launch = {data_blocks, threads_per_block};
        k.prologue = {GpuOp::syncThreads()};
        k.body = {loadElement(), blockMax(Predicate::All)};
        k.body_iters = 1;
        k.epilogue = {GpuOp::syncThreads(), globalMax(Predicate::Thread0)};
        break;

      case ReductionVariant::WarpReduce:
        if (cfg.reduce_latency == 0) {
            fatal("Reduction 4 needs __reduce_max_sync (cc >= 8.0); {} "
                  "is cc {}", cfg.name, cfg.compute_capability);
        }
        plan.launch = {data_blocks, threads_per_block};
        k.prologue = {GpuOp::syncThreads()};
        k.body = {loadElement(), GpuOp::reduceSync(DataType::Int32),
                  blockMax(Predicate::Lane0)};
        k.body_iters = 1;
        k.epilogue = {GpuOp::syncThreads(), globalMax(Predicate::Thread0)};
        break;

      case ReductionVariant::PersistentBlock: {
        // Grid-stride loop accumulating a thread-local maximum, then
        // one block atomic per thread and one global per block.
        const int grid = 2 * cfg.sm_count;
        const long per_thread =
            n_elements / (static_cast<long>(grid) * threads_per_block);
        SYNCPERF_ASSERT(per_thread >= 1,
                        "input too small for the persistent grid");
        plan.launch = {grid, threads_per_block};
        k.prologue = {GpuOp::syncThreads()};
        k.body = {loadElement(), GpuOp::alu()};
        k.body_iters = per_thread;
        k.epilogue = {blockMax(Predicate::All), GpuOp::syncThreads(),
                      globalMax(Predicate::Thread0)};
        break;
      }
    }
    return plan;
}

ReductionTiming
runReduction(ReductionVariant variant, const gpusim::GpuConfig &cfg,
             long n_elements, int threads_per_block)
{
    const ReductionPlan plan =
        buildReduction(variant, cfg, n_elements, threads_per_block);
    gpusim::GpuMachine machine(cfg, static_cast<int>(variant));
    const auto result = machine.run(plan.kernel, plan.launch,
                                    /*warmup_iterations=*/0);

    ReductionTiming t;
    t.variant = variant;
    t.cycles = result.total_cycles;
    t.seconds =
        static_cast<double>(result.total_cycles) / (cfg.clock_ghz * 1e9);
    t.elements_per_second =
        static_cast<double>(n_elements) / t.seconds;
    return t;
}

std::vector<ReductionTiming>
runAllReductions(const gpusim::GpuConfig &cfg, long n_elements,
                 int threads_per_block)
{
    std::vector<ReductionTiming> out;
    for (ReductionVariant v : {
             ReductionVariant::GlobalAtomic, ReductionVariant::WarpShuffle,
             ReductionVariant::BlockAtomic, ReductionVariant::WarpReduce,
             ReductionVariant::PersistentBlock}) {
        if (v == ReductionVariant::WarpReduce && cfg.reduce_latency == 0)
            continue;
        out.push_back(runReduction(v, cfg, n_elements, threads_per_block));
    }
    return out;
}

} // namespace syncperf::core
