/**
 * @file
 * Implementation of the shard supervisor.
 */

#include "shard.hh"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <unordered_set>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/flight_recorder.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/trace.hh"

namespace syncperf::core
{
namespace
{

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

} // namespace

std::string
ShardSpec::toString() const
{
    return std::to_string(index) + "/" + std::to_string(count);
}

Result<ShardSpec>
parseShardSpec(std::string_view text)
{
    const std::string copy(text);
    char *end = nullptr;
    const long index = std::strtol(copy.c_str(), &end, 10);
    if (end == copy.c_str() || *end != '/') {
        return Status::error(ErrorCode::InvalidArgument,
                             "shard spec '{}' is not of the form k/N",
                             copy);
    }
    const char *count_text = end + 1;
    const long count = std::strtol(count_text, &end, 10);
    if (end == count_text || *end != '\0') {
        return Status::error(ErrorCode::InvalidArgument,
                             "shard spec '{}' is not of the form k/N",
                             copy);
    }
    if (count < 1 || index < 0 || index >= count) {
        return Status::error(ErrorCode::InvalidArgument,
                             "shard spec '{}' needs 0 <= k < N", copy);
    }
    ShardSpec spec;
    spec.index = static_cast<int>(index);
    spec.count = static_cast<int>(count);
    return spec;
}

int
shardBackoffMs(int attempt, int base_ms, int cap_ms)
{
    if (base_ms < 0)
        base_ms = 0;
    if (cap_ms < base_ms)
        cap_ms = base_ms;
    long long ms = base_ms;
    for (int i = 1; i < attempt && ms < cap_ms; ++i)
        ms *= 2;
    return static_cast<int>(std::min<long long>(ms, cap_ms));
}

fs::path
shardHeartbeatPath(const fs::path &control_dir, int shard)
{
    return control_dir / ("shard-" + std::to_string(shard) + ".hb");
}

fs::path
shardFlightRecorderPath(const fs::path &control_dir, int shard)
{
    return control_dir / ("flight-" + std::to_string(shard) + ".ring");
}

fs::path
shardPostmortemPath(const fs::path &control_dir, int shard)
{
    return control_dir /
           ("postmortem.shard-" + std::to_string(shard) + ".json");
}

fs::path
shardTracePath(const fs::path &control_dir, int shard)
{
    return control_dir /
           ("trace.shard-" + std::to_string(shard) + ".json");
}

fs::path
shardMetricsPath(const fs::path &control_dir, int shard)
{
    return control_dir /
           ("metrics.shard-" + std::to_string(shard) + ".json");
}

std::string
shardJournalName(int shard)
{
    return "manifest.shard-" + std::to_string(shard) + ".jsonl";
}

void
shardHeartbeat(const fs::path &file, std::string_view note)
{
    // Plain truncate-and-rewrite: the beat is the mtime, and nobody
    // parses the note, so a torn heartbeat is harmless.
    std::ofstream out(file, std::ios::trunc);
    out << note << "\n";
}

double
shardHeartbeatAge(const fs::path &file)
{
    std::error_code ec;
    const auto mtime = fs::last_write_time(file, ec);
    if (ec)
        return 1e9; // never beaten
    const auto now = fs::file_time_type::clock::now();
    const double age =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            now - mtime)
            .count();
    return age < 0.0 ? 0.0 : age;
}

// ----------------------------------------------------- supervisor

struct ShardSupervisor::Worker
{
    enum class Phase
    {
        Idle,    ///< never spawned yet
        Running, ///< process alive (or awaiting reap)
        Backoff, ///< crashed; respawn once backoff_until passes
        Done,    ///< finished its assignment (may respawn for extras)
        Dead,    ///< abandoned after max_retries
    };

    int index = 0;
    Phase phase = Phase::Idle;
    pid_t pid = -1;
    int retries = 0;  ///< respawns consumed after crashes/timeouts
    int spawns = 0;
    int timeouts = 0;
    int last_exit = -1; ///< exit code, or -signo when signaled
    bool journaled_failures = false;
    bool interrupted = false;
    bool timed_out = false; ///< watchdog killed the current process
    Clock::time_point backoff_until{};
    std::vector<std::string> extras;   ///< reassigned point keys
    std::size_t extras_dispatched = 0; ///< extras covered by last spawn
};

ShardSupervisor::ShardSupervisor(Config config)
    : config_(std::move(config))
{
}

ShardSupervisor::~ShardSupervisor()
{
    terminateAll();
}

ShardSupervisorResult
ShardSupervisor::run()
{
    fs::create_directories(config_.control_dir);
    workers_.clear();
    workers_.resize(config_.assignment.size());
    for (std::size_t k = 0; k < workers_.size(); ++k)
        workers_[k].index = static_cast<int>(k);

    const auto pending = [this]() {
        for (const Worker &w : workers_) {
            switch (w.phase) {
            case Worker::Phase::Idle:
            case Worker::Phase::Running:
            case Worker::Phase::Backoff:
                return true;
            case Worker::Phase::Done:
                if (w.extras.size() > w.extras_dispatched)
                    return true; // reassigned points still to run
                break;
            case Worker::Phase::Dead:
                break;
            }
        }
        return false;
    };

    ShardSupervisorResult result;
    while (pending()) {
        if (config_.cancelled && config_.cancelled()) {
            result.interrupted = true;
            terminateAll();
            break;
        }
        while (reapOne()) {
        }
        watchdog();
        if (config_.status_tick) {
            std::vector<ShardLiveStatus> live;
            live.reserve(workers_.size());
            for (const Worker &w : workers_) {
                ShardLiveStatus s;
                s.index = w.index;
                s.running = w.phase == Worker::Phase::Running;
                s.dead = w.phase == Worker::Phase::Dead;
                s.spawns = w.spawns;
                s.retries = w.retries;
                s.heartbeat_age_s = shardHeartbeatAge(
                    shardHeartbeatPath(config_.control_dir,
                                       w.index));
                live.push_back(s);
            }
            config_.status_tick(live);
        }
        const auto now = Clock::now();
        for (Worker &w : workers_) {
            const bool due =
                w.phase == Worker::Phase::Idle ||
                (w.phase == Worker::Phase::Backoff &&
                 now >= w.backoff_until) ||
                (w.phase == Worker::Phase::Done &&
                 w.extras.size() > w.extras_dispatched);
            if (due)
                spawn(w);
        }
        std::this_thread::sleep_for(std::chrono::duration<double>(
            config_.options.poll_interval_s));
    }

    // Late journal appends (a dead shard's final commits landing just
    // before the SIGKILL) may have covered points we queued as
    // leftovers; trust the commit log over our bookkeeping.
    if (!leftover_.empty() && config_.recordedKeys) {
        std::unordered_set<std::string> recorded;
        for (std::string &key : config_.recordedKeys())
            recorded.insert(std::move(key));
        std::erase_if(leftover_, [&](const std::string &key) {
            return recorded.count(key) > 0;
        });
    }

    result.leftover = leftover_;
    result.points_reassigned = points_reassigned_;
    for (const Worker &w : workers_) {
        ShardState state;
        state.index = w.index;
        state.spawns = w.spawns;
        state.timeouts = w.timeouts;
        state.dead = w.phase == Worker::Phase::Dead;
        state.last_exit = w.last_exit;
        state.extra_points = w.extras;
        result.spawned += w.spawns;
        result.retries += w.retries;
        result.timeouts += w.timeouts;
        result.dead += state.dead ? 1 : 0;
        result.journaled_failures |= w.journaled_failures;
        result.interrupted |= w.interrupted;
        result.shards.push_back(std::move(state));
    }
    return result;
}

void
ShardSupervisor::spawn(Worker &w)
{
    const ShardSpec spec{w.index,
                         static_cast<int>(config_.assignment.size())};
    const std::string tag = "shard-" + std::to_string(w.index);
    trace::Span span(tag + " spawn", "shard");

    std::vector<std::string> argv = config_.worker_argv;
    argv.push_back("--shard-worker");
    argv.push_back(spec.toString());
    if (!w.extras.empty()) {
        const fs::path extra_file =
            config_.control_dir / (tag + ".extra");
        std::ofstream out(extra_file, std::ios::trunc);
        for (const std::string &key : w.extras)
            out << key << "\n";
        argv.push_back("--shard-extra");
        argv.push_back(extra_file.string());
    }
    w.extras_dispatched = w.extras.size();

    // Baseline beat: the watchdog clock starts at "just spawned",
    // not at whenever the previous incarnation last beat.
    shardHeartbeat(shardHeartbeatPath(config_.control_dir, w.index),
                   "spawned");

    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (std::string &arg : argv)
        cargv.push_back(arg.data());
    cargv.push_back(nullptr);

    const fs::path log = config_.control_dir / (tag + ".log");
    const pid_t pid = ::fork();
    if (pid < 0) {
        warn("shard {}: fork failed; treating as a crash", w.index);
        handleCrash(w, false);
        return;
    }
    if (pid == 0) {
        // Child: worker output goes to the per-shard log so the
        // supervisor's own stdout stays readable (and so a crashed
        // shard leaves its last words behind as an artifact).
        const int fd = ::open(log.c_str(),
                              O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (fd >= 0) {
            ::dup2(fd, STDOUT_FILENO);
            ::dup2(fd, STDERR_FILENO);
            if (fd > STDERR_FILENO)
                ::close(fd);
        }
        ::execv(cargv[0], cargv.data());
        ::_exit(127); // exec failed; reported as a crash
    }

    w.pid = pid;
    w.phase = Worker::Phase::Running;
    w.timed_out = false;
    ++w.spawns;
    metrics::add(metrics::Counter::ShardsSpawned);
}

bool
ShardSupervisor::reapOne()
{
    for (Worker &w : workers_) {
        if (w.phase != Worker::Phase::Running || w.pid <= 0)
            continue;
        int wstatus = 0;
        if (::waitpid(w.pid, &wstatus, WNOHANG) == w.pid) {
            handleExit(w, wstatus);
            return true;
        }
    }
    return false;
}

void
ShardSupervisor::watchdog()
{
    const double timeout = config_.options.heartbeat_timeout_s;
    if (timeout <= 0.0)
        return;
    for (Worker &w : workers_) {
        if (w.phase != Worker::Phase::Running || w.pid <= 0)
            continue;
        const double age = shardHeartbeatAge(
            shardHeartbeatPath(config_.control_dir, w.index));
        metrics::recordMax(metrics::Counter::ShardMaxHeartbeatAgeMs,
                           static_cast<long long>(age * 1000.0));
        if (age > timeout) {
            warn("shard {}: heartbeat stale for {} s (timeout {} s); "
                 "killing worker",
                 w.index, age, timeout);
            w.timed_out = true;
            ::kill(w.pid, SIGKILL);
            // The reap loop picks up the corpse and routes it
            // through the crash path with timed_out set.
        }
    }
}

void
ShardSupervisor::handleExit(Worker &w, int wstatus)
{
    w.pid = -1;
    const bool was_timeout = w.timed_out;
    w.timed_out = false;

    if (WIFEXITED(wstatus)) {
        const int code = WEXITSTATUS(wstatus);
        w.last_exit = code;
        switch (code) {
        case 0:
            w.phase = Worker::Phase::Done;
            return;
        case 1:
            // The worker ran everything; some experiments failed and
            // are journaled as such. Respawning cannot help.
            w.phase = Worker::Phase::Done;
            w.journaled_failures = true;
            return;
        case 2:
            // Usage error: the same argv will be rejected again.
            warn("shard {}: worker rejected its command line; "
                 "abandoning the shard",
                 w.index);
            markDead(w);
            return;
        case 130:
        case 143:
            // Interrupted after checkpointing. Expected while we
            // are cancelling; a crash-equivalent otherwise (someone
            // signaled the worker behind our back).
            if (config_.cancelled && config_.cancelled()) {
                w.phase = Worker::Phase::Done;
                w.interrupted = true;
                return;
            }
            break;
        default:
            break;
        }
    } else if (WIFSIGNALED(wstatus)) {
        w.last_exit = -WTERMSIG(wstatus);
    } else {
        w.last_exit = -1;
    }
    handleCrash(w, was_timeout);
}

void
ShardSupervisor::renderPostmortem(const Worker &w)
{
    // Render before any respawn: the next incarnation truncates the
    // ring at startup. Unit tests drive fake /bin/sh workers that
    // never open a ring, so a missing file is simply no postmortem.
    const fs::path ring =
        shardFlightRecorderPath(config_.control_dir, w.index);
    std::error_code ec;
    if (!fs::exists(ring, ec))
        return;
    const fs::path out =
        shardPostmortemPath(config_.control_dir, w.index);
    if (Status s = flight::renderPostmortem(ring, out);
        !s.isOk()) {
        warn("shard {}: postmortem render failed: {}", w.index,
             s.message());
    } else {
        inform("shard {}: postmortem written to {}", w.index,
               out.string());
    }
}

void
ShardSupervisor::handleCrash(Worker &w, bool timed_out)
{
    renderPostmortem(w);
    if (timed_out) {
        ++w.timeouts;
        metrics::add(metrics::Counter::ShardTimeouts);
    }
    if (w.retries < config_.options.max_retries) {
        ++w.retries;
        metrics::add(metrics::Counter::ShardRetries);
        const int delay = shardBackoffMs(
            w.retries, config_.options.backoff_base_ms,
            config_.options.backoff_cap_ms);
        w.backoff_until =
            Clock::now() + std::chrono::milliseconds(delay);
        w.phase = Worker::Phase::Backoff;
        inform("shard {}: worker died (status {}); retry {} of {} "
               "in {} ms",
               w.index, w.last_exit, w.retries,
               config_.options.max_retries, delay);
    } else {
        markDead(w);
    }
}

void
ShardSupervisor::markDead(Worker &w)
{
    // The usage-error path (exit 2) reaches here without going
    // through handleCrash; rendering twice just overwrites the same
    // file.
    renderPostmortem(w);
    w.phase = Worker::Phase::Dead;
    metrics::add(metrics::Counter::ShardsDead);
    warn("shard {}: abandoned after {} retries (last status {}); "
         "reassigning its unfinished points",
         w.index, w.retries, w.last_exit);
    reassignFromDead(w);
}

void
ShardSupervisor::reassignFromDead(Worker &dead)
{
    const std::string tag = "shard-" + std::to_string(dead.index);
    trace::Span span(tag + " reassign", "shard");

    std::vector<Worker *> targets;
    for (Worker &w : workers_) {
        if (w.index != dead.index && w.phase != Worker::Phase::Dead)
            targets.push_back(&w);
    }

    for (std::string &key : unrecordedPointsOf(dead)) {
        // One reassignment per point: if its adoptive shard dies
        // too, the point goes to the leftover pile for the caller's
        // inline salvage instead of ping-ponging between corpses.
        if (targets.empty() ||
            !reassigned_once_.insert(key).second) {
            leftover_.push_back(std::move(key));
            continue;
        }
        Worker &target =
            *targets[static_cast<std::size_t>(reassign_cursor_++) %
                     targets.size()];
        target.extras.push_back(std::move(key));
        ++points_reassigned_;
        metrics::add(metrics::Counter::ShardReassigned);
    }
}

std::vector<std::string>
ShardSupervisor::unrecordedPointsOf(const Worker &w) const
{
    std::unordered_set<std::string> recorded;
    if (config_.recordedKeys) {
        for (std::string &key : config_.recordedKeys())
            recorded.insert(std::move(key));
    }
    std::vector<std::string> points;
    const auto take = [&](const std::vector<std::string> &keys) {
        for (const std::string &key : keys) {
            if (recorded.count(key) == 0)
                points.push_back(key);
        }
    };
    take(config_.assignment[static_cast<std::size_t>(w.index)]);
    take(w.extras);
    return points;
}

void
ShardSupervisor::terminateAll()
{
    bool any = false;
    for (Worker &w : workers_) {
        if (w.phase == Worker::Phase::Running && w.pid > 0) {
            ::kill(w.pid, SIGTERM);
            any = true;
        }
    }
    if (!any)
        return;

    // Grace period: workers checkpoint on SIGTERM and exit 143.
    const auto deadline = Clock::now() + std::chrono::seconds(5);
    while (Clock::now() < deadline) {
        bool alive = false;
        for (Worker &w : workers_) {
            if (w.phase != Worker::Phase::Running || w.pid <= 0)
                continue;
            int wstatus = 0;
            if (::waitpid(w.pid, &wstatus, WNOHANG) == w.pid) {
                w.pid = -1;
                w.phase = Worker::Phase::Done;
                w.interrupted = true;
                w.last_exit = WIFEXITED(wstatus)
                                  ? WEXITSTATUS(wstatus)
                                  : -WTERMSIG(wstatus);
            } else {
                alive = true;
            }
        }
        if (!alive)
            return;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    for (Worker &w : workers_) {
        if (w.phase != Worker::Phase::Running || w.pid <= 0)
            continue;
        ::kill(w.pid, SIGKILL);
        int wstatus = 0;
        ::waitpid(w.pid, &wstatus, 0);
        w.pid = -1;
        w.phase = Worker::Phase::Done;
        w.interrupted = true;
        w.last_exit = -SIGKILL;
    }
}

} // namespace syncperf::core
