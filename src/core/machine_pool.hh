/**
 * @file
 * Process-wide pool of warmed simulator machines and the decoded-
 * image materialization layer behind the warm-start fast path
 * (docs/performance.md, "Warm-start machine pool").
 *
 * Targets lease machines instead of constructing them: a lease
 * hands out an idle machine of the same (config, placement) pool
 * key when one is available -- its event-queue slab, container
 * capacities, and hash tables already sized by earlier experiments
 * -- and otherwise constructs a fresh machine that adopts the warm
 * capacity of the pool's template via Machine::cloneFrom(). Every
 * lease starts with an empty decoded-image map (clearImages()), so
 * which images a machine carries depends only on the experiment
 * running on it, never on lease scheduling; that is what keeps the
 * pool_clones / pool_cold_builds counters --jobs-invariant.
 *
 * materializeCpu()/materializeGpu() install the decoded image for a
 * key into a leased machine, preferring the on-disk snapshot
 * (sim/snapshot.hh) under the configured snapshot directory. An
 * in-process claim set serializes disk access per key: only the
 * first materialization of a key in this process reads the file
 * (snapshot_loads therefore counts unique keys with valid
 * preexisting images, a config-determined total), and the same
 * claimant writes the image back after a cold build so later
 * processes skip the decode. Invalid or torn files are rejected
 * cleanly (snapshot_rejects) and fall back to a full decode.
 */

#ifndef SYNCPERF_CORE_MACHINE_POOL_HH
#define SYNCPERF_CORE_MACHINE_POOL_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cpusim/machine.hh"
#include "gpusim/machine.hh"

namespace syncperf::core
{

class MachinePool
{
  public:
    struct Config
    {
        /** Lease/reuse machines at all (--no-machine-pool clears). */
        bool enabled = true;

        /** Directory for on-disk decoded-image snapshots; empty (the
         * default) disables all snapshot I/O. */
        std::string snapshot_dir;
    };

    /** The process-wide pool. */
    static MachinePool &global();

    /** Replace the pool configuration (campaign CLI). */
    void configure(Config cfg);

    Config config() const;
    bool enabled() const;

    /**
     * Drop every idle machine, template, and snapshot claim. Called
     * at campaign start so back-to-back campaigns in one process
     * (tests) observe the same cold pool a fresh process would.
     */
    void reset();

    /**
     * RAII handle on a leased machine. The machine returns to the
     * pool on destruction (or is simply destroyed when pooling was
     * bypassed). Movable, not copyable.
     */
    class CpuLease
    {
      public:
        CpuLease() = default;
        CpuLease(CpuLease &&) noexcept = default;
        CpuLease &operator=(CpuLease &&other) noexcept
        {
            release();
            machine_ = std::move(other.machine_);
            key_ = other.key_;
            pooled_ = std::exchange(other.pooled_, false);
            return *this;
        }
        CpuLease(const CpuLease &) = delete;
        CpuLease &operator=(const CpuLease &) = delete;
        ~CpuLease() { release(); }

        explicit operator bool() const { return machine_ != nullptr; }
        cpusim::CpuMachine &operator*() { return *machine_; }
        cpusim::CpuMachine *operator->() { return machine_.get(); }

      private:
        friend class MachinePool;
        void release();

        std::unique_ptr<cpusim::CpuMachine> machine_;
        std::uint64_t key_ = 0;
        bool pooled_ = false;
    };

    class GpuLease
    {
      public:
        GpuLease() = default;
        GpuLease(GpuLease &&) noexcept = default;
        GpuLease &operator=(GpuLease &&other) noexcept
        {
            release();
            machine_ = std::move(other.machine_);
            key_ = other.key_;
            pooled_ = std::exchange(other.pooled_, false);
            return *this;
        }
        GpuLease(const GpuLease &) = delete;
        GpuLease &operator=(const GpuLease &) = delete;
        ~GpuLease() { release(); }

        explicit operator bool() const { return machine_ != nullptr; }
        gpusim::GpuMachine &operator*() { return *machine_; }
        gpusim::GpuMachine *operator->() { return machine_.get(); }

      private:
        friend class MachinePool;
        void release();

        std::unique_ptr<gpusim::GpuMachine> machine_;
        std::uint64_t key_ = 0;
        bool pooled_ = false;
    };

    /**
     * Lease a machine for (cfg, affinity). @p use_pool false (the
     * protocol's machine_pool knob) bypasses reuse entirely: the
     * lease owns a cold machine and destroys it on release.
     */
    CpuLease acquireCpu(const cpusim::CpuConfig &cfg, Affinity affinity,
                        bool use_pool = true);

    /** GPU flavor of acquireCpu (no placement dimension). */
    GpuLease acquireGpu(const gpusim::GpuConfig &cfg,
                        bool use_pool = true);

    /**
     * Ensure @p machine has the decoded image for @p key, loading it
     * from the snapshot directory when this process's first touch of
     * the key finds a valid file, and decoding @p programs otherwise
     * (writing the result back for other processes when claimed).
     */
    void materializeCpu(cpusim::CpuMachine &machine, std::uint64_t key,
                        const std::vector<cpusim::CpuProgram> &programs);

    void materializeGpu(gpusim::GpuMachine &machine, std::uint64_t key,
                        const gpusim::GpuKernel &kernel);

    /** Digest of every CpuConfig field (image/pool key ingredient). */
    static std::uint64_t hashCpuConfig(const cpusim::CpuConfig &cfg);

    /** Digest of every GpuConfig field (image/pool key ingredient). */
    static std::uint64_t hashGpuConfig(const gpusim::GpuConfig &cfg);

  private:
    struct CpuSlot
    {
        /** First machine released under this key: kept forever as
         * the warm-capacity template, never leased again. */
        std::unique_ptr<cpusim::CpuMachine> tmpl;
        std::vector<std::unique_ptr<cpusim::CpuMachine>> idle;
    };
    struct GpuSlot
    {
        std::unique_ptr<gpusim::GpuMachine> tmpl;
        std::vector<std::unique_ptr<gpusim::GpuMachine>> idle;
    };

    void releaseCpu(std::uint64_t key,
                    std::unique_ptr<cpusim::CpuMachine> machine);
    void releaseGpu(std::uint64_t key,
                    std::unique_ptr<gpusim::GpuMachine> machine);

    mutable std::mutex mutex_;
    Config cfg_;
    std::unordered_map<std::uint64_t, CpuSlot> cpu_slots_;
    std::unordered_map<std::uint64_t, GpuSlot> gpu_slots_;
    std::unordered_set<std::uint64_t> cpu_claims_;
    std::unordered_set<std::uint64_t> gpu_claims_;
};

} // namespace syncperf::core

#endif // SYNCPERF_CORE_MACHINE_POOL_HH
