/**
 * @file
 * Implementation of the ordered executor.
 */

#include "executor.hh"

#include <algorithm>
#include <condition_variable>
#include <mutex>

#include "common/metrics.hh"

namespace syncperf::core
{

void
OrderedExecutor::run(ThreadPool *pool, std::vector<Job> jobs)
{
    if (jobs.empty())
        return;

    if (pool == nullptr || pool->size() <= 1) {
        // Serial fast path: run and commit each job back to back,
        // exactly like the pre-parallel campaign loop.
        for (Job &job : jobs) {
            if (CommitFn commit = job())
                commit();
        }
        return;
    }

    struct Slot
    {
        CommitFn commit;
        bool done = false;
    };

    std::mutex mutex;
    std::condition_variable finished;
    std::vector<Slot> slots(jobs.size());
    // Commit-queue depth: jobs finished but not yet committed. Its
    // high-water mark shows how far ahead of the committer the
    // workers run (metrics: executor_max_queue_depth).
    std::size_t done_count = 0;
    std::size_t committed_count = 0;
    std::size_t max_queue_depth = 0;

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        pool->submit([&, i] {
            CommitFn commit = jobs[i]();
            std::scoped_lock lock(mutex);
            slots[i].commit = std::move(commit);
            slots[i].done = true;
            ++done_count;
            max_queue_depth = std::max(max_queue_depth,
                                       done_count - committed_count);
            finished.notify_all();
        });
    }

    // Commit in index order, pipelined with still-running jobs.
    for (std::size_t i = 0; i < slots.size(); ++i) {
        CommitFn commit;
        {
            std::unique_lock lock(mutex);
            finished.wait(lock, [&] { return slots[i].done; });
            commit = std::move(slots[i].commit);
            ++committed_count;
        }
        if (commit)
            commit();
    }

    metrics::recordMax(metrics::Counter::ExecutorMaxQueueDepth,
                       static_cast<long long>(max_queue_depth));
}

} // namespace syncperf::core
