/**
 * @file
 * Implementation of the ordered executor.
 */

#include "executor.hh"

#include <condition_variable>
#include <mutex>

namespace syncperf::core
{

void
OrderedExecutor::run(ThreadPool *pool, std::vector<Job> jobs)
{
    if (jobs.empty())
        return;

    if (pool == nullptr || pool->size() <= 1) {
        // Serial fast path: run and commit each job back to back,
        // exactly like the pre-parallel campaign loop.
        for (Job &job : jobs) {
            if (CommitFn commit = job())
                commit();
        }
        return;
    }

    struct Slot
    {
        CommitFn commit;
        bool done = false;
    };

    std::mutex mutex;
    std::condition_variable finished;
    std::vector<Slot> slots(jobs.size());

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        pool->submit([&, i] {
            CommitFn commit = jobs[i]();
            std::scoped_lock lock(mutex);
            slots[i].commit = std::move(commit);
            slots[i].done = true;
            finished.notify_all();
        });
    }

    // Commit in index order, pipelined with still-running jobs.
    for (std::size_t i = 0; i < slots.size(); ++i) {
        CommitFn commit;
        {
            std::unique_lock lock(mutex);
            finished.wait(lock, [&] { return slots[i].done; });
            commit = std::move(slots[i].commit);
        }
        if (commit)
            commit();
    }
}

} // namespace syncperf::core
