/**
 * @file
 * The paper's baseline/test differencing protocol (Section III-IV).
 *
 * A primitive's cost is measured by timing a baseline function and a
 * test function that performs the primitive one extra time per inner
 * iteration, then subtracting median runtimes. This isolates the
 * primitive from all framework overhead (loops, calls, timing).
 */

#ifndef SYNCPERF_CORE_PROTOCOL_HH
#define SYNCPERF_CORE_PROTOCOL_HH

#include <functional>
#include <vector>

#include "core/measure_config.hh"

namespace syncperf::core
{

/**
 * One timed execution of a baseline or test function: returns the
 * runtime of every participating thread, in seconds.
 */
using TimedFunction = std::function<std::vector<double>()>;

/** Outcome of the full measurement procedure for one primitive. */
struct Measurement
{
    /** Median-of-runs cost of a single primitive execution, seconds.
     * May be ~0 (or slightly negative within noise) for free
     * primitives such as an atomic read. */
    double per_op_seconds = 0.0;

    /** Standard deviation of the per-run values. */
    double stddev_seconds = 0.0;

    /** The per-run values the median was taken over. */
    std::vector<double> run_values;

    /** Invalid (test < baseline) attempts that were re-tried. */
    int retries = 0;

    /**
     * Per-thread throughput in operations per second, the paper's
     * reporting metric (1 / runtime). Infinity when the measured
     * cost is zero or negative (primitive is free).
     */
    double opsPerSecondPerThread() const;
};

/**
 * Run the paper's measurement procedure.
 *
 * For each of cfg.runs runs, gather cfg.attempts valid
 * (baseline, test) pairs -- an attempt is valid when the maximum
 * test runtime across threads is at least the maximum baseline
 * runtime; invalid attempts are re-tried (Section IV). The run's
 * value is (median test - median baseline) / ops. The final value is
 * the median over runs.
 *
 * @param baseline Times cfg.opsPerMeasurement() baseline iterations.
 * @param test Same, with one extra primitive per iteration.
 */
Measurement measurePrimitive(const TimedFunction &baseline,
                             const TimedFunction &test,
                             const MeasurementConfig &cfg);

} // namespace syncperf::core

#endif // SYNCPERF_CORE_PROTOCOL_HH
