/**
 * @file
 * The paper's baseline/test differencing protocol (Section III-IV).
 *
 * A primitive's cost is measured by timing a baseline function and a
 * test function that performs the primitive one extra time per inner
 * iteration, then subtracting median runtimes. This isolates the
 * primitive from all framework overhead (loops, calls, timing).
 */

#ifndef SYNCPERF_CORE_PROTOCOL_HH
#define SYNCPERF_CORE_PROTOCOL_HH

#include <functional>
#include <string>
#include <vector>

#include "core/measure_config.hh"

namespace syncperf::core
{

/**
 * One timed execution of a baseline or test function: overwrites
 * @p out with the runtime of every participating thread, in seconds.
 * Fill-style so the protocol can hand every attempt the same reused
 * buffer instead of allocating a fresh vector per timing (the
 * simulator targets run hundreds of launches per sweep point).
 */
using TimedFunction = std::function<void(std::vector<double> &out)>;

/** Outcome of the full measurement procedure for one primitive. */
struct Measurement
{
    /** Median-of-runs cost of a single primitive execution, seconds.
     * May be ~0 (or slightly negative within noise) for free
     * primitives such as an atomic read. */
    double per_op_seconds = 0.0;

    /** Standard deviation of the per-run values. */
    double stddev_seconds = 0.0;

    /** The per-run values the median was taken over. */
    std::vector<double> run_values;

    /** Invalid (test < baseline) attempts that were re-tried. */
    int retries = 0;

    /** Coefficient of variation (stddev / |median|) of the final
     * per-run values; 0 for free primitives (|median| ~ 0). */
    double cov = 0.0;

    /** Full re-measurements triggered by the CoV noise gate. */
    int noise_retries = 0;

    /** False when no finite value could be produced (pathological
     * timing that exhausted the retry budget); @ref error says why.
     * Invalid measurements report NaN cost and throughput. */
    bool valid = true;

    /** Why the measurement is invalid; empty when valid. */
    std::string error;

    /**
     * Per-thread throughput in operations per second, the paper's
     * reporting metric (1 / runtime). Infinity when the measured
     * cost is zero or negative (primitive is free); NaN when the
     * measurement is invalid.
     */
    double opsPerSecondPerThread() const;
};

/**
 * Run the paper's measurement procedure.
 *
 * For each of cfg.runs runs, gather cfg.attempts valid
 * (baseline, test) pairs -- an attempt is valid when the maximum
 * test runtime across threads is at least the maximum baseline
 * runtime; invalid attempts are re-tried (Section IV). The run's
 * value is (median test - median baseline) / ops. The final value is
 * the median over runs.
 *
 * Non-finite runtimes (a pathological sample, e.g. injected by
 * sim::FaultInjector) also count as invalid attempts; when they
 * exhaust cfg.max_retries the returned Measurement has valid ==
 * false instead of terminating the process, so a campaign can
 * journal the failure and continue.
 *
 * When cfg.cov_gate > 0 and the per-run values are noisier than the
 * gate allows, the whole procedure is redone with doubled attempts
 * (bounded exponential backoff, at most cfg.max_noise_retries
 * times); the result records the retry count and the final CoV.
 *
 * When cfg.telemetry is set, the simulator targets accumulate probe
 * telemetry across every launch this procedure performs -- all runs,
 * all attempts, baseline and test programs, and any protocol or
 * noise retries. A telemetry sample therefore scales with the
 * repetition settings; it describes the whole measurement, not one
 * launch.
 *
 * @param baseline Times cfg.opsPerMeasurement() baseline iterations.
 * @param test Same, with one extra primitive per iteration.
 */
Measurement measurePrimitive(const TimedFunction &baseline,
                             const TimedFunction &test,
                             const MeasurementConfig &cfg);

} // namespace syncperf::core

#endif // SYNCPERF_CORE_PROTOCOL_HH
