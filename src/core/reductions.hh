/**
 * @file
 * The five CUDA maximum-reduction implementations of the paper's
 * Listing 1, expressed as GPU-model kernels.
 *
 * The paper uses these to show that primitive choice is
 * non-intuitive: Reduction 3 (block-scoped atomics) beats Reduction
 * 4 (hardware warp reduce), which beats Reduction 1 (plain global
 * atomics), which beats Reduction 2 (manual warp shuffles); and the
 * persistent-thread Reduction 5 beats them all by ~2.5x over
 * Reduction 2.
 */

#ifndef SYNCPERF_CORE_REDUCTIONS_HH
#define SYNCPERF_CORE_REDUCTIONS_HH

#include <string_view>
#include <vector>

#include "gpusim/machine.hh"

namespace syncperf::core
{

/** The five variants of Listing 1. */
enum class ReductionVariant
{
    GlobalAtomic = 1,    ///< Reduction 1: atomicMax per element
    WarpShuffle = 2,     ///< Reduction 2: shuffle tree + atomic per warp
    BlockAtomic = 3,     ///< Reduction 3: block atomics + one global
    WarpReduce = 4,      ///< Reduction 4: __reduce_max_sync + block atomic
    PersistentBlock = 5, ///< Reduction 5: grid-stride persistent threads
};

/** Display name, e.g. "Reduction 3 (block atomics)". */
std::string_view reductionName(ReductionVariant v);

/** A built kernel plus the launch geometry it expects. */
struct ReductionPlan
{
    gpusim::GpuKernel kernel;
    gpusim::LaunchConfig launch;
    long elements = 0;
};

/**
 * Build the kernel + launch for one variant.
 *
 * @param variant Which of the five implementations.
 * @param cfg Target device (sets the persistent grid size and
 *        whether __reduce_max_sync exists).
 * @param n_elements Input size; must be a multiple of
 *        threads_per_block.
 * @param threads_per_block Block size (the paper's listing pattern;
 *        1024 by default).
 */
ReductionPlan buildReduction(ReductionVariant variant,
                             const gpusim::GpuConfig &cfg,
                             long n_elements,
                             int threads_per_block = 1024);

/** Timing of one executed variant. */
struct ReductionTiming
{
    ReductionVariant variant{};
    sim::Tick cycles = 0;
    double seconds = 0.0;
    double elements_per_second = 0.0;
};

/**
 * Run @p variant on a fresh machine and report its runtime.
 */
ReductionTiming runReduction(ReductionVariant variant,
                             const gpusim::GpuConfig &cfg,
                             long n_elements,
                             int threads_per_block = 1024);

/**
 * Run every variant supported by @p cfg (Reduction 4 needs compute
 * capability 8.0) and return timings in variant order.
 */
std::vector<ReductionTiming> runAllReductions(
    const gpusim::GpuConfig &cfg, long n_elements,
    int threads_per_block = 1024);

} // namespace syncperf::core

#endif // SYNCPERF_CORE_REDUCTIONS_HH
