/**
 * @file
 * Implementation of the recommendation rules.
 */

#include "recommend.hh"

#include <algorithm>
#include <cmath>

#include "common/fmt.hh"
#include "common/logging.hh"

namespace syncperf::core
{
namespace
{

/** Index of the first x >= value, clamped into range. */
std::size_t
indexAtOrAbove(std::span<const int> xs, int value)
{
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (xs[i] >= value)
            return i;
    }
    return xs.size() - 1;
}

/** First index whose value drops below frac * first finite value. */
std::size_t
kneeIndex(std::span<const double> ys, double frac)
{
    const double reference = ys.front();
    for (std::size_t i = 1; i < ys.size(); ++i) {
        if (ys[i] < frac * reference)
            return i;
    }
    return ys.size();
}

double
geomean(std::span<const double> ys)
{
    double acc = 0.0;
    std::size_t n = 0;
    for (double y : ys) {
        if (std::isfinite(y) && y > 0.0) {
            acc += std::log(y);
            ++n;
        }
    }
    return n ? std::exp(acc / static_cast<double>(n)) : 0.0;
}

} // namespace

Finding
barrierPlateaus(std::span<const int> threads,
                std::span<const double> throughput)
{
    SYNCPERF_ASSERT(threads.size() == throughput.size() &&
                    threads.size() >= 4);
    // Compare the decay before ~8 threads with the decay after.
    const std::size_t mid = indexAtOrAbove(threads, 8);
    const double early_drop = throughput.front() / throughput[mid];
    const double late_drop = throughput[mid] / throughput.back();

    Finding f;
    f.id = "omp-1";
    f.recommendation =
        "Barriers are not much cheaper at low thread counts; their "
        "per-thread cost stabilizes, so they are not a growing concern "
        "at scale.";
    f.supported = early_drop > 1.2 && late_drop < early_drop &&
                  late_drop < 1.6;
    f.evidence = format(
        "throughput falls {:.2f}x from {} to {} threads but only "
        "{:.2f}x from {} to {} threads",
        early_drop, threads.front(), threads[mid], late_drop,
        threads[mid], threads.back());
    return f;
}

Finding
contendedAtomicsCollapse(std::span<const int> threads,
                         std::span<const double> throughput)
{
    SYNCPERF_ASSERT(threads.size() == throughput.size() &&
                    threads.size() >= 2);
    const double drop = throughput.front() / throughput.back();

    Finding f;
    f.id = "omp-2";
    f.recommendation =
        "Avoid atomic updates/writes by many threads to one memory "
        "location; per-thread throughput collapses with the thread "
        "count.";
    f.supported = drop > 3.0;
    f.evidence = format(
        "per-thread throughput at {} threads is {:.1f}x lower than at "
        "{} threads",
        threads.back(), drop, threads.front());
    return f;
}

Finding
paddingRemovesFalseSharing(std::span<const int> strides,
                           std::span<const double> throughput,
                           int elems_per_line)
{
    SYNCPERF_ASSERT(strides.size() == throughput.size() &&
                    !strides.empty());
    // Find the first stride with no false sharing and compare.
    double best_shared = 0.0, best_padded = 0.0;
    for (std::size_t i = 0; i < strides.size(); ++i) {
        if (strides[i] < elems_per_line)
            best_shared = std::max(best_shared, throughput[i]);
        else
            best_padded = std::max(best_padded, throughput[i]);
    }

    Finding f;
    f.id = "omp-3";
    f.recommendation =
        "Pad or stride per-thread data so that different threads' "
        "elements never share a cache line.";
    f.supported = best_padded > 2.0 * best_shared && best_shared > 0.0;
    f.evidence = format(
        "stride >= {} elements (one line) is {:.1f}x faster than the "
        "best false-sharing stride",
        elems_per_line,
        best_shared > 0.0 ? best_padded / best_shared : 0.0);
    return f;
}

Finding
atomicReadIsFree(double per_op_seconds, double plain_op_seconds)
{
    Finding f;
    f.id = "omp-4";
    f.recommendation =
        "Atomic reads add no measurable latency over plain reads and "
        "can be used wherever prudent.";
    f.supported = per_op_seconds <= 0.05 * plain_op_seconds;
    f.evidence = format(
        "measured extra cost {:.3e} s vs plain-op scale {:.3e} s",
        per_op_seconds, plain_op_seconds);
    return f;
}

Finding
criticalSlowerThanAtomic(std::span<const double> atomic_thr,
                         std::span<const double> critical_thr)
{
    SYNCPERF_ASSERT(atomic_thr.size() == critical_thr.size() &&
                    !atomic_thr.empty());
    std::size_t slower_points = 0;
    for (std::size_t i = 0; i < atomic_thr.size(); ++i) {
        if (critical_thr[i] < atomic_thr[i])
            ++slower_points;
    }
    const double ratio = geomean(atomic_thr) / geomean(critical_thr);

    Finding f;
    f.id = "omp-5";
    f.recommendation =
        "Use critical sections only when no atomic alternative exists; "
        "the locking overhead makes them strictly slower.";
    f.supported = slower_points == atomic_thr.size() && ratio > 1.5;
    f.evidence = format(
        "critical section slower at {}/{} thread counts; atomic is "
        "{:.1f}x faster on average",
        slower_points, atomic_thr.size(), ratio);
    return f;
}

Finding
hyperthreadingIsFine(std::span<const int> threads,
                     std::span<const double> throughput,
                     int physical_cores)
{
    SYNCPERF_ASSERT(threads.size() == throughput.size());
    const std::size_t at_cores = indexAtOrAbove(threads, physical_cores);
    const double at = throughput[at_cores];
    const double end = throughput.back();

    Finding f;
    f.id = "omp-7";
    f.recommendation =
        "Hyperthreads do not significantly slow down synchronization; "
        "using them is fine.";
    f.supported = end > 0.55 * at;
    f.evidence = format(
        "per-thread throughput at {} threads is {:.0f}% of the value "
        "at the {}-core boundary",
        threads.back(), at > 0.0 ? 100.0 * end / at : 0.0,
        physical_cores);
    return f;
}

Finding
syncwarpFlatterThanSyncthreads(std::span<const double> syncthreads_thr,
                               std::span<const double> syncwarp_thr)
{
    SYNCPERF_ASSERT(syncthreads_thr.size() == syncwarp_thr.size() &&
                    syncthreads_thr.size() >= 2);
    const double st_drop = syncthreads_thr.front() / syncthreads_thr.back();
    const double sw_drop = syncwarp_thr.front() / syncwarp_thr.back();

    Finding f;
    f.id = "cuda-1/2";
    f.recommendation =
        "__syncthreads() slows with the number of warps (prefer "
        "smaller blocks in barrier-heavy code); __syncwarp() is nearly "
        "free at any scale.";
    f.supported = st_drop > 2.0 * sw_drop;
    f.evidence = format(
        "__syncthreads() throughput falls {:.1f}x across the sweep vs "
        "{:.1f}x for __syncwarp()",
        st_drop, sw_drop);
    return f;
}

Finding
intAtomicsFastest(std::span<const double> int_thr,
                  std::span<const double> other_thr,
                  std::string other_label)
{
    SYNCPERF_ASSERT(int_thr.size() == other_thr.size() &&
                    !int_thr.empty());
    std::size_t faster = 0;
    for (std::size_t i = 0; i < int_thr.size(); ++i) {
        if (int_thr[i] >= other_thr[i])
            ++faster;
    }
    const double ratio = geomean(int_thr) / geomean(other_thr);

    Finding f;
    f.id = "cuda-3";
    f.recommendation =
        "Prefer int for GPU atomics; the other data types pay more at "
        "the atomic units.";
    f.supported = faster == int_thr.size() && ratio > 1.2;
    f.evidence = format(
        "int at least as fast as {} at {}/{} points ({:.1f}x on "
        "average)",
        other_label, faster, int_thr.size(), ratio);
    return f;
}

Finding
fenceCostIsFlat(std::span<const double> throughput)
{
    SYNCPERF_ASSERT(throughput.size() >= 2);
    double lo = throughput.front(), hi = throughput.front();
    for (double t : throughput) {
        lo = std::min(lo, t);
        hi = std::max(hi, t);
    }

    Finding f;
    f.id = "cuda-6";
    f.recommendation =
        "__threadfence() overhead is constant; use fences as needed "
        "without regard for thread or block count.";
    // "Fairly constant" in the paper's words: the whole sweep stays
    // within a small factor, versus the order-of-magnitude collapse
    // of the contended atomics.
    f.supported = hi <= 3.0 * lo;
    f.evidence = format(
        "throughput spans only {:.2f}x across the whole sweep",
        lo > 0.0 ? hi / lo : 0.0);
    return f;
}

Finding
wideShflKneesEarlier(std::span<const int> threads,
                     std::span<const double> thr32,
                     std::span<const double> thr64)
{
    SYNCPERF_ASSERT(threads.size() == thr32.size() &&
                    threads.size() == thr64.size());
    const std::size_t knee32 = kneeIndex(thr32, 0.85);
    const std::size_t knee64 = kneeIndex(thr64, 0.85);

    Finding f;
    f.id = "cuda-7";
    f.recommendation =
        "Warp shuffles are fast but lose throughput when the SM fills "
        "up -- at half the thread count for 8-byte types. Still prefer "
        "them over memory traffic.";
    f.supported = knee64 < knee32;
    f.evidence = format(
        "64-bit shuffle throughput drops at {} threads vs {} threads "
        "for 32-bit",
        knee64 < threads.size() ? threads[knee64] : -1,
        knee32 < threads.size() ? threads[knee32] : -1);
    return f;
}

std::string
renderFindings(std::span<const Finding> findings)
{
    std::string out;
    for (const auto &f : findings) {
        out += format("[{}] {}\n    {}\n    evidence: {}\n", f.id,
                      f.supported ? "SUPPORTED" : "NOT SUPPORTED",
                      f.recommendation, f.evidence);
    }
    return out;
}

} // namespace syncperf::core
