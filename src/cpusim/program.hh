/**
 * @file
 * Thread-program IR interpreted by the CPU machine.
 *
 * A program is one inner-loop iteration of the paper's measurement
 * template (Listing 2): the machine repeats the body a configured
 * number of times, preceded by warmup iterations and an alignment
 * barrier, mirroring the template's structure.
 */

#ifndef SYNCPERF_CPUSIM_PROGRAM_HH
#define SYNCPERF_CPUSIM_PROGRAM_HH

#include <cstdint>
#include <vector>

#include "common/dtype.hh"

namespace syncperf::cpusim
{

/** Operation kinds understood by the CPU machine. */
enum class CpuOpKind
{
    Load,         ///< plain load
    Store,        ///< plain store
    AtomicLoad,   ///< #pragma omp atomic read
    AtomicStore,  ///< #pragma omp atomic write
    AtomicRmw,    ///< #pragma omp atomic update / capture
    Fence,        ///< #pragma omp flush
    Barrier,      ///< #pragma omp barrier (team wide)
    LockAcquire,  ///< enter critical section
    LockRelease,  ///< leave critical section
    Alu,          ///< private arithmetic
};

/** One operation. Addresses are flat simulated byte addresses. */
struct CpuOp
{
    CpuOpKind kind = CpuOpKind::Alu;
    std::uint64_t addr = 0;
    DataType dtype = DataType::Int32;
    int lock_id = 0;
};

/** One software thread's repeated inner-loop body. */
struct CpuProgram
{
    std::vector<CpuOp> body;
    long iterations = 1;   ///< timed repetitions of the body
};

} // namespace syncperf::cpusim

#endif // SYNCPERF_CPUSIM_PROGRAM_HH
