/**
 * @file
 * Mapping of software threads to hardware threads under the paper's
 * thread-affinity policies.
 */

#ifndef SYNCPERF_CPUSIM_AFFINITY_HH
#define SYNCPERF_CPUSIM_AFFINITY_HH

#include <vector>

#include "common/dtype.hh"
#include "cpusim/cpu_config.hh"

namespace syncperf::cpusim
{

/** Placement of one software thread. */
struct HwPlace
{
    int core = 0;       ///< global core index
    int smt_slot = 0;   ///< hardware thread within the core
    int socket = 0;
    int complex_id = 0; ///< fast coherence domain (CCX / socket mesh)

    bool
    operator==(const HwPlace &) const = default;
};

/**
 * Compute the placement of @p n_threads software threads.
 *
 * - Close packs consecutive threads onto SMT siblings of consecutive
 *   cores (core0.t0, core0.t1, core1.t0, ...).
 * - Spread distributes threads across sockets and cores first and
 *   only reuses SMT siblings once every core is occupied.
 * - System resembles the Linux scheduler's steady state: distinct
 *   cores in natural order, then SMT siblings.
 *
 * @param cfg Machine topology.
 * @param policy Placement policy.
 * @param n_threads Team size; must not exceed cfg.totalHwThreads().
 */
std::vector<HwPlace> mapThreads(const CpuConfig &cfg, Affinity policy,
                                int n_threads);

} // namespace syncperf::cpusim

#endif // SYNCPERF_CPUSIM_AFFINITY_HH
