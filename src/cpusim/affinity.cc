/**
 * @file
 * Implementation of affinity mapping.
 */

#include "affinity.hh"

#include "common/logging.hh"

namespace syncperf::cpusim
{
namespace
{

HwPlace
makePlace(const CpuConfig &cfg, int core, int smt_slot)
{
    HwPlace p;
    p.core = core;
    p.smt_slot = smt_slot;
    p.socket = core / cfg.cores_per_socket;
    p.complex_id = core / cfg.cores_per_complex;
    return p;
}

} // namespace

std::vector<HwPlace>
mapThreads(const CpuConfig &cfg, Affinity policy, int n_threads)
{
    SYNCPERF_ASSERT(n_threads >= 1);
    if (n_threads > cfg.totalHwThreads()) {
        fatal("{} threads exceed the {} hardware threads of {}",
              n_threads, cfg.totalHwThreads(), cfg.name);
    }

    const int cores = cfg.totalCores();
    std::vector<HwPlace> out;
    out.reserve(n_threads);

    switch (policy) {
      case Affinity::Close:
        // SMT siblings first, then the next core.
        for (int t = 0; t < n_threads; ++t) {
            out.push_back(makePlace(cfg, t / cfg.threads_per_core,
                                    t % cfg.threads_per_core));
        }
        break;

      case Affinity::Spread: {
        // Interleave sockets so threads land as far apart as possible,
        // filling SMT slot 0 on every core before slot 1.
        for (int t = 0; t < n_threads; ++t) {
            const int slot = t / cores;
            const int idx = t % cores;
            const int socket = idx % cfg.sockets;
            const int core_in_socket = idx / cfg.sockets;
            const int core = socket * cfg.cores_per_socket + core_in_socket;
            out.push_back(makePlace(cfg, core, slot));
        }
        break;
      }

      case Affinity::System:
        // Distinct cores in natural order, then SMT siblings.
        for (int t = 0; t < n_threads; ++t)
            out.push_back(makePlace(cfg, t % cores, t / cores));
        break;
    }
    return out;
}

} // namespace syncperf::cpusim
