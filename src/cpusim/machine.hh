/**
 * @file
 * Cycle-approximate multicore CPU machine.
 *
 * Executes one CpuProgram per software thread against a line-granular
 * coherence model. The mechanisms implemented here are the ones the
 * paper uses to explain its OpenMP results:
 *
 * - exclusive cache-line ownership with a serialized per-line
 *   occupancy quantum (contended atomics collapse as 1/T);
 * - 64-byte line granularity (false sharing at small strides);
 * - SMT siblings sharing an L1 (no false sharing within a core, mild
 *   issue-slot contention);
 * - local vs remote (cross-complex/socket) transfer latencies;
 * - per-type atomic RMW costs (integer fast, floating point slow);
 * - store-buffer drain for fences, expensive only when the pending
 *   store's line has been stolen (false sharing);
 * - a spin-then-futex barrier whose OS wake constant dominates at
 *   high thread counts (the paper's plateau);
 * - FIFO lock handoff for critical sections.
 *
 * Execution uses precompiled dispatch: run() decodes every program
 * once into a dense handler+operand array (config costs hoisted,
 * cache lines and locks interned to dense indices), and the event
 * loop then jumps straight into per-op handlers with no switch and
 * no hash lookups. Event ordering is identical to the historical
 * switch interpreter, so results stay bit-for-bit reproducible.
 *
 * Decoded programs can further be captured as immutable
 * DecodedImages keyed by the caller's config hash: run() with a key
 * skips decode and interning entirely, and images serialize to the
 * sim/snapshot on-disk format so other processes load past decoding
 * (core/machine_pool orchestrates both).
 */

#ifndef SYNCPERF_CPUSIM_MACHINE_HH
#define SYNCPERF_CPUSIM_MACHINE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/dtype.hh"
#include "common/rng.hh"
#include "common/status.hh"
#include "cpusim/affinity.hh"
#include "cpusim/cpu_config.hh"
#include "cpusim/program.hh"
#include "sim/event_queue.hh"
#include "sim/loop_batch.hh"
#include "sim/stat.hh"

namespace syncperf::cpusim
{

/** Outcome of one CpuMachine::run() invocation. */
struct CpuRunResult
{
    /** Timed-region duration of each software thread, in cycles. */
    std::vector<sim::Tick> thread_cycles;

    /** Tick at which the last thread finished. */
    sim::Tick total_cycles = 0;
};

/**
 * One lane of a multi-lane lockstep run (CpuMachine::runLanes).
 * Lane 0 is the reference: every other lane either proves it would
 * perform the exact walk the reference performs (identical decoded
 * image, seed, and iteration schedule) and shares that single walk,
 * or is peeled into its own single-lane run.
 */
struct CpuLaneSpec
{
    const std::vector<CpuProgram> *programs = nullptr;
    std::uint64_t seed = 1;       ///< reseed() value for this lane
    std::uint64_t decode_key = 0; ///< cached-image key (0 = decode)
};

/** Per-lane outcome of CpuMachine::runLanes(). */
struct CpuLaneOutcome
{
    CpuRunResult result;
    sim::StatSet stats;
    sim::LoopBatchCounters loop_batch;
    /** True when this lane shared the reference lane's walk (its
     * result/stats are copies of that walk's SoA slot); false when
     * it was peeled and simulated on its own. */
    bool in_step = false;
};

/**
 * The machine. One instance simulates one program launch at a time;
 * run() fully re-initializes, so an instance may be reused for
 * independent launches (reseed() between launches restores the
 * fresh-machine jitter stream while keeping warm buffers).
 */
class CpuMachine
{
  public:
    /**
     * @param cfg Topology and timing parameters.
     * @param affinity Software-to-hardware thread placement policy.
     * @param seed Seed for the deterministic jitter stream.
     */
    CpuMachine(CpuConfig cfg, Affinity affinity, std::uint64_t seed = 1);

    /** One decoded op: handler plus hoisted operands. */
    struct DecodedOp
    {
        /** Receives the post-issue start tick; finishes or blocks. */
        void (CpuMachine::*handler)(int tid, const DecodedOp &op,
                                    Tick start) = nullptr;
        int line = -1;      ///< interned cache-line index
        int lock = -1;      ///< interned lock index
        Tick alu_cost = 0;  ///< aluCost(kind, dtype), hoisted
    };

    /**
     * Immutable decoded form of one program set: the dense
     * handler+operand arrays plus the interned line/lock universe
     * they index. Built once per decode key by buildImage(), shared
     * by reference across launches (and serializable to
     * sim/snapshot images via encodeImage()/installImage()), so a
     * warm machine re-runs a known program set without re-decoding.
     */
    struct DecodedImage
    {
        std::uint64_t key = 0;
        int n_lines = 0;    ///< interned cache-line universe size
        int n_locks = 0;    ///< interned lock universe size
        std::vector<std::vector<DecodedOp>> code; ///< one per thread

        /**
         * Content digest of the decoded form (handler ids, interned
         * operands, hoisted costs -- everything run() executes, and
         * nothing it does not, so raw addresses or data types that
         * decode to the same image share a fingerprint). Equal
         * fingerprints mean equal walks for equal (seed, iterations,
         * warmup): the lane-lockstep agreement test.
         */
        std::uint64_t fingerprint = 0;
    };

    /**
     * Execute one program per software thread.
     *
     * Mirrors the paper's Listing 2: every thread performs
     * @p warmup_iterations of its body, joins an alignment barrier,
     * then executes prog.iterations timed body repetitions.
     *
     * @param programs One program per software thread (team size =
     *                 programs.size()).
     * @param warmup_iterations Untimed body repetitions before the
     *                          alignment barrier.
     * @param decode_key 0 decodes @p programs from scratch (the cold
     *                   path); a nonzero key reuses the cached image
     *                   built by buildImage()/installImage() under
     *                   that key, skipping decode and interning. The
     *                   caller guarantees the image was built from an
     *                   identical (config, programs) pair; results
     *                   are bit-identical to the cold path.
     */
    CpuRunResult run(const std::vector<CpuProgram> &programs,
                     int warmup_iterations = 2,
                     std::uint64_t decode_key = 0);

    /**
     * Execute @p lanes in lockstep. Lane 0 is the reference and is
     * always simulated; every later lane whose decoded-image
     * fingerprint, seed, and iteration schedule match the
     * reference's shares the reference walk -- its outcome slot (the
     * per-lane SoA state: cycle stamps, stat set, loop counters) is
     * filled from that single dispatch walk without re-simulating.
     * A lane that disagrees on any of the three is peeled into an
     * ordinary single-lane run (counted in lane_peels). Every lane's
     * outcome is bit-identical to running it alone.
     */
    std::vector<CpuLaneOutcome>
    runLanes(const std::vector<CpuLaneSpec> &lanes,
             int warmup_iterations = 2);

    /** True when an image is cached under @p key. */
    bool hasImage(std::uint64_t key) const
    {
        return images_.find(key) != images_.end();
    }

    /** Fingerprint of the image cached under @p key (0 if absent). */
    std::uint64_t
    imageFingerprint(std::uint64_t key) const
    {
        const auto it = images_.find(key);
        return it == images_.end() ? 0 : it->second->fingerprint;
    }

    /** Decode @p programs and cache the image under @p key (!= 0). */
    void buildImage(std::uint64_t key,
                    const std::vector<CpuProgram> &programs);

    /**
     * Validate a deserialized snapshot payload (handler ids, interned
     * index bounds, operand ranges) and cache it under @p key.
     * Malformed payloads leave the machine untouched.
     */
    Status installImage(std::uint64_t key,
                        const std::vector<std::uint64_t> &words);

    /** Serialize the image cached under @p key into snapshot words. */
    void encodeImage(std::uint64_t key,
                     std::vector<std::uint64_t> &out) const;

    /** Drop every cached image (machine-pool lease hygiene). */
    void clearImages() { images_.clear(); }

    /**
     * Adopt @p tmpl's warmed capacity -- the sized event-queue slot
     * table and container reserves -- without copying any dynamic
     * state, so a freshly constructed machine skips the incremental
     * allocations of its first run. O(dirty bytes): nothing decoded
     * or simulated is transferred, and results are unaffected.
     */
    void cloneFrom(const CpuMachine &tmpl);

    /**
     * Restart the jitter stream as if the machine had been freshly
     * constructed with @p seed: a reused machine produces the exact
     * cycle counts a new CpuMachine(cfg, affinity, seed) would.
     */
    void reseed(std::uint64_t seed);

    /** Activity counters from the most recent run. */
    const sim::StatSet &stats() const { return stats_; }

    const CpuConfig &config() const { return cfg_; }

    /** The placement computed for the last run's team. */
    const std::vector<HwPlace> &places() const { return places_; }

    /**
     * Enable/disable steady-state loop batching (default on). The
     * run's results are bit-identical either way -- batching only
     * skips re-deriving state the detector has proven periodic
     * (docs/performance.md, "Loop batching").
     */
    void setLoopBatch(bool on) { loop_batch_ = on; }

    /** Loop-batching activity of the most recent run. */
    const sim::LoopBatchCounters &loopBatch() const { return lb_; }

    /**
     * Pin the loop-batching horizon at @p when for every subsequent
     * run(): no batch window jumps across the pin, and boundaries at
     * or past it single-step (the fault-injection / test hook;
     * sim::EventQueue::no_tick, the default, unpins). Results stay
     * bit-identical -- the pin only shrinks what may be batched.
     */
    void setBatchHorizonPin(Tick when) { lb_pin_ = when; }

    /** The machine's event queue (test hook for horizon pinning). */
    sim::EventQueue &eventQueue() { return eq_; }

  private:
    /** Coherence state of one cache line. */
    struct Line
    {
        int owner_core = -1;       ///< exclusive owner, or -1
        bool exclusive = false;
        std::uint64_t copies = 0;  ///< bitmask of cores with a copy
        Tick free_at = 0;          ///< next exclusive-service slot
    };

    /** One blocked lock acquirer, with the tick it blocked at. */
    struct LockWaiter
    {
        int tid;
        Tick since;
    };

    /** FIFO lock used for critical sections. */
    struct LockState
    {
        bool held = false;
        std::deque<LockWaiter> waiters;
    };

    /** Per-thread execution cursor. */
    struct ThreadCtx
    {
        const std::vector<DecodedOp> *code = nullptr;
        HwPlace place;
        long iters_left = 0;
        std::size_t pc = 0;
        bool timed = false;
        bool done = false;
        /** A barrier-release/lock-grant continuation is pending for
         * this thread (distinguishes its queued event from a plain
         * step for the loop-batch fingerprint). */
        bool resume = false;
        Tick start_tick = 0;
        Tick end_tick = 0;
        int pending_store_line = -1;  ///< interned index
        bool has_pending_store = false;
    };

    /** Dense index for the cache line containing @p addr. */
    int internLine(std::uint64_t addr);
    int internLock(int lock_id);
    DecodedOp decodeOp(const CpuOp &op);

    /** Decode @p programs into @p img (fresh interning universe). */
    void decodeImageInto(const std::vector<CpuProgram> &programs,
                         DecodedImage &img);

    /** Digest over the decoded arrays (the serialization words). */
    static std::uint64_t fingerprintOf(const DecodedImage &img);

    /** Fingerprint of one lane's decoded form (cached or fresh). */
    std::uint64_t laneFingerprint(const CpuLaneSpec &lane);

    /** Stable handler order for serialized images (append-only: the
     * on-disk snapshot format indexes into this table). */
    using OpHandler = void (CpuMachine::*)(int, const DecodedOp &,
                                           Tick);
    static const OpHandler *handlerTable(std::size_t &count);

    Tick transferLatency(const Line &line, const HwPlace &to);

    /** Reserve a slot at the machine-wide ordering point. */
    Tick coherencePointSlot(Tick ready);
    Tick aluCost(CpuOpKind kind, DataType dtype) const;
    Tick barrierLatency(int team_size);

    /** Run ops for thread @p tid starting at the queue's now(). */
    void step(int tid);

    /** Advance past the current op and schedule the next step. */
    void finishOp(int tid, Tick done);

    /** Handle team-wide barrier arrival; returns true if blocked. */
    void arriveBarrier(int tid, Tick when);

    // --- Decoded-op handlers (one per CpuOpKind family) ---
    void execLoad(int tid, const DecodedOp &op, Tick start);
    void execStore(int tid, const DecodedOp &op, Tick start);
    void execAtomicStore(int tid, const DecodedOp &op, Tick start);
    void execAtomicRmw(int tid, const DecodedOp &op, Tick start);
    void execFence(int tid, const DecodedOp &op, Tick start);
    void execBarrier(int tid, const DecodedOp &op, Tick start);
    void execLockAcquire(int tid, const DecodedOp &op, Tick start);
    void execLockRelease(int tid, const DecodedOp &op, Tick start);
    void execAlu(int tid, const DecodedOp &op, Tick start);

    /** Acquire exclusive ownership for a store-family op. */
    Tick acquireExclusive(Line &line, const HwPlace &place, Tick start,
                          Tick alu_cost, bool ordering_point);

    // --- Steady-state loop batching (docs/performance.md) ---

    /**
     * Encode the complete dynamic machine state relative to the
     * trigger-boundary tick @p base: live timing registers as exact
     * offsets, provably dead ones canonicalized, the pending event
     * set in execution order, and the rng state verbatim. Equal
     * encodings at two boundaries prove the machine's dynamics are
     * periodic with the boundaries' tick distance as the period.
     */
    void encodeState(Tick base, std::vector<std::uint64_t> &out) const;

    /**
     * Called at every timed body-iteration boundary of thread
     * @p tid, before its iteration counter is decremented. When the
     * boundary fingerprint matches the previous one, jump K whole
     * periods algebraically and return the tick shift (0 when the
     * check fell back to single-stepping).
     */
    Tick maybeBatch(int tid, Tick done);

    /** Add @p delta to every live absolute-time register. */
    void shiftTimes(Tick delta);

    CpuConfig cfg_;
    Affinity affinity_;
    Pcg32 rng_;
    sim::EventQueue eq_;
    sim::StatSet stats_;

    std::vector<ThreadCtx> threads_;
    std::vector<HwPlace> places_;
    std::vector<Tick> core_free_;
    std::vector<std::vector<DecodedOp>> decoded_;
    std::vector<Line> lines_;
    std::vector<LockState> locks_;
    std::unordered_map<std::uint64_t, int> line_index_;
    std::unordered_map<int, int> lock_index_;
    Tick coherence_point_free_ = 0;

    /** Decoded images by key; shared so clones stay O(dirty bytes). */
    std::unordered_map<std::uint64_t,
                       std::shared_ptr<const DecodedImage>>
        images_;

    std::vector<int> warm_left_;

    // Team-wide barrier (CpuOpKind::Barrier) rendezvous state.
    int barrier_arrivals_ = 0;
    Tick barrier_first_arrival_ = 0;
    Tick barrier_last_arrival_ = 0;
    std::vector<int> barrier_waiters_;

    // Alignment join between warmup and the timed region.
    int align_arrivals_ = 0;
    Tick align_last_ = 0;
    std::vector<int> align_waiters_;

    // Steady-state loop batching. The first thread to complete a
    // timed body iteration becomes the trigger; its boundaries drive
    // the periodicity check.
    bool loop_batch_ = true;
    /** Sticky horizon pin re-applied to the queue by every run(). */
    Tick lb_pin_ = sim::EventQueue::no_tick;
    int lb_trigger_ = -1;
    bool lb_armed_ = false;        ///< lb_prev_* describe a boundary
    long lb_skip_ = 0;             ///< boundaries left before retrying
    long lb_penalty_ = 1;          ///< next backoff length (doubles)
    Tick lb_prev_boundary_ = 0;
    std::uint64_t lb_prev_rng_ = 0;
    std::vector<std::uint64_t> lb_prev_fp_;
    std::vector<std::uint64_t> lb_fp_;  ///< scratch for the current fp
    std::vector<long> lb_prev_iters_;
    sim::StatSnapshot lb_prev_stats_;
    sim::LoopBatchCounters lb_;
};

} // namespace syncperf::cpusim

#endif // SYNCPERF_CPUSIM_MACHINE_HH
