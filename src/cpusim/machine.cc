/**
 * @file
 * Implementation of the multicore CPU machine.
 */

#include "machine.hh"

#include <algorithm>
#include <bit>
#include <iterator>
#include <limits>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "sim/snapshot.hh"

namespace syncperf::cpusim
{
namespace
{

/** Pcg32 stream selector for the CPU jitter model. */
constexpr std::uint64_t rng_stream = 0x9e3779b97f4a7c15ULL;

} // namespace

CpuMachine::CpuMachine(CpuConfig cfg, Affinity affinity, std::uint64_t seed)
    : cfg_(std::move(cfg)), affinity_(affinity), rng_(seed, rng_stream)
{
}

void
CpuMachine::reseed(std::uint64_t seed)
{
    rng_ = Pcg32(seed, rng_stream);
}

int
CpuMachine::internLine(std::uint64_t addr)
{
    const std::uint64_t key = addr / cfg_.cache_line_bytes;
    const auto [it, fresh] =
        line_index_.try_emplace(key, static_cast<int>(lines_.size()));
    if (fresh)
        lines_.emplace_back();
    return it->second;
}

int
CpuMachine::internLock(int lock_id)
{
    const auto [it, fresh] =
        lock_index_.try_emplace(lock_id, static_cast<int>(locks_.size()));
    if (fresh)
        locks_.emplace_back();
    return it->second;
}

Tick
CpuMachine::transferLatency(const Line &line, const HwPlace &to)
{
    Tick base;
    if (line.owner_core < 0 && line.copies == 0) {
        base = cfg_.remote_transfer;  // memory fetch
        stats_.inc(sim::Probe::CpuMemFetch);
    } else {
        const int src = line.owner_core >= 0
            ? line.owner_core
            : std::countr_zero(line.copies);
        const int src_complex = src / cfg_.cores_per_complex;
        if (src == to.core) {
            base = cfg_.l1_hit_latency;
        } else if (src_complex == to.complex_id) {
            base = cfg_.local_transfer;
            stats_.inc(sim::Probe::CpuTransferLocal);
        } else {
            base = cfg_.remote_transfer;
            stats_.inc(sim::Probe::CpuTransferRemote);
        }
    }
    if (cfg_.jitter_frac > 0.0) {
        base = static_cast<Tick>(
            static_cast<double>(base) *
            (1.0 + cfg_.jitter_frac * rng_.uniform()));
    }
    return base;
}

Tick
CpuMachine::coherencePointSlot(Tick ready)
{
    const Tick slot = std::max(ready, coherence_point_free_);
    coherence_point_free_ = slot + cfg_.coherence_point_ii;
    return slot;
}

Tick
CpuMachine::aluCost(CpuOpKind kind, DataType dtype) const
{
    switch (kind) {
      case CpuOpKind::AtomicRmw:
        return isIntegerType(dtype) ? cfg_.alu_int_rmw : cfg_.alu_fp_rmw;
      case CpuOpKind::Alu:
        return cfg_.plain_alu;
      default:
        return 0;
    }
}

namespace
{

/** ceil(log_base(n)) for n >= 1. */
int
ceilLog(int n, int base)
{
    int levels = 0;
    int reach = 1;
    while (reach < n) {
        reach *= base;
        ++levels;
    }
    return levels;
}

} // namespace

Tick
CpuMachine::barrierLatency(int team_size)
{
    const auto t = static_cast<Tick>(team_size);
    switch (cfg_.barrier_algorithm) {
      case BarrierAlgorithm::SpinFutex: {
        // libgomp-like: spin while the expected wait is short, fall
        // back to a futex sleep whose wake constant dominates at
        // scale -- the source of Fig. 1's plateau.
        const Tick spin_cost =
            cfg_.barrier_base + t * cfg_.barrier_arrival;
        if (spin_cost <= cfg_.barrier_spin_budget) {
            stats_.inc(sim::Probe::CpuBarrierSpin);
            return spin_cost;
        }
        stats_.inc(sim::Probe::CpuBarrierFutex);
        return cfg_.barrier_futex_wake + t * cfg_.barrier_wake_stagger;
      }
      case BarrierAlgorithm::Central:
        // Pure centralized spinning: every arrival serializes on the
        // counter line, forever.
        stats_.inc(sim::Probe::CpuBarrierSpin);
        return cfg_.barrier_base + t * cfg_.barrier_arrival;
      case BarrierAlgorithm::Tree:
        stats_.inc(sim::Probe::CpuBarrierTree);
        return cfg_.barrier_base +
               static_cast<Tick>(
                   ceilLog(team_size, cfg_.barrier_tree_fanin)) *
                   cfg_.barrier_tree_level;
      case BarrierAlgorithm::Dissemination:
        stats_.inc(sim::Probe::CpuBarrierDissemination);
        return cfg_.barrier_base +
               static_cast<Tick>(ceilLog(team_size, 2)) *
                   cfg_.barrier_dissem_round;
    }
    panic("unhandled barrier algorithm");
}

void
CpuMachine::arriveBarrier(int tid, Tick when)
{
    if (barrier_arrivals_ == 0)
        barrier_first_arrival_ = when;
    else
        barrier_first_arrival_ = std::min(barrier_first_arrival_, when);
    ++barrier_arrivals_;
    barrier_last_arrival_ = std::max(barrier_last_arrival_, when);
    barrier_waiters_.push_back(tid);
    if (barrier_arrivals_ < static_cast<int>(threads_.size()))
        return;

    stats_.record(sim::HistProbe::CpuBarrierSpreadTicks,
                  barrier_last_arrival_ - barrier_first_arrival_);
    const Tick release =
        barrier_last_arrival_ +
        barrierLatency(static_cast<int>(threads_.size()));
    std::vector<int> waiters = std::move(barrier_waiters_);
    barrier_waiters_.clear();
    barrier_arrivals_ = 0;
    barrier_first_arrival_ = 0;
    barrier_last_arrival_ = 0;

    for (int w : waiters) {
        // The callback reads its tick from the queue (it runs exactly
        // at `release`), so a loop-batch shift of the pending event
        // shifts the continuation with it.
        threads_[w].resume = true;
        eq_.schedule(release, [this, w] {
            threads_[w].resume = false;
            finishOp(w, eq_.now());
        }, w);
    }
}

void
CpuMachine::finishOp(int tid, Tick done)
{
    ThreadCtx &ctx = threads_[tid];
    ++ctx.pc;
    if (ctx.pc < ctx.code->size()) {
        eq_.schedule(done, [this, tid] { step(tid); }, tid);
        return;
    }

    // Body iteration complete.
    ctx.pc = 0;
    if (!ctx.timed) {
        if (--warm_left_[tid] > 0) {
            eq_.schedule(done, [this, tid] { step(tid); }, tid);
            return;
        }
        // Alignment join before the timed region (Listing 2 line 15).
        ++align_arrivals_;
        align_last_ = std::max(align_last_, done);
        align_waiters_.push_back(tid);
        if (align_arrivals_ == static_cast<int>(threads_.size())) {
            const Tick go = align_last_ +
                barrierLatency(static_cast<int>(threads_.size()));
            for (int w : align_waiters_) {
                eq_.schedule(go, [this, w] {
                    threads_[w].timed = true;
                    threads_[w].start_tick = eq_.now();
                    step(w);
                }, w);
            }
            align_waiters_.clear();
        }
        return;
    }

    // Timed boundary: the batcher may jump whole steady-state
    // periods here, shifting this thread's continuation with them.
    if (loop_batch_)
        done += maybeBatch(tid, done);

    if (--ctx.iters_left > 0) {
        eq_.schedule(done, [this, tid] { step(tid); }, tid);
        return;
    }
    ctx.done = true;
    ctx.end_tick = done;
    if (tid == lb_trigger_) {
        // Let a remaining thread drive any tail batching. The
        // backoff state deliberately survives the handoff: the
        // machine's regime did not change with the trigger.
        lb_trigger_ = -1;
        lb_armed_ = false;
    }
}

void
CpuMachine::encodeState(Tick base, std::vector<std::uint64_t> &out) const
{
    // Liveness floor: a max-register at or below both the boundary
    // and every pending event can never win another max() against a
    // future time, so it is canonicalized to one dead value; anything
    // above the floor is encoded as its exact offset from the
    // boundary. Live past registers (they feed min()s or wait-time
    // stats) always keep their exact offset.
    Tick floor = eq_.earliestPending();
    if (base < floor)
        floor = base;
    const auto off = [base](Tick v) {
        return static_cast<std::uint64_t>(v - base);
    };
    constexpr std::uint64_t dead = std::uint64_t{1} << 63;
    const auto maxreg = [&](Tick v) {
        return v > floor ? off(v) : dead;
    };

    out.clear();
    out.push_back(rng_.state());
    for (const ThreadCtx &t : threads_) {
        out.push_back(static_cast<std::uint64_t>(t.pc) << 4 |
                      static_cast<std::uint64_t>(t.timed) << 3 |
                      static_cast<std::uint64_t>(t.done) << 2 |
                      static_cast<std::uint64_t>(t.resume) << 1 |
                      static_cast<std::uint64_t>(t.has_pending_store));
        out.push_back(static_cast<std::uint64_t>(
            (t.has_pending_store ? t.pending_store_line : -1) + 1));
    }
    for (int w : warm_left_)
        out.push_back(static_cast<std::uint64_t>(w));
    for (Tick v : core_free_)
        out.push_back(maxreg(v));
    out.push_back(maxreg(coherence_point_free_));
    for (const Line &l : lines_) {
        out.push_back(static_cast<std::uint64_t>(l.owner_core + 1) << 1 |
                      static_cast<std::uint64_t>(l.exclusive));
        out.push_back(l.copies);
        out.push_back(maxreg(l.free_at));
    }
    for (const LockState &l : locks_) {
        out.push_back(static_cast<std::uint64_t>(l.held) << 32 |
                      static_cast<std::uint64_t>(l.waiters.size()));
        for (const LockWaiter &w : l.waiters) {
            out.push_back(static_cast<std::uint64_t>(w.tid));
            out.push_back(off(w.since)); // feeds lock_wait_ticks later
        }
    }
    out.push_back(static_cast<std::uint64_t>(barrier_arrivals_));
    // Both rendezvous stamps are live while a barrier is partially
    // arrived: first_arrival feeds future min()s, and last_arrival
    // can still win its max() -- a later arrival may carry a smaller
    // tick when issue contention delayed an earlier one.
    out.push_back(barrier_arrivals_ ? off(barrier_first_arrival_) : 0);
    out.push_back(barrier_arrivals_ ? off(barrier_last_arrival_) : 0);
    for (int w : barrier_waiters_)
        out.push_back(static_cast<std::uint64_t>(w));
    out.push_back(static_cast<std::uint64_t>(align_arrivals_));
    for (int w : align_waiters_)
        out.push_back(static_cast<std::uint64_t>(w));
    eq_.encodePending(base, out);
}

void
CpuMachine::shiftTimes(Tick delta)
{
    for (Tick &v : core_free_)
        v += delta;
    coherence_point_free_ += delta;
    for (Line &l : lines_)
        l.free_at += delta;
    for (LockState &l : locks_)
        for (LockWaiter &w : l.waiters)
            w.since += delta;
    if (barrier_arrivals_ > 0) {
        barrier_first_arrival_ += delta;
        barrier_last_arrival_ += delta;
    }
    // align_last_ is final once the team is timed (and a trigger
    // exists only then); start/end ticks are frozen outputs shared
    // with the unbatched run; the rng did not advance.
}

Tick
CpuMachine::maybeBatch(int tid, Tick done)
{
    if (!threads_[tid].timed)
        return 0;
    // A thread this close to its loop exit can never complete the
    // arm-then-match sequence with k >= 1 (margin 2), so encoding at
    // its boundaries is pure overhead: its tail single-steps, and
    // the trigger role stays -- or becomes -- vacant for a thread
    // with room to batch.
    if (threads_[tid].iters_left < 4) {
        if (tid == lb_trigger_) {
            lb_trigger_ = -1;
            lb_armed_ = false;
        }
        return 0;
    }
    if (lb_trigger_ < 0)
        lb_trigger_ = tid;
    if (tid != lb_trigger_)
        return 0;

    // Backoff: a boundary whose last attempt fell back rarely
    // matches the very next one, and every attempt costs a whole-
    // machine encode. Exponentially spaced retries keep hopeless
    // (contended) regimes near single-step speed; a skipped boundary
    // only forgoes a jump, so results are unchanged.
    if (lb_skip_ > 0) {
        --lb_skip_;
        return 0;
    }

    // Randomness consumed since the last boundary means the period
    // cannot be replayed; skip the full encode until it settles.
    if (lb_armed_ && rng_.state() != lb_prev_rng_) {
        ++lb_.fallbacks;
        lb_prev_rng_ = rng_.state();
        lb_armed_ = false;
        lb_skip_ = lb_penalty_;
        lb_penalty_ = std::min<long>(lb_penalty_ * 2, 256);
        return 0;
    }

    encodeState(done, lb_fp_);
    const int n = static_cast<int>(threads_.size());
    if (!lb_armed_ || lb_fp_ != lb_prev_fp_) {
        if (lb_armed_) {
            ++lb_.fallbacks;
            lb_skip_ = lb_penalty_;
            lb_penalty_ = std::min<long>(lb_penalty_ * 2, 256);
        }
        lb_prev_fp_.swap(lb_fp_);
        lb_prev_boundary_ = done;
        lb_prev_rng_ = rng_.state();
        lb_prev_iters_.resize(n);
        for (int i = 0; i < n; ++i)
            lb_prev_iters_[i] = threads_[i].iters_left;
        stats_.snapshot(lb_prev_stats_);
        lb_armed_ = true;
        return 0;
    }

    // Equal fingerprints: the machine's dynamics are periodic with
    // period delta. K whole periods can be applied algebraically.
    // Every actor must keep at least one whole post-jump iteration
    // to execute for real: iters_left still counts the just-finished
    // iteration, so a margin of 2 leaves the loop exit -- and the
    // run's final event times -- to ordinary single-stepping.
    const Tick delta = done - lb_prev_boundary_;
    SYNCPERF_ASSERT(delta > 0, "duplicate trigger boundary tick");
    long k = std::numeric_limits<long>::max();
    std::uint64_t per_period = 0;
    for (int i = 0; i < n; ++i) {
        const long d = lb_prev_iters_[i] - threads_[i].iters_left;
        if (d <= 0)
            continue;
        per_period += static_cast<std::uint64_t>(d);
        k = std::min(k, (threads_[i].iters_left - 2) / d);
    }
    if (k == std::numeric_limits<long>::max())
        k = 0;
    // A horizon pin is an opaque foreign event: never jump past it.
    if (eq_.horizonPin() != sim::EventQueue::no_tick) {
        const Tick pin = eq_.horizonPin();
        k = pin > done
            ? std::min(k, static_cast<long>((pin - done) / delta))
            : 0;
    }
    if (k < 1) {
        ++lb_.fallbacks;
        lb_skip_ = lb_penalty_;
        lb_penalty_ = std::min<long>(lb_penalty_ * 2, 256);
        // Re-anchor so a later boundary measures a fresh period.
        lb_prev_boundary_ = done;
        for (int i = 0; i < n; ++i)
            lb_prev_iters_[i] = threads_[i].iters_left;
        stats_.snapshot(lb_prev_stats_);
        return 0;
    }

    const Tick shift = delta * static_cast<Tick>(k);
    eq_.shiftPending(shift);
    shiftTimes(shift);
    for (int i = 0; i < n; ++i) {
        const long d = lb_prev_iters_[i] - threads_[i].iters_left;
        threads_[i].iters_left -= static_cast<long>(k) * d;
    }
    stats_.applyPeriods(lb_prev_stats_, static_cast<std::uint64_t>(k));
    lb_.batched_iters += static_cast<std::uint64_t>(k) * per_period;
    ++lb_.windows;
    lb_penalty_ = 1; // a jump proves the steady state: retry eagerly

    // The post-jump boundary has the same fingerprint by
    // construction; re-anchor the snapshot so the next boundary can
    // batch again without re-proving periodicity from scratch.
    lb_prev_boundary_ = done + shift;
    for (int i = 0; i < n; ++i)
        lb_prev_iters_[i] = threads_[i].iters_left;
    stats_.snapshot(lb_prev_stats_);
    return shift;
}

void
CpuMachine::step(int tid)
{
    ThreadCtx &ctx = threads_[tid];
    SYNCPERF_ASSERT(!ctx.done);
    const DecodedOp &op = (*ctx.code)[ctx.pc];
    const Tick now = eq_.now();

    // Issue through the core pipeline (shared by SMT siblings).
    Tick start = std::max(now, core_free_[ctx.place.core]);
    core_free_[ctx.place.core] = start + cfg_.issue_cycles;
    start += cfg_.issue_cycles;

    (this->*op.handler)(tid, op, start);
}

void
CpuMachine::execLoad(int tid, const DecodedOp &op, Tick start)
{
    // x86-style: an atomic read is an ordinary aligned load.
    ThreadCtx &ctx = threads_[tid];
    Line &line = lines_[op.line];
    const std::uint64_t bit = 1ULL << ctx.place.core;
    Tick done;
    if (line.copies & bit) {
        done = start + cfg_.l1_hit_latency;
        stats_.inc(sim::Probe::CpuL1Hit);
    } else {
        done = start + transferLatency(line, ctx.place);
        line.copies |= bit;
        line.exclusive = false;
    }
    finishOp(tid, done);
}

Tick
CpuMachine::acquireExclusive(Line &line, const HwPlace &place, Tick start,
                             Tick alu_cost, bool ordering_point)
{
    // Exclusive acquisitions of a line serialize: wait for the next
    // service slot at the coherence point. Atomic stores additionally
    // pass the machine-wide ordering point: they carry release
    // ordering, so ownership changes cannot overlap across lines
    // (this keeps Fig 4's second write additive instead of hiding in
    // the other line's queue). The RMW's ALU cost extends the
    // occupancy while the line is held (the int-vs-float gap of
    // Fig 2).
    Tick svc = std::max(start, line.free_at);
    if (ordering_point)
        svc = coherencePointSlot(svc);
    line.free_at = svc + cfg_.line_occupancy + alu_cost;
    const Tick done = svc + transferLatency(line, place) + alu_cost;
    stats_.record(sim::HistProbe::CpuAcqWaitTicks, svc - start);
    if (line.owner_core >= 0 && line.owner_core != place.core)
        stats_.inc(sim::Probe::CpuLinePingPong);
    line.owner_core = place.core;
    line.exclusive = true;
    line.copies = 1ULL << place.core;
    return done;
}

void
CpuMachine::execStore(int tid, const DecodedOp &op, Tick start)
{
    ThreadCtx &ctx = threads_[tid];
    Line &line = lines_[op.line];
    Tick done;
    if (line.exclusive && line.owner_core == ctx.place.core) {
        done = start + cfg_.l1_hit_latency;
        stats_.inc(sim::Probe::CpuL1Hit);
    } else {
        done = acquireExclusive(line, ctx.place, start, 0, false);
    }
    ctx.has_pending_store = true;
    ctx.pending_store_line = op.line;
    finishOp(tid, done);
}

void
CpuMachine::execAtomicStore(int tid, const DecodedOp &op, Tick start)
{
    ThreadCtx &ctx = threads_[tid];
    Line &line = lines_[op.line];
    Tick done;
    if (line.exclusive && line.owner_core == ctx.place.core) {
        done = start + cfg_.l1_hit_latency;
        stats_.inc(sim::Probe::CpuL1Hit);
    } else {
        done = acquireExclusive(line, ctx.place, start, 0, true);
    }
    // x86 locked operations drain the store buffer.
    ctx.has_pending_store = false;
    finishOp(tid, done);
}

void
CpuMachine::execAtomicRmw(int tid, const DecodedOp &op, Tick start)
{
    ThreadCtx &ctx = threads_[tid];
    Line &line = lines_[op.line];
    Tick done;
    if (line.exclusive && line.owner_core == ctx.place.core) {
        done = start + cfg_.l1_hit_latency + op.alu_cost;
        stats_.inc(sim::Probe::CpuL1Hit);
    } else {
        done = acquireExclusive(line, ctx.place, start, op.alu_cost,
                                false);
    }
    ctx.has_pending_store = false;
    finishOp(tid, done);
}

void
CpuMachine::execFence(int tid, const DecodedOp &, Tick start)
{
    ThreadCtx &ctx = threads_[tid];
    Tick done = start + cfg_.fence_drain;
    if (ctx.has_pending_store) {
        Line &line = lines_[ctx.pending_store_line];
        if (!(line.exclusive && line.owner_core == ctx.place.core)) {
            // The pending store's line was stolen (false sharing):
            // the drain must re-acquire it like a store would.
            // (No machine-wide ordering slot here: the drain's
            // re-acquisition is a replay of the store's own
            // ownership change, not a new one.)
            const Tick svc = std::max(start, line.free_at);
            line.free_at = svc + cfg_.line_occupancy;
            done = svc + transferLatency(line, ctx.place) +
                   cfg_.fence_drain;
            if (line.owner_core >= 0 &&
                line.owner_core != ctx.place.core) {
                stats_.inc(sim::Probe::CpuLinePingPong);
            }
            line.owner_core = ctx.place.core;
            line.exclusive = true;
            line.copies = 1ULL << ctx.place.core;
            stats_.inc(sim::Probe::CpuFenceContended);
            // Drain stall: what the steal added over a clean drain.
            stats_.record(sim::HistProbe::CpuFenceStallTicks,
                          done - start - cfg_.fence_drain);
        } else {
            stats_.inc(sim::Probe::CpuFenceClean);
        }
        ctx.has_pending_store = false;
    } else {
        stats_.inc(sim::Probe::CpuFenceClean);
    }
    finishOp(tid, done);
}

void
CpuMachine::execBarrier(int tid, const DecodedOp &, Tick start)
{
    arriveBarrier(tid, start);
}

void
CpuMachine::execLockAcquire(int tid, const DecodedOp &op, Tick start)
{
    ThreadCtx &ctx = threads_[tid];
    LockState &lock = locks_[op.lock];
    if (lock.held) {
        stats_.inc(sim::Probe::CpuLockContended);
        lock.waiters.push_back(LockWaiter{tid, start});
        return;  // blocked; granted on release
    }
    lock.held = true;
    // Acquire performs a CAS on the lock line.
    Line &line = lines_[op.line];
    Tick done;
    if (line.exclusive && line.owner_core == ctx.place.core) {
        done = start + cfg_.l1_hit_latency + cfg_.alu_int_rmw;
    } else {
        const Tick svc = std::max(start, line.free_at);
        line.free_at = svc + cfg_.line_occupancy;
        done = svc + transferLatency(line, ctx.place) +
               cfg_.alu_int_rmw;
        stats_.record(sim::HistProbe::CpuAcqWaitTicks, svc - start);
        if (line.owner_core >= 0 && line.owner_core != ctx.place.core)
            stats_.inc(sim::Probe::CpuLinePingPong);
        line.owner_core = ctx.place.core;
        line.exclusive = true;
        line.copies = 1ULL << ctx.place.core;
    }
    finishOp(tid, done);
}

void
CpuMachine::execLockRelease(int tid, const DecodedOp &op, Tick start)
{
    LockState &lock = locks_[op.lock];
    SYNCPERF_ASSERT(lock.held, "release of unheld lock");
    const Tick done = start + cfg_.l1_hit_latency;
    if (!lock.waiters.empty()) {
        const LockWaiter waiter = lock.waiters.front();
        const int next = waiter.tid;
        lock.waiters.pop_front();
        const auto waiters = static_cast<Tick>(lock.waiters.size());
        // Handoff cost depends on the locking algorithm: MCS
        // touches one remote line; spinning algorithms add
        // traffic proportional to the waiter crowd.
        Tick extra = 0;
        switch (cfg_.lock_algorithm) {
          case LockAlgorithm::QueueHandoff:
            break;
          case LockAlgorithm::TasSpin:
            // Every waiter's failed exchange steals the line.
            extra = waiters * cfg_.lock_tas_retry;
            break;
          case LockAlgorithm::TtasSpin:
            // One invalidation broadcast, then one winner's RMW.
            extra = waiters * cfg_.lock_broadcast;
            break;
          case LockAlgorithm::Ticket:
            // All waiters re-read the serving counter.
            extra = waiters * cfg_.lock_broadcast + cfg_.lock_broadcast;
            break;
        }
        const Tick grant = done + cfg_.lock_handoff + extra;
        stats_.inc(sim::Probe::CpuLockHandoff);
        stats_.record(sim::HistProbe::CpuLockWaitTicks,
                      grant - waiter.since);
        threads_[next].resume = true;
        eq_.schedule(grant, [this, next] {
            threads_[next].resume = false;
            finishOp(next, eq_.now());
        }, next);
    } else {
        lock.held = false;
    }
    finishOp(tid, done);
}

void
CpuMachine::execAlu(int tid, const DecodedOp &op, Tick start)
{
    finishOp(tid, start + op.alu_cost);
}

CpuMachine::DecodedOp
CpuMachine::decodeOp(const CpuOp &op)
{
    DecodedOp d;
    d.alu_cost = aluCost(op.kind, op.dtype);
    switch (op.kind) {
      case CpuOpKind::Load:
      case CpuOpKind::AtomicLoad:
        d.handler = &CpuMachine::execLoad;
        d.line = internLine(op.addr);
        return d;
      case CpuOpKind::Store:
        d.handler = &CpuMachine::execStore;
        d.line = internLine(op.addr);
        return d;
      case CpuOpKind::AtomicStore:
        d.handler = &CpuMachine::execAtomicStore;
        d.line = internLine(op.addr);
        return d;
      case CpuOpKind::AtomicRmw:
        d.handler = &CpuMachine::execAtomicRmw;
        d.line = internLine(op.addr);
        return d;
      case CpuOpKind::Fence:
        d.handler = &CpuMachine::execFence;
        return d;
      case CpuOpKind::Barrier:
        d.handler = &CpuMachine::execBarrier;
        return d;
      case CpuOpKind::LockAcquire:
        d.handler = &CpuMachine::execLockAcquire;
        d.line = internLine(op.addr);
        d.lock = internLock(op.lock_id);
        return d;
      case CpuOpKind::LockRelease:
        d.handler = &CpuMachine::execLockRelease;
        d.lock = internLock(op.lock_id);
        return d;
      case CpuOpKind::Alu:
        d.handler = &CpuMachine::execAlu;
        return d;
    }
    panic("unhandled op kind");
}

CpuRunResult
CpuMachine::run(const std::vector<CpuProgram> &programs,
                int warmup_iterations, std::uint64_t decode_key)
{
    const int n = static_cast<int>(programs.size());
    SYNCPERF_ASSERT(n >= 1);
    for (const auto &p : programs) {
        SYNCPERF_ASSERT(!p.body.empty(), "empty program body");
        SYNCPERF_ASSERT(p.iterations >= 1);
    }
    SYNCPERF_ASSERT(warmup_iterations >= 1,
                    "at least one warmup iteration required");

    const DecodedImage *image = nullptr;
    if (decode_key != 0) {
        const auto it = images_.find(decode_key);
        SYNCPERF_ASSERT(it != images_.end(),
                        "run() with an unmaterialized decode key");
        image = it->second.get();
        SYNCPERF_ASSERT(static_cast<int>(image->code.size()) == n,
                        "decoded image team size mismatch");
    }

    places_ = mapThreads(cfg_, affinity_, n);
    core_free_.assign(cfg_.totalCores(), 0);
    if (image != nullptr) {
        // Fast path: the image carries the interned universe sizes,
        // so the line/lock tables restore by assignment and the
        // interning maps stay untouched (they are decode-time state;
        // the cold path below rebuilds them before use).
        lines_.assign(static_cast<std::size_t>(image->n_lines),
                      Line{});
        locks_.assign(static_cast<std::size_t>(image->n_locks),
                      LockState{});
    } else {
        lines_.clear();
        line_index_.clear();
        locks_.clear();
        lock_index_.clear();
    }
    coherence_point_free_ = 0;
    eq_.reset();
    stats_.clear();
    threads_.assign(n, ThreadCtx{});
    warm_left_.assign(n, warmup_iterations);
    align_arrivals_ = 0;
    align_last_ = 0;
    align_waiters_.clear();
    barrier_arrivals_ = 0;
    barrier_first_arrival_ = 0;
    barrier_last_arrival_ = 0;
    barrier_waiters_.clear();
    lb_trigger_ = -1;
    lb_armed_ = false;
    lb_skip_ = 0;
    lb_penalty_ = 1;
    if (lb_pin_ != sim::EventQueue::no_tick)
        eq_.pinHorizon(lb_pin_); // reset() above cleared any pin
    lb_ = sim::LoopBatchCounters{};
    for (const auto &p : programs)
        lb_.total_iters += static_cast<std::uint64_t>(p.iterations);

    // Decode once per program: dense handler+operand arrays with all
    // config-dependent costs and container lookups hoisted out of
    // the execution loop. A cached image skips this entirely -- the
    // threads execute the image's arrays in place.
    if (image == nullptr) {
        decoded_.resize(n);
        for (int t = 0; t < n; ++t) {
            auto &code = decoded_[t];
            code.clear();
            code.reserve(programs[t].body.size());
            for (const CpuOp &op : programs[t].body)
                code.push_back(decodeOp(op));
        }
    }

    for (int t = 0; t < n; ++t) {
        threads_[t].code =
            image != nullptr ? &image->code[t] : &decoded_[t];
        threads_[t].place = places_[t];
        threads_[t].iters_left = programs[t].iterations;
        eq_.schedule(0, [this, t] { step(t); }, t);
    }

    const Tick end = eq_.run();

    CpuRunResult result;
    result.total_cycles = end;
    result.thread_cycles.reserve(n);
    for (const auto &ctx : threads_) {
        SYNCPERF_ASSERT(ctx.done, "thread did not finish (deadlock?)");
        result.thread_cycles.push_back(ctx.end_tick - ctx.start_tick);
    }

    // Counters and histograms were recorded in place through the
    // interned O(1) probes; only the queue's high-water mark is
    // stamped once per run.
    stats_.inc(sim::Probe::EqMaxDepth,
               static_cast<std::uint64_t>(eq_.maxPending()));
    return result;
}

const CpuMachine::OpHandler *
CpuMachine::handlerTable(std::size_t &count)
{
    // Serialized images index into this table; entries are
    // append-only so older snapshots keep loading.
    static constexpr OpHandler table[] = {
        &CpuMachine::execLoad,        // 0
        &CpuMachine::execStore,       // 1
        &CpuMachine::execAtomicStore, // 2
        &CpuMachine::execAtomicRmw,   // 3
        &CpuMachine::execFence,       // 4
        &CpuMachine::execBarrier,     // 5
        &CpuMachine::execLockAcquire, // 6
        &CpuMachine::execLockRelease, // 7
        &CpuMachine::execAlu,         // 8
    };
    count = std::size(table);
    return table;
}

void
CpuMachine::decodeImageInto(const std::vector<CpuProgram> &programs,
                            DecodedImage &img)
{
    // Decode with a fresh interning universe; run() re-derives every
    // piece of this state anyway, so borrowing the members here is
    // safe on any path.
    lines_.clear();
    line_index_.clear();
    locks_.clear();
    lock_index_.clear();
    img.code.resize(programs.size());
    for (std::size_t t = 0; t < programs.size(); ++t) {
        auto &code = img.code[t];
        code.clear();
        code.reserve(programs[t].body.size());
        for (const CpuOp &op : programs[t].body)
            code.push_back(decodeOp(op));
    }
    img.n_lines = static_cast<int>(lines_.size());
    img.n_locks = static_cast<int>(locks_.size());
    img.fingerprint = fingerprintOf(img);
}

std::uint64_t
CpuMachine::fingerprintOf(const DecodedImage &img)
{
    // FNV-1a over exactly the words encodeImage() serializes: two
    // program sets share a fingerprint iff their decoded forms --
    // what run() actually executes -- are identical.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto fold = [&h](std::uint64_t w) {
        h = (h ^ w) * 0x100000001b3ULL;
    };
    std::size_t n_handlers = 0;
    const OpHandler *table = handlerTable(n_handlers);
    fold(img.code.size());
    fold(static_cast<std::uint64_t>(img.n_lines));
    fold(static_cast<std::uint64_t>(img.n_locks));
    for (const auto &code : img.code) {
        fold(code.size());
        for (const DecodedOp &op : code) {
            std::size_t id = 0;
            while (id < n_handlers && table[id] != op.handler)
                ++id;
            SYNCPERF_ASSERT(id < n_handlers,
                            "decoded handler missing from the rebind "
                            "table");
            fold(id);
            fold(static_cast<std::uint64_t>(op.line + 1));
            fold(static_cast<std::uint64_t>(op.lock + 1));
            fold(static_cast<std::uint64_t>(op.alu_cost));
        }
    }
    return h;
}

void
CpuMachine::buildImage(std::uint64_t key,
                       const std::vector<CpuProgram> &programs)
{
    SYNCPERF_ASSERT(key != 0, "key 0 means undecoded");
    auto img = std::make_shared<DecodedImage>();
    img->key = key;
    decodeImageInto(programs, *img);
    images_[key] = std::move(img);
}

std::uint64_t
CpuMachine::laneFingerprint(const CpuLaneSpec &lane)
{
    if (lane.decode_key != 0) {
        const auto it = images_.find(lane.decode_key);
        SYNCPERF_ASSERT(it != images_.end(),
                        "lane with an unmaterialized decode key");
        return it->second->fingerprint;
    }
    DecodedImage scratch;
    decodeImageInto(*lane.programs, scratch);
    return scratch.fingerprint;
}

std::vector<CpuLaneOutcome>
CpuMachine::runLanes(const std::vector<CpuLaneSpec> &lanes,
                     int warmup_iterations)
{
    SYNCPERF_ASSERT(!lanes.empty());
    std::vector<CpuLaneOutcome> out(lanes.size());
    std::vector<std::uint64_t> fp(lanes.size());
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        SYNCPERF_ASSERT(lanes[i].programs != nullptr);
        fp[i] = laneFingerprint(lanes[i]);
    }

    // The reference walk: simulated exactly once, its per-lane SoA
    // outputs (cycle stamps, stat set, loop counters) shared by
    // every lane proven to be in lockstep with it.
    const CpuLaneSpec &ref = lanes[0];
    reseed(ref.seed);
    out[0].result = run(*ref.programs, warmup_iterations,
                        ref.decode_key);
    out[0].stats = stats_;
    out[0].loop_batch = lb_;
    out[0].in_step = true;

    const auto same_schedule = [&](const std::vector<CpuProgram> &a) {
        const std::vector<CpuProgram> &b = *ref.programs;
        if (a.size() != b.size())
            return false;
        for (std::size_t t = 0; t < a.size(); ++t) {
            if (a[t].iterations != b[t].iterations)
                return false;
        }
        return true;
    };

    for (std::size_t i = 1; i < lanes.size(); ++i) {
        // Agreement test: equal decoded image, equal rng seed, equal
        // iteration schedule => provably the exact event walk the
        // reference performed, so sharing its outputs is an identity.
        if (fp[i] == fp[0] && lanes[i].seed == ref.seed &&
            same_schedule(*lanes[i].programs)) {
            out[i].result = out[0].result;
            out[i].stats = out[0].stats;
            out[i].loop_batch = out[0].loop_batch;
            out[i].in_step = true;
            continue;
        }
        // Divergence: peel the lane into a single-lane run.
        metrics::add(metrics::Counter::LanePeels);
        reseed(lanes[i].seed);
        out[i].result = run(*lanes[i].programs, warmup_iterations,
                            lanes[i].decode_key);
        out[i].stats = stats_;
        out[i].loop_batch = lb_;
        out[i].in_step = false;
    }
    return out;
}

void
CpuMachine::encodeImage(std::uint64_t key,
                        std::vector<std::uint64_t> &out) const
{
    const auto it = images_.find(key);
    SYNCPERF_ASSERT(it != images_.end(), "encodeImage: unknown key");
    const DecodedImage &img = *it->second;
    std::size_t n_handlers = 0;
    const OpHandler *table = handlerTable(n_handlers);

    out.clear();
    out.push_back(img.code.size());
    out.push_back(static_cast<std::uint64_t>(img.n_lines));
    out.push_back(static_cast<std::uint64_t>(img.n_locks));
    for (const auto &code : img.code) {
        out.push_back(code.size());
        for (const DecodedOp &op : code) {
            std::size_t id = 0;
            while (id < n_handlers && table[id] != op.handler)
                ++id;
            SYNCPERF_ASSERT(id < n_handlers,
                            "decoded handler missing from the rebind "
                            "table");
            out.push_back(id);
            // Interned indices shift by one so -1 (none) encodes as
            // an unsigned 0.
            out.push_back(static_cast<std::uint64_t>(op.line + 1));
            out.push_back(static_cast<std::uint64_t>(op.lock + 1));
            out.push_back(static_cast<std::uint64_t>(op.alu_cost));
        }
    }
}

Status
CpuMachine::installImage(std::uint64_t key,
                         const std::vector<std::uint64_t> &words)
{
    // Every field is bounds-checked before the image becomes
    // reachable: a semantically invalid payload (version skew, a
    // key collision across format generations) is a clean error,
    // never an out-of-range handler or line index at run time.
    constexpr std::uint64_t max_count = std::uint64_t{1} << 20;
    constexpr std::uint64_t max_cost = std::uint64_t{1} << 32;
    const auto invalid = [key](std::string_view why) {
        return Status::error(ErrorCode::ParseError,
                             "cpu image {}: {}", key, why);
    };
    if (key == 0)
        return invalid("key 0 is reserved");
    std::size_t n_handlers = 0;
    const OpHandler *table = handlerTable(n_handlers);

    sim::SnapshotCursor cur(words);
    std::uint64_t n_threads = 0;
    std::uint64_t n_lines = 0;
    std::uint64_t n_locks = 0;
    cur.u64(n_threads);
    cur.u64(n_lines);
    cur.u64(n_locks);
    if (cur.overran() || n_threads < 1 || n_threads > max_count ||
        n_lines > max_count || n_locks > max_count) {
        return invalid("bad header");
    }

    auto img = std::make_shared<DecodedImage>();
    img->key = key;
    img->n_lines = static_cast<int>(n_lines);
    img->n_locks = static_cast<int>(n_locks);
    img->code.resize(static_cast<std::size_t>(n_threads));
    for (auto &code : img->code) {
        std::uint64_t n_ops = 0;
        if (!cur.u64(n_ops) || n_ops < 1 || n_ops > max_count)
            return invalid("bad op count");
        code.reserve(static_cast<std::size_t>(n_ops));
        for (std::uint64_t i = 0; i < n_ops; ++i) {
            std::uint64_t id = 0;
            std::uint64_t line_raw = 0;
            std::uint64_t lock_raw = 0;
            std::uint64_t cost = 0;
            cur.u64(id);
            cur.u64(line_raw);
            cur.u64(lock_raw);
            cur.u64(cost);
            if (cur.overran() || id >= n_handlers ||
                line_raw > n_lines || lock_raw > n_locks ||
                cost > max_cost) {
                return invalid("bad op record");
            }
            // Handlers that index the line/lock tables must carry an
            // interned index; the others must not (mirror of what
            // decodeOp() produces).
            const bool needs_line = id <= 3 || id == 6;
            const bool needs_lock = id == 6 || id == 7;
            if (needs_line != (line_raw != 0) ||
                needs_lock != (lock_raw != 0)) {
                return invalid("operand/handler mismatch");
            }
            DecodedOp op;
            op.handler = table[id];
            op.line = static_cast<int>(line_raw) - 1;
            op.lock = static_cast<int>(lock_raw) - 1;
            op.alu_cost = static_cast<Tick>(cost);
            code.push_back(op);
        }
    }
    if (!cur.done())
        return invalid("trailing payload words");
    // Recomputed from the decoded content (never trusted from disk),
    // so an installed image fingerprints identically to the
    // buildImage() product it serialized.
    img->fingerprint = fingerprintOf(*img);
    images_[key] = std::move(img);
    return Status::ok();
}

void
CpuMachine::cloneFrom(const CpuMachine &tmpl)
{
    eq_.reserve(tmpl.eq_.slotCapacity());
    threads_.reserve(tmpl.threads_.capacity());
    places_.reserve(tmpl.places_.capacity());
    core_free_.reserve(tmpl.core_free_.capacity());
    decoded_.reserve(tmpl.decoded_.capacity());
    lines_.reserve(tmpl.lines_.capacity());
    locks_.reserve(tmpl.locks_.capacity());
    warm_left_.reserve(tmpl.warm_left_.capacity());
    barrier_waiters_.reserve(tmpl.barrier_waiters_.capacity());
    align_waiters_.reserve(tmpl.align_waiters_.capacity());
    lb_prev_fp_.reserve(tmpl.lb_prev_fp_.capacity());
    lb_fp_.reserve(tmpl.lb_fp_.capacity());
    lb_prev_iters_.reserve(tmpl.lb_prev_iters_.capacity());
}

} // namespace syncperf::cpusim
