/**
 * @file
 * Multicore CPU model configuration, including presets for the three
 * systems in the paper's Table I.
 *
 * All latencies are in cycles of the base clock. The defaults are
 * calibrated so the model reproduces the qualitative shapes of the
 * paper's OpenMP figures (see EXPERIMENTS.md); they are not meant to
 * be microarchitecturally exact.
 */

#ifndef SYNCPERF_CPUSIM_CPU_CONFIG_HH
#define SYNCPERF_CPUSIM_CPU_CONFIG_HH

#include <string>

#include "sim/types.hh"

namespace syncperf::cpusim
{

using sim::Tick;

/**
 * Barrier implementations the model can assume for the OpenMP
 * runtime. The paper observes libgomp as a black box; these let the
 * ablation benches explore what algorithm could produce Fig. 1.
 */
enum class BarrierAlgorithm
{
    SpinFutex,      ///< spin below a budget, futex sleep above (libgomp-like)
    Central,        ///< pure centralized spinning (cost grows linearly)
    Tree,           ///< combining tree, cost grows with log_fanin(T)
    Dissemination,  ///< log2(T) pairwise rounds, no hot line
};

/** Lock implementations for the critical-section model. */
enum class LockAlgorithm
{
    QueueHandoff,   ///< MCS-style: one remote line touched per handoff
    TasSpin,        ///< test-and-set: waiters hammer the lock line
    TtasSpin,       ///< test-and-test-and-set: one broadcast per release
    Ticket,         ///< FIFO ticket: all waiters reread the serving counter
};

/** Topology and timing parameters of a simulated multicore CPU. */
struct CpuConfig
{
    std::string name;

    // --- Topology (Table I fields) ---
    int sockets = 1;
    int cores_per_socket = 8;
    int threads_per_core = 2;   ///< SMT width
    int numa_nodes = 1;
    double base_clock_ghz = 3.0;

    /**
     * Cores per fast coherence domain (CCX/ring stop group). Line
     * transfers within a complex use local_transfer; across
     * complexes or sockets they use remote_transfer.
     */
    int cores_per_complex = 8;

    // --- Memory system ---
    int cache_line_bytes = 64;
    Tick l1_hit_latency = 4;        ///< load/store hit in own L1
    Tick local_transfer = 44;       ///< line transfer within a complex
    Tick remote_transfer = 120;     ///< transfer across complex/socket

    /**
     * Serialization quantum at the coherence point: consecutive
     * exclusive acquisitions of one line are spaced by at least this
     * many cycles. This is what turns shared-variable atomics into
     * the paper's 1/T per-thread throughput collapse.
     */
    Tick line_occupancy = 36;

    /**
     * Machine-wide ordering point: ALL exclusive ownership changes
     * (any line) pass the directory/home agent at this interval.
     * Far smaller than line_occupancy, so per-line contention still
     * dominates; its job is to make *additional* contended stores
     * cost extra instead of hiding in a parallel line's queue
     * (Fig 4's atomic-write differencing depends on this).
     */
    Tick coherence_point_ii = 6;

    // --- Core ---
    Tick issue_cycles = 1;          ///< core pipeline slot per op (SMT shared)
    Tick alu_int_rmw = 2;           ///< extra cycles for int/ull atomic RMW
    Tick alu_fp_rmw = 18;           ///< extra cycles for float/double RMW
                                    ///< (CAS-loop + FP add latency)
    Tick plain_alu = 1;             ///< non-atomic arithmetic

    // --- Fences ---
    Tick fence_drain = 8;           ///< store-buffer drain, uncontended

    // --- OpenMP runtime model (barrier, critical section) ---
    Tick barrier_base = 180;        ///< fixed entry/exit bookkeeping
    Tick barrier_arrival = 170;     ///< serialized arrival cost per thread
    Tick barrier_spin_budget = 1700; ///< above this expected wait, sleep
    Tick barrier_futex_wake = 1400; ///< OS wake constant once sleeping
    Tick barrier_wake_stagger = 12; ///< serial per-thread wake component

    BarrierAlgorithm barrier_algorithm = BarrierAlgorithm::SpinFutex;
    int barrier_tree_fanin = 4;
    Tick barrier_tree_level = 260;  ///< per combining-tree level
    Tick barrier_dissem_round = 170; ///< per dissemination round

    LockAlgorithm lock_algorithm = LockAlgorithm::QueueHandoff;
    Tick lock_handoff = 60;         ///< critical-section lock transfer cost
    Tick lock_tas_retry = 14;       ///< extra line traffic per TAS waiter
    Tick lock_broadcast = 5;        ///< per-waiter invalidation (TTAS/ticket)

    /**
     * Deterministic fabric-jitter amplitude as a fraction of each
     * transfer latency (the paper attributes System 3's noisy atomic
     * write results to the Threadripper's fabric).
     */
    double jitter_frac = 0.0;

    // --- Derived ---
    int totalCores() const { return sockets * cores_per_socket; }
    int totalHwThreads() const { return totalCores() * threads_per_core; }

    // --- Presets: the paper's Table I systems ---
    /** System 1: 2x Intel Xeon E5-2687 v3 (10c/20t each). */
    static CpuConfig system1();
    /** System 2: 2x Intel Xeon Gold 6226R (16c/32t each). */
    static CpuConfig system2();
    /** System 3: AMD Ryzen Threadripper 2950X (16c/32t). */
    static CpuConfig system3();
};

} // namespace syncperf::cpusim

#endif // SYNCPERF_CPUSIM_CPU_CONFIG_HH
