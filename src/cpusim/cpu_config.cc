/**
 * @file
 * CPU presets for the paper's Table I systems.
 */

#include "cpu_config.hh"

namespace syncperf::cpusim
{

CpuConfig
CpuConfig::system1()
{
    CpuConfig c;
    c.name = "System 1: Intel Xeon E5-2687 v3 (x2)";
    c.sockets = 2;
    c.cores_per_socket = 10;
    c.threads_per_core = 2;
    c.numa_nodes = 2;
    c.base_clock_ghz = 3.10;
    c.cores_per_complex = 10;   // one ring per socket
    c.local_transfer = 52;
    c.remote_transfer = 160;
    return c;
}

CpuConfig
CpuConfig::system2()
{
    CpuConfig c;
    c.name = "System 2: Intel Xeon Gold 6226R (x2)";
    c.sockets = 2;
    c.cores_per_socket = 16;
    c.threads_per_core = 2;
    c.numa_nodes = 2;
    c.base_clock_ghz = 2.80;
    c.cores_per_complex = 16;   // one mesh per socket
    c.local_transfer = 48;
    c.remote_transfer = 150;
    return c;
}

CpuConfig
CpuConfig::system3()
{
    CpuConfig c;
    c.name = "System 3: AMD Ryzen Threadripper 2950X";
    c.sockets = 1;
    c.cores_per_socket = 16;
    c.threads_per_core = 2;
    c.numa_nodes = 2;           // two dies on one package
    c.base_clock_ghz = 3.50;
    c.cores_per_complex = 4;    // Zen+ CCX of 4 cores
    c.local_transfer = 40;
    c.remote_transfer = 130;
    // The paper attributes System 3's jittery atomic-write results
    // to architectural qualities of the AMD fabric.
    c.jitter_frac = 0.35;
    return c;
}

} // namespace syncperf::cpusim
