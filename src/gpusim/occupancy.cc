/**
 * @file
 * Implementation of occupancy arithmetic.
 */

#include "occupancy.hh"

#include <algorithm>

#include "common/logging.hh"

namespace syncperf::gpusim
{

Occupancy
computeOccupancy(const GpuConfig &cfg, LaunchConfig launch)
{
    SYNCPERF_ASSERT(launch.blocks >= 1);
    SYNCPERF_ASSERT(launch.threads_per_block >= 1 &&
                    launch.threads_per_block <= cfg.max_threads_per_block);

    Occupancy o;
    o.blocks_per_sm =
        std::min(cfg.max_blocks_per_sm,
                 cfg.max_threads_per_sm / launch.threads_per_block);
    SYNCPERF_ASSERT(o.blocks_per_sm >= 1,
                    "block does not fit on an SM");
    o.threads_per_sm = o.blocks_per_sm * launch.threads_per_block;
    o.warps_per_sm =
        o.blocks_per_sm * cfg.warpsPerBlock(launch.threads_per_block);
    o.resident_blocks =
        std::min(launch.blocks, o.blocks_per_sm * cfg.sm_count);
    o.waves = (launch.blocks + o.blocks_per_sm * cfg.sm_count - 1) /
              (o.blocks_per_sm * cfg.sm_count);
    o.fraction = static_cast<double>(o.threads_per_sm) /
                 static_cast<double>(cfg.max_threads_per_sm);
    return o;
}

} // namespace syncperf::gpusim
