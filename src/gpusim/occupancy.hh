/**
 * @file
 * Occupancy arithmetic: how a launch maps onto a device.
 *
 * The paper's CUDA results repeatedly hinge on residency (threads per
 * SM, blocks per SM, waves); this utility exposes the same arithmetic
 * the machine's block scheduler applies, as a documented API.
 */

#ifndef SYNCPERF_GPUSIM_OCCUPANCY_HH
#define SYNCPERF_GPUSIM_OCCUPANCY_HH

#include "gpusim/gpu_config.hh"
#include "gpusim/kernel.hh"

namespace syncperf::gpusim
{

/** Static residency facts about one launch on one device. */
struct Occupancy
{
    int blocks_per_sm = 0;    ///< co-resident blocks on one SM
    int warps_per_sm = 0;     ///< resident warps when an SM is full
    int threads_per_sm = 0;   ///< resident threads when an SM is full
    int resident_blocks = 0;  ///< device-wide co-resident blocks
    int waves = 0;            ///< sequential waves to run the grid
    double fraction = 0.0;    ///< threads_per_sm / max_threads_per_sm

    /** True when every block of the grid is co-resident (a
     * cooperative grid-wide sync cannot deadlock). */
    bool coResident() const { return waves == 1; }
};

/**
 * Compute residency for @p launch on @p cfg.
 *
 * Mirrors the machine's block scheduler exactly: blocks per SM are
 * limited by both the thread capacity and the hardware block slots.
 */
Occupancy computeOccupancy(const GpuConfig &cfg, LaunchConfig launch);

} // namespace syncperf::gpusim

#endif // SYNCPERF_GPUSIM_OCCUPANCY_HH
