/**
 * @file
 * GPU presets for the paper's Table I devices.
 */

#include "gpu_config.hh"

namespace syncperf::gpusim
{

GpuConfig
GpuConfig::rtx2070Super()
{
    GpuConfig c;
    c.name = "NVIDIA GeForce RTX 2070 SUPER";
    c.clock_ghz = 1.80;
    c.sm_count = 40;
    c.max_threads_per_sm = 1024;
    c.cuda_cores_per_sm = 64;
    c.compute_capability = 7.5;
    // Turing sustains full-rate sync/shuffle up to 512 threads per SM
    // (Fig 8b): 4 warps per scheduler at issue_ii 1 needs latency 4.
    c.syncwarp_latency = 4;
    c.shfl_latency = 5;
    c.vote_latency = 6;
    c.reduce_latency = 0;        // not supported before cc 8.0
    c.l2_atomic_units = 16;
    c.mem_bytes_per_cycle = 248.0;  // 448 GB/s at 1.8 GHz
    return c;
}

GpuConfig
GpuConfig::a100()
{
    GpuConfig c;
    c.name = "NVIDIA A100 40GB";
    c.clock_ghz = 1.41;
    c.sm_count = 108;
    c.max_threads_per_sm = 2048;
    c.cuda_cores_per_sm = 64;
    c.compute_capability = 8.0;
    // Ampere behaves like Ada here: full rate up to 256 threads/SM.
    c.syncwarp_latency = 2;
    c.shfl_latency = 3;
    c.vote_latency = 4;
    c.l2_atomic_units = 40;
    c.mem_bytes_per_cycle = 1100.0; // 1555 GB/s at 1.41 GHz
    return c;
}

GpuConfig
GpuConfig::rtx4090()
{
    GpuConfig c;
    c.name = "NVIDIA GeForce RTX 4090";
    c.clock_ghz = 2.625;
    c.sm_count = 128;
    c.max_threads_per_sm = 1536;
    c.cuda_cores_per_sm = 128;
    c.compute_capability = 8.9;
    // Ada: full-rate sync/shuffle up to 256 threads per SM (Fig 8a).
    c.syncwarp_latency = 2;
    c.shfl_latency = 3;
    c.vote_latency = 4;
    c.l2_atomic_units = 48;
    c.mem_bytes_per_cycle = 384.0;  // ~1 TB/s at 2.625 GHz
    return c;
}

} // namespace syncperf::gpusim
