/**
 * @file
 * Implementation of the SIMT GPU timing machine.
 */

#include "machine.hh"

#include <algorithm>

#include "common/logging.hh"

namespace syncperf::gpusim
{
namespace
{

/** Composite key for per-SM per-line gating. */
std::uint64_t
smLineKey(int sm, std::uint64_t line)
{
    return (static_cast<std::uint64_t>(sm) << 44) ^ line;
}

/** 32-byte sector granularity used by the L2 atomic path. */
constexpr std::uint64_t sector_shift = 5;

} // namespace

GpuMachine::GpuMachine(GpuConfig cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)), rng_(seed, 0xb5ad4eceda1ce2a9ULL)
{
}

GpuMachine::Tick
GpuMachine::issueThrough(WarpCtx &warp, Tick ready, int uops)
{
    Tick &slot = sched_free_[warp.sm * cfg_.schedulers_per_sm + warp.sched];
    const Tick start = std::max(ready, slot);
    slot = start + static_cast<Tick>(uops) * cfg_.issue_ii;
    return slot;
}

GpuMachine::Tick
GpuMachine::gateDelay(DataType t) const
{
    switch (t) {
      case DataType::Int32: return cfg_.sm_gate_int;
      case DataType::UInt64: return cfg_.sm_gate_ull;
      default: return cfg_.sm_gate_fp;
    }
}

int
GpuMachine::activeLanes(const WarpCtx &warp, const GpuOp &op) const
{
    switch (op.pred) {
      case Predicate::All:
        return warp.lanes;
      case Predicate::Lane0:
        return 1;
      case Predicate::Thread0:
        return warp.warp_in_block == 0 ? 1 : 0;
    }
    return warp.lanes;
}

std::uint64_t
GpuMachine::resolveAddr(const WarpCtx &warp, const GpuOp &op,
                        int lane) const
{
    const auto esize = dataTypeSize(op.dtype);
    switch (op.amode) {
      case AddressMode::SingleShared:
        return op.base_addr;
      case AddressMode::PerThread:
        return op.base_addr +
               static_cast<std::uint64_t>(warp.first_tid + lane) *
                   op.stride * esize;
      case AddressMode::PerBlock:
        // One variable per block, padded to separate sectors.
        return op.base_addr +
               static_cast<std::uint64_t>(warp.block) * 128;
    }
    return op.base_addr;
}

GpuMachine::Tick
GpuMachine::execGlobalLoad(WarpCtx &warp, const GpuOp &op, Tick issued)
{
    const int active = activeLanes(warp, op);
    if (active == 0)
        return issued;
    const auto bytes = static_cast<std::uint64_t>(active) *
                       dataTypeSize(op.dtype) * op.stride;
    const auto sectors = (bytes + 31) / 32;

    Tick &lsu = lsu_free_[warp.sm];
    const Tick post_start = std::max(issued, lsu);
    const Tick post_done = post_start + sectors * cfg_.lsu_ii;
    lsu = post_done;

    const Tick bw_start = std::max(post_done, mem_bw_free_);
    mem_bw_free_ = bw_start + static_cast<Tick>(
        static_cast<double>(bytes) / cfg_.mem_bytes_per_cycle + 1.0);
    stats_.inc("gpu.load_sectors", sectors);
    return bw_start + cfg_.mem_rt;
}

GpuMachine::Tick
GpuMachine::execGlobalAtomic(WarpCtx &warp, const GpuOp &op, Tick issued)
{
    const int active = activeLanes(warp, op);
    if (active == 0)
        return issued;

    const bool value_returning =
        op.aop == AtomicOp::Cas || op.aop == AtomicOp::Exch;
    const bool same_addr = op.amode != AddressMode::PerThread;

    Tick &lsu = lsu_free_[warp.sm];

    if (same_addr) {
        const std::uint64_t line =
            resolveAddr(warp, op, 0) >> sector_shift;
        GateSlots &gate = sm_line_gate_[smLineKey(warp.sm, line)];

        if (!value_returning) {
            // Reduction-style op on one address: the JIT aggregates
            // the warp's lanes into a single request (Fig 9). The SM
            // keeps sm_atomic_depth such requests in flight; the
            // next one stalls the LSU until a slot frees up, which
            // is the per-SM knee of Fig 9.
            const bool aggregated = cfg_.enable_warp_aggregation;
            const int requests = aggregated ? 1 : active;
            stats_.inc(aggregated ? "gpu.atomic_aggregated"
                                  : "gpu.atomic_unaggregated");
            // One in flight per warp, sm_atomic_depth in flight per
            // SM: per-warp throughput is flat until the SM window
            // fills (Fig 9: constant up to two warps per SM).
            const Tick slot_free =
                cfg_.sm_atomic_depth >= 2 ? gate.oldest : gate.newest;
            const Tick post_start =
                std::max({issued, lsu, slot_free, warp.own_atomic_gate});
            const Tick post_done =
                post_start + static_cast<Tick>(requests) * cfg_.lsu_ii;
            lsu = post_done;
            Tick &lf = line_free_[line];
            const Tick svc_start = std::max(post_done, lf);
            const Tick svc_done =
                svc_start +
                static_cast<Tick>(requests) * cfg_.addrIi(op.dtype);
            lf = svc_done;
            gate.oldest = gate.newest;
            // The gate paces on the posting time plus a fixed round
            // trip, NOT on the (possibly queued) service time --
            // pacing on service would compound queue delays into a
            // positive feedback across SMs.
            gate.newest = post_done + gateDelay(op.dtype);
            warp.own_atomic_gate = gate.newest;
            // Fire-and-forget with a bounded in-flight window.
            const Tick window_ok =
                svc_done > cfg_.ff_window ? svc_done - cfg_.ff_window : 0;
            return std::max(post_done, window_ok);
        }

        // CAS / exchange: never aggregated, one outstanding per SM;
        // lanes pipeline in small groups and the warp waits for its
        // last lane's round trip (Fig 11, 13).
        stats_.inc("gpu.atomic_cas_like");
        const int groups =
            (active + cfg_.cas_pipeline_lanes - 1) / cfg_.cas_pipeline_lanes;
        const Tick post_start = std::max({issued, lsu, gate.newest});
        const Tick post_done =
            post_start + static_cast<Tick>(active) * cfg_.lsu_ii;
        lsu = post_done;
        Tick &lf = line_free_[line];
        const Tick svc_start = std::max(post_done, lf);
        const Tick svc_done =
            svc_start + static_cast<Tick>(groups) * cfg_.cas_group_ii;
        lf = svc_done;
        gate.oldest = gate.newest;
        gate.newest = svc_done;
        return svc_done + cfg_.atomic_rt;
    }

    // Per-thread addresses: one request per lane, hashed across the
    // L2 atomic units (Fig 10, 12).
    stats_.inc("gpu.atomic_per_thread", active);
    const Tick post_start = std::max(issued, lsu);
    const Tick post_done =
        post_start + static_cast<Tick>(active) * cfg_.lsu_ii;
    lsu = post_done;

    // Group the lanes' sectors.
    std::unordered_map<std::uint64_t, int> per_line;
    for (int lane = 0; lane < active; ++lane)
        ++per_line[resolveAddr(warp, op, lane) >> sector_shift];

    Tick last_svc = post_done;
    for (const auto &[line, count] : per_line) {
        Tick &unit =
            unit_free_[line % static_cast<std::uint64_t>(
                                  cfg_.l2_atomic_units)];
        const Tick svc_start = std::max(post_done, unit);
        const Tick svc_done =
            svc_start + static_cast<Tick>(count) * cfg_.unitIi(op.dtype);
        unit = svc_done;
        last_svc = std::max(last_svc, svc_done);
    }

    if (value_returning)
        return last_svc + cfg_.atomic_rt;
    const Tick window_ok =
        last_svc > cfg_.ff_window ? last_svc - cfg_.ff_window : 0;
    return std::max(post_done, window_ok);
}

GpuMachine::Tick
GpuMachine::execSharedAtomic(WarpCtx &warp, const GpuOp &op, Tick issued)
{
    const int active = activeLanes(warp, op);
    if (active == 0)
        return issued;
    const bool value_returning =
        op.aop == AtomicOp::Cas || op.aop == AtomicOp::Exch;

    Tick &unit = smem_free_[warp.sm];
    const Tick svc_start = std::max(issued, unit);
    const Tick svc_done =
        svc_start + static_cast<Tick>(active) * cfg_.smem_addr_ii;
    unit = svc_done;
    stats_.inc("gpu.smem_atomic", active);

    if (value_returning)
        return svc_done + cfg_.smem_rt;
    const Tick window_ok =
        svc_done > cfg_.smem_ff_window ? svc_done - cfg_.smem_ff_window : 0;
    return std::max(issued + cfg_.issue_ii, window_ok);
}

void
GpuMachine::arriveSyncThreads(int warp_id, Tick when)
{
    WarpCtx &warp = warps_[warp_id];
    BlockState &block = blocks_[warp.block];
    ++block.arrived;
    block.last_arrival = std::max(block.last_arrival, when);
    block.waiters.push_back(warp_id);
    if (block.arrived < block.warps)
        return;

    // Hardware barrier: arrival/release processing is per warp.
    const Tick release =
        block.last_arrival + cfg_.syncthreads_base +
        static_cast<Tick>(block.warps) * cfg_.syncthreads_per_warp;
    stats_.inc("gpu.syncthreads");

    std::vector<int> waiters = std::move(block.waiters);
    block.waiters.clear();
    block.arrived = 0;
    block.last_arrival = 0;

    for (int w : waiters) {
        eq_.schedule(release, [this, w, release] {
            finishOp(w, release);
        }, w);
    }
}

void
GpuMachine::arriveGridSync(int warp_id, Tick when)
{
    WarpCtx &warp = warps_[warp_id];
    if (!pending_blocks_.empty()) {
        fatal("grid-wide sync in block {} would deadlock: {} blocks are "
              "not resident (use a cooperative launch that fits the "
              "device)", warp.block, pending_blocks_.size());
    }
    ++grid_arrivals_;
    grid_last_arrival_ = std::max(grid_last_arrival_, when);
    grid_waiters_.push_back(warp_id);

    int total_warps = 0;
    for (const auto &block : blocks_)
        total_warps += block.warps;
    if (grid_arrivals_ < total_warps)
        return;

    // Arrival counting happens through L2 atomics, serialized per
    // block; release is a device-wide broadcast.
    const Tick release =
        grid_last_arrival_ + cfg_.grid_sync_base +
        static_cast<Tick>(blocks_.size()) * cfg_.grid_sync_per_block;
    stats_.inc("gpu.grid_sync");

    std::vector<int> waiters = std::move(grid_waiters_);
    grid_waiters_.clear();
    grid_arrivals_ = 0;
    grid_last_arrival_ = 0;
    for (int w : waiters) {
        eq_.schedule(release, [this, w, release] {
            finishOp(w, release);
        }, w);
    }
}

void
GpuMachine::step(int warp_id)
{
    WarpCtx &warp = warps_[warp_id];
    SYNCPERF_ASSERT(!warp.done);
    const Tick now = eq_.now();

    const std::vector<GpuOp> *seq = nullptr;
    switch (warp.phase) {
      case Phase::Prologue: seq = &kernel_->prologue; break;
      case Phase::Warmup:
      case Phase::Timed: seq = &kernel_->body; break;
      case Phase::Epilogue: seq = &kernel_->epilogue; break;
    }
    if (seq->empty() || warp.pc >= seq->size()) {
        advancePhase(warp_id, now);
        return;
    }

    const GpuOp &op = (*seq)[warp.pc];
    if (warp.rep_left == 0)
        warp.rep_left = op.repeat;

    Tick done;
    switch (op.kind) {
      case GpuOpKind::Alu:
        done = issueThrough(warp, now) + cfg_.alu_latency;
        break;
      case GpuOpKind::DivergentAlu: {
        // SIMT divergence: the warp executes every taken path
        // serially (Bialas & Strzelecki: the cost per extra path is
        // constant). Each path issues and completes in turn.
        const int paths = std::max(1, op.diverge_paths);
        done = issueThrough(warp, now, paths) +
               static_cast<Tick>(paths) * cfg_.alu_latency;
        stats_.inc("gpu.divergent_paths", paths);
        break;
      }
      case GpuOpKind::SyncWarp:
        done = issueThrough(warp, now) + cfg_.syncwarp_latency;
        break;
      case GpuOpKind::Shfl: {
        const int uops = dataTypeSize(op.dtype) > 4 ? 2 : 1;
        // Micro-ops pipeline: latency of the first plus one issue
        // slot per extra micro-op, but they occupy the scheduler for
        // all slots (this halves the 64-bit knee, Fig 15).
        done = issueThrough(warp, now, uops) + cfg_.shfl_latency;
        stats_.inc("gpu.shfl_uops", uops);
        break;
      }
      case GpuOpKind::Vote:
        done = issueThrough(warp, now) + cfg_.vote_latency;
        break;
      case GpuOpKind::ReduceSync: {
        if (cfg_.reduce_latency == 0) {
            fatal("__reduce_*_sync requires compute capability >= 8.0 "
                  "({} is cc {})", cfg_.name, cfg_.compute_capability);
        }
        const Tick issued = issueThrough(warp, now);
        Tick &unit = reduce_free_[warp.sm];
        const Tick start = std::max(issued, unit);
        unit = start + cfg_.reduce_occupancy;
        done = start + cfg_.reduce_latency;
        stats_.inc("gpu.reduce_sync");
        break;
      }
      case GpuOpKind::Fence: {
        const Tick issued = issueThrough(warp, now);
        switch (op.scope) {
          case FenceScope::Block:
            // Block scope only orders within the SM; pending stores
            // are already visible there, so the cost is tiny.
            done = issued + cfg_.fence_block;
            break;
          case FenceScope::Device: {
            // Draining the store path occupies the SM's LSU, so the
            // cost is not hidden behind other warps' traffic.
            Tick &lsu = lsu_free_[warp.sm];
            lsu = std::max(lsu, issued) + cfg_.fence_lsu_drain;
            done = std::max({issued, warp.last_store_commit, lsu}) +
                   cfg_.fence_device;
            break;
          }
          case FenceScope::System: {
            Tick &lsu = lsu_free_[warp.sm];
            lsu = std::max(lsu, issued) + cfg_.fence_lsu_drain;
            done = std::max({issued, warp.last_store_commit, lsu}) +
                   cfg_.fence_system +
                   rng_.below(static_cast<std::uint32_t>(
                       cfg_.fence_system_jitter + 1));
            break;
          }
          default:
            done = issued + cfg_.fence_device;
        }
        stats_.inc("gpu.fence");
        break;
      }
      case GpuOpKind::GlobalLoad:
        done = execGlobalLoad(warp, op, issueThrough(warp, now));
        break;
      case GpuOpKind::GlobalStore: {
        // Stores retire into the LSU/store path; the warp does not
        // wait for memory (no data dependency).
        const Tick issued = issueThrough(warp, now);
        const int active = activeLanes(warp, op);
        if (active == 0) {
            done = issued;
            break;
        }
        const auto bytes = static_cast<std::uint64_t>(active) *
                           dataTypeSize(op.dtype) * op.stride;
        const auto sectors = (bytes + 31) / 32;
        Tick &lsu = lsu_free_[warp.sm];
        const Tick post_start = std::max(issued, lsu);
        lsu = post_start + sectors * cfg_.lsu_ii;
        const Tick bw_start = std::max(lsu, mem_bw_free_);
        mem_bw_free_ = bw_start + static_cast<Tick>(
            static_cast<double>(bytes) / cfg_.mem_bytes_per_cycle + 1.0);
        // Commit (device-wide visibility at the L2) happens a fixed
        // half round trip after posting; a device fence must wait
        // for it (Fig 14). Deliberately decoupled from the DRAM
        // bandwidth queue so fence overhead stays flat under load,
        // matching the paper's measurements.
        warp.last_store_commit = lsu + cfg_.mem_rt / 2;
        stats_.inc("gpu.store_sectors", sectors);
        done = lsu;
        break;
      }
      case GpuOpKind::GlobalAtomic:
        done = execGlobalAtomic(warp, op, issueThrough(warp, now));
        break;
      case GpuOpKind::SharedAtomic:
        done = execSharedAtomic(warp, op, issueThrough(warp, now));
        break;
      case GpuOpKind::SyncThreads:
        arriveSyncThreads(warp_id, issueThrough(warp, now));
        return;
      case GpuOpKind::GridSync:
        arriveGridSync(warp_id, issueThrough(warp, now));
        return;
      default:
        panic("unhandled GPU op kind");
    }
    finishOp(warp_id, done);
}

void
GpuMachine::finishOp(int warp_id, Tick done)
{
    WarpCtx &warp = warps_[warp_id];
    if (--warp.rep_left > 0) {
        eq_.schedule(done, [this, warp_id] { step(warp_id); }, warp_id);
        return;
    }
    ++warp.pc;

    const std::vector<GpuOp> *seq = nullptr;
    switch (warp.phase) {
      case Phase::Prologue: seq = &kernel_->prologue; break;
      case Phase::Warmup:
      case Phase::Timed: seq = &kernel_->body; break;
      case Phase::Epilogue: seq = &kernel_->epilogue; break;
    }
    if (warp.pc < seq->size()) {
        eq_.schedule(done, [this, warp_id] { step(warp_id); }, warp_id);
        return;
    }
    warp.pc = 0;
    if ((warp.phase == Phase::Warmup || warp.phase == Phase::Timed) &&
        --warp.iters_left > 0) {
        eq_.schedule(done, [this, warp_id] { step(warp_id); }, warp_id);
        return;
    }
    advancePhase(warp_id, done);
}

void
GpuMachine::advancePhase(int warp_id, Tick done)
{
    WarpCtx &warp = warps_[warp_id];
    switch (warp.phase) {
      case Phase::Prologue:
        if (warmup_iterations_ > 0 && !kernel_->body.empty()) {
            warp.phase = Phase::Warmup;
            warp.iters_left = warmup_iterations_;
            eq_.schedule(done, [this, warp_id] { step(warp_id); },
                         warp_id);
            return;
        }
        warp.phase = Phase::Timed;
        warp.start = done;
        warp.iters_left = kernel_->body.empty() ? 0 : kernel_->body_iters;
        if (warp.iters_left == 0) {
            advancePhase(warp_id, done);
            return;
        }
        eq_.schedule(done, [this, warp_id] { step(warp_id); }, warp_id);
        return;

      case Phase::Warmup: {
        // Align the block, then stamp clock64() (Listing 3 line 11).
        warp.phase = Phase::Timed;
        warp.iters_left = kernel_->body_iters;
        // The alignment __syncthreads() reuses the block barrier; the
        // start stamp is taken at its release.
        BlockState &block = blocks_[warp.block];
        ++block.arrived;
        block.last_arrival = std::max(block.last_arrival, done);
        block.waiters.push_back(warp_id);
        if (block.arrived < block.warps)
            return;
        const Tick release =
            block.last_arrival + cfg_.syncthreads_base +
            static_cast<Tick>(block.warps) * cfg_.syncthreads_per_warp;
        std::vector<int> waiters = std::move(block.waiters);
        block.waiters.clear();
        block.arrived = 0;
        block.last_arrival = 0;
        for (int w : waiters) {
            eq_.schedule(release, [this, w, release] {
                warps_[w].start = release;
                step(w);
            }, w);
        }
        return;
      }

      case Phase::Timed:
        warp.end = done;
        warp.phase = Phase::Epilogue;
        if (kernel_->epilogue.empty()) {
            warpDone(warp_id, done);
            return;
        }
        eq_.schedule(done, [this, warp_id] { step(warp_id); }, warp_id);
        return;

      case Phase::Epilogue:
        warpDone(warp_id, done);
        return;
    }
}

void
GpuMachine::warpDone(int warp_id, Tick done)
{
    WarpCtx &warp = warps_[warp_id];
    warp.done = true;
    if (warp.end == 0)
        warp.end = done;

    BlockState &block = blocks_[warp.block];
    if (++block.done_warps < block.warps)
        return;

    // Block retired: release its SM slot and launch a pending block.
    sm_free_threads_[block.sm] += block.threads;
    --sm_blocks_[block.sm];
    stats_.inc("gpu.blocks_retired");
    tryLaunchBlocks(done);
}

void
GpuMachine::tryLaunchBlocks(Tick when)
{
    while (!pending_blocks_.empty()) {
        const int block_id = pending_blocks_.front();
        const BlockState &pending = blocks_[block_id];
        int best_sm = -1;
        for (int sm = 0; sm < cfg_.sm_count; ++sm) {
            if (sm_free_threads_[sm] >= pending.threads &&
                sm_blocks_[sm] < cfg_.max_blocks_per_sm) {
                if (best_sm < 0 ||
                    sm_free_threads_[sm] > sm_free_threads_[best_sm]) {
                    best_sm = sm;
                }
            }
        }
        if (best_sm < 0)
            return;
        pending_blocks_.pop_front();
        launchBlock(block_id, best_sm, when);
    }
}

void
GpuMachine::launchBlock(int block_id, int sm, Tick when)
{
    BlockState &block = blocks_[block_id];
    block.sm = sm;
    sm_free_threads_[sm] -= block.threads;
    ++sm_blocks_[sm];

    const Tick start = when + cfg_.block_launch_overhead;
    for (int w = 0; w < block.warps; ++w) {
        const int warp_id = block.first_warp + w;
        WarpCtx &warp = warps_[warp_id];
        warp.sm = sm;
        warp.sched = sm_next_sched_[sm];
        sm_next_sched_[sm] =
            (sm_next_sched_[sm] + 1) % cfg_.schedulers_per_sm;
        eq_.schedule(start, [this, warp_id] { step(warp_id); }, warp_id);
    }
    stats_.inc("gpu.blocks_launched");
}

GpuRunResult
GpuMachine::run(const GpuKernel &kernel, LaunchConfig launch,
                int warmup_iterations)
{
    SYNCPERF_ASSERT(launch.blocks >= 1);
    SYNCPERF_ASSERT(launch.threads_per_block >= 1 &&
                    launch.threads_per_block <= cfg_.max_threads_per_block);
    SYNCPERF_ASSERT(kernel.body_iters >= 1 || kernel.body.empty());

    kernel_ = &kernel;
    launch_ = launch;
    warmup_iterations_ = warmup_iterations;

    eq_ = sim::EventQueue{};
    warps_.clear();
    blocks_.assign(launch.blocks, BlockState{});
    pending_blocks_.clear();
    sm_free_threads_.assign(cfg_.sm_count, cfg_.max_threads_per_sm);
    sm_blocks_.assign(cfg_.sm_count, 0);
    sm_next_sched_.assign(cfg_.sm_count, 0);
    sched_free_.assign(
        static_cast<std::size_t>(cfg_.sm_count) * cfg_.schedulers_per_sm,
        0);
    lsu_free_.assign(cfg_.sm_count, 0);
    smem_free_.assign(cfg_.sm_count, 0);
    reduce_free_.assign(cfg_.sm_count, 0);
    unit_free_.assign(cfg_.l2_atomic_units, 0);
    line_free_.clear();
    sm_line_gate_.clear();
    mem_bw_free_ = 0;
    grid_arrivals_ = 0;
    grid_last_arrival_ = 0;
    grid_waiters_.clear();

    const int warps_per_block = cfg_.warpsPerBlock(launch.threads_per_block);
    for (int b = 0; b < launch.blocks; ++b) {
        BlockState &block = blocks_[b];
        block.warps = warps_per_block;
        block.threads = launch.threads_per_block;
        block.first_warp = static_cast<int>(warps_.size());
        for (int w = 0; w < warps_per_block; ++w) {
            WarpCtx warp;
            warp.block = b;
            warp.warp_in_block = w;
            warp.first_tid = b * launch.threads_per_block +
                             w * cfg_.warp_size;
            warp.lanes = std::min(
                cfg_.warp_size,
                launch.threads_per_block - w * cfg_.warp_size);
            warps_.push_back(warp);
        }
        pending_blocks_.push_back(b);
    }
    tryLaunchBlocks(0);

    const Tick end = eq_.run();

    GpuRunResult result;
    result.total_cycles = end;
    result.thread_cycles.reserve(
        static_cast<std::size_t>(launch.blocks) * launch.threads_per_block);
    for (const auto &warp : warps_) {
        SYNCPERF_ASSERT(warp.done, "warp did not finish (deadlock?)");
        const Tick elapsed = warp.end >= warp.start
            ? warp.end - warp.start : 0;
        for (int lane = 0; lane < warp.lanes; ++lane)
            result.thread_cycles.push_back(elapsed);
    }
    return result;
}

} // namespace syncperf::gpusim
