/**
 * @file
 * Implementation of the SIMT GPU timing machine.
 */

#include "machine.hh"

#include <algorithm>
#include <iterator>
#include <limits>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "sim/snapshot.hh"

namespace syncperf::gpusim
{
namespace
{

/** Pcg32 stream selector for the GPU jitter model. */
constexpr std::uint64_t rng_stream = 0xb5ad4eceda1ce2a9ULL;

/** Composite key for per-SM per-line gating. */
std::uint64_t
smLineKey(int sm, std::uint64_t line)
{
    return (static_cast<std::uint64_t>(sm) << 44) ^ line;
}

/** 32-byte sector granularity used by the L2 atomic path. */
constexpr std::uint64_t sector_shift = 5;

/** Upper bound on lanes per warp for stack-local sector grouping. */
constexpr int max_lanes = 64;

} // namespace

GpuMachine::GpuMachine(GpuConfig cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)), rng_(seed, rng_stream)
{
}

void
GpuMachine::reseed(std::uint64_t seed)
{
    rng_ = Pcg32(seed, rng_stream);
}

Tick
GpuMachine::issueThrough(WarpCtx &warp, Tick ready, int uops)
{
    Tick &slot = sched_free_[warp.sm * cfg_.schedulers_per_sm + warp.sched];
    const Tick start = std::max(ready, slot);
    slot = start + static_cast<Tick>(uops) * cfg_.issue_ii;
    return slot;
}

Tick
GpuMachine::gateDelay(DataType t) const
{
    switch (t) {
      case DataType::Int32: return cfg_.sm_gate_int;
      case DataType::UInt64: return cfg_.sm_gate_ull;
      default: return cfg_.sm_gate_fp;
    }
}

int
GpuMachine::activeLanes(const WarpCtx &warp, const DecodedGpuOp &op) const
{
    switch (op.pred) {
      case Predicate::All:
        return warp.lanes;
      case Predicate::Lane0:
        return 1;
      case Predicate::Thread0:
        return warp.warp_in_block == 0 ? 1 : 0;
    }
    return warp.lanes;
}

std::uint64_t
GpuMachine::resolveAddr(const WarpCtx &warp, const DecodedGpuOp &op,
                        int lane) const
{
    switch (op.amode) {
      case AddressMode::SingleShared:
        return op.base_addr;
      case AddressMode::PerThread:
        return op.base_addr +
               static_cast<std::uint64_t>(warp.first_tid + lane) *
                   op.stride * op.esize;
      case AddressMode::PerBlock:
        // One variable per block, padded to separate sectors.
        return op.base_addr +
               static_cast<std::uint64_t>(warp.block) * 128;
    }
    return op.base_addr;
}

void
GpuMachine::execAlu(int warp_id, const DecodedGpuOp &op, Tick now)
{
    finishOp(warp_id, issueThrough(warps_[warp_id], now) + op.lat);
}

void
GpuMachine::execDivergentAlu(int warp_id, const DecodedGpuOp &op,
                             Tick now)
{
    // SIMT divergence: the warp executes every taken path serially
    // (Bialas & Strzelecki: the cost per extra path is constant).
    // Each path issues and completes in turn; op.lat carries the
    // precomputed paths * alu_latency total.
    stats_.inc(sim::Probe::GpuDivergentPaths,
               static_cast<std::uint64_t>(op.uops));
    finishOp(warp_id,
             issueThrough(warps_[warp_id], now, op.uops) + op.lat);
}

void
GpuMachine::execSyncWarp(int warp_id, const DecodedGpuOp &op, Tick now)
{
    finishOp(warp_id, issueThrough(warps_[warp_id], now) + op.lat);
}

void
GpuMachine::execShfl(int warp_id, const DecodedGpuOp &op, Tick now)
{
    // Micro-ops pipeline: latency of the first plus one issue slot
    // per extra micro-op, but they occupy the scheduler for all
    // slots (this halves the 64-bit knee, Fig 15).
    stats_.inc(sim::Probe::GpuShflUops,
               static_cast<std::uint64_t>(op.uops));
    finishOp(warp_id,
             issueThrough(warps_[warp_id], now, op.uops) + op.lat);
}

void
GpuMachine::execVote(int warp_id, const DecodedGpuOp &op, Tick now)
{
    finishOp(warp_id, issueThrough(warps_[warp_id], now) + op.lat);
}

void
GpuMachine::execReduceSync(int warp_id, const DecodedGpuOp &, Tick now)
{
    WarpCtx &warp = warps_[warp_id];
    const Tick issued = issueThrough(warp, now);
    Tick &unit = reduce_free_[warp.sm];
    const Tick start = std::max(issued, unit);
    unit = start + cfg_.reduce_occupancy;
    stats_.inc(sim::Probe::GpuReduceSync);
    finishOp(warp_id, start + cfg_.reduce_latency);
}

void
GpuMachine::execFenceBlock(int warp_id, const DecodedGpuOp &op, Tick now)
{
    // Block scope only orders within the SM; pending stores are
    // already visible there, so the cost is tiny.
    stats_.inc(sim::Probe::GpuFence);
    finishOp(warp_id, issueThrough(warps_[warp_id], now) + op.lat);
}

void
GpuMachine::execFenceDevice(int warp_id, const DecodedGpuOp &op,
                            Tick now)
{
    // Draining the store path occupies the SM's LSU, so the cost is
    // not hidden behind other warps' traffic.
    WarpCtx &warp = warps_[warp_id];
    const Tick issued = issueThrough(warp, now);
    Tick &lsu = lsu_free_[warp.sm];
    lsu = std::max(lsu, issued) + cfg_.fence_lsu_drain;
    stats_.inc(sim::Probe::GpuFence);
    const Tick drained = std::max({issued, warp.last_store_commit, lsu});
    stats_.record(sim::HistProbe::GpuFenceStallTicks, drained - issued);
    finishOp(warp_id, drained + op.lat);
}

void
GpuMachine::execFenceSystem(int warp_id, const DecodedGpuOp &op,
                            Tick now)
{
    WarpCtx &warp = warps_[warp_id];
    const Tick issued = issueThrough(warp, now);
    Tick &lsu = lsu_free_[warp.sm];
    lsu = std::max(lsu, issued) + cfg_.fence_lsu_drain;
    stats_.inc(sim::Probe::GpuFence);
    const Tick drained = std::max({issued, warp.last_store_commit, lsu});
    stats_.record(sim::HistProbe::GpuFenceStallTicks, drained - issued);
    finishOp(warp_id,
             drained + op.lat +
                 rng_.below(static_cast<std::uint32_t>(
                     cfg_.fence_system_jitter + 1)));
}

void
GpuMachine::execGlobalLoad(int warp_id, const DecodedGpuOp &op, Tick now)
{
    WarpCtx &warp = warps_[warp_id];
    const Tick issued = issueThrough(warp, now);
    const int active = activeLanes(warp, op);
    if (active == 0) {
        finishOp(warp_id, issued);
        return;
    }
    const auto bytes =
        static_cast<std::uint64_t>(active) * op.esize * op.stride;
    const auto sectors = (bytes + 31) / 32;

    Tick &lsu = lsu_free_[warp.sm];
    const Tick post_start = std::max(issued, lsu);
    const Tick post_done = post_start + sectors * cfg_.lsu_ii;
    lsu = post_done;

    const Tick bw_start = std::max(post_done, mem_bw_free_);
    mem_bw_free_ = bw_start + static_cast<Tick>(
        static_cast<double>(bytes) / cfg_.mem_bytes_per_cycle + 1.0);
    stats_.inc(sim::Probe::GpuLoadSectors, sectors);
    finishOp(warp_id, bw_start + cfg_.mem_rt);
}

void
GpuMachine::execGlobalStore(int warp_id, const DecodedGpuOp &op,
                            Tick now)
{
    // Stores retire into the LSU/store path; the warp does not wait
    // for memory (no data dependency).
    WarpCtx &warp = warps_[warp_id];
    const Tick issued = issueThrough(warp, now);
    const int active = activeLanes(warp, op);
    if (active == 0) {
        finishOp(warp_id, issued);
        return;
    }
    const auto bytes =
        static_cast<std::uint64_t>(active) * op.esize * op.stride;
    const auto sectors = (bytes + 31) / 32;
    Tick &lsu = lsu_free_[warp.sm];
    const Tick post_start = std::max(issued, lsu);
    lsu = post_start + sectors * cfg_.lsu_ii;
    const Tick bw_start = std::max(lsu, mem_bw_free_);
    mem_bw_free_ = bw_start + static_cast<Tick>(
        static_cast<double>(bytes) / cfg_.mem_bytes_per_cycle + 1.0);
    // Commit (device-wide visibility at the L2) happens a fixed half
    // round trip after posting; a device fence must wait for it
    // (Fig 14). Deliberately decoupled from the DRAM bandwidth queue
    // so fence overhead stays flat under load, matching the paper's
    // measurements.
    warp.last_store_commit = lsu + cfg_.mem_rt / 2;
    stats_.inc(sim::Probe::GpuStoreSectors, sectors);
    finishOp(warp_id, lsu);
}

void
GpuMachine::execAtomicSameAddr(int warp_id, const DecodedGpuOp &op,
                               Tick now)
{
    WarpCtx &warp = warps_[warp_id];
    const Tick issued = issueThrough(warp, now);
    const int active = activeLanes(warp, op);
    if (active == 0) {
        finishOp(warp_id, issued);
        return;
    }

    Tick &lsu = lsu_free_[warp.sm];
    const std::uint64_t line = resolveAddr(warp, op, 0) >> sector_shift;
    GateSlots &gate = sm_line_gate_[smLineKey(warp.sm, line)];

    // Reduction-style op on one address: the JIT aggregates the
    // warp's lanes into a single request (Fig 9). The SM keeps
    // sm_atomic_depth such requests in flight; the next one stalls
    // the LSU until a slot frees up, which is the per-SM knee of
    // Fig 9.
    const int requests = op.aggregated ? 1 : active;
    if (op.aggregated)
        stats_.inc(sim::Probe::GpuAtomicAggregated);
    else
        stats_.inc(sim::Probe::GpuAtomicUnaggregated);
    // One in flight per warp, sm_atomic_depth in flight per SM:
    // per-warp throughput is flat until the SM window fills (Fig 9:
    // constant up to two warps per SM).
    const Tick slot_free =
        cfg_.sm_atomic_depth >= 2 ? gate.oldest : gate.newest;
    const Tick post_start =
        std::max({issued, lsu, slot_free, warp.own_atomic_gate});
    const Tick post_done =
        post_start + static_cast<Tick>(requests) * cfg_.lsu_ii;
    lsu = post_done;
    Tick &lf = line_free_[line];
    const Tick svc_start = std::max(post_done, lf);
    const Tick svc_done =
        svc_start + static_cast<Tick>(requests) * op.addr_ii;
    lf = svc_done;
    stats_.record(sim::HistProbe::GpuAtomicWaitTicks,
                  svc_start - post_done);
    gate.oldest = gate.newest;
    // The gate paces on the posting time plus a fixed round trip,
    // NOT on the (possibly queued) service time -- pacing on service
    // would compound queue delays into a positive feedback across
    // SMs.
    gate.newest = post_done + op.gate_delay;
    warp.own_atomic_gate = gate.newest;
    // Fire-and-forget with a bounded in-flight window.
    const Tick window_ok =
        svc_done > cfg_.ff_window ? svc_done - cfg_.ff_window : 0;
    finishOp(warp_id, std::max(post_done, window_ok));
}

void
GpuMachine::execAtomicCasLike(int warp_id, const DecodedGpuOp &op,
                              Tick now)
{
    // CAS / exchange: never aggregated, one outstanding per SM;
    // lanes pipeline in small groups and the warp waits for its last
    // lane's round trip (Fig 11, 13).
    WarpCtx &warp = warps_[warp_id];
    const Tick issued = issueThrough(warp, now);
    const int active = activeLanes(warp, op);
    if (active == 0) {
        finishOp(warp_id, issued);
        return;
    }

    Tick &lsu = lsu_free_[warp.sm];
    const std::uint64_t line = resolveAddr(warp, op, 0) >> sector_shift;
    GateSlots &gate = sm_line_gate_[smLineKey(warp.sm, line)];

    stats_.inc(sim::Probe::GpuAtomicCasLike);
    // Every lane past the winner re-queues through the serialized
    // CAS pipeline: the conflict cohort behind one op.
    if (active > 1) {
        stats_.inc(sim::Probe::GpuCasConflicts,
                   static_cast<std::uint64_t>(active - 1));
    }
    const int groups =
        (active + cfg_.cas_pipeline_lanes - 1) / cfg_.cas_pipeline_lanes;
    const Tick post_start = std::max({issued, lsu, gate.newest});
    const Tick post_done =
        post_start + static_cast<Tick>(active) * cfg_.lsu_ii;
    lsu = post_done;
    Tick &lf = line_free_[line];
    const Tick svc_start = std::max(post_done, lf);
    const Tick svc_done =
        svc_start + static_cast<Tick>(groups) * cfg_.cas_group_ii;
    lf = svc_done;
    stats_.record(sim::HistProbe::GpuAtomicWaitTicks,
                  svc_start - post_done);
    gate.oldest = gate.newest;
    gate.newest = svc_done;
    finishOp(warp_id, svc_done + cfg_.atomic_rt);
}

void
GpuMachine::execAtomicPerThread(int warp_id, const DecodedGpuOp &op,
                                Tick now)
{
    // Per-thread addresses: one request per lane, hashed across the
    // L2 atomic units (Fig 10, 12).
    WarpCtx &warp = warps_[warp_id];
    const Tick issued = issueThrough(warp, now);
    const int active = activeLanes(warp, op);
    if (active == 0) {
        finishOp(warp_id, issued);
        return;
    }

    stats_.inc(sim::Probe::GpuAtomicPerThread,
               static_cast<std::uint64_t>(active));
    Tick &lsu = lsu_free_[warp.sm];
    const Tick post_start = std::max(issued, lsu);
    const Tick post_done =
        post_start + static_cast<Tick>(active) * cfg_.lsu_ii;
    lsu = post_done;

    // Group the lanes' sectors. A warp has at most warp_size lanes,
    // so a stack-local array replaces the per-call hash map; the
    // per-unit reservation below is order-independent (each unit's
    // final time telescopes to max(post_done, start) + sum(counts)),
    // so first-touch order gives identical results.
    SYNCPERF_ASSERT(active <= max_lanes);
    std::uint64_t line_key[max_lanes];
    int line_count[max_lanes];
    int nlines = 0;
    for (int lane = 0; lane < active; ++lane) {
        const std::uint64_t line =
            resolveAddr(warp, op, lane) >> sector_shift;
        int i = 0;
        while (i < nlines && line_key[i] != line)
            ++i;
        if (i == nlines) {
            line_key[i] = line;
            line_count[i] = 0;
            ++nlines;
        }
        ++line_count[i];
    }

    Tick last_svc = post_done;
    for (int i = 0; i < nlines; ++i) {
        Tick &unit =
            unit_free_[line_key[i] % static_cast<std::uint64_t>(
                                         cfg_.l2_atomic_units)];
        const Tick svc_start = std::max(post_done, unit);
        const Tick svc_done =
            svc_start + static_cast<Tick>(line_count[i]) * op.unit_ii;
        unit = svc_done;
        last_svc = std::max(last_svc, svc_done);
    }

    if (op.value_returning) {
        finishOp(warp_id, last_svc + cfg_.atomic_rt);
        return;
    }
    const Tick window_ok =
        last_svc > cfg_.ff_window ? last_svc - cfg_.ff_window : 0;
    finishOp(warp_id, std::max(post_done, window_ok));
}

void
GpuMachine::execSharedAtomic(int warp_id, const DecodedGpuOp &op,
                             Tick now)
{
    WarpCtx &warp = warps_[warp_id];
    const Tick issued = issueThrough(warp, now);
    const int active = activeLanes(warp, op);
    if (active == 0) {
        finishOp(warp_id, issued);
        return;
    }

    Tick &unit = smem_free_[warp.sm];
    const Tick svc_start = std::max(issued, unit);
    const Tick svc_done =
        svc_start + static_cast<Tick>(active) * cfg_.smem_addr_ii;
    unit = svc_done;
    stats_.inc(sim::Probe::GpuSmemAtomic,
               static_cast<std::uint64_t>(active));

    if (op.value_returning) {
        finishOp(warp_id, svc_done + cfg_.smem_rt);
        return;
    }
    const Tick window_ok =
        svc_done > cfg_.smem_ff_window ? svc_done - cfg_.smem_ff_window
                                       : 0;
    finishOp(warp_id, std::max(issued + cfg_.issue_ii, window_ok));
}

void
GpuMachine::execSyncThreads(int warp_id, const DecodedGpuOp &, Tick now)
{
    arriveSyncThreads(warp_id, issueThrough(warps_[warp_id], now));
}

void
GpuMachine::execGridSync(int warp_id, const DecodedGpuOp &, Tick now)
{
    arriveGridSync(warp_id, issueThrough(warps_[warp_id], now));
}

void
GpuMachine::arriveSyncThreads(int warp_id, Tick when)
{
    WarpCtx &warp = warps_[warp_id];
    BlockState &block = blocks_[warp.block];
    if (block.arrived == 0)
        block.first_arrival = when;
    else
        block.first_arrival = std::min(block.first_arrival, when);
    ++block.arrived;
    block.last_arrival = std::max(block.last_arrival, when);
    block.waiters.push_back(warp_id);
    if (block.arrived < block.warps)
        return;

    // Hardware barrier: arrival/release processing is per warp.
    const Tick release =
        block.last_arrival + cfg_.syncthreads_base +
        static_cast<Tick>(block.warps) * cfg_.syncthreads_per_warp;
    stats_.inc(sim::Probe::GpuSyncthreads);
    stats_.record(sim::HistProbe::GpuBarrierSpreadTicks,
                  block.last_arrival - block.first_arrival);

    std::vector<int> waiters = std::move(block.waiters);
    block.waiters.clear();
    block.arrived = 0;
    block.first_arrival = 0;
    block.last_arrival = 0;

    for (int w : waiters) {
        warps_[w].resume = true;
        eq_.schedule(release, [this, w] {
            warps_[w].resume = false;
            finishOp(w, eq_.now());
        }, w);
    }
}

void
GpuMachine::arriveGridSync(int warp_id, Tick when)
{
    WarpCtx &warp = warps_[warp_id];
    if (!pending_blocks_.empty()) {
        fatal("grid-wide sync in block {} would deadlock: {} blocks are "
              "not resident (use a cooperative launch that fits the "
              "device)", warp.block, pending_blocks_.size());
    }
    if (grid_arrivals_ == 0)
        grid_first_arrival_ = when;
    else
        grid_first_arrival_ = std::min(grid_first_arrival_, when);
    ++grid_arrivals_;
    grid_last_arrival_ = std::max(grid_last_arrival_, when);
    grid_waiters_.push_back(warp_id);

    int total_warps = 0;
    for (const auto &block : blocks_)
        total_warps += block.warps;
    if (grid_arrivals_ < total_warps)
        return;

    // Arrival counting happens through L2 atomics, serialized per
    // block; release is a device-wide broadcast.
    const Tick release =
        grid_last_arrival_ + cfg_.grid_sync_base +
        static_cast<Tick>(blocks_.size()) * cfg_.grid_sync_per_block;
    stats_.inc(sim::Probe::GpuGridSync);
    stats_.record(sim::HistProbe::GpuBarrierSpreadTicks,
                  grid_last_arrival_ - grid_first_arrival_);

    std::vector<int> waiters = std::move(grid_waiters_);
    grid_waiters_.clear();
    grid_arrivals_ = 0;
    grid_first_arrival_ = 0;
    grid_last_arrival_ = 0;
    for (int w : waiters) {
        warps_[w].resume = true;
        eq_.schedule(release, [this, w] {
            warps_[w].resume = false;
            finishOp(w, eq_.now());
        }, w);
    }
}

void
GpuMachine::encodeState(Tick base, std::vector<std::uint64_t> &out) const
{
    // Liveness floor: a max-register at or below both the boundary
    // and every pending event can never win another max() against a
    // future time, so it is canonicalized to one dead value; anything
    // above the floor is encoded as its exact offset from the
    // boundary. Rendezvous stamps of a partially arrived barrier are
    // live in both directions (first feeds a min, last can still win
    // its max when issue contention reorders arrival ticks).
    Tick floor = eq_.earliestPending();
    if (base < floor)
        floor = base;
    const auto off = [base](Tick v) {
        return static_cast<std::uint64_t>(v - base);
    };
    constexpr std::uint64_t dead = std::uint64_t{1} << 63;
    const auto maxreg = [&](Tick v) {
        return v > floor ? off(v) : dead;
    };

    // Warp-local stamps (last_store_commit, own_atomic_gate) are
    // only ever read by the owning warp's later ops, whose issue
    // times are at least the warp's own next scheduled event: that
    // tick is a far tighter liveness floor than the global one, and
    // without it a store-heavy warp's commit stamp flickers between
    // dead and live across boundaries, spoiling every fingerprint.
    lb_warp_floor_.resize(warps_.size());
    eq_.earliestPendingPerPriority(lb_warp_floor_);

    out.clear();
    out.push_back(rng_.state());
    for (std::size_t i = 0; i < warps_.size(); ++i) {
        const WarpCtx &w = warps_[i];
        const Tick wfloor = lb_warp_floor_[i] == sim::EventQueue::no_tick
                                ? floor
                                : std::max(floor, lb_warp_floor_[i]);
        const auto wmaxreg = [&](Tick v) {
            return v > wfloor ? off(v) : dead;
        };
        out.push_back(static_cast<std::uint64_t>(w.pc) << 32 |
                      static_cast<std::uint64_t>(w.phase) << 4 |
                      static_cast<std::uint64_t>(w.done) << 1 |
                      static_cast<std::uint64_t>(w.resume));
        out.push_back(static_cast<std::uint64_t>(w.rep_left));
        out.push_back(static_cast<std::uint64_t>(w.sm + 1) << 8 |
                      static_cast<std::uint64_t>(w.sched));
        out.push_back(wmaxreg(w.last_store_commit));
        out.push_back(wmaxreg(w.own_atomic_gate));
    }
    for (const BlockState &b : blocks_) {
        out.push_back(static_cast<std::uint64_t>(b.sm + 1) << 32 |
                      static_cast<std::uint64_t>(b.done_warps) << 16 |
                      static_cast<std::uint64_t>(b.arrived));
        out.push_back(b.arrived ? off(b.first_arrival) : 0);
        out.push_back(b.arrived ? off(b.last_arrival) : 0);
        out.push_back(b.waiters.size());
        for (int w : b.waiters)
            out.push_back(static_cast<std::uint64_t>(w));
    }
    out.push_back(pending_blocks_.size());
    for (int b : pending_blocks_)
        out.push_back(static_cast<std::uint64_t>(b));
    for (int v : sm_free_threads_)
        out.push_back(static_cast<std::uint64_t>(v));
    for (int v : sm_blocks_)
        out.push_back(static_cast<std::uint64_t>(v));
    for (int v : sm_next_sched_)
        out.push_back(static_cast<std::uint64_t>(v));
    for (Tick v : sched_free_)
        out.push_back(maxreg(v));
    for (Tick v : lsu_free_)
        out.push_back(maxreg(v));
    for (Tick v : smem_free_)
        out.push_back(maxreg(v));
    for (Tick v : reduce_free_)
        out.push_back(maxreg(v));
    for (Tick v : unit_free_)
        out.push_back(maxreg(v));
    // The DRAM queue tail is fire-and-forget: stores push it forward
    // without waiting, so under a store-heavy body it runs ahead of
    // the clock without bound and would spoil every boundary
    // fingerprint. Its value only ever reaches a run result through
    // a global load (the one reader); when the launched program
    // contains none, the register is outcome-dead for the rest of
    // the run and canonicalizes like any dead max-register.
    out.push_back(lb_mem_bw_live_ ? maxreg(mem_bw_free_) : dead);

    // Hash maps in key order: iteration order is not part of the
    // machine state.
    lb_map_scratch_.clear();
    for (const auto &[key, when] : line_free_)
        lb_map_scratch_.push_back(key);
    std::sort(lb_map_scratch_.begin(), lb_map_scratch_.end());
    out.push_back(lb_map_scratch_.size());
    for (std::uint64_t key : lb_map_scratch_) {
        out.push_back(key);
        out.push_back(maxreg(line_free_.find(key)->second));
    }
    lb_map_scratch_.clear();
    for (const auto &[key, gate] : sm_line_gate_)
        lb_map_scratch_.push_back(key);
    std::sort(lb_map_scratch_.begin(), lb_map_scratch_.end());
    out.push_back(lb_map_scratch_.size());
    for (std::uint64_t key : lb_map_scratch_) {
        const GateSlots &gate = sm_line_gate_.find(key)->second;
        out.push_back(key);
        out.push_back(maxreg(gate.newest));
        out.push_back(maxreg(gate.oldest));
    }

    out.push_back(static_cast<std::uint64_t>(grid_arrivals_));
    out.push_back(grid_arrivals_ ? off(grid_first_arrival_) : 0);
    out.push_back(grid_arrivals_ ? off(grid_last_arrival_) : 0);
    for (int w : grid_waiters_)
        out.push_back(static_cast<std::uint64_t>(w));
    eq_.encodePending(base, out);
}

void
GpuMachine::shiftTimes(Tick delta)
{
    for (WarpCtx &w : warps_) {
        w.last_store_commit += delta;
        w.own_atomic_gate += delta;
    }
    for (BlockState &b : blocks_) {
        if (b.arrived > 0) {
            b.first_arrival += delta;
            b.last_arrival += delta;
        }
    }
    for (Tick &v : sched_free_)
        v += delta;
    for (Tick &v : lsu_free_)
        v += delta;
    for (Tick &v : smem_free_)
        v += delta;
    for (Tick &v : reduce_free_)
        v += delta;
    for (Tick &v : unit_free_)
        v += delta;
    mem_bw_free_ += delta;
    for (auto &[key, when] : line_free_)
        when += delta;
    for (auto &[key, gate] : sm_line_gate_) {
        gate.newest += delta;
        gate.oldest += delta;
    }
    if (grid_arrivals_ > 0) {
        grid_first_arrival_ += delta;
        grid_last_arrival_ += delta;
    }
    // warp.start/warp.end are frozen clock64() outputs shared with
    // the unbatched run; the rng did not advance.
}

/** FNV-1a over the fingerprint words: cheap reject so a boundary is
 * compared word-for-word against at most the anchors whose hash
 * collides (in practice, the one that matches). */
static std::uint64_t
fpHash(const std::vector<std::uint64_t> &fp)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint64_t w : fp) {
        h ^= w;
        h *= 0x100000001b3ULL;
    }
    return h;
}

GpuMachine::LbAnchor &
GpuMachine::pushAnchor(Tick done)
{
    lb_ring_head_ =
        (lb_ring_head_ + 1) % static_cast<int>(lb_ring_.size());
    lb_ring_n_ = std::min<int>(lb_ring_n_ + 1,
                               static_cast<int>(lb_ring_.size()));
    LbAnchor &a = lb_ring_[static_cast<std::size_t>(lb_ring_head_)];
    a.fp.swap(lb_fp_); // recycle the evicted anchor's buffer
    a.hash = fpHash(a.fp);
    a.boundary = done;
    a.rng = rng_.state();
    const int n = static_cast<int>(warps_.size());
    a.iters.resize(n);
    for (int i = 0; i < n; ++i)
        a.iters[i] = warps_[i].iters_left;
    stats_.snapshot(a.stats);
    return a;
}

Tick
GpuMachine::maybeBatch(int warp_id, Tick done)
{
    // A warp this close to its loop exit can never complete the
    // anchor-then-match sequence with k >= 1 (margin 2), so encoding
    // at its boundaries is pure overhead: its tail single-steps, and
    // the trigger role stays -- or becomes -- vacant for a warp with
    // room to batch (e.g. the next wave of a multi-wave launch).
    if (warps_[warp_id].iters_left < 4) {
        if (warp_id == lb_trigger_) {
            lb_trigger_ = -1;
            lb_ring_n_ = 0;
        }
        return 0;
    }
    if (lb_trigger_ < 0)
        lb_trigger_ = warp_id;
    if (warp_id != lb_trigger_)
        return 0;

    // Backoff: a boundary whose last attempt fell back rarely
    // matches the very next one, and every attempt costs a whole-
    // machine encode. Exponentially spaced retries keep hopeless
    // (contended) regimes near single-step speed; a skipped boundary
    // only forgoes a jump, so results are unchanged.
    if (lb_skip_ > 0) {
        --lb_skip_;
        return 0;
    }

    // Randomness consumed since the newest anchor (a system-scope
    // fence in the body) makes every stored anchor unmatchable: the
    // rng word is part of the fingerprint and the stream only ever
    // advances. Drop them and back off without paying for an encode.
    if (lb_ring_n_ > 0 &&
        rng_.state() !=
            lb_ring_[static_cast<std::size_t>(lb_ring_head_)].rng) {
        ++lb_.fallbacks;
        lb_ring_n_ = 0;
        lb_skip_ = lb_penalty_;
        lb_penalty_ = std::min<long>(lb_penalty_ * 2, 256);
        return 0;
    }

    encodeState(done, lb_fp_);
    const std::uint64_t hash = fpHash(lb_fp_);
    const int n = static_cast<int>(warps_.size());

    // Newest-first: contended regimes rotate through their P
    // contenders before the machine state recurs, so the cycle often
    // closes against an anchor several boundaries back -- a match at
    // any distance proves a period just as rigorously as an adjacent
    // one, because the tick and iteration deltas below are measured
    // from the matched anchor itself.
    const LbAnchor *match = nullptr;
    for (int back = 0; back < lb_ring_n_; ++back) {
        const int slot =
            (lb_ring_head_ - back +
             static_cast<int>(lb_ring_.size()) * 2) %
            static_cast<int>(lb_ring_.size());
        const LbAnchor &cand =
            lb_ring_[static_cast<std::size_t>(slot)];
        if (cand.hash == hash && cand.fp == lb_fp_) {
            match = &cand;
            break;
        }
    }
    if (match == nullptr) {
        if (lb_ring_n_ > 0) {
            ++lb_.fallbacks;
            lb_skip_ = lb_penalty_;
            lb_penalty_ = std::min<long>(lb_penalty_ * 2, 256);
        }
        pushAnchor(done);
        return 0;
    }

    // Equal fingerprints: the machine's dynamics are periodic with
    // period delta. Every actor must keep at least one whole
    // post-jump iteration to execute for real: iters_left still
    // counts the just-finished iteration, so a margin of 2 leaves
    // phase transitions -- and the run's final event times -- to
    // ordinary single-stepping.
    const Tick delta = done - match->boundary;
    SYNCPERF_ASSERT(delta > 0, "duplicate trigger boundary tick");
    long k = std::numeric_limits<long>::max();
    std::uint64_t per_period = 0;
    for (int i = 0; i < n; ++i) {
        const long d = match->iters[i] - warps_[i].iters_left;
        if (d <= 0)
            continue;
        per_period += static_cast<std::uint64_t>(d);
        k = std::min(k, (warps_[i].iters_left - 2) / d);
    }
    if (k == std::numeric_limits<long>::max())
        k = 0;
    // A horizon pin is an opaque foreign event: never jump past it.
    if (eq_.horizonPin() != sim::EventQueue::no_tick) {
        const Tick pin = eq_.horizonPin();
        k = pin > done
            ? std::min(k, static_cast<long>((pin - done) / delta))
            : 0;
    }
    if (k < 1) {
        ++lb_.fallbacks;
        lb_skip_ = lb_penalty_;
        lb_penalty_ = std::min<long>(lb_penalty_ * 2, 256);
        // Anchor afresh so a later boundary measures a short period.
        pushAnchor(done);
        return 0;
    }

    const Tick shift = delta * static_cast<Tick>(k);
    eq_.shiftPending(shift);
    shiftTimes(shift);
    for (int i = 0; i < n; ++i) {
        const long d = match->iters[i] - warps_[i].iters_left;
        warps_[i].iters_left -= static_cast<long>(k) * d;
    }
    stats_.applyPeriods(match->stats, static_cast<std::uint64_t>(k));
    lb_.batched_iters += static_cast<std::uint64_t>(k) * per_period;
    ++lb_.windows;
    lb_penalty_ = 1; // a jump proves the steady state: retry eagerly

    // The post-jump boundary has the matched fingerprint by
    // construction (lb_fp_ still holds it); anchor it so the next
    // boundary can batch again without re-proving periodicity from
    // scratch. Older anchors stay valid -- they are other phases of
    // the same cycle, described by their own historical tick and
    // iteration counts.
    pushAnchor(done + shift);
    return shift;
}

void
GpuMachine::step(int warp_id)
{
    WarpCtx &warp = warps_[warp_id];
    SYNCPERF_ASSERT(!warp.done);
    const Tick now = eq_.now();

    const std::vector<DecodedGpuOp> &code = *warp.code;
    if (code.empty() || warp.pc >= code.size()) {
        advancePhase(warp_id, now);
        return;
    }

    const DecodedGpuOp &op = code[warp.pc];
    if (warp.rep_left == 0)
        warp.rep_left = op.repeat;

    (this->*op.handler)(warp_id, op, now);
}

void
GpuMachine::finishOp(int warp_id, Tick done)
{
    WarpCtx &warp = warps_[warp_id];
    if (--warp.rep_left > 0) {
        eq_.schedule(done, [this, warp_id] { step(warp_id); }, warp_id);
        return;
    }
    ++warp.pc;

    if (warp.pc < warp.code->size()) {
        eq_.schedule(done, [this, warp_id] { step(warp_id); }, warp_id);
        return;
    }
    warp.pc = 0;
    // Timed boundary: the batcher may jump whole steady-state
    // periods here, shifting this warp's continuation with them.
    if (warp.phase == Phase::Timed && loop_batch_)
        done += maybeBatch(warp_id, done);
    if ((warp.phase == Phase::Warmup || warp.phase == Phase::Timed) &&
        --warp.iters_left > 0) {
        eq_.schedule(done, [this, warp_id] { step(warp_id); }, warp_id);
        return;
    }
    if (warp_id == lb_trigger_) {
        // Let a remaining warp drive any tail batching. The backoff
        // state deliberately survives the handoff: the machine's
        // regime did not change with the trigger.
        lb_trigger_ = -1;
        lb_ring_n_ = 0;
    }
    advancePhase(warp_id, done);
}

void
GpuMachine::advancePhase(int warp_id, Tick done)
{
    WarpCtx &warp = warps_[warp_id];
    switch (warp.phase) {
      case Phase::Prologue:
        if (warmup_iterations_ > 0 && !kernel_->body.empty()) {
            warp.phase = Phase::Warmup;
            warp.code = &dec_body_;
            warp.iters_left = warmup_iterations_;
            eq_.schedule(done, [this, warp_id] { step(warp_id); },
                         warp_id);
            return;
        }
        warp.phase = Phase::Timed;
        warp.code = &dec_body_;
        warp.start = done;
        warp.iters_left = kernel_->body.empty() ? 0 : kernel_->body_iters;
        if (warp.iters_left == 0) {
            advancePhase(warp_id, done);
            return;
        }
        eq_.schedule(done, [this, warp_id] { step(warp_id); }, warp_id);
        return;

      case Phase::Warmup: {
        // Align the block, then stamp clock64() (Listing 3 line 11).
        warp.phase = Phase::Timed;
        warp.iters_left = kernel_->body_iters;
        // The alignment __syncthreads() reuses the block barrier; the
        // start stamp is taken at its release.
        BlockState &block = blocks_[warp.block];
        ++block.arrived;
        block.last_arrival = std::max(block.last_arrival, done);
        block.waiters.push_back(warp_id);
        if (block.arrived < block.warps)
            return;
        const Tick release =
            block.last_arrival + cfg_.syncthreads_base +
            static_cast<Tick>(block.warps) * cfg_.syncthreads_per_warp;
        std::vector<int> waiters = std::move(block.waiters);
        block.waiters.clear();
        block.arrived = 0;
        block.last_arrival = 0;
        // The captured absolute tick is safe under loop batching:
        // this one-shot event's boundary-relative offset shrinks
        // between any two trigger boundaries, so it can never be
        // part of equal fingerprints and is never shifted.
        for (int w : waiters) {
            eq_.schedule(release, [this, w, release] {
                warps_[w].start = release;
                step(w);
            }, w);
        }
        return;
      }

      case Phase::Timed:
        warp.end = done;
        warp.phase = Phase::Epilogue;
        warp.code = &dec_epilogue_;
        if (kernel_->epilogue.empty()) {
            warpDone(warp_id, done);
            return;
        }
        eq_.schedule(done, [this, warp_id] { step(warp_id); }, warp_id);
        return;

      case Phase::Epilogue:
        warpDone(warp_id, done);
        return;
    }
}

void
GpuMachine::warpDone(int warp_id, Tick done)
{
    WarpCtx &warp = warps_[warp_id];
    warp.done = true;
    if (warp.end == 0)
        warp.end = done;

    BlockState &block = blocks_[warp.block];
    if (++block.done_warps < block.warps)
        return;

    // Block retired: release its SM slot and launch a pending block.
    sm_free_threads_[block.sm] += block.threads;
    --sm_blocks_[block.sm];
    stats_.inc(sim::Probe::GpuBlocksRetired);
    tryLaunchBlocks(done);
}

void
GpuMachine::tryLaunchBlocks(Tick when)
{
    while (!pending_blocks_.empty()) {
        const int block_id = pending_blocks_.front();
        const BlockState &pending = blocks_[block_id];
        int best_sm = -1;
        for (int sm = 0; sm < cfg_.sm_count; ++sm) {
            if (sm_free_threads_[sm] >= pending.threads &&
                sm_blocks_[sm] < cfg_.max_blocks_per_sm) {
                if (best_sm < 0 ||
                    sm_free_threads_[sm] > sm_free_threads_[best_sm]) {
                    best_sm = sm;
                }
            }
        }
        if (best_sm < 0)
            return;
        pending_blocks_.pop_front();
        launchBlock(block_id, best_sm, when);
    }
}

void
GpuMachine::launchBlock(int block_id, int sm, Tick when)
{
    BlockState &block = blocks_[block_id];
    block.sm = sm;
    sm_free_threads_[sm] -= block.threads;
    ++sm_blocks_[sm];

    const Tick start = when + cfg_.block_launch_overhead;
    for (int w = 0; w < block.warps; ++w) {
        const int warp_id = block.first_warp + w;
        WarpCtx &warp = warps_[warp_id];
        warp.sm = sm;
        warp.sched = sm_next_sched_[sm];
        sm_next_sched_[sm] =
            (sm_next_sched_[sm] + 1) % cfg_.schedulers_per_sm;
        eq_.schedule(start, [this, warp_id] { step(warp_id); }, warp_id);
    }
    stats_.inc(sim::Probe::GpuBlocksLaunched);
}

GpuMachine::DecodedGpuOp
GpuMachine::decodeOp(const GpuOp &op) const
{
    DecodedGpuOp d;
    d.repeat = op.repeat;
    d.stride = op.stride;
    d.pred = op.pred;
    d.amode = op.amode;
    d.base_addr = op.base_addr;
    d.esize = dataTypeSize(op.dtype);
    d.value_returning =
        op.aop == AtomicOp::Cas || op.aop == AtomicOp::Exch;
    switch (op.kind) {
      case GpuOpKind::Alu:
        d.handler = &GpuMachine::execAlu;
        d.lat = cfg_.alu_latency;
        return d;
      case GpuOpKind::DivergentAlu:
        d.handler = &GpuMachine::execDivergentAlu;
        d.uops = std::max(1, op.diverge_paths);
        d.lat = static_cast<Tick>(d.uops) * cfg_.alu_latency;
        return d;
      case GpuOpKind::SyncWarp:
        d.handler = &GpuMachine::execSyncWarp;
        d.lat = cfg_.syncwarp_latency;
        return d;
      case GpuOpKind::Shfl:
        d.handler = &GpuMachine::execShfl;
        d.uops = dataTypeSize(op.dtype) > 4 ? 2 : 1;
        d.lat = cfg_.shfl_latency;
        return d;
      case GpuOpKind::Vote:
        d.handler = &GpuMachine::execVote;
        d.lat = cfg_.vote_latency;
        return d;
      case GpuOpKind::ReduceSync:
        if (cfg_.reduce_latency == 0) {
            fatal("__reduce_*_sync requires compute capability >= 8.0 "
                  "({} is cc {})", cfg_.name, cfg_.compute_capability);
        }
        d.handler = &GpuMachine::execReduceSync;
        return d;
      case GpuOpKind::Fence:
        switch (op.scope) {
          case FenceScope::Block:
            d.handler = &GpuMachine::execFenceBlock;
            d.lat = cfg_.fence_block;
            return d;
          case FenceScope::System:
            d.handler = &GpuMachine::execFenceSystem;
            d.lat = cfg_.fence_system;
            return d;
          case FenceScope::Device:
            break;
        }
        d.handler = &GpuMachine::execFenceDevice;
        d.lat = cfg_.fence_device;
        return d;
      case GpuOpKind::GlobalLoad:
        d.handler = &GpuMachine::execGlobalLoad;
        return d;
      case GpuOpKind::GlobalStore:
        d.handler = &GpuMachine::execGlobalStore;
        return d;
      case GpuOpKind::GlobalAtomic:
        if (op.amode != AddressMode::PerThread) {
            if (d.value_returning) {
                d.handler = &GpuMachine::execAtomicCasLike;
            } else {
                d.handler = &GpuMachine::execAtomicSameAddr;
                d.aggregated = cfg_.enable_warp_aggregation;
                d.addr_ii = cfg_.addrIi(op.dtype);
                d.gate_delay = gateDelay(op.dtype);
            }
            return d;
        }
        d.handler = &GpuMachine::execAtomicPerThread;
        d.unit_ii = cfg_.unitIi(op.dtype);
        return d;
      case GpuOpKind::SharedAtomic:
        d.handler = &GpuMachine::execSharedAtomic;
        return d;
      case GpuOpKind::SyncThreads:
        d.handler = &GpuMachine::execSyncThreads;
        return d;
      case GpuOpKind::GridSync:
        d.handler = &GpuMachine::execGridSync;
        return d;
    }
    panic("unhandled GPU op kind");
}

void
GpuMachine::decodeSequence(const std::vector<GpuOp> &ops,
                           std::vector<DecodedGpuOp> &out) const
{
    out.clear();
    out.reserve(ops.size());
    for (const GpuOp &op : ops)
        out.push_back(decodeOp(op));
}

GpuRunResult
GpuMachine::run(const GpuKernel &kernel, LaunchConfig launch,
                int warmup_iterations, std::uint64_t decode_key)
{
    SYNCPERF_ASSERT(launch.blocks >= 1);
    SYNCPERF_ASSERT(launch.threads_per_block >= 1 &&
                    launch.threads_per_block <= cfg_.max_threads_per_block);
    SYNCPERF_ASSERT(kernel.body_iters >= 1 || kernel.body.empty());

    const DecodedImage *image = nullptr;
    if (decode_key != 0) {
        const auto it = images_.find(decode_key);
        SYNCPERF_ASSERT(it != images_.end(),
                        "run() with an unmaterialized decode key");
        image = it->second.get();
    }

    kernel_ = &kernel;
    launch_ = launch;
    warmup_iterations_ = warmup_iterations;

    eq_.reset();
    stats_.clear();
    if (image != nullptr) {
        // Fast path: restore the decoded sequences by POD assignment.
        // The image was produced by the same decodeOp over the same
        // kernel, so the assigned contents are identical to what the
        // decode below would rebuild.
        dec_prologue_ = image->prologue;
        dec_body_ = image->body;
        dec_epilogue_ = image->epilogue;
    } else {
        decodeSequence(kernel.prologue, dec_prologue_);
        decodeSequence(kernel.body, dec_body_);
        decodeSequence(kernel.epilogue, dec_epilogue_);
    }
    const auto has_load = [](const std::vector<DecodedGpuOp> &code) {
        for (const DecodedGpuOp &op : code)
            if (op.handler == &GpuMachine::execGlobalLoad)
                return true;
        return false;
    };
    lb_mem_bw_live_ = has_load(dec_prologue_) || has_load(dec_body_) ||
                      has_load(dec_epilogue_);
    warps_.clear();
    blocks_.assign(launch.blocks, BlockState{});
    pending_blocks_.clear();
    sm_free_threads_.assign(cfg_.sm_count, cfg_.max_threads_per_sm);
    sm_blocks_.assign(cfg_.sm_count, 0);
    sm_next_sched_.assign(cfg_.sm_count, 0);
    sched_free_.assign(
        static_cast<std::size_t>(cfg_.sm_count) * cfg_.schedulers_per_sm,
        0);
    lsu_free_.assign(cfg_.sm_count, 0);
    smem_free_.assign(cfg_.sm_count, 0);
    reduce_free_.assign(cfg_.sm_count, 0);
    unit_free_.assign(cfg_.l2_atomic_units, 0);
    line_free_.clear();
    sm_line_gate_.clear();
    mem_bw_free_ = 0;
    grid_arrivals_ = 0;
    grid_first_arrival_ = 0;
    grid_last_arrival_ = 0;
    grid_waiters_.clear();
    lb_trigger_ = -1;
    lb_ring_n_ = 0;
    lb_skip_ = 0;
    lb_penalty_ = 1;
    if (lb_pin_ != sim::EventQueue::no_tick)
        eq_.pinHorizon(lb_pin_); // the queue reset cleared any pin
    lb_ = sim::LoopBatchCounters{};

    const int warps_per_block = cfg_.warpsPerBlock(launch.threads_per_block);
    for (int b = 0; b < launch.blocks; ++b) {
        BlockState &block = blocks_[b];
        block.warps = warps_per_block;
        block.threads = launch.threads_per_block;
        block.first_warp = static_cast<int>(warps_.size());
        for (int w = 0; w < warps_per_block; ++w) {
            WarpCtx warp;
            warp.block = b;
            warp.warp_in_block = w;
            warp.code = &dec_prologue_;
            warp.first_tid = b * launch.threads_per_block +
                             w * cfg_.warp_size;
            warp.lanes = std::min(
                cfg_.warp_size,
                launch.threads_per_block - w * cfg_.warp_size);
            warps_.push_back(warp);
        }
        pending_blocks_.push_back(b);
    }
    if (!kernel.body.empty()) {
        lb_.total_iters = static_cast<std::uint64_t>(kernel.body_iters) *
                          warps_.size();
    }
    tryLaunchBlocks(0);

    const Tick end = eq_.run();

    GpuRunResult result;
    result.total_cycles = end;
    result.thread_cycles.reserve(
        static_cast<std::size_t>(launch.blocks) * launch.threads_per_block);
    for (const auto &warp : warps_) {
        SYNCPERF_ASSERT(warp.done, "warp did not finish (deadlock?)");
        const Tick elapsed = warp.end >= warp.start
            ? warp.end - warp.start : 0;
        for (int lane = 0; lane < warp.lanes; ++lane)
            result.thread_cycles.push_back(elapsed);
    }

    // Counters and histograms were recorded in place through the
    // interned O(1) probes; only the queue's high-water mark is
    // stamped once per run.
    stats_.inc(sim::Probe::EqMaxDepth,
               static_cast<std::uint64_t>(eq_.maxPending()));
    return result;
}

const GpuMachine::OpHandler *
GpuMachine::handlerTable(std::size_t &count)
{
    // Serialized images index into this table; entries are
    // append-only so older snapshots keep loading.
    static constexpr OpHandler table[] = {
        &GpuMachine::execAlu,           // 0
        &GpuMachine::execDivergentAlu,  // 1
        &GpuMachine::execSyncWarp,      // 2
        &GpuMachine::execShfl,          // 3
        &GpuMachine::execVote,          // 4
        &GpuMachine::execReduceSync,    // 5
        &GpuMachine::execFenceBlock,    // 6
        &GpuMachine::execFenceDevice,   // 7
        &GpuMachine::execFenceSystem,   // 8
        &GpuMachine::execGlobalLoad,    // 9
        &GpuMachine::execGlobalStore,   // 10
        &GpuMachine::execAtomicSameAddr,  // 11
        &GpuMachine::execAtomicCasLike,   // 12
        &GpuMachine::execAtomicPerThread, // 13
        &GpuMachine::execSharedAtomic,  // 14
        &GpuMachine::execSyncThreads,   // 15
        &GpuMachine::execGridSync,      // 16
    };
    count = std::size(table);
    return table;
}

void
GpuMachine::decodeImageInto(const GpuKernel &kernel,
                            DecodedImage &img) const
{
    decodeSequence(kernel.prologue, img.prologue);
    decodeSequence(kernel.body, img.body);
    decodeSequence(kernel.epilogue, img.epilogue);
    img.fingerprint = fingerprintOf(img);
}

std::uint64_t
GpuMachine::fingerprintOf(const DecodedImage &img)
{
    // FNV-1a over exactly the words encodeImage() serializes: two
    // kernels share a fingerprint iff their decoded forms -- what
    // run() actually executes -- are identical.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto fold = [&h](std::uint64_t w) {
        h = (h ^ w) * 0x100000001b3ULL;
    };
    std::size_t n_handlers = 0;
    const OpHandler *table = handlerTable(n_handlers);
    const auto fold_seq = [&](const std::vector<DecodedGpuOp> &code) {
        fold(code.size());
        for (const DecodedGpuOp &op : code) {
            std::size_t id = 0;
            while (id < n_handlers && table[id] != op.handler)
                ++id;
            SYNCPERF_ASSERT(id < n_handlers,
                            "decoded handler missing from the rebind "
                            "table");
            fold(id);
            fold(static_cast<std::uint64_t>(op.repeat));
            fold(static_cast<std::uint64_t>(op.uops));
            fold(static_cast<std::uint64_t>(op.stride));
            fold(static_cast<std::uint64_t>(op.pred));
            fold(static_cast<std::uint64_t>(op.amode));
            fold(op.aggregated ? 1 : 0);
            fold(op.value_returning ? 1 : 0);
            fold(op.base_addr);
            fold(op.esize);
            fold(op.lat);
            fold(op.addr_ii);
            fold(op.unit_ii);
            fold(op.gate_delay);
        }
    };
    fold_seq(img.prologue);
    fold_seq(img.body);
    fold_seq(img.epilogue);
    return h;
}

void
GpuMachine::buildImage(std::uint64_t key, const GpuKernel &kernel)
{
    SYNCPERF_ASSERT(key != 0, "key 0 means undecoded");
    auto img = std::make_shared<DecodedImage>();
    img->key = key;
    decodeImageInto(kernel, *img);
    images_[key] = std::move(img);
}

std::uint64_t
GpuMachine::laneFingerprint(const GpuLaneSpec &lane) const
{
    if (lane.decode_key != 0) {
        const auto it = images_.find(lane.decode_key);
        SYNCPERF_ASSERT(it != images_.end(),
                        "lane with an unmaterialized decode key");
        return it->second->fingerprint;
    }
    DecodedImage scratch;
    decodeImageInto(*lane.kernel, scratch);
    return scratch.fingerprint;
}

std::vector<GpuLaneOutcome>
GpuMachine::runLanes(const std::vector<GpuLaneSpec> &lanes,
                     LaunchConfig launch, int warmup_iterations)
{
    SYNCPERF_ASSERT(!lanes.empty());
    std::vector<GpuLaneOutcome> out(lanes.size());
    std::vector<std::uint64_t> fp(lanes.size());
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        SYNCPERF_ASSERT(lanes[i].kernel != nullptr);
        fp[i] = laneFingerprint(lanes[i]);
    }

    // The reference walk: simulated exactly once, its per-lane SoA
    // outputs (cycle stamps, stat set, loop counters) shared by
    // every lane proven to be in lockstep with it.
    const GpuLaneSpec &ref = lanes[0];
    reseed(ref.seed);
    out[0].result = run(*ref.kernel, launch, warmup_iterations,
                        ref.decode_key);
    out[0].stats = stats_;
    out[0].loop_batch = lb_;
    out[0].in_step = true;

    for (std::size_t i = 1; i < lanes.size(); ++i) {
        // Agreement test: equal decoded image, equal rng seed, equal
        // timed iteration count => provably the exact event walk the
        // reference performed, so sharing its outputs is an identity.
        if (fp[i] == fp[0] && lanes[i].seed == ref.seed &&
            lanes[i].kernel->body_iters == ref.kernel->body_iters) {
            out[i].result = out[0].result;
            out[i].stats = out[0].stats;
            out[i].loop_batch = out[0].loop_batch;
            out[i].in_step = true;
            continue;
        }
        // Divergence: peel the lane into a single-lane launch.
        metrics::add(metrics::Counter::LanePeels);
        reseed(lanes[i].seed);
        out[i].result = run(*lanes[i].kernel, launch,
                            warmup_iterations, lanes[i].decode_key);
        out[i].stats = stats_;
        out[i].loop_batch = lb_;
        out[i].in_step = false;
    }
    return out;
}

void
GpuMachine::encodeImage(std::uint64_t key,
                        std::vector<std::uint64_t> &out) const
{
    const auto it = images_.find(key);
    SYNCPERF_ASSERT(it != images_.end(), "encodeImage: unknown key");
    const DecodedImage &img = *it->second;
    std::size_t n_handlers = 0;
    const OpHandler *table = handlerTable(n_handlers);

    out.clear();
    const auto encode_seq = [&](const std::vector<DecodedGpuOp> &code) {
        out.push_back(code.size());
        for (const DecodedGpuOp &op : code) {
            std::size_t id = 0;
            while (id < n_handlers && table[id] != op.handler)
                ++id;
            SYNCPERF_ASSERT(id < n_handlers,
                            "decoded handler missing from the rebind "
                            "table");
            out.push_back(id);
            out.push_back(static_cast<std::uint64_t>(op.repeat));
            out.push_back(static_cast<std::uint64_t>(op.uops));
            out.push_back(static_cast<std::uint64_t>(op.stride));
            out.push_back(static_cast<std::uint64_t>(op.pred));
            out.push_back(static_cast<std::uint64_t>(op.amode));
            out.push_back(op.aggregated ? 1 : 0);
            out.push_back(op.value_returning ? 1 : 0);
            out.push_back(op.base_addr);
            out.push_back(op.esize);
            out.push_back(op.lat);
            out.push_back(op.addr_ii);
            out.push_back(op.unit_ii);
            out.push_back(op.gate_delay);
        }
    };
    encode_seq(img.prologue);
    encode_seq(img.body);
    encode_seq(img.epilogue);
}

Status
GpuMachine::installImage(std::uint64_t key,
                         const std::vector<std::uint64_t> &words)
{
    // Every field is bounds-checked before the image becomes
    // reachable: a semantically invalid payload (version skew, a
    // key collision across format generations) is a clean error,
    // never an out-of-range handler or enum value at run time.
    constexpr std::uint64_t max_count = std::uint64_t{1} << 20;
    constexpr std::uint64_t max_tick = std::uint64_t{1} << 32;
    const auto invalid = [key](std::string_view why) {
        return Status::error(ErrorCode::ParseError,
                             "gpu image {}: {}", key, why);
    };
    if (key == 0)
        return invalid("key 0 is reserved");
    std::size_t n_handlers = 0;
    const OpHandler *table = handlerTable(n_handlers);

    sim::SnapshotCursor cur(words);
    auto img = std::make_shared<DecodedImage>();
    img->key = key;
    std::vector<DecodedGpuOp> *const sequences[3] = {
        &img->prologue, &img->body, &img->epilogue};
    for (auto *seq : sequences) {
        std::uint64_t n_ops = 0;
        if (!cur.u64(n_ops) || n_ops > max_count)
            return invalid("bad op count");
        seq->reserve(static_cast<std::size_t>(n_ops));
        for (std::uint64_t i = 0; i < n_ops; ++i) {
            std::uint64_t w[14];
            for (std::uint64_t &word : w)
                cur.u64(word);
            if (cur.overran() || w[0] >= n_handlers ||
                w[1] < 1 || w[1] > max_count ||      // repeat
                w[2] < 1 || w[2] > max_count ||      // uops
                w[3] > max_count ||                  // stride
                w[4] > 2 || w[5] > 2 ||              // pred, amode
                w[6] > 1 || w[7] > 1 ||              // bool flags
                w[9] < 1 || w[9] > max_count ||      // esize
                w[10] > max_tick || w[11] > max_tick ||
                w[12] > max_tick || w[13] > max_tick) {
                return invalid("bad op record");
            }
            DecodedGpuOp op;
            op.handler = table[w[0]];
            op.repeat = static_cast<int>(w[1]);
            op.uops = static_cast<int>(w[2]);
            op.stride = static_cast<int>(w[3]);
            op.pred = static_cast<Predicate>(w[4]);
            op.amode = static_cast<AddressMode>(w[5]);
            op.aggregated = w[6] != 0;
            op.value_returning = w[7] != 0;
            op.base_addr = w[8];
            op.esize = w[9];
            op.lat = static_cast<Tick>(w[10]);
            op.addr_ii = static_cast<Tick>(w[11]);
            op.unit_ii = static_cast<Tick>(w[12]);
            op.gate_delay = static_cast<Tick>(w[13]);
            seq->push_back(op);
        }
    }
    if (!cur.done())
        return invalid("trailing payload words");
    // Recomputed from the decoded content (never trusted from disk),
    // so an installed image fingerprints identically to the
    // buildImage() product it serialized.
    img->fingerprint = fingerprintOf(*img);
    images_[key] = std::move(img);
    return Status::ok();
}

void
GpuMachine::cloneFrom(const GpuMachine &tmpl)
{
    eq_.reserve(tmpl.eq_.slotCapacity());
    dec_prologue_.reserve(tmpl.dec_prologue_.capacity());
    dec_body_.reserve(tmpl.dec_body_.capacity());
    dec_epilogue_.reserve(tmpl.dec_epilogue_.capacity());
    warps_.reserve(tmpl.warps_.capacity());
    blocks_.reserve(tmpl.blocks_.capacity());
    sm_free_threads_.reserve(tmpl.sm_free_threads_.capacity());
    sm_blocks_.reserve(tmpl.sm_blocks_.capacity());
    sm_next_sched_.reserve(tmpl.sm_next_sched_.capacity());
    sched_free_.reserve(tmpl.sched_free_.capacity());
    lsu_free_.reserve(tmpl.lsu_free_.capacity());
    smem_free_.reserve(tmpl.smem_free_.capacity());
    reduce_free_.reserve(tmpl.reduce_free_.capacity());
    unit_free_.reserve(tmpl.unit_free_.capacity());
    line_free_.reserve(tmpl.line_free_.size());
    sm_line_gate_.reserve(tmpl.sm_line_gate_.size());
    grid_waiters_.reserve(tmpl.grid_waiters_.capacity());
    lb_fp_.reserve(tmpl.lb_fp_.capacity());
    for (std::size_t i = 0; i < lb_ring_.size(); ++i) {
        lb_ring_[i].fp.reserve(tmpl.lb_ring_[i].fp.capacity());
        lb_ring_[i].iters.reserve(tmpl.lb_ring_[i].iters.capacity());
    }
}

} // namespace syncperf::gpusim
