/**
 * @file
 * Kernel IR executed by the GPU machine.
 *
 * Kernels are expressed as short per-thread operation sequences,
 * executed warp-synchronously. A kernel has an optional prologue
 * (once per thread), a body repeated body_iters times (the timed
 * inner loop of the paper's Listing 3, or the data loop of the
 * reduction examples), and an optional epilogue (once per thread,
 * e.g. the final global atomic of a block reduction).
 */

#ifndef SYNCPERF_GPUSIM_KERNEL_HH
#define SYNCPERF_GPUSIM_KERNEL_HH

#include <cstdint>
#include <vector>

#include "common/dtype.hh"

namespace syncperf::gpusim
{

/** Operation kinds understood by the GPU machine. */
enum class GpuOpKind
{
    Alu,          ///< dependent arithmetic
    GlobalLoad,   ///< coalesced load from global memory
    GlobalStore,  ///< coalesced store to global memory (fire and forget)
    GlobalAtomic, ///< atomic to global memory
    SharedAtomic, ///< block-scoped atomic in shared memory
    SyncThreads,  ///< __syncthreads()
    SyncWarp,     ///< __syncwarp()
    GridSync,     ///< cooperative_groups::this_grid().sync()
    Shfl,         ///< __shfl_*_sync() (two micro-ops for 64-bit types)
    Vote,         ///< __any/__all/__ballot_sync()
    ReduceSync,   ///< __reduce_*_sync() (cc >= 8.0)
    Fence,        ///< __threadfence*()
    DivergentAlu, ///< branchy arithmetic: the warp serializes paths
};

/** Atomic operations the machine distinguishes for timing. */
enum class AtomicOp
{
    Add,  ///< atomicAdd (warp-aggregatable on a single address)
    Max,  ///< atomicMax (reduction-style, aggregatable)
    Cas,  ///< atomicCAS (value-returning, never aggregated)
    Exch, ///< atomicExch (value-returning, never aggregated)
};

/** Where an op's lanes point. */
enum class AddressMode
{
    SingleShared, ///< every thread targets one global variable
    PerThread,    ///< base + global_tid * stride elements
    PerBlock,     ///< one variable per block (e.g. block_result)
};

/** __threadfence scope variants. */
enum class FenceScope
{
    Block,
    Device,
    System,
};

/** Which lanes execute an op. */
enum class Predicate
{
    All,           ///< every thread
    Lane0,         ///< one lane per warp (if (lane == 0) ...)
    Thread0,       ///< one thread per block (if (threadIdx.x == 0) ...)
};

/** One operation. */
struct GpuOp
{
    GpuOpKind kind = GpuOpKind::Alu;
    AtomicOp aop = AtomicOp::Add;
    DataType dtype = DataType::Int32;
    AddressMode amode = AddressMode::SingleShared;
    FenceScope scope = FenceScope::Device;
    Predicate pred = Predicate::All;
    int stride = 1;                ///< elements, for PerThread
    std::uint64_t base_addr = 0;   ///< distinguishes variables/arrays
    int repeat = 1;                ///< issue the op this many times
    int diverge_paths = 1;         ///< serialized branch paths (SIMT)

    // --- Convenience factories -----------------------------------
    static GpuOp
    alu(int repeat = 1)
    {
        GpuOp op;
        op.kind = GpuOpKind::Alu;
        op.repeat = repeat;
        return op;
    }

    static GpuOp
    globalLoad(std::uint64_t base, DataType t = DataType::Int32,
               int stride = 1)
    {
        GpuOp op;
        op.kind = GpuOpKind::GlobalLoad;
        op.dtype = t;
        op.amode = AddressMode::PerThread;
        op.base_addr = base;
        op.stride = stride;
        return op;
    }

    static GpuOp
    globalStore(std::uint64_t base, DataType t = DataType::Int32,
                int stride = 1)
    {
        GpuOp op;
        op.kind = GpuOpKind::GlobalStore;
        op.dtype = t;
        op.amode = AddressMode::PerThread;
        op.base_addr = base;
        op.stride = stride;
        return op;
    }

    static GpuOp
    globalAtomic(AtomicOp aop, AddressMode amode, std::uint64_t base,
                 DataType t = DataType::Int32, int stride = 1,
                 Predicate pred = Predicate::All)
    {
        GpuOp op;
        op.kind = GpuOpKind::GlobalAtomic;
        op.aop = aop;
        op.amode = amode;
        op.base_addr = base;
        op.dtype = t;
        op.stride = stride;
        op.pred = pred;
        return op;
    }

    static GpuOp
    sharedAtomic(AtomicOp aop, std::uint64_t base,
                 DataType t = DataType::Int32,
                 Predicate pred = Predicate::All)
    {
        GpuOp op;
        op.kind = GpuOpKind::SharedAtomic;
        op.aop = aop;
        op.amode = AddressMode::PerBlock;
        op.base_addr = base;
        op.dtype = t;
        op.pred = pred;
        return op;
    }

    static GpuOp
    syncThreads()
    {
        GpuOp op;
        op.kind = GpuOpKind::SyncThreads;
        return op;
    }

    static GpuOp
    syncWarp()
    {
        GpuOp op;
        op.kind = GpuOpKind::SyncWarp;
        return op;
    }

    static GpuOp
    gridSync()
    {
        GpuOp op;
        op.kind = GpuOpKind::GridSync;
        return op;
    }

    static GpuOp
    shfl(DataType t = DataType::Int32, int repeat = 1)
    {
        GpuOp op;
        op.kind = GpuOpKind::Shfl;
        op.dtype = t;
        op.repeat = repeat;
        return op;
    }

    static GpuOp
    vote()
    {
        GpuOp op;
        op.kind = GpuOpKind::Vote;
        return op;
    }

    static GpuOp
    reduceSync(DataType t = DataType::Int32)
    {
        GpuOp op;
        op.kind = GpuOpKind::ReduceSync;
        op.dtype = t;
        return op;
    }

    static GpuOp
    divergentAlu(int paths)
    {
        GpuOp op;
        op.kind = GpuOpKind::DivergentAlu;
        op.diverge_paths = paths;
        return op;
    }

    static GpuOp
    fence(FenceScope scope)
    {
        GpuOp op;
        op.kind = GpuOpKind::Fence;
        op.scope = scope;
        return op;
    }
};

/** A complete kernel. */
struct GpuKernel
{
    std::vector<GpuOp> prologue;
    std::vector<GpuOp> body;
    std::vector<GpuOp> epilogue;
    long body_iters = 1;
};

/** Grid geometry of a launch. */
struct LaunchConfig
{
    int blocks = 1;
    int threads_per_block = 32;
};

} // namespace syncperf::gpusim

#endif // SYNCPERF_GPUSIM_KERNEL_HH
