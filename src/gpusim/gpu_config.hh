/**
 * @file
 * GPU model configuration, including presets for the three GPUs in
 * the paper's Table I.
 *
 * All latencies are in GPU clock cycles. As with the CPU model, the
 * constants are calibrated to reproduce the qualitative shapes of
 * the paper's CUDA figures (see EXPERIMENTS.md), not to be exact.
 */

#ifndef SYNCPERF_GPUSIM_GPU_CONFIG_HH
#define SYNCPERF_GPUSIM_GPU_CONFIG_HH

#include <string>

#include "common/dtype.hh"
#include "sim/types.hh"

namespace syncperf::gpusim
{

using sim::Tick;

/** Topology and timing parameters of a simulated NVIDIA-style GPU. */
struct GpuConfig
{
    std::string name;

    // --- Topology (Table I fields) ---
    double clock_ghz = 1.8;
    int sm_count = 40;
    int max_threads_per_sm = 1024;
    int cuda_cores_per_sm = 64;
    double compute_capability = 7.5;

    int max_threads_per_block = 1024;
    int max_blocks_per_sm = 16;
    int warp_size = 32;
    int schedulers_per_sm = 4;

    // --- Issue / simple instructions ---
    Tick issue_ii = 1;         ///< scheduler slot per instruction
    Tick alu_latency = 4;
    Tick syncwarp_latency = 2; ///< sets the per-SM full-speed warp count
    Tick shfl_latency = 3;     ///< per 32-bit shuffle micro-op
    Tick vote_latency = 4;
    Tick reduce_latency = 16;    ///< __reduce_*_sync result latency (cc >= 8.0)
    Tick reduce_occupancy = 120; ///< per-SM reduce-network occupancy per instr

    // --- Block-wide barrier ---
    Tick syncthreads_base = 28;
    Tick syncthreads_per_warp = 14;

    // --- Memory path ---
    Tick lsu_ii = 2;             ///< per-request LSU posting interval
    Tick mem_rt = 420;           ///< load round trip
    double mem_bytes_per_cycle = 192.0;

    // --- Global atomics ---
    Tick atomic_rt = 320;        ///< round trip for value-returning atomics
    Tick ff_window = 320;        ///< fire-and-forget in-flight allowance

    /**
     * Model the driver's JIT warp aggregation of same-address
     * reduction atomics (Fig 9). Disable for the ablation bench that
     * quantifies how much the optimization buys.
     */
    bool enable_warp_aggregation = true;

    /**
     * Per-address service interval at the L2 atomic unit for one
     * (possibly warp-aggregated) reduction-style request.
     */
    Tick addr_ii_int = 4;
    Tick addr_ii_ull = 8;
    Tick addr_ii_fp = 12;

    /** Same-address atomics an SM keeps in flight (reduction ops). */
    int sm_atomic_depth = 2;

    int l2_atomic_units = 32;    ///< address-hashed units
    Tick unit_ii_int = 2;        ///< per distinct-address request
    Tick unit_ii_ull = 4;
    Tick unit_ii_fp = 6;

    /**
     * An SM keeps one same-address atomic in flight: the delay until
     * its next request to that address can post (the paper's Fig 9
     * knee at one warp per SM). Depends on the operand type, which
     * produces the int-vs-rest gap at every thread count.
     */
    Tick sm_gate_int = 60;
    Tick sm_gate_ull = 84;
    Tick sm_gate_fp = 104;

    /** Same-address CAS/exchange: lanes pipelined in groups. */
    int cas_pipeline_lanes = 4;
    Tick cas_group_ii = 110;

    // --- Fences ---
    Tick fence_device = 160;
    Tick fence_lsu_drain = 24;   ///< LSU occupancy while draining
    Tick fence_block = 2;
    Tick fence_system = 650;
    Tick fence_system_jitter = 350;  ///< deterministic PCIe jitter span

    // --- Shared-memory (block-scoped) atomics ---
    Tick smem_addr_ii = 3;       ///< same-address service interval
    Tick smem_ii = 1;            ///< distinct-address service interval
    Tick smem_rt = 30;
    Tick smem_ff_window = 64;

    // --- Grid-wide barrier (cooperative groups; extension) ---
    Tick grid_sync_base = 420;      ///< L2 round trip + release broadcast
    Tick grid_sync_per_block = 10;  ///< serialized arrival per block

    // --- Block scheduling ---
    Tick block_launch_overhead = 350;

    // --- Derived helpers ---
    int warpsPerBlock(int threads_per_block) const
    {
        return (threads_per_block + warp_size - 1) / warp_size;
    }

    Tick
    addrIi(DataType t) const
    {
        switch (t) {
          case DataType::Int32: return addr_ii_int;
          case DataType::UInt64: return addr_ii_ull;
          default: return addr_ii_fp;
        }
    }

    Tick
    unitIi(DataType t) const
    {
        switch (t) {
          case DataType::Int32: return unit_ii_int;
          case DataType::UInt64: return unit_ii_ull;
          default: return unit_ii_fp;
        }
    }

    // --- Presets: the paper's Table I GPUs ---
    /** System 1: NVIDIA GeForce RTX 2070 SUPER (cc 7.5). */
    static GpuConfig rtx2070Super();
    /** System 2: NVIDIA A100 40GB (cc 8.0). */
    static GpuConfig a100();
    /** System 3: NVIDIA GeForce RTX 4090 (cc 8.9). */
    static GpuConfig rtx4090();
};

} // namespace syncperf::gpusim

#endif // SYNCPERF_GPUSIM_GPU_CONFIG_HH
