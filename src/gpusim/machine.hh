/**
 * @file
 * SIMT GPU timing machine.
 *
 * Executes a GpuKernel over a grid, warp-synchronously, against the
 * mechanisms the paper uses to explain its CUDA results:
 *
 * - warp-granular execution with per-scheduler issue bandwidth (the
 *   __syncwarp/__shfl_sync full-speed warp-count knees);
 * - a hardware block barrier whose cost grows with resident warps
 *   (__syncthreads), independent of block count;
 * - L2 atomic units with per-address service intervals, an
 *   address-hashed unit pool, and JIT warp aggregation for
 *   reduction-style atomics on a single address (atomicAdd/Max);
 * - one outstanding same-address atomic per SM (same-SM warps
 *   serialize; different SMs pipeline in the L2);
 * - value-returning atomics (CAS/exchange) that never aggregate and
 *   pipeline same-address lanes in small groups;
 * - constant-cost fences per scope, with deterministic PCIe jitter
 *   for the system scope;
 * - shared-memory (block-scoped) atomics served by a per-SM unit;
 * - block residency limits and wave-by-wave block scheduling.
 *
 * Execution uses precompiled dispatch: run() decodes the kernel's
 * three op sequences once into dense handler+operand arrays (fixed
 * latencies, micro-op counts, and per-type service intervals all
 * hoisted), and the event loop then jumps straight into per-op
 * handlers with no switch. Event ordering is identical to the
 * historical switch interpreter, so results stay bit-for-bit
 * reproducible.
 *
 * Decoded kernels can further be captured as immutable
 * DecodedImages keyed by the caller's config hash: run() with a key
 * restores the three sequences by POD assignment instead of
 * re-decoding, and images serialize to the sim/snapshot on-disk
 * format so other processes load past decoding (core/machine_pool
 * orchestrates both).
 */

#ifndef SYNCPERF_GPUSIM_MACHINE_HH
#define SYNCPERF_GPUSIM_MACHINE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "common/status.hh"
#include "gpusim/gpu_config.hh"
#include "gpusim/kernel.hh"
#include "sim/event_queue.hh"
#include "sim/loop_batch.hh"
#include "sim/stat.hh"

namespace syncperf::gpusim
{

/** Outcome of one GpuMachine::run() invocation. */
struct GpuRunResult
{
    /**
     * clock64() delta of the timed region for every thread of the
     * grid, in GPU cycles (all lanes of a warp share one value).
     */
    std::vector<sim::Tick> thread_cycles;

    /** Tick at which the last block finished (kernel runtime). */
    sim::Tick total_cycles = 0;
};

/**
 * One lane of a multi-lane lockstep launch (GpuMachine::runLanes).
 * Lane 0 is the reference: every other lane either proves it would
 * perform the exact walk the reference performs (identical decoded
 * image, seed, geometry, and iteration count) and shares that single
 * walk, or is peeled into its own single-lane launch.
 */
struct GpuLaneSpec
{
    const GpuKernel *kernel = nullptr;
    std::uint64_t seed = 1;       ///< reseed() value for this lane
    std::uint64_t decode_key = 0; ///< cached-image key (0 = decode)
};

/** Per-lane outcome of GpuMachine::runLanes(). */
struct GpuLaneOutcome
{
    GpuRunResult result;
    sim::StatSet stats;
    sim::LoopBatchCounters loop_batch;
    /** True when this lane shared the reference lane's walk (its
     * result/stats are copies of that walk's SoA slot); false when
     * it was peeled and simulated on its own. */
    bool in_step = false;
};

/**
 * The machine. One instance simulates one kernel launch at a time;
 * run() fully re-initializes, so an instance may be reused for
 * independent launches (reseed() between launches restores the
 * fresh-machine jitter stream while keeping warm buffers).
 */
class GpuMachine
{
  public:
    /**
     * @param cfg Device parameters (see the Table I presets).
     * @param seed Seed for the deterministic jitter stream.
     */
    explicit GpuMachine(GpuConfig cfg, std::uint64_t seed = 1);

    /** One decoded op: handler plus hoisted operands. */
    struct DecodedGpuOp
    {
        /** Receives the queue's now tick; finishes or blocks. */
        void (GpuMachine::*handler)(int warp_id, const DecodedGpuOp &op,
                                    Tick now) = nullptr;
        int repeat = 1;
        int uops = 1;        ///< scheduler slots (paths, shfl uops)
        int stride = 1;      ///< elements, for PerThread addressing
        Predicate pred = Predicate::All;
        AddressMode amode = AddressMode::SingleShared;
        bool aggregated = false;      ///< warp aggregation applies
        bool value_returning = false; ///< CAS/exchange result needed
        std::uint64_t base_addr = 0;
        std::uint64_t esize = 4;  ///< dataTypeSize(dtype), hoisted
        Tick lat = 0;             ///< fixed latency term, hoisted
        Tick addr_ii = 0;         ///< cfg.addrIi(dtype), hoisted
        Tick unit_ii = 0;         ///< cfg.unitIi(dtype), hoisted
        Tick gate_delay = 0;      ///< gateDelay(dtype), hoisted
    };

    /**
     * An immutable decoded kernel, captured once and replayed by any
     * number of launches (and, via encodeImage/installImage, by any
     * number of processes). The key is whatever digest the caller
     * used to derive it -- the machine only stores and compares it.
     */
    struct DecodedImage
    {
        std::uint64_t key = 0;
        std::vector<DecodedGpuOp> prologue;
        std::vector<DecodedGpuOp> body;
        std::vector<DecodedGpuOp> epilogue;

        /**
         * Content digest of the decoded form (handler ids, operands,
         * hoisted costs -- everything run() executes, and nothing it
         * does not, so kernels whose raw data types decode to the
         * same costs share a fingerprint). Equal fingerprints mean
         * equal walks for equal (seed, geometry, body_iters,
         * warmup): the lane-lockstep agreement test.
         */
        std::uint64_t fingerprint = 0;
    };

    /**
     * Launch @p kernel with geometry @p launch.
     *
     * Mirrors the paper's Listing 3: each thread executes the
     * prologue, @p warmup_iterations untimed body repetitions, a
     * block-wide __syncthreads(), reads clock64(), executes
     * body_iters timed body repetitions, reads clock64() again, and
     * finally runs the epilogue.
     *
     * @param warmup_iterations May be zero for application kernels
     *        (reductions); the timed region then starts right after
     *        the prologue without an extra sync.
     * @param decode_key Non-zero selects a previously materialized
     *        DecodedImage (hasImage(decode_key) must hold): the three
     *        decoded sequences are restored by assignment and the
     *        decode step is skipped entirely. Zero (the default)
     *        decodes @p kernel as before. Results are bit-identical
     *        either way.
     */
    GpuRunResult run(const GpuKernel &kernel, LaunchConfig launch,
                     int warmup_iterations = 2,
                     std::uint64_t decode_key = 0);

    /**
     * Launch @p lanes in lockstep with geometry @p launch. Lane 0 is
     * the reference and is always simulated; every later lane whose
     * decoded-image fingerprint, seed, and body_iters match the
     * reference's shares the reference walk -- its outcome slot (the
     * per-lane SoA state: cycle stamps, stat set, loop counters) is
     * filled from that single dispatch walk without re-simulating.
     * A lane that disagrees is peeled into an ordinary single-lane
     * launch (counted in lane_peels). Every lane's outcome is
     * bit-identical to launching it alone.
     */
    std::vector<GpuLaneOutcome>
    runLanes(const std::vector<GpuLaneSpec> &lanes, LaunchConfig launch,
             int warmup_iterations = 2);

    /** Whether a decoded image for @p key is installed. */
    bool hasImage(std::uint64_t key) const
    {
        return images_.find(key) != images_.end();
    }

    /** Fingerprint of the image cached under @p key (0 if absent). */
    std::uint64_t
    imageFingerprint(std::uint64_t key) const
    {
        const auto it = images_.find(key);
        return it == images_.end() ? 0 : it->second->fingerprint;
    }

    /**
     * Decode @p kernel (exactly as a key-0 run() would) and store
     * the result as the image for @p key (key must be non-zero).
     */
    void buildImage(std::uint64_t key, const GpuKernel &kernel);

    /**
     * Install an image for @p key from its serialized form (the
     * payload produced by encodeImage). Every field is
     * bounds-checked against this machine's handler table before
     * anything is installed; a malformed payload leaves the machine
     * untouched and returns ParseError.
     */
    Status installImage(std::uint64_t key,
                        const std::vector<std::uint64_t> &words);

    /** Serialize the image for @p key (must exist) into @p out. */
    void encodeImage(std::uint64_t key,
                     std::vector<std::uint64_t> &out) const;

    /** Drop every installed image (pool lease hygiene). */
    void clearImages() { images_.clear(); }

    /**
     * Adopt the warm capacity of @p tmpl: every internal container
     * reserves to the template's high-water size, so the first run()
     * skips the growth reallocations a cold machine pays. No dynamic
     * state is copied -- run() fully re-initializes, and the clone's
     * results are bit-identical to a freshly constructed machine's.
     */
    void cloneFrom(const GpuMachine &tmpl);

    /**
     * Restart the jitter stream as if the machine had been freshly
     * constructed with @p seed: a reused machine produces the exact
     * cycle counts a new GpuMachine(cfg, seed) would.
     */
    void reseed(std::uint64_t seed);

    /** Activity counters from the most recent run. */
    const sim::StatSet &stats() const { return stats_; }

    const GpuConfig &config() const { return cfg_; }

    /**
     * Enable/disable steady-state loop batching (default on). The
     * run's results are bit-identical either way -- batching only
     * skips re-deriving state the detector has proven periodic
     * (docs/performance.md, "Loop batching").
     */
    void setLoopBatch(bool on) { loop_batch_ = on; }

    /** Loop-batching activity of the most recent run. */
    const sim::LoopBatchCounters &loopBatch() const { return lb_; }

    /**
     * Pin the loop-batching horizon at @p when for every subsequent
     * run(): no batch window jumps across the pin, and boundaries at
     * or past it single-step (the fault-injection / test hook;
     * sim::EventQueue::no_tick, the default, unpins). Results stay
     * bit-identical -- the pin only shrinks what may be batched.
     */
    void setBatchHorizonPin(Tick when) { lb_pin_ = when; }

    /** The machine's event queue (test hook for horizon pinning). */
    sim::EventQueue &eventQueue() { return eq_; }

  private:
    enum class Phase
    {
        Prologue,
        Warmup,
        Timed,
        Epilogue,
    };

    struct WarpCtx
    {
        int block = 0;          ///< global block id
        int warp_in_block = 0;
        int sm = -1;
        int sched = 0;          ///< scheduler partition on the SM
        int lanes = 32;         ///< active thread lanes
        int first_tid = 0;      ///< global id of lane 0

        Phase phase = Phase::Prologue;
        const std::vector<DecodedGpuOp> *code = nullptr;
        std::size_t pc = 0;
        int rep_left = 0;
        long iters_left = 0;

        Tick start = 0;
        Tick end = 0;
        bool done = false;

        /** A barrier-release continuation is queued for this warp
         * (distinguishes its pending event from a plain step for the
         * loop-batch fingerprint). */
        bool resume = false;

        /** Commit time of this warp's most recent global store (the
         * point a device-scope fence must wait for). */
        Tick last_store_commit = 0;

        /** A warp keeps one aggregated same-address atomic in
         * flight; the next waits for this round-trip point. */
        Tick own_atomic_gate = 0;
    };

    /** Pipelined outstanding-request window for per-SM atomic gating. */
    struct GateSlots
    {
        Tick newest = 0;
        Tick oldest = 0;
    };

    struct BlockState
    {
        int sm = -1;
        int warps = 0;
        int threads = 0;
        int first_warp = 0;     ///< index into warps_
        int done_warps = 0;
        // __syncthreads rendezvous
        int arrived = 0;
        Tick first_arrival = 0;
        Tick last_arrival = 0;
        std::vector<int> waiters;
    };

    /** Issue an instruction through the warp's scheduler. */
    Tick issueThrough(WarpCtx &warp, Tick ready, int uops = 1);

    Tick gateDelay(DataType t) const;

    DecodedGpuOp decodeOp(const GpuOp &op) const;
    void decodeSequence(const std::vector<GpuOp> &ops,
                        std::vector<DecodedGpuOp> &out) const;

    /** Decode @p kernel into @p img (exactly as a key-0 run would). */
    void decodeImageInto(const GpuKernel &kernel, DecodedImage &img) const;

    /** Digest over the decoded sequences (the serialization words). */
    static std::uint64_t fingerprintOf(const DecodedImage &img);

    /** Fingerprint of one lane's decoded form (cached or fresh). */
    std::uint64_t laneFingerprint(const GpuLaneSpec &lane) const;

    /**
     * The stable handler-id table for image serialization: index i
     * is the wire id of handler table[i]. Append-only -- reordering
     * or removing entries breaks every snapshot on disk.
     */
    using OpHandler = void (GpuMachine::*)(int, const DecodedGpuOp &,
                                           Tick);
    static const OpHandler *handlerTable(std::size_t &count);

    void step(int warp_id);
    void finishOp(int warp_id, Tick done);
    void advancePhase(int warp_id, Tick done);
    void arriveSyncThreads(int warp_id, Tick when);
    void arriveGridSync(int warp_id, Tick when);
    void tryLaunchBlocks(Tick when);
    void launchBlock(int block_id, int sm, Tick when);
    void warpDone(int warp_id, Tick done);

    // --- Decoded-op handlers (one per timing path) ---
    void execAlu(int warp_id, const DecodedGpuOp &op, Tick now);
    void execDivergentAlu(int warp_id, const DecodedGpuOp &op, Tick now);
    void execSyncWarp(int warp_id, const DecodedGpuOp &op, Tick now);
    void execShfl(int warp_id, const DecodedGpuOp &op, Tick now);
    void execVote(int warp_id, const DecodedGpuOp &op, Tick now);
    void execReduceSync(int warp_id, const DecodedGpuOp &op, Tick now);
    void execFenceBlock(int warp_id, const DecodedGpuOp &op, Tick now);
    void execFenceDevice(int warp_id, const DecodedGpuOp &op, Tick now);
    void execFenceSystem(int warp_id, const DecodedGpuOp &op, Tick now);
    void execGlobalLoad(int warp_id, const DecodedGpuOp &op, Tick now);
    void execGlobalStore(int warp_id, const DecodedGpuOp &op, Tick now);
    void execAtomicSameAddr(int warp_id, const DecodedGpuOp &op,
                            Tick now);
    void execAtomicCasLike(int warp_id, const DecodedGpuOp &op,
                           Tick now);
    void execAtomicPerThread(int warp_id, const DecodedGpuOp &op,
                             Tick now);
    void execSharedAtomic(int warp_id, const DecodedGpuOp &op, Tick now);
    void execSyncThreads(int warp_id, const DecodedGpuOp &op, Tick now);
    void execGridSync(int warp_id, const DecodedGpuOp &op, Tick now);

    int activeLanes(const WarpCtx &warp, const DecodedGpuOp &op) const;
    std::uint64_t resolveAddr(const WarpCtx &warp,
                              const DecodedGpuOp &op, int lane) const;

    // --- Steady-state loop batching (docs/performance.md) ---

    /**
     * Encode the complete dynamic machine state relative to the
     * trigger-boundary tick @p base: live timing registers as exact
     * offsets, provably dead ones canonicalized, the pending event
     * set in execution order, and the rng state verbatim. Equal
     * encodings at two boundaries prove the machine's dynamics are
     * periodic with the boundaries' tick distance as the period.
     */
    void encodeState(Tick base, std::vector<std::uint64_t> &out) const;

    /**
     * Called at every timed body-iteration boundary of warp
     * @p warp_id, before its iteration counter is decremented. When
     * the boundary fingerprint matches the previous one, jump K
     * whole periods algebraically and return the tick shift (0 when
     * the check fell back to single-stepping).
     */
    Tick maybeBatch(int warp_id, Tick done);

    /** Add @p delta to every live absolute-time register. */
    void shiftTimes(Tick delta);

    GpuConfig cfg_;
    Pcg32 rng_;
    sim::EventQueue eq_;
    sim::StatSet stats_;

    const GpuKernel *kernel_ = nullptr;
    LaunchConfig launch_;
    int warmup_iterations_ = 0;

    /** Decoded kernel sequences for the current run. */
    std::vector<DecodedGpuOp> dec_prologue_;
    std::vector<DecodedGpuOp> dec_body_;
    std::vector<DecodedGpuOp> dec_epilogue_;

    std::vector<WarpCtx> warps_;
    std::vector<BlockState> blocks_;
    std::deque<int> pending_blocks_;
    std::vector<int> sm_free_threads_;
    std::vector<int> sm_blocks_;
    std::vector<int> sm_next_sched_;

    // Resource reservations.
    std::vector<Tick> sched_free_;       ///< sm * schedulers + sched
    std::vector<Tick> lsu_free_;         ///< per SM
    std::vector<Tick> smem_free_;        ///< per SM
    std::vector<Tick> reduce_free_;      ///< per SM (__reduce_*_sync)
    std::vector<Tick> unit_free_;        ///< L2 atomic units
    std::unordered_map<std::uint64_t, Tick> line_free_;
    std::unordered_map<std::uint64_t, GateSlots> sm_line_gate_;
    Tick mem_bw_free_ = 0;

    /** Installed decoded images, keyed by the caller's digest. */
    std::unordered_map<std::uint64_t, std::shared_ptr<const DecodedImage>>
        images_;

    // Grid-wide barrier rendezvous (cooperative launch).
    int grid_arrivals_ = 0;
    Tick grid_first_arrival_ = 0;
    Tick grid_last_arrival_ = 0;
    std::vector<int> grid_waiters_;

    // Steady-state loop batching. The first warp to complete a timed
    // body iteration becomes the trigger; its boundaries drive the
    // periodicity check.
    bool loop_batch_ = true;
    /** Sticky horizon pin re-applied to the queue by every run(). */
    Tick lb_pin_ = sim::EventQueue::no_tick;
    int lb_trigger_ = -1;
    /** Whether the launched program can read mem_bw_free_ (it holds
     * a global load): if not, the register is outcome-dead and the
     * boundary fingerprint canonicalizes it (see encodeState). */
    bool lb_mem_bw_live_ = true;
    long lb_skip_ = 0;             ///< boundaries left before retrying
    long lb_penalty_ = 1;          ///< next backoff length (doubles)

    /** One fully-encoded timed boundary the matcher can prove a
     * period against: a later boundary whose fingerprint equals an
     * anchor's closed a cycle, however many boundaries apart they are
     * (distances are measured in ticks and per-warp iterations, not
     * anchor slots, so backoff gaps between anchors cost nothing). */
    struct LbAnchor
    {
        std::uint64_t hash = 0;   ///< fast reject before comparing fp
        std::vector<std::uint64_t> fp;
        Tick boundary = 0;
        std::uint64_t rng = 0;
        std::vector<long> iters;  ///< per-warp iters_left at boundary
        sim::StatSnapshot stats;
    };
    /** Record the boundary at @p done (fingerprint in lb_fp_, which
     * is recycled) as the newest anchor, evicting the oldest. */
    LbAnchor &pushAnchor(Tick done);
    /** Ring of the most recent anchors, newest at lb_ring_head_.
     * One anchor degenerates to adjacent-boundary matching; several
     * let contended regimes that rotate through P contenders -- and
     * so only recur every P boundaries -- still close their cycle. */
    std::array<LbAnchor, 8> lb_ring_;
    int lb_ring_head_ = 0;         ///< slot of the newest anchor
    int lb_ring_n_ = 0;            ///< valid anchors (0 = disarmed)
    std::vector<std::uint64_t> lb_fp_;  ///< scratch for the current fp
    mutable std::vector<std::uint64_t> lb_map_scratch_;
    /** Per-warp next-event ticks: liveness floors for warp-local
     * stamps (scratch for encodeState). */
    mutable std::vector<Tick> lb_warp_floor_;
    sim::LoopBatchCounters lb_;
};

} // namespace syncperf::gpusim

#endif // SYNCPERF_GPUSIM_MACHINE_HH
