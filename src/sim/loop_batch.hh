/**
 * @file
 * Counters shared by the CPU and GPU steady-state loop batchers.
 *
 * Both machines detect when a measured loop has settled into a
 * periodic steady state and then advance whole periods algebraically
 * (docs/performance.md, "Loop batching"). These counters describe
 * how much of a run's timed work was covered that way; the targets
 * aggregate them into the campaign's deterministic metrics and the
 * --explain batch-ratio annotations. They never feed the simulated
 * results: batching changes wall-clock only.
 */

#ifndef SYNCPERF_SIM_LOOP_BATCH_HH
#define SYNCPERF_SIM_LOOP_BATCH_HH

#include <cstdint>

namespace syncperf::sim
{

/** Per-run loop-batching activity of one machine. */
struct LoopBatchCounters
{
    /** Timed iterations advanced algebraically (summed over actors). */
    std::uint64_t batched_iters = 0;

    /** Batch windows applied (each covers >= 1 period). */
    std::uint64_t windows = 0;

    /**
     * Trigger-boundary checks that did not batch: fingerprint
     * mismatch (contention pattern shifted, randomness consumed, a
     * phase boundary inside the horizon) or a window too short to be
     * worth jumping. Any run with at least two timed iterations
     * records at least one -- the boundaries nearest the loop end
     * can never batch past it.
     */
    std::uint64_t fallbacks = 0;

    /** Timed iterations the run's programs asked for in total. */
    std::uint64_t total_iters = 0;

    void
    merge(const LoopBatchCounters &o)
    {
        batched_iters += o.batched_iters;
        windows += o.windows;
        fallbacks += o.fallbacks;
        total_iters += o.total_iters;
    }
};

} // namespace syncperf::sim

#endif // SYNCPERF_SIM_LOOP_BATCH_HH
