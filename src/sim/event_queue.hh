/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events scheduled for the same tick execute in (priority, insertion
 * order), which makes every simulation in this repository
 * reproducible bit-for-bit regardless of container internals.
 */

#ifndef SYNCPERF_SIM_EVENT_QUEUE_HH
#define SYNCPERF_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/types.hh"

namespace syncperf::sim
{

/** Handle identifying a scheduled event for cancellation. */
using EventId = std::uint64_t;

/**
 * Min-heap event queue with stable same-tick ordering.
 *
 * Not thread safe: each simulated machine owns one queue and runs it
 * from a single host thread.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Default event priority; lower runs first within a tick. */
    static constexpr int default_priority = 0;

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * @param when Absolute tick; must be >= now().
     * @param cb Action to execute.
     * @param priority Tie-break within a tick; lower runs first.
     * @return Handle usable with deschedule().
     */
    EventId schedule(Tick when, Callback cb,
                     int priority = default_priority);

    /** Schedule relative to the current time. */
    EventId
    scheduleIn(Tick delay, Callback cb, int priority = default_priority)
    {
        return schedule(now_ + delay, std::move(cb), priority);
    }

    /**
     * Cancel a pending event.
     *
     * @return true if the event was pending and is now cancelled.
     */
    bool deschedule(EventId id);

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Pending (non-cancelled) event count. */
    std::size_t pending() const { return live_; }

    /** True when no live events remain. */
    bool empty() const { return live_ == 0; }

    /**
     * Run events until the queue drains.
     *
     * @return The tick of the last executed event (or now() if none).
     */
    Tick run();

    /**
     * Run events with time <= @p limit; stops with now() == limit if
     * events remain beyond it.
     */
    Tick runUntil(Tick limit);

    /** Total number of events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        EventId id;
        // shared_ptr so Entry stays copyable inside priority_queue.
        std::shared_ptr<Callback> action;

        // Heap entries are compared so the earliest (then lowest
        // priority value, then first-scheduled) pops first.
        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            if (priority != other.priority)
                return priority > other.priority;
            return id > other.id;
        }
    };

    void executeOne();

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::unordered_set<EventId> pending_ids_;
    EventId next_id_ = 0;
    Tick now_ = 0;
    std::size_t live_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace syncperf::sim

#endif // SYNCPERF_SIM_EVENT_QUEUE_HH
