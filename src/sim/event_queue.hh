/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events scheduled for the same tick execute in (priority, insertion
 * order), which makes every simulation in this repository
 * reproducible bit-for-bit regardless of container internals.
 *
 * The queue is the innermost loop of every simulated machine, so the
 * hot path is allocation-free: callbacks live in a small-buffer slot
 * in a dense free-listed side table (heap fallback only for
 * oversized captures), so the table stays as small as the peak
 * number of in-flight events rather than growing with every event
 * ever scheduled; cancellation is a lazy tombstone in the slot
 * rather than a hash set; and the 4-ary heap holds plain
 * {tick, key, slot} records so sift operations shuffle small PODs
 * instead of relocating callbacks. Steady-state schedule()/run()
 * cycles on a reused queue perform zero heap allocations per event.
 *
 * Handles are generation-tagged slot references: executing,
 * cancelling, or reset() bumps the slot's generation, which
 * invalidates every outstanding handle to it. Execution order is
 * the total order (tick, priority, schedule call order) -- unique
 * per event -- so it is independent of the heap's arity and of slot
 * reuse, and results stay reproducible bit-for-bit.
 */

#ifndef SYNCPERF_SIM_EVENT_QUEUE_HH
#define SYNCPERF_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace syncperf::sim
{

/** Handle identifying a scheduled event for cancellation. */
using EventId = std::uint64_t;

/**
 * Type-erased nullary callback with a small-buffer slot.
 *
 * Callables up to @ref inline_size bytes (and nothrow-movable) are
 * stored inline; larger ones fall back to a single heap allocation.
 * Move-only; supports move-only callables.
 */
class EventCallback
{
  public:
    /** Inline storage: fits every machine callback in this repo
     * (two-pointer lambdas, std::function). */
    static constexpr std::size_t inline_size = 48;

    EventCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback>>>
    EventCallback(F &&fn) // NOLINT(google-explicit-constructor)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (buf_) Fn(std::forward<F>(fn));
            ops_ = &inline_ops<Fn>;
        } else {
            *reinterpret_cast<Fn **>(buf_) =
                new Fn(std::forward<F>(fn));
            ops_ = &boxed_ops<Fn>;
        }
    }

    EventCallback(EventCallback &&other) noexcept { moveFrom(other); }

    EventCallback &
    operator=(EventCallback &&other) noexcept
    {
        if (this != &other) {
            destroy();
            moveFrom(other);
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { destroy(); }

    void operator()() { ops_->invoke(buf_); }

    explicit operator bool() const { return ops_ != nullptr; }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct into @p dst from @p src, destroying src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= inline_size &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static constexpr Ops inline_ops = {
        [](void *p) { (*static_cast<Fn *>(p))(); },
        [](void *dst, void *src) noexcept {
            auto *from = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
        },
        [](void *p) noexcept { static_cast<Fn *>(p)->~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops boxed_ops = {
        [](void *p) { (**static_cast<Fn **>(p))(); },
        [](void *dst, void *src) noexcept {
            *static_cast<Fn **>(dst) = *static_cast<Fn **>(src);
        },
        [](void *p) noexcept { delete *static_cast<Fn **>(p); },
    };

    void
    moveFrom(EventCallback &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    void
    destroy() noexcept
    {
        if (ops_ != nullptr) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[inline_size];
    const Ops *ops_ = nullptr;
};

/**
 * Min-heap event queue with stable same-tick ordering.
 *
 * Not thread safe: each simulated machine owns one queue and runs it
 * from a single host thread.
 */
class EventQueue
{
  public:
    /** Default event priority; lower runs first within a tick. */
    static constexpr int default_priority = 0;

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * @param when Absolute tick; must be >= now().
     * @param cb Action to execute (any nullary callable, including
     *           move-only ones).
     * @param priority Tie-break within a tick; lower runs first.
     * @return Handle usable with deschedule().
     */
    EventId schedule(Tick when, EventCallback cb,
                     int priority = default_priority);

    /** Schedule relative to the current time. */
    EventId
    scheduleIn(Tick delay, EventCallback cb,
               int priority = default_priority)
    {
        return schedule(now_ + delay, std::move(cb), priority);
    }

    /**
     * Cancel a pending event.
     *
     * @return true if the event was pending and is now cancelled.
     */
    bool deschedule(EventId id);

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Pending (non-cancelled) event count. */
    std::size_t pending() const { return live_; }

    /** True when no live events remain. */
    bool empty() const { return live_ == 0; }

    /**
     * Run events until the queue drains.
     *
     * @return The tick of the last executed event (or now() if none).
     */
    Tick run();

    /**
     * Run events with time <= @p limit; stops with now() == limit if
     * events remain beyond it.
     */
    Tick runUntil(Tick limit);

    /** Total number of events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

    /** High-water pending() mark since construction or reset(). */
    std::size_t maxPending() const { return max_pending_; }

    /** Sentinel tick: no pending foreign event / no horizon pin. */
    static constexpr Tick no_tick = ~Tick{0};

    /**
     * Tick of the earliest pending (non-cancelled) event, or no_tick
     * when the queue is empty. O(1): the heap root is the earliest
     * live event unless it is a tombstone, in which case a linear
     * scan resolves it (tombstones are rare by construction).
     */
    Tick earliestPending() const;

    /**
     * For each priority p in [0, out.size()), set out[p] to the tick
     * of p's earliest pending (non-cancelled) event, or no_tick when
     * p has none scheduled. Priorities outside the range are
     * ignored. Linear in the pending set (a batching-boundary query,
     * not a hot-path one). The machines use actor indices as
     * priorities, so this yields each actor's next wake-up -- the
     * liveness floor for actor-local time stamps, which only that
     * actor's later ops can read.
     */
    void earliestPendingPerPriority(std::vector<Tick> &out) const;

    /**
     * Earliest pending (non-cancelled) event whose priority differs
     * from @p priority, or the horizon pin when that is earlier;
     * no_tick when neither exists. Linear in the pending set (it is
     * a batching-boundary query, not a hot-path one). Tombstoned
     * events never count: a cancelled event can land nowhere.
     */
    Tick nextForeignTick(int priority) const;

    /**
     * Append a canonical encoding of the pending set to @p out: the
     * live count, then a (when - base, biased priority) pair per
     * event in execution order. Cancelled tombstones are skipped.
     * Two queues with equal encodings against their respective bases
     * execute the same event pattern at the same offsets, whatever
     * their internal heap layout or schedule-sequence numbers.
     */
    void encodePending(Tick base, std::vector<std::uint64_t> &out) const;

    /**
     * Add @p delta to the tick of every pending event (tombstones
     * included; they are inert either way). Relative order is
     * untouched -- the packed key makes this a monotone transform --
     * so this is how the loop batcher advances a whole steady-state
     * window in O(pending) without re-heapifying.
     */
    void shiftPending(Tick delta);

    /**
     * Pin the batching horizon at @p when: nextForeignTick() never
     * reports a tick past the pin, so no batch window can jump
     * across it. Hook for fault-injection points and tests; cleared
     * by clearHorizonPin() and reset().
     */
    void pinHorizon(Tick when) { horizon_pin_ = when; }

    /** Remove the horizon pin. */
    void clearHorizonPin() { horizon_pin_ = no_tick; }

    /** Current horizon pin, or no_tick when unpinned. */
    Tick horizonPin() const { return horizon_pin_; }

    /**
     * Return the queue to its initial state (time 0, nothing
     * pending) while keeping allocated capacity, so a reused machine
     * schedules into warm buffers. Every outstanding handle is
     * invalidated: deschedule() on one returns false, like executed
     * ones.
     */
    void reset();

    /**
     * Number of callback slots currently in use (test hook). Zero
     * whenever the queue drains, so repeated run() cycles on one
     * queue cannot accumulate stale bookkeeping.
     */
    std::size_t idWindow() const { return slots_.size() - free_.size(); }

    /**
     * Pre-size the queue for @p events concurrently pending events:
     * the heap's capacity and the slot table both grow to at least
     * that many entries, so a machine cloned from a warmed template
     * never pays the incremental grow-as-you-go allocations of its
     * first run. Execution order is (tick, priority, schedule order)
     * -- independent of slot indices -- so pre-populating the free
     * list cannot change any simulation result. Never shrinks.
     */
    void reserve(std::size_t events);

    /** Allocated slot-table size (the warm capacity reserve() and
     * reset() preserve); the clone path copies this from a template. */
    std::size_t slotCapacity() const { return slots_.size(); }

  private:
    /** Lifecycle of an allocated slot. */
    enum class SlotState : unsigned char
    {
        Pending,
        Cancelled, ///< tombstone: freed when its heap record pops
    };

    /** Priority bias: int priorities in [-2^23, 2^23) map onto the
     * unsigned 24-bit field of the packed ordering key (the machines
     * use warp/thread indices as priorities, and a big reduction
     * grid holds far more than 2^16 warps). */
    static constexpr std::uint64_t priority_bias = 1ULL << 23;

    /** Bits of the packed key below the tick; schedule() asserts
     * ticks fit the 40 above (2^40 cycles is minutes of simulated
     * time at GPU clocks -- orders of magnitude beyond any run). */
    static constexpr unsigned when_shift = 24;

    /**
     * Ordering record kept in the heap: 16 packed bytes, so sift
     * operations move two words per level and never touch the
     * callbacks.
     *
     * hi = tick : 40 | biased priority : 24 -- one compare orders by
     * (tick, priority). lo = schedule seq : 32 | slot index : 32 --
     * the seq breaks remaining ties by schedule call order, compared
     * circularly (see before()), so the 32-bit counter never wraps
     * incorrectly while fewer than 2^31 events coexist.
     */
    struct Entry
    {
        std::uint64_t hi;
        std::uint64_t lo;

        Tick when() const { return hi >> when_shift; }
        std::uint32_t slot() const
        {
            return static_cast<std::uint32_t>(lo);
        }
    };

    /** True when @p a executes before @p b: the total order
     * (tick, priority, schedule order), unique per event. */
    static bool
    before(const Entry &a, const Entry &b)
    {
        if (a.hi != b.hi)
            return a.hi < b.hi;
        // Circular 32-bit comparison of the schedule seqs: exact as
        // long as coexisting events span < 2^31 schedule calls.
        return static_cast<std::int32_t>(
                   static_cast<std::uint32_t>(a.lo >> 32) -
                   static_cast<std::uint32_t>(b.lo >> 32)) < 0;
    }

    /** Callback plus handle-validation state for one slot. */
    struct Slot
    {
        EventCallback action;
        std::uint32_t gen = 0;
        SlotState state = SlotState::Pending;
    };

    /** Restore heap order for a new element at index @p i. */
    void siftUp(std::size_t i);

    /** Restore heap order downward from index @p i. */
    void siftDown(std::size_t i);

    /** Pop the earliest ordering record off the heap. */
    Entry popTop();

    /** Return @p slot to the free list and kill its handles. */
    void
    freeSlot(std::uint32_t slot)
    {
        ++slots_[slot].gen;
        free_.push_back(slot);
    }

    void executeOne();

    std::vector<Entry> heap_; ///< 4-ary min-heap ordered by before()
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> free_; ///< reusable slot indices
    std::uint32_t next_seq_ = 0;      ///< schedule-order tie-break
    Tick now_ = 0;
    std::size_t live_ = 0;
    std::size_t max_pending_ = 0;
    std::uint64_t executed_ = 0;
    Tick horizon_pin_ = no_tick;
    /** Reused sort buffer of encodePending(). */
    mutable std::vector<Entry> order_scratch_;
};

} // namespace syncperf::sim

#endif // SYNCPERF_SIM_EVENT_QUEUE_HH
