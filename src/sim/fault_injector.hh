/**
 * @file
 * Deterministic fault injection for robustness testing.
 *
 * The simulators are deterministic by design, which makes them ideal
 * for proving that the campaign layer degrades gracefully: a test
 * installs a FaultInjector, dials in exactly the failure it wants --
 * skewed clocks, spurious runtime jitter, poisoned (non-finite)
 * measurements, or transient CSV write failures on the Nth write
 * operation -- and asserts the pipeline's response. All perturbations
 * are seeded, so a failing test reproduces bit-for-bit.
 *
 * Hook points:
 *  - CpuSimTarget/GpuSimTarget::runOnce() consult active() to skew,
 *    jitter, or poison the per-thread runtimes they report;
 *  - AtomicFile::open()/commit() consult the installed fault hook,
 *    which Scope wires to failWrites().
 */

#ifndef SYNCPERF_SIM_FAULT_INJECTOR_HH
#define SYNCPERF_SIM_FAULT_INJECTOR_HH

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string_view>

#include "common/atomic_file.hh"
#include "common/rng.hh"
#include "common/status.hh"

namespace syncperf::sim
{

/** One configurable fault source; see file comment for the modes. */
class FaultInjector
{
  public:
    FaultInjector() = default;

    // ------------------------------------------------ configuration

    /** Multiply every reported runtime by @p factor (clock skew). */
    void setClockSkew(double factor) { clock_skew_ = factor; }

    /**
     * Add uniform spurious latency in [0, fraction * runtime] to
     * every reported runtime, drawn from a stream seeded with
     * @p seed (deterministic across reruns).
     */
    void
    setJitter(double fraction, std::uint64_t seed = 1)
    {
        jitter_fraction_ = fraction;
        jitter_rng_ = Pcg32(seed);
    }

    /**
     * Poison measurements numbered [first, first+count): the timed
     * launch reports non-finite runtimes, modeling a pathological
     * sample the protocol must retry or surface. 1-based.
     */
    void
    poisonMeasurements(int first, int count = 1)
    {
        poison_first_ = first;
        poison_count_ = count;
    }

    /**
     * Fail write operations numbered [first, first+count): every
     * AtomicFile open/commit counts as one operation. 1-based.
     */
    void
    failWrites(int first, int count = 1)
    {
        fail_write_first_ = first;
        fail_write_count_ = count;
    }

    /**
     * Process-level fault: allow exactly @p n CSV commits, then
     * SIGKILL this process as its (n+1)-th CSV commit begins -- the
     * .tmp holds complete content but the rename has not happened,
     * and earlier commits may still be missing their journal append.
     * n = 0 dies on the very first commit. Used by the shard
     * kill-resume tests; negative disables (the default).
     */
    void killAfterCsvCommits(int n) { kill_after_csv_commits_ = n; }

    // ------------------------------------------------- hook queries
    //
    // The hook queries are thread-safe: a parallel campaign
    // (--jobs > 1) consults the active injector from every worker.
    // Counting is exact under concurrency, but which experiment
    // observes the Nth operation then depends on scheduling, so
    // ordinal-based faults (poisonMeasurements/failWrites) are only
    // deterministic at --jobs 1; rate-style perturbations (skew,
    // jitter) remain safe at any job count.

    /** Apply clock skew and jitter to one reported runtime. */
    double
    perturbSeconds(double seconds)
    {
        double out = seconds * clock_skew_;
        if (jitter_fraction_ > 0.0) {
            std::scoped_lock lock(jitter_mutex_);
            out += seconds * jitter_fraction_ * jitter_rng_.uniform();
        }
        return out;
    }

    /** Count one timed launch; true when it should be poisoned. */
    bool shouldPoisonMeasurement();

    /** Count one write operation; non-ok when it should fail. */
    Status onWriteOp(const std::filesystem::path &path,
                     std::string_view op);

    /** Timed launches observed so far. */
    int measurementCount() const { return measurement_count_.load(); }

    /** Write operations observed so far. */
    int writeOpCount() const { return write_op_count_.load(); }

    /** Faults actually delivered (poisons + failed writes). Also
     * mirrored into metrics::Counter::FaultsInjected. */
    int injectedCount() const { return injected_count_.load(); }

    // -------------------------------------------- process-level mode

    /** SYNCPERF_FAULT_KILL_SHARD="<shard>:<commits>" parsed. */
    struct KillShardSpec
    {
        int shard = -1;   ///< worker shard index the fault targets
        int commits = 0;  ///< CSV commits allowed before SIGKILL
    };

    /**
     * Parse the SYNCPERF_FAULT_KILL_SHARD environment variable
     * ("<shard-index>:<allowed-csv-commits>", e.g. "1:2" or "0:0").
     * Consulted only by shard *worker* processes -- the supervisor
     * and plain campaigns never arm it -- so exporting it kills
     * exactly the targeted shard, deterministically, on every
     * (re)spawn. Returns false when unset or malformed.
     */
    static bool killShardSpecFromEnv(KillShardSpec &spec);

    // ---------------------------------------------------- lifecycle

    /** The injector consulted by the hook points; nullptr when none
     * is installed (the common case -- production never pays for
     * fault injection beyond this null check). */
    static FaultInjector *active();

    /**
     * RAII installer: makes @p injector the active one and routes
     * the AtomicFile fault hook through it; restores both on
     * destruction. Scopes must nest LIFO.
     */
    class Scope
    {
      public:
        explicit Scope(FaultInjector &injector);
        ~Scope();

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        FaultInjector *previous_;
        AtomicFile::FaultHook previous_hook_;
    };

  private:
    double clock_skew_ = 1.0;
    double jitter_fraction_ = 0.0;
    std::mutex jitter_mutex_; ///< the RNG stream is shared state
    Pcg32 jitter_rng_{1};

    int poison_first_ = 0; ///< 0 disables
    int poison_count_ = 0;
    std::atomic<int> measurement_count_{0};

    int fail_write_first_ = 0; ///< 0 disables
    int fail_write_count_ = 0;
    std::atomic<int> write_op_count_{0};
    std::atomic<int> injected_count_{0};

    int kill_after_csv_commits_ = -1; ///< negative disables
    std::atomic<int> csv_commit_count_{0};
};

} // namespace syncperf::sim

#endif // SYNCPERF_SIM_FAULT_INJECTOR_HH
