/**
 * @file
 * Implementation of the fault injector.
 */

#include "fault_injector.hh"

#include <csignal>
#include <cstdlib>

#include <unistd.h>

#include "common/metrics.hh"

namespace syncperf::sim
{
namespace
{

FaultInjector *g_active = nullptr;

} // namespace

bool
FaultInjector::shouldPoisonMeasurement()
{
    const int n = measurement_count_.fetch_add(1) + 1;
    const bool poison = poison_first_ > 0 && n >= poison_first_ &&
                        n < poison_first_ + poison_count_;
    if (poison) {
        injected_count_.fetch_add(1);
        metrics::add(metrics::Counter::FaultsInjected);
    }
    return poison;
}

Status
FaultInjector::onWriteOp(const std::filesystem::path &path,
                         std::string_view op)
{
    const int n = write_op_count_.fetch_add(1) + 1;
    if (fail_write_first_ > 0 && n >= fail_write_first_ &&
        n < fail_write_first_ + fail_write_count_) {
        injected_count_.fetch_add(1);
        metrics::add(metrics::Counter::FaultsInjected);
        return Status::error(ErrorCode::FaultInjected,
                             "injected {} failure for {} (write op {})",
                             op, path.string(),
                             static_cast<long long>(n));
    }
    if (kill_after_csv_commits_ >= 0 && op == "commit" &&
        path.extension() == ".csv" &&
        csv_commit_count_.fetch_add(1) >= kill_after_csv_commits_) {
        // Die the way a crashed shard dies: abruptly, with the CSV
        // already renamed into place but its journal append still
        // pending. SIGKILL cannot be caught, so no cleanup runs.
        injected_count_.fetch_add(1);
        metrics::add(metrics::Counter::FaultsInjected);
        ::kill(::getpid(), SIGKILL);
    }
    return Status::ok();
}

bool
FaultInjector::killShardSpecFromEnv(KillShardSpec &spec)
{
    const char *env = std::getenv("SYNCPERF_FAULT_KILL_SHARD");
    if (env == nullptr || *env == '\0')
        return false;
    char *end = nullptr;
    const long shard = std::strtol(env, &end, 10);
    if (end == env || *end != ':' || shard < 0)
        return false;
    const char *commits_text = end + 1;
    const long commits = std::strtol(commits_text, &end, 10);
    if (end == commits_text || *end != '\0' || commits < 0)
        return false;
    spec.shard = static_cast<int>(shard);
    spec.commits = static_cast<int>(commits);
    return true;
}

FaultInjector *
FaultInjector::active()
{
    return g_active;
}

FaultInjector::Scope::Scope(FaultInjector &injector)
    : previous_(g_active)
{
    g_active = &injector;
    previous_hook_ = AtomicFile::setFaultHook(
        [&injector](const std::filesystem::path &path,
                    std::string_view op) {
            return injector.onWriteOp(path, op);
        });
}

FaultInjector::Scope::~Scope()
{
    g_active = previous_;
    AtomicFile::setFaultHook(previous_hook_);
}

} // namespace syncperf::sim
