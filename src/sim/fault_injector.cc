/**
 * @file
 * Implementation of the fault injector.
 */

#include "fault_injector.hh"

#include "common/metrics.hh"

namespace syncperf::sim
{
namespace
{

FaultInjector *g_active = nullptr;

} // namespace

bool
FaultInjector::shouldPoisonMeasurement()
{
    const int n = measurement_count_.fetch_add(1) + 1;
    const bool poison = poison_first_ > 0 && n >= poison_first_ &&
                        n < poison_first_ + poison_count_;
    if (poison) {
        injected_count_.fetch_add(1);
        metrics::add(metrics::Counter::FaultsInjected);
    }
    return poison;
}

Status
FaultInjector::onWriteOp(const std::filesystem::path &path,
                         std::string_view op)
{
    const int n = write_op_count_.fetch_add(1) + 1;
    if (fail_write_first_ > 0 && n >= fail_write_first_ &&
        n < fail_write_first_ + fail_write_count_) {
        injected_count_.fetch_add(1);
        metrics::add(metrics::Counter::FaultsInjected);
        return Status::error(ErrorCode::FaultInjected,
                             "injected {} failure for {} (write op {})",
                             op, path.string(),
                             static_cast<long long>(n));
    }
    return Status::ok();
}

FaultInjector *
FaultInjector::active()
{
    return g_active;
}

FaultInjector::Scope::Scope(FaultInjector &injector)
    : previous_(g_active)
{
    g_active = &injector;
    previous_hook_ = AtomicFile::setFaultHook(
        [&injector](const std::filesystem::path &path,
                    std::string_view op) {
            return injector.onWriteOp(path, op);
        });
}

FaultInjector::Scope::~Scope()
{
    g_active = previous_;
    AtomicFile::setFaultHook(previous_hook_);
}

} // namespace syncperf::sim
