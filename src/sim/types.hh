/**
 * @file
 * Fundamental simulation types shared by all timing models.
 */

#ifndef SYNCPERF_SIM_TYPES_HH
#define SYNCPERF_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace syncperf::sim
{

/** Simulated time, in cycles of the machine's base clock. */
using Tick = std::uint64_t;

/** Sentinel "never" tick. */
inline constexpr Tick max_tick = std::numeric_limits<Tick>::max();

} // namespace syncperf::sim

#endif // SYNCPERF_SIM_TYPES_HH
