/**
 * @file
 * Named statistic counters and histograms for the simulated machines.
 *
 * The hot path is interned: every probe a machine records is a member
 * of the Probe (counter) or HistProbe (histogram) enum, so recording
 * is an array index -- no string hashing, no map node allocation --
 * and is cheap enough to leave on in production runs. The historical
 * string-keyed API remains as a cold compatibility path: tests may
 * still register ad-hoc named counters, and all() renders the merged
 * set sorted by name exactly as the old std::map dump did (zero-value
 * probes stay absent).
 */

#ifndef SYNCPERF_SIM_STAT_HH
#define SYNCPERF_SIM_STAT_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "common/histogram.hh"

namespace syncperf::sim
{

/**
 * Interned counter probes. Names (probeName) are the exact strings
 * the machines historically folded into the StatSet, plus the
 * telemetry probes added with the microarchitectural telemetry layer.
 */
enum class Probe : int
{
    // CPU machine
    CpuL1Hit,
    CpuMemFetch,
    CpuTransferLocal,
    CpuTransferRemote,
    CpuFenceClean,
    CpuFenceContended,
    CpuLockHandoff,
    CpuBarrierSpin,
    CpuBarrierFutex,
    CpuBarrierTree,
    CpuBarrierDissemination,
    CpuLinePingPong,   ///< exclusive ownership moved between cores
    CpuLockContended,  ///< lock acquire found the lock held

    // GPU machine
    GpuLoadSectors,
    GpuStoreSectors,
    GpuAtomicAggregated,
    GpuAtomicUnaggregated,
    GpuAtomicCasLike,
    GpuAtomicPerThread,
    GpuSmemAtomic,
    GpuSyncthreads,
    GpuGridSync,
    GpuDivergentPaths,
    GpuShflUops,
    GpuReduceSync,
    GpuFence,
    GpuBlocksLaunched,
    GpuBlocksRetired,
    GpuCasConflicts,   ///< lanes serialized behind a CAS-like winner

    // Shared simulator infrastructure
    EqMaxDepth,        ///< high-water event-queue depth of the run

    Count
};

/** Interned histogram probes (tick distributions). */
enum class HistProbe : int
{
    CpuAcqWaitTicks,       ///< exclusive-acquisition queue wait
    CpuFenceStallTicks,    ///< drain stall of a contended fence
    CpuBarrierSpreadTicks, ///< last minus first barrier arrival
    CpuLockWaitTicks,      ///< blocked time until lock handoff
    GpuAtomicWaitTicks,    ///< L2 atomic-unit queue wait
    GpuBarrierSpreadTicks, ///< __syncthreads arrival spread
    GpuFenceStallTicks,    ///< device-fence store-commit stall

    Count
};

/** Stable display/serialization name of @p p (e.g. "cpu.l1_hit"). */
const char *probeName(Probe p);

/** Stable display/serialization name of @p p. */
const char *histProbeName(HistProbe p);

/**
 * Deep copy of a StatSet's interned probes at one instant, used by
 * the loop batcher to measure the exact stat production of one
 * steady-state period and replay it K times. The cold string-keyed
 * extras are deliberately absent: no machine hot path records them.
 */
struct StatSnapshot
{
    std::array<std::uint64_t, static_cast<std::size_t>(Probe::Count)>
        counters{};
    std::array<std::vector<Histogram::Bucket>,
               static_cast<std::size_t>(HistProbe::Count)>
        hists;
};

/**
 * A flat registry of counters and histograms. Machines expose one
 * StatSet so tests and benches can assert on internal activity (e.g.
 * "number of warp-aggregated atomics performed") and the telemetry
 * layer can explain figure shapes.
 */
class StatSet
{
  public:
    /** Add @p delta to interned counter @p p. O(1). */
    void
    inc(Probe p, std::uint64_t delta = 1)
    {
        counters_[static_cast<std::size_t>(p)] += delta;
    }

    /** Value of interned counter @p p. O(1). */
    std::uint64_t
    get(Probe p) const
    {
        return counters_[static_cast<std::size_t>(p)];
    }

    /** Record @p v into interned histogram @p p. O(1). */
    void
    record(HistProbe p, std::uint64_t v)
    {
        hists_[static_cast<std::size_t>(p)].record(v);
    }

    /** Interned histogram @p p (possibly empty). */
    const Histogram &
    hist(HistProbe p) const
    {
        return hists_[static_cast<std::size_t>(p)];
    }

    /**
     * Add @p delta to counter @p name, creating it at zero. Cold
     * compatibility path: resolves interned probe names to their
     * enum slot, ad-hoc names go to a side map.
     */
    void inc(const std::string &name, std::uint64_t delta = 1);

    /** Value of @p name, or zero when never incremented. */
    std::uint64_t get(const std::string &name) const;

    /**
     * All nonzero counters, sorted by name for deterministic dumps
     * (interned probes and ad-hoc names merged; zero-valued interned
     * probes are absent, matching the historical fold behavior).
     */
    std::map<std::string, std::uint64_t> all() const;

    /** Reset every counter and histogram to zero. */
    void clear();

    /** Copy the interned probes into @p out (reusing its storage). */
    void snapshot(StatSnapshot &out) const;

    /**
     * Replay @p periods extra copies of everything recorded since
     * @p prev was taken: counter deltas are multiplied, histogram
     * buckets get periods x (count, sum) delta. Bucket min/max stay
     * as they are -- a steady-state period records the same sample
     * values every time around, so the extremes were already seen in
     * the measured period. The result is bit-identical to recording
     * the period's samples @p periods more times.
     */
    void applyPeriods(const StatSnapshot &prev, std::uint64_t periods);

  private:
    std::array<std::uint64_t, static_cast<std::size_t>(Probe::Count)>
        counters_{};
    std::array<Histogram, static_cast<std::size_t>(HistProbe::Count)>
        hists_{};
    std::map<std::string, std::uint64_t> extras_;
};

} // namespace syncperf::sim

#endif // SYNCPERF_SIM_STAT_HH
