/**
 * @file
 * Named statistic counters for the simulated machines.
 */

#ifndef SYNCPERF_SIM_STAT_HH
#define SYNCPERF_SIM_STAT_HH

#include <cstdint>
#include <map>
#include <string>

namespace syncperf::sim
{

/**
 * A flat registry of named counters. Machines expose one StatSet so
 * tests and benches can assert on internal activity (e.g. "number of
 * warp-aggregated atomics performed").
 */
class StatSet
{
  public:
    /** Add @p delta to counter @p name, creating it at zero. */
    void
    inc(const std::string &name, std::uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Value of @p name, or zero when never incremented. */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** All counters, sorted by name for deterministic dumps. */
    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters_;
    }

    /** Reset every counter to zero. */
    void clear() { counters_.clear(); }

  private:
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace syncperf::sim

#endif // SYNCPERF_SIM_STAT_HH
