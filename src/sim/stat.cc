#include "sim/stat.hh"

#include "common/logging.hh"

namespace syncperf::sim
{
namespace
{

constexpr const char *probe_names[] = {
    "cpu.l1_hit",
    "cpu.mem_fetch",
    "cpu.transfer_local",
    "cpu.transfer_remote",
    "cpu.fence_clean",
    "cpu.fence_contended",
    "cpu.lock_handoff",
    "cpu.barrier_spin",
    "cpu.barrier_futex",
    "cpu.barrier_tree",
    "cpu.barrier_dissemination",
    "cpu.line_ping_pong",
    "cpu.lock_contended",
    "gpu.load_sectors",
    "gpu.store_sectors",
    "gpu.atomic_aggregated",
    "gpu.atomic_unaggregated",
    "gpu.atomic_cas_like",
    "gpu.atomic_per_thread",
    "gpu.smem_atomic",
    "gpu.syncthreads",
    "gpu.grid_sync",
    "gpu.divergent_paths",
    "gpu.shfl_uops",
    "gpu.reduce_sync",
    "gpu.fence",
    "gpu.blocks_launched",
    "gpu.blocks_retired",
    "gpu.cas_conflicts",
    "sim.eq_max_depth",
};
static_assert(std::size(probe_names) ==
                  static_cast<std::size_t>(Probe::Count),
              "probe_names out of sync with Probe");

constexpr const char *hist_probe_names[] = {
    "cpu.acq_wait_ticks",
    "cpu.fence_stall_ticks",
    "cpu.barrier_spread_ticks",
    "cpu.lock_wait_ticks",
    "gpu.atomic_wait_ticks",
    "gpu.barrier_spread_ticks",
    "gpu.fence_stall_ticks",
};
static_assert(std::size(hist_probe_names) ==
                  static_cast<std::size_t>(HistProbe::Count),
              "hist_probe_names out of sync with HistProbe");

} // namespace

const char *
probeName(Probe p)
{
    SYNCPERF_ASSERT(p < Probe::Count);
    return probe_names[static_cast<std::size_t>(p)];
}

const char *
histProbeName(HistProbe p)
{
    SYNCPERF_ASSERT(p < HistProbe::Count);
    return hist_probe_names[static_cast<std::size_t>(p)];
}

void
StatSet::inc(const std::string &name, std::uint64_t delta)
{
    for (std::size_t i = 0; i < std::size(probe_names); ++i) {
        if (name == probe_names[i]) {
            counters_[i] += delta;
            return;
        }
    }
    extras_[name] += delta;
}

std::uint64_t
StatSet::get(const std::string &name) const
{
    for (std::size_t i = 0; i < std::size(probe_names); ++i)
        if (name == probe_names[i])
            return counters_[i];
    auto it = extras_.find(name);
    return it == extras_.end() ? 0 : it->second;
}

std::map<std::string, std::uint64_t>
StatSet::all() const
{
    std::map<std::string, std::uint64_t> merged = extras_;
    for (std::size_t i = 0; i < counters_.size(); ++i) {
        if (counters_[i] > 0)
            merged[probe_names[i]] += counters_[i];
    }
    return merged;
}

void
StatSet::clear()
{
    counters_.fill(0);
    for (Histogram &h : hists_)
        h.clear();
    extras_.clear();
}

void
StatSet::snapshot(StatSnapshot &out) const
{
    out.counters = counters_;
    for (std::size_t i = 0; i < hists_.size(); ++i) {
        out.hists[i].assign(hists_[i].buckets().begin(),
                            hists_[i].buckets().end());
    }
}

void
StatSet::applyPeriods(const StatSnapshot &prev, std::uint64_t periods)
{
    for (std::size_t i = 0; i < counters_.size(); ++i)
        counters_[i] += periods * (counters_[i] - prev.counters[i]);
    for (std::size_t h = 0; h < hists_.size(); ++h) {
        const auto &cur = hists_[h].buckets();
        const auto &old = prev.hists[h];
        for (std::size_t b = 0; b < cur.size(); ++b) {
            const std::uint64_t dcount =
                cur[b].count - (b < old.size() ? old[b].count : 0);
            if (dcount == 0)
                continue;
            const std::uint64_t dsum =
                cur[b].sum - (b < old.size() ? old[b].sum : 0);
            Histogram::Bucket scaled = cur[b];
            scaled.count += periods * dcount;
            scaled.sum += periods * dsum;
            hists_[h].setBucket(static_cast<int>(b), scaled);
        }
    }
}

} // namespace syncperf::sim
