/**
 * @file
 * Versioned, checksummed on-disk images of decoded simulator state.
 *
 * A snapshot is a flat sequence of 64-bit words wrapped in a small
 * self-describing container (`syncperf-snapshot-v1`): magic, format
 * version, payload kind, the ConfigHasher key the payload was decoded
 * under, the word count, and an FNV-1a checksum of the payload bytes.
 * Everything is little-endian on disk, so images written by one build
 * flavor (e.g. a release supervisor) load bit-for-bit under another
 * (e.g. a sanitizer worker).
 *
 * The container makes one promise: a reader either gets back exactly
 * the words the writer put in, or a clean Status error. Truncated,
 * torn, bit-flipped, version-bumped, or mis-keyed files are all
 * detected before a single payload word is handed to the caller --
 * the machine-specific decoders behind core/machine_pool then do
 * their own semantic validation on top (handler ids, index bounds).
 *
 * Files are written via AtomicFile (temp + rename), so readers never
 * observe a partially written image under its final name. Two
 * processes racing to write the same image can still tear the shared
 * temp file; the checksum turns that into a clean reject on the next
 * load, never undefined behavior.
 */

#ifndef SYNCPERF_SIM_SNAPSHOT_HH
#define SYNCPERF_SIM_SNAPSHOT_HH

#include <cstdint>
#include <filesystem>
#include <vector>

#include "common/status.hh"

namespace syncperf::sim
{

/** What a snapshot's payload words encode. */
enum class SnapshotKind : std::uint32_t
{
    CpuImage = 1, ///< cpusim::CpuMachine decoded-program image
    GpuImage = 2, ///< gpusim::GpuMachine decoded-kernel image
};

/** Current container format version. */
inline constexpr std::uint32_t snapshot_version = 1;

/** Stable file name for the image of @p kind under @p key. */
std::string snapshotFileName(SnapshotKind kind, std::uint64_t key);

/**
 * Write @p words as a snapshot of @p kind keyed by @p key to @p path
 * (temp + rename via AtomicFile; parent directories are created).
 */
Status writeSnapshotFile(const std::filesystem::path &path,
                         SnapshotKind kind, std::uint64_t key,
                         const std::vector<std::uint64_t> &words);

/**
 * Load the payload of the snapshot at @p path, validating the magic,
 * version, kind, key, size, and checksum. Any mismatch -- including a
 * file truncated or corrupted at any byte offset -- is a ParseError;
 * a file that cannot be opened at all is an IoError.
 */
Result<std::vector<std::uint64_t>>
readSnapshotFile(const std::filesystem::path &path, SnapshotKind kind,
                 std::uint64_t key);

/**
 * Bounds-checked forward reader over a snapshot payload. Reads past
 * the end fail sticky (every later read also fails), so decoders can
 * batch reads and check once.
 */
class SnapshotCursor
{
  public:
    explicit SnapshotCursor(const std::vector<std::uint64_t> &words)
        : words_(&words)
    {
    }

    /** Read one word; false (and sticky failure) once exhausted. */
    bool
    u64(std::uint64_t &out)
    {
        if (failed_ || pos_ >= words_->size()) {
            failed_ = true;
            return false;
        }
        out = (*words_)[pos_++];
        return true;
    }

    /** Read one word as a signed value. */
    bool
    i64(std::int64_t &out)
    {
        std::uint64_t raw = 0;
        if (!u64(raw))
            return false;
        out = static_cast<std::int64_t>(raw);
        return true;
    }

    /** True when every word was consumed and no read overran. */
    bool done() const { return !failed_ && pos_ == words_->size(); }

    /** True when any read ran past the end. */
    bool overran() const { return failed_; }

  private:
    const std::vector<std::uint64_t> *words_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

} // namespace syncperf::sim

#endif // SYNCPERF_SIM_SNAPSHOT_HH
