/**
 * @file
 * Implementation of the discrete-event queue.
 */

#include "event_queue.hh"

#include "common/logging.hh"

namespace syncperf::sim
{

EventId
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    SYNCPERF_ASSERT(when >= now_, "cannot schedule into the past");
    const EventId id = next_id_++;
    heap_.push(Entry{when, priority, id,
                     std::make_shared<Callback>(std::move(cb))});
    pending_ids_.insert(id);
    ++live_;
    return id;
}

bool
EventQueue::deschedule(EventId id)
{
    // Cancelled entries stay in the heap and are skipped when popped.
    if (pending_ids_.erase(id) == 0)
        return false;
    --live_;
    return true;
}

void
EventQueue::executeOne()
{
    Entry entry = heap_.top();
    heap_.pop();
    if (pending_ids_.erase(entry.id) == 0)
        return;  // was cancelled
    --live_;
    now_ = entry.when;
    ++executed_;
    (*entry.action)();
}

Tick
EventQueue::run()
{
    while (!heap_.empty())
        executeOne();
    return now_;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit)
        executeOne();
    if (now_ < limit)
        now_ = limit;
    return now_;
}

} // namespace syncperf::sim
