/**
 * @file
 * Implementation of the discrete-event queue.
 */

#include "event_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace syncperf::sim
{

EventId
EventQueue::schedule(Tick when, EventCallback cb, int priority)
{
    SYNCPERF_ASSERT(when >= now_, "cannot schedule into the past");
    SYNCPERF_ASSERT(
        static_cast<std::uint64_t>(priority + priority_bias) <
            (priority_bias << 1),
        "event priority out of the packed 24-bit range");
    SYNCPERF_ASSERT(when < (Tick{1} << (64 - when_shift)),
                    "tick out of the packed 40-bit range");

    std::uint32_t slot_idx;
    if (free_.empty()) {
        slot_idx = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    } else {
        slot_idx = free_.back();
        free_.pop_back();
    }
    Slot &slot = slots_[slot_idx];
    slot.action = std::move(cb);
    slot.state = SlotState::Pending;

    const std::uint64_t prio_key =
        (static_cast<std::uint64_t>(priority) + priority_bias) &
        ((priority_bias << 1) - 1);
    heap_.push_back(
        Entry{when << when_shift | prio_key,
              static_cast<std::uint64_t>(next_seq_++) << 32 | slot_idx});
    siftUp(heap_.size() - 1);
    ++live_;
    if (live_ > max_pending_)
        max_pending_ = live_;
    return static_cast<EventId>(slot.gen) << 32 | slot_idx;
}

bool
EventQueue::deschedule(EventId id)
{
    // Cancelled entries stay in the heap (their slot is a tombstone
    // reclaimed when the record pops); executed, already-cancelled,
    // and pre-reset handles fail the generation check.
    const std::uint32_t slot_idx = static_cast<std::uint32_t>(id);
    const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
    if (slot_idx >= slots_.size())
        return false;
    Slot &slot = slots_[slot_idx];
    if (slot.gen != gen || slot.state != SlotState::Pending)
        return false;
    slot.state = SlotState::Cancelled;
    slot.action = EventCallback{}; // release captures eagerly
    --live_;
    return true;
}

void
EventQueue::siftUp(std::size_t i)
{
    const Entry e = heap_[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) >> 2;
        if (!before(e, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = e;
}

void
EventQueue::siftDown(std::size_t i)
{
    const Entry e = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
        const std::size_t first = (i << 2) + 1;
        if (first >= n)
            break;
        std::size_t best = first;
        const std::size_t end = first + 4 < n ? first + 4 : n;
        for (std::size_t c = first + 1; c < end; ++c) {
            if (before(heap_[c], heap_[best]))
                best = c;
        }
        if (!before(heap_[best], e))
            break;
        heap_[i] = heap_[best];
        i = best;
    }
    heap_[i] = e;
}

EventQueue::Entry
EventQueue::popTop()
{
    const Entry top = heap_[0];
    const Entry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_[0] = last;
        siftDown(0);
    }
    return top;
}

void
EventQueue::executeOne()
{
    const Entry entry = popTop();
    Slot &slot = slots_[entry.slot()];
    if (slot.state != SlotState::Pending) {
        freeSlot(entry.slot()); // cancelled tombstone, action gone
        return;
    }
    --live_;
    now_ = entry.when();
    ++executed_;
    // Move out and free before invoking: the callback may schedule
    // new events, reusing this very slot or reallocating slots_.
    EventCallback action = std::move(slot.action);
    freeSlot(entry.slot());
    action();
}

Tick
EventQueue::run()
{
    while (!heap_.empty())
        executeOne();
    return now_;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_[0].when() <= limit)
        executeOne();
    if (now_ < limit)
        now_ = limit;
    return now_;
}

Tick
EventQueue::earliestPending() const
{
    if (live_ == 0)
        return no_tick;
    if (slots_[heap_[0].slot()].state == SlotState::Pending)
        return heap_[0].when();
    Tick best = no_tick;
    for (const Entry &e : heap_) {
        if (slots_[e.slot()].state == SlotState::Pending &&
            e.when() < best) {
            best = e.when();
        }
    }
    return best;
}

void
EventQueue::earliestPendingPerPriority(std::vector<Tick> &out) const
{
    std::fill(out.begin(), out.end(), no_tick);
    for (const Entry &e : heap_) {
        if (slots_[e.slot()].state != SlotState::Pending)
            continue;
        const std::int64_t prio =
            static_cast<std::int64_t>(e.hi &
                                      ((priority_bias << 1) - 1)) -
            static_cast<std::int64_t>(priority_bias);
        if (prio < 0 || prio >= static_cast<std::int64_t>(out.size()))
            continue;
        Tick &best = out[static_cast<std::size_t>(prio)];
        if (e.when() < best)
            best = e.when();
    }
}

Tick
EventQueue::nextForeignTick(int priority) const
{
    const std::uint64_t prio_key =
        (static_cast<std::uint64_t>(priority) + priority_bias) &
        ((priority_bias << 1) - 1);
    Tick best = horizon_pin_;
    for (const Entry &e : heap_) {
        if (slots_[e.slot()].state != SlotState::Pending)
            continue; // tombstone: a cancelled event lands nowhere
        if ((e.hi & ((priority_bias << 1) - 1)) == prio_key)
            continue;
        if (e.when() < best)
            best = e.when();
    }
    return best;
}

void
EventQueue::encodePending(Tick base, std::vector<std::uint64_t> &out) const
{
    order_scratch_.clear();
    for (const Entry &e : heap_) {
        if (slots_[e.slot()].state == SlotState::Pending)
            order_scratch_.push_back(e);
    }
    // Execution order, not heap order: the heap layout depends on
    // insertion history, which two equivalent states need not share.
    std::sort(order_scratch_.begin(), order_scratch_.end(), before);
    out.push_back(order_scratch_.size());
    for (const Entry &e : order_scratch_) {
        // The offset is signed-in-two's-complement: pending events
        // may precede the caller's base tick.
        out.push_back(static_cast<std::uint64_t>(e.when() - base));
        out.push_back(e.hi & ((priority_bias << 1) - 1));
    }
}

void
EventQueue::shiftPending(Tick delta)
{
    for (Entry &e : heap_) {
        e.hi += delta << when_shift;
        SYNCPERF_ASSERT(e.when() < (Tick{1} << (64 - when_shift)),
                        "shifted tick out of the packed 40-bit range");
    }
}

void
EventQueue::reserve(std::size_t events)
{
    heap_.reserve(events);
    if (slots_.size() >= events)
        return;
    const auto old = static_cast<std::uint32_t>(slots_.size());
    slots_.resize(events);
    // New slots are free; descending order so the lowest fresh index
    // is handed out first (matching reset()'s warm-fill convention).
    // Slot indices never influence execution order, so this cannot
    // perturb results.
    for (std::uint32_t i = static_cast<std::uint32_t>(events);
         i-- > old;) {
        free_.push_back(i);
    }
}

void
EventQueue::reset()
{
    heap_.clear();
    free_.clear();
    // Every slot is reclaimed and its generation bumped, so handles
    // from before the reset are dead. Descending order so the next
    // cycle fills slots from index 0 with warm memory.
    for (std::uint32_t i = static_cast<std::uint32_t>(slots_.size());
         i-- > 0;) {
        slots_[i].action = EventCallback{};
        slots_[i].state = SlotState::Pending;
        ++slots_[i].gen;
        free_.push_back(i);
    }
    now_ = 0;
    live_ = 0;
    max_pending_ = 0;
    horizon_pin_ = no_tick;
}

} // namespace syncperf::sim
