/**
 * @file
 * Clock-domain helper converting between cycles and wall time.
 *
 * The paper reports CPU results from gettimeofday() (seconds) and GPU
 * results from clock64() (cycles divided by the device clock). Both
 * simulated machines count ticks in cycles; this class performs the
 * cycles-to-seconds conversion for reporting.
 */

#ifndef SYNCPERF_SIM_CLOCK_HH
#define SYNCPERF_SIM_CLOCK_HH

#include "sim/types.hh"

namespace syncperf::sim
{

/** Frequency-aware conversion between Tick counts and seconds. */
class ClockDomain
{
  public:
    /** @param frequency_hz Clock frequency; must be positive. */
    explicit constexpr ClockDomain(double frequency_hz)
        : freq_hz_(frequency_hz)
    {}

    /** Clock frequency in Hz. */
    constexpr double frequencyHz() const { return freq_hz_; }

    /** Convert a cycle count to seconds. */
    constexpr double
    toSeconds(Tick cycles) const
    {
        return static_cast<double>(cycles) / freq_hz_;
    }

    /** Convert seconds to (truncated) cycles. */
    constexpr Tick
    toCycles(double seconds) const
    {
        return static_cast<Tick>(seconds * freq_hz_);
    }

    /** Duration of one cycle in seconds. */
    constexpr double period() const { return 1.0 / freq_hz_; }

  private:
    double freq_hz_;
};

} // namespace syncperf::sim

#endif // SYNCPERF_SIM_CLOCK_HH
